// Command dexbench runs the IDEBench-style simulated-user benchmark
// (internal/idebench, experiment E31) against a dexd instance: U
// concurrent seeded analysts run drill/rollup/pan/refine sessions with
// think time under a per-query deadline, across the chosen execution
// modes, and the run is scored by deadline-violation rate,
// time-to-insight, and quality-at-deadline, plus a prefetch-driven
// cache-warming on/off comparison.
//
// Usage:
//
//	dexbench [-addr http://host:8080] [-users 10,40,100] [-ops 12]
//	         [-modes exact,cracked,approx,online] [-deadline 250ms]
//	         [-think-mean 150ms] [-think 1.0] [-rows 200000] [-seed 1]
//	         [-prefetch-users 40] [-prefetch-budget 2] [-json out.json]
//
// Without -addr it stands up an in-process dexd per run (a fresh server
// per cell, so no run inherits another's cache or cracked-index state),
// loaded with -rows of the demo sales table. With -addr it drives the
// given live server instead; the sales table must already be loaded
// there (dexd -demo sales), and cells then share that server's state.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"dex/internal/idebench"
)

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad count %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	addr := flag.String("addr", "", "dexd base URL (empty = in-process server)")
	usersFlag := flag.String("users", "10,40,100", "comma-separated concurrent-user counts, one run each")
	ops := flag.Int("ops", 12, "operations per user session")
	modesFlag := flag.String("modes", "exact,cracked,approx,online", "comma-separated execution modes")
	deadline := flag.Duration("deadline", 250*time.Millisecond, "per-query latency deadline")
	thinkMean := flag.Duration("think-mean", 150*time.Millisecond, "mean of the exponential think-time distribution")
	thinkScale := flag.Float64("think", 1.0, "think-time multiplier (0 = closed loop)")
	rows := flag.Int("rows", 200_000, "sales-table rows for the in-process server")
	shards := flag.Int("shards", 0, "shard the in-process server's sales table across this many in-process workers (0 = single-node)")
	seed := flag.Int64("seed", 1, "benchmark seed (user u replays trace seed+u)")
	prefetchUsers := flag.Int("prefetch-users", 40, "user count for the prefetch on/off comparison (0 = skip)")
	prefetchBudget := flag.Int("prefetch-budget", 2, "predicted windows warmed per pan")
	jsonPath := flag.String("json", "", "also write the full matrix as JSON to this path")
	flag.Parse()

	users, err := parseInts(*usersFlag)
	if err != nil {
		log.Fatal(err)
	}
	var modes []string
	for _, m := range strings.Split(*modesFlag, ",") {
		if m = strings.TrimSpace(m); m != "" {
			modes = append(modes, m)
		}
	}

	target := func() (string, func(), error) {
		if *addr != "" {
			return *addr, func() {}, nil
		}
		l, err := idebench.StartLocal(idebench.LocalConfig{Rows: *rows, Seed: *seed, Shards: *shards})
		if err != nil {
			return "", nil, err
		}
		return l.URL, l.Close, nil
	}
	cfg := idebench.MatrixConfig{
		UserCounts:     users,
		Modes:          modes,
		Ops:            *ops,
		Seed:           *seed,
		Deadline:       *deadline,
		ThinkMean:      *thinkMean,
		ThinkScale:     *thinkScale,
		PrefetchUsers:  *prefetchUsers,
		PrefetchBudget: *prefetchBudget,
	}
	res, err := idebench.RunMatrix(context.Background(), target, cfg, func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	})
	if err != nil {
		log.Fatal(err)
	}
	if *addr == "" {
		res.Rows = *rows
	}
	res.Fprint(os.Stdout)
	if *jsonPath != "" {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *jsonPath)
	}
}
