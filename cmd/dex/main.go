// Command dex is the interactive shell of the exploration engine: load or
// attach CSV files, then query them in any execution mode.
//
// Usage:
//
//	dex [-load name=path.csv]... [-attach name=path.csv]... [-mode exact] [-parallel N] [-zonemap] [-kernels] [-agg-kernels] [-encode] [-timeout 500ms] [-e "SQL"]
//
// Without -e it reads statements from stdin (one per line). Shell commands:
//
//	\tables             list tables
//	\profile <table>    per-column summaries + suggested segmentations
//	\mode exact|cracked|approx|online
//	\demo               load a built-in synthetic sales table
//	\suggest            recommend likely next queries for this session
//	\quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"dex"
	"dex/internal/storage"
	"dex/internal/workload"
)

// inferSchema reads just the CSV header and first data row to build a
// schema for in-situ attachment.
func inferSchema(path string) (dex.Schema, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		return nil, fmt.Errorf("%s: empty file", path)
	}
	names := strings.Split(sc.Text(), ",")
	var first []string
	if sc.Scan() {
		first = strings.Split(sc.Text(), ",")
	}
	schema := make(dex.Schema, len(names))
	for i, n := range names {
		typ := dex.TString
		if i < len(first) {
			typ = storage.InferType(first[i])
		}
		schema[i] = dex.Field{Name: strings.TrimSpace(n), Type: typ}
	}
	return schema, nil
}

type repeatedFlag []string

func (r *repeatedFlag) String() string     { return strings.Join(*r, ",") }
func (r *repeatedFlag) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	var loads, attaches repeatedFlag
	flag.Var(&loads, "load", "name=path.csv to load eagerly (repeatable)")
	flag.Var(&attaches, "attach", "name=path.csv to attach in-situ (repeatable)")
	modeFlag := flag.String("mode", "exact", "default execution mode")
	exprFlag := flag.String("e", "", "execute one statement and exit")
	seed := flag.Int64("seed", 1, "engine seed")
	parallel := flag.Int("parallel", 0, "worker parallelism for exact queries (0 = GOMAXPROCS, 1 = sequential)")
	morsel := flag.Int("morsel", 0, "rows per parallel scheduling unit (0 = default)")
	zonemap := flag.Bool("zonemap", true, "zone-map scan skipping on range predicates")
	kernels := flag.Bool("kernels", true, "typed predicate kernels for specializable WHERE clauses")
	aggKernels := flag.Bool("agg-kernels", true, "typed aggregation kernels and the fused filter\u2192aggregate pipeline")
	encode := flag.Bool("encode", true, "dictionary/RLE-encode loaded columns when profitable")
	timeout := flag.Duration("timeout", 0, "per-statement deadline, e.g. 500ms (0 = none)")
	flag.Parse()

	mode, err := dex.ParseMode(*modeFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dex:", err)
		os.Exit(1)
	}
	e := dex.New(dex.Options{
		Seed:   *seed,
		Exec:   dex.ExecOptions{Parallelism: *parallel, MorselSize: *morsel, ZoneMap: *zonemap, Kernels: *kernels, AggKernels: *aggKernels},
		Encode: *encode,
	})
	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "dex: bad -load %q (want name=path)\n", spec)
			os.Exit(1)
		}
		if err := e.LoadCSV(name, path); err != nil {
			fmt.Fprintln(os.Stderr, "dex:", err)
			os.Exit(1)
		}
	}
	for _, spec := range attaches {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "dex: bad -attach %q (want name=path)\n", spec)
			os.Exit(1)
		}
		// Infer the schema from the header and first data row only — the
		// point of attaching is that the file is not loaded.
		schema, err := inferSchema(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dex:", err)
			os.Exit(1)
		}
		if err := e.AttachCSV(name, path, schema); err != nil {
			fmt.Fprintln(os.Stderr, "dex:", err)
			os.Exit(1)
		}
	}

	session := e.NewSession()
	runOne := func(line string) {
		// The deadline rides the same context plumbing the dexd service
		// uses: the morsel scheduler stops between morsels when it fires.
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if *timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, *timeout)
		}
		res, err := session.QueryContext(ctx, line, mode)
		cancel()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return
		}
		fmt.Print(res.Format(40))
	}

	if *exprFlag != "" {
		runOne(*exprFlag)
		return
	}

	fmt.Printf("dex shell — mode %v. \\demo loads sample data; \\quit exits.\n", mode)
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("dex> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\quit` || line == `\q`:
			return
		case line == `\tables`:
			for _, t := range e.Tables() {
				fmt.Println(" ", t)
			}
		case line == `\demo`:
			rng := rand.New(rand.NewSource(7))
			sales, err := workload.Sales(rng, 100_000)
			if err == nil {
				err = e.Register(sales)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			} else {
				fmt.Println("loaded table `sales` (100000 rows: region, product, quarter, amount, qty)")
			}
		case line == `\suggest`:
			sugs, err := session.SuggestNext(3)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				break
			}
			if len(sugs) == 0 {
				fmt.Println("no archived sessions to learn from yet")
			}
			for i, s := range sugs {
				fmt.Printf(" %d. %v (score %.2f)\n", i+1, s.Fragments, s.Score)
			}
		case strings.HasPrefix(line, `\profile `):
			p, err := e.Profile(strings.TrimSpace(strings.TrimPrefix(line, `\profile `)))
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			} else {
				fmt.Print(p.Format())
			}
		case strings.HasPrefix(line, `\mode `):
			m, err := dex.ParseMode(strings.TrimPrefix(line, `\mode `))
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			} else {
				mode = m
				fmt.Println("mode:", mode)
			}
		case strings.HasPrefix(line, `\`):
			fmt.Fprintf(os.Stderr, "unknown command %q\n", line)
		default:
			runOne(line)
		}
		fmt.Print("dex> ")
	}
}
