// Command dexchaos runs the seeded chaos harness against an in-process
// dexd service: synthetic exploration sessions replay while failpoints arm
// and disarm on a schedule, and the run is judged against the three
// liveness invariants (no goroutine leaks, every query terminates with a
// classified outcome, clean drain mid-chaos). Exit status 1 means at least
// one seed produced a violation.
//
// Usage:
//
//	dexchaos [-seeds 1,2,3] [-clients 3] [-queries 10] [-rows 20000]
//	         [-mode exact] [-timeout 150ms] [-drain-at 0]
//	         [-fault "AT:SITE=SPEC[:FOR]"]... [-json out.json] [-quiet]
//
// Each -fault entry arms SITE with SPEC at offset AT, optionally disarming
// after FOR, e.g.:
//
//	dexchaos -fault "0:exec/scan=latency(30ms,0.6):900ms" \
//	         -fault "5ms:server/admit=error(0.25)" -drain-at 40ms
//
// With no -fault flags a standing schedule covering scan latency,
// admission sheds, flaky transport, cache faults and handler errors runs.
// The same seed always replays the same per-site fault decision stream
// (the framework indexes decisions by hit order), so a failing run is
// reproduced by re-running its seed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"dex/internal/chaos"
	"dex/internal/fault"
)

type faultFlags []chaos.FaultEvent

func (f *faultFlags) String() string { return fmt.Sprintf("%v", []chaos.FaultEvent(*f)) }

// Set parses "AT:SITE=SPEC[:FOR]" — AT and FOR are Go durations, SPEC is a
// failpoint policy (see internal/fault).
func (f *faultFlags) Set(v string) error {
	atStr, rest, ok := strings.Cut(v, ":")
	if !ok {
		return fmt.Errorf("want AT:SITE=SPEC[:FOR], got %q", v)
	}
	at, err := time.ParseDuration(atStr)
	if err != nil {
		return fmt.Errorf("bad AT in %q: %v", v, err)
	}
	var ev chaos.FaultEvent
	ev.At = at
	if i := strings.LastIndex(rest, ":"); i >= 0 {
		if d, err := time.ParseDuration(rest[i+1:]); err == nil {
			ev.For = d
			rest = rest[:i]
		}
	}
	site, spec, ok := strings.Cut(rest, "=")
	if !ok {
		return fmt.Errorf("want SITE=SPEC in %q", v)
	}
	if !fault.ValidName(site) {
		return fmt.Errorf("bad failpoint name %q", site)
	}
	ev.Site, ev.Spec = site, spec
	*f = append(*f, ev)
	return nil
}

// defaultSchedule mirrors the standing mix the chaos tests run.
func defaultSchedule() []chaos.FaultEvent {
	return []chaos.FaultEvent{
		{At: 0, Site: "exec/scan", Spec: "latency(30ms,0.6)", For: 900 * time.Millisecond},
		{At: 0, Site: "cache/get", Spec: "error(0.5)"},
		{At: 5 * time.Millisecond, Site: "server/admit", Spec: "error(0.25)", For: 700 * time.Millisecond},
		{At: 10 * time.Millisecond, Site: "client/transport", Spec: "error(0.15)", For: 600 * time.Millisecond},
		{At: 15 * time.Millisecond, Site: "server/handler", Spec: "error(0.05)"},
	}
}

func main() {
	var faults faultFlags
	seedsFlag := flag.String("seeds", "1,2,3", "comma-separated seeds, one full run each")
	clients := flag.Int("clients", 3, "concurrent synthetic explorers")
	queries := flag.Int("queries", 10, "queries per client")
	rows := flag.Int("rows", 20_000, "demo table size")
	mode := flag.String("mode", "", "execution mode for every query (default exact)")
	timeout := flag.Duration("timeout", 150*time.Millisecond, "per-query deadline")
	drainAt := flag.Duration("drain-at", 0, "initiate a drain (the SIGTERM path) at this offset (0 = no drain)")
	zonemap := flag.Bool("zonemap", false, "enable zone-map scan skipping in the engine under test")
	kernels := flag.Bool("kernels", false, "enable typed predicate kernels in the engine under test")
	aggKernels := flag.Bool("agg-kernels", false, "enable typed aggregation kernels in the engine under test")
	encode := flag.Bool("encode", false, "dictionary/RLE-encode the demo table at load")
	flag.Var(&faults, "fault", "AT:SITE=SPEC[:FOR] schedule entry (repeatable; default standing schedule)")
	jsonOut := flag.String("json", "", "write all reports as JSON to this file")
	quiet := flag.Bool("quiet", false, "suppress the fault schedule narration")
	flag.Parse()

	var seeds []int64
	for _, f := range strings.Split(*seedsFlag, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			log.Fatalf("dexchaos: bad -seeds entry %q", f)
		}
		seeds = append(seeds, s)
	}
	schedule := []chaos.FaultEvent(faults)
	if len(schedule) == 0 {
		schedule = defaultSchedule()
	}

	var reports []*chaos.Report
	failed := false
	for _, seed := range seeds {
		cfg := chaos.Config{
			Seed:             seed,
			Clients:          *clients,
			QueriesPerClient: *queries,
			Rows:             *rows,
			Mode:             *mode,
			Timeout:          *timeout,
			Faults:           schedule,
			DrainAt:          *drainAt,
			ZoneMap:          *zonemap,
			Kernels:          *kernels,
			AggKernels:       *aggKernels,
			Encode:           *encode,
		}
		if !*quiet {
			cfg.Log = log.New(os.Stderr, fmt.Sprintf("seed=%-3d ", seed), 0)
		}
		rep, err := chaos.Run(cfg)
		if err != nil {
			log.Fatalf("dexchaos: seed %d: %v", seed, err)
		}
		reports = append(reports, rep)
		o := rep.Outcomes
		fmt.Printf("seed=%d issued=%d completed=%d degraded=%d rejected=%d typed=%d transport=%d timeout=%d drained=%v goroutines=%d->%d\n",
			seed, rep.Issued, o.Completed, o.Degraded, o.Rejected, o.Typed, o.Transport, o.Timeout,
			rep.Drained, rep.Goroutines[0], rep.Goroutines[1])
		var sites []string
		for site, st := range rep.FaultStats {
			sites = append(sites, fmt.Sprintf("%s:%d/%d", site, st.Fires, st.Hits))
		}
		if len(sites) > 0 {
			fmt.Printf("  fires/hits: %s\n", strings.Join(sites, " "))
		}
		for _, v := range rep.Violations {
			failed = true
			fmt.Printf("  VIOLATION: %s\n", v)
		}
	}

	if *jsonOut != "" {
		buf, err := json.MarshalIndent(map[string]any{"bench": "dexchaos", "runs": reports}, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("all invariants held")
}
