// Command dexload is the closed-loop load harness for dexd: it replays
// synthetic exploration sessions (seeded, reproducible) from N concurrent
// clients with think time between queries, and reports throughput and
// client-observed latency quantiles per client count — the IDEBench-style
// measurement that backs experiment E27.
//
// Usage:
//
//	dexload [-addr http://127.0.0.1:8080] [-clients 1,2,4,8,16]
//	        [-queries 20] [-think 0] [-mode exact] [-seed 1]
//	        [-timeout 0] [-demo sales -rows 1000000] [-json out.json]
//	        [-metrics] [-slow]
//
// With -demo it first loads the demo table server-side (idempotent enough
// for a fresh dexd). With -json it also writes the full reports as JSON —
// the format BENCH_server.json records. -metrics validates and prints the
// server's /metrics exposition after all runs; -slow dumps the slow-query
// traces retained in /admin/slow (requires dexd -slowms > 0).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"dex/internal/metrics"
	"dex/internal/server"
	"dex/internal/trace"
)

// printSpan renders one span tree as an indented stage listing.
func printSpan(sp *trace.SpanJSON, indent string) {
	if sp == nil {
		return
	}
	fmt.Printf("%s%-12s %8.3fms", indent, sp.Name, sp.DurationMS)
	if len(sp.Attrs) > 0 {
		buf, _ := json.Marshal(sp.Attrs)
		fmt.Printf("  %s", buf)
	}
	fmt.Println()
	for _, c := range sp.Children {
		printSpan(c, indent+"  ")
	}
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "dexd base URL")
	clientsFlag := flag.String("clients", "1,2,4,8,16", "comma-separated client counts, one run each")
	queries := flag.Int("queries", 20, "queries per client per run")
	think := flag.Duration("think", 0, "pause between a response and the next query")
	mode := flag.String("mode", "exact", "execution mode for every query")
	seed := flag.Int64("seed", 1, "workload seed (client i in a run uses seed+i)")
	timeout := flag.Duration("timeout", 0, "per-query deadline sent to the server (0 = server default)")
	demo := flag.String("demo", "", "load this demo table server-side first (sales|sky|ticks)")
	rows := flag.Int("rows", 1_000_000, "demo table size")
	jsonOut := flag.String("json", "", "also write reports as JSON to this file")
	showMetrics := flag.Bool("metrics", false, "validate and print /metrics after the runs")
	showSlow := flag.Bool("slow", false, "dump the server's /admin/slow trace ring after the runs")
	flag.Parse()

	var clientCounts []int
	for _, f := range strings.Split(*clientsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			log.Fatalf("dexload: bad -clients entry %q", f)
		}
		clientCounts = append(clientCounts, n)
	}

	ctx := context.Background()
	cl := server.NewClient(*addr)
	if _, err := cl.Stats(ctx); err != nil {
		log.Fatalf("dexload: cannot reach dexd at %s: %v", *addr, err)
	}
	if *demo != "" {
		if err := cl.LoadDemo(ctx, *demo, *rows, *seed); err != nil {
			log.Fatalf("dexload: load demo: %v", err)
		}
		fmt.Printf("loaded demo table %q (%d rows)\n", *demo, *rows)
	}

	fmt.Printf("target=%s mode=%s queries/client=%d think=%s seed=%d\n\n",
		*addr, *mode, *queries, *think, *seed)
	fmt.Printf("%8s %8s %8s %8s %6s %6s %9s %9s %9s %9s %9s\n",
		"clients", "queries", "rejected", "dropped", "xport", "degrd", "qps", "p50(ms)", "p95(ms)", "p99(ms)", "max(ms)")
	var reports []*server.LoadReport
	for _, n := range clientCounts {
		rep, err := server.RunLoad(ctx, cl, server.LoadConfig{
			Clients:          n,
			QueriesPerClient: *queries,
			Think:            *think,
			Seed:             *seed,
			Mode:             *mode,
			Timeout:          *timeout,
		})
		if err != nil {
			log.Fatalf("dexload: run with %d clients: %v", n, err)
		}
		// Transport errors and server-side failures are different diagnoses:
		// the former means the network or process is flapping, the latter
		// that the workload or server is broken. Report them apart.
		if rep.Transport > 0 {
			log.Fatalf("dexload: %d queries hit transport errors (connection refused/reset) at %d clients — is dexd up?", rep.Transport, n)
		}
		if rep.Failed > 0 {
			log.Fatalf("dexload: %d queries failed with non-admission errors at %d clients", rep.Failed, n)
		}
		reports = append(reports, rep)
		fmt.Printf("%8d %8d %8d %8d %6d %6d %9.1f %9.2f %9.2f %9.2f %9.2f\n",
			rep.Clients, rep.Queries, rep.Rejected, rep.Dropped, rep.Transport, rep.Degraded,
			rep.Qps, rep.P50MS, rep.P95MS, rep.P99MS, rep.MaxMS)
	}

	if *showMetrics {
		expo, err := cl.Metrics(ctx)
		if err != nil {
			log.Fatalf("dexload: scrape /metrics: %v", err)
		}
		if err := metrics.ValidateExposition(strings.NewReader(expo)); err != nil {
			log.Fatalf("dexload: /metrics exposition invalid: %v", err)
		}
		fmt.Printf("\n--- /metrics (valid exposition) ---\n%s", expo)
	}
	if *showSlow {
		entries, err := cl.Slow(ctx)
		if err != nil {
			log.Fatalf("dexload: fetch /admin/slow: %v", err)
		}
		fmt.Printf("\n--- /admin/slow: %d retained traces (newest first) ---\n", len(entries))
		for _, e := range entries {
			fmt.Printf("%s session=%s mode=%s outcome=%s elapsed=%.2fms sql=%q\n",
				e.Time.Format(time.RFC3339), e.Session, e.Mode, e.Outcome, e.ElapsedMS, e.SQL)
			printSpan(e.Trace, "  ")
		}
	}

	if *jsonOut != "" {
		out := map[string]any{
			"bench":   "dexload",
			"date":    time.Now().UTC().Format(time.RFC3339),
			"addr":    *addr,
			"mode":    *mode,
			"queries": *queries,
			"think":   think.String(),
			"seed":    *seed,
			"runs":    reports,
		}
		buf, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *jsonOut)
	}
}
