// Command dexcluster launches a local dex cluster: N shard worker
// processes (re-executions of this binary) plus a coordinator dexd
// serving the usual HTTP API. It exists so the distributed path can be
// exercised and measured across real process boundaries with one
// command.
//
// Usage:
//
//	dexcluster [-shards 2] [-rows 1000000] [-seed 1] [-scheme hash]
//	           [-kind sales] [-col amount] [-addr :8080]
//	dexcluster -smoke [-shards 2] [-rows 200000]
//
// -smoke runs the CI drill instead of serving: one query per execution
// mode through the full coordinator/worker stack, then a shard kill and
// a degradation check (degraded:true with an accurate coverage
// fraction); with -heal (the default) the killed worker is then
// restarted blank and the drill gates on the healer returning coverage
// to exactly 1.0 with the full count restored. Exits non-zero on any
// failure.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dex/internal/core"
	"dex/internal/fault"
	"dex/internal/protocol"
	"dex/internal/server"
	"dex/internal/shard"
)

func main() {
	// Children spawned by SpawnWorkers re-enter main here and become
	// workers; this call never returns in that case.
	shard.MaybeWorkerProcess()

	shards := flag.Int("shards", 2, "worker process count")
	rows := flag.Int("rows", 1_000_000, "demo table rows")
	seed := flag.Int64("seed", 1, "data + engine seed")
	scheme := flag.String("scheme", "hash", "partition scheme (hash|range)")
	kind := flag.String("kind", "sales", "demo table (sales|sky|ticks)")
	col := flag.String("col", "amount", "partition column")
	addr := flag.String("addr", ":8080", "coordinator HTTP listen address")
	smoke := flag.Bool("smoke", false, "run the cluster smoke drill and exit")
	heal := flag.Bool("heal", true, "re-stage or re-partition lost shards automatically")
	healInterval := flag.Duration("heal-interval", 500*time.Millisecond, "how often the healer re-checks lost shards")
	repartitionAfter := flag.Duration("repartition-after", 10*time.Second, "how long a shard stays lost before survivors adopt its rows (<0 = never)")
	flag.Parse()

	logger := log.New(os.Stderr, "dexcluster ", log.LstdFlags)
	if err := fault.InitFromEnv(); err != nil {
		logger.Fatalf("bad %s: %v", fault.EnvPoints, err)
	}

	sc, err := shard.ParseScheme(*scheme)
	if err != nil {
		logger.Fatal(err)
	}
	fleet, err := shard.SpawnWorkers(*shards, *seed)
	if err != nil {
		logger.Fatal(err)
	}
	defer fleet.Close()
	logger.Printf("spawned %d worker processes: %v", *shards, fleet.Addrs)

	coord, err := shard.New(shard.Config{
		Spec:             shard.Spec{Table: *kind, Column: *col, Scheme: sc},
		Workers:          fleet.Addrs,
		Heal:             *heal,
		HealInterval:     *healInterval,
		RepartitionAfter: *repartitionAfter,
	})
	if err != nil {
		logger.Fatal(err)
	}
	bctx, bcancel := context.WithTimeout(context.Background(), 2*time.Minute)
	err = coord.Bootstrap(bctx, protocol.Load{Kind: *kind, Rows: *rows, Seed: *seed})
	bcancel()
	if err != nil {
		logger.Fatal(err)
	}
	snap := coord.Snapshot()
	logger.Printf("partitioned %q: %d rows over %d shards (%s on %s)",
		snap.Table, snap.Rows, len(snap.Shards), snap.Scheme, snap.Column)

	eng := core.New(core.Options{Seed: *seed})
	svc := server.New(eng, server.Config{Log: logger, Shard: coord})

	if *smoke {
		if err := runSmoke(svc, fleet, snap.Rows, *heal); err != nil {
			logger.Fatalf("SMOKE FAIL: %v", err)
		}
		logger.Printf("SMOKE OK")
		return
	}

	httpSrv := &http.Server{Addr: *addr, Handler: svc}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		logger.Printf("signal received; shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutCtx)
	}()
	logger.Printf("coordinator serving on %s", *addr)
	httpSrv.ListenAndServe()
}

// runSmoke drives the coordinator HTTP surface end to end: one query per
// execution mode, then a worker kill and a degradation check, and — with
// healing on — a blank restart of the killed worker followed by a gate on
// coverage returning to exactly 1.0 with the full count restored.
func runSmoke(svc *server.Server, fleet *shard.ProcFleet, totalRows int64, heal bool) error {
	ts := httptest.NewServer(svc)
	defer ts.Close()
	cl := ts.Client()

	var sess struct {
		ID string `json:"session_id"`
	}
	if err := post(cl, ts.URL+"/v1/sessions", "{}", &sess); err != nil {
		return fmt.Errorf("create session: %w", err)
	}

	type result struct {
		Rows     [][]any `json:"rows"`
		Mode     string  `json:"mode"`
		Degraded bool    `json:"degraded"`
		Coverage float64 `json:"coverage"`
	}
	query := func(sql, mode string) (result, error) {
		var res result
		body := fmt.Sprintf(`{"sql":%q,"mode":%q}`, sql, mode)
		err := post(cl, ts.URL+"/v1/sessions/"+sess.ID+"/query", body, &res)
		return res, err
	}

	for _, mode := range []string{"exact", "cracked", "approx", "online"} {
		res, err := query("SELECT count(*) FROM sales", mode)
		if err != nil {
			return fmt.Errorf("mode %s: %w", mode, err)
		}
		if len(res.Rows) == 0 {
			return fmt.Errorf("mode %s: empty result", mode)
		}
		if res.Degraded || res.Coverage != 1 {
			return fmt.Errorf("mode %s: healthy fleet answered degraded=%v coverage=%v",
				mode, res.Degraded, res.Coverage)
		}
	}
	exact, err := query("SELECT count(*) FROM sales", "exact")
	if err != nil {
		return err
	}
	full := toI64(exact.Rows[0][0])
	if full != totalRows {
		return fmt.Errorf("full count %d != placed rows %d", full, totalRows)
	}

	// Kill one worker: the next exact count must degrade with a coverage
	// fraction matching the surviving rows exactly.
	fleet.Kill(0)
	deadline := time.Now().Add(15 * time.Second)
	for {
		res, err := query("SELECT count(*) FROM sales", "exact")
		if err != nil {
			return fmt.Errorf("post-kill query: %w", err)
		}
		if res.Degraded {
			got := toI64(res.Rows[0][0])
			wantCov := float64(got) / float64(totalRows)
			if res.Coverage <= 0 || res.Coverage >= 1 {
				return fmt.Errorf("degraded result with coverage %v", res.Coverage)
			}
			if diff := res.Coverage - wantCov; diff > 1e-9 || diff < -1e-9 {
				return fmt.Errorf("coverage %v does not match surviving rows %d/%d (%v)",
					res.Coverage, got, totalRows, wantCov)
			}
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("killed shard never degraded a query")
		}
	}
	if !heal {
		return nil
	}

	// Restart the worker blank on its old address: the coordinator's healer
	// must re-stage its partition and return the fleet to exactly full
	// coverage — no coordinator restart, full counts again.
	if err := fleet.Restart(0); err != nil {
		return fmt.Errorf("restart worker 0: %w", err)
	}
	deadline = time.Now().Add(30 * time.Second)
	for {
		res, err := query("SELECT count(*) FROM sales", "exact")
		if err != nil {
			return fmt.Errorf("post-restart query: %w", err)
		}
		if !res.Degraded && res.Coverage == 1 {
			if got := toI64(res.Rows[0][0]); got != totalRows {
				return fmt.Errorf("healed count %d != placed rows %d", got, totalRows)
			}
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet never healed to full coverage (degraded=%v coverage=%v)",
				res.Degraded, res.Coverage)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func post(cl *http.Client, url, body string, out any) error {
	resp, err := cl.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var eb struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&eb)
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, eb.Error)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func toI64(v any) int64 {
	switch x := v.(type) {
	case float64:
		return int64(x)
	case int64:
		return x
	default:
		return -1
	}
}
