// Command explore runs a scripted end-to-end exploration session over a
// synthetic sky survey, chaining the tutorial's layers: explore-by-example
// steering finds the user's region of interest, the learned query is
// executed, its results are diversified for display, SeeDB recommends the
// most deviating views of the discovered subset, and a prefetching fetcher
// replays the spatial pan the user would do around the region.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"dex/internal/diversify"
	"dex/internal/exec"
	"dex/internal/metrics"
	"dex/internal/prefetch"
	"dex/internal/seedb"
	"dex/internal/steer"
	"dex/internal/viz"
	"dex/internal/workload"
)

func main() {
	n := flag.Int("n", 50_000, "sky catalog size")
	seed := flag.Int64("seed", 11, "random seed")
	flag.Parse()
	if err := run(*n, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "explore:", err)
		os.Exit(1)
	}
}

func run(n int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	sky, err := workload.SkyCatalog(rng, n)
	if err != nil {
		return err
	}
	fmt.Printf("sky catalog: %d objects (%s)\n", sky.NumRows(), sky.Schema())

	// 1. The astronomer cannot write the query, but can say "interesting /
	//    not interesting" — steer toward the hidden quasar cluster.
	fmt.Println("\n[1] explore-by-example steering (AIDE)")
	oracle := func(x []float64) bool {
		return x[0] >= 24 && x[0] < 36 && x[1] >= 4 && x[1] < 16
	}
	ex, err := steer.New(sky, []string{"ra", "dec"}, oracle, steer.Options{Seed: seed, MaxIters: 12, TargetF1: 0.95})
	if err != nil {
		return err
	}
	stats, err := ex.Run()
	if err != nil {
		return err
	}
	for _, s := range stats {
		fmt.Printf("  iter %2d: %4d labeled, F1=%.3f, %d region(s)\n", s.Iter, s.Labeled, s.F1, s.Regions)
	}
	pred := ex.Query()
	if pred == nil {
		return fmt.Errorf("steering found no relevant region")
	}
	fmt.Printf("  learned query: WHERE %s\n", pred)

	// 2. Execute the learned query.
	fmt.Println("\n[2] executing the learned query")
	res, err := exec.Execute(sky, exec.Query{
		Select: []exec.SelectItem{{Col: "ra"}, {Col: "dec"}, {Col: "mag"}, {Col: "z"}},
		Where:  pred,
	})
	if err != nil {
		return err
	}
	fmt.Printf("  %d matching objects\n", res.NumRows())

	// 3. Diversify what the UI shows: 8 representative objects, not the 8
	//    brightest near-duplicates.
	fmt.Println("\n[3] diversified representatives (MMR)")
	items := make([]diversify.Item, res.NumRows())
	raC, _ := res.ColumnByName("ra")
	decC, _ := res.ColumnByName("dec")
	magC, _ := res.ColumnByName("mag")
	for i := range items {
		items[i] = diversify.Item{
			ID:       i,
			Rel:      24 - magC.Value(i).AsFloat(), // brighter = more relevant
			Features: []float64{raC.Value(i).AsFloat(), decC.Value(i).AsFloat()},
		}
	}
	k := 8
	if k > len(items) {
		k = len(items)
	}
	div, err := diversify.MMR(items, k, 0.4)
	if err != nil {
		return err
	}
	for _, p := range div.Picked {
		fmt.Printf("  ra=%6.2f dec=%6.2f mag=%.2f\n",
			items[p].Features[0], items[p].Features[1], 24-items[p].Rel)
	}

	// 4. SeeDB: which views of the discovered subset deviate most from the
	//    rest of the sky?
	fmt.Println("\n[4] recommended views of the discovered region (SeeDB)")
	views := seedb.Candidates([]string{"class"}, []string{"z", "mag"},
		[]exec.AggFunc{exec.AggAvg, exec.AggCount})
	top, _, err := seedb.Recommend(sky, pred, views, seedb.Options{K: 2, Strategy: seedb.SharedScan})
	if err != nil {
		return err
	}
	for i, s := range top {
		fmt.Printf("  %d. %s (utility %.3f)\n", i+1, s.View, s.Utility)
	}

	// 5. Pan around the region with trajectory prefetching.
	fmt.Println("\n[5] panning around the region with momentum prefetching")
	grid, err := prefetch.NewGrid(sky, "ra", "dec", "z", 30, 30)
	if err != nil {
		return err
	}
	f, err := prefetch.NewFetcher(grid, 900, 10, prefetch.Momentum{})
	if err != nil {
		return err
	}
	win := prefetch.Window{X0: 8, Y0: 14, X1: 10, Y1: 16} // near the cluster
	hits, misses := 0, 0
	for step := 0; step < 20; step++ {
		win = win.Shift(1, 0).Clamp(30, 30)
		_, h, m := f.Request(win)
		if step > 0 {
			hits += h
			misses += m
		}
	}
	fmt.Printf("  pan of 20 steps: %d tile hits, %d misses (%.0f%% served from cache)\n",
		hits, misses, 100*float64(hits)/float64(hits+misses))

	// 6. Semantic windows: where else in the sky is the object density
	//    anomalously high? One SAT pass answers every window query in O(1).
	fmt.Println("\n[6] semantic-window search: 3x3-tile windows with >2x expected density")
	satGrid, err := prefetch.NewGrid(sky, "ra", "dec", "z", 30, 30)
	if err != nil {
		return err
	}
	sat := prefetch.NewSAT(satGrid)
	expected := float64(sky.NumRows()) / (30 * 30) * 9
	wins, err := sat.FindWindows(3, 3, func(wa prefetch.WindowAgg) bool {
		return float64(wa.Count) > 2*expected
	})
	if err != nil {
		return err
	}
	show := 3
	if show > len(wins) {
		show = len(wins)
	}
	for i := 0; i < show; i++ {
		fmt.Printf("  window tiles (%d,%d)-(%d,%d): %d objects (expected ~%.0f)\n",
			wins[i].Win.X0, wins[i].Win.Y0, wins[i].Win.X1, wins[i].Win.Y1,
			wins[i].Count, expected)
	}

	// 7. A redshift histogram of the region, as the dashboard would draw it.
	fmt.Println("\n[7] redshift distribution of the discovered region")
	zC, _ := res.ColumnByName("z")
	zs := make([]float64, res.NumRows())
	for i := range zs {
		zs[i] = zC.Value(i).AsFloat()
	}
	counts, edges := metrics.Histogram(zs, 12)
	labels := make([]string, len(counts))
	for i := range labels {
		labels[i] = fmt.Sprintf("z=%4.2f", edges[i])
	}
	fmt.Print(viz.BarChart(labels, counts, 40))
	return nil
}
