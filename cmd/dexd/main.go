// Command dexd serves the exploration engine over HTTP: per-connection
// sessions, four execution modes, per-request deadlines, client-disconnect
// cancellation, admission control and live stats.
//
// Usage:
//
//	dexd [-addr :8080] [-load name=path.csv]... [-demo sales -rows 1000000]
//	     [-max-inflight N] [-max-queue N] [-queue-timeout 2s]
//	     [-default-timeout 30s] [-cache-rows 1000000]
//	     [-parallel N] [-morsel N] [-zonemap] [-kernels] [-agg-kernels] [-encode] [-seed 1] [-drain-timeout 30s]
//	     [-slowms 500] [-slow-ring 64] [-pprof] [-reqlog]
//
// Observability: /metrics serves Prometheus text exposition, /admin/slow
// the traces of queries slower than -slowms, -pprof mounts
// net/http/pprof, and -reqlog logs one structured line per query.
//
// On SIGINT/SIGTERM it drains gracefully: new queries get 503 while every
// admitted query runs to completion (up to -drain-timeout).
//
// Cluster modes (see DESIGN.md "Distributed execution"):
//
//	dexd -worker :9090                 serve the shard protocol, no HTTP;
//	                                   the coordinator loads and partitions it
//	dexd -shard-workers a:9090,b:9090  coordinate a fleet: partition -demo
//	     [-shard-col amount]           across the workers and scatter/gather
//	     [-shard-scheme hash|range]    queries on that table; other tables
//	                                   stay local
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dex/internal/core"
	"dex/internal/exec"
	"dex/internal/fault"
	"dex/internal/protocol"
	"dex/internal/server"
	"dex/internal/shard"
	"dex/internal/storage"
	"dex/internal/workload"
)

type repeatedFlag []string

func (r *repeatedFlag) String() string     { return strings.Join(*r, ",") }
func (r *repeatedFlag) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	var loads repeatedFlag
	addr := flag.String("addr", ":8080", "listen address")
	flag.Var(&loads, "load", "name=path.csv to load eagerly (repeatable)")
	demo := flag.String("demo", "", "load a synthetic demo table at startup (sales|sky|ticks)")
	rows := flag.Int("rows", 1_000_000, "demo table size")
	seed := flag.Int64("seed", 1, "engine + demo data seed")
	parallel := flag.Int("parallel", 0, "worker parallelism for exact queries (0 = GOMAXPROCS)")
	morsel := flag.Int("morsel", 0, "rows per parallel scheduling unit (0 = default)")
	zonemap := flag.Bool("zonemap", true, "zone-map scan skipping on range predicates")
	kernels := flag.Bool("kernels", true, "typed predicate kernels for specializable WHERE clauses")
	aggKernels := flag.Bool("agg-kernels", true, "typed aggregation kernels and the fused filter\u2192aggregate pipeline")
	encode := flag.Bool("encode", true, "dictionary/RLE-encode loaded columns when profitable")
	maxInFlight := flag.Int("max-inflight", 0, "max concurrently executing queries (0 = GOMAXPROCS)")
	maxQueue := flag.Int("max-queue", 0, "max queries waiting for a slot (0 = 2x max-inflight, -1 = none)")
	queueTimeout := flag.Duration("queue-timeout", 2*time.Second, "longest wait in the admission queue")
	defaultTimeout := flag.Duration("default-timeout", 30*time.Second, "per-query deadline when the client sends none")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested deadlines")
	cacheRows := flag.Int64("cache-rows", 1_000_000, "shared result cache budget in rows (0 = off)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight queries")
	degrade := flag.Bool("degrade", false, "answer over-deadline exact queries with a sampled approximation tagged degraded:true")
	degradeGrace := flag.Duration("degrade-grace", 2*time.Second, "time budget for computing a degraded answer")
	slowMS := flag.Int64("slowms", 500, "keep traces of queries at or above this many milliseconds in /admin/slow (0 = off)")
	slowRing := flag.Int("slow-ring", 64, "how many slow-query traces /admin/slow retains")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	reqLog := flag.Bool("reqlog", false, "log one structured line per query request to stderr")
	workerAddr := flag.String("worker", "", "run as a shard worker serving the fleet protocol on this address (no HTTP)")
	shardWorkers := flag.String("shard-workers", "", "comma-separated worker addresses; makes this dexd a cluster coordinator")
	shardCol := flag.String("shard-col", "amount", "partition column for the sharded table")
	shardScheme := flag.String("shard-scheme", "hash", "partition scheme (hash|range)")
	shardTimeout := flag.Duration("shard-timeout", 10*time.Second, "per-shard, per-attempt deadline")
	shardRetries := flag.Int("shard-retries", 1, "retry budget for retryable shard failures")
	heal := flag.Bool("heal", true, "re-stage or re-partition lost shards automatically (coordinator only)")
	healInterval := flag.Duration("heal-interval", 500*time.Millisecond, "how often the healer re-checks lost shards")
	repartitionAfter := flag.Duration("repartition-after", 10*time.Second, "how long a shard stays lost before survivors adopt its rows (<0 = never)")
	flag.Parse()

	logger := log.New(os.Stderr, "dexd ", log.LstdFlags)
	// Failpoints from the environment (DEX_FAILPOINTS / DEX_FAULT_SEED):
	// inert unless set, so production runs pay one atomic load per site.
	if err := fault.InitFromEnv(); err != nil {
		logger.Fatalf("bad %s: %v", fault.EnvPoints, err)
	}
	if active := fault.Active(); len(active) > 0 {
		logger.Printf("FAULT INJECTION ACTIVE (seed %d): %v", fault.Seed(), active)
	}

	// Worker mode: serve the shard protocol and nothing else. The engine
	// starts empty; the coordinator stages and partitions the data.
	if *workerAddr != "" {
		lis, err := net.Listen("tcp", *workerAddr)
		if err != nil {
			logger.Fatal(err)
		}
		w := shard.NewWorker(*seed)
		logger.Printf("shard worker serving on %s", lis.Addr())
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		go func() {
			<-ctx.Done()
			w.Close()
		}()
		w.Serve(lis)
		return
	}

	eng := core.New(core.Options{
		Seed:         *seed,
		Exec:         exec.ExecOptions{Parallelism: *parallel, MorselSize: *morsel, ZoneMap: *zonemap, Kernels: *kernels, AggKernels: *aggKernels},
		Degrade:      *degrade,
		DegradeGrace: *degradeGrace,
		Encode:       *encode,
	})
	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			logger.Fatalf("bad -load %q (want name=path)", spec)
		}
		if err := eng.LoadCSV(name, path); err != nil {
			logger.Fatal(err)
		}
		logger.Printf("loaded table %q from %s", name, path)
	}
	if *demo != "" {
		rng := rand.New(rand.NewSource(*seed))
		var (
			t   *storage.Table
			err error
		)
		switch *demo {
		case "sales":
			t, err = workload.Sales(rng, *rows)
		case "sky":
			t, err = workload.SkyCatalog(rng, *rows)
		case "ticks":
			t, err = workload.Ticks(rng, *rows)
		default:
			err = fmt.Errorf("unknown -demo %q (sales|sky|ticks)", *demo)
		}
		if err == nil {
			err = eng.Register(t)
		}
		if err != nil {
			logger.Fatal(err)
		}
		logger.Printf("loaded demo table %q (%d rows)", t.Name(), t.NumRows())
	}

	cfg := server.Config{
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		QueueTimeout:   *queueTimeout,
		DefaultTimeout: *defaultTimeout,
		MaxTimeout:     *maxTimeout,
		CacheRows:      *cacheRows,
		Log:            logger,
		SlowThreshold:  time.Duration(*slowMS) * time.Millisecond,
		SlowRing:       *slowRing,
		Pprof:          *pprofOn,
	}
	if *reqLog {
		cfg.RequestLog = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	if *shardWorkers != "" {
		kind := *demo
		if kind == "" {
			kind = "sales"
		}
		scheme, err := shard.ParseScheme(*shardScheme)
		if err != nil {
			logger.Fatal(err)
		}
		coord, err := shard.New(shard.Config{
			Spec:             shard.Spec{Table: kind, Column: *shardCol, Scheme: scheme},
			Workers:          strings.Split(*shardWorkers, ","),
			ShardTimeout:     *shardTimeout,
			Retries:          *shardRetries,
			Heal:             *heal,
			HealInterval:     *healInterval,
			RepartitionAfter: *repartitionAfter,
		})
		if err != nil {
			logger.Fatal(err)
		}
		bctx, bcancel := context.WithTimeout(context.Background(), 2*time.Minute)
		if err := coord.Bootstrap(bctx, protocol.Load{Kind: kind, Rows: *rows, Seed: *seed}); err != nil {
			logger.Fatal(err)
		}
		bcancel()
		snap := coord.Snapshot()
		logger.Printf("coordinating table %q over %d shards (%s on %s, %d rows)",
			snap.Table, len(snap.Shards), snap.Scheme, snap.Column, snap.Rows)
		cfg.Shard = coord
	}
	svc := server.New(eng, cfg)
	httpSrv := &http.Server{Addr: *addr, Handler: svc}

	// SIGINT/SIGTERM starts the drain: the listener keeps accepting (so
	// in-flight clients can read responses and late arrivals get a clean
	// 503), admitted queries run to completion, then the listener closes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		logger.Printf("signal received; draining (up to %s)", *drainTimeout)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := svc.Drain(drainCtx); err != nil {
			logger.Printf("drain incomplete: %v", err)
		} else {
			logger.Printf("drained; all in-flight queries completed")
		}
		shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel2()
		_ = httpSrv.Shutdown(shutCtx)
	}()

	logger.Printf("serving on %s (tables: %v)", *addr, eng.Tables())
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatal(err)
	}
	<-done
}
