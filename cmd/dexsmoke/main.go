// Command dexsmoke is the end-to-end observability smoke test behind
// `make metrics-smoke`: it builds dexd, boots it on a free port with the
// slow-query ring armed, drives a short session through the HTTP client
// (including a cache hit and a traced query), then checks the three
// observability surfaces — the per-response span tree, /admin/slow, and
// /metrics as valid Prometheus text exposition — before shutting the
// server down with SIGTERM and verifying a clean exit.
//
// It prints "metrics smoke OK" and exits 0 on success; any failure is
// fatal with a diagnostic on stderr.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"dex/internal/metrics"
	"dex/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dexsmoke: ")

	tmp, err := os.MkdirTemp("", "dexsmoke")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "dexd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/dexd")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		log.Fatalf("build dexd: %v", err)
	}

	// Reserve a free port, release it, and hand it to dexd. The race
	// window between Close and ListenAndServe is tolerable for a smoke
	// test on localhost.
	l, err := net.Listen("tcp4", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	// -slowms 1 so ordinary queries land in the slow ring; -reqlog so the
	// structured request log path is exercised end to end.
	srv := exec.Command(bin,
		"-addr", addr,
		"-demo", "sales", "-rows", "200000",
		"-slowms", "1", "-slow-ring", "16",
		"-reqlog",
	)
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		log.Fatalf("start dexd: %v", err)
	}
	exited := make(chan error, 1)
	go func() { exited <- srv.Wait() }()
	defer srv.Process.Kill()

	base := "http://" + addr
	cl := server.NewClient(base)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Wait for the server to come up.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if _, err := cl.Tables(ctx); err == nil {
			break
		}
		select {
		case err := <-exited:
			log.Fatalf("dexd exited during startup: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			log.Fatalf("dexd not healthy at %s within 5s", base)
		}
		time.Sleep(50 * time.Millisecond)
	}

	id, err := cl.CreateSession(ctx)
	if err != nil {
		log.Fatalf("create session: %v", err)
	}

	// A repeated exact query (second run is a cache hit) plus a traced
	// group-by: together they touch the exact, cached, and traced paths.
	for i := 0; i < 2; i++ {
		if _, err := cl.Query(ctx, id, server.QueryRequest{SQL: "SELECT COUNT(*) FROM sales"}); err != nil {
			log.Fatalf("exact query (run %d): %v", i+1, err)
		}
	}
	res, err := cl.Query(ctx, id, server.QueryRequest{
		SQL:   "SELECT region, AVG(amount) FROM sales GROUP BY region",
		Trace: true,
	})
	if err != nil {
		log.Fatalf("traced query: %v", err)
	}
	if res.Trace == nil {
		log.Fatal("trace:true response carried no span tree")
	}
	if res.Trace.Name != "query" || len(res.Trace.Children) == 0 {
		log.Fatalf("malformed trace root: name=%q children=%d", res.Trace.Name, len(res.Trace.Children))
	}

	expo, err := cl.Metrics(ctx)
	if err != nil {
		log.Fatalf("scrape /metrics: %v", err)
	}
	if err := metrics.ValidateExposition(strings.NewReader(expo)); err != nil {
		log.Fatalf("/metrics exposition invalid: %v", err)
	}
	for _, want := range []string{
		`dex_queries_total{outcome="completed"}`,
		`dex_queries_total{outcome="cache_hit"}`,
		`dex_query_duration_seconds_bucket`,
	} {
		if !strings.Contains(expo, want) {
			log.Fatalf("/metrics missing expected series %s", want)
		}
	}

	slow, err := cl.Slow(ctx)
	if err != nil {
		log.Fatalf("fetch /admin/slow: %v", err)
	}
	if len(slow) == 0 {
		log.Fatal("/admin/slow empty despite -slowms 1")
	}
	if slow[0].Trace == nil {
		log.Fatal("slow ring entry has no trace")
	}

	if err := cl.EndSession(ctx, id); err != nil {
		log.Fatalf("end session: %v", err)
	}

	// SIGTERM must drain and exit cleanly.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		log.Fatalf("signal dexd: %v", err)
	}
	select {
	case err := <-exited:
		if err != nil {
			log.Fatalf("dexd exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		log.Fatal("dexd did not exit within 15s of SIGTERM")
	}

	fmt.Println("metrics smoke OK")
}
