// Command experiments regenerates every table/series of the reproduction
// (E1–E23, see DESIGN.md). By default all experiments run at full size;
// -run selects a comma-separated subset, -quick shrinks data sizes, -list
// prints the index.
//
// Usage:
//
//	experiments [-list] [-quick] [-seed N] [-run E2,E8,E17] [-o out.txt] [-json baseline.json]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"dex/internal/bench"
	"dex/internal/shard"
)

func main() {
	// E32 spawns worker copies of this binary; a worker invocation never
	// returns from this call.
	shard.MaybeWorkerProcess()
	list := flag.Bool("list", false, "list experiments and exit")
	quick := flag.Bool("quick", false, "shrink data sizes for a fast pass")
	seed := flag.Int64("seed", 42, "random seed")
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	out := flag.String("o", "", "also write output to this file")
	jsonPath := flag.String("json", "", "write machine-readable baselines (experiments that export them) to this file")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s (%s)\n", e.ID, e.Title, e.Source)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	var selected []bench.Experiment
	if *run == "" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", id)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	cfg := bench.Config{Quick: *quick, Seed: *seed, JSONPath: *jsonPath}
	mode := "full"
	if *quick {
		mode = "quick"
	}
	fmt.Fprintf(w, "dex experiment suite — %d experiment(s), %s mode, seed %d\n",
		len(selected), mode, *seed)
	start := time.Now()
	failures := 0
	for _, e := range selected {
		bench.Section(w, e)
		t0 := time.Now()
		if err := e.Run(w, cfg); err != nil {
			failures++
			fmt.Fprintf(w, "ERROR: %v\n", err)
			continue
		}
		fmt.Fprintf(w, "[%s completed in %v]\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Fprintf(w, "\nsuite finished in %v, %d failure(s)\n", time.Since(start).Round(time.Millisecond), failures)
	if failures > 0 {
		os.Exit(1)
	}
}
