// Benchmarks: one testing.B entry per experiment family (E2–E23). These are
// the micro-benchmark counterparts of cmd/experiments — the harness prints
// the full tables, these give per-operation costs under `go test -bench`.
package dex_test

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"dex"
	"dex/internal/adaptstore"
	"dex/internal/aqp"
	"dex/internal/crack"
	"dex/internal/diversify"
	"dex/internal/exec"
	"dex/internal/expr"
	"dex/internal/gesture"
	"dex/internal/olap"
	"dex/internal/onlineagg"
	"dex/internal/prefetch"
	"dex/internal/qbe"
	"dex/internal/rawload"
	"dex/internal/recommend"
	"dex/internal/sample"
	"dex/internal/seedb"
	"dex/internal/steer"
	"dex/internal/storage"
	"dex/internal/tsindex"
	"dex/internal/viz"
	"dex/internal/workload"
)

const benchN = 100_000

func benchCol(b *testing.B) []int64 {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	return workload.UniformInts(rng, benchN, benchN)
}

func benchSales(b *testing.B, n int) *storage.Table {
	b.Helper()
	rng := rand.New(rand.NewSource(2))
	t, err := workload.Sales(rng, n)
	if err != nil {
		b.Fatal(err)
	}
	return t
}

// E2: per-query cost of range counting under each index regime.
func BenchmarkE2CrackingQuery(b *testing.B) {
	col := benchCol(b)
	rng := rand.New(rand.NewSource(3))
	for _, v := range []struct {
		name string
		idx  crack.RangeIndex[int64]
	}{
		{"full-scan", crack.NewFullScan(col)},
		{"full-sort", crack.NewSorted(col)},
		{"cracking", crack.New(col, crack.Options{})},
	} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lo := int64(rng.Intn(benchN))
				v.idx.Count(lo, lo+1000)
			}
		})
	}
}

// E3: sequential-workload cracking by variant.
func BenchmarkE3SequentialWorkload(b *testing.B) {
	col := benchCol(b)
	for _, variant := range []crack.Variant{crack.Standard, crack.Stochastic} {
		b.Run(variant.String(), func(b *testing.B) {
			ix := crack.New(col, crack.Options{Variant: variant, Seed: 4})
			step := int64(benchN / 1000)
			for i := 0; i < b.N; i++ {
				lo := (int64(i) % 1000) * step
				ix.Count(lo, lo+step)
			}
		})
	}
}

// E4: insert cost into a cracked index (ripple merge amortized).
func BenchmarkE4CrackInsert(b *testing.B) {
	col := benchCol(b)
	ix := crack.New(col, crack.Options{MaxPending: 1024})
	rng := rand.New(rand.NewSource(5))
	for q := 0; q < 50; q++ { // pre-crack
		lo := int64(rng.Intn(benchN))
		ix.Count(lo, lo+500)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Insert(int64(rng.Intn(benchN)))
	}
}

// E5: concurrent range counts on a shared cracker.
func BenchmarkE5ConcurrentCrackQuery(b *testing.B) {
	col := benchCol(b)
	ix := crack.New(col, crack.Options{Variant: crack.Stochastic, Seed: 6})
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(7))
		for pb.Next() {
			lo := int64(rng.Intn(benchN))
			ix.Count(lo, lo+500)
		}
	})
}

// E6: in-situ query vs re-parsing the file.
func BenchmarkE6InSituQuery(b *testing.B) {
	dir := b.TempDir()
	rng := rand.New(rand.NewSource(8))
	ticks, err := workload.Ticks(rng, 20_000)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(dir, "t.csv")
	if err := storage.WriteCSVFile(ticks, path); err != nil {
		b.Fatal(err)
	}
	q := rawload.SelectivityProbe("price", 0, 200)
	b.Run("nodb-warm", func(b *testing.B) {
		raw, err := rawload.Open("t", path, ticks.Schema())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := raw.Query(q); err != nil { // warm the column cache
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := raw.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("external-scan", func(b *testing.B) {
		ext := rawload.NewExternalScan("t", path)
		for i := 0; i < b.N; i++ {
			if _, err := ext.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E7: single-column scan cost under row vs columnar physical layout.
func BenchmarkE7LayoutScan(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	cols := make([][]float64, 8)
	for c := range cols {
		cols[c] = make([]float64, 50_000)
		for r := range cols[c] {
			cols[c][r] = rng.Float64()
		}
	}
	for _, l := range []struct {
		name   string
		layout func(int) [][]int
	}{
		{"row-layout", func(k int) [][]int { return adaptRow(k) }},
		{"column-layout", func(k int) [][]int { return adaptCol(k) }},
	} {
		b.Run(l.name, func(b *testing.B) {
			s, err := newStore(cols, l.layout(8))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.ScanSum([]int{i % 8}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E8/E9: approximate aggregate on a 1% sample vs exact.
func BenchmarkE8ApproxAggregate(b *testing.B) {
	sales := benchSales(b, benchN)
	rng := rand.New(rand.NewSource(10))
	q := aqp.Query{Agg: exec.AggAvg, Col: "amount", GroupBy: "product"}
	s, err := sample.UniformFrac(rng, sales.NumRows(), 0.01)
	if err != nil {
		b.Fatal(err)
	}
	view := sales.Gather(s.Rows)
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := aqp.Exact(sales, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sample-1pct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := aqp.OnView(view, s.Weights, q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E10: one online-aggregation step.
func BenchmarkE10OnlineStep(b *testing.B) {
	sales := benchSales(b, benchN)
	q := aqp.Query{Agg: exec.AggAvg, Col: "amount"}
	r, err := onlineagg.New(sales, q, 11)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Done() {
			b.StopTimer()
			r, err = onlineagg.New(sales, q, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		if _, err := r.Step(1000); err != nil {
			b.Fatal(err)
		}
	}
}

// E11: weighted sample draw.
func BenchmarkE11WeightedSample(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	weights := make([]float64, benchN)
	for i := range weights {
		weights[i] = rng.Float64() + 0.01
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sample.Weighted(rng, weights, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// E12: one viewport request through the prefetching fetcher.
func BenchmarkE12PrefetchRequest(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	sky, err := workload.SkyCatalog(rng, 50_000)
	if err != nil {
		b.Fatal(err)
	}
	g, err := prefetch.NewGrid(sky, "ra", "dec", "mag", 40, 40)
	if err != nil {
		b.Fatal(err)
	}
	f, err := prefetch.NewFetcher(g, 1600, 8, prefetch.Momentum{})
	if err != nil {
		b.Fatal(err)
	}
	win := prefetch.Window{X0: 0, Y0: 0, X1: 2, Y1: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		win = win.Shift(1, 0).Clamp(40, 40)
		if win.X1 >= 39 {
			win = prefetch.Window{X0: 0, Y0: (win.Y0 + 1) % 37, X1: 2, Y1: (win.Y0+1)%37 + 2}
		}
		f.Request(win)
	}
}

// E13: cube view aggregation (the operation speculation hides).
func BenchmarkE13CubeView(b *testing.B) {
	sales := benchSales(b, benchN)
	cube, err := olap.Build(sales, []string{"region", "product", "quarter"}, "amount")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cube.Aggregate([]string{"product"}, map[string]string{"region": "east"}); err != nil {
			b.Fatal(err)
		}
	}
}

// E14: adaptive time-series k-NN query on a converged index.
func BenchmarkE14SeriesKNN(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	series := workload.SeriesCollection(rng, 5000, 64)
	q := workload.SeriesCollection(rng, 1, 64)[0]
	b.Run("adaptive-converged", func(b *testing.B) {
		db, err := tsindex.NewFullIndex(series, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.KNN(q, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("seq-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tsindex.SeqScanKNN(series, q, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E15: exception detection on a cube view grid.
func BenchmarkE15Exceptions(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	grid := make([][]float64, 20)
	for i := range grid {
		grid[i] = make([]float64, 30)
		for j := range grid[i] {
			grid[i][j] = float64(i) + 2*float64(j) + rng.NormFloat64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		olap.Exceptions(grid, 2.5)
	}
}

// E16: greedy MMR diversification.
func BenchmarkE16MMR(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	items := make([]diversify.Item, 2000)
	for i := range items {
		items[i] = diversify.Item{
			ID:       i,
			Rel:      rng.Float64(),
			Features: []float64{rng.Float64() * 10, rng.Float64() * 10},
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := diversify.MMR(items, 20, 0.3); err != nil {
			b.Fatal(err)
		}
	}
}

// E17: a full steering session.
func BenchmarkE17SteeringSession(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	sky, err := workload.SkyCatalog(rng, 5000)
	if err != nil {
		b.Fatal(err)
	}
	oracle := func(x []float64) bool {
		return x[0] >= 24 && x[0] < 36 && x[1] >= 4 && x[1] < 16
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := steer.New(sky, []string{"ra", "dec"}, oracle, steer.Options{Seed: int64(i), MaxIters: 6, TargetF1: 0.9})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// E18: conjunctive query discovery from 100 examples.
func BenchmarkE18QueryDiscovery(b *testing.B) {
	rng := rand.New(rand.NewSource(18))
	sky, err := workload.SkyCatalog(rng, 20_000)
	if err != nil {
		b.Fatal(err)
	}
	truth := expr.And(
		expr.Cmp("mag", expr.GE, storage.Float(16)),
		expr.Cmp("mag", expr.LT, storage.Float(19)),
	)
	all, err := expr.Filter(sky, truth)
	if err != nil {
		b.Fatal(err)
	}
	ex := all[:100]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qbe.DiscoverConjunctive(sky, ex, []string{"ra", "dec", "mag", "z"}); err != nil {
			b.Fatal(err)
		}
	}
}

// E19: next-query recommendation against a 300-session history.
func BenchmarkE19Recommend(b *testing.B) {
	var history []recommend.Session
	for i := 0; i < 300; i++ {
		history = append(history, recommend.Session{
			{"select:a", fmt.Sprintf("where:w%d", i%5)},
			{"agg:SUM(a)", "groupby:g", fmt.Sprintf("where:w%d", i%5)},
		})
	}
	r, err := recommend.New(history)
	if err != nil {
		b.Fatal(err)
	}
	prefix := recommend.Session{{"select:a", "where:w2"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.SuggestNextQuery(prefix, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// E20: SeeDB recommendation by strategy.
func BenchmarkE20SeeDB(b *testing.B) {
	sales := benchSales(b, 20_000)
	target := expr.Cmp("region", expr.EQ, storage.String_("east"))
	views := seedb.Candidates([]string{"product", "quarter"}, []string{"amount", "qty"},
		[]exec.AggFunc{exec.AggSum, exec.AggAvg})
	for _, strat := range []seedb.Strategy{seedb.Exhaustive, seedb.SharedScan, seedb.Pruned} {
		b.Run(strat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := seedb.Recommend(sales, target, views, seedb.Options{K: 3, Strategy: strat}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E21: M4 reduction of a 100k-point series.
func BenchmarkE21M4(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	ys := workload.RandomWalk(rng, benchN, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := viz.M4(ys, 400); err != nil {
			b.Fatal(err)
		}
	}
}

// E22: order-preserving sampling over 6 well-separated groups.
func BenchmarkE22OrderSample(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	groups := make([][]float64, 6)
	for g := range groups {
		groups[g] = make([]float64, 10_000)
		for i := range groups[g] {
			groups[g][i] = float64(g)*5 + rng.NormFloat64()*3
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := viz.OrderSample(groups, 50, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// E23: gesture trace synthesis.
func BenchmarkE23GestureSynthesis(b *testing.B) {
	schema := storage.Schema{
		{Name: "region", Type: storage.TString},
		{Name: "amount", Type: storage.TFloat},
		{Name: "qty", Type: storage.TInt},
	}
	trace := gesture.Trace{
		{Kind: gesture.Hold, Column: "region"},
		{Kind: gesture.SwipeRange, Column: "qty", Lo: 1, Hi: 5},
		{Kind: gesture.Pinch, Column: "amount", Agg: exec.AggAvg},
		{Kind: gesture.FlickDown, Column: "region"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gesture.Synthesize(schema, trace); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSQL measures the end-to-end facade.
func BenchmarkEngineSQL(b *testing.B) {
	e := dex.New(dex.Options{Seed: 23})
	if err := e.Register(benchSales(b, benchN)); err != nil {
		b.Fatal(err)
	}
	b.Run("exact-groupby", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.SQL("SELECT region, sum(amount) FROM sales GROUP BY region", dex.Exact); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cracked-range", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.SQL("SELECT count(*) FROM sales WHERE qty >= 2 AND qty < 6", dex.Cracked); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Thin wrappers keep the E7 benchmark readable.
func adaptRow(k int) [][]int { return adaptstore.RowLayout(k) }
func adaptCol(k int) [][]int { return adaptstore.ColumnLayout(k) }

func newStore(cols [][]float64, layout [][]int) (*adaptstore.Store, error) {
	return adaptstore.New(cols, layout)
}
