// Integration tests spanning the layers: they chain the UI, middleware and
// engine modules the way the example binaries do, asserting cross-module
// agreement rather than per-module behaviour.
package dex_test

import (
	"math"
	"math/rand"
	"testing"

	"dex"
	"dex/internal/aqp"
	"dex/internal/diversify"
	"dex/internal/exec"
	"dex/internal/expr"
	"dex/internal/olap"
	"dex/internal/onlineagg"
	"dex/internal/prefetch"
	"dex/internal/qbe"
	"dex/internal/seedb"
	"dex/internal/steer"
	"dex/internal/storage"
	"dex/internal/workload"
)

// TestSteeringToExecutionPipeline drives the astronomer scenario end to
// end: steer → extract query → execute → diversify → recommend views.
func TestSteeringToExecutionPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	sky, err := workload.SkyCatalog(rng, 8000)
	if err != nil {
		t.Fatal(err)
	}
	oracle := func(x []float64) bool {
		return x[0] >= 24 && x[0] < 36 && x[1] >= 4 && x[1] < 16
	}
	explorer, err := steer.New(sky, []string{"ra", "dec"}, oracle, steer.Options{
		Seed: 92, MaxIters: 12, TargetF1: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := explorer.Run(); err != nil {
		t.Fatal(err)
	}
	pred := explorer.Query()
	if pred == nil {
		t.Fatal("steering produced no query")
	}

	// The extracted predicate executes on the engine substrate.
	res, err := exec.Execute(sky, exec.Query{
		Select: []exec.SelectItem{{Col: "ra"}, {Col: "dec"}, {Col: "z"}},
		Where:  pred,
	})
	if err != nil {
		t.Fatalf("extracted query does not execute: %v", err)
	}
	if res.NumRows() == 0 {
		t.Fatal("extracted query returns nothing")
	}

	// Diversification over the result set picks distinct representatives.
	items := make([]diversify.Item, res.NumRows())
	ra, _ := res.ColumnByName("ra")
	dec, _ := res.ColumnByName("dec")
	for i := range items {
		items[i] = diversify.Item{
			ID:       i,
			Rel:      1,
			Features: []float64{ra.Value(i).AsFloat(), dec.Value(i).AsFloat()},
		}
	}
	k := 5
	if k > len(items) {
		k = len(items)
	}
	div, err := diversify.MMR(items, k, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(div.Picked) != k {
		t.Fatalf("diversified picks = %d", len(div.Picked))
	}

	// SeeDB over the steered subset returns a ranked, finite utility list.
	views := seedb.Candidates([]string{"class"}, []string{"z"}, []exec.AggFunc{exec.AggAvg, exec.AggCount})
	top, _, err := seedb.Recommend(sky, pred, views, seedb.Options{K: 2, Strategy: seedb.SharedScan})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || math.IsNaN(top[0].Utility) || top[0].Utility < top[1].Utility {
		t.Fatalf("seedb top = %+v", top)
	}
}

// TestApproximationLanesAgree cross-checks the three answer lanes — exact,
// sampled AQP, online aggregation — on the same query.
func TestApproximationLanesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	sales, err := workload.Sales(rng, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	q := aqp.Query{Agg: exec.AggAvg, Col: "amount", GroupBy: "region"}
	exact, err := aqp.Exact(sales, q)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := aqp.NewCatalog(sales, rng, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := cat.Approx(q, aqp.Bound{RelErr: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	runner, err := onlineagg.New(sales, q, 94)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.RunUntil(0.01, 4096); err != nil {
		t.Fatal(err)
	}
	online := runner.Estimates()

	byGroup := func(ests []aqp.GroupEstimate) map[string]float64 {
		m := map[string]float64{}
		for _, g := range ests {
			m[g.Group.String()] = g.Est
		}
		return m
	}
	ex, ap, on := byGroup(exact), byGroup(approx.Groups), byGroup(online)
	for g, truth := range ex {
		if rel := math.Abs(ap[g]-truth) / truth; rel > 0.05 {
			t.Errorf("approx %s rel err %.4f", g, rel)
		}
		if rel := math.Abs(on[g]-truth) / truth; rel > 0.05 {
			t.Errorf("online %s rel err %.4f", g, rel)
		}
	}
}

// TestCubeAndEngineAgree cross-checks olap cuboids against engine group-by.
func TestCubeAndEngineAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	sales, err := workload.Sales(rng, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := olap.Build(sales, []string{"region", "quarter"}, "amount")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := cube.Aggregate([]string{"region"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Execute(sales, exec.Query{
		Select:  []exec.SelectItem{{Col: "region"}, {Col: "amount", Agg: exec.AggSum}},
		GroupBy: []string{"region"},
		OrderBy: []exec.OrderKey{{Col: "region"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != res.NumRows() {
		t.Fatalf("groups %d vs %d", len(cells), res.NumRows())
	}
	for i, c := range cells {
		if c.Coords[0] != res.Row(i)[0].S || math.Abs(c.Sum-res.Row(i)[1].F) > 1e-6 {
			t.Errorf("cell %v vs row %v", c, res.Row(i))
		}
	}
}

// TestQBERoundTripThroughEngine: a hidden query's output, fed back as
// examples, reproduces the query through the engine SQL layer.
func TestQBERoundTripThroughEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	sales, err := workload.Sales(rng, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	hidden := expr.And(
		expr.Cmp("qty", expr.GE, storage.Int(3)),
		expr.Cmp("qty", expr.LE, storage.Int(6)),
	)
	rows, err := expr.Filter(sales, hidden)
	if err != nil {
		t.Fatal(err)
	}
	d, err := qbe.DiscoverConjunctive(sales, rows, []string{"qty", "amount"})
	if err != nil {
		t.Fatal(err)
	}
	_, rec, f1, err := qbe.Score(sales, d.Pred, hidden)
	if err != nil {
		t.Fatal(err)
	}
	if rec != 1 || f1 < 0.99 {
		t.Errorf("round trip recall=%v f1=%v (pred=%s)", rec, f1, d.Pred)
	}
}

// TestEngineWithPrefetchingGrid: in-memory engine tables feed the
// prefetching grid without copying surprises.
func TestEngineWithPrefetchingGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	sky, err := workload.SkyCatalog(rng, 5000)
	if err != nil {
		t.Fatal(err)
	}
	e := dex.New(dex.Options{Seed: 98})
	if err := e.Register(sky); err != nil {
		t.Fatal(err)
	}
	// Select via engine, then build a grid over the same table.
	res, err := e.SQL("SELECT count(*) FROM sky WHERE z > 2", dex.Exact)
	if err != nil {
		t.Fatal(err)
	}
	highZ := res.Row(0)[0].I
	if highZ == 0 {
		t.Fatal("no high-z objects")
	}
	g, err := prefetch.NewGrid(sky, "ra", "dec", "z", 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for x := 0; x < 10; x++ {
		for y := 0; y < 10; y++ {
			total += g.Fetch(prefetch.TileKey{X: x, Y: y}).Count
		}
	}
	if total != sky.NumRows() {
		t.Errorf("grid covers %d of %d rows", total, sky.NumRows())
	}
}

// TestEngineSQLDialect exercises the extended dialect end to end.
func TestEngineSQLDialect(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	sales, err := workload.Sales(rng, 5000)
	if err != nil {
		t.Fatal(err)
	}
	e := dex.New(dex.Options{})
	if err := e.Register(sales); err != nil {
		t.Fatal(err)
	}
	res, err := e.SQL(
		"SELECT region, sum(amount) FROM sales WHERE region IN ('east','west') AND product LIKE 'p0%' "+
			"GROUP BY region HAVING sum(amount) > 0 ORDER BY region",
		dex.Exact)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d\n%s", res.NumRows(), res.Format(10))
	}
	if res.Row(0)[0].S != "east" || res.Row(1)[0].S != "west" {
		t.Errorf("groups = %v, %v", res.Row(0)[0], res.Row(1)[0])
	}
}
