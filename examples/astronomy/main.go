// Astronomy: the tutorial's motivating user — an astronomer scanning a sky
// survey for "interesting" objects without knowing the query upfront.
// Explore-by-example steering learns the region from relevance feedback,
// the learned predicate becomes a real query, and diversification picks
// representative objects to show.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dex/internal/diversify"
	"dex/internal/exec"
	"dex/internal/steer"
	"dex/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	sky, err := workload.SkyCatalog(rng, 40_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sky survey: %d objects\n", sky.NumRows())

	// The astronomer recognizes high-redshift quasars when shown one; the
	// oracle stands in for their yes/no feedback. The hidden interest is
	// one of the planted clusters.
	oracle := func(x []float64) bool {
		// x = (ra, dec, z)
		return x[2] > 2.0 && x[0] >= 24 && x[0] < 36
	}
	explorer, err := steer.New(sky, []string{"ra", "dec", "z"}, oracle, steer.Options{
		Seed:     4,
		MaxIters: 15,
		TargetF1: 0.95,
	})
	if err != nil {
		log.Fatal(err)
	}
	trace, err := explorer.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsteering by relevance feedback:")
	for _, it := range trace {
		fmt.Printf("  round %2d: %4d labeled → F1 %.3f\n", it.Iter, it.Labeled, it.F1)
	}
	pred := explorer.Query()
	if pred == nil {
		log.Fatal("no interesting region found")
	}
	fmt.Printf("\nthe query the astronomer could not write:\n  SELECT * FROM sky WHERE %s\n", pred)

	res, err := exec.Execute(sky, exec.Query{
		Select: []exec.SelectItem{{Col: "ra"}, {Col: "dec"}, {Col: "mag"}, {Col: "z"}},
		Where:  pred,
		Limit:  0,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matching objects: %d\n", res.NumRows())

	// Show 6 spatially diverse candidates rather than 6 near-duplicates.
	items := make([]diversify.Item, res.NumRows())
	ra, _ := res.ColumnByName("ra")
	dec, _ := res.ColumnByName("dec")
	z, _ := res.ColumnByName("z")
	for i := range items {
		items[i] = diversify.Item{
			ID:       i,
			Rel:      z.Value(i).AsFloat(), // higher redshift = more interesting
			Features: []float64{ra.Value(i).AsFloat(), dec.Value(i).AsFloat()},
		}
	}
	k := 6
	if k > len(items) {
		k = len(items)
	}
	div, err := diversify.MMR(items, k, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrepresentative objects for follow-up observation:")
	for _, p := range div.Picked {
		fmt.Printf("  ra=%6.2f dec=%6.2f z=%.2f\n",
			items[p].Features[0], items[p].Features[1], items[p].Rel)
	}
}
