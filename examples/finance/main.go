// Finance: exploring a tick stream. Online aggregation delivers running
// per-symbol averages with shrinking confidence intervals long before the
// full scan ends; adaptive indexing (cracking) accelerates ad-hoc volume
// range queries; the time-series index finds historically similar price
// windows without a full index build.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dex/internal/aqp"
	"dex/internal/crack"
	"dex/internal/exec"
	"dex/internal/onlineagg"
	"dex/internal/storage"
	"dex/internal/tsindex"
	"dex/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(5))
	ticks, err := workload.Ticks(rng, 500_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tick table: %d rows\n", ticks.NumRows())

	// 1. Online aggregation: watch avg(price) per symbol converge.
	fmt.Println("\n[online aggregation] avg(price) per symbol while scanning:")
	runner, err := onlineagg.New(ticks, aqp.Query{Agg: exec.AggAvg, Col: "price", GroupBy: "symbol"}, 6)
	if err != nil {
		log.Fatal(err)
	}
	for _, pct := range []int{1, 5, 25} {
		for runner.Processed() < ticks.NumRows()*pct/100 {
			if _, err := runner.Step(10_000); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("  after %2d%% of the scan:\n", pct)
		for _, g := range runner.Estimates() {
			fmt.Printf("    %s: %8.2f ± %.2f\n", g.Group.S, g.Est, g.CI)
		}
	}

	// 2. Cracking: ad-hoc volume range queries self-index the column.
	fmt.Println("\n[adaptive indexing] ad-hoc volume range queries:")
	vc, err := ticks.ColumnByName("volume")
	if err != nil {
		log.Fatal(err)
	}
	ix := crack.New(vc.(*storage.IntColumn).V, crack.Options{Variant: crack.Stochastic, Seed: 7})
	for q := 0; q < 5; q++ {
		lo := int64(rng.Intn(400))
		n := ix.Count(lo, lo+50)
		fmt.Printf("  volume in [%d,%d): %d ticks (index now has %d pieces)\n",
			lo, lo+50, n, ix.NumPieces())
	}

	// 3. Similar price windows: adaptive series index over sliding windows
	//    of one symbol's price path.
	fmt.Println("\n[time-series exploration] windows most similar to the last hour:")
	pc, _ := ticks.ColumnByName("price")
	sc, _ := ticks.ColumnByName("symbol")
	var path []float64
	for i := 0; i < ticks.NumRows(); i++ {
		if sc.Value(i).S == "AAA" {
			path = append(path, pc.Value(i).AsFloat())
		}
	}
	const win = 64
	var windows [][]float64
	for i := 0; i+win <= len(path)-win; i += win / 2 {
		w := make([]float64, win)
		copy(w, path[i:i+win])
		windows = append(windows, w)
	}
	if len(windows) < 10 {
		log.Fatal("not enough AAA ticks")
	}
	db, err := tsindex.New(windows, 8, len(windows)/4)
	if err != nil {
		log.Fatal(err)
	}
	query := make([]float64, win)
	copy(query, path[len(path)-win:])
	matches, err := db.KNN(query, 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("  window #%d at distance %.2f\n", m.ID, m.Dist)
	}
	fmt.Printf("  (index built adaptively: %.0f%% summarized after one query)\n",
		db.IndexedFraction()*100)
}
