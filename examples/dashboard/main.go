// Dashboard: the visualization side of exploration. SeeDB recommends which
// views of a selected data subset deviate most from the rest; M4 reduction
// shrinks a million-point series to a few hundred points with zero pixel
// error; order-preserving sampling draws a bar chart whose ordering is
// statistically guaranteed from a fraction of the data.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dex/internal/exec"
	"dex/internal/expr"
	"dex/internal/seedb"
	"dex/internal/storage"
	"dex/internal/viz"
	"dex/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(8))
	sales, err := workload.Sales(rng, 200_000)
	if err != nil {
		log.Fatal(err)
	}

	// 1. SeeDB: the analyst selected the east region — which charts are
	//    worth showing about it?
	fmt.Println("[SeeDB] most deviating views of region='east' vs everything else:")
	target := expr.Cmp("region", expr.EQ, storage.String_("east"))
	views := seedb.Candidates(
		[]string{"product", "quarter"},
		[]string{"amount", "qty"},
		[]exec.AggFunc{exec.AggSum, exec.AggAvg, exec.AggCount},
	)
	top, stats, err := seedb.Recommend(sales, target, views, seedb.Options{K: 3, Strategy: seedb.Pruned})
	if err != nil {
		log.Fatal(err)
	}
	for i, s := range top {
		fmt.Printf("  %d. %-25s utility %.3f\n", i+1, s.View, s.Utility)
	}
	fmt.Printf("  (%d candidate views, %d pruned early, %d row-reads)\n",
		len(views), stats.ViewsPruned, stats.RowsScanned)

	// Render the winning view as a bar chart.
	best := top[0].View
	res, err := exec.Execute(sales, exec.Query{
		Select: []exec.SelectItem{
			{Col: best.Dim},
			{Col: best.Measure, Agg: best.Agg},
		},
		Where:   target,
		GroupBy: []string{best.Dim},
		OrderBy: []exec.OrderKey{{Col: best.Dim}},
	})
	if err != nil {
		log.Fatal(err)
	}
	labels := make([]string, res.NumRows())
	vals := make([]float64, res.NumRows())
	for i := 0; i < res.NumRows(); i++ {
		labels[i] = res.Row(i)[0].String()
		vals[i] = res.Row(i)[1].AsFloat()
	}
	fmt.Printf("\n%s for region='east':\n%s", best, viz.BarChart(labels, vals, 40))

	// 2. M4: a million-point price path at 120 pixels.
	fmt.Println("[M4] 1,000,000-point series reduced for a 120px chart:")
	series := workload.RandomWalk(rng, 1_000_000, 1)
	idx, err := viz.M4(series, 120)
	if err != nil {
		log.Fatal(err)
	}
	pe, err := viz.PixelError(series, idx, 120, 24)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  kept %d of %d points (%.0fx reduction), pixel error %.4f\n",
		len(idx), len(series), float64(len(series))/float64(len(idx)), pe)
	fmt.Print(viz.LineChart(viz.Downsample(series, idx), 120, 16))

	// 3. Order-preserving sampling: per-product average bars whose order is
	//    guaranteed without scanning everything.
	fmt.Println("\n[order-preserving sampling] avg(amount) per quarter:")
	qc, _ := sales.ColumnByName("quarter")
	ac, _ := sales.ColumnByName("amount")
	groups := map[string][]float64{}
	for i := 0; i < sales.NumRows(); i++ {
		q := qc.Value(i).S
		groups[q] = append(groups[q], ac.Value(i).AsFloat())
	}
	names := []string{"q1", "q2", "q3", "q4"}
	gs := make([][]float64, len(names))
	for i, n := range names {
		gs[i] = groups[n]
	}
	resOrd, err := viz.OrderSample(gs, 200, 9)
	if err != nil {
		log.Fatal(err)
	}
	taken := 0
	for _, k := range resOrd.Taken {
		taken += k
	}
	fmt.Printf("  sampled %d of %d rows; ordering resolved: %v\n",
		taken, sales.NumRows(), resOrd.Resolved)
	fmt.Print(viz.BarChart(names, resOrd.Means, 40))
}
