// Quickstart: the public dex API in one minute — build a table, register
// it, and run the same aggregate under all four execution modes.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dex"
)

func main() {
	e := dex.New(dex.Options{Seed: 1})

	// Build a small synthetic orders table.
	tbl, err := dex.NewTable("orders", dex.Schema{
		{Name: "region", Type: dex.TString},
		{Name: "amount", Type: dex.TFloat},
		{Name: "qty", Type: dex.TInt},
	})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	regions := []string{"east", "west", "north", "south"}
	for i := 0; i < 200_000; i++ {
		err := tbl.AppendRow(
			dex.Str(regions[rng.Intn(len(regions))]),
			dex.Float(100+rng.NormFloat64()*25),
			dex.Int(int64(rng.Intn(1000))),
		)
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := e.Register(tbl); err != nil {
		log.Fatal(err)
	}

	// 1. Exact execution.
	fmt.Println("== exact ==")
	res, err := e.SQL("SELECT region, avg(amount), count(*) FROM orders GROUP BY region ORDER BY region", dex.Exact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Format(10))

	// 2. Adaptive indexing: the first range query cracks the qty column;
	//    repeats get faster without any CREATE INDEX.
	fmt.Println("\n== cracked (adaptive indexing) ==")
	for i := 0; i < 3; i++ {
		res, err = e.SQL("SELECT count(*) FROM orders WHERE qty >= 100 AND qty < 200", dex.Cracked)
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Print(res.Format(5))
	if pieces, cracks, ok := e.CrackStats("orders", "qty"); ok {
		fmt.Printf("(index built as a side effect: %d pieces after %d cracks)\n", pieces, cracks)
	}

	// 3. Approximate: answers from a sample, with a confidence interval.
	fmt.Println("\n== approx (sampling + error bounds) ==")
	res, err = e.SQL("SELECT avg(amount) FROM orders", dex.Approx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Format(5))

	// 4. Online aggregation: scan in random order until the CI is tight.
	fmt.Println("\n== online (progressive refinement) ==")
	res, err = e.SQL("SELECT region, avg(amount) FROM orders GROUP BY region", dex.Online)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Format(10))
}
