// Insitu: NoDB-style querying of raw CSV files. The file is never "loaded";
// the first query tokenizes and parses only the columns it touches, builds
// a positional map as a side effect, and later queries — even on new
// columns — get cheaper. Work counters show exactly what was avoided.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"dex/internal/exec"
	"dex/internal/rawload"
	"dex/internal/storage"
	"dex/internal/workload"
)

func main() {
	// Write a raw data file to disk, as an instrument would.
	dir, err := os.MkdirTemp("", "dex-insitu-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	rng := rand.New(rand.NewSource(10))
	ticks, err := workload.Ticks(rng, 300_000)
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(dir, "ticks.csv")
	if err := storage.WriteCSVFile(ticks, path); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("raw file: %s (%.1f MB, %d rows, untouched by any loader)\n",
		filepath.Base(path), float64(info.Size())/1e6, ticks.NumRows())

	raw, err := rawload.Open("ticks", path, ticks.Schema())
	if err != nil {
		log.Fatal(err)
	}

	query := func(label string, q exec.Query) {
		start := time.Now()
		res, err := raw.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		st := raw.Stats()
		fmt.Printf("\n%s  (%v)\n%s", label, time.Since(start).Round(time.Millisecond), res.Format(6))
		fmt.Printf("  cumulative work: %d fields parsed, %d columns cached, %d positional-map columns\n",
			st.FieldsParsed, st.ColumnsCached, st.PositionalCols)
	}

	// Q1 touches only `price`: one column of the file is parsed.
	query("Q1: SELECT min(price), max(price) FROM ticks", exec.Query{
		Select: []exec.SelectItem{
			{Col: "price", Agg: exec.AggMin},
			{Col: "price", Agg: exec.AggMax},
		},
	})

	// Q2 touches `price` again: served from the parsed-column cache.
	query("Q2: SELECT avg(price) FROM ticks  -- cached column", exec.Query{
		Select: []exec.SelectItem{{Col: "price", Agg: exec.AggAvg}},
	})

	// Q3 touches `volume`: the positional map from Q1 shortens the
	// tokenizing walk to the new column.
	query("Q3: SELECT symbol, sum(volume) FROM ticks GROUP BY symbol", exec.Query{
		Select: []exec.SelectItem{
			{Col: "symbol"},
			{Col: "volume", Agg: exec.AggSum},
		},
		GroupBy: []string{"symbol"},
		OrderBy: []exec.OrderKey{{Col: "symbol"}},
	})

	// The `ts` column was never needed — and never parsed.
	fmt.Printf("\ncolumns never touched were never parsed: %d of %d columns materialized\n",
		raw.Stats().ColumnsCached, len(ticks.Schema()))
}
