module dex

go 1.22
