// Package dex is a data-exploration engine: a reproduction, as one coherent
// Go library, of the technique families surveyed in "Overview of Data
// Exploration Techniques" (Idreos, Papaemmanouil, Chaudhuri — SIGMOD 2015).
//
// The public surface is the engine facade: register or attach tables, then
// query them in one of four execution modes:
//
//	e := dex.New(dex.Options{})
//	_ = e.LoadCSV("sales", "sales.csv")
//	res, _ := e.SQL("SELECT region, avg(amount) FROM sales GROUP BY region", dex.Approx)
//	fmt.Print(res.Format(20))
//
// Exact executes fully; Cracked builds adaptive indexes as a side effect of
// range queries (database cracking); Approx answers aggregates from
// pre-built samples with confidence intervals (BlinkDB-style AQP); Online
// streams an answer whose confidence interval shrinks until it meets the
// target (online aggregation).
//
// The technique families themselves — adaptive indexing, adaptive loading,
// adaptive storage, sampling, prefetching, cube exploration,
// diversification, explore-by-example steering, query-by-example discovery,
// query recommendation, visualization recommendation and reduction, time
// series indexing, gestural queries — live in the internal packages and are
// exercised by the experiment harness (cmd/experiments) and the examples.
package dex

import (
	"dex/internal/core"
	"dex/internal/exec"
	"dex/internal/storage"
)

// Engine is the exploration engine facade.
type Engine = core.Engine

// Session tracks one user's exploration and powers query recommendation.
type Session = core.Session

// TableProfile is the data-profiling summary returned by Engine.Profile.
type TableProfile = core.TableProfile

// ColumnProfile summarizes one column inside a TableProfile.
type ColumnProfile = core.ColumnProfile

// Options configures an Engine.
type Options = core.Options

// ExecOptions tunes the morsel-driven parallel operators used by Exact
// mode (Options.Exec): Parallelism 0 means GOMAXPROCS, 1 is sequential.
type ExecOptions = exec.ExecOptions

// Mode selects how a query executes.
type Mode = core.Mode

// Execution modes.
const (
	Exact   = core.Exact
	Cracked = core.Cracked
	Approx  = core.Approx
	Online  = core.Online
)

// Re-exported sentinel errors.
var (
	ErrBadMode     = core.ErrBadMode
	ErrNotApprox   = core.ErrNotApprox
	ErrNoSuchTable = core.ErrNoSuchTable
)

// Table is an in-memory column-store table.
type Table = storage.Table

// Schema describes a table's fields.
type Schema = storage.Schema

// Field is one schema attribute.
type Field = storage.Field

// Value is a dynamically typed scalar.
type Value = storage.Value

// Column types.
const (
	TInt    = storage.TInt
	TFloat  = storage.TFloat
	TString = storage.TString
)

// New creates an engine.
func New(opt Options) *Engine { return core.New(opt) }

// ParseMode parses a mode name ("exact", "cracked", "approx", "online";
// "" means Exact). It returns ErrBadMode for anything else.
func ParseMode(s string) (Mode, error) { return core.ParseMode(s) }

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema Schema) (*Table, error) {
	return storage.NewTable(name, schema)
}

// ReadCSVFile loads a CSV file into a table.
func ReadCSVFile(name, path string) (*Table, error) {
	return storage.ReadCSVFile(name, path)
}

// WriteCSVFile writes a table to a CSV file.
func WriteCSVFile(t *Table, path string) error {
	return storage.WriteCSVFile(t, path)
}

// Int, Float and Str build values.
func Int(i int64) Value     { return storage.Int(i) }
func Float(f float64) Value { return storage.Float(f) }
func Str(s string) Value    { return storage.String_(s) }
