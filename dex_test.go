package dex_test

import (
	"math"
	"path/filepath"
	"testing"

	"dex"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	e := dex.New(dex.Options{Seed: 7})
	tbl, err := dex.NewTable("orders", dex.Schema{
		{Name: "item", Type: dex.TString},
		{Name: "price", Type: dex.TFloat},
		{Name: "n", Type: dex.TInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	items := []string{"apple", "pear", "plum"}
	for i := 0; i < 3000; i++ {
		err := tbl.AppendRow(
			dex.Str(items[i%3]),
			dex.Float(float64(10+i%50)),
			dex.Int(int64(i%9)),
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Register(tbl); err != nil {
		t.Fatal(err)
	}

	exact, err := e.SQL("SELECT item, avg(price) FROM orders GROUP BY item ORDER BY item", dex.Exact)
	if err != nil {
		t.Fatal(err)
	}
	if exact.NumRows() != 3 {
		t.Fatalf("groups = %d", exact.NumRows())
	}

	cracked, err := e.SQL("SELECT count(*) FROM orders WHERE n >= 2 AND n < 5", dex.Cracked)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := e.SQL("SELECT count(*) FROM orders WHERE n >= 2 AND n < 5", dex.Exact)
	if cracked.Row(0)[0].I != want.Row(0)[0].I {
		t.Error("cracked != exact")
	}

	approx, err := e.SQL("SELECT avg(price) FROM orders", dex.Approx)
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := e.SQL("SELECT avg(price) FROM orders", dex.Exact)
	if rel := math.Abs(approx.Row(0)[0].F-truth.Row(0)[0].F) / truth.Row(0)[0].F; rel > 0.1 {
		t.Errorf("approx rel err = %.4f", rel)
	}

	online, err := e.SQL("SELECT sum(price) FROM orders", dex.Online)
	if err != nil {
		t.Fatal(err)
	}
	if online.NumRows() != 1 {
		t.Error("online result shape")
	}
}

func TestPublicCSVRoundTrip(t *testing.T) {
	e := dex.New(dex.Options{})
	tbl, _ := dex.NewTable("t", dex.Schema{{Name: "x", Type: dex.TInt}})
	for i := int64(0); i < 10; i++ {
		_ = tbl.AppendRow(dex.Int(i))
	}
	path := filepath.Join(t.TempDir(), "t.csv")
	if err := dex.WriteCSVFile(tbl, path); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadCSV("t", path); err != nil {
		t.Fatal(err)
	}
	res, err := e.SQL("SELECT sum(x) FROM t", dex.Exact)
	if err != nil {
		t.Fatal(err)
	}
	if res.Row(0)[0].F != 45 {
		t.Errorf("sum = %v", res.Row(0)[0])
	}
	// In-situ attach of the same file under another name.
	if err := e.AttachCSV("t2", path, tbl.Schema()); err != nil {
		t.Fatal(err)
	}
	res2, err := e.SQL("SELECT max(x) FROM t2", dex.Exact)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Row(0)[0].I != 9 {
		t.Errorf("max = %v", res2.Row(0)[0])
	}
}

func TestSessionAPI(t *testing.T) {
	e := dex.New(dex.Options{})
	tbl, _ := dex.NewTable("t", dex.Schema{{Name: "x", Type: dex.TInt}})
	_ = tbl.AppendRow(dex.Int(1))
	_ = e.Register(tbl)
	s := e.NewSession()
	if _, err := s.Query("SELECT x FROM t", dex.Exact); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Errorf("len = %d", s.Len())
	}
	s.End()
}
