GO ?= go

.PHONY: all build test race vet fuzz bench

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full suite under the race detector; the concurrency tests in
# internal/core and internal/par are written to give it something to bite.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Short exploratory fuzz of the SQL parser beyond the seed corpus.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/sqlparse/

bench:
	$(GO) test -bench=. -benchtime=1x ./internal/bench/
