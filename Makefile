GO ?= go

.PHONY: all build test race vet fmt-check fuzz fuzz-kernels fuzz-aggkernels bench bench-concurrency bench-idebench bench-kernels bench-aggkernels bench-shard chaos metrics-smoke cluster-smoke

all: vet fmt-check build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full suite under the race detector; the concurrency tests in
# internal/core and internal/par are written to give it something to bite.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Fail if any file is not gofmt-clean; prints the offenders.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Short exploratory fuzz of the SQL parser beyond the seed corpus.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/sqlparse/

# Differential fuzz of the typed predicate kernels against the generic
# evaluator: random tables (plain + dict/RLE-encoded twins, NaN/±Inf,
# int64 extremes) and random conjunctions; any divergence is a bug.
fuzz-kernels:
	$(GO) test -fuzz=FuzzKernelVsGeneric -fuzztime=60s -run '^$$' ./internal/expr/

# Differential fuzz of the typed aggregation kernels: random agg/group-by
# queries over plain + dict/RLE twin tables (NaN/±Inf, int64 extremes,
# fused and fallback WHERE shapes), oracle = sequential generic execution.
fuzz-aggkernels:
	$(GO) test -fuzz=FuzzAggKernelVsGeneric -fuzztime=60s -run '^$$' ./internal/exec/

bench:
	$(GO) test -bench=. -benchtime=1x ./internal/bench/

# Regenerate the concurrent-probe / zone-map baseline (E30) at full size
# and refresh the committed JSON artifact.
bench-concurrency:
	$(GO) run ./cmd/experiments -run E30 -json BENCH_concurrency.json

# Regenerate the IDEBench-style multi-user session baseline (E31) at full
# size — 4 modes × {10,40,100} users plus the prefetch on/off pair — and
# refresh the committed JSON artifact. `go run ./cmd/dexbench` drives
# custom matrices (or an external dexd via -addr).
bench-idebench:
	$(GO) run ./cmd/experiments -run E31 -json BENCH_idebench.json

# Regenerate the typed-kernel / compressed-column scan baseline (E33) —
# kernel vs generic at 1%/10%/50% selectivity plus the dict/RLE encoded
# comparisons — and refresh the committed JSON artifact.
bench-kernels:
	$(GO) run ./cmd/experiments -run E33 -json BENCH_kernels.json

# Regenerate the typed-aggregation baseline (E34) — generic vs predicate
# kernels vs the fused filter→aggregate pipeline, scalar selectivity sweep
# plus dict/int/RLE group-bys — merging the agg section into the committed
# BENCH_kernels.json (E33's scan/encoded sections are preserved).
bench-aggkernels:
	$(GO) run ./cmd/experiments -run E34 -json BENCH_kernels.json

# Regenerate the distributed scatter/gather baseline (E32) at full size —
# the sales table hash-partitioned across 1/2/4 dexd worker processes over
# loopback TCP (healing enabled, as deployed), plus the worker-kill
# degradation demo and its heal: the killed worker restarts blank and the
# coordinator re-stages it back to exactly full coverage — and refresh the
# committed JSON artifact.
bench-shard:
	$(GO) run ./cmd/experiments -run E32 -json BENCH_shard.json

# Seeded chaos harness + cross-mode differential oracles under the race
# detector, twice per seed (CI runs the same line with DEX_CHAOS_SEED
# pinned per matrix job). `go run ./cmd/dexchaos` drives bigger schedules.
chaos:
	$(GO) test -race -run 'Chaos|Oracle' -count=2 ./internal/chaos/ ./internal/exec/

# End-to-end observability smoke: builds dexd, boots it, drives a traced
# session, validates /metrics exposition and /admin/slow, SIGTERM-drains.
metrics-smoke:
	$(GO) run ./cmd/dexsmoke

# Multi-process cluster smoke: spawns a dexd worker fleet plus a
# coordinator over loopback TCP, runs one query per execution mode,
# checks the scatter/gather count against placed rows, kills a worker,
# verifies honest degraded coverage, then restarts the worker blank and
# gates on the healer restoring coverage to exactly 1.0.
cluster-smoke:
	$(GO) run ./cmd/dexcluster -smoke
