// Package exec implements the relational operators of the engine: filtered
// scans, projection, aggregation, hash group-by, hash join, order-by and
// limit, composed through a declarative Query value. Execution is fully
// materialized, column-at-a-time — the style of the main-memory column
// stores targeted by the adaptive-indexing literature.
package exec

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"dex/internal/expr"
	"dex/internal/storage"
)

// Package-level sentinel errors.
var (
	ErrEmptySelect  = errors.New("exec: empty select list")
	ErrBadAggregate = errors.New("exec: aggregate over non-numeric column")
	ErrMixedSelect  = errors.New("exec: plain column in aggregate query must appear in GROUP BY")
)

// AggFunc identifies an aggregate function.
type AggFunc uint8

// Supported aggregates. AggNone marks a plain column reference.
const (
	AggNone AggFunc = iota
	AggCount
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String returns the SQL name of the aggregate.
func (a AggFunc) String() string {
	switch a {
	case AggNone:
		return ""
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AggFunc(%d)", uint8(a))
	}
}

// SelectItem is one output expression: a plain column (AggNone) or an
// aggregate over a column. For AggCount the column may be "*".
type SelectItem struct {
	Col string
	Agg AggFunc
	As  string // optional output name
}

// Name returns the output column name for the item.
func (s SelectItem) Name() string {
	if s.As != "" {
		return s.As
	}
	if s.Agg == AggNone {
		return s.Col
	}
	return fmt.Sprintf("%s(%s)", strings.ToLower(s.Agg.String()), s.Col)
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Col  string
	Desc bool
}

// Query is a declarative single-table query:
// SELECT items FROM t WHERE pred GROUP BY cols ORDER BY keys LIMIT n.
type Query struct {
	Select  []SelectItem
	Where   *expr.Pred
	GroupBy []string
	// Having filters the grouped output; it references output column names
	// (e.g. "sum(amount)" or the alias).
	Having  *expr.Pred
	OrderBy []OrderKey
	Limit   int // 0 means no limit
}

// HasAggregates reports whether any select item is an aggregate.
func (q Query) HasAggregates() bool {
	for _, s := range q.Select {
		if s.Agg != AggNone {
			return true
		}
	}
	return false
}

// String renders the query as SQL-ish text (for logs and session history).
func (q Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, s := range q.Select {
		if i > 0 {
			b.WriteString(", ")
		}
		if s.Agg == AggNone {
			b.WriteString(s.Col)
		} else {
			fmt.Fprintf(&b, "%s(%s)", s.Agg, s.Col)
		}
	}
	if q.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(q.Where.String())
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		b.WriteString(strings.Join(q.GroupBy, ", "))
	}
	if q.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(q.Having.String())
	}
	for i, k := range q.OrderBy {
		if i == 0 {
			b.WriteString(" ORDER BY ")
		} else {
			b.WriteString(", ")
		}
		b.WriteString(k.Col)
		if k.Desc {
			b.WriteString(" DESC")
		}
	}
	if q.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	return b.String()
}

// Execute runs the query against the table sequentially and returns a
// result table. ExecuteOpts selects the morsel-driven parallel operators.
func Execute(t *storage.Table, q Query) (*storage.Table, error) {
	return ExecuteOpts(t, q, ExecOptions{Parallelism: 1})
}

// Finish applies the post-aggregation tail of a query — HAVING, ORDER BY
// and LIMIT — to an already-aggregated table. It is exported for the
// distributed coordinator, which merges per-shard partials itself and
// then needs exactly this tail applied to the merged output; out's
// column names must match the query's output names (SelectItem.Name).
func Finish(out *storage.Table, q Query) (*storage.Table, error) {
	return finish(out, q)
}

// finish applies the post-aggregation tail of a query — HAVING, ORDER BY
// and LIMIT — to the operator output. These stages run sequentially in both
// execution paths: they see at most the grouped output, which is small.
func finish(out *storage.Table, q Query) (*storage.Table, error) {
	var err error
	if q.Having != nil {
		if len(q.GroupBy) == 0 && !q.HasAggregates() {
			return nil, fmt.Errorf("exec: HAVING without aggregation")
		}
		hsel, herr := expr.Filter(out, q.Having)
		if herr != nil {
			return nil, herr
		}
		out = out.Gather(hsel)
	}
	for i := len(q.OrderBy) - 1; i >= 0; i-- { // stable multi-key sort
		out, err = out.SortBy(q.OrderBy[i].Col, q.OrderBy[i].Desc)
		if err != nil {
			return nil, err
		}
	}
	if q.Limit > 0 && out.NumRows() > q.Limit {
		idx := make([]int, q.Limit)
		for i := range idx {
			idx[i] = i
		}
		out = out.Gather(idx)
	}
	return out, nil
}

func project(t *storage.Table, sel []int, q Query) (*storage.Table, error) {
	names := make([]string, len(q.Select))
	for i, s := range q.Select {
		names[i] = s.Col
	}
	p, err := t.Project(names...)
	if err != nil {
		return nil, err
	}
	out := p.Gather(sel)
	return renameResult(out, q.Select)
}

func renameResult(t *storage.Table, items []SelectItem) (*storage.Table, error) {
	schema := make(storage.Schema, t.NumCols())
	cols := make([]storage.Column, t.NumCols())
	for i := range cols {
		schema[i] = storage.Field{Name: items[i].Name(), Type: t.Schema()[i].Type}
		cols[i] = t.Column(i)
	}
	return storage.FromColumns(t.Name(), schema, cols)
}

// aggState accumulates one aggregate over a stream of values. A float NaN
// is the engine's NULL: aggregates skip it entirely (SQL semantics —
// COUNT(col), SUM, AVG, MIN and MAX all ignore NULLs; COUNT(*) counts every
// row via addCountOnly). Skipping NaN also makes the state a commutative
// monoid under merge, which the parallel operators rely on: without it,
// MIN/MAX folds over incomparable values would depend on morsel boundaries.
type aggState struct {
	fn    AggFunc
	count int64
	sum   float64
	min   storage.Value
	max   storage.Value
	has   bool
}

func (a *aggState) add(v storage.Value) {
	if v.Typ == storage.TFloat && math.IsNaN(v.F) {
		return
	}
	a.count++
	a.sum += v.AsFloat()
	if !a.has {
		a.min, a.max, a.has = v, v, true
		return
	}
	if v.Compare(a.min) < 0 {
		a.min = v
	}
	if v.Compare(a.max) > 0 {
		a.max = v
	}
}

func (a *aggState) addCountOnly() { a.count++ }

// merge folds another partial state (same aggregate function) into a. It is
// the combine step of parallel aggregation: each worker accumulates its own
// morsels, then partials merge pairwise.
func (a *aggState) merge(b *aggState) {
	a.count += b.count
	a.sum += b.sum
	if !b.has {
		return
	}
	if !a.has {
		a.min, a.max, a.has = b.min, b.max, true
		return
	}
	if b.min.Compare(a.min) < 0 {
		a.min = b.min
	}
	if b.max.Compare(a.max) > 0 {
		a.max = b.max
	}
}

func (a *aggState) result() storage.Value {
	switch a.fn {
	case AggCount:
		return storage.Int(a.count)
	case AggSum:
		return storage.Float(a.sum)
	case AggAvg:
		if a.count == 0 {
			return storage.Float(math.NaN())
		}
		return storage.Float(a.sum / float64(a.count))
	case AggMin:
		if !a.has {
			return storage.Float(math.NaN())
		}
		return a.min
	case AggMax:
		if !a.has {
			return storage.Float(math.NaN())
		}
		return a.max
	default:
		return storage.Value{}
	}
}

func (a *aggState) resultType() storage.Type {
	switch a.fn {
	case AggCount:
		return storage.TInt
	case AggMin, AggMax:
		if a.has {
			return a.min.Typ
		}
		return storage.TFloat
	default:
		return storage.TFloat
	}
}

func aggColumn(t *storage.Table, item SelectItem) (storage.Column, error) {
	if item.Agg == AggCount && (item.Col == "*" || item.Col == "") {
		return nil, nil // COUNT(*) needs no input column
	}
	c, err := t.ColumnByName(item.Col)
	if err != nil {
		return nil, err
	}
	if item.Agg != AggCount && item.Agg != AggMin && item.Agg != AggMax && c.Type() == storage.TString {
		return nil, fmt.Errorf("%s(%s): %w", item.Agg, item.Col, ErrBadAggregate)
	}
	return c, nil
}

// scalarInputs validates an aggregate-only select list and resolves the
// input column of every item (nil for COUNT(*)).
func scalarInputs(t *storage.Table, q Query) ([]storage.Column, error) {
	inputs := make([]storage.Column, len(q.Select))
	for i, item := range q.Select {
		if item.Agg == AggNone {
			return nil, fmt.Errorf("column %q: %w", item.Col, ErrMixedSelect)
		}
		c, err := aggColumn(t, item)
		if err != nil {
			return nil, err
		}
		inputs[i] = c
	}
	return inputs, nil
}

// newAggStates allocates one fresh state per select item (nil for plain
// columns, which only occur in the group-by path).
func newAggStates(q Query) []*aggState {
	states := make([]*aggState, len(q.Select))
	for i, item := range q.Select {
		if item.Agg != AggNone {
			states[i] = &aggState{fn: item.Agg}
		}
	}
	return states
}

// accumulateScalar feeds rows sel[lo:hi] into the states.
func accumulateScalar(inputs []storage.Column, states []*aggState, sel []int, lo, hi int) {
	for _, row := range sel[lo:hi] {
		for i, st := range states {
			if inputs[i] == nil {
				st.addCountOnly()
			} else {
				st.add(inputs[i].Value(row))
			}
		}
	}
}

func scalarAggregate(t *storage.Table, sel []int, q Query) (*storage.Table, error) {
	inputs, err := scalarInputs(t, q)
	if err != nil {
		return nil, err
	}
	states := newAggStates(q)
	accumulateScalar(inputs, states, sel, 0, len(sel))
	return buildScalarOutput(t, q, states)
}

// buildScalarOutput renders final aggregate states as a one-row table.
func buildScalarOutput(t *storage.Table, q Query, states []*aggState) (*storage.Table, error) {
	schema := make(storage.Schema, len(states))
	cols := make([]storage.Column, len(states))
	for i, st := range states {
		schema[i] = storage.Field{Name: q.Select[i].Name(), Type: st.resultType()}
		col := storage.NewColumn(schema[i].Type)
		v := st.result()
		// Coerce to the declared column type.
		switch schema[i].Type {
		case storage.TInt:
			v = storage.Int(v.AsInt())
		case storage.TFloat:
			v = storage.Float(v.AsFloat())
		}
		if err := col.Append(v); err != nil {
			return nil, err
		}
		cols[i] = col
	}
	return storage.FromColumns(t.Name(), schema, cols)
}

type groupEntry struct {
	key    []storage.Value
	states []*aggState
	// first is the position in the selection vector of the group's first
	// row. The parallel path sorts merged groups by it so output order
	// matches the sequential first-seen order exactly.
	first int
}

// groupInputs resolves the grouping columns and per-item aggregate inputs,
// validating that every plain select column is a grouping column.
func groupInputs(t *storage.Table, q Query) (groupCols, inputs []storage.Column, err error) {
	groupCols = make([]storage.Column, len(q.GroupBy))
	for i, g := range q.GroupBy {
		c, err := t.ColumnByName(g)
		if err != nil {
			return nil, nil, err
		}
		groupCols[i] = c
	}
	inGroup := func(name string) bool {
		for _, g := range q.GroupBy {
			if g == name {
				return true
			}
		}
		return false
	}
	inputs = make([]storage.Column, len(q.Select))
	for i, item := range q.Select {
		if item.Agg == AggNone {
			if !inGroup(item.Col) {
				return nil, nil, fmt.Errorf("column %q: %w", item.Col, ErrMixedSelect)
			}
			continue
		}
		c, err := aggColumn(t, item)
		if err != nil {
			return nil, nil, err
		}
		inputs[i] = c
	}
	return groupCols, inputs, nil
}

// groupTable is one hash-aggregation table: entries keyed by the encoded
// group key, with insertion order preserved. The sequential path builds a
// single one; the parallel path builds one per worker and merges.
type groupTable struct {
	groups map[string]*groupEntry
	order  []string
}

func newGroupTable() *groupTable {
	return &groupTable{groups: make(map[string]*groupEntry)}
}

// keyAppender returns a function appending the column's row to a group
// key buffer. Key building is the generic group-by's hot loop, so the
// common representations skip boxing: int and float columns render digits
// straight from the raw slice, dict columns append the code (codes and
// values are 1:1, so code keys group identically). Only other columns pay
// Value(row).String().
func keyAppender(gc storage.Column) func(b []byte, row int) []byte {
	switch c := gc.(type) {
	case *storage.IntColumn:
		v := c.V
		return func(b []byte, row int) []byte { return strconv.AppendInt(b, v[row], 10) }
	case *storage.DictColumn:
		codes := c.Codes()
		return func(b []byte, row int) []byte { return strconv.AppendInt(b, int64(codes[row]), 10) }
	case *storage.FloatColumn:
		v := c.V
		return func(b []byte, row int) []byte { return strconv.AppendFloat(b, v[row], 'g', -1, 64) }
	default:
		return func(b []byte, row int) []byte { return append(b, gc.Value(row).String()...) }
	}
}

// accumulate feeds rows sel[lo:hi] into the table. The recorded first-seen
// position is the index into sel, which totally orders groups exactly as a
// sequential scan of the whole selection vector would first meet them.
//
// The key buffer is reused across rows, and the map probe goes through the
// zero-copy string(keyBuf) lookup — a key string is allocated only when a
// group is first seen.
func (gt *groupTable) accumulate(groupCols, inputs []storage.Column, q Query, sel []int, lo, hi int) {
	appenders := make([]func(b []byte, row int) []byte, len(groupCols))
	for i, gc := range groupCols {
		appenders[i] = keyAppender(gc)
	}
	var keyBuf []byte
	for idx := lo; idx < hi; idx++ {
		row := sel[idx]
		keyBuf = keyBuf[:0]
		for _, ap := range appenders {
			keyBuf = ap(keyBuf, row)
			keyBuf = append(keyBuf, '\x00')
		}
		e, ok := gt.groups[string(keyBuf)]
		if !ok {
			k := string(keyBuf)
			key := make([]storage.Value, len(groupCols))
			for i, gc := range groupCols {
				key[i] = gc.Value(row)
			}
			e = &groupEntry{key: key, states: newAggStates(q), first: idx}
			gt.groups[k] = e
			gt.order = append(gt.order, k)
		}
		for i, st := range e.states {
			if st == nil {
				continue
			}
			if inputs[i] == nil {
				st.addCountOnly()
			} else {
				st.add(inputs[i].Value(row))
			}
		}
	}
}

// merge folds another table's entries into gt, keeping the smaller
// first-seen position per group.
func (gt *groupTable) merge(o *groupTable) {
	for _, k := range o.order {
		oe := o.groups[k]
		e, ok := gt.groups[k]
		if !ok {
			gt.groups[k] = oe
			gt.order = append(gt.order, k)
			continue
		}
		if oe.first < e.first {
			e.first = oe.first
		}
		for i, st := range e.states {
			if st != nil {
				st.merge(oe.states[i])
			}
		}
	}
}

func groupBy(t *storage.Table, sel []int, q Query) (*storage.Table, error) {
	groupCols, inputs, err := groupInputs(t, q)
	if err != nil {
		return nil, err
	}
	gt := newGroupTable()
	gt.accumulate(groupCols, inputs, q, sel, 0, len(sel))
	return buildGroupOutput(t, q, inputs, gt)
}

// buildGroupOutput renders a finished group table, one row per group in
// first-seen order.
func buildGroupOutput(t *storage.Table, q Query, inputs []storage.Column, gt *groupTable) (*storage.Table, error) {
	entries := make([]*groupEntry, 0, len(gt.order))
	for _, k := range gt.order {
		entries = append(entries, gt.groups[k])
	}
	return buildGroupEntries(t, q, inputs, entries)
}

// buildGroupEntries renders group entries as an output table, one row per
// entry in the given order. Both group-by implementations — the generic
// hash table and the typed group kernels — end here.
func buildGroupEntries(t *storage.Table, q Query, inputs []storage.Column, entries []*groupEntry) (*storage.Table, error) {
	// Build output schema: group columns keep their type; aggregates typed
	// by function.
	schema := make(storage.Schema, len(q.Select))
	for i, item := range q.Select {
		if item.Agg == AggNone {
			gi := t.Schema().Index(item.Col)
			schema[i] = storage.Field{Name: item.Name(), Type: t.Schema()[gi].Type}
			continue
		}
		typ := storage.TFloat
		switch item.Agg {
		case AggCount:
			typ = storage.TInt
		case AggMin, AggMax:
			if c := inputs[i]; c != nil {
				typ = c.Type()
			}
		}
		schema[i] = storage.Field{Name: item.Name(), Type: typ}
	}
	cols := make([]storage.Column, len(schema))
	for i := range cols {
		cols[i] = storage.NewColumn(schema[i].Type)
	}
	groupIdx := make([]int, len(q.Select))
	for i, item := range q.Select {
		groupIdx[i] = -1
		if item.Agg == AggNone {
			for gi, g := range q.GroupBy {
				if g == item.Col {
					groupIdx[i] = gi
					break
				}
			}
		}
	}
	for _, e := range entries {
		for i := range q.Select {
			var v storage.Value
			if gi := groupIdx[i]; gi >= 0 {
				v = e.key[gi]
			} else {
				v = e.states[i].result()
			}
			switch schema[i].Type {
			case storage.TInt:
				v = storage.Int(v.AsInt())
			case storage.TFloat:
				v = storage.Float(v.AsFloat())
			}
			if err := cols[i].Append(v); err != nil {
				return nil, err
			}
		}
	}
	return storage.FromColumns(t.Name(), schema, cols)
}

// Distinct returns the distinct values of the named column, sorted ascending.
func Distinct(t *storage.Table, col string) ([]storage.Value, error) {
	c, err := t.ColumnByName(col)
	if err != nil {
		return nil, err
	}
	seen := map[string]storage.Value{}
	for i := 0; i < c.Len(); i++ {
		v := c.Value(i)
		seen[v.String()] = v
	}
	out := make([]storage.Value, 0, len(seen))
	for _, v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Compare(out[b]) < 0 })
	return out, nil
}
