package exec

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"dex/internal/expr"
	"dex/internal/fault"
	"dex/internal/storage"
)

// encodeParityTable force-encodes the parity table's encodable columns —
// d as run-length, s as dictionary — sharing k and x. The heuristics are
// deliberately bypassed: the matrix tests representation semantics, not
// compression policy.
func encodeParityTable(t *testing.T, tbl *storage.Table) *storage.Table {
	t.Helper()
	cols := make([]storage.Column, tbl.NumCols())
	for i := 0; i < tbl.NumCols(); i++ {
		switch cc := tbl.Column(i).(type) {
		case *storage.StringColumn:
			cols[i] = storage.EncodeDict(cc.V)
		case *storage.IntColumn:
			if tbl.Schema()[i].Name == "d" {
				cols[i] = storage.EncodeRLE(cc.V)
			} else {
				cols[i] = cc
			}
		default:
			cols[i] = cc
		}
	}
	enc, err := storage.FromColumns(tbl.Name(), tbl.Schema(), cols)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// TestKernelEncodingParityMatrix is the full-matrix extension of the E26
// parity harness: sequential plain execution is the oracle, and every
// combination of kernels on/off × encodings on/off (× zone maps, which
// must compose) over random tables and queries must match it exactly.
func TestKernelEncodingParityMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 120; iter++ {
		rows := []int{0, 1, 2, 13, 100, 1000}[rng.Intn(6)]
		nanFrac := []float64{0, 0.05, 0.5}[rng.Intn(3)]
		tbl := randParityTable(rng, rows, nanFrac)
		enc := encodeParityTable(t, tbl)
		q := randQuery(rng)
		base := ExecOptions{
			Parallelism: 2 + rng.Intn(6),
			MorselSize:  []int{1, 3, 16, 64}[rng.Intn(4)],
			ZoneMap:     iter%2 == 0,
		}
		oracle, oracleErr := Execute(tbl, q)
		arms := []struct {
			name    string
			tbl     *storage.Table
			kernels bool
		}{
			{"plain+kernels", tbl, true},
			{"encoded+generic", enc, false},
			{"encoded+kernels", enc, true},
		}
		for _, arm := range arms {
			opt := base
			opt.Kernels = arm.kernels
			got, err := ExecuteOpts(arm.tbl, q, opt)
			label := fmt.Sprintf("iter=%d arm=%s rows=%d zone=%v par=%d morsel=%d q=%s",
				iter, arm.name, rows, base.ZoneMap, base.Parallelism, base.MorselSize, q)
			if (oracleErr == nil) != (err == nil) {
				t.Fatalf("%s: error mismatch oracle=%v got=%v", label, oracleErr, err)
			}
			if oracleErr != nil {
				continue
			}
			requireSameTable(t, label, oracle, got)
		}
	}
}

// TestSelPoolReset pins the pooled-buffer reset fix at both levels: the
// getSel contract (a claimed buffer always has length zero, whatever its
// previous life held), and end to end — a short low-selectivity query
// immediately after a long high-selectivity one cannot observe stale rows.
func TestSelPoolReset(t *testing.T) {
	buf := getSel()
	*buf = append(*buf, 7, 8, 9)
	putSel(buf)
	again := getSel()
	if len(*again) != 0 {
		t.Fatalf("pooled buffer claimed with %d stale entries", len(*again))
	}
	putSel(again)

	rng := rand.New(rand.NewSource(41))
	long := randParityTable(rng, 40000, 0)
	short := randParityTable(rng, 37, 0)
	opt := ExecOptions{Parallelism: 4, MorselSize: 512, Kernels: true}
	// Long morsels, everything selected: every pooled buffer fills up.
	q := Query{Select: []SelectItem{{Col: "k"}}, Where: expr.Cmp("d", expr.GE, storage.Int(0))}
	if _, err := ExecuteOpts(long, q, opt); err != nil {
		t.Fatal(err)
	}
	// Short morsels, few rows selected: stale tails would surface as extra
	// rows versus the sequential oracle.
	q2 := Query{Select: []SelectItem{{Col: "k"}}, Where: expr.Cmp("d", expr.EQ, storage.Int(3))}
	opt2 := opt
	opt2.MorselSize = 8
	want, err := Execute(short, q2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExecuteOpts(short, q2, opt2)
	if err != nil {
		t.Fatal(err)
	}
	requireSameTable(t, "short after long", want, got)
}

// TestSelPoolNoLeak: every buffer claimed during a query returns to the
// pool — on success, on a mid-scan injected error, and on cancellation by
// deadline while morsels are in flight.
func TestSelPoolNoLeak(t *testing.T) {
	fault.Reset()
	defer fault.Reset()
	rng := rand.New(rand.NewSource(43))
	tbl := randParityTable(rng, 30000, 0)
	q := Query{Select: []SelectItem{{Col: "k"}}, Where: expr.Cmp("k", expr.GE, storage.Int(-500))}
	opt := ExecOptions{Parallelism: 4, MorselSize: 256, Kernels: true}

	baseline := selOutstanding.Load()
	if _, err := ExecuteOpts(tbl, q, opt); err != nil {
		t.Fatal(err)
	}
	if got := selOutstanding.Load(); got != baseline {
		t.Fatalf("success path: %d buffers outstanding", got-baseline)
	}

	// A one-shot scan fault: one morsel errors, the others' buffers must
	// still come back.
	if err := fault.Enable("exec/scan", "error-once"); err != nil {
		t.Fatal(err)
	}
	if _, err := ExecuteOpts(tbl, q, opt); err == nil {
		t.Fatal("expected injected scan error")
	}
	fault.Disable("exec/scan")
	if got := selOutstanding.Load(); got != baseline {
		t.Fatalf("error path: %d buffers outstanding", got-baseline)
	}

	// Cancellation mid-scan: per-morsel latency makes the deadline expire
	// while workers hold claimed buffers.
	if err := fault.Enable("exec/scan", "latency(2ms)"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Millisecond)
	defer cancel()
	if _, err := ExecuteCtx(ctx, tbl, q, opt); err == nil {
		t.Fatal("expected deadline error")
	}
	fault.Disable("exec/scan")
	if got := selOutstanding.Load(); got != baseline {
		t.Fatalf("cancellation path: %d buffers outstanding", got-baseline)
	}
}

// TestKernelDispatchFailpoint: an armed exec/kernel-dispatch site fails
// kernel queries (and only kernel queries — the generic path has no such
// seam).
func TestKernelDispatchFailpoint(t *testing.T) {
	fault.Reset()
	defer fault.Reset()
	rng := rand.New(rand.NewSource(47))
	tbl := randParityTable(rng, 200, 0)
	q := Query{Select: []SelectItem{{Col: "k"}}, Where: expr.Cmp("k", expr.GT, storage.Int(0))}
	if err := fault.Enable("exec/kernel-dispatch", "error"); err != nil {
		t.Fatal(err)
	}
	if _, err := ExecuteOpts(tbl, q, ExecOptions{Kernels: true}); err == nil {
		t.Fatal("expected injected dispatch error")
	}
	if _, err := ExecuteOpts(tbl, q, ExecOptions{}); err != nil {
		t.Fatalf("generic path must not hit the kernel seam: %v", err)
	}
	// Fallback predicates skip the seam too: dispatch never happened.
	qf := Query{Select: []SelectItem{{Col: "k"}}, Where: expr.Like("s", "re%")}
	if _, err := ExecuteOpts(tbl, qf, ExecOptions{Kernels: true}); err != nil {
		t.Fatalf("fallback predicate must not hit the kernel seam: %v", err)
	}
}
