package exec

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"dex/internal/expr"
	"dex/internal/fault"
	"dex/internal/storage"
)

// TestCompileAggKernelShapes pins the compile contract: which query shapes
// bind to the typed path and the stable fallback reason for each shape
// that does not. Compilation never errors — invalid queries fall back so
// the generic operators report their canonical errors.
func TestCompileAggKernelShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tbl := randParityTable(rng, 50, 0)
	enc := encodeParityTable(t, tbl)
	wide := func() *storage.Table {
		ss := make([]string, maxDictGroups+1)
		for i := range ss {
			ss[i] = fmt.Sprintf("g%05d", i)
		}
		w, err := storage.FromColumns("w", storage.Schema{{Name: "s", Type: storage.TString}},
			[]storage.Column{storage.EncodeDict(ss)})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}()

	cases := []struct {
		name   string
		tbl    *storage.Table
		q      Query
		reason string // "" = must compile
	}{
		{"scalar over int+float", tbl, Query{Select: []SelectItem{
			{Col: "*", Agg: AggCount}, {Col: "k", Agg: AggSum}, {Col: "x", Agg: AggMin}}}, ""},
		{"count over string", tbl, Query{Select: []SelectItem{{Col: "s", Agg: AggCount}}}, ""},
		{"min over string", tbl, Query{Select: []SelectItem{{Col: "s", Agg: AggMin}}}, "string agg input"},
		{"int group", tbl, Query{Select: []SelectItem{{Col: "d"}, {Col: "x", Agg: AggAvg}},
			GroupBy: []string{"d"}}, ""},
		{"dict group", enc, Query{Select: []SelectItem{{Col: "s"}, {Col: "x", Agg: AggSum}},
			GroupBy: []string{"s"}}, ""},
		{"rle group", enc, Query{Select: []SelectItem{{Col: "d"}, {Col: "k", Agg: AggMax}},
			GroupBy: []string{"d"}}, ""},
		{"plain string group", tbl, Query{Select: []SelectItem{{Col: "s"}, {Col: "x", Agg: AggSum}},
			GroupBy: []string{"s"}}, "group column type"},
		{"float group", tbl, Query{Select: []SelectItem{{Col: "x"}, {Col: "k", Agg: AggSum}},
			GroupBy: []string{"x"}}, "group column type"},
		{"multi group", tbl, Query{Select: []SelectItem{{Col: "d"}, {Col: "s"}, {Col: "x", Agg: AggSum}},
			GroupBy: []string{"d", "s"}}, "multi-column group"},
		{"wide dict group", wide, Query{Select: []SelectItem{{Col: "s"}, {Col: "*", Agg: AggCount}},
			GroupBy: []string{"s"}}, "dict cardinality"},
		{"invalid mixed select", tbl, Query{Select: []SelectItem{{Col: "k"}, {Col: "x", Agg: AggSum}}}, "invalid query"},
		{"unknown column", tbl, Query{Select: []SelectItem{{Col: "nope", Agg: AggSum}}}, "invalid query"},
	}
	for _, tc := range cases {
		ak, reason := compileAggKernel(tc.tbl, tc.q)
		if tc.reason == "" {
			if ak == nil {
				t.Errorf("%s: expected compile, fell back: %s", tc.name, reason)
			}
			continue
		}
		if ak != nil {
			t.Errorf("%s: expected fallback %q, compiled", tc.name, tc.reason)
		} else if reason != tc.reason {
			t.Errorf("%s: fallback reason = %q, want %q", tc.name, reason, tc.reason)
		}
	}
}

// TestAggKernelInt64Extremes pins the min/max tie-breaking semantics the
// generic oracle gets from Value.Compare: int64 values straddling 2^53
// compare in the float64 domain, so the first seen among float-equal
// values must win on the typed path too.
func TestAggKernelInt64Extremes(t *testing.T) {
	mk := func(v []int64) *storage.Table {
		tbl, err := storage.FromColumns("t", storage.Schema{{Name: "k", Type: storage.TInt}},
			[]storage.Column{&storage.IntColumn{V: v}})
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	q := Query{Select: []SelectItem{
		{Col: "k", Agg: AggMin}, {Col: "k", Agg: AggMax}, {Col: "k", Agg: AggSum}}}
	for _, v := range [][]int64{
		{1<<53 + 1, 1 << 53},
		{1 << 53, 1<<53 + 1},
		{math.MaxInt64, math.MaxInt64 - 1, math.MinInt64},
		{-(1<<53 + 1), -(1 << 53), 0},
	} {
		tbl := mk(v)
		want, err := Execute(tbl, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ExecuteOpts(tbl, q, ExecOptions{Parallelism: 1, AggKernels: true})
		if err != nil {
			t.Fatal(err)
		}
		requireSameTable(t, fmt.Sprintf("extremes %v", v), want, got)
	}
}

// TestFusedAggSkipsGlobalSelection is the allocation-counting proof of the
// channel-less handoff: a fused aggregate over a wide-open predicate must
// not materialize the global selection vector. The unfused pipeline
// (predicate kernels alone) allocates the merged []int — megabytes at this
// row count — while the fused path's whole footprint stays under a small
// constant, because its only per-morsel buffer is pooled and returned.
func TestFusedAggSkipsGlobalSelection(t *testing.T) {
	const rows = 500_000
	rng := rand.New(rand.NewSource(61))
	tbl := randParityTable(rng, rows, 0)
	q := Query{
		Select: []SelectItem{{Col: "x", Agg: AggSum}, {Col: "*", Agg: AggCount}},
		Where:  expr.Cmp("k", expr.GE, storage.Int(-500)), // matches every row
	}
	allocPerRun := func(opt ExecOptions) uint64 {
		if _, err := ExecuteOpts(tbl, q, opt); err != nil { // warm pools and caches
			t.Fatal(err)
		}
		const reps = 5
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < reps; i++ {
			if _, err := ExecuteOpts(tbl, q, opt); err != nil {
				t.Fatal(err)
			}
		}
		runtime.ReadMemStats(&after)
		return (after.TotalAlloc - before.TotalAlloc) / reps
	}
	// Sequential on both sides: no goroutine or scheduling allocations in
	// the measurement, just the pipeline's own buffers.
	fused := allocPerRun(ExecOptions{Parallelism: 1, AggKernels: true})
	unfused := allocPerRun(ExecOptions{Parallelism: 1, Kernels: true})
	t.Logf("rows=%d fused=%dB unfused=%dB", rows, fused, unfused)
	const selBytes = rows * 8 // the merged []int the fused path must not build
	if unfused < selBytes/2 {
		t.Fatalf("unfused pipeline allocated %dB; expected the %dB global selection vector — measurement broken", unfused, selBytes)
	}
	if fused > selBytes/16 {
		t.Fatalf("fused pipeline allocated %dB per query; global selection (%dB) apparently materialized", fused, selBytes)
	}
}

// TestAggSelPoolNoLeak extends the pooled-buffer leak guard to the fused
// pipeline: scalar and group-by aggregates return every claimed buffer on
// success, on injected mid-scan errors, and on cancellation.
func TestAggSelPoolNoLeak(t *testing.T) {
	fault.Reset()
	defer fault.Reset()
	rng := rand.New(rand.NewSource(67))
	tbl := randParityTable(rng, 30000, 0)
	opt := ExecOptions{Parallelism: 4, MorselSize: 256, AggKernels: true}
	queries := []Query{
		{Select: []SelectItem{{Col: "x", Agg: AggSum}, {Col: "*", Agg: AggCount}},
			Where: expr.Cmp("k", expr.GE, storage.Int(-100))},
		{Select: []SelectItem{{Col: "d"}, {Col: "x", Agg: AggAvg}},
			GroupBy: []string{"d"},
			Where:   expr.Cmp("k", expr.LE, storage.Int(100))},
	}
	for qi, q := range queries {
		baseline := selOutstanding.Load()
		if _, err := ExecuteOpts(tbl, q, opt); err != nil {
			t.Fatal(err)
		}
		if got := selOutstanding.Load(); got != baseline {
			t.Fatalf("q%d success path: %d buffers outstanding", qi, got-baseline)
		}
		if err := fault.Enable("exec/scan", "error-once"); err != nil {
			t.Fatal(err)
		}
		if _, err := ExecuteOpts(tbl, q, opt); err == nil {
			t.Fatal("expected injected scan error")
		}
		fault.Disable("exec/scan")
		if got := selOutstanding.Load(); got != baseline {
			t.Fatalf("q%d error path: %d buffers outstanding", qi, got-baseline)
		}
		if err := fault.Enable("exec/scan", "latency(2ms)"); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 8*time.Millisecond)
		if _, err := ExecuteCtx(ctx, tbl, q, opt); err == nil {
			t.Fatal("expected deadline error")
		}
		cancel()
		fault.Disable("exec/scan")
		if got := selOutstanding.Load(); got != baseline {
			t.Fatalf("q%d cancellation path: %d buffers outstanding", qi, got-baseline)
		}
	}
}

// TestAggKernelDispatchFailpoint: the fused pipeline passes the same
// kernel-dispatch seam as the filtered scan — once per query whose WHERE
// compiles — and skips it when the aggregation runs dense (no predicate)
// or the predicate falls back.
func TestAggKernelDispatchFailpoint(t *testing.T) {
	fault.Reset()
	defer fault.Reset()
	rng := rand.New(rand.NewSource(71))
	tbl := randParityTable(rng, 200, 0)
	opt := ExecOptions{AggKernels: true}
	if err := fault.Enable("exec/kernel-dispatch", "error"); err != nil {
		t.Fatal(err)
	}
	q := Query{Select: []SelectItem{{Col: "x", Agg: AggSum}},
		Where: expr.Cmp("k", expr.GT, storage.Int(0))}
	if _, err := ExecuteOpts(tbl, q, opt); err == nil {
		t.Fatal("expected injected dispatch error on the fused path")
	}
	dense := Query{Select: []SelectItem{{Col: "x", Agg: AggSum}}}
	if _, err := ExecuteOpts(tbl, dense, opt); err != nil {
		t.Fatalf("dense aggregation must not hit the kernel seam: %v", err)
	}
	fallback := Query{Select: []SelectItem{{Col: "x", Agg: AggSum}},
		Where: expr.Like("s", "re%")}
	if _, err := ExecuteOpts(tbl, fallback, opt); err != nil {
		t.Fatalf("fallback predicate must not hit the kernel seam: %v", err)
	}
}

// TestAggKernelCounters: the hit/fallback counters move exactly when the
// typed path is taken / declined, and stay still with AggKernels off.
func TestAggKernelCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	tbl := randParityTable(rng, 100, 0)
	var hits, falls atomic.Int64
	opt := ExecOptions{AggKernels: true, AggKernelHits: &hits, AggKernelFallbacks: &falls}
	agg := Query{Select: []SelectItem{{Col: "x", Agg: AggSum}}}
	if _, err := ExecuteOpts(tbl, agg, opt); err != nil {
		t.Fatal(err)
	}
	multi := Query{Select: []SelectItem{{Col: "d"}, {Col: "s"}, {Col: "*", Agg: AggCount}},
		GroupBy: []string{"d", "s"}}
	if _, err := ExecuteOpts(tbl, multi, opt); err != nil {
		t.Fatal(err)
	}
	proj := Query{Select: []SelectItem{{Col: "k"}}}
	if _, err := ExecuteOpts(tbl, proj, opt); err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 1 || falls.Load() != 1 {
		t.Fatalf("hits=%d fallbacks=%d, want 1/1", hits.Load(), falls.Load())
	}
	off := ExecOptions{AggKernelHits: &hits, AggKernelFallbacks: &falls}
	if _, err := ExecuteOpts(tbl, agg, off); err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 1 || falls.Load() != 1 {
		t.Fatalf("counters moved with AggKernels off: hits=%d fallbacks=%d", hits.Load(), falls.Load())
	}
}
