package exec

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"dex/internal/expr"
	"dex/internal/fault"
	"dex/internal/storage"
	"dex/internal/trace"
)

// zoneSkipped runs the query traced and returns the result plus the scan
// span's zone_skipped counter.
func zoneSkipped(t *testing.T, tbl *storage.Table, q Query, opt ExecOptions) (*storage.Table, int64) {
	t.Helper()
	ctx, sp := trace.Start(context.Background(), "q")
	res, err := ExecuteCtx(ctx, tbl, q, opt)
	sp.End()
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	js := sp.JSON()
	for _, c := range js.Children {
		if c.Name == "scan" {
			if v, ok := c.Attrs["zone_skipped"].(int64); ok {
				return res, v
			}
			return res, 0
		}
	}
	return res, 0
}

// TestZoneMapParityProperty is the zone-map correctness harness: for random
// tables (clustered and unclustered, NaN-polluted and clean) and random
// queries — including the OR/NOT/string shapes pruning must ignore — the
// zone-map-on output must equal the zone-map-off output exactly.
func TestZoneMapParityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 150; iter++ {
		rows := []int{0, 1, 13, 100, 1000}[rng.Intn(5)]
		nanFrac := []float64{0, 0.05, 1}[rng.Intn(3)]
		tbl := randParityTable(rng, rows, nanFrac)
		if rng.Intn(2) == 0 && rows > 0 {
			// Cluster on a numeric column: the case where pruning fires.
			sorted, err := tbl.SortBy([]string{"k", "x"}[rng.Intn(2)], false)
			if err != nil {
				t.Fatal(err)
			}
			tbl = sorted
		}
		q := randQuery(rng)
		opt := ExecOptions{
			Parallelism: 1 + rng.Intn(4),
			MorselSize:  []int{1, 3, 16, 64}[rng.Intn(4)],
		}
		label := fmt.Sprintf("iter=%d rows=%d nan=%.2f par=%d morsel=%d q=%s",
			iter, rows, nanFrac, opt.Parallelism, opt.MorselSize, q)
		off, offErr := ExecuteOpts(tbl, q, opt)
		zopt := opt
		zopt.ZoneMap = true
		on, onErr := ExecuteOpts(tbl, q, zopt)
		if (offErr == nil) != (onErr == nil) {
			t.Fatalf("%s: error mismatch off=%v on=%v", label, offErr, onErr)
		}
		if offErr != nil {
			continue
		}
		requireSameTable(t, label, off, on)
	}
}

// TestZoneMapSkipsClusteredMorsels pins the tentpole behavior: on a table
// clustered by the predicate column, a selective range scan skips most
// morsels (visible in the scan span's zone_skipped attr) and still returns
// the exact row set.
func TestZoneMapSkipsClusteredMorsels(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tbl := randParityTable(rng, 10_000, 0)
	sorted, err := tbl.SortBy("k", false)
	if err != nil {
		t.Fatal(err)
	}
	// k is uniform over [-500, 500): [0, 50) selects ~5% of rows, clustered
	// into a handful of the ~40 morsels of 256.
	q := Query{
		Select: []SelectItem{{Col: "k"}, {Col: "x"}},
		Where: expr.And(
			expr.Cmp("k", expr.GE, storage.Int(0)),
			expr.Cmp("k", expr.LT, storage.Int(50)),
		),
	}
	opt := ExecOptions{Parallelism: 2, MorselSize: 256}
	want, err := ExecuteOpts(sorted, q, opt)
	if err != nil {
		t.Fatal(err)
	}
	zopt := opt
	zopt.ZoneMap = true
	got, skipped := zoneSkipped(t, sorted, q, zopt)
	requireSameTable(t, "clustered range scan", want, got)
	morsels := int64(storage.NumChunks(10_000, 256))
	if skipped < morsels/2 {
		t.Errorf("skipped %d of %d morsels, want at least half", skipped, morsels)
	}
	// The same query on the unclustered table prunes essentially nothing —
	// and must still be correct.
	gotU, skippedU := zoneSkipped(t, tbl, q, zopt)
	wantU, err := ExecuteOpts(tbl, q, opt)
	if err != nil {
		t.Fatal(err)
	}
	requireSameTable(t, "unclustered range scan", wantU, gotU)
	t.Logf("clustered skipped=%d/%d, unclustered skipped=%d", skipped, morsels, skippedU)
}

// TestZoneMapNonPrunableShapes: predicates pruning cannot reason about —
// disjunctions, negations, string comparisons, NE — skip nothing and stay
// correct.
func TestZoneMapNonPrunableShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	tbl := randParityTable(rng, 5_000, 0.05)
	sorted, err := tbl.SortBy("k", false)
	if err != nil {
		t.Fatal(err)
	}
	preds := []*expr.Pred{
		expr.Or(
			expr.Cmp("k", expr.GE, storage.Int(400)),
			expr.Cmp("k", expr.LT, storage.Int(-400)),
		),
		expr.Not(expr.Cmp("k", expr.LT, storage.Int(0))),
		expr.Cmp("s", expr.EQ, storage.String_("red")),
		expr.Cmp("k", expr.NE, storage.Int(0)),
	}
	opt := ExecOptions{Parallelism: 2, MorselSize: 256, ZoneMap: true}
	for i, p := range preds {
		q := Query{Select: []SelectItem{{Col: "k"}}, Where: p}
		want, err := ExecuteOpts(sorted, q, ExecOptions{Parallelism: 2, MorselSize: 256})
		if err != nil {
			t.Fatal(err)
		}
		got, skipped := zoneSkipped(t, sorted, q, opt)
		requireSameTable(t, fmt.Sprintf("pred %d", i), want, got)
		if skipped != 0 {
			t.Errorf("pred %d: skipped %d morsels from a non-prunable shape", i, skipped)
		}
	}
}

// TestZoneMapMixedConjunction: in a conjunction, the comparison conjuncts
// prune and the rest (a string equality) just filters — the combination
// must both skip morsels and produce the exact rows.
func TestZoneMapMixedConjunction(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	tbl := randParityTable(rng, 10_000, 0)
	sorted, err := tbl.SortBy("k", false)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{
		Select: []SelectItem{{Col: "k"}, {Col: "s"}},
		Where: expr.And(
			expr.Cmp("k", expr.GE, storage.Int(300)),
			expr.Cmp("s", expr.EQ, storage.String_("green")),
		),
	}
	want, err := ExecuteOpts(sorted, q, ExecOptions{Parallelism: 2, MorselSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	got, skipped := zoneSkipped(t, sorted, q, ExecOptions{Parallelism: 2, MorselSize: 256, ZoneMap: true})
	requireSameTable(t, "mixed conjunction", want, got)
	if skipped == 0 {
		t.Error("no morsels skipped despite the clustered range conjunct")
	}
}

// TestZoneMapBuildFaultFailsScan: an armed zonemap-build failpoint fails
// the zone-map-on query with the injected error; the zone-map-off path
// never touches the build and succeeds.
func TestZoneMapBuildFaultFailsScan(t *testing.T) {
	fault.Reset()
	defer fault.Reset()
	rng := rand.New(rand.NewSource(43))
	tbl := randParityTable(rng, 2_000, 0)
	q := Query{
		Select: []SelectItem{{Col: "k"}},
		Where:  expr.Cmp("k", expr.GE, storage.Int(0)),
	}
	if err := fault.Enable("storage/zonemap-build", "error(1.0)"); err != nil {
		t.Fatal(err)
	}
	_, err := ExecuteOpts(tbl, q, ExecOptions{Parallelism: 2, MorselSize: 256, ZoneMap: true})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("zone-map-on under armed build fault: err = %v, want injected", err)
	}
	if _, err := ExecuteOpts(tbl, q, ExecOptions{Parallelism: 2, MorselSize: 256}); err != nil {
		t.Fatalf("zone-map-off under armed build fault: %v", err)
	}
}
