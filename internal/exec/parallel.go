// Morsel-driven parallel operators. The hot, order-insensitive operators —
// filtered scan, scalar aggregation and hash group-by — fan work over
// internal/par; everything downstream of aggregation (HAVING, ORDER BY,
// LIMIT) stays sequential because it sees at most the grouped output.
//
// Parallel execution is semantically transparent: the selection vector is
// merged back in morsel order (ascending row positions, as a sequential
// scan produces), aggregate states are a commutative monoid under merge
// (NaN inputs — the engine's NULL — are skipped, see aggState.add), and
// merged groups are re-sorted by their first-seen position in the selection
// vector. The only observable difference from sequential execution is the
// floating-point association order of SUM/AVG partials, which can move the
// result by an ulp.
//
// ExecuteCtx adds the service layer's two needs on top: cooperative
// cancellation (the scheduler checks ctx between morsel claims, so a
// cancelled query stops within one morsel per worker) and a live
// rows-scanned counter (ExecOptions.Scanned) that advances morsel by morsel
// while the query runs — the observability hook /admin/stats reads.
package exec

import (
	"context"
	"sort"
	"sync/atomic"

	"dex/internal/expr"
	"dex/internal/fault"
	"dex/internal/par"
	"dex/internal/storage"
	"dex/internal/trace"
)

// disableTrace skips the per-query span extraction entirely — the
// pre-tracing baseline the overhead guard in trace_guard_test.go
// compares against. Test-only; never set in production code.
var disableTrace bool

// fpScan injects scan-level faults: hit once before a whole-table filter
// and once per morsel on the morsel-granular paths. Latency policies here
// are how tests make a query overrun its deadline on demand (and so how
// the degradation contract in core is exercised).
var fpScan = fault.Register("exec/scan")

// ExecOptions tunes query execution.
type ExecOptions struct {
	// Parallelism is the number of workers: 0 means GOMAXPROCS, 1 forces
	// the sequential operators.
	Parallelism int
	// MorselSize is the rows per scheduling unit (0 = par.DefaultMorselSize).
	// Inputs that fit in a single morsel always run sequentially.
	MorselSize int
	// Scanned, when non-nil, is incremented live with the number of rows
	// each operator stage visits (predicate evaluation and aggregate
	// accumulation). Several queries may share one counter; it advances
	// with morsel granularity while execution is in flight, so a stalled
	// counter means a stalled (or cancelled) query.
	Scanned *atomic.Int64
	// ZoneSkipped, when non-nil, accumulates the number of morsels the
	// zone-map pruner skipped (always 0 with ZoneMap off). Like Scanned it
	// may be shared across queries; /admin/stats and the shard Stats probe
	// read it to make pruning effectiveness observable.
	ZoneSkipped *atomic.Int64
	// ZoneMap enables zone-map scan skipping: the filtered scan consults
	// lazily-built per-morsel min/max summaries and skips morsels whose
	// value range cannot intersect a recognized range predicate (see
	// zonemap.go). Off by default so the zone-map-off path is bit-for-bit
	// the pre-zone-map scan.
	ZoneMap bool
	// Kernels enables typed predicate kernels: specializable WHERE clauses
	// compile to raw-slice scan loops (see kernel.go), everything else
	// falls back to the generic path. Off by default so the kernels-off
	// path is bit-for-bit the pre-kernel scan.
	Kernels bool
	// AggKernels enables typed aggregation kernels and the fused
	// filter→aggregate pipeline (see aggkernel.go): aggregate queries
	// accumulate over raw column slices, and when the WHERE clause also
	// compiles the filter feeds the accumulator per morsel through pooled
	// buffers — no global selection vector. Independent of Kernels: the
	// aggregate side compiles its own predicate kernel. Off by default so
	// the agg-kernels-off path is bit-for-bit the prior pipeline.
	AggKernels bool
	// AggKernelHits / AggKernelFallbacks, when non-nil, count aggregate
	// queries dispatched to the typed path vs falling back to the generic
	// operators (with AggKernels off neither moves). Shared across queries
	// like Scanned; /admin/stats and /metrics read them.
	AggKernelHits      *atomic.Int64
	AggKernelFallbacks *atomic.Int64
}

func (o ExecOptions) pool() *par.Pool {
	return par.NewPool(par.Options{Parallelism: o.Parallelism, MorselSize: o.MorselSize})
}

// tracer carries the per-query observability state through the operators:
// the cancellation context and the optional live scan counter. When neither
// is armed (background context, nil counter) the operators take exactly the
// pre-context fast paths.
type tracer struct {
	ctx     context.Context
	scanned *atomic.Int64
}

// active reports whether execution must go through the morsel-granular
// paths: either the context can be cancelled or scan progress is counted.
func (tr tracer) active() bool { return tr.ctx.Done() != nil || tr.scanned != nil }

func (tr tracer) count(rows int) {
	if tr.scanned != nil {
		tr.scanned.Add(int64(rows))
	}
}

// ExecuteOpts runs the query with the given execution options. It is
// exactly Execute when opt.Parallelism == 1 (the sequential operators run,
// same code path), and the morsel-driven operators otherwise.
func ExecuteOpts(t *storage.Table, q Query, opt ExecOptions) (*storage.Table, error) {
	return ExecuteCtx(context.Background(), t, q, opt)
}

// ExecuteCtx is ExecuteOpts under a context: cancellation is checked
// between morsel claims (parallel) or between morsels (sequential), so a
// cancelled or timed-out query returns ctx.Err() within one morsel's worth
// of work per worker, never mid-morsel.
func ExecuteCtx(ctx context.Context, t *storage.Table, q Query, opt ExecOptions) (*storage.Table, error) {
	if len(q.Select) == 0 {
		return nil, ErrEmptySelect
	}
	if ctx == nil {
		ctx = context.Background()
	}
	pool := opt.pool()
	tr := tracer{ctx: ctx, scanned: opt.Scanned}
	// The span is extracted once per query, never per morsel; when the
	// request is untraced sp is nil and every call below is a no-op.
	var sp *trace.Span
	if !disableTrace {
		sp = trace.FromContext(ctx)
	}
	n := t.NumRows()
	aggFallback := ""
	if opt.AggKernels && (q.HasAggregates() || len(q.GroupBy) > 0) {
		ak, reason := compileAggKernel(t, q)
		if ak != nil {
			if opt.AggKernelHits != nil {
				opt.AggKernelHits.Add(1)
			}
			return executeAggKernel(t, q, ak, pool, tr, opt, sp)
		}
		aggFallback = reason
		if opt.AggKernelFallbacks != nil {
			opt.AggKernelFallbacks.Add(1)
		}
	}
	scanSp := sp.Child("scan")
	var (
		sel      []int
		zskipped int64
		kinfo    kernelInfo
		err      error
	)
	if opt.Kernels {
		sel, zskipped, kinfo, err = filterKernel(t, q.Where, pool, tr, opt.ZoneMap)
	} else {
		sel, zskipped, err = filterPar(t, q.Where, pool, tr, opt.ZoneMap)
	}
	if opt.ZoneSkipped != nil && zskipped > 0 {
		opt.ZoneSkipped.Add(zskipped)
	}
	if scanSp != nil {
		scanSp.SetInt("rows_in", int64(n))
		scanSp.SetInt("rows_out", int64(len(sel)))
		scanSp.SetInt("morsels", int64(pool.Morsels(n)))
		scanSp.SetInt("workers", int64(pool.WorkersFor(n)))
		if opt.ZoneMap {
			scanSp.SetInt("zone_skipped", zskipped)
		}
		if opt.Kernels {
			scanSp.SetBool("kernel", kinfo.used)
			if kinfo.used {
				scanSp.SetInt("kernel_leaves", int64(kinfo.leaves))
			} else if kinfo.fallback != "" {
				scanSp.SetStr("kernel_fallback", kinfo.fallback)
			}
		}
		scanSp.End()
	}
	if err != nil {
		return nil, err
	}
	var out *storage.Table
	switch {
	case q.HasAggregates() && len(q.GroupBy) == 0:
		st := sp.Child("aggregate")
		st.SetInt("rows_in", int64(len(sel)))
		if opt.AggKernels {
			st.SetBool("agg_kernel", false)
			st.SetStr("agg_kernel_fallback", aggFallback)
		}
		out, err = scalarAggregatePar(t, sel, q, pool, tr)
		st.End()
	case len(q.GroupBy) > 0:
		st := sp.Child("group_by")
		st.SetInt("rows_in", int64(len(sel)))
		if opt.AggKernels {
			st.SetBool("agg_kernel", false)
			st.SetStr("agg_kernel_fallback", aggFallback)
		}
		out, err = groupByPar(t, sel, q, pool, tr)
		if err == nil {
			st.SetInt("groups", int64(out.NumRows()))
		}
		st.End()
	default:
		st := sp.Child("project")
		st.SetInt("rows_out", int64(len(sel)))
		if err = ctx.Err(); err == nil {
			out, err = project(t, sel, q)
		}
		st.End()
	}
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	fsp := sp.Child("finish")
	out, err = finish(out, q)
	fsp.End()
	return out, err
}

// filterPar evaluates the predicate over morsels in parallel and merges the
// per-morsel selection vectors in morsel order, yielding the same ascending
// positions a sequential scan produces. With zone maps enabled it first
// skips morsels the predicate's range cannot touch; the second return value
// counts skipped morsels (always 0 with zone maps off).
func filterPar(t *storage.Table, p *expr.Pred, pool *par.Pool, tr tracer, zone bool) ([]int, int64, error) {
	n := t.NumRows()
	if p == nil || p.Kind == expr.KTrue {
		// Identity selection: no data is touched, so nothing counts as
		// scanned; a single cancellation check bounds the latency.
		if err := tr.ctx.Err(); err != nil {
			return nil, 0, err
		}
		sel, err := expr.Filter(t, p)
		return sel, 0, err
	}
	var pruners []zonePruner
	if zone {
		var err error
		pruners, err = zonePruners(t, p, pool.MorselSize())
		if err != nil {
			return nil, 0, err
		}
	}
	if pool.WorkersFor(n) <= 1 && !tr.active() && len(pruners) == 0 {
		if err := fpScan.Hit(); err != nil {
			return nil, 0, err
		}
		sel, err := expr.Filter(t, p)
		return sel, 0, err
	}
	// Validate once up front so workers cannot race on error paths.
	if err := p.Validate(t.Schema()); err != nil {
		return nil, 0, err
	}
	m := pool.MorselSize()
	parts := make([][]int, storage.NumChunks(n, m))
	var skipped atomic.Int64
	err := pool.ForEachErrCtx(tr.ctx, n, func(_, lo, hi int) error {
		if ferr := fpScan.Hit(); ferr != nil {
			return ferr
		}
		for _, pr := range pruners {
			if pr.skip(lo / m) {
				// Skipped morsels are not scanned: no rows touched, no
				// progress counted — the live counter reflects real work.
				skipped.Add(1)
				return nil
			}
		}
		s, ferr := expr.FilterRange(t, p, lo, hi)
		if ferr != nil {
			return ferr
		}
		parts[lo/m] = s
		tr.count(hi - lo)
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	total := 0
	for _, s := range parts {
		total += len(s)
	}
	out := make([]int, 0, total)
	for _, s := range parts {
		out = append(out, s...)
	}
	return out, skipped.Load(), nil
}

// scalarAggregatePar accumulates per-morsel partial states and merges them
// in morsel order. Morsel-indexed (rather than worker-indexed) partials
// make the merge order — and so the floating-point sum — deterministic for
// a given morsel size, independent of scheduling.
func scalarAggregatePar(t *storage.Table, sel []int, q Query, pool *par.Pool, tr tracer) (*storage.Table, error) {
	if pool.WorkersFor(len(sel)) <= 1 {
		if !tr.active() {
			return scalarAggregate(t, sel, q)
		}
		// Serial with observability: accumulate into one state morsel by
		// morsel — identical float association to the sequential operator,
		// with cancellation checks and counter updates between morsels.
		inputs, err := scalarInputs(t, q)
		if err != nil {
			return nil, err
		}
		states := newAggStates(q)
		m := pool.MorselSize()
		for lo := 0; lo < len(sel); lo += m {
			if err := tr.ctx.Err(); err != nil {
				return nil, err
			}
			hi := lo + m
			if hi > len(sel) {
				hi = len(sel)
			}
			accumulateScalar(inputs, states, sel, lo, hi)
			tr.count(hi - lo)
		}
		return buildScalarOutput(t, q, states)
	}
	inputs, err := scalarInputs(t, q)
	if err != nil {
		return nil, err
	}
	m := pool.MorselSize()
	partials := make([][]*aggState, storage.NumChunks(len(sel), m))
	err = pool.ForEachCtx(tr.ctx, len(sel), func(_, lo, hi int) {
		states := newAggStates(q)
		accumulateScalar(inputs, states, sel, lo, hi)
		partials[lo/m] = states
		tr.count(hi - lo)
	})
	if err != nil {
		return nil, err
	}
	states := newAggStates(q)
	for _, p := range partials {
		for i, st := range states {
			st.merge(p[i])
		}
	}
	return buildScalarOutput(t, q, states)
}

// groupByPar builds one thread-local hash table per worker, merges them,
// and restores the sequential first-seen group order by sorting merged
// groups on the selection-vector position of their first row.
func groupByPar(t *storage.Table, sel []int, q Query, pool *par.Pool, tr tracer) (*storage.Table, error) {
	w := pool.WorkersFor(len(sel))
	if w <= 1 && !tr.active() {
		return groupBy(t, sel, q)
	}
	if w < 1 {
		w = 1
	}
	groupCols, inputs, err := groupInputs(t, q)
	if err != nil {
		return nil, err
	}
	locals := make([]*groupTable, w)
	for i := range locals {
		locals[i] = newGroupTable()
	}
	err = pool.ForEachCtx(tr.ctx, len(sel), func(worker, lo, hi int) {
		locals[worker].accumulate(groupCols, inputs, q, sel, lo, hi)
		tr.count(hi - lo)
	})
	if err != nil {
		return nil, err
	}
	gt := locals[0]
	for _, o := range locals[1:] {
		gt.merge(o)
	}
	sort.Slice(gt.order, func(a, b int) bool {
		return gt.groups[gt.order[a]].first < gt.groups[gt.order[b]].first
	})
	return buildGroupOutput(t, q, inputs, gt)
}
