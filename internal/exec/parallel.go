// Morsel-driven parallel operators. The hot, order-insensitive operators —
// filtered scan, scalar aggregation and hash group-by — fan work over
// internal/par; everything downstream of aggregation (HAVING, ORDER BY,
// LIMIT) stays sequential because it sees at most the grouped output.
//
// Parallel execution is semantically transparent: the selection vector is
// merged back in morsel order (ascending row positions, as a sequential
// scan produces), aggregate states are a commutative monoid under merge
// (NaN inputs — the engine's NULL — are skipped, see aggState.add), and
// merged groups are re-sorted by their first-seen position in the selection
// vector. The only observable difference from sequential execution is the
// floating-point association order of SUM/AVG partials, which can move the
// result by an ulp.
package exec

import (
	"sort"

	"dex/internal/expr"
	"dex/internal/par"
	"dex/internal/storage"
)

// ExecOptions tunes query execution.
type ExecOptions struct {
	// Parallelism is the number of workers: 0 means GOMAXPROCS, 1 forces
	// the sequential operators.
	Parallelism int
	// MorselSize is the rows per scheduling unit (0 = par.DefaultMorselSize).
	// Inputs that fit in a single morsel always run sequentially.
	MorselSize int
}

func (o ExecOptions) pool() *par.Pool {
	return par.NewPool(par.Options{Parallelism: o.Parallelism, MorselSize: o.MorselSize})
}

// ExecuteOpts runs the query with the given execution options. It is
// exactly Execute when opt.Parallelism == 1 (the sequential operators run,
// same code path), and the morsel-driven operators otherwise.
func ExecuteOpts(t *storage.Table, q Query, opt ExecOptions) (*storage.Table, error) {
	if len(q.Select) == 0 {
		return nil, ErrEmptySelect
	}
	pool := opt.pool()
	sel, err := filterPar(t, q.Where, pool)
	if err != nil {
		return nil, err
	}
	var out *storage.Table
	switch {
	case q.HasAggregates() && len(q.GroupBy) == 0:
		out, err = scalarAggregatePar(t, sel, q, pool)
	case len(q.GroupBy) > 0:
		out, err = groupByPar(t, sel, q, pool)
	default:
		out, err = project(t, sel, q)
	}
	if err != nil {
		return nil, err
	}
	return finish(out, q)
}

// filterPar evaluates the predicate over morsels in parallel and merges the
// per-morsel selection vectors in morsel order, yielding the same ascending
// positions a sequential scan produces.
func filterPar(t *storage.Table, p *expr.Pred, pool *par.Pool) ([]int, error) {
	n := t.NumRows()
	if p == nil || p.Kind == expr.KTrue || pool.WorkersFor(n) <= 1 {
		return expr.Filter(t, p)
	}
	// Validate once up front so workers cannot race on error paths.
	if err := p.Validate(t.Schema()); err != nil {
		return nil, err
	}
	m := pool.MorselSize()
	parts := make([][]int, storage.NumChunks(n, m))
	err := pool.ForEachErr(n, func(_, lo, hi int) error {
		s, ferr := expr.FilterRange(t, p, lo, hi)
		if ferr != nil {
			return ferr
		}
		parts[lo/m] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, s := range parts {
		total += len(s)
	}
	out := make([]int, 0, total)
	for _, s := range parts {
		out = append(out, s...)
	}
	return out, nil
}

// scalarAggregatePar accumulates per-morsel partial states and merges them
// in morsel order. Morsel-indexed (rather than worker-indexed) partials
// make the merge order — and so the floating-point sum — deterministic for
// a given morsel size, independent of scheduling.
func scalarAggregatePar(t *storage.Table, sel []int, q Query, pool *par.Pool) (*storage.Table, error) {
	if pool.WorkersFor(len(sel)) <= 1 {
		return scalarAggregate(t, sel, q)
	}
	inputs, err := scalarInputs(t, q)
	if err != nil {
		return nil, err
	}
	m := pool.MorselSize()
	partials := make([][]*aggState, storage.NumChunks(len(sel), m))
	pool.ForEach(len(sel), func(_, lo, hi int) {
		states := newAggStates(q)
		accumulateScalar(inputs, states, sel, lo, hi)
		partials[lo/m] = states
	})
	states := newAggStates(q)
	for _, p := range partials {
		for i, st := range states {
			st.merge(p[i])
		}
	}
	return buildScalarOutput(t, q, states)
}

// groupByPar builds one thread-local hash table per worker, merges them,
// and restores the sequential first-seen group order by sorting merged
// groups on the selection-vector position of their first row.
func groupByPar(t *storage.Table, sel []int, q Query, pool *par.Pool) (*storage.Table, error) {
	w := pool.WorkersFor(len(sel))
	if w <= 1 {
		return groupBy(t, sel, q)
	}
	groupCols, inputs, err := groupInputs(t, q)
	if err != nil {
		return nil, err
	}
	locals := make([]*groupTable, w)
	for i := range locals {
		locals[i] = newGroupTable()
	}
	pool.ForEach(len(sel), func(worker, lo, hi int) {
		locals[worker].accumulate(groupCols, inputs, q, sel, lo, hi)
	})
	gt := locals[0]
	for _, o := range locals[1:] {
		gt.merge(o)
	}
	sort.Slice(gt.order, func(a, b int) bool {
		return gt.groups[gt.order[a]].first < gt.groups[gt.order[b]].first
	})
	return buildGroupOutput(t, q, inputs, gt)
}
