package exec

import (
	"fmt"

	"dex/internal/storage"
)

// Join computes the inner equi-join of left and right on
// left.leftCol = right.rightCol using a classic build/probe hash join
// (build on the smaller input). Output columns are the left columns followed
// by the right columns; a right column whose name collides with a left
// column is prefixed with the right table's name and a dot.
func Join(left, right *storage.Table, leftCol, rightCol string) (*storage.Table, error) {
	lc, err := left.ColumnByName(leftCol)
	if err != nil {
		return nil, fmt.Errorf("exec: join left key: %w", err)
	}
	rc, err := right.ColumnByName(rightCol)
	if err != nil {
		return nil, fmt.Errorf("exec: join right key: %w", err)
	}

	buildLeft := left.NumRows() <= right.NumRows()
	buildCol, probeCol := lc, rc
	if !buildLeft {
		buildCol, probeCol = rc, lc
	}
	ht := make(map[string][]int, buildCol.Len())
	for i := 0; i < buildCol.Len(); i++ {
		k := buildCol.Value(i).String()
		ht[k] = append(ht[k], i)
	}
	var lsel, rsel []int
	for i := 0; i < probeCol.Len(); i++ {
		matches := ht[probeCol.Value(i).String()]
		for _, m := range matches {
			if buildLeft {
				lsel = append(lsel, m)
				rsel = append(rsel, i)
			} else {
				lsel = append(lsel, i)
				rsel = append(rsel, m)
			}
		}
	}

	lt := left.Gather(lsel)
	rt := right.Gather(rsel)
	schema := make(storage.Schema, 0, lt.NumCols()+rt.NumCols())
	cols := make([]storage.Column, 0, lt.NumCols()+rt.NumCols())
	for i, f := range lt.Schema() {
		schema = append(schema, f)
		cols = append(cols, lt.Column(i))
	}
	for i, f := range rt.Schema() {
		name := f.Name
		if schema.Index(name) >= 0 {
			name = right.Name() + "." + name
		}
		schema = append(schema, storage.Field{Name: name, Type: f.Type})
		cols = append(cols, rt.Column(i))
	}
	return storage.FromColumns(left.Name()+"_"+right.Name(), schema, cols)
}
