package exec

import (
	"fmt"
	"math"
	"testing"

	"dex/internal/expr"
	"dex/internal/storage"
)

// The aggregation differential fuzzer, the FuzzKernelVsGeneric pattern one
// layer up: every byte string decodes to twin tables (plain and dict/RLE
// encoded forms of the same rows) plus an aggregate or group-by query, and
// the typed aggregation path — fused, half-fused behind an uncompilable
// predicate, sequential and parallel, over both representations — must
// match the sequential generic oracle. Value pools carry the adversarial
// cases: NaN/±Inf floats, int64 extremes, values straddling 2^53 (where
// the typed min/max tie-breaking must mirror Value.Compare's float64
// domain), empty tables and empty selections.

// afReader turns fuzz bytes into bounded draws; exhausted input yields
// zeros, so every prefix of a crashing input is itself a valid input.
type afReader struct {
	b []byte
	i int
}

func (f *afReader) next() byte {
	if f.i >= len(f.b) {
		return 0
	}
	v := f.b[f.i]
	f.i++
	return v
}

func (f *afReader) draw(n int) int { return int(f.next()) % n }

var (
	afInts = []int64{0, 1, -1, 42, -500, 500, math.MinInt64, math.MaxInt64,
		1 << 53, 1<<53 + 1, -(1<<53 + 1)}
	afFloats = []float64{0, 1.5, -2.75, 100, math.NaN(), math.Inf(1),
		math.Inf(-1), float64(1 << 53), 42}
	afLabels = []string{"", "a", "oak", "zzz"}
)

// afTables decodes one table's worth of rows into plain and encoded twins
// over the schema {k INT, x FLOAT, s TEXT, r INT(clustered)}.
func afTables(t *testing.T, f *afReader) (plain, enc *storage.Table) {
	t.Helper()
	n := f.draw(256) * 2 // includes 0: the empty table
	ki := make([]int64, n)
	xf := make([]float64, n)
	ss := make([]string, n)
	ri := make([]int64, n)
	run := int64(0)
	for i := 0; i < n; i++ {
		ki[i] = afInts[f.draw(len(afInts))]
		xf[i] = afFloats[f.draw(len(afFloats))]
		ss[i] = afLabels[f.draw(len(afLabels))]
		if i == 0 || f.draw(4) == 0 { // value-clustered: ~4-row runs
			run = int64(f.draw(5))
		}
		ri[i] = run
	}
	schema := storage.Schema{
		{Name: "k", Type: storage.TInt},
		{Name: "x", Type: storage.TFloat},
		{Name: "s", Type: storage.TString},
		{Name: "r", Type: storage.TInt},
	}
	mk := func(cols []storage.Column) *storage.Table {
		tab, err := storage.FromColumns("t", schema, cols)
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	plain = mk([]storage.Column{
		&storage.IntColumn{V: ki}, &storage.FloatColumn{V: xf},
		&storage.StringColumn{V: ss}, &storage.IntColumn{V: ri},
	})
	enc = mk([]storage.Column{
		&storage.IntColumn{V: ki}, &storage.FloatColumn{V: xf},
		storage.EncodeDict(ss), storage.EncodeRLE(ri),
	})
	return plain, enc
}

// afQuery decodes an aggregate or group-by query: scalar aggregates over
// the numeric and string columns, single-column groups over int / string /
// clustered keys, occasionally a multi-column group (which exercises the
// compile fallback), plus optional WHERE in three flavors — none (dense
// fused), a specializable conjunction (fused), or an OR (half-fused: the
// typed accumulators consume a materialized selection).
func afQuery(f *afReader) Query {
	var q Query
	numAggs := []AggFunc{AggCount, AggSum, AggAvg, AggMin, AggMax}
	strAggs := []AggFunc{AggCount, AggMin, AggMax}
	addAggs := func() {
		q.Select = append(q.Select, SelectItem{Col: "*", Agg: AggCount})
		for n := 1 + f.draw(3); n > 0; n-- {
			switch f.draw(4) {
			case 0:
				q.Select = append(q.Select, SelectItem{Col: "k", Agg: numAggs[f.draw(len(numAggs))]})
			case 1:
				q.Select = append(q.Select, SelectItem{Col: "x", Agg: numAggs[f.draw(len(numAggs))]})
			case 2:
				q.Select = append(q.Select, SelectItem{Col: "r", Agg: numAggs[f.draw(len(numAggs))]})
			default:
				q.Select = append(q.Select, SelectItem{Col: "s", Agg: strAggs[f.draw(len(strAggs))]})
			}
		}
	}
	switch f.draw(5) {
	case 0: // scalar aggregates
		addAggs()
	case 1: // int group
		q.GroupBy = []string{"k"}
		q.Select = []SelectItem{{Col: "k"}}
		addAggs()
	case 2: // string group (dict-coded on the encoded twin)
		q.GroupBy = []string{"s"}
		q.Select = []SelectItem{{Col: "s"}}
		addAggs()
	case 3: // clustered group (run-coded on the encoded twin)
		q.GroupBy = []string{"r"}
		q.Select = []SelectItem{{Col: "r"}}
		addAggs()
	default: // multi-column group: always a compile fallback
		q.GroupBy = []string{"s", "r"}
		q.Select = []SelectItem{{Col: "s"}, {Col: "r"}}
		addAggs()
	}
	ops := []expr.Op{expr.EQ, expr.NE, expr.LT, expr.LE, expr.GT, expr.GE}
	leaf := func() *expr.Pred {
		col := []string{"k", "x", "r"}[f.draw(3)]
		op := ops[f.draw(len(ops))]
		if f.draw(2) == 0 {
			return expr.Cmp(col, op, storage.Int(afInts[f.draw(len(afInts))]))
		}
		return expr.Cmp(col, op, storage.Float(afFloats[f.draw(len(afFloats))]))
	}
	switch f.draw(4) {
	case 0: // no WHERE: the dense fused path
	case 1:
		q.Where = leaf()
	case 2:
		q.Where = expr.And(leaf(), leaf())
	default: // OR never compiles: typed accumulation over a materialized selection
		q.Where = expr.Or(leaf(), leaf())
	}
	if len(q.GroupBy) > 0 && f.draw(3) == 0 {
		q.OrderBy = []OrderKey{{Col: q.GroupBy[0], Desc: f.draw(2) == 1}}
	}
	if f.draw(4) == 0 {
		q.Limit = 1 + f.draw(10)
	}
	return q
}

func FuzzAggKernelVsGeneric(f *testing.F) {
	f.Add([]byte{})                        // empty table, zero-byte query
	f.Add([]byte{1, 0})                    // two rows of zeros
	f.Add([]byte{40, 6, 4, 2, 0, 1, 3, 5}) // mid-size mixed table
	f.Add([]byte{128, 255, 254, 253, 252, 251, 250, 7, 7, 7, 2, 0, 1, 6, 5, 4, 3})
	f.Add([]byte{16, 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2, 3, 8, 4, 6, 2, 6})
	f.Add([]byte{60, 7, 7, 6, 6, 5, 5, 4, 4, 3, 3, 2, 2, 1, 1, 0, 0, 250, 249, 248})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := &afReader{b: data}
		plain, enc := afTables(t, fr)
		q := afQuery(fr)
		oracle, oracleErr := Execute(plain, q)
		arms := []struct {
			name string
			tbl  *storage.Table
			opt  ExecOptions
		}{
			{"plain seq fused", plain, ExecOptions{Parallelism: 1, AggKernels: true}},
			{"plain par fused+zone", plain, ExecOptions{Parallelism: 3, MorselSize: 16, ZoneMap: true, AggKernels: true}},
			{"encoded par fused", enc, ExecOptions{Parallelism: 2, MorselSize: 8, AggKernels: true}},
			{"encoded par fused+kernels", enc, ExecOptions{Parallelism: 4, MorselSize: 32, Kernels: true, AggKernels: true}},
		}
		for _, arm := range arms {
			got, err := ExecuteOpts(arm.tbl, q, arm.opt)
			label := fmt.Sprintf("%s: q=%s rows=%d", arm.name, q, plain.NumRows())
			if (oracleErr == nil) != (err == nil) {
				t.Fatalf("%s: error mismatch oracle=%v got=%v", label, oracleErr, err)
			}
			if oracleErr != nil {
				continue
			}
			requireSameTable(t, label, oracle, got)
		}
	})
}
