// Kernel dispatch for the filtered scan: when ExecOptions.Kernels is set,
// the scan tries to compile the WHERE predicate into a typed kernel
// (expr.CompileKernel) and runs it per morsel over raw column slices into
// pooled selection buffers — no boxed Eval per row, no per-row allocation.
// Predicates the compiler rejects fall back to the generic filterPar path,
// and the scan span records which way the query went (kernel /
// kernel_leaves / kernel_fallback attrs).
//
// Selection-vector lifetime: pooled buffers exist only inside
// filterKernel. Each morsel claims one (reset to length zero — a reused
// buffer must never expose rows from its previous query), fills it, and
// parks it in the morsel-ordered parts slice; after the merge copies the
// positions out, a deferred sweep returns every claimed buffer, including
// on error and cancellation paths. Nothing downstream of the scan ever
// holds a pooled buffer.
package exec

import (
	"sync"
	"sync/atomic"

	"dex/internal/expr"
	"dex/internal/fault"
	"dex/internal/par"
	"dex/internal/storage"
)

// fpKernel injects faults at the kernel-dispatch seam: hit once per query
// that compiles a kernel, before any morsel runs. An error fails the query
// exactly like a scan fault — the caller's degradation contract is
// unchanged.
var fpKernel = fault.Register("exec/kernel-dispatch")

// selPool recycles per-morsel selection buffers across queries.
var selPool = sync.Pool{
	New: func() any {
		s := make([]int, 0, par.DefaultMorselSize)
		return &s
	},
}

// selOutstanding counts pool buffers currently claimed; it must return to
// its starting value after every query, cancelled or not (the leak test's
// hook).
var selOutstanding atomic.Int64

func getSel() *[]int {
	selOutstanding.Add(1)
	buf := selPool.Get().(*[]int)
	*buf = (*buf)[:0] // reset: stale rows from a prior query must be unreachable
	return buf
}

func putSel(buf *[]int) {
	selPool.Put(buf)
	selOutstanding.Add(-1)
}

// kernelInfo reports how the scan was dispatched, for the trace span.
type kernelInfo struct {
	used     bool
	leaves   int
	fallback string // compile fallback reason when !used
}

// filterKernel is filterPar with kernel dispatch: compiled predicates run
// as typed kernels per morsel; everything else delegates to the generic
// path. Semantics are identical either way — the differential fuzzer and
// the parity matrix hold the two paths equal.
func filterKernel(t *storage.Table, p *expr.Pred, pool *par.Pool, tr tracer, zone bool) ([]int, int64, kernelInfo, error) {
	kern, reason := expr.CompileKernel(t, p)
	if kern == nil {
		sel, skipped, err := filterPar(t, p, pool, tr, zone)
		return sel, skipped, kernelInfo{fallback: reason}, err
	}
	info := kernelInfo{used: true, leaves: kern.Leaves()}
	if err := fpKernel.Hit(); err != nil {
		return nil, 0, info, err
	}
	n := t.NumRows()
	var pruners []zonePruner
	if zone {
		var err error
		pruners, err = zonePruners(t, p, pool.MorselSize())
		if err != nil {
			return nil, 0, info, err
		}
	}
	m := pool.MorselSize()
	if pool.WorkersFor(n) <= 1 && !tr.active() && len(pruners) == 0 {
		if err := fpScan.Hit(); err != nil {
			return nil, 0, info, err
		}
		// One pooled buffer serves every morsel in turn; matches append to
		// a result sized by what actually matched. Running the kernel over
		// [0, n) into one buffer would demand a table-sized allocation per
		// query (the branch-free scan pre-sizes its write window), which
		// costs more in page faults than the scan itself at low selectivity.
		var out []int
		buf := getSel()
		defer putSel(buf)
		for lo := 0; lo < n; lo += m {
			hi := lo + m
			if hi > n {
				hi = n
			}
			*buf = kern.Run(lo, hi, (*buf)[:0])
			out = append(out, *buf...)
		}
		return out, 0, info, nil
	}
	parts := make([]*[]int, storage.NumChunks(n, m))
	defer func() {
		// Return every claimed buffer — after the merge below has copied the
		// positions out, or on the error/cancellation path with the merge
		// never reached.
		for _, b := range parts {
			if b != nil {
				putSel(b)
			}
		}
	}()
	var skipped atomic.Int64
	err := pool.ForEachErrCtx(tr.ctx, n, func(_, lo, hi int) error {
		if ferr := fpScan.Hit(); ferr != nil {
			return ferr
		}
		for _, pr := range pruners {
			if pr.skip(lo / m) {
				skipped.Add(1)
				return nil
			}
		}
		buf := getSel()
		*buf = kern.Run(lo, hi, *buf)
		parts[lo/m] = buf
		tr.count(hi - lo)
		return nil
	})
	if err != nil {
		return nil, 0, info, err
	}
	total := 0
	for _, s := range parts {
		if s != nil {
			total += len(*s)
		}
	}
	out := make([]int, 0, total)
	for _, s := range parts {
		if s != nil {
			out = append(out, *s...)
		}
	}
	return out, skipped.Load(), info, nil
}
