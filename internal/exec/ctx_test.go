package exec

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"dex/internal/expr"
	"dex/internal/storage"
)

// TestExecuteCtxParity checks ExecuteCtx with a live (but never fired)
// context and a scan counter produces exactly the plain ExecuteOpts output.
func TestExecuteCtxParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tbl := randParityTable(rng, 5000, 0.1)
	queries := []Query{
		{Select: []SelectItem{{Col: "k"}, {Col: "x"}},
			Where: expr.Cmp("x", expr.GT, storage.Float(0))},
		{Select: []SelectItem{
			{Col: "x", Agg: AggSum}, {Col: "x", Agg: AggAvg}, {Col: "*", Agg: AggCount}},
			Where: expr.Cmp("k", expr.GE, storage.Int(0))},
		{Select: []SelectItem{{Col: "s"}, {Col: "x", Agg: AggSum}, {Col: "k", Agg: AggMax}},
			GroupBy: []string{"s"}},
	}
	for _, workers := range []int{1, 4} {
		for qi, q := range queries {
			want, err := ExecuteOpts(tbl, q, ExecOptions{Parallelism: workers, MorselSize: 256})
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			var scanned atomic.Int64
			got, err := ExecuteCtx(ctx, tbl, q, ExecOptions{Parallelism: workers, MorselSize: 256, Scanned: &scanned})
			cancel()
			if err != nil {
				t.Fatal(err)
			}
			requireSameTable(t, fmt.Sprintf("workers=%d query %d", workers, qi), want, got)
			if scanned.Load() == 0 {
				t.Errorf("workers=%d query %d: scan counter never advanced", workers, qi)
			}
		}
	}
}

// TestExecuteCtxCancelled checks a cancelled context aborts execution with
// ctx.Err() and stops the scan counter well short of the full input.
func TestExecuteCtxCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tbl := randParityTable(rng, 1<<18, 0)
	q := Query{
		Select:  []SelectItem{{Col: "s"}, {Col: "x", Agg: AggSum}},
		Where:   expr.Cmp("k", expr.GT, storage.Int(-1000)),
		GroupBy: []string{"s"},
	}
	ctx, cancel := context.WithCancel(context.Background())
	var scanned atomic.Int64
	// Cancel as soon as the scan makes first progress: the query must stop
	// long before visiting all rows of both operator stages.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for scanned.Load() == 0 {
			runtime.Gosched()
		}
		cancel()
	}()
	_, err := ExecuteCtx(ctx, tbl, q, ExecOptions{Parallelism: 2, MorselSize: 1024, Scanned: &scanned})
	<-done
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	total := int64(2 * tbl.NumRows()) // filter pass + group-by pass
	if got := scanned.Load(); got >= total {
		t.Fatalf("scanned %d rows, want early stop below %d", got, total)
	}
}

// TestExecuteCtxDeadline checks an expired deadline surfaces as
// context.DeadlineExceeded before any work happens.
func TestExecuteCtxDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tbl := randParityTable(rng, 1000, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := Query{Select: []SelectItem{{Col: "x", Agg: AggSum}},
		Where: expr.Cmp("x", expr.GT, storage.Float(0))}
	var scanned atomic.Int64
	_, err := ExecuteCtx(ctx, tbl, q, ExecOptions{Parallelism: 1, MorselSize: 64, Scanned: &scanned})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if scanned.Load() != 0 {
		t.Fatalf("scanned %d rows under a dead context", scanned.Load())
	}
}
