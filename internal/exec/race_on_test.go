//go:build race

package exec

// raceEnabled reports whether the race detector is instrumenting this
// build. Timing guards skip under -race: instrumentation inflates
// per-call costs far beyond production behaviour.
const raceEnabled = true
