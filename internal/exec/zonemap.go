// Zone-map scan skipping: the parallel filtered scan consults per-morsel
// min/max summaries (storage.ZoneMap) and skips whole morsels whose value
// range cannot intersect the predicate. Range predicates dominate
// exploration workloads, so on data with any physical value locality —
// time-ordered ticks, clustered fact tables — skipping compounds with
// morsel parallelism and adaptive indexing.
//
// Pruning is strictly conservative: it extracts per-column closed
// intervals only from comparison leaves of a top-level conjunction (a bare
// comparison, or cmp AND cmp AND ...), and other conjuncts can only narrow
// the result further. Anything else — OR, NOT, LIKE, cross-type values —
// contributes no interval and prunes nothing.
package exec

import (
	"math"

	"dex/internal/expr"
	"dex/internal/storage"
)

// zonePruner holds one column's zone map plus the predicate's closed
// interval over it, in the column's native type so integer comparisons
// never round through float64.
type zonePruner struct {
	zm       *storage.ZoneMap
	isFloat  bool
	iLo, iHi int64
	fLo, fHi float64
}

// skip reports whether morsel m cannot contain a qualifying row.
func (zp zonePruner) skip(m int) bool {
	if zp.isFloat {
		return zp.zm.PruneFloat(m, zp.fLo, zp.fHi)
	}
	return zp.zm.PruneInt(m, zp.iLo, zp.iHi)
}

// conjuncts returns the comparison leaves pruning may use: the root when
// it is a comparison, or the comparison children of a root AND (other
// children are ignored — they only narrow further). Nil otherwise.
func conjuncts(p *expr.Pred) []*expr.Pred {
	if p == nil {
		return nil
	}
	switch p.Kind {
	case expr.KCmp:
		return []*expr.Pred{p}
	case expr.KAnd:
		var out []*expr.Pred
		for _, k := range p.Kids {
			if k.Kind == expr.KCmp {
				out = append(out, k)
			}
		}
		return out
	default:
		return nil
	}
}

// zonePruners builds one pruner per numeric column that the predicate
// constrains, lazily building (or fetching) the table's zone maps at the
// given morsel size. A zone-map build failure (the storage/zonemap-build
// failpoint, in practice) fails the scan.
func zonePruners(t *storage.Table, p *expr.Pred, morsel int) ([]zonePruner, error) {
	cmps := conjuncts(p)
	if len(cmps) == 0 {
		return nil, nil
	}
	schema := t.Schema()
	var out []zonePruner
	done := map[string]bool{}
	for _, c := range cmps {
		if done[c.Col] {
			continue
		}
		done[c.Col] = true
		i := schema.Index(c.Col)
		if i < 0 || !c.Val.IsNumeric() {
			continue
		}
		var zp zonePruner
		switch schema[i].Type {
		case storage.TInt:
			zp = zonePruner{iLo: math.MinInt64, iHi: math.MaxInt64}
		case storage.TFloat:
			zp = zonePruner{isFloat: true, fLo: math.Inf(-1), fHi: math.Inf(1)}
		default:
			continue
		}
		narrowed := false
		for _, cc := range cmps {
			if cc.Col == c.Col && cc.Val.IsNumeric() {
				narrowed = zp.narrow(cc.Op, cc.Val.AsFloat()) || narrowed
			}
		}
		if !narrowed {
			continue
		}
		zm, err := t.ZoneMap(c.Col, morsel)
		if err != nil {
			return nil, err
		}
		if zm == nil {
			continue
		}
		zp.zm = zm
		out = append(out, zp)
	}
	return out, nil
}

// narrow tightens the pruner's closed interval with one comparison against
// constant v, reporting whether it narrowed anything. All tightening is
// conservative; NE and NaN constants narrow nothing.
func (zp *zonePruner) narrow(op expr.Op, v float64) bool {
	if math.IsNaN(v) {
		return false
	}
	if zp.isFloat {
		// Closed-interval envelope: every qualifying x satisfies
		// lo <= x <= hi. Strict ops use the constant itself as the bound
		// (x > v ⇒ x >= v), which is conservative — at worst one boundary
		// morsel whose max equals v is scanned instead of skipped.
		switch op {
		case expr.GE, expr.GT:
			if v > zp.fLo {
				zp.fLo = v
			}
		case expr.LE, expr.LT:
			if v < zp.fHi {
				zp.fHi = v
			}
		case expr.EQ:
			if v > zp.fLo {
				zp.fLo = v
			}
			if v < zp.fHi {
				zp.fHi = v
			}
		default:
			return false
		}
		return true
	}
	// Integer column: translate the (possibly fractional) constant into an
	// exact closed int64 interval. Constants at or beyond the int64 range
	// would overflow the conversion; leave that side unbounded.
	if v >= math.MaxInt64 || v <= math.MinInt64 {
		return false
	}
	switch op {
	case expr.GE: // x >= v  =>  x >= ceil(v)
		zp.iLo = maxI64(zp.iLo, int64(math.Ceil(v)))
	case expr.GT: // x > v   =>  x >= floor(v)+1
		zp.iLo = maxI64(zp.iLo, int64(math.Floor(v))+1)
	case expr.LE: // x <= v  =>  x <= floor(v)
		zp.iHi = minI64(zp.iHi, int64(math.Floor(v)))
	case expr.LT: // x < v   =>  x <= ceil(v)-1
		zp.iHi = minI64(zp.iHi, int64(math.Ceil(v))-1)
	case expr.EQ:
		if v != math.Trunc(v) {
			// x = 2.5 over INT matches nothing: the empty interval prunes
			// every morsel, which is exactly the right answer.
			zp.iLo, zp.iHi = 0, -1
			return true
		}
		zp.iLo = maxI64(zp.iLo, int64(v))
		zp.iHi = minI64(zp.iHi, int64(v))
	default:
		return false
	}
	return true
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
