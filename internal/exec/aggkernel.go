// Typed aggregation kernels and the fused filter→aggregate pipeline.
//
// PR 8's predicate kernels stop at the selection vector: every qualifying
// row still round-trips through boxed storage.Value in accumulateScalar,
// and group-by renders a string key per row. This file extends the kernel
// layer over the rest of the scan→aggregate pipeline:
//
//   - Scalar aggregates (SUM/COUNT/MIN/MAX/AVG) accumulate directly over
//     raw int64/float64 column slices driven by selection vectors — zero
//     Value boxing per row. NaN stays the engine's NULL (skipped), int
//     MIN/MAX compares in the float64 domain exactly like Value.Compare,
//     so results match the generic oracle bit for bit.
//   - Group-by over a dict-encoded column indexes a dense per-code
//     accumulator array (no hashing at all, distinct ≤ maxDictGroups);
//     a plain or run-coded int column hashes raw int64 keys. String key
//     building survives only in the generic multi-column/string fallback.
//   - The channel-less handoff: when the WHERE clause also compiles (or is
//     trivially true), filter and accumulate fuse per morsel — each worker
//     runs the predicate kernel into a pooled selection buffer, feeds the
//     buffer straight into its accumulator, and returns it to the pool.
//     Aggregate queries never materialize the global selection vector.
//
// Compilation never fails a query: any unsupported shape — including
// invalid select lists — returns a nil kernel with a stable fallback
// reason, and the generic operators produce their canonical results and
// errors. The differential fuzzer and the parity matrix hold the two
// paths equal.
package exec

import (
	"sort"
	"sync/atomic"

	"dex/internal/expr"
	"dex/internal/par"
	"dex/internal/storage"
	"dex/internal/trace"
)

// maxDictGroups caps the dense per-code accumulator arrays of a
// dict-grouped aggregation; wider dictionaries fall back to the generic
// hash path rather than commit card × items × workers slots.
const maxDictGroups = 4096

// aggInKind classifies one select item's input for the typed accumulator.
type aggInKind uint8

const (
	aiNone  aggInKind = iota // plain group column: no accumulation
	aiCount                  // row counting only: COUNT(*) or COUNT over a never-NULL column
	aiI64                    // raw int64 slice
	aiF64                    // raw float64 slice (NaN = NULL, skipped)
	aiRLE                    // run-coded int64, read through an RLECursor
)

// aggSpec binds one select item to its typed input.
type aggSpec struct {
	fn   AggFunc
	kind aggInKind
	i64  []int64
	f64  []float64
	rle  *storage.RLEIntColumn
}

// groupMode says how rows map to accumulator slots.
type groupMode uint8

const (
	gmScalar groupMode = iota // no GROUP BY: every row is slot 0
	gmDict                    // dict codes index a dense slot array
	gmI64                     // raw int64 keys hash to slots
	gmRLE                     // run-coded int64 keys hash to slots
)

// aggKernel is a compiled typed-aggregation plan: per-item input bindings
// plus the group-key binding (single grouping column only).
type aggKernel struct {
	specs  []aggSpec
	inputs []storage.Column // boxed agg inputs, for output typing
	mode   groupMode
	gcodes []int32               // gmDict: per-row codes
	gdict  []string              // gmDict: code → value
	gcard  int                   // gmDict: slot count
	gi64   []int64               // gmI64: per-row keys
	grle   *storage.RLEIntColumn // gmRLE: run-coded keys
}

// compileAggKernel tries to bind the query's aggregation to typed kernels.
// A nil kernel means "run the generic operators"; the reason string is the
// stable fallback label the spans and counters record.
func compileAggKernel(t *storage.Table, q Query) (*aggKernel, string) {
	ak := &aggKernel{mode: gmScalar}
	var inputs []storage.Column
	var err error
	if len(q.GroupBy) > 0 {
		if len(q.GroupBy) > 1 {
			return nil, "multi-column group"
		}
		var groupCols []storage.Column
		groupCols, inputs, err = groupInputs(t, q)
		if err != nil {
			// The generic path re-derives and reports the canonical error.
			return nil, "invalid query"
		}
		switch gc := groupCols[0].(type) {
		case *storage.DictColumn:
			if gc.Card() > maxDictGroups {
				return nil, "dict cardinality"
			}
			ak.mode, ak.gcodes, ak.gdict, ak.gcard = gmDict, gc.Codes(), gc.Dict(), gc.Card()
		case *storage.IntColumn:
			ak.mode, ak.gi64 = gmI64, gc.V
		case *storage.RLEIntColumn:
			ak.mode, ak.grle = gmRLE, gc
		default:
			return nil, "group column type"
		}
	} else {
		inputs, err = scalarInputs(t, q)
		if err != nil {
			return nil, "invalid query"
		}
	}
	ak.inputs = inputs
	ak.specs = make([]aggSpec, len(q.Select))
	for i, item := range q.Select {
		spec := &ak.specs[i]
		spec.fn = item.Agg
		if item.Agg == AggNone {
			spec.kind = aiNone
			continue
		}
		if inputs[i] == nil { // COUNT(*)
			spec.kind = aiCount
			continue
		}
		switch c := inputs[i].(type) {
		case *storage.IntColumn:
			spec.kind, spec.i64 = aiI64, c.V
		case *storage.FloatColumn:
			spec.kind, spec.f64 = aiF64, c.V
		case *storage.RLEIntColumn:
			spec.kind, spec.rle = aiRLE, c
		default:
			// String inputs: only COUNT is typed (strings are never NULL,
			// so it is a plain row count); MIN/MAX need string compares.
			if item.Agg == AggCount {
				spec.kind = aiCount
				continue
			}
			return nil, "string agg input"
		}
		if item.Agg == AggCount && spec.kind != aiF64 {
			// Ints carry no NULL; COUNT over them never inspects values.
			*spec = aggSpec{fn: AggCount, kind: aiCount}
		}
	}
	return ak, ""
}

// aggItem holds one select item's accumulators as per-slot parallel arrays
// (slot 0 for scalar aggregation, one slot per group otherwise). Only the
// arrays the (kind, fn) pair actually reads are allocated; addSlot grows
// exactly those. Semantics mirror aggState.add: NaN skipped before any
// counting, first value wins ties, int MIN/MAX compared as float64.
type aggItem struct {
	spec       aggSpec
	cur        storage.RLECursor // aiRLE input reader
	count      []int64
	sum        []float64
	imin, imax []int64
	fmin, fmax []float64
	has        []bool
}

// aggAcc is one typed accumulator instance: per-morsel on the scalar
// parallel path, per-worker on the group path, exactly one on the
// sequential paths.
type aggAcc struct {
	ak     *aggKernel
	items  []aggItem
	nslots int
	firsts []int             // per-slot first row id; gmDict: -1 = unseen
	keys   []int64           // per-slot raw key (int-keyed modes)
	slots  map[int64]int     // key → slot (int-keyed modes)
	kcur   storage.RLECursor // group-key reader (gmRLE)
}

// newAcc allocates an accumulator: slot 0 preallocated for scalar mode,
// a dense card-sized array for dict groups, grow-on-demand for int keys.
func (ak *aggKernel) newAcc() *aggAcc {
	slots := 0
	switch ak.mode {
	case gmScalar:
		slots = 1
	case gmDict:
		slots = ak.gcard
	}
	a := &aggAcc{ak: ak, nslots: slots}
	switch ak.mode {
	case gmDict:
		a.firsts = make([]int, slots)
		for i := range a.firsts {
			a.firsts[i] = -1
		}
	case gmI64:
		a.slots = make(map[int64]int)
	case gmRLE:
		a.slots = make(map[int64]int)
		a.kcur = ak.grle.Cursor()
	}
	a.items = make([]aggItem, len(ak.specs))
	for i, spec := range ak.specs {
		it := &a.items[i]
		it.spec = spec
		switch spec.kind {
		case aiNone:
		case aiCount:
			it.count = make([]int64, slots)
		case aiI64, aiRLE:
			if spec.kind == aiRLE {
				it.cur = spec.rle.Cursor()
			}
			switch spec.fn {
			case AggMin, AggMax:
				it.imin = make([]int64, slots)
				it.imax = make([]int64, slots)
				it.has = make([]bool, slots)
			default: // SUM/AVG
				it.count = make([]int64, slots)
				it.sum = make([]float64, slots)
			}
		case aiF64:
			switch spec.fn {
			case AggCount:
				it.count = make([]int64, slots)
			case AggMin, AggMax:
				it.fmin = make([]float64, slots)
				it.fmax = make([]float64, slots)
				it.has = make([]bool, slots)
			default: // SUM/AVG
				it.count = make([]int64, slots)
				it.sum = make([]float64, slots)
			}
		}
	}
	return a
}

// minmaxI64 updates an int slot. Comparisons run in the float64 domain —
// exactly Value.Compare's rule — so values straddling 2^53 keep the same
// winner (the first seen among float-equal values) as the generic path.
func (it *aggItem) minmaxI64(slot int, x int64) {
	if !it.has[slot] {
		it.imin[slot], it.imax[slot], it.has[slot] = x, x, true
		return
	}
	fx := float64(x)
	if fx < float64(it.imin[slot]) {
		it.imin[slot] = x
	}
	if fx > float64(it.imax[slot]) {
		it.imax[slot] = x
	}
}

// minmaxF64 updates a float slot; the caller has already dropped NaN.
func (it *aggItem) minmaxF64(slot int, x float64) {
	if !it.has[slot] {
		it.fmin[slot], it.fmax[slot], it.has[slot] = x, x, true
		return
	}
	if x < it.fmin[slot] {
		it.fmin[slot] = x
	}
	if x > it.fmax[slot] {
		it.fmax[slot] = x
	}
}

// addSel accumulates the selected rows into slot 0 (scalar aggregation).
// These are the hot loops: one pass over the selection per item, nothing
// boxed, the fn/kind dispatch hoisted out of the loop.
func (a *aggAcc) addSel(sel []int) {
	for i := range a.items {
		it := &a.items[i]
		switch it.spec.kind {
		case aiCount:
			it.count[0] += int64(len(sel))
		case aiI64:
			v := it.spec.i64
			switch it.spec.fn {
			case AggMin, AggMax:
				for _, r := range sel {
					it.minmaxI64(0, v[r])
				}
			default:
				sum := it.sum[0]
				for _, r := range sel {
					sum += float64(v[r])
				}
				it.sum[0] = sum
				it.count[0] += int64(len(sel))
			}
		case aiF64:
			v := it.spec.f64
			switch it.spec.fn {
			case AggCount:
				c := it.count[0]
				for _, r := range sel {
					if x := v[r]; x == x {
						c++
					}
				}
				it.count[0] = c
			case AggMin, AggMax:
				for _, r := range sel {
					if x := v[r]; x == x {
						it.minmaxF64(0, x)
					}
				}
			default:
				sum, c := it.sum[0], it.count[0]
				for _, r := range sel {
					if x := v[r]; x == x {
						sum += x
						c++
					}
				}
				it.sum[0], it.count[0] = sum, c
			}
		case aiRLE:
			switch it.spec.fn {
			case AggMin, AggMax:
				for _, r := range sel {
					it.minmaxI64(0, it.cur.At(r))
				}
			default:
				sum := it.sum[0]
				for _, r := range sel {
					sum += float64(it.cur.At(r))
				}
				it.sum[0] = sum
				it.count[0] += int64(len(sel))
			}
		}
	}
}

// addRange accumulates the dense row range [lo, hi) into slot 0 — the
// no-WHERE fast path: no selection vector exists at all. RLE inputs fold
// whole runs (sum += value·length), which regroups the float association;
// the parity harnesses compare SUM/AVG within relative tolerance.
func (a *aggAcc) addRange(lo, hi int) {
	for i := range a.items {
		it := &a.items[i]
		switch it.spec.kind {
		case aiCount:
			it.count[0] += int64(hi - lo)
		case aiI64:
			v := it.spec.i64[lo:hi]
			switch it.spec.fn {
			case AggMin, AggMax:
				for _, x := range v {
					it.minmaxI64(0, x)
				}
			default:
				sum := it.sum[0]
				for _, x := range v {
					sum += float64(x)
				}
				it.sum[0] = sum
				it.count[0] += int64(hi - lo)
			}
		case aiF64:
			v := it.spec.f64[lo:hi]
			switch it.spec.fn {
			case AggCount:
				c := it.count[0]
				for _, x := range v {
					if x == x {
						c++
					}
				}
				it.count[0] = c
			case AggMin, AggMax:
				for _, x := range v {
					if x == x {
						it.minmaxF64(0, x)
					}
				}
			default:
				sum, c := it.sum[0], it.count[0]
				for _, x := range v {
					if x == x {
						sum += x
						c++
					}
				}
				it.sum[0], it.count[0] = sum, c
			}
		case aiRLE:
			switch it.spec.fn {
			case AggMin, AggMax:
				it.spec.rle.ForEachRun(lo, hi, func(x int64, _, _ int) {
					it.minmaxI64(0, x)
				})
			default:
				sum, c := it.sum[0], it.count[0]
				it.spec.rle.ForEachRun(lo, hi, func(x int64, rlo, rhi int) {
					sum += float64(x) * float64(rhi-rlo)
					c += int64(rhi - rlo)
				})
				it.sum[0], it.count[0] = sum, c
			}
		}
	}
}

// addSlot registers a new int-keyed group and grows every item's arrays.
func (a *aggAcc) addSlot(k int64, row int) int {
	s := a.nslots
	a.nslots++
	a.slots[k] = s
	a.keys = append(a.keys, k)
	a.firsts = append(a.firsts, row)
	for i := range a.items {
		it := &a.items[i]
		if it.count != nil {
			it.count = append(it.count, 0)
		}
		if it.sum != nil {
			it.sum = append(it.sum, 0)
		}
		if it.imin != nil {
			it.imin = append(it.imin, 0)
			it.imax = append(it.imax, 0)
		}
		if it.fmin != nil {
			it.fmin = append(it.fmin, 0)
			it.fmax = append(it.fmax, 0)
		}
		if it.has != nil {
			it.has = append(it.has, false)
		}
	}
	return s
}

// addRow feeds row r into the given slot for every aggregating item.
func (a *aggAcc) addRow(slot, r int) {
	for i := range a.items {
		it := &a.items[i]
		switch it.spec.kind {
		case aiCount:
			it.count[slot]++
		case aiI64:
			it.addI64(slot, it.spec.i64[r])
		case aiF64:
			if x := it.spec.f64[r]; x == x {
				it.addF64(slot, x)
			}
		case aiRLE:
			it.addI64(slot, it.cur.At(r))
		}
	}
}

func (it *aggItem) addI64(slot int, x int64) {
	switch it.spec.fn {
	case AggMin, AggMax:
		it.minmaxI64(slot, x)
	default:
		it.count[slot]++
		it.sum[slot] += float64(x)
	}
}

func (it *aggItem) addF64(slot int, x float64) {
	switch it.spec.fn {
	case AggCount:
		it.count[slot]++
	case AggMin, AggMax:
		it.minmaxF64(slot, x)
	default:
		it.count[slot]++
		it.sum[slot] += x
	}
}

// addGroupSel routes the selected rows through the group keyer: dict codes
// index slots directly, int keys resolve through the hash map.
func (a *aggAcc) addGroupSel(sel []int) {
	switch a.ak.mode {
	case gmDict:
		codes := a.ak.gcodes
		for _, r := range sel {
			slot := int(codes[r])
			if a.firsts[slot] < 0 {
				a.firsts[slot] = r
			}
			a.addRow(slot, r)
		}
	case gmI64:
		keys := a.ak.gi64
		for _, r := range sel {
			k := keys[r]
			slot, ok := a.slots[k]
			if !ok {
				slot = a.addSlot(k, r)
			}
			a.addRow(slot, r)
		}
	case gmRLE:
		for _, r := range sel {
			k := a.kcur.At(r)
			slot, ok := a.slots[k]
			if !ok {
				slot = a.addSlot(k, r)
			}
			a.addRow(slot, r)
		}
	}
}

// addGroupRange is addGroupSel over a dense row range (no WHERE).
func (a *aggAcc) addGroupRange(lo, hi int) {
	switch a.ak.mode {
	case gmDict:
		codes := a.ak.gcodes
		for r := lo; r < hi; r++ {
			slot := int(codes[r])
			if a.firsts[slot] < 0 {
				a.firsts[slot] = r
			}
			a.addRow(slot, r)
		}
	case gmI64:
		keys := a.ak.gi64
		for r := lo; r < hi; r++ {
			k := keys[r]
			slot, ok := a.slots[k]
			if !ok {
				slot = a.addSlot(k, r)
			}
			a.addRow(slot, r)
		}
	case gmRLE:
		for r := lo; r < hi; r++ {
			k := a.kcur.At(r)
			slot, ok := a.slots[k]
			if !ok {
				slot = a.addSlot(k, r)
			}
			a.addRow(slot, r)
		}
	}
}

// states renders one slot as generic aggState partials — the currency of
// the existing merge and output builders. Items whose (kind, fn) skip an
// array leave the corresponding fields zero; nothing downstream reads them
// (result() touches only what the function defines, merge guards on has).
func (a *aggAcc) states(slot int) []*aggState {
	out := make([]*aggState, len(a.items))
	for i := range a.items {
		it := &a.items[i]
		if it.spec.kind == aiNone {
			continue
		}
		st := &aggState{fn: it.spec.fn}
		if it.count != nil {
			st.count = it.count[slot]
		}
		if it.sum != nil {
			st.sum = it.sum[slot]
		}
		if it.has != nil && it.has[slot] {
			st.has = true
			if it.imin != nil {
				st.min, st.max = storage.Int(it.imin[slot]), storage.Int(it.imax[slot])
			} else {
				st.min, st.max = storage.Float(it.fmin[slot]), storage.Float(it.fmax[slot])
			}
		}
		out[i] = st
	}
	return out
}

// keyValue renders a slot's group key as a boxed value for the output row.
func (a *aggAcc) keyValue(slot int) storage.Value {
	if a.ak.mode == gmDict {
		return storage.String_(a.ak.gdict[slot])
	}
	return storage.Int(a.keys[slot])
}

// mergeGroupAccs folds per-worker accumulators into group entries ordered
// by first-seen row id — the sequential insertion order, since row ids
// strictly ascend along the selection. nil entries (workers that never
// ran) are skipped.
func mergeGroupAccs(ak *aggKernel, accs []*aggAcc) []*groupEntry {
	var entries []*groupEntry
	if ak.mode == gmDict {
		for code := 0; code < ak.gcard; code++ {
			var e *groupEntry
			for _, a := range accs {
				if a == nil || a.firsts[code] < 0 {
					continue
				}
				if e == nil {
					e = &groupEntry{
						key:    []storage.Value{a.keyValue(code)},
						states: a.states(code),
						first:  a.firsts[code],
					}
					continue
				}
				if a.firsts[code] < e.first {
					e.first = a.firsts[code]
				}
				for i, st := range a.states(code) {
					if st != nil {
						e.states[i].merge(st)
					}
				}
			}
			if e != nil {
				entries = append(entries, e)
			}
		}
	} else {
		merged := make(map[int64]*groupEntry)
		for _, a := range accs {
			if a == nil {
				continue
			}
			for slot := 0; slot < a.nslots; slot++ {
				k := a.keys[slot]
				e, ok := merged[k]
				if !ok {
					e = &groupEntry{
						key:    []storage.Value{a.keyValue(slot)},
						states: a.states(slot),
						first:  a.firsts[slot],
					}
					merged[k] = e
					entries = append(entries, e)
					continue
				}
				if a.firsts[slot] < e.first {
					e.first = a.firsts[slot]
				}
				for i, st := range a.states(slot) {
					if st != nil {
						e.states[i].merge(st)
					}
				}
			}
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].first < entries[j].first })
	return entries
}

// executeAggKernel runs a compiled aggregate query end to end. When the
// WHERE clause compiles too (or is trivially true) the pipeline fuses:
// pooled selection buffers never leave their morsel and no global
// selection vector exists. Otherwise the generic scan materializes the
// selection and the typed accumulators consume it.
func executeAggKernel(t *storage.Table, q Query, ak *aggKernel, pool *par.Pool, tr tracer, opt ExecOptions, sp *trace.Span) (*storage.Table, error) {
	n := t.NumRows()
	stageName := "aggregate"
	if ak.mode != gmScalar {
		stageName = "group_by"
	}
	dense := q.Where == nil || q.Where.Kind == expr.KTrue
	var kern *expr.Kernel
	kreason := ""
	if !dense {
		kern, kreason = expr.CompileKernel(t, q.Where)
	}

	var out *storage.Table
	var err error
	if dense || kern != nil {
		if kern != nil {
			if err := fpKernel.Hit(); err != nil {
				return nil, err
			}
		}
		var pruners []zonePruner
		if opt.ZoneMap && kern != nil {
			pruners, err = zonePruners(t, q.Where, pool.MorselSize())
			if err != nil {
				return nil, err
			}
		}
		st := sp.Child(stageName)
		var matched, zskipped int64
		if ak.mode == gmScalar {
			out, matched, zskipped, err = ak.scalarFused(t, q, kern, pruners, pool, tr)
		} else {
			out, matched, zskipped, err = ak.groupFused(t, q, kern, pruners, pool, tr)
		}
		if opt.ZoneSkipped != nil && zskipped > 0 {
			opt.ZoneSkipped.Add(zskipped)
		}
		if st != nil {
			st.SetInt("rows_in", int64(n))
			st.SetInt("rows_matched", matched)
			st.SetInt("morsels", int64(pool.Morsels(n)))
			st.SetInt("workers", int64(pool.WorkersFor(n)))
			st.SetBool("agg_kernel", true)
			st.SetBool("fused", true)
			if kern != nil {
				st.SetBool("kernel", true)
				st.SetInt("kernel_leaves", int64(kern.Leaves()))
			}
			if opt.ZoneMap {
				st.SetInt("zone_skipped", zskipped)
			}
			if err == nil && ak.mode != gmScalar {
				st.SetInt("groups", int64(out.NumRows()))
			}
			st.End()
		}
		if err != nil {
			return nil, err
		}
	} else {
		// The predicate doesn't specialize: scan generically into a
		// materialized selection, then accumulate typed over it.
		scanSp := sp.Child("scan")
		sel, zskipped, serr := filterPar(t, q.Where, pool, tr, opt.ZoneMap)
		if opt.ZoneSkipped != nil && zskipped > 0 {
			opt.ZoneSkipped.Add(zskipped)
		}
		if scanSp != nil {
			scanSp.SetInt("rows_in", int64(n))
			scanSp.SetInt("rows_out", int64(len(sel)))
			scanSp.SetInt("morsels", int64(pool.Morsels(n)))
			scanSp.SetInt("workers", int64(pool.WorkersFor(n)))
			if opt.ZoneMap {
				scanSp.SetInt("zone_skipped", zskipped)
			}
			scanSp.SetBool("kernel", false)
			scanSp.SetStr("kernel_fallback", kreason)
			scanSp.End()
		}
		if serr != nil {
			return nil, serr
		}
		st := sp.Child(stageName)
		st.SetInt("rows_in", int64(len(sel)))
		st.SetBool("agg_kernel", true)
		st.SetBool("fused", false)
		out, err = ak.aggregateSel(t, q, sel, pool, tr)
		if err == nil && ak.mode != gmScalar {
			st.SetInt("groups", int64(out.NumRows()))
		}
		st.End()
		if err != nil {
			return nil, err
		}
	}
	if err := tr.ctx.Err(); err != nil {
		return nil, err
	}
	fsp := sp.Child("finish")
	out, err = finish(out, q)
	fsp.End()
	return out, err
}

// scalarFused filters and accumulates per morsel with no selection vector
// outliving its morsel. Partials are morsel-indexed so the merge order —
// and the floating-point sum — is deterministic for a given morsel size,
// matching scalarAggregatePar's contract.
func (ak *aggKernel) scalarFused(t *storage.Table, q Query, kern *expr.Kernel, pruners []zonePruner, pool *par.Pool, tr tracer) (*storage.Table, int64, int64, error) {
	n := t.NumRows()
	m := pool.MorselSize()
	if pool.WorkersFor(n) <= 1 && !tr.active() && len(pruners) == 0 {
		if err := fpScan.Hit(); err != nil {
			return nil, 0, 0, err
		}
		acc := ak.newAcc()
		matched := int64(0)
		if kern == nil {
			acc.addRange(0, n)
			matched = int64(n)
		} else {
			// One pooled buffer serves every morsel in turn: run the
			// kernel, fold, reset — the whole channel-less handoff in
			// three lines.
			buf := getSel()
			defer putSel(buf)
			for lo := 0; lo < n; lo += m {
				hi := lo + m
				if hi > n {
					hi = n
				}
				*buf = kern.Run(lo, hi, (*buf)[:0])
				acc.addSel(*buf)
				matched += int64(len(*buf))
			}
		}
		out, err := buildScalarOutput(t, q, acc.states(0))
		return out, matched, 0, err
	}
	partials := make([][]*aggState, storage.NumChunks(n, m))
	var matched, skipped atomic.Int64
	err := pool.ForEachErrCtx(tr.ctx, n, func(_, lo, hi int) error {
		if ferr := fpScan.Hit(); ferr != nil {
			return ferr
		}
		for _, pr := range pruners {
			if pr.skip(lo / m) {
				skipped.Add(1)
				return nil
			}
		}
		acc := ak.newAcc()
		if kern == nil {
			acc.addRange(lo, hi)
			matched.Add(int64(hi - lo))
			tr.count(hi - lo)
		} else {
			buf := getSel()
			*buf = kern.Run(lo, hi, (*buf)[:0])
			acc.addSel(*buf)
			matched.Add(int64(len(*buf)))
			tr.count(hi - lo + len(*buf))
			putSel(buf)
		}
		partials[lo/m] = acc.states(0)
		return nil
	})
	if err != nil {
		return nil, 0, 0, err
	}
	states := newAggStates(q)
	for _, p := range partials {
		if p == nil { // pruned morsel: contributed nothing
			continue
		}
		for i, st := range states {
			if st != nil {
				st.merge(p[i])
			}
		}
	}
	out, err := buildScalarOutput(t, q, states)
	return out, matched.Load(), skipped.Load(), err
}

// groupFused is scalarFused's group-by twin: worker-local accumulators
// (dict mode: dense per-code arrays; int modes: raw-key hash), merged and
// re-sorted by first-seen row id.
func (ak *aggKernel) groupFused(t *storage.Table, q Query, kern *expr.Kernel, pruners []zonePruner, pool *par.Pool, tr tracer) (*storage.Table, int64, int64, error) {
	n := t.NumRows()
	m := pool.MorselSize()
	w := pool.WorkersFor(n)
	if w < 1 {
		w = 1
	}
	locals := make([]*aggAcc, w)
	var matched, skipped atomic.Int64
	err := pool.ForEachErrCtx(tr.ctx, n, func(worker, lo, hi int) error {
		if ferr := fpScan.Hit(); ferr != nil {
			return ferr
		}
		for _, pr := range pruners {
			if pr.skip(lo / m) {
				skipped.Add(1)
				return nil
			}
		}
		acc := locals[worker]
		if acc == nil {
			acc = ak.newAcc()
			locals[worker] = acc
		}
		if kern == nil {
			acc.addGroupRange(lo, hi)
			matched.Add(int64(hi - lo))
			tr.count(hi - lo)
		} else {
			buf := getSel()
			*buf = kern.Run(lo, hi, (*buf)[:0])
			acc.addGroupSel(*buf)
			matched.Add(int64(len(*buf)))
			tr.count(hi - lo + len(*buf))
			putSel(buf)
		}
		return nil
	})
	if err != nil {
		return nil, 0, 0, err
	}
	out, err := buildGroupEntries(t, q, ak.inputs, mergeGroupAccs(ak, locals))
	return out, matched.Load(), skipped.Load(), err
}

// aggregateSel runs the typed accumulators over an already-materialized
// selection — the half-fused path behind uncompilable predicates. It
// mirrors scalarAggregatePar/groupByPar's scheduling and merge order.
func (ak *aggKernel) aggregateSel(t *storage.Table, q Query, sel []int, pool *par.Pool, tr tracer) (*storage.Table, error) {
	m := pool.MorselSize()
	if ak.mode == gmScalar {
		if pool.WorkersFor(len(sel)) <= 1 {
			acc := ak.newAcc()
			if !tr.active() {
				acc.addSel(sel)
				return buildScalarOutput(t, q, acc.states(0))
			}
			for lo := 0; lo < len(sel); lo += m {
				if err := tr.ctx.Err(); err != nil {
					return nil, err
				}
				hi := lo + m
				if hi > len(sel) {
					hi = len(sel)
				}
				acc.addSel(sel[lo:hi])
				tr.count(hi - lo)
			}
			return buildScalarOutput(t, q, acc.states(0))
		}
		partials := make([][]*aggState, storage.NumChunks(len(sel), m))
		err := pool.ForEachCtx(tr.ctx, len(sel), func(_, lo, hi int) {
			acc := ak.newAcc()
			acc.addSel(sel[lo:hi])
			partials[lo/m] = acc.states(0)
			tr.count(hi - lo)
		})
		if err != nil {
			return nil, err
		}
		states := newAggStates(q)
		for _, p := range partials {
			for i, st := range states {
				if st != nil {
					st.merge(p[i])
				}
			}
		}
		return buildScalarOutput(t, q, states)
	}
	w := pool.WorkersFor(len(sel))
	if w < 1 {
		w = 1
	}
	locals := make([]*aggAcc, w)
	err := pool.ForEachCtx(tr.ctx, len(sel), func(worker, lo, hi int) {
		acc := locals[worker]
		if acc == nil {
			acc = ak.newAcc()
			locals[worker] = acc
		}
		acc.addGroupSel(sel[lo:hi])
		tr.count(hi - lo)
	})
	if err != nil {
		return nil, err
	}
	return buildGroupEntries(t, q, ak.inputs, mergeGroupAccs(ak, locals))
}
