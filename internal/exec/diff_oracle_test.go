// Differential oracles across execution modes. Where parity_test.go proves
// the parallel operators match the sequential ones inside this package,
// this file (an external test package, so it can stand up full engines)
// checks the cross-mode contract the service sells:
//
//   - exact, parallel (morsel sizes 1/7/64) and cracked execution agree
//     row-for-row on seeded random tables and queries;
//   - the approximate modes (AQP sampling, online aggregation) land inside
//     their own reported 95% confidence intervals in at least 95% of
//     seeded trials.
//
// Everything is seeded so the suite is deterministic-green: the trial
// counts and seeds below were tuned together — if you change one, rerun
// and retune rather than loosening the thresholds.
package exec_test

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"dex/internal/core"
	"dex/internal/exec"
	"dex/internal/expr"
	"dex/internal/storage"
)

// oracleTable builds the random test table: a shuffled unique int key (so
// ORDER BY id is a total order and cracking has real work to do), a
// small-domain int dimension, a float measure, and a label column.
func oracleTable(rng *rand.Rand, name string, rows int) *storage.Table {
	ids := rng.Perm(rows)
	ks := make([]int64, rows)
	ds := make([]int64, rows)
	vs := make([]float64, rows)
	ss := make([]string, rows)
	labels := []string{"red", "green", "blue", "amber"}
	for i := 0; i < rows; i++ {
		ks[i] = int64(ids[i])
		ds[i] = rng.Int63n(7)
		vs[i] = rng.NormFloat64() * 100
		ss[i] = labels[rng.Intn(len(labels))]
	}
	t, err := storage.FromColumns(name, storage.Schema{
		{Name: "id", Type: storage.TInt},
		{Name: "d", Type: storage.TInt},
		{Name: "v", Type: storage.TFloat},
		{Name: "s", Type: storage.TString},
	}, []storage.Column{
		storage.NewIntColumn(ks), storage.NewIntColumn(ds),
		storage.NewFloatColumn(vs), storage.NewStringColumn(ss),
	})
	if err != nil {
		panic(err)
	}
	return t
}

// rangeWhere builds a crackable conjunctive range predicate on an int or
// float column; about a third of draws leave it nil (full scan).
func rangeWhere(rng *rand.Rand, rows int) *expr.Pred {
	switch rng.Intn(6) {
	case 0:
		return nil
	case 1: // open-ended on the key
		return expr.Cmp("id", expr.GE, storage.Int(rng.Int63n(int64(rows))))
	case 2: // closed range on the key
		lo := rng.Int63n(int64(rows))
		hi := lo + rng.Int63n(int64(rows))
		return expr.And(
			expr.Cmp("id", expr.GE, storage.Int(lo)),
			expr.Cmp("id", expr.LT, storage.Int(hi)),
		)
	case 3: // closed range on the float measure
		lo := rng.NormFloat64() * 50
		return expr.And(
			expr.Cmp("v", expr.GE, storage.Float(lo)),
			expr.Cmp("v", expr.LT, storage.Float(lo+rng.Float64()*200)),
		)
	case 4: // small-domain dimension
		return expr.Cmp("d", expr.LE, storage.Int(rng.Int63n(7)))
	default: // not crackable: exercises the cracked-mode fallback
		return expr.Cmp("s", expr.NE, storage.String_("red"))
	}
}

// oracleQuery draws a query plus the number of leading exact-valued key
// columns a canonical sort may use (0 = compare positionally).
func oracleQuery(rng *rand.Rand, rows int) (exec.Query, int) {
	aggs := []exec.AggFunc{exec.AggCount, exec.AggSum, exec.AggAvg, exec.AggMin, exec.AggMax}
	var q exec.Query
	keyCols := 0
	switch rng.Intn(3) {
	case 0: // projection, totally ordered by the unique key
		q.Select = []exec.SelectItem{{Col: "id"}, {Col: "v"}, {Col: "s"}}
		q.OrderBy = []exec.OrderKey{{Col: "id", Desc: rng.Intn(2) == 0}}
		if rng.Intn(2) == 0 {
			q.Limit = 1 + rng.Intn(50)
		}
	case 1: // scalar aggregates: one row, positional compare
		q.Select = []exec.SelectItem{
			{Col: "*", Agg: exec.AggCount},
			{Col: "v", Agg: aggs[rng.Intn(len(aggs))]},
			{Col: "d", Agg: aggs[rng.Intn(len(aggs))]},
		}
	default: // group-by: canonical sort on the group keys
		dims := [][]string{{"d"}, {"s"}, {"d", "s"}}[rng.Intn(3)]
		q.GroupBy = dims
		for _, g := range dims {
			q.Select = append(q.Select, exec.SelectItem{Col: g})
		}
		q.Select = append(q.Select,
			exec.SelectItem{Col: "v", Agg: aggs[rng.Intn(len(aggs))]},
			exec.SelectItem{Col: "*", Agg: exec.AggCount},
		)
		keyCols = len(dims)
	}
	q.Where = rangeWhere(rng, rows)
	return q, keyCols
}

// cellsClose is the float tolerance shared with the parity harness:
// parallel SUM/AVG merge in morsel order, which can move a result by ulps.
func cellsClose(a, b storage.Value) bool {
	if a.Typ != b.Typ {
		return false
	}
	if a.Typ != storage.TFloat {
		return a == b
	}
	x, y := a.F, b.F
	if math.IsNaN(x) || math.IsNaN(y) {
		return math.IsNaN(x) && math.IsNaN(y)
	}
	if x == y {
		return true
	}
	return math.Abs(x-y) <= 1e-9*math.Max(math.Abs(x), math.Abs(y))
}

// canonicalRows extracts a table's rows, sorted by the first keyCols
// columns when keyCols > 0. The key columns are exact-valued (int/string
// group keys), so the sort is stable across modes; float aggregates never
// participate in the ordering.
func canonicalRows(t *storage.Table, keyCols int) [][]storage.Value {
	rows := make([][]storage.Value, t.NumRows())
	for r := range rows {
		row := make([]storage.Value, t.NumCols())
		for c := range row {
			row[c] = t.Column(c).Value(r)
		}
		rows[r] = row
	}
	if keyCols > 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			for c := 0; c < keyCols; c++ {
				a, b := fmt.Sprintf("%v", rows[i][c]), fmt.Sprintf("%v", rows[j][c])
				if a != b {
					return a < b
				}
			}
			return false
		})
	}
	return rows
}

// requireAgree asserts got matches want row-for-row, canonicalizing group
// order when the query leaves it unspecified (cracked execution visits
// rows in cracked physical order, so its first-seen group order differs).
func requireAgree(t *testing.T, label string, want, got *storage.Table, keyCols int) {
	t.Helper()
	if want.Schema().String() != got.Schema().String() {
		t.Fatalf("%s: schema\nwant: %s\ngot:  %s", label, want.Schema(), got.Schema())
	}
	if want.NumRows() != got.NumRows() {
		t.Fatalf("%s: rows want=%d got=%d", label, want.NumRows(), got.NumRows())
	}
	w, g := canonicalRows(want, keyCols), canonicalRows(got, keyCols)
	for r := range w {
		for c := range w[r] {
			if !cellsClose(w[r][c], g[r][c]) {
				t.Fatalf("%s: row %d col %d (%s): want %v got %v",
					label, r, c, want.Schema()[c].Name, w[r][c], g[r][c])
			}
		}
	}
}

// TestCrossModeRowOracle: 120 seeded random (table, query) trials, each
// executed five ways — sequential exact, parallel exact at morsel sizes
// 1, 7 and 64, and cracked — must produce identical result rows. The
// cracked engines accumulate index state across trials, so later queries
// hit partially-cracked columns, exactly as a live session would.
func TestCrossModeRowOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, rows := range []int{1009, 5000} {
		tbl := oracleTable(rng, "otab", rows)

		seq := core.New(core.Options{Seed: 1, Exec: exec.ExecOptions{Parallelism: 1}})
		crk := core.New(core.Options{Seed: 1, Exec: exec.ExecOptions{Parallelism: 1}})
		pars := map[int]*core.Engine{}
		for _, m := range []int{1, 7, 64} {
			pars[m] = core.New(core.Options{Seed: 1, Exec: exec.ExecOptions{Parallelism: 4, MorselSize: m}})
		}
		for _, e := range append([]*core.Engine{seq, crk}, pars[1], pars[7], pars[64]) {
			if err := e.Register(tbl); err != nil {
				t.Fatal(err)
			}
		}

		for trial := 0; trial < 60; trial++ {
			q, keyCols := oracleQuery(rng, rows)
			label := fmt.Sprintf("rows=%d trial=%d q=%s", rows, trial, q)
			want, err := seq.Execute("otab", q, core.Exact)
			if err != nil {
				t.Fatalf("%s: sequential: %v", label, err)
			}
			for _, m := range []int{1, 7, 64} {
				got, err := pars[m].Execute("otab", q, core.Exact)
				if err != nil {
					t.Fatalf("%s: parallel morsel=%d: %v", label, m, err)
				}
				requireAgree(t, label+fmt.Sprintf(" [parallel morsel=%d]", m), want, got, keyCols)
			}
			got, err := crk.Execute("otab", q, core.Cracked)
			if err != nil {
				t.Fatalf("%s: cracked: %v", label, err)
			}
			requireAgree(t, label+" [cracked]", want, got, keyCols)
		}
	}
}

// approxTrial is one CI-coverage draw: a scalar aggregate under a random
// range predicate, executed exactly and approximately. It reports whether
// the approximate answer's reported ci95 covered the truth.
func approxTrial(t *testing.T, eng *core.Engine, rng *rand.Rand, rows int, mode core.Mode) bool {
	t.Helper()
	aggs := []exec.AggFunc{exec.AggSum, exec.AggCount, exec.AggAvg}
	q := exec.Query{
		Select: []exec.SelectItem{{Col: "v", Agg: aggs[rng.Intn(len(aggs))]}},
	}
	// Wide predicates only: a range matching a handful of rows gives the
	// sampler a few points to estimate from, and its small-sample CIs are
	// not what this oracle is calibrating.
	lo := rng.Int63n(int64(rows / 2))
	q.Where = expr.And(
		expr.Cmp("id", expr.GE, storage.Int(lo)),
		expr.Cmp("id", expr.LT, storage.Int(lo+int64(rows)/3)),
	)
	exact, err := eng.Execute("otab", q, core.Exact)
	if err != nil {
		t.Fatal(err)
	}
	truth := exact.Column(0).Value(0).AsFloat()
	approx, err := eng.Execute("otab", q, mode)
	if err != nil {
		t.Fatal(err)
	}
	if approx.NumRows() != 1 {
		t.Fatalf("approximate result has %d rows", approx.NumRows())
	}
	est := approx.Column(0).Value(0).AsFloat()
	ci := approx.Column(1).Value(0).AsFloat()
	if ci <= 0 {
		// A zero-width interval means the estimator consumed the whole
		// population (online aggregation ran to completion): the answer
		// must equal the exact one. Compare as floats — the estimates
		// table renders every aggregate as FLOAT (exact COUNT is INT),
		// and a full randomized-order scan accumulates sums in a
		// different order than the exact path, so ulps may differ.
		return math.Abs(est-truth) <= 1e-9*math.Max(1, math.Abs(truth))
	}
	return math.Abs(est-truth) <= ci
}

// TestApproxCIOracle: over seeded trials, AQP sampling and online
// aggregation must cover the exact answer with their reported 95% CIs at
// least 95% of the time. Trial counts and the seed are tuned together so
// the suite stays deterministic-green with margin over the threshold.
func TestApproxCIOracle(t *testing.T) {
	const rows = 40_000
	const trials = 40
	rng := rand.New(rand.NewSource(23))
	tbl := oracleTable(rng, "otab", rows)
	eng := core.New(core.Options{Seed: 9})
	if err := eng.Register(tbl); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		mode core.Mode
	}{
		{"aqp", core.Approx},
		{"online", core.Online},
	} {
		t.Run(tc.name, func(t *testing.T) {
			covered := 0
			for i := 0; i < trials; i++ {
				if approxTrial(t, eng, rng, rows, tc.mode) {
					covered++
				}
			}
			coverage := float64(covered) / trials
			t.Logf("%s: %d/%d trials inside reported ci95 (%.1f%%)", tc.name, covered, trials, 100*coverage)
			if coverage < 0.95 {
				t.Fatalf("%s coverage %.1f%% < 95%%: the reported confidence intervals are optimistic", tc.name, 100*coverage)
			}
		})
	}
}
