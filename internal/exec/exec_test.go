package exec

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dex/internal/expr"
	"dex/internal/storage"
)

func mkSales(t *testing.T) *storage.Table {
	t.Helper()
	tbl, err := storage.NewTable("sales", storage.Schema{
		{Name: "region", Type: storage.TString},
		{Name: "amount", Type: storage.TFloat},
		{Name: "qty", Type: storage.TInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		r string
		a float64
		q int64
	}{
		{"east", 10, 1}, {"west", 20, 2}, {"east", 30, 3},
		{"north", 5, 1}, {"west", 40, 4}, {"east", 8, 2},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(storage.String_(r.r), storage.Float(r.a), storage.Int(r.q)); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestProjectWhereOrderLimit(t *testing.T) {
	tbl := mkSales(t)
	res, err := Execute(tbl, Query{
		Select:  []SelectItem{{Col: "region"}, {Col: "amount"}},
		Where:   expr.Cmp("amount", GTf(), storage.Float(9)),
		OrderBy: []OrderKey{{Col: "amount", Desc: true}},
		Limit:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", res.NumRows())
	}
	if res.Row(0)[1].F != 40 || res.Row(1)[1].F != 30 {
		t.Errorf("top amounts = %v,%v", res.Row(0)[1], res.Row(1)[1])
	}
}

// GTf avoids an import cycle-free literal for expr.GT in table-driven tests.
func GTf() expr.Op { return expr.GT }

func TestScalarAggregates(t *testing.T) {
	tbl := mkSales(t)
	res, err := Execute(tbl, Query{
		Select: []SelectItem{
			{Col: "*", Agg: AggCount},
			{Col: "amount", Agg: AggSum},
			{Col: "amount", Agg: AggAvg},
			{Col: "amount", Agg: AggMin},
			{Col: "amount", Agg: AggMax},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	row := res.Row(0)
	if row[0].I != 6 {
		t.Errorf("count = %v", row[0])
	}
	if row[1].F != 113 {
		t.Errorf("sum = %v", row[1])
	}
	if math.Abs(row[2].F-113.0/6) > 1e-9 {
		t.Errorf("avg = %v", row[2])
	}
	if row[3].F != 5 || row[4].F != 40 {
		t.Errorf("min/max = %v/%v", row[3], row[4])
	}
}

func TestScalarAggregateEmptySelection(t *testing.T) {
	tbl := mkSales(t)
	res, err := Execute(tbl, Query{
		Select: []SelectItem{{Col: "*", Agg: AggCount}, {Col: "amount", Agg: AggAvg}},
		Where:  expr.Cmp("amount", expr.GT, storage.Float(1e9)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Row(0)[0].I != 0 {
		t.Errorf("count = %v, want 0", res.Row(0)[0])
	}
	if !math.IsNaN(res.Row(0)[1].F) {
		t.Errorf("avg of empty = %v, want NaN", res.Row(0)[1])
	}
}

func TestGroupBy(t *testing.T) {
	tbl := mkSales(t)
	res, err := Execute(tbl, Query{
		Select: []SelectItem{
			{Col: "region"},
			{Col: "amount", Agg: AggSum},
			{Col: "*", Agg: AggCount},
		},
		GroupBy: []string{"region"},
		OrderBy: []OrderKey{{Col: "region"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 {
		t.Fatalf("groups = %d, want 3", res.NumRows())
	}
	want := map[string]struct {
		sum float64
		n   int64
	}{
		"east": {48, 3}, "north": {5, 1}, "west": {60, 2},
	}
	for r := 0; r < res.NumRows(); r++ {
		row := res.Row(r)
		w := want[row[0].S]
		if row[1].F != w.sum || row[2].I != w.n {
			t.Errorf("group %s = (%v,%v), want %v", row[0].S, row[1], row[2], w)
		}
	}
}

func TestGroupByMultiKeyAndWhere(t *testing.T) {
	tbl := mkSales(t)
	res, err := Execute(tbl, Query{
		Select: []SelectItem{
			{Col: "region"}, {Col: "qty"},
			{Col: "amount", Agg: AggMax},
		},
		Where:   expr.Cmp("qty", expr.LE, storage.Int(2)),
		GroupBy: []string{"region", "qty"},
		OrderBy: []OrderKey{{Col: "region"}, {Col: "qty"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// qty<=2 rows: east/1/10, west/2/20, north/1/5, east/2/8 -> 4 groups
	if res.NumRows() != 4 {
		t.Fatalf("groups = %d, want 4", res.NumRows())
	}
	if res.Row(0)[0].S != "east" || res.Row(0)[1].I != 1 || res.Row(0)[2].F != 10 {
		t.Errorf("first group = %v", res.Row(0))
	}
}

func TestMixedSelectError(t *testing.T) {
	tbl := mkSales(t)
	_, err := Execute(tbl, Query{
		Select: []SelectItem{{Col: "region"}, {Col: "amount", Agg: AggSum}},
	})
	if !errors.Is(err, ErrMixedSelect) {
		t.Errorf("err = %v, want ErrMixedSelect", err)
	}
	_, err = Execute(tbl, Query{
		Select:  []SelectItem{{Col: "qty"}, {Col: "amount", Agg: AggSum}},
		GroupBy: []string{"region"},
	})
	if !errors.Is(err, ErrMixedSelect) {
		t.Errorf("group err = %v, want ErrMixedSelect", err)
	}
}

func TestAggregateOverStringError(t *testing.T) {
	tbl := mkSales(t)
	_, err := Execute(tbl, Query{Select: []SelectItem{{Col: "region", Agg: AggSum}}})
	if !errors.Is(err, ErrBadAggregate) {
		t.Errorf("err = %v, want ErrBadAggregate", err)
	}
	// MIN/MAX over strings is legal.
	res, err := Execute(tbl, Query{Select: []SelectItem{{Col: "region", Agg: AggMin}, {Col: "region", Agg: AggMax}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Row(0)[0].S != "east" || res.Row(0)[1].S != "west" {
		t.Errorf("min/max string = %v", res.Row(0))
	}
}

func TestEmptySelectError(t *testing.T) {
	tbl := mkSales(t)
	if _, err := Execute(tbl, Query{}); !errors.Is(err, ErrEmptySelect) {
		t.Errorf("err = %v", err)
	}
}

func TestSelectItemNames(t *testing.T) {
	if (SelectItem{Col: "x", Agg: AggSum}).Name() != "sum(x)" {
		t.Error("agg name")
	}
	if (SelectItem{Col: "x", Agg: AggSum, As: "total"}).Name() != "total" {
		t.Error("alias name")
	}
	if (SelectItem{Col: "x"}).Name() != "x" {
		t.Error("plain name")
	}
}

func TestQueryString(t *testing.T) {
	q := Query{
		Select:  []SelectItem{{Col: "region"}, {Col: "amount", Agg: AggSum}},
		Where:   expr.Cmp("qty", expr.GT, storage.Int(1)),
		GroupBy: []string{"region"},
		OrderBy: []OrderKey{{Col: "region", Desc: true}},
		Limit:   5,
	}
	want := "SELECT region, SUM(amount) WHERE qty > 1 GROUP BY region ORDER BY region DESC LIMIT 5"
	if got := q.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestDistinct(t *testing.T) {
	tbl := mkSales(t)
	vals, err := Distinct(tbl, "region")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 || vals[0].S != "east" || vals[2].S != "west" {
		t.Errorf("distinct = %v", vals)
	}
}

func TestJoin(t *testing.T) {
	orders, _ := storage.NewTable("orders", storage.Schema{
		{Name: "oid", Type: storage.TInt}, {Name: "cust", Type: storage.TInt}, {Name: "amt", Type: storage.TFloat},
	})
	for _, r := range [][3]int64{{1, 10, 100}, {2, 20, 200}, {3, 10, 300}, {4, 99, 400}} {
		_ = orders.AppendRow(storage.Int(r[0]), storage.Int(r[1]), storage.Float(float64(r[2])))
	}
	custs, _ := storage.NewTable("custs", storage.Schema{
		{Name: "cust", Type: storage.TInt}, {Name: "name", Type: storage.TString},
	})
	_ = custs.AppendRow(storage.Int(10), storage.String_("ann"))
	_ = custs.AppendRow(storage.Int(20), storage.String_("bob"))

	j, err := Join(orders, custs, "cust", "cust")
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 3 {
		t.Fatalf("join rows = %d, want 3", j.NumRows())
	}
	// Collided key column is prefixed.
	if j.Schema().Index("custs.cust") < 0 {
		t.Errorf("schema = %v", j.Schema())
	}
	names := map[int64]string{}
	cOid, _ := j.ColumnByName("oid")
	cName, _ := j.ColumnByName("name")
	for i := 0; i < j.NumRows(); i++ {
		names[cOid.Value(i).I] = cName.Value(i).S
	}
	if names[1] != "ann" || names[2] != "bob" || names[3] != "ann" {
		t.Errorf("join names = %v", names)
	}
	if _, ok := names[4]; ok {
		t.Error("unmatched row leaked into inner join")
	}
}

func TestJoinMissingKey(t *testing.T) {
	tbl := mkSales(t)
	if _, err := Join(tbl, tbl, "nope", "region"); err == nil {
		t.Error("want error for missing left key")
	}
	if _, err := Join(tbl, tbl, "region", "nope"); err == nil {
		t.Error("want error for missing right key")
	}
}

// Property: SUM/COUNT from group-by equal the per-group oracle computed by
// direct iteration, on random data.
func TestGroupByMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 200
		groups := []string{"a", "b", "c", "d"}
		gcol := make([]string, n)
		vcol := make([]float64, n)
		oracleSum := map[string]float64{}
		oracleN := map[string]int64{}
		for i := 0; i < n; i++ {
			g := groups[rng.Intn(len(groups))]
			v := rng.Float64() * 100
			gcol[i] = g
			vcol[i] = v
			oracleSum[g] += v
			oracleN[g]++
		}
		tbl, err := storage.FromColumns("r", storage.Schema{
			{Name: "g", Type: storage.TString}, {Name: "v", Type: storage.TFloat},
		}, []storage.Column{storage.NewStringColumn(gcol), storage.NewFloatColumn(vcol)})
		if err != nil {
			return false
		}
		res, err := Execute(tbl, Query{
			Select:  []SelectItem{{Col: "g"}, {Col: "v", Agg: AggSum}, {Col: "*", Agg: AggCount}},
			GroupBy: []string{"g"},
		})
		if err != nil {
			return false
		}
		if res.NumRows() != len(oracleSum) {
			return false
		}
		for r := 0; r < res.NumRows(); r++ {
			row := res.Row(r)
			if math.Abs(row[1].F-oracleSum[row[0].S]) > 1e-6 || row[2].I != oracleN[row[0].S] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestHaving(t *testing.T) {
	tbl := mkSales(t)
	res, err := Execute(tbl, Query{
		Select: []SelectItem{
			{Col: "region"},
			{Col: "amount", Agg: AggSum},
		},
		GroupBy: []string{"region"},
		Having:  expr.Cmp("sum(amount)", expr.GT, storage.Float(40)),
		OrderBy: []OrderKey{{Col: "region"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sums: east 48, north 5, west 60 -> east and west survive.
	if res.NumRows() != 2 || res.Row(0)[0].S != "east" || res.Row(1)[0].S != "west" {
		t.Errorf("having result:\n%s", res.Format(10))
	}
	// HAVING on an alias.
	res, err = Execute(tbl, Query{
		Select: []SelectItem{
			{Col: "region"},
			{Col: "amount", Agg: AggSum, As: "total"},
		},
		GroupBy: []string{"region"},
		Having:  expr.Cmp("total", expr.LT, storage.Float(10)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || res.Row(0)[0].S != "north" {
		t.Errorf("alias having:\n%s", res.Format(10))
	}
	// HAVING without aggregation is rejected.
	if _, err := Execute(tbl, Query{
		Select: []SelectItem{{Col: "region"}},
		Having: expr.Cmp("region", expr.EQ, storage.String_("east")),
	}); err == nil {
		t.Error("HAVING without aggregation should error")
	}
	// HAVING referencing a missing output column errors.
	if _, err := Execute(tbl, Query{
		Select:  []SelectItem{{Col: "region"}, {Col: "amount", Agg: AggSum}},
		GroupBy: []string{"region"},
		Having:  expr.Cmp("nope", expr.GT, storage.Float(0)),
	}); err == nil {
		t.Error("bad HAVING column should error")
	}
}

func TestQueryStringWithHaving(t *testing.T) {
	q := Query{
		Select:  []SelectItem{{Col: "g"}, {Col: "v", Agg: AggSum}},
		GroupBy: []string{"g"},
		Having:  expr.Cmp("sum(v)", expr.GT, storage.Float(1)),
	}
	want := "SELECT g, SUM(v) GROUP BY g HAVING sum(v) > 1"
	if got := q.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
