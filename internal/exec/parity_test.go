package exec

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dex/internal/expr"
	"dex/internal/storage"
)

// The parity harness: for randomly generated tables and Query values, the
// parallel operators must produce exactly the sequential output — same
// schema, same rows, same (deterministic) row order. Floats compare with a
// tight relative tolerance because parallel SUM/AVG merge partials in
// morsel/worker order, which can move the result by an ulp.

// randParityTable builds a table with an int key, a small-domain int
// dimension, a float measure (NaN-polluted when nanFrac > 0 — NaN is the
// engine's NULL), and a low-cardinality string column.
func randParityTable(rng *rand.Rand, rows int, nanFrac float64) *storage.Table {
	ks := make([]int64, rows)
	ds := make([]int64, rows)
	fs := make([]float64, rows)
	ss := make([]string, rows)
	labels := []string{"red", "green", "blue", "amber", ""}
	for i := 0; i < rows; i++ {
		ks[i] = rng.Int63n(1000) - 500
		ds[i] = rng.Int63n(7)
		if rng.Float64() < nanFrac {
			fs[i] = math.NaN()
		} else {
			fs[i] = rng.NormFloat64() * 100
		}
		ss[i] = labels[rng.Intn(len(labels))]
	}
	t, err := storage.FromColumns("t", storage.Schema{
		{Name: "k", Type: storage.TInt},
		{Name: "d", Type: storage.TInt},
		{Name: "x", Type: storage.TFloat},
		{Name: "s", Type: storage.TString},
	}, []storage.Column{
		storage.NewIntColumn(ks), storage.NewIntColumn(ds),
		storage.NewFloatColumn(fs), storage.NewStringColumn(ss),
	})
	if err != nil {
		panic(err)
	}
	return t
}

// randPred builds a random predicate over the parity table's columns.
func randPred(rng *rand.Rand, depth int) *expr.Pred {
	if depth > 0 && rng.Float64() < 0.4 {
		kids := []*expr.Pred{randPred(rng, depth-1), randPred(rng, depth-1)}
		if rng.Intn(2) == 0 {
			return expr.And(kids...)
		}
		return expr.Or(kids...)
	}
	ops := []expr.Op{expr.EQ, expr.NE, expr.LT, expr.LE, expr.GT, expr.GE}
	op := ops[rng.Intn(len(ops))]
	switch rng.Intn(4) {
	case 0:
		return expr.Cmp("k", op, storage.Int(rng.Int63n(1000)-500))
	case 1:
		return expr.Cmp("d", op, storage.Int(rng.Int63n(7)))
	case 2:
		return expr.Cmp("x", op, storage.Float(rng.NormFloat64()*100))
	default:
		return expr.Cmp("s", op, storage.String_([]string{"red", "green", "zzz"}[rng.Intn(3)]))
	}
}

// randQuery builds a random query: a plain projection, a scalar aggregate,
// or a group-by, with optional WHERE / ORDER BY / LIMIT.
func randQuery(rng *rand.Rand) Query {
	var q Query
	aggs := []AggFunc{AggCount, AggSum, AggAvg, AggMin, AggMax}
	switch rng.Intn(3) {
	case 0: // projection
		cols := []string{"k", "d", "x", "s"}
		n := 1 + rng.Intn(len(cols))
		for _, c := range cols[:n] {
			q.Select = append(q.Select, SelectItem{Col: c})
		}
		if rng.Intn(2) == 0 {
			q.OrderBy = []OrderKey{{Col: cols[rng.Intn(n)], Desc: rng.Intn(2) == 0}}
		}
	case 1: // scalar aggregates
		q.Select = []SelectItem{
			{Col: "*", Agg: AggCount},
			{Col: "x", Agg: aggs[rng.Intn(len(aggs))]},
			{Col: "k", Agg: aggs[rng.Intn(len(aggs))]},
			{Col: "s", Agg: []AggFunc{AggCount, AggMin, AggMax}[rng.Intn(3)]},
		}
	default: // group-by
		dims := [][]string{{"d"}, {"s"}, {"d", "s"}}[rng.Intn(3)]
		q.GroupBy = dims
		for _, g := range dims {
			q.Select = append(q.Select, SelectItem{Col: g})
		}
		q.Select = append(q.Select,
			SelectItem{Col: "x", Agg: aggs[rng.Intn(len(aggs))]},
			SelectItem{Col: "*", Agg: AggCount},
		)
		// Order by the group columns only: ordering by a float aggregate
		// could flip on the ulp-level sum differences parallel merge allows.
		if rng.Intn(2) == 0 {
			q.OrderBy = []OrderKey{{Col: dims[0], Desc: rng.Intn(2) == 0}}
		}
	}
	if rng.Intn(4) != 0 {
		q.Where = randPred(rng, 2)
	}
	if rng.Intn(3) == 0 {
		q.Limit = 1 + rng.Intn(20)
	}
	return q
}

// valuesClose compares cells: exact for INT/TEXT, relative 1e-9 for floats,
// NaN equal to NaN.
func valuesClose(a, b storage.Value) bool {
	if a.Typ != b.Typ {
		return false
	}
	if a.Typ != storage.TFloat {
		return a == b
	}
	x, y := a.F, b.F
	if math.IsNaN(x) || math.IsNaN(y) {
		return math.IsNaN(x) && math.IsNaN(y)
	}
	if x == y {
		return true
	}
	diff := math.Abs(x - y)
	scale := math.Max(math.Abs(x), math.Abs(y))
	return diff <= 1e-9*scale
}

// requireSameTable asserts b matches a row-for-row. Both paths are
// order-deterministic (parallel group order is restored to first-seen), so
// positional comparison is the canonical form — stronger than a sorted one.
func requireSameTable(t *testing.T, label string, a, b *storage.Table) {
	t.Helper()
	if a.Schema().String() != b.Schema().String() {
		t.Fatalf("%s: schema mismatch\nseq: %s\npar: %s", label, a.Schema(), b.Schema())
	}
	if a.NumRows() != b.NumRows() {
		t.Fatalf("%s: rows seq=%d par=%d", label, a.NumRows(), b.NumRows())
	}
	for r := 0; r < a.NumRows(); r++ {
		for c := 0; c < a.NumCols(); c++ {
			av, bv := a.Column(c).Value(r), b.Column(c).Value(r)
			if !valuesClose(av, bv) {
				t.Fatalf("%s: cell [%d,%d] (%s) seq=%v par=%v",
					label, r, c, a.Schema()[c].Name, av, bv)
			}
		}
	}
}

// TestParallelParityProperty is the property-based harness: 200 random
// (table, query, parallelism, morsel-size) draws, sequential vs parallel.
// Tiny morsel sizes force real multi-morsel scheduling even on small
// tables, so the parallel merge paths are genuinely exercised.
func TestParallelParityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		rows := []int{0, 1, 2, 13, 100, 1000}[rng.Intn(6)]
		nanFrac := []float64{0, 0.05, 0.5, 1}[rng.Intn(4)]
		tbl := randParityTable(rng, rows, nanFrac)
		q := randQuery(rng)
		opt := ExecOptions{
			Parallelism: 2 + rng.Intn(7),
			MorselSize:  []int{1, 3, 16, 64}[rng.Intn(4)],
		}
		label := fmt.Sprintf("iter=%d rows=%d nan=%.2f par=%d morsel=%d q=%s",
			iter, rows, nanFrac, opt.Parallelism, opt.MorselSize, q)
		seq, seqErr := Execute(tbl, q)
		par, parErr := ExecuteOpts(tbl, q, opt)
		if (seqErr == nil) != (parErr == nil) {
			t.Fatalf("%s: error mismatch seq=%v par=%v", label, seqErr, parErr)
		}
		if seqErr != nil {
			continue
		}
		requireSameTable(t, label, seq, par)
	}
}

// TestParallelParityEdgeCases pins the edge cases the property harness
// might draw rarely: empty table, fully filtered input, all-NaN measures,
// and wide group counts relative to morsel size.
func TestParallelParityEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	opt := ExecOptions{Parallelism: 4, MorselSize: 8}
	cases := []struct {
		name string
		tbl  *storage.Table
		q    Query
	}{
		{
			name: "empty table scalar agg",
			tbl:  randParityTable(rng, 0, 0),
			q: Query{Select: []SelectItem{
				{Col: "*", Agg: AggCount}, {Col: "x", Agg: AggAvg}, {Col: "x", Agg: AggMin},
			}},
		},
		{
			name: "empty table group-by",
			tbl:  randParityTable(rng, 0, 0),
			q: Query{
				Select:  []SelectItem{{Col: "s"}, {Col: "x", Agg: AggSum}},
				GroupBy: []string{"s"},
			},
		},
		{
			name: "predicate matches nothing",
			tbl:  randParityTable(rng, 500, 0.1),
			q: Query{
				Select: []SelectItem{{Col: "k"}, {Col: "x"}},
				Where:  expr.Cmp("k", expr.GT, storage.Int(1<<40)),
			},
		},
		{
			name: "all-NaN measure aggregates",
			tbl:  randParityTable(rng, 300, 1),
			q: Query{Select: []SelectItem{
				{Col: "x", Agg: AggSum}, {Col: "x", Agg: AggAvg},
				{Col: "x", Agg: AggMin}, {Col: "x", Agg: AggMax},
				{Col: "x", Agg: AggCount}, {Col: "*", Agg: AggCount},
			}},
		},
		{
			name: "groups outnumber morsels",
			tbl:  randParityTable(rng, 600, 0.2),
			q: Query{
				Select: []SelectItem{
					{Col: "k"}, {Col: "x", Agg: AggAvg}, {Col: "*", Agg: AggCount},
				},
				GroupBy: []string{"k"},
			},
		},
		{
			name: "single row",
			tbl:  randParityTable(rng, 1, 0),
			q: Query{
				Select:  []SelectItem{{Col: "s"}, {Col: "x", Agg: AggMax}},
				GroupBy: []string{"s"},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq, seqErr := Execute(tc.tbl, tc.q)
			par, parErr := ExecuteOpts(tc.tbl, tc.q, opt)
			if (seqErr == nil) != (parErr == nil) {
				t.Fatalf("error mismatch seq=%v par=%v", seqErr, parErr)
			}
			if seqErr != nil {
				return
			}
			requireSameTable(t, tc.name, seq, par)
		})
	}
}

// TestParallelFilterMergeOrder pins the selection-vector merge contract:
// positions come back ascending, exactly as the sequential scan yields them.
func TestParallelFilterMergeOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tbl := randParityTable(rng, 977, 0) // prime size: last morsel is ragged
	q := Query{
		Select: []SelectItem{{Col: "k"}},
		Where:  expr.Cmp("d", expr.LE, storage.Int(3)),
	}
	seq, err := Execute(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, morsel := range []int{1, 2, 10, 100, 976, 977, 5000} {
		par, err := ExecuteOpts(tbl, q, ExecOptions{Parallelism: 5, MorselSize: morsel})
		if err != nil {
			t.Fatalf("morsel=%d: %v", morsel, err)
		}
		requireSameTable(t, fmt.Sprintf("morsel=%d", morsel), seq, par)
	}
}
