package exec

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestAggKernelEncodingParityMatrix mirrors TestKernelEncodingParityMatrix
// for the aggregation layer: sequential generic execution on the plain
// table is the oracle, and agg kernels × predicate kernels × encodings ×
// zone maps × parallelism must match it on random tables and queries.
// randQuery draws scalar aggregates, group-bys (including multi-column,
// which falls back) and plain projections, so the dispatch boundary is
// crossed both ways. Runs under -race in CI: the worker-local group
// accumulators and morsel-indexed partials are exactly the state the race
// detector watches.
func TestAggKernelEncodingParityMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for iter := 0; iter < 120; iter++ {
		rows := []int{0, 1, 2, 13, 100, 1000}[rng.Intn(6)]
		nanFrac := []float64{0, 0.05, 0.5}[rng.Intn(3)]
		tbl := randParityTable(rng, rows, nanFrac)
		enc := encodeParityTable(t, tbl)
		q := randQuery(rng)
		base := ExecOptions{
			Parallelism: 2 + rng.Intn(6),
			MorselSize:  []int{1, 3, 16, 64}[rng.Intn(4)],
			ZoneMap:     iter%2 == 0,
			AggKernels:  true,
		}
		oracle, oracleErr := Execute(tbl, q)
		for _, arm := range []struct {
			name    string
			seq     bool
			enc     bool
			kernels bool
		}{
			{"plain+agg", false, false, false},
			{"plain+agg+kernels", false, false, true},
			{"plain+agg+seq", true, false, false},
			{"encoded+agg", false, true, false},
			{"encoded+agg+kernels", false, true, true},
		} {
			opt := base
			opt.Kernels = arm.kernels
			if arm.seq {
				opt.Parallelism = 1
			}
			in := tbl
			if arm.enc {
				in = enc
			}
			got, err := ExecuteOpts(in, q, opt)
			label := fmt.Sprintf("iter=%d arm=%s rows=%d nan=%.2f zone=%v par=%d morsel=%d q=%s",
				iter, arm.name, rows, nanFrac, base.ZoneMap, opt.Parallelism, base.MorselSize, q)
			if (oracleErr == nil) != (err == nil) {
				t.Fatalf("%s: error mismatch oracle=%v got=%v", label, oracleErr, err)
			}
			if oracleErr != nil {
				continue
			}
			requireSameTable(t, label, oracle, got)
		}
	}
}
