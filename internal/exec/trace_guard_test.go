package exec

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"dex/internal/expr"
	"dex/internal/storage"
	"dex/internal/workload"
)

// TestTracingOffOverheadBounded guards the tracing layer's promise: with
// tracing off (no span in the context — every production query that did
// not ask for a trace), the E26 parallel scan path must run within 2% of
// the same path with the trace hooks compiled out entirely (disableTrace
// short-circuits the one FromContext lookup and the nil-span calls).
// Best-of-reps timing with a small absolute slack, like the other guards.
func TestTracingOffOverheadBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-row timing guard skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing guard skipped under -race: instrumentation distorts per-call costs")
	}
	const rows = 1_000_000
	rng := rand.New(rand.NewSource(26))
	sales, err := workload.Sales(rng, rows)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{
		Select: []SelectItem{{Col: "product"}, {Col: "amount"}},
		Where:  expr.Cmp("amount", expr.GT, storage.Float(120)),
	}
	opt := ExecOptions{Parallelism: 4}
	ctx := context.Background()

	bestOf := func(reps int) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < reps; i++ {
			start := time.Now()
			if _, err := ExecuteCtx(ctx, sales, q, opt); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	defer func() { disableTrace = false }()
	// Warm both configurations so first-touch allocation biases neither.
	disableTrace = true
	bestOf(1)
	disableTrace = false
	bestOf(1)

	disableTrace = true
	base := bestOf(7)
	disableTrace = false
	hooked := bestOf(7)

	const slack = 2 * time.Millisecond
	limit := base + base/50 + slack // 1.02x plus absolute jitter allowance
	t.Logf("rows=%d GOMAXPROCS=%d no-hooks=%v tracing-off=%v limit=%v",
		rows, runtime.GOMAXPROCS(0), base, hooked, limit)
	if hooked > limit {
		t.Errorf("tracing-off scan %v exceeds 1.02x the hook-free baseline %v (limit %v)", hooked, base, limit)
	}
}
