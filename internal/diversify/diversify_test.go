package diversify

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// mkClusters builds items in c tight clusters; relevance is highest in
// cluster 0, so a relevance-only top-k collapses onto one cluster.
func mkClusters(n, c int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		cl := i % c
		items[i] = Item{
			ID:  i,
			Rel: 1 - float64(cl)*0.1 + rng.Float64()*0.05,
			Features: []float64{
				float64(cl)*10 + rng.NormFloat64()*0.3,
				float64(cl)*10 + rng.NormFloat64()*0.3,
			},
		}
	}
	return items
}

func TestTopKPicksHighestRel(t *testing.T) {
	items := mkClusters(100, 5, 1)
	r, err := TopK(items, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Picked) != 10 {
		t.Fatalf("picked = %d", len(r.Picked))
	}
	// All picks should come from cluster 0 (highest relevance).
	for _, p := range r.Picked {
		if items[p].ID%5 != 0 {
			t.Errorf("top-k picked cluster %d item", items[p].ID%5)
		}
	}
	if r.MinDist > 2 {
		t.Errorf("top-k min dist = %v, expected tight cluster", r.MinDist)
	}
}

func TestMMRSpansClusters(t *testing.T) {
	items := mkClusters(100, 5, 2)
	r, err := MMR(items, 10, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	clusters := map[int]bool{}
	for _, p := range r.Picked {
		clusters[items[p].ID%5] = true
	}
	if len(clusters) != 5 {
		t.Errorf("MMR covered %d/5 clusters", len(clusters))
	}
	top, _ := TopK(items, 10)
	if r.MinDist <= top.MinDist {
		t.Errorf("MMR min dist %v <= topk %v", r.MinDist, top.MinDist)
	}
}

func TestMMRLambdaOneEqualsTopK(t *testing.T) {
	items := mkClusters(60, 3, 3)
	mmr, err := MMR(items, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	top, _ := TopK(items, 8)
	gotRel := mmr.AvgRel
	if math.Abs(gotRel-top.AvgRel) > 1e-9 {
		t.Errorf("lambda=1 MMR avgRel %v != topk %v", gotRel, top.AvgRel)
	}
}

func TestSwapImprovesObjective(t *testing.T) {
	items := mkClusters(80, 4, 4)
	lambda := 0.4
	top, _ := TopK(items, 8)
	sw, err := Swap(items, 8, lambda, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Objective(lambda) < top.Objective(lambda) {
		t.Errorf("swap objective %v < topk %v", sw.Objective(lambda), top.Objective(lambda))
	}
}

func TestDiversityMethodsBeatTopKOnClusters(t *testing.T) {
	items := mkClusters(100, 5, 5)
	lambda := 0.3
	top, _ := TopK(items, 10)
	for name, run := range map[string]func() (Result, error){
		"mmr":  func() (Result, error) { return MMR(items, 10, lambda) },
		"swap": func() (Result, error) { return Swap(items, 10, lambda, 0) },
	} {
		r, err := run()
		if err != nil {
			t.Fatal(err)
		}
		if r.Objective(lambda) <= top.Objective(lambda) {
			t.Errorf("%s objective %.4f <= topk %.4f", name, r.Objective(lambda), top.Objective(lambda))
		}
		// Relevance loss should be modest.
		if r.AvgRel < top.AvgRel*0.5 {
			t.Errorf("%s sacrificed too much relevance: %v vs %v", name, r.AvgRel, top.AvgRel)
		}
	}
}

func TestRandomBaseline(t *testing.T) {
	items := mkClusters(50, 5, 6)
	rng := rand.New(rand.NewSource(7))
	r, err := Random(items, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Picked) != 10 {
		t.Errorf("picked = %d", len(r.Picked))
	}
	seen := map[int]bool{}
	for _, p := range r.Picked {
		if seen[p] {
			t.Error("duplicate pick")
		}
		seen[p] = true
	}
}

func TestValidation(t *testing.T) {
	items := mkClusters(10, 2, 8)
	if _, err := TopK(items, 0); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0 err = %v", err)
	}
	if _, err := TopK(items, 11); !errors.Is(err, ErrBadK) {
		t.Errorf("k>n err = %v", err)
	}
	if _, err := MMR(items, 3, 1.5); !errors.Is(err, ErrBadLambda) {
		t.Errorf("lambda err = %v", err)
	}
	bad := append(items, Item{Features: []float64{1}})
	if _, err := MMR(bad, 3, 0.5); !errors.Is(err, ErrRagged) {
		t.Errorf("ragged err = %v", err)
	}
}

func TestFromScores(t *testing.T) {
	items, err := FromScores([]float64{1, 2}, [][]float64{{0}, {1}})
	if err != nil || len(items) != 2 || items[1].Rel != 2 {
		t.Errorf("items = %v, err = %v", items, err)
	}
	if _, err := FromScores([]float64{1}, [][]float64{{0}, {1}}); !errors.Is(err, ErrRagged) {
		t.Errorf("len mismatch err = %v", err)
	}
}

func TestPickedAlwaysDistinctProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(40)
		items := mkClusters(n, 1+rng.Intn(6), seed)
		k := 1 + rng.Intn(n)
		r, err := MMR(items, k, rng.Float64())
		if err != nil || len(r.Picked) != k {
			return false
		}
		seen := map[int]bool{}
		for _, p := range r.Picked {
			if seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestObjectiveSingleItem(t *testing.T) {
	items := mkClusters(5, 1, 9)
	r, err := MMR(items, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if r.MinDist != 0 || r.SumDist != 0 {
		t.Errorf("single item dists = %v/%v", r.MinDist, r.SumDist)
	}
	if r.Objective(0.5) != 0.5*r.AvgRel {
		t.Error("single-item objective")
	}
}
