// Package diversify implements the query-result diversification techniques
// the tutorial's middleware section covers (DivIDE [41], result
// diversification [65]): selecting k results that trade relevance against
// pairwise diversity so an exploring user sees the breadth of the answer
// space instead of k near-duplicates.
package diversify

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dex/internal/metrics"
)

// Package-level sentinel errors.
var (
	ErrBadK      = errors.New("diversify: k out of range")
	ErrBadLambda = errors.New("diversify: lambda must be in [0,1]")
	ErrRagged    = errors.New("diversify: feature vectors must share a length")
)

// Item is one candidate result: a relevance score plus a feature vector in
// the diversification space.
type Item struct {
	ID       int
	Rel      float64
	Features []float64
}

// Result is a selected subset with its quality metrics.
type Result struct {
	Picked []int // indexes into the candidate slice
	// AvgRel is the mean relevance of the picked items.
	AvgRel float64
	// MinDist is the smallest pairwise distance among picked items.
	MinDist float64
	// SumDist is the total pairwise distance (the MaxSum diversity
	// objective).
	SumDist float64
}

// Objective returns the MaxSum bi-criteria objective lambda*avgRel +
// (1-lambda)*avgPairwiseDist — the objective Swap optimizes.
func (r Result) Objective(lambda float64) float64 {
	k := float64(len(r.Picked))
	if k < 2 {
		return lambda * r.AvgRel
	}
	pairs := k * (k - 1) / 2
	return lambda*r.AvgRel + (1-lambda)*r.SumDist/pairs
}

// ObjectiveMaxMin returns the MaxMin bi-criteria objective lambda*avgRel +
// (1-lambda)*minPairwiseDist — the objective greedy MMR approximates.
func (r Result) ObjectiveMaxMin(lambda float64) float64 {
	if len(r.Picked) < 2 {
		return lambda * r.AvgRel
	}
	return lambda*r.AvgRel + (1-lambda)*r.MinDist
}

func validate(items []Item, k int, lambda float64) error {
	if k <= 0 || k > len(items) {
		return fmt.Errorf("k=%d n=%d: %w", k, len(items), ErrBadK)
	}
	if lambda < 0 || lambda > 1 {
		return fmt.Errorf("lambda=%v: %w", lambda, ErrBadLambda)
	}
	if len(items) > 0 {
		d := len(items[0].Features)
		for _, it := range items {
			if len(it.Features) != d {
				return ErrRagged
			}
		}
	}
	return nil
}

func dist(a, b Item) float64 { return metrics.L2(a.Features, b.Features) }

func finish(items []Item, picked []int) Result {
	r := Result{Picked: picked, MinDist: math.Inf(1)}
	for _, p := range picked {
		r.AvgRel += items[p].Rel
	}
	if len(picked) > 0 {
		r.AvgRel /= float64(len(picked))
	}
	for i := 0; i < len(picked); i++ {
		for j := i + 1; j < len(picked); j++ {
			d := dist(items[picked[i]], items[picked[j]])
			r.SumDist += d
			if d < r.MinDist {
				r.MinDist = d
			}
		}
	}
	if math.IsInf(r.MinDist, 1) {
		r.MinDist = 0
	}
	return r
}

// TopK is the relevance-only baseline: the k highest-relevance items.
func TopK(items []Item, k int) (Result, error) {
	if err := validate(items, k, 0.5); err != nil {
		return Result{}, err
	}
	idx := make([]int, len(items))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return items[idx[a]].Rel > items[idx[b]].Rel })
	return finish(items, idx[:k]), nil
}

// Random is the diversity-only-by-accident baseline.
func Random(items []Item, k int, rng *rand.Rand) (Result, error) {
	if err := validate(items, k, 0.5); err != nil {
		return Result{}, err
	}
	idx := rng.Perm(len(items))[:k]
	return finish(items, idx), nil
}

// MMR greedily selects items by maximal marginal relevance: each step picks
// the item maximizing lambda*rel + (1-lambda)*minDistToSelected.
// Runtime is O(k*n).
func MMR(items []Item, k int, lambda float64) (Result, error) {
	if err := validate(items, k, lambda); err != nil {
		return Result{}, err
	}
	n := len(items)
	picked := make([]int, 0, k)
	inSet := make([]bool, n)
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	// Seed with the most relevant item.
	best := 0
	for i := 1; i < n; i++ {
		if items[i].Rel > items[best].Rel {
			best = i
		}
	}
	for len(picked) < k {
		picked = append(picked, best)
		inSet[best] = true
		for i := 0; i < n; i++ {
			if inSet[i] {
				continue
			}
			if d := dist(items[i], items[best]); d < minDist[i] {
				minDist[i] = d
			}
		}
		best = -1
		bestScore := math.Inf(-1)
		for i := 0; i < n; i++ {
			if inSet[i] {
				continue
			}
			score := lambda*items[i].Rel + (1-lambda)*minDist[i]
			if score > bestScore {
				bestScore, best = score, i
			}
		}
		if best < 0 {
			break
		}
	}
	return finish(items, picked), nil
}

// Swap starts from the top-k by relevance and performs best-improvement
// local search on the MaxSum objective: each iteration evaluates every
// (member, outside-candidate) exchange incrementally and applies the best
// one, until no exchange improves (the classic Swap heuristic for MaxSum
// diversification). Each iteration costs O(k·n).
func Swap(items []Item, k int, lambda float64, maxIters int) (Result, error) {
	if err := validate(items, k, lambda); err != nil {
		return Result{}, err
	}
	if maxIters <= 0 {
		maxIters = 4 * k
	}
	top, err := TopK(items, k)
	if err != nil {
		return Result{}, err
	}
	cur := append([]int(nil), top.Picked...)
	inSet := make(map[int]bool, k)
	for _, p := range cur {
		inSet[p] = true
	}
	pairs := float64(k*(k-1)) / 2
	if pairs == 0 {
		pairs = 1
	}
	// distToSet[i] = sum of distances from cur member slot i to the others.
	distToSet := make([]float64, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i != j {
				distToSet[i] += dist(items[cur[i]], items[cur[j]])
			}
		}
	}
	relGain := lambda / float64(k)
	divGain := (1 - lambda) / pairs
	for iter := 0; iter < maxIters; iter++ {
		bestSlot, bestCand := -1, -1
		bestDelta := 1e-12
		for cand := range items {
			if inSet[cand] {
				continue
			}
			// Distance from cand to every current member, computed once.
			var candToSet float64
			candDists := make([]float64, k)
			for i := 0; i < k; i++ {
				d := dist(items[cand], items[cur[i]])
				candDists[i] = d
				candToSet += d
			}
			for slot := 0; slot < k; slot++ {
				// Replacing cur[slot] by cand changes SumDist by
				// (candToSet - candDists[slot]) - distToSet[slot].
				dDiv := candToSet - candDists[slot] - distToSet[slot]
				dRel := items[cand].Rel - items[cur[slot]].Rel
				delta := relGain*dRel + divGain*dDiv
				if delta > bestDelta {
					bestDelta, bestSlot, bestCand = delta, slot, cand
				}
			}
		}
		if bestSlot < 0 {
			break
		}
		old := cur[bestSlot]
		delete(inSet, old)
		inSet[bestCand] = true
		cur[bestSlot] = bestCand
		// Refresh distToSet.
		for i := 0; i < k; i++ {
			distToSet[i] = 0
			for j := 0; j < k; j++ {
				if i != j {
					distToSet[i] += dist(items[cur[i]], items[cur[j]])
				}
			}
		}
	}
	return finish(items, cur), nil
}

// FromScores is a convenience constructing items from parallel slices.
func FromScores(rel []float64, features [][]float64) ([]Item, error) {
	if len(rel) != len(features) {
		return nil, ErrRagged
	}
	out := make([]Item, len(rel))
	for i := range rel {
		out[i] = Item{ID: i, Rel: rel[i], Features: features[i]}
	}
	return out, nil
}
