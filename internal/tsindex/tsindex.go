// Package tsindex implements adaptive data-series indexing in the spirit of
// the interactive data-series exploration work the tutorial covers [68]
// (and the ADS family it descends from): instead of paying the full
// summarization/index build before the first query, the index is built
// incrementally as a side effect of query answering — each query indexes a
// bounded batch of still-raw series, so early queries are answerable
// immediately and later queries converge to full-index speed.
//
// Similarity search is exact: PAA (piecewise aggregate approximation)
// summaries give a lower bound on Euclidean distance, so pruned candidates
// provably cannot enter the k-NN result, and raw (not yet indexed) series
// are scanned exactly.
package tsindex

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Package-level sentinel errors.
var (
	ErrBadSeries  = errors.New("tsindex: series must be non-empty and equal length")
	ErrBadK       = errors.New("tsindex: k out of range")
	ErrBadQuery   = errors.New("tsindex: query length mismatch")
	ErrBadSegment = errors.New("tsindex: segment count out of range")
)

// Stats counts the physical work the index has performed.
type Stats struct {
	RawScanned    int64 // full-resolution points compared
	LowerBounds   int64 // PAA lower-bound computations
	ExactRefines  int64 // exact distance computations on indexed series
	SeriesIndexed int   // series summarized so far
}

// DB is an adaptively indexed collection of equal-length series.
type DB struct {
	series [][]float64
	n      int
	length int
	w      int // PAA segments
	paa    [][]float64
	// indexOrder[i] gives the i-th series to summarize; summarized is how
	// many of them have been.
	summarized int
	budget     int
	stats      Stats
}

// New creates an adaptive index over the series with w PAA segments,
// summarizing at most budgetPerQuery additional series per query
// (0 disables adaptive building — the pure sequential-scan baseline).
func New(series [][]float64, w, budgetPerQuery int) (*DB, error) {
	if len(series) == 0 || len(series[0]) == 0 {
		return nil, ErrBadSeries
	}
	length := len(series[0])
	for _, s := range series {
		if len(s) != length {
			return nil, ErrBadSeries
		}
	}
	if w <= 0 || w > length {
		return nil, fmt.Errorf("w=%d len=%d: %w", w, length, ErrBadSegment)
	}
	return &DB{
		series: series,
		n:      len(series),
		length: length,
		w:      w,
		paa:    make([][]float64, len(series)),
		budget: budgetPerQuery,
	}, nil
}

// NewFullIndex builds the entire index upfront (the traditional baseline,
// paying the whole summarization cost before the first query).
func NewFullIndex(series [][]float64, w int) (*DB, error) {
	db, err := New(series, w, 0)
	if err != nil {
		return nil, err
	}
	for db.summarized < db.n {
		db.indexOne()
	}
	return db, nil
}

// Stats returns the work counters.
func (db *DB) Stats() Stats {
	s := db.stats
	s.SeriesIndexed = db.summarized
	return s
}

// IndexedFraction returns the fraction of series summarized so far.
func (db *DB) IndexedFraction() float64 {
	return float64(db.summarized) / float64(db.n)
}

// indexOne summarizes the next raw series.
func (db *DB) indexOne() {
	i := db.summarized
	db.paa[i] = PAA(db.series[i], db.w)
	db.summarized++
}

// PAA computes the piecewise aggregate approximation: w segment means.
func PAA(s []float64, w int) []float64 {
	n := len(s)
	out := make([]float64, w)
	for seg := 0; seg < w; seg++ {
		lo := seg * n / w
		hi := (seg + 1) * n / w
		if hi <= lo {
			hi = lo + 1
		}
		var m float64
		for i := lo; i < hi; i++ {
			m += s[i]
		}
		out[seg] = m / float64(hi-lo)
	}
	return out
}

// LowerBound returns the PAA lower bound on the Euclidean distance between
// a query (already summarized) and a stored summary: for equal-size
// segments, sqrt(sum_seg segLen * (qa-sa)^2) <= Euclid(q, s).
func LowerBound(qpaa, spaa []float64, length int) float64 {
	w := len(qpaa)
	var acc float64
	for seg := 0; seg < w; seg++ {
		lo := seg * length / w
		hi := (seg + 1) * length / w
		if hi <= lo {
			hi = lo + 1
		}
		d := qpaa[seg] - spaa[seg]
		acc += float64(hi-lo) * d * d
	}
	return math.Sqrt(acc)
}

// Euclid is the exact Euclidean distance.
func Euclid(a, b []float64) float64 {
	var acc float64
	for i := range a {
		d := a[i] - b[i]
		acc += d * d
	}
	return math.Sqrt(acc)
}

// euclidEarlyAbandon computes the Euclidean distance but gives up (returning
// +Inf) as soon as the partial sum proves the distance exceeds bound — the
// standard early-abandonment trick of similarity search.
func euclidEarlyAbandon(a, b []float64, bound float64) float64 {
	limit := bound * bound
	var acc float64
	for i := range a {
		d := a[i] - b[i]
		acc += d * d
		if acc > limit {
			return math.Inf(1)
		}
	}
	return math.Sqrt(acc)
}

// lbCand is a lower-bound-ordered candidate for refinement.
type lbCand struct {
	id int
	lb float64
}

type lbHeap []lbCand

func (h lbHeap) Len() int            { return len(h) }
func (h lbHeap) Less(i, j int) bool  { return h[i].lb < h[j].lb }
func (h lbHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *lbHeap) Push(x interface{}) { *h = append(*h, x.(lbCand)) }
func (h *lbHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// Match is one k-NN answer.
type Match struct {
	ID   int
	Dist float64
}

// resultHeap is a max-heap over Dist (so the worst of the current best k is
// on top).
type resultHeap []Match

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return h[i].Dist > h[j].Dist }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Match)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// KNN returns the k exact nearest neighbours of q. As a side effect it
// summarizes up to the per-query budget of still-raw series (adaptive
// index building).
func (db *DB) KNN(q []float64, k int) ([]Match, error) {
	if len(q) != db.length {
		return nil, fmt.Errorf("query len %d, series len %d: %w", len(q), db.length, ErrBadQuery)
	}
	if k <= 0 || k > db.n {
		return nil, fmt.Errorf("k=%d n=%d: %w", k, db.n, ErrBadK)
	}
	// Adaptive build step.
	for b := 0; b < db.budget && db.summarized < db.n; b++ {
		db.indexOne()
	}
	qpaa := PAA(q, db.w)
	h := &resultHeap{}
	// Raw portion: exact scan (no summaries exist yet), with early
	// abandonment once k candidates are in hand.
	for i := db.summarized; i < db.n; i++ {
		db.stats.RawScanned += int64(db.length)
		var d float64
		if h.Len() == k {
			d = euclidEarlyAbandon(q, db.series[i], (*h)[0].Dist)
		} else {
			d = Euclid(q, db.series[i])
		}
		if !math.IsInf(d, 1) {
			pushK(h, Match{ID: i, Dist: d}, k)
		}
	}
	// Indexed portion: traverse candidates in increasing lower-bound order
	// via a min-heap (cheaper than a full sort: only the refined prefix is
	// ever popped) and stop once the bound exceeds the kth distance.
	cands := make(lbHeap, db.summarized)
	for i := 0; i < db.summarized; i++ {
		db.stats.LowerBounds++
		cands[i] = lbCand{id: i, lb: LowerBound(qpaa, db.paa[i], db.length)}
	}
	heap.Init(&cands)
	for cands.Len() > 0 {
		c := heap.Pop(&cands).(lbCand)
		if h.Len() == k && c.lb > (*h)[0].Dist {
			break // every remaining lower bound exceeds the kth distance
		}
		db.stats.ExactRefines++
		db.stats.RawScanned += int64(db.length)
		var d float64
		if h.Len() == k {
			d = euclidEarlyAbandon(q, db.series[c.id], (*h)[0].Dist)
		} else {
			d = Euclid(q, db.series[c.id])
		}
		if !math.IsInf(d, 1) {
			pushK(h, Match{ID: c.id, Dist: d}, k)
		}
	}
	out := make([]Match, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Match)
	}
	return out, nil
}

func pushK(h *resultHeap, m Match, k int) {
	if h.Len() < k {
		heap.Push(h, m)
		return
	}
	if m.Dist < (*h)[0].Dist {
		(*h)[0] = m
		heap.Fix(h, 0)
	}
}

// SeqScanKNN is the index-free baseline: exact scan of every series.
func SeqScanKNN(series [][]float64, q []float64, k int) ([]Match, error) {
	if len(series) == 0 {
		return nil, ErrBadSeries
	}
	if k <= 0 || k > len(series) {
		return nil, ErrBadK
	}
	h := &resultHeap{}
	for i, s := range series {
		if len(s) != len(q) {
			return nil, ErrBadQuery
		}
		pushK(h, Match{ID: i, Dist: Euclid(q, s)}, k)
	}
	out := make([]Match, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Match)
	}
	return out, nil
}
