package tsindex

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mkSeries(n, length int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, length)
		v := rng.NormFloat64() * 5
		for j := range out[i] {
			v += rng.NormFloat64()
			out[i][j] = v
		}
	}
	return out
}

func sameMatches(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		// Distances must agree; IDs may differ under exact ties.
		if math.Abs(a[i].Dist-b[i].Dist) > 1e-9 {
			return false
		}
	}
	return true
}

func TestPAA(t *testing.T) {
	s := []float64{1, 1, 3, 3, 5, 5, 7, 7}
	p := PAA(s, 4)
	want := []float64{1, 3, 5, 7}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("paa = %v", p)
		}
	}
	// Uneven split.
	p = PAA([]float64{1, 2, 3}, 2)
	if len(p) != 2 {
		t.Fatalf("paa = %v", p)
	}
}

func TestLowerBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		length := 32
		a := make([]float64, length)
		b := make([]float64, length)
		for i := range a {
			a[i] = rng.NormFloat64() * 3
			b[i] = rng.NormFloat64() * 3
		}
		for _, w := range []int{1, 4, 8, 32} {
			lb := LowerBound(PAA(a, w), PAA(b, w), length)
			if lb > Euclid(a, b)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKNNExactness(t *testing.T) {
	series := mkSeries(500, 64, 1)
	q := mkSeries(1, 64, 2)[0]
	truth, err := SeqScanKNN(series, q, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, setup := range []struct {
		name string
		mk   func() (*DB, error)
	}{
		{"full", func() (*DB, error) { return NewFullIndex(series, 8) }},
		{"adaptive", func() (*DB, error) { return New(series, 8, 50) }},
		{"lazy-zero-budget", func() (*DB, error) { return New(series, 8, 0) }},
	} {
		db, err := setup.mk()
		if err != nil {
			t.Fatal(err)
		}
		got, err := db.KNN(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !sameMatches(got, truth) {
			t.Errorf("%s: knn mismatch\n got %v\nwant %v", setup.name, got, truth)
		}
	}
}

func TestAdaptiveIndexGrowsWithQueries(t *testing.T) {
	series := mkSeries(1000, 32, 3)
	db, err := New(series, 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if db.IndexedFraction() != 0 {
		t.Error("fresh index should be empty")
	}
	q := mkSeries(1, 32, 4)[0]
	for i := 0; i < 5; i++ {
		if _, err := db.KNN(q, 5); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.IndexedFraction(); got != 0.5 {
		t.Errorf("indexed fraction after 5 queries = %v, want 0.5", got)
	}
	for i := 0; i < 5; i++ {
		if _, err := db.KNN(q, 5); err != nil {
			t.Fatal(err)
		}
	}
	if db.IndexedFraction() != 1 {
		t.Errorf("indexed fraction = %v, want 1", db.IndexedFraction())
	}
}

func TestConvergedAdaptiveScansLessRaw(t *testing.T) {
	series := mkSeries(2000, 64, 5)
	q := mkSeries(1, 64, 6)[0]
	db, _ := New(series, 8, 2000)
	if _, err := db.KNN(q, 5); err != nil { // fully indexes
		t.Fatal(err)
	}
	before := db.Stats().RawScanned
	if _, err := db.KNN(q, 5); err != nil {
		t.Fatal(err)
	}
	secondQuery := db.Stats().RawScanned - before
	fullScanCost := int64(2000 * 64)
	if secondQuery >= fullScanCost/2 {
		t.Errorf("converged query scanned %d raw points, full scan is %d", secondQuery, fullScanCost)
	}
	if db.Stats().ExactRefines == 0 || db.Stats().LowerBounds == 0 {
		t.Errorf("stats = %+v", db.Stats())
	}
}

func TestErrors(t *testing.T) {
	if _, err := New(nil, 4, 0); !errors.Is(err, ErrBadSeries) {
		t.Errorf("nil err = %v", err)
	}
	if _, err := New([][]float64{{1, 2}, {1}}, 1, 0); !errors.Is(err, ErrBadSeries) {
		t.Errorf("ragged err = %v", err)
	}
	if _, err := New([][]float64{{1, 2}}, 5, 0); !errors.Is(err, ErrBadSegment) {
		t.Errorf("segment err = %v", err)
	}
	db, _ := New(mkSeries(10, 16, 7), 4, 0)
	if _, err := db.KNN(make([]float64, 5), 1); !errors.Is(err, ErrBadQuery) {
		t.Errorf("query len err = %v", err)
	}
	if _, err := db.KNN(make([]float64, 16), 0); !errors.Is(err, ErrBadK) {
		t.Errorf("k err = %v", err)
	}
	if _, err := db.KNN(make([]float64, 16), 11); !errors.Is(err, ErrBadK) {
		t.Errorf("k>n err = %v", err)
	}
	if _, err := SeqScanKNN(nil, nil, 1); !errors.Is(err, ErrBadSeries) {
		t.Errorf("seqscan err = %v", err)
	}
}

func TestKNNSortedAscending(t *testing.T) {
	series := mkSeries(300, 32, 8)
	db, _ := NewFullIndex(series, 8)
	got, err := db.KNN(mkSeries(1, 32, 9)[0], 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Dist > got[i].Dist {
			t.Fatal("results not sorted")
		}
	}
}

func TestSelfQueryFindsSelf(t *testing.T) {
	series := mkSeries(100, 24, 10)
	db, _ := NewFullIndex(series, 6)
	got, err := db.KNN(series[42], 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID != 42 || got[0].Dist != 0 {
		t.Errorf("self query = %+v", got[0])
	}
}
