// Package rawload implements adaptive ("in-situ") data loading in the style
// of NoDB [8,28] and invisible loading [2]: queries run directly against raw
// CSV files, and the system incrementally builds a positional map (byte
// offsets of accessed fields) plus a cache of parsed columns as a side
// effect of query processing. Data that queries never touch is never
// tokenized, parsed, or loaded.
//
// Two baselines complete the experiment of E6: FullLoad (parse everything
// upfront, then query in memory — the traditional DBMS) and ExternalScan
// (re-parse the file for every query — the "external tables" approach).
package rawload

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sync"

	"dex/internal/exec"
	"dex/internal/expr"
	"dex/internal/fault"
	"dex/internal/storage"
)

// Failpoints on the two raw-file seams: the lazy file read and the per-row
// tokenizer loop. A rate policy on rawload/tokenize fails a query midway
// through materializing a column — the in-situ analogue of a disk read
// error halfway through a scan.
var (
	fpRead     = fault.Register("rawload/read")
	fpTokenize = fault.Register("rawload/tokenize")
)

// Package-level sentinel errors.
var (
	ErrNoSuchColumn = errors.New("rawload: no such column")
	ErrBadRecord    = errors.New("rawload: malformed record")
)

// Stats counts the physical work a raw table has performed; the adaptive
// loading experiments report these alongside latencies.
type Stats struct {
	Queries        int   // queries executed
	BytesTokenized int64 // bytes scanned looking for delimiters
	FieldsParsed   int64 // individual fields converted from text
	ColumnsCached  int   // columns currently materialized in the cache
	PositionalCols int   // columns with positional-map entries
}

// RawTable queries a CSV file in place. The schema is declared by the user
// (NoDB's assumption: schema known, data unloaded). The file is expected to
// have a header line, which is skipped and checked against the schema names.
type RawTable struct {
	mu     sync.Mutex
	name   string
	path   string
	schema storage.Schema

	data     []byte    // lazily loaded file contents (stands in for mmap)
	lineOff  []int32   // byte offset of each data line
	fieldOff [][]int32 // positional map: per column, per row, offset in line; nil until built
	cache    []storage.Column

	stats Stats
}

// Open prepares a raw table over the CSV file at path. No bytes are read
// until the first query.
func Open(name, path string, schema storage.Schema) (*RawTable, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if _, err := os.Stat(path); err != nil {
		return nil, fmt.Errorf("rawload: %w", err)
	}
	return &RawTable{
		name:     name,
		path:     path,
		schema:   schema,
		fieldOff: make([][]int32, len(schema)),
		cache:    make([]storage.Column, len(schema)),
	}, nil
}

// Name returns the table name.
func (r *RawTable) Name() string { return r.name }

// Schema returns the declared schema.
func (r *RawTable) Schema() storage.Schema { return r.schema }

// Stats returns a snapshot of the work counters.
func (r *RawTable) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	for _, c := range r.cache {
		if c != nil {
			s.ColumnsCached++
		}
	}
	for _, f := range r.fieldOff {
		if f != nil {
			s.PositionalCols++
		}
	}
	return s
}

// Query executes a single-table query against the raw file, parsing and
// caching only the columns the query touches.
func (r *RawTable) Query(q exec.Query) (*storage.Table, error) {
	cols := queryColumns(q)
	t, err := r.Materialize(cols...)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.stats.Queries++
	r.mu.Unlock()
	return exec.Execute(t, q)
}

// queryColumns returns the distinct column names a query touches.
func queryColumns(q exec.Query) []string {
	seen := map[string]bool{}
	var out []string
	add := func(c string) {
		if c == "" || c == "*" || seen[c] {
			return
		}
		seen[c] = true
		out = append(out, c)
	}
	for _, s := range q.Select {
		add(s.Col)
	}
	if q.Where != nil {
		for _, c := range q.Where.Columns() {
			add(c)
		}
	}
	for _, g := range q.GroupBy {
		add(g)
	}
	for _, o := range q.OrderBy {
		add(o.Col)
	}
	return out
}

// Materialize returns an in-memory table holding the named columns,
// parsing from the raw file whatever is not cached yet. Multiple missing
// columns are parsed concurrently (the parallel in-situ processing idea of
// [15]): each worker tokenizes independently from the nearest positional
// map built by *previous* queries, so workers never depend on each other.
func (r *RawTable) Materialize(names ...string) (*storage.Table, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.ensureLines(); err != nil {
		return nil, err
	}
	var missing []int
	idxs := make([]int, 0, len(names))
	for _, n := range names {
		i := r.schema.Index(n)
		if i < 0 {
			return nil, fmt.Errorf("%q: %w", n, ErrNoSuchColumn)
		}
		idxs = append(idxs, i)
		if r.cache[i] == nil {
			missing = append(missing, i)
		}
	}
	switch len(missing) {
	case 0:
	case 1:
		c, err := r.parseColumn(missing[0])
		if err != nil {
			return nil, err
		}
		r.cache[missing[0]] = c
	default:
		type parsed struct {
			idx  int
			col  storage.Column
			offs []int32
			st   Stats
			err  error
		}
		results := make([]parsed, len(missing))
		var wg sync.WaitGroup
		for w, idx := range missing {
			wg.Add(1)
			go func(w, idx int) {
				defer wg.Done()
				col, offs, st, err := r.parseColumnInto(idx)
				results[w] = parsed{idx: idx, col: col, offs: offs, st: st, err: err}
			}(w, idx)
		}
		wg.Wait()
		for _, res := range results {
			if res.err != nil {
				return nil, res.err
			}
			r.cache[res.idx] = res.col
			r.fieldOff[res.idx] = res.offs
			r.stats.BytesTokenized += res.st.BytesTokenized
			r.stats.FieldsParsed += res.st.FieldsParsed
		}
	}
	schema := make(storage.Schema, 0, len(names))
	cols := make([]storage.Column, 0, len(names))
	for _, i := range idxs {
		schema = append(schema, r.schema[i])
		cols = append(cols, r.cache[i])
	}
	return storage.FromColumns(r.name, schema, cols)
}

// ensureLines lazily loads the file and indexes data-line offsets.
func (r *RawTable) ensureLines() error {
	if r.data != nil {
		return nil
	}
	if err := fpRead.Hit(); err != nil {
		return err
	}
	data, err := os.ReadFile(r.path)
	if err != nil {
		return fmt.Errorf("rawload: %w", err)
	}
	r.data = data
	r.stats.BytesTokenized += int64(len(data))
	// Skip header.
	start := 0
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		start = i + 1
	} else {
		start = len(data)
	}
	for p := start; p < len(data); {
		nl := bytes.IndexByte(data[p:], '\n')
		next := len(data)
		if nl >= 0 {
			next = p + nl + 1
		}
		if lineEnd(data, p) > p { // skip empty lines (incl. trailing newline)
			r.lineOff = append(r.lineOff, int32(p))
		}
		p = next
	}
	return nil
}

func lineEnd(data []byte, p int) int {
	nl := bytes.IndexByte(data[p:], '\n')
	if nl < 0 {
		return len(data)
	}
	end := p + nl
	if end > p && data[end-1] == '\r' {
		end--
	}
	return end
}

// NumRows returns the number of data rows (tokenizing line offsets if
// needed).
func (r *RawTable) NumRows() (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.ensureLines(); err != nil {
		return 0, err
	}
	return len(r.lineOff), nil
}

// parseColumn extracts column idx from every line and installs its
// positional map. Caller holds the mutex.
func (r *RawTable) parseColumn(idx int) (storage.Column, error) {
	col, offs, st, err := r.parseColumnInto(idx)
	if err != nil {
		return nil, err
	}
	r.fieldOff[idx] = offs
	r.stats.BytesTokenized += st.BytesTokenized
	r.stats.FieldsParsed += st.FieldsParsed
	return col, nil
}

// parseColumnInto extracts column idx, exploiting the positional map: it
// starts tokenizing at the nearest column with known offsets instead of the
// start of the line. It only READS shared state (r.data, r.lineOff, and
// already-built fieldOff entries), returning the new offsets and work
// counters for the caller to install — so several invocations can run
// concurrently under the mutex held by Materialize.
func (r *RawTable) parseColumnInto(idx int) (storage.Column, []int32, Stats, error) {
	var st Stats
	n := len(r.lineOff)
	col := storage.NewColumn(r.schema[idx].Type)
	offs := make([]int32, n)

	// Nearest previously mapped column at or before idx.
	base := -1
	for j := idx - 1; j >= 0; j-- {
		if r.fieldOff[j] != nil {
			base = j
			break
		}
	}
	for row := 0; row < n; row++ {
		if err := fpTokenize.Hit(); err != nil {
			return nil, nil, st, err
		}
		lineStart := int(r.lineOff[row])
		end := lineEnd(r.data, lineStart)
		// Position of field `base+1`'s start.
		p := lineStart
		fieldsToSkip := idx
		if base >= 0 {
			p = lineStart + int(r.fieldOff[base][row])
			fieldsToSkip = idx - base
		}
		// Skip fieldsToSkip commas from p.
		for s := 0; s < fieldsToSkip; s++ {
			c := bytes.IndexByte(r.data[p:end], ',')
			if c < 0 {
				return nil, nil, st, fmt.Errorf("row %d: field %d missing: %w", row, idx, ErrBadRecord)
			}
			st.BytesTokenized += int64(c + 1)
			p += c + 1
		}
		offs[row] = int32(p - lineStart)
		fend := end
		if c := bytes.IndexByte(r.data[p:end], ','); c >= 0 {
			fend = p + c
		}
		st.BytesTokenized += int64(fend - p)
		v, err := storage.ParseValue(string(r.data[p:fend]), r.schema[idx].Type)
		if err != nil {
			return nil, nil, st, fmt.Errorf("row %d col %d: %w", row, idx, err)
		}
		st.FieldsParsed++
		if err := col.Append(v); err != nil {
			return nil, nil, st, err
		}
	}
	return col, offs, st, nil
}

// DropCache evicts all parsed columns (the positional map is kept), so
// memory-pressure scenarios can be simulated.
func (r *RawTable) DropCache() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.cache {
		r.cache[i] = nil
	}
}

// FullLoad is the traditional baseline: parse the entire file into a table
// upfront, then answer queries from memory.
type FullLoad struct {
	table *storage.Table
}

// NewFullLoad loads the whole CSV file immediately.
func NewFullLoad(name, path string) (*FullLoad, error) {
	t, err := storage.ReadCSVFile(name, path)
	if err != nil {
		return nil, err
	}
	return &FullLoad{table: t}, nil
}

// Query executes against the pre-loaded table.
func (f *FullLoad) Query(q exec.Query) (*storage.Table, error) {
	return exec.Execute(f.table, q)
}

// Table exposes the loaded table.
func (f *FullLoad) Table() *storage.Table { return f.table }

// ExternalScan is the no-state baseline: every query re-parses the file.
type ExternalScan struct {
	name string
	path string
}

// NewExternalScan wraps the file without reading it.
func NewExternalScan(name, path string) *ExternalScan {
	return &ExternalScan{name: name, path: path}
}

// Query re-parses the whole file, then executes.
func (e *ExternalScan) Query(q exec.Query) (*storage.Table, error) {
	t, err := storage.ReadCSVFile(e.name, e.path)
	if err != nil {
		return nil, err
	}
	return exec.Execute(t, q)
}

// Querier is the common shape of RawTable, FullLoad and ExternalScan.
type Querier interface {
	Query(q exec.Query) (*storage.Table, error)
}

var (
	_ Querier = (*RawTable)(nil)
	_ Querier = (*FullLoad)(nil)
	_ Querier = (*ExternalScan)(nil)
)

// SelectivityProbe is a convenience used by experiments: a COUNT(*) query
// with a single range predicate on column col.
func SelectivityProbe(col string, lo, hi float64) exec.Query {
	return exec.Query{
		Select: []exec.SelectItem{{Col: "*", Agg: exec.AggCount}},
		Where: expr.And(
			expr.Cmp(col, expr.GE, storage.Float(lo)),
			expr.Cmp(col, expr.LT, storage.Float(hi)),
		),
	}
}
