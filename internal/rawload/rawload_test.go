package rawload

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"dex/internal/exec"
	"dex/internal/expr"
	"dex/internal/storage"
)

// writeTestCSV writes an n-row CSV with columns a(int), b(float), c(string),
// d(int) and returns its path.
func writeTestCSV(t *testing.T, n int, seed int64) string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	path := filepath.Join(t.TempDir(), "data.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(f, "a,b,c,d")
	for i := 0; i < n; i++ {
		fmt.Fprintf(f, "%d,%.3f,s%d,%d\n", rng.Intn(100), rng.Float64()*10, i%7, i)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func testSchema() storage.Schema {
	return storage.Schema{
		{Name: "a", Type: storage.TInt},
		{Name: "b", Type: storage.TFloat},
		{Name: "c", Type: storage.TString},
		{Name: "d", Type: storage.TInt},
	}
}

func TestRawMatchesFullLoad(t *testing.T) {
	path := writeTestCSV(t, 500, 1)
	raw, err := Open("t", path, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewFullLoad("t", path)
	if err != nil {
		t.Fatal(err)
	}
	ext := NewExternalScan("t", path)

	queries := []exec.Query{
		{Select: []exec.SelectItem{{Col: "*", Agg: exec.AggCount}},
			Where: expr.Cmp("a", expr.LT, storage.Int(50))},
		{Select: []exec.SelectItem{{Col: "b", Agg: exec.AggSum}},
			Where: expr.Cmp("a", expr.GE, storage.Int(20))},
		{Select: []exec.SelectItem{{Col: "c"}, {Col: "d", Agg: exec.AggMax}},
			GroupBy: []string{"c"}, OrderBy: []exec.OrderKey{{Col: "c"}}},
	}
	for qi, q := range queries {
		rr, err := raw.Query(q)
		if err != nil {
			t.Fatalf("raw q%d: %v", qi, err)
		}
		fr, err := full.Query(q)
		if err != nil {
			t.Fatalf("full q%d: %v", qi, err)
		}
		er, err := ext.Query(q)
		if err != nil {
			t.Fatalf("ext q%d: %v", qi, err)
		}
		for _, pair := range [][2]*storage.Table{{rr, fr}, {er, fr}} {
			a, b := pair[0], pair[1]
			if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
				t.Fatalf("q%d dims: %dx%d vs %dx%d", qi, a.NumRows(), a.NumCols(), b.NumRows(), b.NumCols())
			}
			for r := 0; r < a.NumRows(); r++ {
				for c := 0; c < a.NumCols(); c++ {
					if !a.Column(c).Value(r).Equal(b.Column(c).Value(r)) {
						t.Fatalf("q%d cell (%d,%d): %v vs %v", qi, r, c,
							a.Column(c).Value(r), b.Column(c).Value(r))
					}
				}
			}
		}
	}
}

func TestLazyColumnParsing(t *testing.T) {
	path := writeTestCSV(t, 200, 2)
	raw, err := Open("t", path, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if got := raw.Stats(); got.Queries != 0 || got.BytesTokenized != 0 {
		t.Errorf("fresh stats = %+v", got)
	}
	// Query touching only column a.
	_, err = raw.Query(exec.Query{
		Select: []exec.SelectItem{{Col: "a", Agg: exec.AggSum}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := raw.Stats()
	if s.ColumnsCached != 1 {
		t.Errorf("cached columns = %d, want 1", s.ColumnsCached)
	}
	if s.FieldsParsed != 200 {
		t.Errorf("fields parsed = %d, want 200", s.FieldsParsed)
	}
	// Touch column d: positional map for a should shorten the token walk,
	// but all 4 fields' worth of commas must still be crossed from a.
	_, err = raw.Query(exec.Query{Select: []exec.SelectItem{{Col: "d", Agg: exec.AggMax}}})
	if err != nil {
		t.Fatal(err)
	}
	s = raw.Stats()
	if s.ColumnsCached != 2 || s.FieldsParsed != 400 {
		t.Errorf("after 2nd query: %+v", s)
	}
	// Re-querying cached columns parses nothing new.
	_, err = raw.Query(exec.Query{Select: []exec.SelectItem{{Col: "a"}, {Col: "d"}},
		Where: expr.Cmp("a", expr.GE, storage.Int(0))})
	if err != nil {
		t.Fatal(err)
	}
	if got := raw.Stats().FieldsParsed; got != 400 {
		t.Errorf("cached re-query parsed %d fields, want 400", got)
	}
}

func TestPositionalMapReducesTokenization(t *testing.T) {
	path := writeTestCSV(t, 1000, 3)
	// Scenario A: parse d cold (no positional map).
	rawA, _ := Open("t", path, testSchema())
	if _, err := rawA.Materialize("d"); err != nil {
		t.Fatal(err)
	}
	coldBytes := rawA.Stats().BytesTokenized
	// Scenario B: parse c first, then d — the map at c shortens the walk.
	rawB, _ := Open("t", path, testSchema())
	if _, err := rawB.Materialize("c"); err != nil {
		t.Fatal(err)
	}
	afterC := rawB.Stats().BytesTokenized
	if _, err := rawB.Materialize("d"); err != nil {
		t.Fatal(err)
	}
	dBytes := rawB.Stats().BytesTokenized - afterC
	if dBytes >= coldBytes-int64(len("0,0.000,s0,"))*100 {
		t.Errorf("positional map did not reduce tokenization: cold=%d warm=%d", coldBytes, dBytes)
	}
	if rawB.Stats().PositionalCols != 2 {
		t.Errorf("positional cols = %d, want 2", rawB.Stats().PositionalCols)
	}
}

func TestDropCache(t *testing.T) {
	path := writeTestCSV(t, 50, 4)
	raw, _ := Open("t", path, testSchema())
	if _, err := raw.Materialize("a", "b"); err != nil {
		t.Fatal(err)
	}
	if raw.Stats().ColumnsCached != 2 {
		t.Fatal("expected 2 cached")
	}
	raw.DropCache()
	if raw.Stats().ColumnsCached != 0 {
		t.Error("cache not dropped")
	}
	// Positional map survives eviction.
	if raw.Stats().PositionalCols != 2 {
		t.Error("positional map should survive DropCache")
	}
	if _, err := raw.Materialize("a"); err != nil {
		t.Fatal(err)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open("t", "/definitely/not/here.csv", testSchema()); err == nil {
		t.Error("want error for missing file")
	}
	path := writeTestCSV(t, 5, 5)
	raw, _ := Open("t", path, testSchema())
	if _, err := raw.Materialize("zzz"); !errors.Is(err, ErrNoSuchColumn) {
		t.Errorf("err = %v, want ErrNoSuchColumn", err)
	}
}

func TestMalformedRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(path, []byte("a,b\n1,2\n3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	raw, err := Open("t", path, storage.Schema{
		{Name: "a", Type: storage.TInt}, {Name: "b", Type: storage.TInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Materialize("b"); !errors.Is(err, ErrBadRecord) {
		t.Errorf("err = %v, want ErrBadRecord", err)
	}
}

func TestNumRowsNoTrailingNewline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "n.csv")
	if err := os.WriteFile(path, []byte("a\n1\n2\n3"), 0o644); err != nil {
		t.Fatal(err)
	}
	raw, err := Open("t", path, storage.Schema{{Name: "a", Type: storage.TInt}})
	if err != nil {
		t.Fatal(err)
	}
	n, err := raw.NumRows()
	if err != nil || n != 3 {
		t.Errorf("rows = %d (%v), want 3", n, err)
	}
	tb, err := raw.Materialize("a")
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 3 || tb.Column(0).Value(2).I != 3 {
		t.Errorf("materialized = %v", tb.Format(5))
	}
}

func TestSelectivityProbe(t *testing.T) {
	path := writeTestCSV(t, 100, 6)
	raw, _ := Open("t", path, testSchema())
	res, err := raw.Query(SelectivityProbe("b", 0, 100))
	if err != nil {
		t.Fatal(err)
	}
	if res.Row(0)[0].I != 100 {
		t.Errorf("probe count = %v, want 100", res.Row(0)[0])
	}
}
