package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"dex/internal/core"
	"dex/internal/exec"
	"dex/internal/fault"
	"dex/internal/protocol"
	"dex/internal/storage"
	"dex/internal/workload"
)

// fpExec injects worker-side execution faults: error policies fail the
// query on the shard (the coordinator sees CodeInternal and retries),
// latency policies make a slow shard.
var fpExec = fault.Register("shard/exec")

// Worker is one shard: a full dex engine over its partition of each
// table, serving the framed protocol on a TCP listener. A worker starts
// empty; the coordinator stages source tables (Load) and assigns the
// partition to keep (Partition) — rows are never shipped, each worker
// rebuilds the same seeded source and keeps its own slice.
type Worker struct {
	eng *core.Engine

	mu     sync.Mutex
	staged map[string]*storage.Table
	kept   map[string]int
	shard  int
	conns  map[*protocol.Conn]context.CancelFunc
	closed bool

	lis net.Listener
	wg  sync.WaitGroup
}

// NewWorker builds an empty worker around a seeded engine. Degradation
// stays off on workers: the fleet-level contract (partial results with a
// coverage fraction) lives at the coordinator, and a silently sampled
// shard partial would corrupt an exact merge. Zone maps and typed
// kernels stay on: both are semantics-preserving scan optimizations
// (certified bit-identical by the differential fuzzer), and their
// counters feed the Stats probe.
func NewWorker(seed int64) *Worker {
	return &Worker{
		eng:    core.New(core.Options{Seed: seed, Exec: exec.ExecOptions{ZoneMap: true, Kernels: true, AggKernels: true}}),
		staged: map[string]*storage.Table{},
		kept:   map[string]int{},
		shard:  -1,
		conns:  map[*protocol.Conn]context.CancelFunc{},
	}
}

// Engine exposes the worker's engine (tests register tables directly).
func (w *Worker) Engine() *core.Engine { return w.eng }

// Serve accepts connections until the listener closes. Each connection
// gets its own reader goroutine; queries on a connection run in per-query
// goroutines so a slow query never blocks a Cancel frame behind it.
func (w *Worker) Serve(lis net.Listener) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return errors.New("shard: worker closed")
	}
	w.lis = lis
	w.mu.Unlock()
	for {
		nc, err := lis.Accept()
		if err != nil {
			return err
		}
		conn := protocol.NewConn(nc)
		ctx, cancel := context.WithCancel(context.Background())
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			cancel()
			conn.Close()
			return errors.New("shard: worker closed")
		}
		w.conns[conn] = cancel
		w.mu.Unlock()
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			w.serveConn(ctx, conn)
			cancel()
			w.mu.Lock()
			delete(w.conns, conn)
			w.mu.Unlock()
		}()
	}
}

// Start serves on lis in a background goroutine.
func (w *Worker) Start(lis net.Listener) {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		w.Serve(lis)
	}()
}

// Close stops the listener, cancels every in-flight query and waits for
// the connection handlers to drain.
func (w *Worker) Close() {
	w.mu.Lock()
	w.closed = true
	lis := w.lis
	for conn, cancel := range w.conns {
		cancel()
		conn.Close()
	}
	w.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	w.wg.Wait()
}

// serveConn runs one connection's reader loop. connCtx is cancelled when
// the worker closes, which aborts the connection's in-flight queries.
func (w *Worker) serveConn(connCtx context.Context, conn *protocol.Conn) {
	defer conn.Close()
	// inflight maps query IDs to their cancel funcs for MsgCancel.
	var mu sync.Mutex
	inflight := map[uint64]context.CancelFunc{}
	var qwg sync.WaitGroup
	defer qwg.Wait()
	for {
		typ, payload, err := conn.Recv()
		if err != nil {
			return // peer gone or worker closing
		}
		switch typ {
		case protocol.MsgHello:
			var m protocol.Hello
			if err := json.Unmarshal(payload, &m); err != nil {
				w.sendErr(conn, 0, protocol.CodeBadQuery, "malformed hello: "+err.Error())
				return
			}
			if m.Version != protocol.Version {
				w.sendErr(conn, m.ID, protocol.CodeInternal,
					fmt.Sprintf("protocol version mismatch: worker %d, coordinator %d", protocol.Version, m.Version))
				return
			}
			w.mu.Lock()
			shard := w.shard
			w.mu.Unlock()
			conn.Send(protocol.MsgHelloAck, protocol.HelloAck{
				ID: m.ID, Version: protocol.Version, Shard: shard, Tables: w.eng.Tables(),
			})
		case protocol.MsgPing:
			var m protocol.Ping
			if json.Unmarshal(payload, &m) == nil {
				conn.Send(protocol.MsgPong, protocol.Pong{ID: m.ID})
			}
		case protocol.MsgStats:
			var m protocol.Stats
			if json.Unmarshal(payload, &m) == nil {
				conn.Send(protocol.MsgStatsAck, w.stats(m.ID))
			}
		case protocol.MsgLoad:
			var m protocol.Load
			if err := json.Unmarshal(payload, &m); err != nil {
				w.sendErr(conn, 0, protocol.CodeBadQuery, "malformed load: "+err.Error())
				continue
			}
			rows, err := w.handleLoad(m)
			if err != nil {
				w.sendErr(conn, m.ID, protocol.CodeBadQuery, err.Error())
				continue
			}
			conn.Send(protocol.MsgResult, protocol.Result{ID: m.ID, Rows: rows})
		case protocol.MsgPartition:
			var m protocol.Partition
			if err := json.Unmarshal(payload, &m); err != nil {
				w.sendErr(conn, 0, protocol.CodeBadQuery, "malformed partition: "+err.Error())
				continue
			}
			kept, schema, err := w.handlePartition(m)
			if err != nil {
				w.sendErr(conn, m.ID, protocol.CodeBadQuery, err.Error())
				continue
			}
			conn.Send(protocol.MsgResult, protocol.Result{ID: m.ID, Rows: kept, Table: schema})
		case protocol.MsgQuery:
			var m protocol.Query
			if err := json.Unmarshal(payload, &m); err != nil {
				w.sendErr(conn, 0, protocol.CodeBadQuery, "malformed query: "+err.Error())
				continue
			}
			qctx, qcancel := context.WithCancel(connCtx)
			mu.Lock()
			inflight[m.ID] = qcancel
			mu.Unlock()
			qwg.Add(1)
			go func() {
				defer qwg.Done()
				w.handleQuery(qctx, conn, m)
				qcancel()
				mu.Lock()
				delete(inflight, m.ID)
				mu.Unlock()
			}()
		case protocol.MsgCancel:
			var m protocol.Cancel
			if json.Unmarshal(payload, &m) == nil {
				mu.Lock()
				if cancel, ok := inflight[m.ID]; ok {
					cancel()
				}
				mu.Unlock()
			}
		default:
			w.sendErr(conn, 0, protocol.CodeBadQuery, fmt.Sprintf("unknown message type %d", typ))
		}
	}
}

func (w *Worker) sendErr(conn *protocol.Conn, id uint64, code, msg string) {
	conn.Send(protocol.MsgError, protocol.ErrorMsg{ID: id, Code: code, Msg: msg})
}

// handleLoad stages a source table from a demo generator or a CSV path.
func (w *Worker) handleLoad(m protocol.Load) (int64, error) {
	if m.Name == "" {
		return 0, errors.New("load needs a table name")
	}
	var (
		t   *storage.Table
		err error
	)
	switch {
	case m.Path != "":
		t, err = storage.ReadCSVFile(m.Name, m.Path)
	default:
		rows := m.Rows
		if rows <= 0 {
			rows = 100_000
		}
		rng := rand.New(rand.NewSource(m.Seed))
		switch m.Kind {
		case "", "sales":
			t, err = workload.Sales(rng, rows)
		case "sky":
			t, err = workload.SkyCatalog(rng, rows)
		case "ticks":
			t, err = workload.Ticks(rng, rows)
		default:
			return 0, fmt.Errorf("unknown demo kind %q (sales|sky|ticks)", m.Kind)
		}
	}
	if err != nil {
		return 0, err
	}
	w.mu.Lock()
	w.staged[m.Name] = t
	w.mu.Unlock()
	return int64(t.NumRows()), nil
}

// handlePartition keeps this worker's slice of a staged table and
// registers it for queries, replacing any previous registration (and the
// crack indexes / samples built over the old slice). The reply carries a
// zero-row table so the coordinator learns the schema without shipping
// rows. When a Range spec arrives without bounds, the worker derives
// equi-depth bounds itself — every worker stages the identical seeded
// source, so they all derive the identical split points.
func (w *Worker) handlePartition(m protocol.Partition) (int64, protocol.WireTable, error) {
	var none protocol.WireTable
	scheme, err := ParseScheme(m.Scheme)
	if err != nil {
		return 0, none, err
	}
	if m.Index < 0 || m.Index >= m.Count {
		return 0, none, fmt.Errorf("partition index %d out of range [0,%d)", m.Index, m.Count)
	}
	owned := m.Owned
	if len(owned) == 0 {
		owned = []int{m.Index}
	}
	own := make(map[int]bool, len(owned))
	for _, ix := range owned {
		if ix < 0 || ix >= m.Count {
			return 0, none, fmt.Errorf("owned partition %d out of range [0,%d)", ix, m.Count)
		}
		own[ix] = true
	}
	w.mu.Lock()
	src, ok := w.staged[m.Table]
	w.mu.Unlock()
	if !ok {
		return 0, none, fmt.Errorf("table %q not staged (send Load first)", m.Table)
	}
	col, err := src.ColumnByName(m.Column)
	if err != nil {
		return 0, none, err
	}
	if scheme == Range && col.Type() == storage.TString {
		return 0, none, fmt.Errorf("range partitioning needs a numeric column, %q is TEXT", m.Column)
	}
	bounds := m.Bounds
	if scheme == Range && len(bounds) == 0 {
		bounds = EquiDepthBounds(col, m.Count)
	}
	spec := Spec{Table: m.Table, Column: m.Column, Scheme: scheme, Shards: m.Count, Bounds: bounds}
	if err := spec.Validate(); err != nil {
		return 0, none, err
	}
	var sel []int
	for i := 0; i < col.Len(); i++ {
		if own[spec.ShardOf(col.Value(i))] {
			sel = append(sel, i)
		}
	}
	part := src.Gather(sel)
	w.eng.Replace(part)
	w.mu.Lock()
	w.shard = m.Index
	w.kept[m.Table] = len(sel)
	w.mu.Unlock()
	return int64(len(sel)), protocol.FromTable(src.Gather(nil)), nil
}

// stats snapshots the worker's engine counters for a Stats probe: the
// registered (partitioned) tables with their row counts — what the
// healer compares against the placement map — plus the shard-local
// scan/crack/zone-map counters the coordinator's stats section surfaces.
func (w *Worker) stats(id uint64) protocol.WorkerStats {
	w.mu.Lock()
	shard := w.shard
	names := make([]string, 0, len(w.kept))
	for name := range w.kept {
		names = append(names, name)
	}
	w.mu.Unlock()
	sort.Strings(names)
	st := protocol.WorkerStats{
		ID:          id,
		Shard:       shard,
		RowsScanned: w.eng.RowsScanned(),
		ZoneSkipped: w.eng.ZoneSkipped(),
	}
	for _, name := range names {
		if rows, ok := w.eng.TableRows(name); ok {
			st.Tables = append(st.Tables, protocol.TableStat{Name: name, Rows: rows})
		}
	}
	for _, ci := range w.eng.CrackIndexes() {
		st.Cracks = append(st.Cracks, protocol.CrackStat{
			Table: ci.Table, Column: ci.Column, Pieces: ci.Pieces, Cracks: int64(ci.Cracks),
		})
	}
	return st
}

// handleQuery executes one pushed query and replies with the partial
// result or a coded error. The shard/exec failpoint sits ahead of the
// engine so chaos schedules can fail or slow exactly this seam.
func (w *Worker) handleQuery(ctx context.Context, conn *protocol.Conn, m protocol.Query) {
	if m.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(m.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	if err := fpExec.Hit(); err != nil {
		w.sendErr(conn, m.ID, protocol.CodeInternal, err.Error())
		return
	}
	mode, err := core.ParseMode(m.Mode)
	if err != nil {
		w.sendErr(conn, m.ID, protocol.CodeBadQuery, err.Error())
		return
	}
	q, err := m.Query.ToQuery()
	if err != nil {
		w.sendErr(conn, m.ID, protocol.CodeBadQuery, err.Error())
		return
	}
	// The sampling modes cannot estimate over an empty partition (there
	// is nothing to sample); an empty shard contributes nothing to a
	// merged estimate, so reply with an empty partial instead of an
	// error the coordinator would mistake for a query defect.
	if mode == core.Approx || mode == core.Online {
		w.mu.Lock()
		kept, partitioned := w.kept[m.Table]
		w.mu.Unlock()
		if partitioned && kept == 0 {
			conn.Send(protocol.MsgResult, protocol.Result{ID: m.ID, Mode: mode.String()})
			return
		}
	}
	start := time.Now()
	res, err := w.eng.ExecuteContext(ctx, m.Table, q, mode)
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			w.sendErr(conn, m.ID, protocol.CodeCanceled, err.Error())
		case errors.Is(err, fault.ErrInjected):
			w.sendErr(conn, m.ID, protocol.CodeInternal, err.Error())
		case errors.Is(err, core.ErrNoSuchTable):
			// The signature of a restarted, blank worker: the table is gone
			// until the coordinator re-stages it. Its own code keeps the
			// coordinator from either retrying (it cannot help) or failing
			// the whole query as a user error (it is not one).
			w.sendErr(conn, m.ID, protocol.CodeUnknownTable, err.Error())
		default:
			// The engine's remaining errors are query errors by
			// construction — deterministic on every shard, so retrying or
			// degrading would only mask them.
			w.sendErr(conn, m.ID, protocol.CodeBadQuery, err.Error())
		}
		return
	}
	conn.Send(protocol.MsgResult, protocol.Result{
		ID:        m.ID,
		Rows:      int64(res.NumRows()),
		Table:     protocol.FromTable(res),
		ElapsedUS: time.Since(start).Microseconds(),
		Mode:      mode.String(),
	})
}
