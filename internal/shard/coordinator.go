package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"dex/internal/core"
	"dex/internal/exec"
	"dex/internal/metrics"
	"dex/internal/protocol"
	"dex/internal/sqlparse"
	"dex/internal/storage"
	"dex/internal/trace"
)

// ErrNotSharded is returned for queries on tables the coordinator does
// not own; the serving layer falls back to its local engine.
var ErrNotSharded = errors.New("shard: table is not sharded here")

// ErrAllShardsFailed is returned when no shard produced a partial: there
// is nothing to degrade to.
var ErrAllShardsFailed = errors.New("shard: all shards failed")

// Config parameterizes a coordinator.
type Config struct {
	// Spec names the partitioned table, column and scheme. Bounds may be
	// left empty for Range — workers derive identical equi-depth bounds
	// from the staged data.
	Spec Spec
	// Workers are the shard addresses, index-aligned with shard ids.
	Workers []string
	// ShardTimeout is the per-shard, per-attempt deadline (default 10s).
	ShardTimeout time.Duration
	// Retries is how many extra attempts a retryable shard failure gets
	// (default 1). Only transport errors and worker-internal failures
	// retry; user errors and per-shard deadline overruns do not.
	Retries int
	// Heal enables the self-healing state machine: a shard that fails
	// past retries (transport, or the typed unknown-table error a blank
	// restarted worker returns) is marked lost and skipped by queries
	// while a background healer re-stages its partitions onto the
	// (re)started worker — or, past RepartitionAfter, re-partitions them
	// across the survivors — driving coverage back to exactly 1.0 without
	// a coordinator restart. Off by default: a non-healing fleet degrades
	// forever, exactly as before.
	Heal bool
	// HealInterval is the healer's probe cadence (default 500ms).
	HealInterval time.Duration
	// RepartitionAfter is how long a lost worker may stay unreachable
	// before the healer re-partitions its rows across the survivors
	// (default 10s; negative never re-partitions — the healer then only
	// waits for the worker to come back).
	RepartitionAfter time.Duration
}

// Result is one distributed answer.
type Result struct {
	Table *storage.Table
	Mode  core.Mode
	// Degraded marks a partial answer: at least one shard was lost after
	// retries and the merge covers only the survivors.
	Degraded bool
	// Coverage is the fraction of the table's rows that contributed,
	// from the placement map. 1.0 on a healthy fleet. Results are never
	// extrapolated; coverage makes the truncation explicit.
	Coverage float64
}

// Coordinator scatters queries across a worker fleet and gathers the
// partials. It is safe for concurrent use.
type Coordinator struct {
	cfg     Config
	clients []*Client

	mu        sync.Mutex
	placement []int64 // rows currently placed per shard (Σ partRows over owned)
	total     int64
	schema    storage.Schema
	// Healing state (all guarded by mu): the per-shard state machine,
	// which partition indices each shard owns, the static per-partition
	// row counts from Bootstrap, and the Load that staged the source —
	// the provenance the healer replays to re-stage a shard.
	states    []ShardState
	lostSince []time.Time
	owned     [][]int
	partRows  []int64
	load      protocol.Load
	booted    bool

	statsMu   sync.Mutex
	lastStats []protocol.WorkerStats
	haveStats []bool

	healStop  chan struct{}
	healWG    sync.WaitGroup
	closeOnce sync.Once

	met *coordMetrics
}

// coordMetrics aggregates per-shard RPC latency, error and retry
// counters plus the fleet-level gather (merge) histogram and outcome
// counts — the numbers behind the dex_shard_* exposition families.
type coordMetrics struct {
	mu       sync.Mutex
	rpc      []*metrics.LogHist
	gather   *metrics.LogHist
	errors   []int64
	retries  []int64
	outcomes map[string]int64
	heals    map[string]int64
}

// New builds a coordinator over a fleet of worker addresses. Call
// Bootstrap (or Describe, for pre-loaded workers) before Execute.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("shard: coordinator needs at least one worker")
	}
	if cfg.Spec.Shards == 0 {
		cfg.Spec.Shards = len(cfg.Workers)
	}
	if cfg.Spec.Shards != len(cfg.Workers) {
		return nil, fmt.Errorf("shard: spec says %d shards but %d workers given", cfg.Spec.Shards, len(cfg.Workers))
	}
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = 10 * time.Second
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 1
	}
	if cfg.HealInterval <= 0 {
		cfg.HealInterval = 500 * time.Millisecond
	}
	if cfg.RepartitionAfter == 0 {
		cfg.RepartitionAfter = 10 * time.Second
	}
	c := &Coordinator{
		cfg:       cfg,
		placement: make([]int64, len(cfg.Workers)),
		states:    make([]ShardState, len(cfg.Workers)),
		lostSince: make([]time.Time, len(cfg.Workers)),
		owned:     make([][]int, len(cfg.Workers)),
		healStop:  make(chan struct{}),
		met: &coordMetrics{
			rpc:      make([]*metrics.LogHist, len(cfg.Workers)),
			gather:   metrics.NewLogHist(),
			errors:   make([]int64, len(cfg.Workers)),
			retries:  make([]int64, len(cfg.Workers)),
			outcomes: map[string]int64{},
			heals:    map[string]int64{},
		},
	}
	for i, addr := range cfg.Workers {
		c.clients = append(c.clients, NewClient(i, addr))
		c.met.rpc[i] = metrics.NewLogHist()
	}
	return c, nil
}

// Table returns the sharded table's name.
func (c *Coordinator) Table() string { return c.cfg.Spec.Table }

// Schema returns the sharded table's schema (for star expansion).
func (c *Coordinator) Schema() storage.Schema {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.schema
}

// Close stops the healer and tears down the worker connections (the
// workers keep running).
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() { close(c.healStop) })
	c.healWG.Wait()
	for _, cl := range c.clients {
		cl.Close()
	}
}

// Bootstrap stages the source table on every worker and assigns
// partitions: each worker rebuilds the same seeded source (or reads the
// same CSV) and keeps its own slice, so no rows cross the wire. The
// returned per-shard row counts become the placement map coverage is
// computed from.
func (c *Coordinator) Bootstrap(ctx context.Context, load protocol.Load) error {
	load.Name = c.cfg.Spec.Table
	var wg sync.WaitGroup
	errs := make([]error, len(c.clients))
	kept := make([]int64, len(c.clients))
	schemas := make([]storage.Schema, len(c.clients))
	for i, cl := range c.clients {
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			if _, err := cl.Load(ctx, load); err != nil {
				errs[i] = fmt.Errorf("shard %d: load: %w", i, err)
				return
			}
			rows, schema, err := c.partitionOne(ctx, cl, i)
			if err != nil {
				errs[i] = err
				return
			}
			kept[i], schemas[i] = rows, schema
		}(i, cl)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return err
	}
	c.mu.Lock()
	c.total = 0
	for i, k := range kept {
		c.placement[i] = k
		c.total += k
	}
	c.schema = schemas[0]
	// Record the provenance the healer replays: the Load that staged the
	// source, the static per-partition row counts, and the 1:1 bootstrap
	// ownership (shard i owns partition index i).
	c.load = load
	c.partRows = append([]int64(nil), kept...)
	for i := range c.owned {
		c.owned[i] = []int{i}
		c.states[i] = StateHealthy
	}
	booted := c.booted
	c.booted = true
	c.mu.Unlock()
	if c.cfg.Heal && !booted {
		c.healWG.Add(1)
		go c.healLoop()
	}
	return nil
}

// partitionOne sends one worker its Partition assignment and decodes the
// kept-row count and partition schema from the reply.
func (c *Coordinator) partitionOne(ctx context.Context, cl *Client, i int) (int64, storage.Schema, error) {
	m := protocol.Partition{
		Table:  c.cfg.Spec.Table,
		Column: c.cfg.Spec.Column,
		Scheme: c.cfg.Spec.Scheme.String(),
		Index:  i,
		Count:  c.cfg.Spec.Shards,
		Bounds: c.cfg.Spec.Bounds,
	}
	payload, _, err := cl.call(ctx, protocol.MsgPartition, func(id uint64) any { m.ID = id; return m })
	if err != nil {
		return 0, nil, fmt.Errorf("shard %d: partition: %w", i, err)
	}
	var res protocol.Result
	if err := json.Unmarshal(payload, &res); err != nil {
		return 0, nil, fmt.Errorf("shard %d: malformed partition result", i)
	}
	schemaTable, err := res.Table.ToTable()
	if err != nil {
		return 0, nil, fmt.Errorf("shard %d: partition schema: %w", i, err)
	}
	return res.Rows, schemaTable.Schema(), nil
}

// Execute runs one query across the fleet: rewrite per the merge plan,
// scatter with per-shard deadlines and retry, gather and merge. A lost
// shard degrades the answer (Coverage < 1) instead of failing it; a
// deterministic query error from any shard fails the whole query.
func (c *Coordinator) Execute(ctx context.Context, table string, q exec.Query, mode core.Mode) (Result, error) {
	if table != c.cfg.Spec.Table {
		return Result{}, fmt.Errorf("%q: %w", table, ErrNotSharded)
	}
	c.mu.Lock()
	schema := c.schema
	placement := append([]int64(nil), c.placement...)
	total := c.total
	var skip []bool
	if c.cfg.Heal {
		// Non-healthy shards are never queried: a lost worker would burn
		// the attempt budget, and a restaging one may hold a partial or
		// duplicate slice mid-swap. The healer is the only path back to
		// StateHealthy.
		skip = make([]bool, len(c.clients))
		for i, st := range c.states {
			skip[i] = st != StateHealthy
		}
	}
	c.mu.Unlock()
	if schema == nil {
		return Result{}, errors.New("shard: coordinator not bootstrapped")
	}
	q = sqlparse.ExpandStar(q, schema)
	plan, err := PlanQuery(q, mode == core.Approx || mode == core.Online)
	if err != nil {
		return Result{}, err
	}

	ssp := trace.FromContext(ctx).Child("scatter")
	ssp.SetInt("shards", int64(len(c.clients)))
	ssp.SetStr("mode", mode.String())
	parts := make([]*storage.Table, len(c.clients))
	shardErrs := make([]error, len(c.clients))
	var wg sync.WaitGroup
	for i, cl := range c.clients {
		if skip != nil && skip[i] {
			shardErrs[i] = fmt.Errorf("shard %d: %w", i, errShardNotHealthy)
			continue
		}
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			parts[i], shardErrs[i] = c.queryShard(ctx, ssp, cl, table, mode, plan.Push)
		}(i, cl)
	}
	wg.Wait()
	ssp.End()

	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	var survivors []*storage.Table
	var covered int64
	var failures []error
	for i, p := range parts {
		if shardErrs[i] != nil {
			if errors.Is(shardErrs[i], errShardNotHealthy) {
				// A skipped shard that owns no rows (its partitions were
				// adopted by survivors) subtracts nothing from coverage and
				// is not a failure; one that still owns rows degrades the
				// answer like any lost shard.
				if placement[i] > 0 {
					failures = append(failures, shardErrs[i])
				}
				continue
			}
			var re *RemoteError
			if errors.As(shardErrs[i], &re) && re.Code == protocol.CodeBadQuery {
				// Deterministic query error: every shard would refuse it the
				// same way. Surface it instead of degrading around it.
				c.countOutcome("failed")
				return Result{}, fmt.Errorf("shard: %s", re.Msg)
			}
			// Transport failures past retries and the typed unknown-table
			// error (a blank restarted worker) hand the shard to the healer;
			// worker-side cancellations are the query's own deadline, not a
			// sick shard.
			if errors.Is(shardErrs[i], ErrTransport) ||
				(errors.As(shardErrs[i], &re) && re.Code == protocol.CodeUnknownTable) {
				c.markLost(i)
			}
			failures = append(failures, shardErrs[i])
			continue
		}
		survivors = append(survivors, p)
		covered += placement[i]
	}
	if len(survivors) == 0 {
		c.countOutcome("failed")
		return Result{}, fmt.Errorf("%w: %v", ErrAllShardsFailed, errors.Join(failures...))
	}

	gsp := trace.FromContext(ctx).Child("gather")
	gsp.SetInt("partials", int64(len(survivors)))
	gStart := time.Now()
	merged, err := plan.Merge(survivors)
	c.met.mu.Lock()
	c.met.gather.Add(time.Since(gStart).Seconds())
	c.met.mu.Unlock()
	if err == nil {
		gsp.SetInt("rows_out", int64(merged.NumRows()))
	}
	gsp.End()
	if err != nil {
		c.countOutcome("failed")
		return Result{}, err
	}
	res := Result{Table: merged, Mode: mode, Coverage: 1}
	if total > 0 {
		res.Coverage = float64(covered) / float64(total)
	}
	if len(failures) > 0 {
		res.Degraded = true
		c.countOutcome("degraded")
	} else {
		c.countOutcome("ok")
	}
	return res, nil
}

// queryShard runs the per-shard attempt loop: per-attempt deadline, the
// shard/rpc failpoint (inside Client.Query), retry on transport or
// worker-internal errors, a trace child per attempt.
func (c *Coordinator) queryShard(ctx context.Context, parent *trace.Span, cl *Client, table string, mode core.Mode, push exec.Query) (*storage.Table, error) {
	attempts := 1 + c.cfg.Retries
	var lastErr error
	for a := 0; a < attempts; a++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sp := parent.Child("shard")
		sp.SetInt("shard", int64(cl.Shard))
		sp.SetInt("attempt", int64(a))
		sctx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
		t0 := time.Now()
		part, err := cl.Query(sctx, table, mode.String(), push, c.cfg.ShardTimeout)
		cancel()
		c.met.mu.Lock()
		c.met.rpc[cl.Shard].Add(time.Since(t0).Seconds())
		if err != nil {
			c.met.errors[cl.Shard]++
		}
		c.met.mu.Unlock()
		if err == nil {
			sp.SetInt("rows", int64(part.NumRows()))
			sp.End()
			return part, nil
		}
		sp.SetStr("error", err.Error())
		sp.End()
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err() // the query's own deadline or client gone
		}
		var re *RemoteError
		retryable := errors.Is(err, ErrTransport) || (errors.As(err, &re) && re.Retryable())
		if !retryable || a == attempts-1 {
			return nil, lastErr
		}
		c.met.mu.Lock()
		c.met.retries[cl.Shard]++
		c.met.mu.Unlock()
	}
	return nil, lastErr
}

func (c *Coordinator) countOutcome(o string) {
	c.met.mu.Lock()
	c.met.outcomes[o]++
	c.met.mu.Unlock()
}

// ---- observability ----

// ShardStat is one shard's snapshot row. The worker-local counters
// (rows scanned, zone-map skips, crack pieces/cracks) come from the
// best-effort Stats probe: a dead worker keeps its last-known numbers.
type ShardStat struct {
	Shard       int     `json:"shard"`
	Addr        string  `json:"addr"`
	State       string  `json:"state"`
	Owned       []int   `json:"owned,omitempty"`
	Rows        int64   `json:"rows"`
	Queries     int64   `json:"queries"`
	Errors      int64   `json:"errors"`
	Retries     int64   `json:"retries"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	RowsScanned int64   `json:"rows_scanned"`
	ZoneSkipped int64   `json:"zone_skipped"`
	CrackPieces int64   `json:"crack_pieces"`
	Cracks      int64   `json:"cracks"`
}

// Snapshot is the coordinator's /admin/stats section.
type Snapshot struct {
	Table       string           `json:"table"`
	Column      string           `json:"column"`
	Scheme      string           `json:"scheme"`
	Rows        int64            `json:"rows"`
	Coverage    float64          `json:"coverage"`
	Shards      []ShardStat      `json:"shards"`
	Outcomes    map[string]int64 `json:"outcomes"`
	Heals       map[string]int64 `json:"heals,omitempty"`
	GatherP95MS float64          `json:"gather_p95_ms"`
}

// Snapshot renders the coordinator's counters, refreshing the per-worker
// stats from reachable workers first (bounded, parallel, best-effort).
func (c *Coordinator) Snapshot() Snapshot {
	workers := c.refreshWorkerStats(context.Background())
	c.mu.Lock()
	placement := append([]int64(nil), c.placement...)
	states := append([]ShardState(nil), c.states...)
	owned := make([][]int, len(c.owned))
	for i, ow := range c.owned {
		owned[i] = append([]int(nil), ow...)
	}
	total := c.total
	coverage := c.coverageLocked()
	c.mu.Unlock()
	c.met.mu.Lock()
	defer c.met.mu.Unlock()
	snap := Snapshot{
		Table:       c.cfg.Spec.Table,
		Column:      c.cfg.Spec.Column,
		Scheme:      c.cfg.Spec.Scheme.String(),
		Rows:        total,
		Coverage:    coverage,
		Outcomes:    map[string]int64{},
		Heals:       map[string]int64{},
		GatherP95MS: c.met.gather.Quantile(0.95) * 1e3,
	}
	for k, v := range c.met.outcomes {
		snap.Outcomes[k] = v
	}
	for k, v := range c.met.heals {
		snap.Heals[k] = v
	}
	for i, cl := range c.clients {
		h := c.met.rpc[i]
		st := ShardStat{
			Shard:   i,
			Addr:    cl.Addr,
			State:   states[i].String(),
			Owned:   owned[i],
			Rows:    placement[i],
			Queries: h.N(),
			Errors:  c.met.errors[i],
			Retries: c.met.retries[i],
			P50MS:   h.Quantile(0.5) * 1e3,
			P95MS:   h.Quantile(0.95) * 1e3,
		}
		if i < len(workers) {
			ws := workers[i]
			st.RowsScanned = ws.RowsScanned
			st.ZoneSkipped = ws.ZoneSkipped
			for _, ci := range ws.Cracks {
				st.CrackPieces += int64(ci.Pieces)
				st.Cracks += ci.Cracks
			}
		}
		snap.Shards = append(snap.Shards, st)
	}
	return snap
}

// refreshWorkerStats probes every worker for its shard-local counters
// under one shared probe budget and merges the answers into the
// last-known cache — an unreachable worker keeps its final numbers.
func (c *Coordinator) refreshWorkerStats(ctx context.Context) []protocol.WorkerStats {
	ctx, cancel := context.WithTimeout(ctx, probeTimeout)
	defer cancel()
	fresh := make([]protocol.WorkerStats, len(c.clients))
	ok := make([]bool, len(c.clients))
	var wg sync.WaitGroup
	for i, cl := range c.clients {
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			if st, err := cl.Stats(ctx); err == nil {
				fresh[i], ok[i] = st, true
			}
		}(i, cl)
	}
	wg.Wait()
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	if c.lastStats == nil {
		c.lastStats = make([]protocol.WorkerStats, len(c.clients))
		c.haveStats = make([]bool, len(c.clients))
	}
	for i := range fresh {
		if ok[i] {
			c.lastStats[i] = fresh[i]
			c.haveStats[i] = true
		}
	}
	return append([]protocol.WorkerStats(nil), c.lastStats...)
}

// Histograms returns deep copies of the per-shard RPC histograms and the
// gather histogram for the /metrics renderer.
func (c *Coordinator) Histograms() (rpc []*metrics.LogHist, gather *metrics.LogHist) {
	c.met.mu.Lock()
	defer c.met.mu.Unlock()
	for _, h := range c.met.rpc {
		rpc = append(rpc, h.Clone())
	}
	return rpc, c.met.gather.Clone()
}
