package shard_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"dex/internal/core"
	"dex/internal/fault"
	"dex/internal/shard"
	"dex/internal/sqlparse"
	"dex/internal/workload"
)

// fleetOracle builds a single-node engine over the identical seeded sales
// table a fleet bootstraps, so fleet answers can be checked row-for-row.
func fleetOracle(t *testing.T, rows int, seed int64) *core.Engine {
	t.Helper()
	eng := core.New(core.Options{Seed: seed})
	sales, err := workload.Sales(rand.New(rand.NewSource(seed)), rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(sales); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestFleetWireParity: the full distributed path — parse, plan, scatter
// over real TCP frames, execute on per-shard engines, gather, merge —
// returns exactly what a single node over the same seeded table returns.
func TestFleetWireParity(t *testing.T) {
	const rows = 20_000
	const seed = int64(7)
	ctx := context.Background()
	oracle := fleetOracle(t, rows, seed)
	queries := []string{
		"SELECT count(*) FROM sales",
		"SELECT sum(amount), min(amount), max(amount), avg(qty) FROM sales",
		"SELECT count(*) FROM sales WHERE amount > 120 AND qty >= 3",
		"SELECT region, sum(amount), count(*) FROM sales GROUP BY region ORDER BY region",
		"SELECT quarter, avg(amount) FROM sales WHERE region = 'east' GROUP BY quarter ORDER BY quarter",
		"SELECT region, amount FROM sales WHERE amount > 200 ORDER BY amount DESC LIMIT 10",
		"SELECT product, qty FROM sales WHERE quarter = 'q3' ORDER BY qty DESC, product ASC LIMIT 25",
		// Empty result set: predicates below any generated amount.
		"SELECT region, sum(amount) FROM sales WHERE amount < -10000 GROUP BY region",
	}
	for _, spec := range []struct {
		scheme shard.Scheme
		column string
		shards int
	}{
		{shard.Hash, "amount", 3},
		{shard.Hash, "region", 4}, // low-cardinality key: lopsided shards
		{shard.Range, "amount", 4},
	} {
		name := fmt.Sprintf("%s-%s-%d", spec.scheme, spec.column, spec.shards)
		t.Run(name, func(t *testing.T) {
			f, err := shard.StartLocalFleet(ctx, shard.FleetConfig{
				Shards: spec.shards, Rows: rows, Seed: seed,
				Column: spec.column, Scheme: spec.scheme,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			for _, sql := range queries {
				st, err := sqlparse.Parse(sql)
				if err != nil {
					t.Fatalf("%s: %v", sql, err)
				}
				want, err := oracle.Execute("sales", st.Query, core.Exact)
				if err != nil {
					t.Fatalf("oracle %s: %v", sql, err)
				}
				res, err := f.Coord.Execute(ctx, st.Table, st.Query, core.Exact)
				if err != nil {
					t.Fatalf("fleet %s: %v", sql, err)
				}
				if res.Degraded || res.Coverage != 1 {
					t.Fatalf("%s: healthy fleet reported degraded=%v coverage=%v", sql, res.Degraded, res.Coverage)
				}
				keyCols := len(st.Query.GroupBy)
				if len(st.Query.OrderBy) > 0 && st.Query.Limit > 0 {
					// Top-k answers are order-sensitive; compare verbatim.
					keyCols = 0
				}
				requireAgree(t, sql, want, res.Table, keyCols)
			}
		})
	}
}

// TestFleetApproxOverWire: the estimate path end-to-end, including shards
// whose partition is empty (hash on a 4-label column across 8 workers
// guarantees several): empty shards answer with an empty partial instead
// of a sampling error, and the merged estimate still lands near truth.
func TestFleetApproxOverWire(t *testing.T) {
	const rows = 30_000
	const seed = int64(11)
	ctx := context.Background()
	oracle := fleetOracle(t, rows, seed)
	f, err := shard.StartLocalFleet(ctx, shard.FleetConfig{
		Shards: 8, Rows: rows, Seed: seed, Column: "region",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	empty := 0
	for _, s := range f.Coord.Snapshot().Shards {
		if s.Rows == 0 {
			empty++
		}
	}
	if empty == 0 {
		t.Fatal("expected empty shards when hashing 4 region labels across 8 workers")
	}

	for _, sql := range []string{
		"SELECT sum(amount) FROM sales",
		"SELECT count(*) FROM sales WHERE amount > 100",
		"SELECT region, avg(amount) FROM sales GROUP BY region ORDER BY region",
	} {
		st, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := oracle.Execute("sales", st.Query, core.Exact)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Coord.Execute(ctx, st.Table, st.Query, core.Approx)
		if err != nil {
			t.Fatalf("approx %s: %v", sql, err)
		}
		if res.Degraded {
			t.Fatalf("%s: approx over empty shards must not be degraded", sql)
		}
		if res.Table.NumRows() != exact.NumRows() {
			t.Fatalf("%s: estimate has %d rows, exact has %d", sql, res.Table.NumRows(), exact.NumRows())
		}
		// Estimates within 5 merged CIs of truth — loose on purpose; the
		// calibrated-coverage bar lives in TestMergeEstimatesCICoverage.
		estCol := res.Table.NumCols() - 3
		for r := 0; r < res.Table.NumRows(); r++ {
			truth := exact.Column(estCol).Value(r).AsFloat()
			est := res.Table.Column(estCol).Value(r).AsFloat()
			ci := res.Table.Column(estCol + 1).Value(r).AsFloat()
			tol := math.Max(5*ci, 1e-6*math.Abs(truth))
			if math.Abs(est-truth) > tol {
				t.Fatalf("%s row %d: estimate %v vs truth %v (ci %v)", sql, r, est, truth, ci)
			}
		}
	}
}

// TestFleetDegradation: killing a worker turns its shard's queries into
// transport errors; the coordinator merges survivors and reports the
// exact surviving row fraction as coverage, never an extrapolated total.
func TestFleetDegradation(t *testing.T) {
	const rows = 12_000
	ctx := context.Background()
	f, err := shard.StartLocalFleet(ctx, shard.FleetConfig{Shards: 3, Rows: rows, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap := f.Coord.Snapshot()
	f.KillShard(1)

	st, _ := sqlparse.Parse("SELECT count(*) FROM sales")
	res, err := f.Coord.Execute(ctx, st.Table, st.Query, core.Exact)
	if err != nil {
		t.Fatalf("degraded query must still answer: %v", err)
	}
	if !res.Degraded {
		t.Fatal("query over a killed shard must be marked degraded")
	}
	survivors := snap.Rows - snap.Shards[1].Rows
	wantCov := float64(survivors) / float64(snap.Rows)
	if math.Abs(res.Coverage-wantCov) > 1e-12 {
		t.Fatalf("coverage %v, want surviving fraction %v", res.Coverage, wantCov)
	}
	got := res.Table.Column(0).Value(0).AsInt()
	if got != survivors {
		t.Fatalf("degraded count(*) = %d, want surviving rows %d (no extrapolation)", got, survivors)
	}
	out := f.Coord.Snapshot().Outcomes
	if out["degraded"] == 0 {
		t.Fatalf("outcome counters missed the degraded query: %v", out)
	}
}

// TestFleetRetry: a one-shot injected RPC fault is retried transparently
// — the query succeeds at full coverage and the retry counter records it.
func TestFleetRetry(t *testing.T) {
	ctx := context.Background()
	f, err := shard.StartLocalFleet(ctx, shard.FleetConfig{Shards: 2, Rows: 8_000, Seed: 3, Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := fault.Enable("shard/rpc", "error-once"); err != nil {
		t.Fatal(err)
	}
	defer fault.Disable("shard/rpc")

	st, _ := sqlparse.Parse("SELECT count(*) FROM sales")
	res, err := f.Coord.Execute(ctx, st.Table, st.Query, core.Exact)
	if err != nil {
		t.Fatalf("retryable fault must not fail the query: %v", err)
	}
	if res.Degraded || res.Coverage != 1 {
		t.Fatalf("retried query must recover fully, got degraded=%v coverage=%v", res.Degraded, res.Coverage)
	}
	var retries int64
	for _, s := range f.Coord.Snapshot().Shards {
		retries += s.Retries
	}
	if retries == 0 {
		t.Fatal("retry counter did not record the injected fault")
	}
}

// TestFleetAllShardsFailed: a persistent worker-side execution fault
// exhausts retries on every shard; the coordinator reports the sentinel
// rather than inventing an empty answer.
func TestFleetAllShardsFailed(t *testing.T) {
	ctx := context.Background()
	f, err := shard.StartLocalFleet(ctx, shard.FleetConfig{Shards: 2, Rows: 6_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := fault.Enable("shard/exec", "error"); err != nil {
		t.Fatal(err)
	}
	defer fault.Disable("shard/exec")

	st, _ := sqlparse.Parse("SELECT count(*) FROM sales")
	_, err = f.Coord.Execute(ctx, st.Table, st.Query, core.Exact)
	if !errors.Is(err, shard.ErrAllShardsFailed) {
		t.Fatalf("want ErrAllShardsFailed, got %v", err)
	}
	if out := f.Coord.Snapshot().Outcomes; out["failed"] == 0 {
		t.Fatalf("outcome counters missed the failed query: %v", out)
	}
}

// TestFleetBadQueryFailsWhole: a per-shard semantic error (not transport)
// is the caller's bug — it must fail the whole query, not degrade it.
func TestFleetBadQueryFailsWhole(t *testing.T) {
	ctx := context.Background()
	f, err := shard.StartLocalFleet(ctx, shard.FleetConfig{Shards: 2, Rows: 4_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, _ := sqlparse.Parse("SELECT nosuchcol FROM sales")
	_, err = f.Coord.Execute(ctx, st.Table, st.Query, core.Exact)
	if err == nil || errors.Is(err, shard.ErrAllShardsFailed) {
		t.Fatalf("bad query must surface its own error, got %v", err)
	}
	if !strings.Contains(err.Error(), "nosuchcol") {
		t.Fatalf("error should name the bad column: %v", err)
	}
}

// TestFleetCancelPropagation: cancelling the caller's context aborts the
// scatter promptly even while workers are stalled mid-execution.
func TestFleetCancelPropagation(t *testing.T) {
	f, err := shard.StartLocalFleet(context.Background(), shard.FleetConfig{Shards: 2, Rows: 6_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := fault.Enable("shard/exec", "latency(2s)"); err != nil {
		t.Fatal(err)
	}
	defer fault.Disable("shard/exec")

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	st, _ := sqlparse.Parse("SELECT count(*) FROM sales")
	start := time.Now()
	_, err = f.Coord.Execute(ctx, st.Table, st.Query, core.Exact)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled query must not succeed")
	}
	if elapsed > time.Second {
		t.Fatalf("cancel took %v to unwind — not propagating", elapsed)
	}
}

// TestFleetSlowShardTimeout: a worker slower than the shard deadline is
// indistinguishable from a dead one; with every worker stalled the query
// fails outright instead of hanging.
func TestFleetSlowShardTimeout(t *testing.T) {
	ctx := context.Background()
	f, err := shard.StartLocalFleet(ctx, shard.FleetConfig{
		Shards: 2, Rows: 6_000, Seed: 3,
		ShardTimeout: 100 * time.Millisecond, Retries: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := fault.Enable("shard/exec", "latency(2s)"); err != nil {
		t.Fatal(err)
	}
	defer fault.Disable("shard/exec")

	st, _ := sqlparse.Parse("SELECT count(*) FROM sales")
	start := time.Now()
	_, err = f.Coord.Execute(ctx, st.Table, st.Query, core.Exact)
	if !errors.Is(err, shard.ErrAllShardsFailed) {
		t.Fatalf("want ErrAllShardsFailed from per-shard deadlines, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("deadline did not cut the stall: %v", elapsed)
	}
}

// TestFleetGoroutineLeak: a fleet's read loops, server loops and stalled
// scatters all unwind on Close.
func TestFleetGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		ctx := context.Background()
		f, err := shard.StartLocalFleet(ctx, shard.FleetConfig{Shards: 4, Rows: 8_000, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		st, _ := sqlparse.Parse("SELECT region, sum(amount) FROM sales GROUP BY region")
		for i := 0; i < 5; i++ {
			if _, err := f.Coord.Execute(ctx, st.Table, st.Query, core.Exact); err != nil {
				t.Fatal(err)
			}
		}
		f.KillShard(2)
		if _, err := f.Coord.Execute(ctx, st.Table, st.Query, core.Exact); err != nil {
			t.Fatal(err)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines did not settle: before=%d after=%d\n%s", before, runtime.NumGoroutine(), buf[:n])
}
