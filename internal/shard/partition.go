// Package shard is the distributed execution layer: it partitions tables
// across a fleet of dexd worker processes, scatters rewritten queries to
// them over internal/protocol, and gathers the partial results back into
// one answer with the partial-merge algebra in merge.go.
//
// The layer deliberately reuses the engine's existing seams rather than
// inventing new ones: context cancellation fans out to shards as Cancel
// frames, internal/fault failpoints on the RPC path (shard/rpc) and the
// worker execution path (shard/exec) drive per-shard retry and graceful
// degradation, and internal/trace records per-shard scatter/gather spans
// so /admin/slow and /metrics stay truthful about where time went.
//
// Degradation contract: when a shard stays down past its retry budget,
// the coordinator merges the surviving partials and returns them tagged
// Degraded with a Coverage fraction — the share of the table's rows that
// contributed, from the placement map. Results are never extrapolated;
// coverage makes the truncation explicit, mirroring the sample-based
// degradation contract the single-node engine already has.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"dex/internal/storage"
)

// Scheme selects how rows map to shards.
type Scheme uint8

// Partitioning schemes.
const (
	// Hash assigns each row by a hash of its partition-column value.
	// Works for every column type and balances skew-free.
	Hash Scheme = iota
	// Range assigns contiguous value ranges per shard (equi-depth bounds
	// computed from the data). Numeric columns only; it keeps range
	// predicates shard-local, which is what the crack column wants.
	Range
)

// String names the scheme as carried on the wire.
func (s Scheme) String() string {
	switch s {
	case Hash:
		return "hash"
	case Range:
		return "range"
	default:
		return fmt.Sprintf("Scheme(%d)", uint8(s))
	}
}

// ParseScheme parses a scheme name.
func ParseScheme(s string) (Scheme, error) {
	switch strings.ToLower(s) {
	case "", "hash":
		return Hash, nil
	case "range":
		return Range, nil
	default:
		return 0, fmt.Errorf("shard: unknown partition scheme %q (hash|range)", s)
	}
}

// Spec describes one partitioned table: which column splits it, how, and
// across how many shards. Bounds are the Shards-1 ascending split points
// of a Range spec (shard i holds values in [Bounds[i-1], Bounds[i])).
type Spec struct {
	Table  string
	Column string
	Scheme Scheme
	Shards int
	Bounds []float64
}

// Validate checks internal consistency.
func (s Spec) Validate() error {
	if s.Table == "" || s.Column == "" {
		return fmt.Errorf("shard: spec needs table and column")
	}
	if s.Shards < 1 {
		return fmt.Errorf("shard: spec needs at least 1 shard, got %d", s.Shards)
	}
	if s.Scheme == Range && len(s.Bounds) != s.Shards-1 {
		return fmt.Errorf("shard: range spec with %d shards needs %d bounds, got %d",
			s.Shards, s.Shards-1, len(s.Bounds))
	}
	for i := 1; i < len(s.Bounds); i++ {
		if s.Bounds[i] < s.Bounds[i-1] {
			return fmt.Errorf("shard: range bounds must be ascending")
		}
	}
	return nil
}

// ShardOf maps one value to its shard index.
func (s Spec) ShardOf(v storage.Value) int {
	if s.Shards <= 1 {
		return 0
	}
	switch s.Scheme {
	case Range:
		// Shard i holds [Bounds[i-1], Bounds[i]): the index is the number
		// of bounds at or below the value (values below Bounds[0] land on
		// shard 0, at or above the last bound on the last shard).
		x := v.AsFloat()
		return sort.Search(len(s.Bounds), func(j int) bool { return x < s.Bounds[j] })
	default:
		h := fnv.New64a()
		h.Write([]byte(v.String()))
		return int(h.Sum64() % uint64(s.Shards))
	}
}

// EquiDepthBounds computes Range split points for a numeric column so
// each shard receives an equal share of rows (ties keep duplicates of a
// split value together on the upper shard).
func EquiDepthBounds(col storage.Column, shards int) []float64 {
	if shards <= 1 || col.Len() == 0 {
		return nil
	}
	vals := make([]float64, col.Len())
	for i := range vals {
		vals[i] = col.Value(i).AsFloat()
	}
	sort.Float64s(vals)
	bounds := make([]float64, 0, shards-1)
	for i := 1; i < shards; i++ {
		bounds = append(bounds, vals[i*len(vals)/shards])
	}
	return bounds
}

// Split computes the per-shard row selections of a table under a spec.
// Every row lands on exactly one shard; the selections partition
// [0, NumRows).
func Split(t *storage.Table, spec Spec) ([][]int, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	col, err := t.ColumnByName(spec.Column)
	if err != nil {
		return nil, err
	}
	if spec.Scheme == Range && col.Type() == storage.TString {
		return nil, fmt.Errorf("shard: range partitioning needs a numeric column, %q is TEXT", spec.Column)
	}
	sels := make([][]int, spec.Shards)
	for i := 0; i < col.Len(); i++ {
		s := spec.ShardOf(col.Value(i))
		sels[s] = append(sels[s], i)
	}
	return sels, nil
}
