// Property tests for the partial-merge algebra: for seeded random
// tables, queries, shard counts and partition schemes, executing the
// pushed query on every partition and merging the partials must agree
// with running the original query on the whole table in one engine —
// byte-equal for ints and strings, 1e-9 relative for floats (shard count
// changes float addition order). The harness mirrors the cross-mode
// differential oracle in internal/exec.
package shard_test

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"dex/internal/core"
	"dex/internal/exec"
	"dex/internal/expr"
	"dex/internal/shard"
	"dex/internal/storage"
)

// parityTable builds the random test table: a shuffled unique int key, a
// small-domain int dimension, a float measure, and a label column.
func parityTable(rng *rand.Rand, name string, rows int) *storage.Table {
	ids := rng.Perm(rows)
	ks := make([]int64, rows)
	ds := make([]int64, rows)
	vs := make([]float64, rows)
	ss := make([]string, rows)
	labels := []string{"red", "green", "blue", "amber"}
	for i := 0; i < rows; i++ {
		ks[i] = int64(ids[i])
		ds[i] = rng.Int63n(7)
		vs[i] = rng.NormFloat64() * 100
		ss[i] = labels[rng.Intn(len(labels))]
	}
	t, err := storage.FromColumns(name, storage.Schema{
		{Name: "id", Type: storage.TInt},
		{Name: "d", Type: storage.TInt},
		{Name: "v", Type: storage.TFloat},
		{Name: "s", Type: storage.TString},
	}, []storage.Column{
		storage.NewIntColumn(ks), storage.NewIntColumn(ds),
		storage.NewFloatColumn(vs), storage.NewStringColumn(ss),
	})
	if err != nil {
		panic(err)
	}
	return t
}

// parityQuery draws a query plus the number of leading exact-valued key
// columns a canonical sort may use (0 = compare positionally).
func parityQuery(rng *rand.Rand, rows int) (exec.Query, int) {
	aggs := []exec.AggFunc{exec.AggCount, exec.AggSum, exec.AggAvg, exec.AggMin, exec.AggMax}
	var q exec.Query
	keyCols := 0
	switch rng.Intn(3) {
	case 0: // projection, totally ordered by the unique key
		q.Select = []exec.SelectItem{{Col: "id"}, {Col: "v"}, {Col: "s"}}
		q.OrderBy = []exec.OrderKey{{Col: "id", Desc: rng.Intn(2) == 0}}
		if rng.Intn(2) == 0 {
			q.Limit = 1 + rng.Intn(50)
		}
	case 1: // scalar aggregates: one row, positional compare
		q.Select = []exec.SelectItem{
			{Col: "*", Agg: exec.AggCount},
			{Col: "v", Agg: aggs[rng.Intn(len(aggs))]},
			{Col: "d", Agg: aggs[rng.Intn(len(aggs))]},
		}
	default: // group-by: canonical sort on the group keys
		dims := [][]string{{"d"}, {"s"}, {"d", "s"}}[rng.Intn(3)]
		q.GroupBy = dims
		for _, g := range dims {
			q.Select = append(q.Select, exec.SelectItem{Col: g})
		}
		q.Select = append(q.Select,
			exec.SelectItem{Col: "v", Agg: aggs[rng.Intn(len(aggs))]},
			exec.SelectItem{Col: "*", Agg: exec.AggCount},
		)
		keyCols = len(dims)
	}
	switch rng.Intn(5) {
	case 0: // full scan
	case 1:
		q.Where = expr.Cmp("id", expr.GE, storage.Int(rng.Int63n(int64(rows))))
	case 2:
		lo := rng.NormFloat64() * 50
		q.Where = expr.And(
			expr.Cmp("v", expr.GE, storage.Float(lo)),
			expr.Cmp("v", expr.LT, storage.Float(lo+rng.Float64()*200)),
		)
	case 3:
		q.Where = expr.Cmp("d", expr.LE, storage.Int(rng.Int63n(7)))
	default:
		q.Where = expr.Cmp("s", expr.NE, storage.String_("red"))
	}
	return q, keyCols
}

func cellsClose(a, b storage.Value) bool {
	if a.Typ != b.Typ {
		return false
	}
	if a.Typ != storage.TFloat {
		return a == b
	}
	x, y := a.F, b.F
	if math.IsNaN(x) || math.IsNaN(y) {
		return math.IsNaN(x) && math.IsNaN(y)
	}
	if x == y {
		return true
	}
	return math.Abs(x-y) <= 1e-9*math.Max(math.Abs(x), math.Abs(y))
}

func canonicalRows(t *storage.Table, keyCols int) [][]storage.Value {
	rows := make([][]storage.Value, t.NumRows())
	for r := range rows {
		row := make([]storage.Value, t.NumCols())
		for c := range row {
			row[c] = t.Column(c).Value(r)
		}
		rows[r] = row
	}
	if keyCols > 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			for c := 0; c < keyCols; c++ {
				a, b := fmt.Sprintf("%v", rows[i][c]), fmt.Sprintf("%v", rows[j][c])
				if a != b {
					return a < b
				}
			}
			return false
		})
	}
	return rows
}

func requireAgree(t *testing.T, label string, want, got *storage.Table, keyCols int) {
	t.Helper()
	if want.Schema().String() != got.Schema().String() {
		t.Fatalf("%s: schema\nwant: %s\ngot:  %s", label, want.Schema(), got.Schema())
	}
	if want.NumRows() != got.NumRows() {
		t.Fatalf("%s: rows want=%d got=%d", label, want.NumRows(), got.NumRows())
	}
	w, g := canonicalRows(want, keyCols), canonicalRows(got, keyCols)
	for r := range w {
		for c := range w[r] {
			if !cellsClose(w[r][c], g[r][c]) {
				t.Fatalf("%s: row %d col %d (%s): want %v got %v",
					label, r, c, want.Schema()[c].Name, w[r][c], g[r][c])
			}
		}
	}
}

// shardEngines splits tbl under spec and registers each partition in its
// own engine (seeded from seedBase) — the algebra under test without the
// network in the way.
func shardEngines(t *testing.T, tbl *storage.Table, spec shard.Spec, seedBase int64) []*core.Engine {
	t.Helper()
	sels, err := shard.Split(tbl, spec)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	engines := make([]*core.Engine, spec.Shards)
	for i, sel := range sels {
		total += len(sel)
		// A 10% sample floor keeps per-partition AQP samples big enough
		// for the CLT intervals the merge algebra combines: at 8-way
		// splits of the test table the default 1% sample is ~50 rows,
		// where the single-node z-interval itself under-covers.
		engines[i] = core.New(core.Options{Seed: seedBase + int64(i), SampleFracs: []float64{0.1}})
		if err := engines[i].Register(tbl.Gather(sel)); err != nil {
			t.Fatal(err)
		}
	}
	if total != tbl.NumRows() {
		t.Fatalf("partitions cover %d of %d rows", total, tbl.NumRows())
	}
	return engines
}

// TestMergeParityOracle: seeded random (table, query) trials across
// shard counts 1/2/4/8 and all three scheme/column combinations must
// merge to exactly the single-node answer.
func TestMergeParityOracle(t *testing.T) {
	const rows = 4001
	rng := rand.New(rand.NewSource(41))
	tbl := parityTable(rng, "ptab", rows)
	oracle := core.New(core.Options{Seed: 7})
	if err := oracle.Register(tbl); err != nil {
		t.Fatal(err)
	}

	specs := []shard.Spec{
		{Table: "ptab", Column: "s", Scheme: shard.Hash},
		{Table: "ptab", Column: "v", Scheme: shard.Hash},
		{Table: "ptab", Column: "id", Scheme: shard.Range},
	}
	for _, base := range specs {
		for _, n := range []int{1, 2, 4, 8} {
			spec := base
			spec.Shards = n
			if spec.Scheme == shard.Range && n > 1 {
				col, err := tbl.ColumnByName(spec.Column)
				if err != nil {
					t.Fatal(err)
				}
				spec.Bounds = shard.EquiDepthBounds(col, n)
			}
			name := fmt.Sprintf("%s-%s-%d", spec.Scheme, spec.Column, n)
			t.Run(name, func(t *testing.T) {
				engines := shardEngines(t, tbl, spec, 31)
				for trial := 0; trial < 25; trial++ {
					q, keyCols := parityQuery(rng, rows)
					label := fmt.Sprintf("%s trial=%d q=%s", name, trial, q)
					plan, err := shard.PlanQuery(q, false)
					if err != nil {
						t.Fatalf("%s: plan: %v", label, err)
					}
					parts := make([]*storage.Table, len(engines))
					for i, e := range engines {
						parts[i], err = e.Execute("ptab", plan.Push, core.Exact)
						if err != nil {
							t.Fatalf("%s: shard %d: %v", label, i, err)
						}
					}
					got, err := plan.Merge(parts)
					if err != nil {
						t.Fatalf("%s: merge: %v", label, err)
					}
					want, err := oracle.Execute("ptab", q, core.Exact)
					if err != nil {
						t.Fatalf("%s: oracle: %v", label, err)
					}
					// A group-by with no ORDER BY merges in canonical key
					// order while the oracle reports first-seen order:
					// canonicalize both sides. Projections carry ORDER BY on
					// the unique key, so they stay positional.
					requireAgree(t, label, want, got, keyCols)
				}
			})
		}
	}
}

// TestMergeEstimatesCICoverage: distributed AQP — every shard samples its
// own partition and the coordinator merges estimates and intervals
// (quadrature for COUNT/SUM, sample-size weighting for AVG). The merged
// ci95 must cover the exact whole-table answer at its nominal rate. The
// acceptance bar is 95% minus two binomial standard errors (~90% at 100
// trials): the intervals are honestly calibrated, not conservative, so a
// hard ≥95% empirical cutoff would reject a perfect estimator about half
// the time.
func TestMergeEstimatesCICoverage(t *testing.T) {
	const rows = 40_000
	const trials = 100
	const bar = 0.95 - 2*0.0218 // two SEs of a Binomial(100, 0.95) proportion
	rng := rand.New(rand.NewSource(23))
	tbl := parityTable(rng, "ptab", rows)
	oracle := core.New(core.Options{Seed: 9})
	if err := oracle.Register(tbl); err != nil {
		t.Fatal(err)
	}
	aggs := []exec.AggFunc{exec.AggSum, exec.AggCount, exec.AggAvg}

	for _, n := range []int{2, 4} {
		spec := shard.Spec{Table: "ptab", Column: "v", Scheme: shard.Hash, Shards: n}
		t.Run(fmt.Sprintf("shards-%d", n), func(t *testing.T) {
			covered := 0
			for i := 0; i < trials; i++ {
				// Fresh engines every trial: the AQP catalog samples each
				// partition once and reuses it, so one unlucky draw would
				// otherwise bias every trial identically — the coverage
				// statistic needs independent samples.
				engines := shardEngines(t, tbl, spec, int64(100+i*16))
				q := exec.Query{
					Select: []exec.SelectItem{{Col: "v", Agg: aggs[rng.Intn(len(aggs))]}},
				}
				// Wide predicates only, as in the single-node CI oracle.
				lo := rng.Int63n(int64(rows / 2))
				q.Where = expr.And(
					expr.Cmp("id", expr.GE, storage.Int(lo)),
					expr.Cmp("id", expr.LT, storage.Int(lo+int64(rows)/3)),
				)
				exact, err := oracle.Execute("ptab", q, core.Exact)
				if err != nil {
					t.Fatal(err)
				}
				truth := exact.Column(0).Value(0).AsFloat()

				plan, err := shard.PlanQuery(q, true)
				if err != nil {
					t.Fatal(err)
				}
				parts := make([]*storage.Table, len(engines))
				for j, e := range engines {
					parts[j], err = e.Execute("ptab", plan.Push, core.Approx)
					if err != nil {
						t.Fatal(err)
					}
				}
				got, err := plan.Merge(parts)
				if err != nil {
					t.Fatal(err)
				}
				if got.NumRows() != 1 {
					t.Fatalf("merged estimate has %d rows", got.NumRows())
				}
				est := got.Column(0).Value(0).AsFloat()
				ci := got.Column(1).Value(0).AsFloat()
				if ci <= 0 {
					if math.Abs(est-truth) <= 1e-9*math.Max(1, math.Abs(truth)) {
						covered++
					}
					continue
				}
				if math.Abs(est-truth) <= ci {
					covered++
				}
			}
			coverage := float64(covered) / trials
			t.Logf("shards=%d: %d/%d trials inside merged ci95 (%.1f%%)", n, covered, trials, 100*coverage)
			if coverage < bar {
				t.Fatalf("merged CI coverage %.1f%% < %.1f%%: interval merging is optimistic", 100*coverage, 100*bar)
			}
		})
	}
}

// TestMergeEstimatesGroupBy: merged group-by estimates keep the output
// contract ([groups], agg, ci95, sample_n) and agree with the exact
// group values within the merged intervals for the dominant groups.
func TestMergeEstimatesGroupBy(t *testing.T) {
	const rows = 40_000
	rng := rand.New(rand.NewSource(29))
	tbl := parityTable(rng, "ptab", rows)
	oracle := core.New(core.Options{Seed: 3})
	if err := oracle.Register(tbl); err != nil {
		t.Fatal(err)
	}
	spec := shard.Spec{Table: "ptab", Column: "v", Scheme: shard.Hash, Shards: 4}
	engines := shardEngines(t, tbl, spec, 57)

	q := exec.Query{
		Select:  []exec.SelectItem{{Col: "d"}, {Col: "v", Agg: exec.AggAvg}},
		GroupBy: []string{"d"},
	}
	plan, err := shard.PlanQuery(q, true)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]*storage.Table, len(engines))
	for i, e := range engines {
		parts[i], err = e.Execute("ptab", plan.Push, core.Approx)
		if err != nil {
			t.Fatal(err)
		}
	}
	got, err := plan.Merge(parts)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := oracle.Execute("ptab", q, core.Exact)
	if err != nil {
		t.Fatal(err)
	}
	truth := map[int64]float64{}
	for r := 0; r < exact.NumRows(); r++ {
		truth[exact.Column(0).Value(r).I] = exact.Column(1).Value(r).AsFloat()
	}
	if got.NumCols() != 4 {
		t.Fatalf("estimates schema %s: want [d, avg, ci95, sample_n]", got.Schema())
	}
	misses := 0
	for r := 0; r < got.NumRows(); r++ {
		g := got.Column(0).Value(r).I
		est := got.Column(1).Value(r).AsFloat()
		ci := got.Column(2).Value(r).AsFloat()
		want, ok := truth[g]
		if !ok {
			t.Fatalf("merged estimates invented group %d", g)
		}
		// Per-group CIs at 95% can individually miss; with 7 groups allow
		// one, which is far beyond the expected miss rate under correct
		// intervals but catches systematic underestimation.
		if math.Abs(est-want) > ci {
			misses++
		}
	}
	if misses > 1 {
		t.Fatalf("%d of %d groups outside their merged ci95", misses, got.NumRows())
	}
}
