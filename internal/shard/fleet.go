package shard

import (
	"context"
	"fmt"
	"net"
	"time"

	"dex/internal/protocol"
)

// FleetConfig parameterizes a local in-process fleet.
type FleetConfig struct {
	// Shards is the worker count (default 2).
	Shards int
	// Rows per demo table (default 100k) and the shared generator Seed.
	Rows int
	Seed int64
	// Kind is the demo workload (sales|sky|ticks, default sales); Table
	// and Column name the sharded table and its partition column
	// (defaults sales/amount — the crack column).
	Kind   string
	Table  string
	Column string
	Scheme Scheme
	// ShardTimeout and Retries pass through to the coordinator.
	ShardTimeout time.Duration
	Retries      int
	// Heal, HealInterval and RepartitionAfter pass through to the
	// coordinator's self-healing state machine.
	Heal             bool
	HealInterval     time.Duration
	RepartitionAfter time.Duration
}

func (c *FleetConfig) defaults() {
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.Rows <= 0 {
		c.Rows = 100_000
	}
	if c.Kind == "" {
		c.Kind = "sales"
	}
	if c.Table == "" {
		c.Table = c.Kind
	}
	if c.Column == "" {
		c.Column = "amount"
	}
}

// LocalFleet is an in-process worker fleet plus its coordinator — the
// shape dexbench -shards and the shard tests run: real TCP loopback and
// real frames, no extra processes.
type LocalFleet struct {
	Coord   *Coordinator
	Workers []*Worker
	addrs   []string
	seed    int64
	killed  []bool
}

// StartLocalFleet boots n workers on loopback listeners, builds a
// coordinator over them and bootstraps the demo table.
func StartLocalFleet(ctx context.Context, cfg FleetConfig) (*LocalFleet, error) {
	cfg.defaults()
	f := &LocalFleet{killed: make([]bool, cfg.Shards), seed: cfg.Seed}
	addrs := make([]string, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("shard: listen worker %d: %w", i, err)
		}
		w := NewWorker(cfg.Seed)
		w.Start(lis)
		f.Workers = append(f.Workers, w)
		addrs[i] = lis.Addr().String()
	}
	f.addrs = addrs
	coord, err := New(Config{
		Spec:             Spec{Table: cfg.Table, Column: cfg.Column, Scheme: cfg.Scheme, Shards: cfg.Shards},
		Workers:          addrs,
		ShardTimeout:     cfg.ShardTimeout,
		Retries:          cfg.Retries,
		Heal:             cfg.Heal,
		HealInterval:     cfg.HealInterval,
		RepartitionAfter: cfg.RepartitionAfter,
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	f.Coord = coord
	if err := coord.Bootstrap(ctx, protocol.Load{Kind: cfg.Kind, Rows: cfg.Rows, Seed: cfg.Seed}); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// KillShard tears down one worker (listener and live connections) so the
// fleet degrades: queries that land on it fail as transport errors,
// retries hit connection-refused, and the coordinator merges survivors.
func (f *LocalFleet) KillShard(i int) {
	if i < 0 || i >= len(f.Workers) || f.killed[i] {
		return
	}
	f.killed[i] = true
	f.Workers[i].Close()
}

// RestartShard brings a killed worker back on its original address —
// blank, exactly like a restarted dexd process: staged tables, crack
// indexes and samples are gone until the coordinator's healer re-stages
// it. Without healing the restarted worker answers queries with the
// typed unknown-table error and the fleet keeps degrading.
func (f *LocalFleet) RestartShard(i int) error {
	if i < 0 || i >= len(f.Workers) || !f.killed[i] {
		return fmt.Errorf("shard: restart: worker %d is not killed", i)
	}
	lis, err := net.Listen("tcp", f.addrs[i])
	if err != nil {
		return fmt.Errorf("shard: restart worker %d: %w", i, err)
	}
	w := NewWorker(f.seed)
	w.Start(lis)
	f.Workers[i] = w
	f.killed[i] = false
	return nil
}

// Close tears down the coordinator and every still-running worker.
func (f *LocalFleet) Close() {
	if f.Coord != nil {
		f.Coord.Close()
	}
	for i, w := range f.Workers {
		if !f.killed[i] {
			f.killed[i] = true
			w.Close()
		}
	}
}
