package shard

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"
)

// Multi-process fleets use the self-exec pattern: a command that wants
// real worker processes re-executes its own binary with workerEnv set,
// and MaybeWorkerProcess (called first thing in main) hijacks those
// children into worker mode. Children announce their port on stdout and
// exit when their stdin closes, so a dying parent never leaks a fleet.
const (
	workerEnv     = "DEX_SHARD_WORKER"
	workerSeedEnv = "DEX_SHARD_SEED"
	workerAddrEnv = "DEX_SHARD_ADDR"
	readyPrefix   = "DEX_SHARD_READY "
)

// MaybeWorkerProcess turns the current process into a shard worker when
// the worker env var is set, and never returns in that case. Call it at
// the top of main in any command that spawns process fleets.
func MaybeWorkerProcess() {
	if os.Getenv(workerEnv) == "" {
		return
	}
	seed, _ := strconv.ParseInt(os.Getenv(workerSeedEnv), 10, 64)
	if err := runWorkerProcess(seed); err != nil {
		fmt.Fprintln(os.Stderr, "shard worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

func runWorkerProcess(seed int64) error {
	// A restarted worker pins its predecessor's address (workerAddrEnv)
	// so the coordinator's existing client redials straight into it; a
	// fresh worker takes any free port.
	addr := os.Getenv(workerAddrEnv)
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	w := NewWorker(seed)
	// The parent holds our stdin pipe open for our lifetime; EOF means it
	// is gone (or done with us) and we shut down.
	go func() {
		io.Copy(io.Discard, os.Stdin)
		w.Close()
	}()
	fmt.Printf("%s%s\n", readyPrefix, lis.Addr().String())
	w.Serve(lis)
	return nil
}

// ProcFleet is a fleet of real worker processes spawned from the current
// binary.
type ProcFleet struct {
	Addrs []string
	seed  int64
	procs []*os.Process
	pipes []io.WriteCloser
}

// SpawnWorkers starts n worker processes and waits for each to announce
// its address. The caller's binary must call MaybeWorkerProcess in main.
func SpawnWorkers(n int, seed int64) (*ProcFleet, error) {
	f := &ProcFleet{
		Addrs: make([]string, n),
		seed:  seed,
		procs: make([]*os.Process, n),
		pipes: make([]io.WriteCloser, n),
	}
	for i := 0; i < n; i++ {
		if err := f.spawn(i, ""); err != nil {
			f.Close()
			return nil, err
		}
	}
	return f, nil
}

// spawn starts worker slot i, optionally pinning its listen address.
func (f *ProcFleet) spawn(i int, addr string) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		workerEnv+"=1",
		workerSeedEnv+"="+strconv.FormatInt(f.seed, 10),
	)
	if addr != "" {
		cmd.Env = append(cmd.Env, workerAddrEnv+"="+addr)
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("shard: spawn worker %d: %w", i, err)
	}
	f.procs[i] = cmd.Process
	f.pipes[i] = stdin
	got, err := readReady(stdout, 10*time.Second)
	if err != nil {
		return fmt.Errorf("shard: worker %d: %w", i, err)
	}
	f.Addrs[i] = got
	// Reap the child when it exits so it never zombies; drain stdout so
	// the child can't block on a full pipe.
	go func(c *exec.Cmd, r io.Reader) {
		io.Copy(io.Discard, r)
		c.Wait()
	}(cmd, stdout)
	return nil
}

// Restart re-spawns a killed worker slot on its original address — a
// blank process, exactly the restart-after-crash shape the healer
// re-stages. The coordinator's client redials the same address on its
// next call.
func (f *ProcFleet) Restart(i int) error {
	if i < 0 || i >= len(f.procs) {
		return fmt.Errorf("shard: restart: no worker slot %d", i)
	}
	if f.procs[i] != nil {
		return fmt.Errorf("shard: restart: worker %d is still running", i)
	}
	return f.spawn(i, f.Addrs[i])
}

// readReady scans the child's stdout for its ready line.
func readReady(r io.Reader, timeout time.Duration) (string, error) {
	type line struct {
		addr string
		err  error
	}
	ch := make(chan line, 1)
	go func() {
		sc := bufio.NewScanner(r)
		for sc.Scan() {
			if s, ok := strings.CutPrefix(sc.Text(), readyPrefix); ok {
				ch <- line{addr: strings.TrimSpace(s)}
				return
			}
		}
		err := sc.Err()
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		ch <- line{err: fmt.Errorf("no ready line: %w", err)}
	}()
	select {
	case l := <-ch:
		return l.addr, l.err
	case <-time.After(timeout):
		return "", fmt.Errorf("timed out waiting for worker ready line")
	}
}

// Kill terminates one worker process immediately (for degradation
// drills); the coordinator sees connection failures on its shard.
func (f *ProcFleet) Kill(i int) {
	if i < 0 || i >= len(f.procs) || f.procs[i] == nil {
		return
	}
	f.pipes[i].Close()
	f.procs[i].Kill()
	f.procs[i] = nil
}

// Close shuts the whole fleet down (stdin close first for a graceful
// exit, then a kill as backstop).
func (f *ProcFleet) Close() {
	for i := range f.procs {
		if f.procs[i] == nil {
			continue
		}
		f.pipes[i].Close()
	}
	time.Sleep(50 * time.Millisecond)
	for i := range f.procs {
		if f.procs[i] == nil {
			continue
		}
		f.procs[i].Kill()
		f.procs[i] = nil
	}
}
