package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"dex/internal/exec"
	"dex/internal/fault"
	"dex/internal/protocol"
	"dex/internal/storage"
)

// fpRPC injects coordinator-side RPC faults, one Hit per query attempt:
// error policies fail the attempt (driving the retry path), latency
// policies make the shard look slow from the coordinator.
var fpRPC = fault.Register("shard/rpc")

// ErrTransport wraps every failure where the worker never answered —
// dial refused, connection reset, frame decode failure. Transport errors
// are retryable: the query said nothing about itself.
var ErrTransport = errors.New("shard: transport error")

// RemoteError is a worker's coded refusal.
type RemoteError struct {
	Shard int
	Code  string
	Msg   string
}

// Error implements the error interface.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("shard %d: %s: %s", e.Shard, e.Code, e.Msg)
}

// Retryable reports whether another attempt could help: only
// infrastructure failures qualify — a bad query fails identically
// everywhere, and a worker-side cancellation means the deadline already
// spent this attempt's budget.
func (e *RemoteError) Retryable() bool { return e.Code == protocol.CodeInternal }

// cancelGrace bounds how long a cancelled call waits for the worker's
// CodeCanceled reply before abandoning the pending slot. It is the tail
// a caller can observe past its own deadline, so it must stay well under
// the interactive budgets (~250ms) the deadlines protect; a worker that
// cannot resolve the slot this fast is treated like a dead one.
const cancelGrace = 250 * time.Millisecond

type response struct {
	typ     byte
	payload []byte
	err     error
}

// Client is the coordinator's handle on one worker: a single multiplexed
// connection (dialed lazily, redialed after failures) carrying
// concurrent requests matched by ID.
type Client struct {
	Shard int
	Addr  string
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration

	mu      sync.Mutex
	conn    *protocol.Conn
	pending map[uint64]chan response
	nextID  uint64
}

// NewClient builds a client for one worker address.
func NewClient(shard int, addr string) *Client {
	return &Client{Shard: shard, Addr: addr, DialTimeout: 2 * time.Second, pending: map[uint64]chan response{}}
}

// Close tears the connection down; in-flight calls fail as transport
// errors. The client stays usable — the next call redials.
func (c *Client) Close() {
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// ensure returns a live connection, dialing and handshaking on demand.
func (c *Client) ensure(ctx context.Context) (*protocol.Conn, error) {
	c.mu.Lock()
	if c.conn != nil {
		conn := c.conn
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	d := net.Dialer{Timeout: c.DialTimeout}
	nc, err := d.DialContext(ctx, "tcp", c.Addr)
	if err != nil {
		return nil, fmt.Errorf("%w: dial shard %d (%s): %v", ErrTransport, c.Shard, c.Addr, err)
	}
	conn := protocol.NewConn(nc)
	c.mu.Lock()
	if c.conn != nil {
		// Lost the dial race to a concurrent caller; use theirs.
		winner := c.conn
		c.mu.Unlock()
		conn.Close()
		return winner, nil
	}
	c.conn = conn
	c.mu.Unlock()
	go c.readLoop(conn)
	// Handshake through the normal call path so the reader demuxes it.
	payload, typ, err := c.roundTrip(ctx, conn, protocol.MsgHello, func(id uint64) any {
		return protocol.Hello{ID: id, Version: protocol.Version, Name: "coordinator"}
	})
	if err != nil {
		c.drop(conn)
		return nil, err
	}
	if typ != protocol.MsgHelloAck {
		c.drop(conn)
		return nil, fmt.Errorf("%w: shard %d: unexpected handshake reply type %d", ErrTransport, c.Shard, typ)
	}
	var ack protocol.HelloAck
	if err := json.Unmarshal(payload, &ack); err != nil || ack.Version != protocol.Version {
		c.drop(conn)
		return nil, fmt.Errorf("%w: shard %d: bad handshake ack", ErrTransport, c.Shard)
	}
	return conn, nil
}

// drop discards conn if it is still the current connection.
func (c *Client) drop(conn *protocol.Conn) {
	c.mu.Lock()
	if c.conn == conn {
		c.conn = nil
	}
	c.mu.Unlock()
	conn.Close()
}

// readLoop demuxes responses to their pending calls until the connection
// dies, then fails everything still pending as a transport error.
func (c *Client) readLoop(conn *protocol.Conn) {
	for {
		typ, payload, err := conn.Recv()
		if err != nil {
			c.mu.Lock()
			if c.conn == conn {
				c.conn = nil
			}
			stranded := c.pending
			c.pending = map[uint64]chan response{}
			c.mu.Unlock()
			terr := fmt.Errorf("%w: shard %d: connection lost: %v", ErrTransport, c.Shard, err)
			for _, ch := range stranded {
				ch <- response{err: terr}
			}
			return
		}
		var head struct {
			ID uint64 `json:"id"`
		}
		if err := json.Unmarshal(payload, &head); err != nil {
			continue // unmatchable frame; the caller's deadline cleans up
		}
		c.mu.Lock()
		ch, ok := c.pending[head.ID]
		if ok {
			delete(c.pending, head.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- response{typ: typ, payload: payload}
		}
	}
}

// roundTrip issues one request built by mk (which receives the assigned
// ID) and waits for its response, honoring ctx by sending a Cancel frame
// and waiting briefly for the worker's acknowledgment.
func (c *Client) roundTrip(ctx context.Context, conn *protocol.Conn, typ byte, mk func(id uint64) any) ([]byte, byte, error) {
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	ch := make(chan response, 1)
	c.pending[id] = ch
	c.mu.Unlock()
	abandon := func() {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
	}
	if err := conn.Send(typ, mk(id)); err != nil {
		abandon()
		c.drop(conn)
		return nil, 0, fmt.Errorf("%w: shard %d: send: %v", ErrTransport, c.Shard, err)
	}
	select {
	case resp := <-ch:
		return c.finish(resp)
	case <-ctx.Done():
		// Tell the worker; it cancels the query and still replies, so wait
		// a bounded moment for the slot to resolve cleanly.
		conn.Send(protocol.MsgCancel, protocol.Cancel{ID: id})
		select {
		case resp := <-ch:
			if _, _, err := c.finish(resp); err != nil {
				return nil, 0, err
			}
			return nil, 0, ctx.Err()
		case <-time.After(cancelGrace):
			abandon()
			return nil, 0, ctx.Err()
		}
	}
}

func (c *Client) finish(resp response) ([]byte, byte, error) {
	if resp.err != nil {
		return nil, 0, resp.err
	}
	if resp.typ == protocol.MsgError {
		var em protocol.ErrorMsg
		if err := json.Unmarshal(resp.payload, &em); err != nil {
			return nil, 0, fmt.Errorf("%w: shard %d: malformed error frame", ErrTransport, c.Shard)
		}
		return nil, 0, &RemoteError{Shard: c.Shard, Code: em.Code, Msg: em.Msg}
	}
	return resp.payload, resp.typ, nil
}

// call dials if needed and round-trips one request.
func (c *Client) call(ctx context.Context, typ byte, mk func(id uint64) any) ([]byte, byte, error) {
	conn, err := c.ensure(ctx)
	if err != nil {
		return nil, 0, err
	}
	return c.roundTrip(ctx, conn, typ, mk)
}

// Load stages a source table on the worker.
func (c *Client) Load(ctx context.Context, m protocol.Load) (int64, error) {
	payload, _, err := c.call(ctx, protocol.MsgLoad, func(id uint64) any { m.ID = id; return m })
	if err != nil {
		return 0, err
	}
	var res protocol.Result
	if err := json.Unmarshal(payload, &res); err != nil {
		return 0, fmt.Errorf("%w: shard %d: malformed load result", ErrTransport, c.Shard)
	}
	return res.Rows, nil
}

// Partition assigns the worker its slice of a staged table.
func (c *Client) Partition(ctx context.Context, m protocol.Partition) (int64, error) {
	payload, _, err := c.call(ctx, protocol.MsgPartition, func(id uint64) any { m.ID = id; return m })
	if err != nil {
		return 0, err
	}
	var res protocol.Result
	if err := json.Unmarshal(payload, &res); err != nil {
		return 0, fmt.Errorf("%w: shard %d: malformed partition result", ErrTransport, c.Shard)
	}
	return res.Rows, nil
}

// Ping round-trips a liveness probe.
func (c *Client) Ping(ctx context.Context) error {
	_, _, err := c.call(ctx, protocol.MsgPing, func(id uint64) any { return protocol.Ping{ID: id} })
	return err
}

// Stats round-trips a counters probe. The healer uses it both as a
// liveness check (it redials like any call) and to see whether the
// worker still holds its staged partition or came back blank.
func (c *Client) Stats(ctx context.Context) (protocol.WorkerStats, error) {
	payload, typ, err := c.call(ctx, protocol.MsgStats, func(id uint64) any { return protocol.Stats{ID: id} })
	if err != nil {
		return protocol.WorkerStats{}, err
	}
	if typ != protocol.MsgStatsAck {
		return protocol.WorkerStats{}, fmt.Errorf("%w: shard %d: unexpected stats reply type %d", ErrTransport, c.Shard, typ)
	}
	var st protocol.WorkerStats
	if err := json.Unmarshal(payload, &st); err != nil {
		return protocol.WorkerStats{}, fmt.Errorf("%w: shard %d: malformed stats reply", ErrTransport, c.Shard)
	}
	return st, nil
}

// Query executes one pushed query on the worker's partition and decodes
// the partial result. The shard/rpc failpoint fires once per attempt.
func (c *Client) Query(ctx context.Context, table, mode string, q exec.Query, timeout time.Duration) (*storage.Table, error) {
	if err := fpRPC.Hit(); err != nil {
		// Injected RPC faults impersonate transport errors so they drive
		// the same retry-then-degrade path real network failures take.
		return nil, fmt.Errorf("%w: shard %d: %w", ErrTransport, c.Shard, err)
	}
	payload, _, err := c.call(ctx, protocol.MsgQuery, func(id uint64) any {
		return protocol.Query{
			ID:        id,
			Table:     table,
			Mode:      mode,
			Query:     protocol.FromQuery(q),
			TimeoutMS: timeout.Milliseconds(),
		}
	})
	if err != nil {
		return nil, err
	}
	var res protocol.Result
	if err := json.Unmarshal(payload, &res); err != nil {
		return nil, fmt.Errorf("%w: shard %d: malformed query result", ErrTransport, c.Shard)
	}
	t, err := res.Table.ToTable()
	if err != nil {
		return nil, fmt.Errorf("%w: shard %d: undecodable result table: %v", ErrTransport, c.Shard, err)
	}
	return t, nil
}
