package shard

import (
	"context"
	"errors"
	"sort"
	"time"

	"dex/internal/protocol"
)

// Fleet healing. The coordinator keeps the partition spec, the Load that
// staged the source, and the static per-partition row counts (Bootstrap's
// provenance), so any shard's slice can be rebuilt on any worker without
// shipping rows: Load regenerates the seeded source, Partition keeps the
// owned slices. A background healer drives the per-shard state machine
//
//	healthy ──(transport / unknown-table past retries)──▶ lost
//	lost ──(worker answers again)──▶ restaging ──▶ healthy
//	lost ──(down past RepartitionAfter)──▶ repartitioned
//	repartitioned ──(worker answers again)──▶ restaging ──▶ healthy
//
// with two invariants: non-healthy shards are never queried, and
// ownership of a partition moves only after the receiving worker
// confirms it holds the rows — so at every instant at most one queried
// worker holds any partition, and coverage (computed from the placement
// map) never overstates what a query actually touched. Both heal shapes
// end at coverage exactly 1.0; the dip in between is reported honestly.

// ShardState is one shard's position in the healing state machine.
type ShardState uint8

const (
	// StateHealthy: the worker holds its owned partitions and is queried.
	StateHealthy ShardState = iota
	// StateLost: the shard failed past retries; queries skip it until the
	// healer re-stages it or re-partitions its rows away.
	StateLost
	// StateRestaging: a staging RPC is in flight for this worker (initial
	// re-stage, adoption, or rejoin shrink); skipped by queries because
	// its registered slice is mid-swap.
	StateRestaging
	// StateRepartitioned: the worker stayed down past RepartitionAfter
	// and survivors adopted its partitions; it owns nothing until it
	// comes back and rejoins.
	StateRepartitioned
)

// String names the state (the dex_shard_state gauge renders the ordinal).
func (s ShardState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateLost:
		return "lost"
	case StateRestaging:
		return "restaging"
	case StateRepartitioned:
		return "repartitioned"
	default:
		return "unknown"
	}
}

// errShardNotHealthy marks a shard the scatter skipped because the
// healer owns it; it degrades the answer like any lost shard (unless the
// shard owns no rows) but never re-triggers failure classification.
var errShardNotHealthy = errors.New("shard not healthy, awaiting heal")

// probeTimeout bounds the healer's Stats probe and the best-effort stats
// refresh; stageTimeout bounds one Load+Partition staging sequence.
const (
	probeTimeout = 2 * time.Second
	stageTimeout = 30 * time.Second
)

// markLost flips a healthy shard to lost. Only Execute's failure
// classification calls it; every transition out of lost belongs to the
// healer goroutine.
func (c *Coordinator) markLost(i int) {
	if !c.cfg.Heal {
		return
	}
	c.mu.Lock()
	if c.states[i] == StateHealthy {
		c.states[i] = StateLost
		c.lostSince[i] = time.Now()
	}
	c.mu.Unlock()
}

// ShardStates returns the per-shard state vector.
func (c *Coordinator) ShardStates() []ShardState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]ShardState(nil), c.states...)
}

// Coverage returns the fraction of placed rows a query issued now would
// cover: Σ placement over healthy shards / total. Exactly 1.0 on a
// healed fleet.
func (c *Coordinator) Coverage() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.coverageLocked()
}

func (c *Coordinator) coverageLocked() float64 {
	if c.total == 0 {
		return 1
	}
	var covered int64
	for i, st := range c.states {
		if st == StateHealthy {
			covered += c.placement[i]
		}
	}
	return float64(covered) / float64(c.total)
}

// healLoop is the healer goroutine: one pass over the fleet per tick.
func (c *Coordinator) healLoop() {
	defer c.healWG.Done()
	tick := time.NewTicker(c.cfg.HealInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.healStop:
			return
		case <-tick.C:
			c.healTick()
		}
	}
}

// healTick resolves every non-healthy shard it can this pass. Work is
// sequential: the healer is the only goroutine that mutates ownership,
// which keeps the placement map's invariants single-writer.
func (c *Coordinator) healTick() {
	c.mu.Lock()
	states := append([]ShardState(nil), c.states...)
	c.mu.Unlock()
	for i, st := range states {
		select {
		case <-c.healStop:
			return
		default:
		}
		switch st {
		case StateLost:
			c.healLost(i)
		case StateRepartitioned:
			c.healRejoin(i)
		}
	}
}

// healLost probes a lost shard. A reachable worker that still holds its
// exact slice just reattaches (the loss was a transient blip); a
// reachable blank one is re-staged; an unreachable one is re-partitioned
// once it has been down past the threshold.
func (c *Coordinator) healLost(i int) {
	ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
	st, err := c.clients[i].Stats(ctx)
	cancel()
	if err != nil {
		c.maybeRepartition(i)
		return
	}
	c.mu.Lock()
	expect := c.expectedRowsLocked(i)
	table := c.cfg.Spec.Table
	c.mu.Unlock()
	if expect > 0 {
		for _, t := range st.Tables {
			if t.Name == table && t.Rows == expect {
				c.mu.Lock()
				reattached := c.states[i] == StateLost
				if reattached {
					c.states[i] = StateHealthy
				}
				c.mu.Unlock()
				if reattached {
					c.countHeal("reattach")
				}
				return
			}
		}
	}
	c.restage(i)
}

// restage rebuilds shard i's owned partitions on its (re)started worker.
func (c *Coordinator) restage(i int) {
	c.mu.Lock()
	if c.states[i] != StateLost {
		c.mu.Unlock()
		return
	}
	if len(c.owned[i]) == 0 {
		// Owns nothing — that is the repartitioned condition; the rejoin
		// path will hand its home partition back.
		c.states[i] = StateRepartitioned
		c.mu.Unlock()
		return
	}
	c.states[i] = StateRestaging
	load := c.load
	part := c.partitionMsgLocked(i)
	expect := c.expectedRowsLocked(i)
	c.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), stageTimeout)
	defer cancel()
	rows, err := c.stage(ctx, i, load, part)
	ok := err == nil && rows == expect
	c.mu.Lock()
	if ok {
		c.states[i] = StateHealthy
	} else {
		// Back to lost; lostSince keeps its original clock so the
		// repartition threshold measures from the first failure.
		c.states[i] = StateLost
	}
	c.mu.Unlock()
	if ok {
		c.countHeal("restage")
	}
}

// stage runs the Load+Partition staging sequence against one worker.
func (c *Coordinator) stage(ctx context.Context, i int, load protocol.Load, part protocol.Partition) (int64, error) {
	if _, err := c.clients[i].Load(ctx, load); err != nil {
		return 0, err
	}
	return c.clients[i].Partition(ctx, part)
}

// maybeRepartition moves a long-dead shard's partitions onto survivors,
// one adoption at a time, returning fleet coverage to 1.0 without the
// dead worker.
func (c *Coordinator) maybeRepartition(i int) {
	if c.cfg.RepartitionAfter < 0 {
		return
	}
	c.mu.Lock()
	if c.states[i] != StateLost || time.Since(c.lostSince[i]) < c.cfg.RepartitionAfter {
		c.mu.Unlock()
		return
	}
	orphans := append([]int(nil), c.owned[i]...)
	var healthy []int
	for j, st := range c.states {
		if j != i && st == StateHealthy {
			healthy = append(healthy, j)
		}
	}
	if len(orphans) == 0 {
		c.states[i] = StateRepartitioned
		c.mu.Unlock()
		return
	}
	if len(healthy) == 0 {
		c.mu.Unlock()
		return // nobody to adopt; keep waiting for the worker instead
	}
	c.mu.Unlock()

	moved := 0
	for n, p := range orphans {
		if c.adopt(healthy[n%len(healthy)], i, p) {
			moved++
		}
	}
	if moved == len(orphans) {
		c.mu.Lock()
		if c.states[i] == StateLost {
			c.states[i] = StateRepartitioned
		}
		c.mu.Unlock()
		c.countHeal("repartition")
	}
}

// adopt moves partition p from shard `from` (lost) onto shard j: the
// adopter leaves query rotation while its worker re-gathers the enlarged
// slice, and ownership (and so coverage) moves only after the worker
// confirms the expected row count.
func (c *Coordinator) adopt(j, from, p int) bool {
	c.mu.Lock()
	if c.states[j] != StateHealthy {
		c.mu.Unlock()
		return false
	}
	c.states[j] = StateRestaging
	newOwned := append(append([]int(nil), c.owned[j]...), p)
	sort.Ints(newOwned)
	part := c.partitionMsgFor(j, newOwned)
	var expect int64
	for _, q := range newOwned {
		expect += c.partRows[q]
	}
	c.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), stageTimeout)
	rows, err := c.clients[j].Partition(ctx, part)
	cancel()
	ok := err == nil && rows == expect
	c.mu.Lock()
	if ok {
		c.owned[j] = newOwned
		c.placement[j] += c.partRows[p]
		c.owned[from] = removeInt(c.owned[from], p)
		c.placement[from] -= c.partRows[p]
		c.states[j] = StateHealthy
	} else {
		// The adopter's registered slice is now unknown (the Partition may
		// or may not have landed); hand it to the lost path, which rebuilds
		// exactly its still-unchanged owned set.
		c.states[j] = StateLost
		c.lostSince[j] = time.Now()
	}
	c.mu.Unlock()
	return ok
}

// healRejoin probes a repartitioned worker; once it answers again the
// healer hands back its home partition: the current holder shrinks first
// (ownership and coverage move with the confirmation), then the
// returning worker stages its slice — at no instant do two queried
// workers hold the same partition.
func (c *Coordinator) healRejoin(i int) {
	ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
	_, err := c.clients[i].Stats(ctx)
	cancel()
	if err != nil {
		return // still down
	}
	home := i // Bootstrap's 1:1 layout: partition index i is shard i's home
	c.mu.Lock()
	if c.states[i] != StateRepartitioned {
		c.mu.Unlock()
		return
	}
	holder := -1
	for j, ow := range c.owned {
		for _, p := range ow {
			if p == home {
				holder = j
				break
			}
		}
	}
	if holder == i {
		// Already ours on paper (a previous rejoin died mid-stage); let
		// the lost path finish the staging.
		c.states[i] = StateLost
		c.lostSince[i] = time.Now()
		c.mu.Unlock()
		return
	}
	if holder >= 0 {
		if c.states[holder] != StateHealthy {
			c.mu.Unlock()
			return // holder busy; try again next tick
		}
		c.states[holder] = StateRestaging
		shrunk := removeInt(append([]int(nil), c.owned[holder]...), home)
		part := c.partitionMsgFor(holder, shrunk)
		var expect int64
		for _, q := range shrunk {
			expect += c.partRows[q]
		}
		c.mu.Unlock()

		sctx, scancel := context.WithTimeout(context.Background(), stageTimeout)
		rows, err := c.clients[holder].Partition(sctx, part)
		scancel()
		c.mu.Lock()
		if err != nil || rows != expect {
			c.states[holder] = StateLost
			c.lostSince[holder] = time.Now()
			c.mu.Unlock()
			return
		}
		c.owned[holder] = shrunk
		c.placement[holder] -= c.partRows[home]
		c.states[holder] = StateHealthy
	}
	// Ownership transfers to the returning worker before it holds the
	// rows; it stays out of query rotation (Restaging) until staged, so
	// coverage dips honestly rather than overstating.
	c.owned[i] = []int{home}
	c.placement[i] = c.partRows[home]
	c.states[i] = StateRestaging
	load := c.load
	part := c.partitionMsgLocked(i)
	expect := c.partRows[home]
	c.mu.Unlock()

	sctx, scancel := context.WithTimeout(context.Background(), stageTimeout)
	defer scancel()
	rows, err := c.stage(sctx, i, load, part)
	ok := err == nil && rows == expect
	c.mu.Lock()
	if ok {
		c.states[i] = StateHealthy
	} else {
		c.states[i] = StateLost
		c.lostSince[i] = time.Now()
	}
	c.mu.Unlock()
	if ok {
		c.countHeal("rejoin")
	}
}

// expectedRowsLocked is Σ partRows over shard i's owned partitions.
// Callers hold c.mu.
func (c *Coordinator) expectedRowsLocked(i int) int64 {
	var n int64
	for _, p := range c.owned[i] {
		n += c.partRows[p]
	}
	return n
}

// partitionMsgLocked builds shard i's Partition message from its current
// owned set. Callers hold c.mu.
func (c *Coordinator) partitionMsgLocked(i int) protocol.Partition {
	return c.partitionMsgFor(i, append([]int(nil), c.owned[i]...))
}

// partitionMsgFor builds a Partition message assigning shard i the given
// owned set.
func (c *Coordinator) partitionMsgFor(i int, owned []int) protocol.Partition {
	return protocol.Partition{
		Table:  c.cfg.Spec.Table,
		Column: c.cfg.Spec.Column,
		Scheme: c.cfg.Spec.Scheme.String(),
		Index:  i,
		Count:  c.cfg.Spec.Shards,
		Bounds: c.cfg.Spec.Bounds,
		Owned:  owned,
	}
}

func (c *Coordinator) countHeal(kind string) {
	c.met.mu.Lock()
	c.met.heals[kind]++
	c.met.mu.Unlock()
}

func removeInt(s []int, v int) []int {
	out := s[:0]
	for _, x := range s {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}
