package shard_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dex/internal/core"
	"dex/internal/protocol"
	"dex/internal/shard"
	"dex/internal/sqlparse"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func fleetCount(t *testing.T, f *shard.LocalFleet) (shard.Result, error) {
	t.Helper()
	st, err := sqlparse.Parse("SELECT count(*) FROM sales")
	if err != nil {
		t.Fatal(err)
	}
	return f.Coord.Execute(context.Background(), st.Table, st.Query, core.Exact)
}

// TestFleetHealRestage: kill a worker, restart it blank, and watch the
// healer re-stage its partition — coverage returns to exactly 1.0 and
// degraded answers stop, without touching the coordinator.
func TestFleetHealRestage(t *testing.T) {
	const rows = 9_000
	ctx := context.Background()
	f, err := shard.StartLocalFleet(ctx, shard.FleetConfig{
		Shards: 3, Rows: rows, Seed: 5,
		Heal: true, HealInterval: 20 * time.Millisecond, RepartitionAfter: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	f.KillShard(0)
	res, err := fleetCount(t, f)
	if err != nil {
		t.Fatalf("degraded query must still answer: %v", err)
	}
	if !res.Degraded || res.Coverage >= 1 {
		t.Fatalf("killed shard must degrade: degraded=%v coverage=%v", res.Degraded, res.Coverage)
	}

	if err := f.RestartShard(0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "coverage to heal to 1.0", func() bool {
		return f.Coord.Coverage() == 1
	})

	res, err = fleetCount(t, f)
	if err != nil {
		t.Fatalf("healed fleet query: %v", err)
	}
	if res.Degraded || res.Coverage != 1 {
		t.Fatalf("healed fleet must answer fully: degraded=%v coverage=%v", res.Degraded, res.Coverage)
	}
	if got := res.Table.Column(0).Value(0).AsInt(); got != rows {
		t.Fatalf("healed count(*) = %d, want %d", got, rows)
	}
	snap := f.Coord.Snapshot()
	if snap.Heals["restage"] == 0 {
		t.Fatalf("heal counters missed the restage: %v", snap.Heals)
	}
	for _, s := range snap.Shards {
		if s.State != "healthy" {
			t.Fatalf("shard %d state %q after heal, want healthy", s.Shard, s.State)
		}
	}
}

// TestFleetHealRepartitionAndRejoin: a worker that stays down past the
// threshold has its partition re-partitioned onto survivors (coverage
// back to 1.0 with the worker still dead), and when it finally returns
// it rejoins: the adopter shrinks first, then the returning worker
// stages its home slice — placement ends exactly where bootstrap put it.
func TestFleetHealRepartitionAndRejoin(t *testing.T) {
	const rows = 9_000
	ctx := context.Background()
	f, err := shard.StartLocalFleet(ctx, shard.FleetConfig{
		Shards: 3, Rows: rows, Seed: 6,
		Heal: true, HealInterval: 20 * time.Millisecond, RepartitionAfter: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	base := f.Coord.Snapshot()

	f.KillShard(2)
	if res, err := fleetCount(t, f); err != nil || !res.Degraded {
		t.Fatalf("killed shard must degrade first: res=%+v err=%v", res, err)
	}
	waitFor(t, 10*time.Second, "repartition to restore coverage", func() bool {
		return f.Coord.Coverage() == 1
	})

	// Full answers with the worker still dead: survivors adopted its rows.
	res, err := fleetCount(t, f)
	if err != nil {
		t.Fatalf("repartitioned fleet query: %v", err)
	}
	if res.Degraded || res.Coverage != 1 {
		t.Fatalf("repartitioned fleet must answer fully: degraded=%v coverage=%v", res.Degraded, res.Coverage)
	}
	if got := res.Table.Column(0).Value(0).AsInt(); got != rows {
		t.Fatalf("repartitioned count(*) = %d, want %d", got, rows)
	}
	snap := f.Coord.Snapshot()
	if snap.Heals["repartition"] == 0 {
		t.Fatalf("heal counters missed the repartition: %v", snap.Heals)
	}
	if st := snap.Shards[2].State; st != "repartitioned" {
		t.Fatalf("dead shard state %q, want repartitioned", st)
	}
	if snap.Shards[2].Rows != 0 {
		t.Fatalf("repartitioned shard still places %d rows", snap.Shards[2].Rows)
	}

	// The worker comes back: it gets its home partition back from the
	// adopter and the placement map returns to the bootstrap layout.
	if err := f.RestartShard(2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "rejoin to restore bootstrap placement", func() bool {
		s := f.Coord.Snapshot()
		for i, sh := range s.Shards {
			if sh.State != "healthy" || sh.Rows != base.Shards[i].Rows {
				return false
			}
		}
		return true
	})
	res, err = fleetCount(t, f)
	if err != nil || res.Degraded || res.Coverage != 1 {
		t.Fatalf("rejoined fleet must answer fully: res=%+v err=%v", res, err)
	}
	if got := res.Table.Column(0).Value(0).AsInt(); got != rows {
		t.Fatalf("rejoined count(*) = %d, want %d", got, rows)
	}
	if h := f.Coord.Snapshot().Heals; h["rejoin"] == 0 {
		t.Fatalf("heal counters missed the rejoin: %v", h)
	}
}

// TestFleetUnknownTableDegradesNotFails pins the retry-misclassification
// fix: a blank restarted worker answers with the typed unknown-table
// error, which is non-retryable (no attempts burned) and degrades the
// answer instead of failing the whole query as a user error.
func TestFleetUnknownTableDegradesNotFails(t *testing.T) {
	if (&shard.RemoteError{Code: protocol.CodeUnknownTable}).Retryable() {
		t.Fatal("unknown_table must not be retryable")
	}
	const rows = 6_000
	ctx := context.Background()
	// Healing off: the fleet must still classify the blank worker
	// honestly (degrade, don't fail, don't retry) even when nobody heals.
	f, err := shard.StartLocalFleet(ctx, shard.FleetConfig{Shards: 2, Rows: rows, Seed: 7, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap := f.Coord.Snapshot()

	f.KillShard(1)
	if err := f.RestartShard(1); err != nil {
		t.Fatal(err)
	}
	// The first query may burn one retry on the stale connection the kill
	// left behind (a real transport error) before redialing into the blank
	// worker; that is correct. What must NOT happen is the unknown-table
	// answer itself burning retries, so measure the delta on the second
	// query, which runs over the live redialed connection.
	res, err := fleetCount(t, f)
	if err != nil {
		t.Fatalf("blank worker must degrade, not fail the query: %v", err)
	}
	if !res.Degraded {
		t.Fatal("blank worker must mark the answer degraded")
	}
	survivors := snap.Rows - snap.Shards[1].Rows
	if got := res.Table.Column(0).Value(0).AsInt(); got != survivors {
		t.Fatalf("degraded count(*) = %d, want surviving rows %d", got, survivors)
	}
	before := f.Coord.Snapshot().Shards[1].Retries
	if res, err = fleetCount(t, f); err != nil || !res.Degraded {
		t.Fatalf("second degraded query: res=%+v err=%v", res, err)
	}
	if after := f.Coord.Snapshot().Shards[1].Retries; after != before {
		t.Fatalf("unknown_table burned %d retries, want 0 (non-retryable)", after-before)
	}
}

// TestFleetPlacementRace drives concurrent queries, snapshots and
// kill/restart/heal cycles under the race detector, asserting the
// placement-map invariants the healer must preserve: partitions are
// owned by exactly one shard, per-shard placement is the sum of its
// owned partitions' static row counts, and the fleet total never drifts.
func TestFleetPlacementRace(t *testing.T) {
	const rows = 3_000
	ctx := context.Background()
	f, err := shard.StartLocalFleet(ctx, shard.FleetConfig{
		Shards: 3, Rows: rows, Seed: 8,
		Heal: true, HealInterval: 10 * time.Millisecond, RepartitionAfter: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	base := f.Coord.Snapshot()
	partRows := make([]int64, len(base.Shards))
	for i, s := range base.Shards {
		partRows[i] = s.Rows
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	report := func(format string, args ...any) {
		select {
		case errs <- fmt.Sprintf(format, args...):
		default:
		}
	}

	wg.Add(1)
	go func() { // query load
		defer wg.Done()
		for !stop.Load() {
			fleetCount(t, f)
		}
	}()
	wg.Add(1)
	go func() { // invariant checker
		defer wg.Done()
		for !stop.Load() {
			snap := f.Coord.Snapshot()
			var sum int64
			seen := map[int]int{}
			for _, s := range snap.Shards {
				sum += s.Rows
				var want int64
				for _, p := range s.Owned {
					want += partRows[p]
					seen[p]++
				}
				if s.Rows != want {
					report("shard %d places %d rows but owns partitions worth %d", s.Shard, s.Rows, want)
				}
			}
			if sum != snap.Rows {
				report("placement sum %d != total %d", sum, snap.Rows)
			}
			for p, n := range seen {
				if n > 1 {
					report("partition %d owned by %d shards", p, n)
				}
			}
			f.Coord.Coverage()
		}
	}()

	for cycle := 0; cycle < 3; cycle++ {
		f.KillShard(1)
		time.Sleep(150 * time.Millisecond) // past RepartitionAfter
		if err := f.RestartShard(1); err != nil {
			t.Fatal(err)
		}
		time.Sleep(250 * time.Millisecond) // let it rejoin
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
	waitFor(t, 10*time.Second, "final heal to 1.0", func() bool {
		return f.Coord.Coverage() == 1
	})
}
