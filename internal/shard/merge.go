package shard

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"dex/internal/exec"
	"dex/internal/storage"
)

// PlanKind classifies how a query's partials merge.
type PlanKind uint8

// Merge kinds.
const (
	// KindRows concatenates row partials (no aggregates) and re-applies
	// ORDER BY / LIMIT.
	KindRows PlanKind = iota
	// KindAgg merges aggregate partials with the COUNT/SUM/AVG/MIN/MAX
	// algebra, grouped or scalar.
	KindAgg
	// KindEstimates merges AQP / online-aggregation estimate tables
	// (estimate, ci95, sample_n) with the CI combination rules.
	KindEstimates
)

// Plan is one query's distribution plan: the rewritten query pushed to
// every shard, plus what the gather side must do with the partials.
type Plan struct {
	// Push is the query each shard executes against its partition.
	Push exec.Query
	// Orig is the original (star-expanded) query; its output names and
	// HAVING/ORDER BY/LIMIT tail apply to the merged result.
	Orig exec.Query
	Kind PlanKind

	// nGroup is how many leading columns of the pushed output are group
	// keys (KindAgg) or the single optional group column (KindEstimates).
	nGroup int
	// aggs are the original aggregate select items, in output order
	// (KindAgg); avgSrc[i] >= 0 points at the pushed COUNT partial paired
	// with item i's SUM partial when the item is an AVG.
	aggs []exec.SelectItem
	// src[i] is the pushed-output column index carrying item i's partial.
	src    []int
	avgSrc []int
	// estAgg is the single aggregate of an estimates query.
	estAgg exec.AggFunc
}

// PlanQuery builds the distribution plan for a star-expanded query.
// estimates selects the approx/online shape (the pushed query runs in
// the same approximate mode on each shard and returns estimate tables).
//
// LIMIT without ORDER BY on a row query is honored but — exactly as on a
// single node under parallel execution — which rows satisfy it is not
// deterministic across shard counts.
func PlanQuery(q exec.Query, estimates bool) (*Plan, error) {
	if len(q.Select) == 0 {
		return nil, exec.ErrEmptySelect
	}
	if estimates {
		// The worker validates the single-aggregate shape; the merge side
		// only needs to know which aggregate combines the estimates.
		p := &Plan{Push: q, Orig: q, Kind: KindEstimates}
		for _, s := range q.Select {
			if s.Agg != exec.AggNone {
				if p.estAgg != exec.AggNone {
					return nil, fmt.Errorf("shard: approximate queries merge exactly one aggregate")
				}
				p.estAgg = s.Agg
			}
		}
		if p.estAgg == exec.AggNone {
			return nil, fmt.Errorf("shard: approximate query needs an aggregate")
		}
		if len(q.GroupBy) > 0 {
			p.nGroup = 1
		}
		return p, nil
	}
	if !q.HasAggregates() {
		// Row query: push filter, projection and the ORDER BY/LIMIT tail
		// (per-shard top-k); the gather side concatenates and re-applies
		// the tail. HAVING without aggregates is invalid and left for the
		// worker to reject.
		push := q
		push.Having = q.Having
		return &Plan{Push: push, Orig: q, Kind: KindRows}, nil
	}
	// Aggregate query. The pushed select is
	//   [all GROUP BY columns] ++ [one or two partials per aggregate item]
	// with unique aliases, so AVG's SUM+COUNT expansion can never collide
	// with the query's own output names. HAVING/ORDER BY/LIMIT are not
	// pushed — they only make sense on the fully merged groups.
	p := &Plan{Orig: q, Kind: KindAgg, nGroup: len(q.GroupBy)}
	push := exec.Query{Where: q.Where, GroupBy: q.GroupBy}
	for gi, g := range q.GroupBy {
		push.Select = append(push.Select, exec.SelectItem{Col: g, As: fmt.Sprintf("g%d", gi)})
	}
	for i, item := range q.Select {
		if item.Agg == exec.AggNone {
			// Plain column: must be a GROUP BY column (the worker enforces
			// it too); the merge reads it from the group key.
			found := false
			for _, g := range q.GroupBy {
				if g == item.Col {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("column %q: %w", item.Col, exec.ErrMixedSelect)
			}
			continue
		}
		p.aggs = append(p.aggs, item)
		switch item.Agg {
		case exec.AggAvg:
			// AVG is not directly mergeable; ship SUM and the NULL-skipping
			// COUNT(col) instead and divide after the merge.
			p.src = append(p.src, len(push.Select))
			push.Select = append(push.Select, exec.SelectItem{Col: item.Col, Agg: exec.AggSum, As: fmt.Sprintf("p%ds", i)})
			p.avgSrc = append(p.avgSrc, len(push.Select))
			push.Select = append(push.Select, exec.SelectItem{Col: item.Col, Agg: exec.AggCount, As: fmt.Sprintf("p%dc", i)})
		default:
			p.src = append(p.src, len(push.Select))
			push.Select = append(push.Select, exec.SelectItem{Col: item.Col, Agg: item.Agg, As: fmt.Sprintf("p%d", i)})
			p.avgSrc = append(p.avgSrc, -1)
		}
	}
	p.Push = push
	return p, nil
}

// partialState folds one aggregate's per-shard partials. It mirrors
// exec's aggState monoid on the gather side of the wire: counts and sums
// add, MIN/MAX compare, and a NaN partial (an empty or all-NULL shard)
// contributes nothing.
type partialState struct {
	count int64
	sum   float64
	min   storage.Value
	max   storage.Value
	has   bool
}

func (s *partialState) fold(fn exec.AggFunc, v, avgCount storage.Value) {
	switch fn {
	case exec.AggCount:
		s.count += v.AsInt()
	case exec.AggSum:
		s.sum += v.AsFloat()
	case exec.AggAvg:
		s.sum += v.AsFloat()
		s.count += avgCount.AsInt()
	case exec.AggMin, exec.AggMax:
		if v.Typ == storage.TFloat && math.IsNaN(v.F) {
			return // empty partial: the shard had no non-NULL rows here
		}
		if !s.has {
			s.min, s.max, s.has = v, v, true
			return
		}
		if v.Compare(s.min) < 0 {
			s.min = v
		}
		if v.Compare(s.max) > 0 {
			s.max = v
		}
	}
}

func (s *partialState) result(fn exec.AggFunc) storage.Value {
	switch fn {
	case exec.AggCount:
		return storage.Int(s.count)
	case exec.AggSum:
		return storage.Float(s.sum)
	case exec.AggAvg:
		if s.count == 0 {
			return storage.Float(math.NaN())
		}
		return storage.Float(s.sum / float64(s.count))
	case exec.AggMin:
		if !s.has {
			return storage.Float(math.NaN())
		}
		return s.min
	case exec.AggMax:
		if !s.has {
			return storage.Float(math.NaN())
		}
		return s.max
	default:
		return storage.Value{}
	}
}

func (s *partialState) resultType(fn exec.AggFunc) storage.Type {
	switch fn {
	case exec.AggCount:
		return storage.TInt
	case exec.AggMin, exec.AggMax:
		if s.has {
			return s.min.Typ
		}
		return storage.TFloat
	default:
		return storage.TFloat
	}
}

// mergeEntry is one merged group.
type mergeEntry struct {
	key    []storage.Value
	states []partialState
}

// Merge combines the per-shard partial tables into the final result and
// applies the original query's HAVING/ORDER BY/LIMIT tail. parts holds
// the surviving shards' outputs (possibly fewer than the fleet under
// degradation); at least one is required.
//
// Merged group order is canonical — ascending by group-key tuple — not
// the single-node first-seen order, which no distribution could
// reproduce. An explicit ORDER BY behaves identically on both paths.
func (p *Plan) Merge(parts []*storage.Table) (*storage.Table, error) {
	// Zero-column partials are empty shards that could not run a sampling
	// estimator; they contribute nothing.
	kept := parts[:0:0]
	for _, t := range parts {
		if t.NumCols() > 0 {
			kept = append(kept, t)
		}
	}
	parts = kept
	if len(parts) == 0 {
		return nil, fmt.Errorf("shard: no partial results to merge")
	}
	switch p.Kind {
	case KindRows:
		return p.mergeRows(parts)
	case KindAgg:
		return p.mergeAgg(parts)
	case KindEstimates:
		return p.mergeEstimates(parts)
	default:
		return nil, fmt.Errorf("shard: unknown plan kind %d", p.Kind)
	}
}

// mergeRows concatenates row partials and re-applies the tail.
func (p *Plan) mergeRows(parts []*storage.Table) (*storage.Table, error) {
	out, err := concatTables(parts)
	if err != nil {
		return nil, err
	}
	tail := exec.Query{Select: p.Orig.Select, OrderBy: p.Orig.OrderBy, Limit: p.Orig.Limit}
	return exec.Finish(out, tail)
}

func concatTables(parts []*storage.Table) (*storage.Table, error) {
	first := parts[0]
	out, err := storage.NewTable(first.Name(), first.Schema())
	if err != nil {
		return nil, err
	}
	for _, t := range parts {
		if t.NumCols() != first.NumCols() {
			return nil, fmt.Errorf("shard: partial schema mismatch: %d vs %d columns", t.NumCols(), first.NumCols())
		}
		for r := 0; r < t.NumRows(); r++ {
			if err := out.AppendRow(t.Row(r)...); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// mergeAgg merges grouped or scalar aggregate partials.
func (p *Plan) mergeAgg(parts []*storage.Table) (*storage.Table, error) {
	groups := map[string]*mergeEntry{}
	var order []string
	var keyBuf strings.Builder
	for _, t := range parts {
		if t.NumCols() != len(p.Push.Select) {
			return nil, fmt.Errorf("shard: partial has %d columns, plan expects %d", t.NumCols(), len(p.Push.Select))
		}
		for r := 0; r < t.NumRows(); r++ {
			keyBuf.Reset()
			for g := 0; g < p.nGroup; g++ {
				keyBuf.WriteString(t.Column(g).Value(r).String())
				keyBuf.WriteByte('\x00')
			}
			k := keyBuf.String()
			e, ok := groups[k]
			if !ok {
				e = &mergeEntry{states: make([]partialState, len(p.aggs))}
				for g := 0; g < p.nGroup; g++ {
					e.key = append(e.key, t.Column(g).Value(r))
				}
				groups[k] = e
				order = append(order, k)
			}
			for i, item := range p.aggs {
				var avgCount storage.Value
				if p.avgSrc[i] >= 0 {
					avgCount = t.Column(p.avgSrc[i]).Value(r)
				}
				e.states[i].fold(item.Agg, t.Column(p.src[i]).Value(r), avgCount)
			}
		}
	}
	if p.nGroup == 0 && len(order) == 0 {
		// Scalar aggregate over zero partial rows cannot happen (every
		// shard returns one row), but guard against a malformed fleet.
		return nil, fmt.Errorf("shard: scalar aggregate produced no partial rows")
	}
	sortEntries(groups, order)

	// Output schema follows the original select list; MIN/MAX take their
	// type from the merged value (TFloat NaN when every shard was empty,
	// matching the single-node scalar path).
	schema := make(storage.Schema, len(p.Orig.Select))
	aggIdx := make([]int, len(p.Orig.Select))
	groupIdx := make([]int, len(p.Orig.Select))
	ai := 0
	for i, item := range p.Orig.Select {
		aggIdx[i], groupIdx[i] = -1, -1
		if item.Agg == exec.AggNone {
			for gi, g := range p.Orig.GroupBy {
				if g == item.Col {
					groupIdx[i] = gi
					break
				}
			}
			typ := storage.TString
			if len(order) > 0 {
				typ = groups[order[0]].key[groupIdx[i]].Typ
			}
			schema[i] = storage.Field{Name: item.Name(), Type: typ}
			continue
		}
		aggIdx[i] = ai
		typ := storage.TFloat
		switch item.Agg {
		case exec.AggCount:
			typ = storage.TInt
		case exec.AggMin, exec.AggMax:
			typ = storage.TFloat
			for _, k := range order {
				if st := &groups[k].states[ai]; st.has {
					typ = st.resultType(item.Agg)
					break
				}
			}
		}
		schema[i] = storage.Field{Name: item.Name(), Type: typ}
		ai++
	}
	cols := make([]storage.Column, len(schema))
	for i := range cols {
		cols[i] = storage.NewColumn(schema[i].Type)
	}
	for _, k := range order {
		e := groups[k]
		for i, item := range p.Orig.Select {
			var v storage.Value
			if gi := groupIdx[i]; gi >= 0 {
				v = e.key[gi]
			} else {
				v = e.states[aggIdx[i]].result(item.Agg)
			}
			switch schema[i].Type {
			case storage.TInt:
				v = storage.Int(v.AsInt())
			case storage.TFloat:
				v = storage.Float(v.AsFloat())
			}
			if err := cols[i].Append(v); err != nil {
				return nil, err
			}
		}
	}
	out, err := storage.FromColumns(parts[0].Name(), schema, cols)
	if err != nil {
		return nil, err
	}
	tail := exec.Query{Select: p.Orig.Select, GroupBy: p.Orig.GroupBy,
		Having: p.Orig.Having, OrderBy: p.Orig.OrderBy, Limit: p.Orig.Limit}
	return exec.Finish(out, tail)
}

// sortEntries orders merged group keys canonically (ascending by key
// tuple, Value.Compare per component).
func sortEntries(groups map[string]*mergeEntry, order []string) {
	sort.Slice(order, func(a, b int) bool {
		ka, kb := groups[order[a]].key, groups[order[b]].key
		for i := range ka {
			if c := ka[i].Compare(kb[i]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

// estEntry is one merged estimate group.
type estEntry struct {
	group storage.Value
	// est/ci accumulate per the aggregate's combination rule; n sums the
	// sample sizes; wsum accumulates sample-weighted means for AVG.
	est, ci, wsum, wci2 float64
	n                   int64
	has                 bool
}

// mergeEstimates merges approx/online estimate tables. Combination
// rules, per aggregate:
//
//   - COUNT, SUM: estimates add; shard samples are independent, so the
//     95% CIs combine in quadrature (sqrt of the summed squares).
//   - AVG: the fleet mean weights shard means by sample size (hash and
//     equi-depth range placement make sample size proportional to shard
//     population); the CI is the same weighted quadrature.
//   - MIN, MAX: the extreme of the shard estimates, with the widest
//     shard CI kept — conservative, and faithful to the single-node
//     estimator's ±Inf convention for sample extremes.
func (p *Plan) mergeEstimates(parts []*storage.Table) (*storage.Table, error) {
	first := parts[0]
	wantCols := p.nGroup + 3 // [group], estimate, ci95, sample_n
	if first.NumCols() != wantCols {
		return nil, fmt.Errorf("shard: estimate partial has %d columns, want %d", first.NumCols(), wantCols)
	}
	groups := map[string]*estEntry{}
	var order []string
	for _, t := range parts {
		if t.NumCols() != wantCols {
			return nil, fmt.Errorf("shard: estimate partial schema mismatch")
		}
		for r := 0; r < t.NumRows(); r++ {
			k := ""
			var gv storage.Value
			if p.nGroup == 1 {
				gv = t.Column(0).Value(r)
				k = gv.String()
			}
			e, ok := groups[k]
			if !ok {
				e = &estEntry{group: gv}
				groups[k] = e
				order = append(order, k)
			}
			est := t.Column(p.nGroup + 0).Value(r).AsFloat()
			ci := t.Column(p.nGroup + 1).Value(r).AsFloat()
			n := t.Column(p.nGroup + 2).Value(r).AsInt()
			if math.IsNaN(est) {
				continue // empty shard sample: no contribution
			}
			switch p.estAgg {
			case exec.AggCount, exec.AggSum:
				e.est += est
				e.ci = math.Sqrt(e.ci*e.ci + ci*ci)
			case exec.AggAvg:
				w := float64(n)
				e.wsum += w * est
				e.wci2 += w * w * ci * ci
			case exec.AggMin:
				if !e.has || est < e.est {
					e.est = est
				}
				e.ci = math.Max(e.ci, ci)
			case exec.AggMax:
				if !e.has || est > e.est {
					e.est = est
				}
				e.ci = math.Max(e.ci, ci)
			}
			e.n += n
			e.has = true
		}
	}
	sort.Slice(order, func(a, b int) bool {
		return groups[order[a]].group.Compare(groups[order[b]].group) < 0
	})
	out, err := storage.NewTable(first.Name(), first.Schema())
	if err != nil {
		return nil, err
	}
	for _, k := range order {
		e := groups[k]
		est, ci := e.est, e.ci
		if p.estAgg == exec.AggAvg {
			if e.n == 0 {
				est, ci = math.NaN(), math.NaN()
			} else {
				est = e.wsum / float64(e.n)
				ci = math.Sqrt(e.wci2) / float64(e.n)
			}
		}
		row := []storage.Value{}
		if p.nGroup == 1 {
			row = append(row, e.group)
		}
		row = append(row, storage.Float(est), storage.Float(ci), storage.Int(e.n))
		if err := out.AppendRow(row...); err != nil {
			return nil, err
		}
	}
	return out, nil
}
