package learn

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitErrors(t *testing.T) {
	if _, err := FitTree(nil, nil, Options{}); !errors.Is(err, ErrNoData) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := FitTree([][]float64{{1}}, []bool{true, false}, Options{}); !errors.Is(err, ErrNoData) {
		t.Errorf("len mismatch err = %v", err)
	}
	if _, err := FitTree([][]float64{{1}, {1, 2}}, []bool{true, false}, Options{}); !errors.Is(err, ErrRagged) {
		t.Errorf("ragged err = %v", err)
	}
}

func TestLearnsAxisAlignedSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var X [][]float64
	var y []bool
	for i := 0; i < 400; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10}
		X = append(X, x)
		y = append(y, x[0] > 5)
	}
	tree, err := FitTree(X, y, Options{MaxDepth: 4, MinLeaf: 5})
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10}
		if tree.Predict(x) != (x[0] > 5) {
			errs++
		}
	}
	if errs > 10 {
		t.Errorf("errors = %d/200", errs)
	}
}

func TestLearnsRectangle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inRect := func(x []float64) bool {
		return x[0] >= 3 && x[0] < 6 && x[1] >= 2 && x[1] < 7
	}
	var X [][]float64
	var y []bool
	for i := 0; i < 1500; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10}
		X = append(X, x)
		y = append(y, inRect(x))
	}
	tree, err := FitTree(X, y, Options{MaxDepth: 8, MinLeaf: 4})
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	const trials = 500
	for i := 0; i < trials; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10}
		if tree.Predict(x) != inRect(x) {
			errs++
		}
	}
	if errs > trials/10 {
		t.Errorf("rect errors = %d/%d", errs, trials)
	}
	// Region extraction should cover roughly the rectangle.
	regions := tree.PositiveRegions(Region{{0, 10}, {0, 10}})
	if len(regions) == 0 {
		t.Fatal("no positive regions")
	}
	covered := func(x []float64) bool {
		for _, r := range regions {
			if r.Contains(x) {
				return true
			}
		}
		return false
	}
	mismatch := 0
	for i := 0; i < trials; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10}
		if covered(x) != tree.Predict(x) {
			mismatch++
		}
	}
	if mismatch != 0 {
		t.Errorf("region cover disagrees with Predict on %d points", mismatch)
	}
}

func TestPureLabelsGiveLeaf(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	tree, err := FitTree(X, []bool{true, true, true, true}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Leaves() != 1 || tree.Depth() != 0 {
		t.Errorf("pure tree leaves=%d depth=%d", tree.Leaves(), tree.Depth())
	}
	if !tree.Predict([]float64{99}) {
		t.Error("all-positive tree should predict true")
	}
	tree2, _ := FitTree(X, []bool{false, false, false, false}, Options{})
	if tree2.Predict([]float64{1}) {
		t.Error("all-negative tree should predict false")
	}
}

func TestMinLeafRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var X [][]float64
	var y []bool
	for i := 0; i < 100; i++ {
		x := []float64{rng.Float64()}
		X = append(X, x)
		y = append(y, x[0] > 0.5)
	}
	tree, err := FitTree(X, y, Options{MaxDepth: 20, MinLeaf: 40})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() > 1 {
		t.Errorf("depth = %d with MinLeaf=40 on n=100", tree.Depth())
	}
}

func TestRegionString(t *testing.T) {
	r := Region{{1, 2}, {3, 4}}
	if r.String() == "" {
		t.Error("empty region string")
	}
	if !r.Contains([]float64{1.5, 3.5}) || r.Contains([]float64{2.5, 3.5}) {
		t.Error("region containment")
	}
}

func TestPositiveRegionsDefaultDomain(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}, {3}, {10}, {11}, {12}, {13}}
	y := []bool{false, false, false, false, true, true, true, true}
	tree, err := FitTree(X, y, Options{MinLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	regions := tree.PositiveRegions(nil)
	if len(regions) != 1 {
		t.Fatalf("regions = %v", regions)
	}
	if !regions[0].Contains([]float64{12}) || regions[0].Contains([]float64{1}) {
		t.Errorf("region = %v", regions[0])
	}
}

// Property: Predict agrees with the label-majority of the training points in
// the same extracted region-or-complement partition cell cannot be checked
// cheaply; instead verify Predict is deterministic and total.
func TestPredictTotalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var X [][]float64
	var y []bool
	for i := 0; i < 200; i++ {
		X = append(X, []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()})
		y = append(y, rng.Intn(2) == 0)
	}
	tree, err := FitTree(X, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b, c float64) bool {
		x := []float64{a, b, c}
		return tree.Predict(x) == tree.Predict(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
