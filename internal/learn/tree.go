// Package learn provides the small machine-learning primitives the
// user-interaction layer needs: a CART-style binary decision-tree
// classifier with Gini splitting, used by explore-by-example steering [18]
// to model user relevance feedback, plus extraction of the positive leaf
// regions as hyper-rectangles so a learned model can be decompiled back
// into a relational selection query.
package learn

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Package-level sentinel errors.
var (
	ErrNoData = errors.New("learn: empty training set")
	ErrRagged = errors.New("learn: feature vectors must share a length")
)

// Options bounds tree growth.
type Options struct {
	MaxDepth int // default 8
	MinLeaf  int // minimum samples per leaf, default 3
}

func (o *Options) fill() {
	if o.MaxDepth <= 0 {
		o.MaxDepth = 8
	}
	if o.MinLeaf <= 0 {
		o.MinLeaf = 3
	}
}

type node struct {
	feature   int
	threshold float64
	left      *node
	right     *node
	leaf      bool
	label     bool
	n         int
	npos      int
}

// Tree is a fitted binary classifier.
type Tree struct {
	root *node
	dims int
}

// FitTree trains a CART tree on features X and boolean labels y.
func FitTree(X [][]float64, y []bool, opt Options) (*Tree, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, ErrNoData
	}
	d := len(X[0])
	for _, x := range X {
		if len(x) != d {
			return nil, ErrRagged
		}
	}
	opt.fill()
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	t := &Tree{dims: d}
	t.root = grow(X, y, idx, opt, 0)
	return t, nil
}

func gini(npos, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(npos) / float64(n)
	return 2 * p * (1 - p)
}

func grow(X [][]float64, y []bool, idx []int, opt Options, depth int) *node {
	n := len(idx)
	npos := 0
	for _, i := range idx {
		if y[i] {
			npos++
		}
	}
	leaf := &node{leaf: true, label: npos*2 >= n && npos > 0, n: n, npos: npos}
	if depth >= opt.MaxDepth || n < 2*opt.MinLeaf || npos == 0 || npos == n {
		return leaf
	}
	// Best Gini split across features: sort once per feature, then a single
	// prefix scan evaluates every threshold in O(n) — O(n log n) per
	// feature per node overall.
	bestGain := 1e-12
	bestF, bestT := -1, 0.0
	parent := gini(npos, n)
	type pair struct {
		v   float64
		pos bool
	}
	pairs := make([]pair, n)
	for f := 0; f < len(X[0]); f++ {
		for j, i := range idx {
			pairs[j] = pair{v: X[i][f], pos: y[i]}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].v < pairs[b].v })
		lp := 0 // positives among the first ln values
		for ln := 1; ln < n; ln++ {
			if pairs[ln-1].pos {
				lp++
			}
			if pairs[ln].v == pairs[ln-1].v {
				continue
			}
			rn := n - ln
			if ln < opt.MinLeaf || rn < opt.MinLeaf {
				continue
			}
			rp := npos - lp
			gain := parent - (float64(ln)*gini(lp, ln)+float64(rn)*gini(rp, rn))/float64(n)
			if gain > bestGain {
				bestGain, bestF, bestT = gain, f, (pairs[ln].v+pairs[ln-1].v)/2
			}
		}
	}
	if bestF < 0 {
		return leaf
	}
	var li, ri []int
	for _, i := range idx {
		if X[i][bestF] < bestT {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	return &node{
		feature:   bestF,
		threshold: bestT,
		left:      grow(X, y, li, opt, depth+1),
		right:     grow(X, y, ri, opt, depth+1),
		n:         n,
		npos:      npos,
	}
}

// Predict classifies a feature vector.
func (t *Tree) Predict(x []float64) bool {
	n := t.root
	for !n.leaf {
		if x[n.feature] < n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.label
}

// Depth returns the tree's depth (a single leaf has depth 0).
func (t *Tree) Depth() int {
	var d func(n *node) int
	d = func(n *node) int {
		if n.leaf {
			return 0
		}
		l, r := d(n.left), d(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return d(t.root)
}

// Leaves returns the number of leaves.
func (t *Tree) Leaves() int {
	var c func(n *node) int
	c = func(n *node) int {
		if n.leaf {
			return 1
		}
		return c(n.left) + c(n.right)
	}
	return c(t.root)
}

// Range is a half-open interval [Lo, Hi).
type Range struct{ Lo, Hi float64 }

// Contains reports whether v lies in the range.
func (r Range) Contains(v float64) bool { return v >= r.Lo && v < r.Hi }

// Region is a hyper-rectangle, one Range per feature dimension.
type Region []Range

// Contains reports whether x lies in the region.
func (g Region) Contains(x []float64) bool {
	for i, r := range g {
		if !r.Contains(x[i]) {
			return false
		}
	}
	return true
}

// String renders the region.
func (g Region) String() string {
	s := ""
	for i, r := range g {
		if i > 0 {
			s += " ∧ "
		}
		s += fmt.Sprintf("x%d∈[%.3g,%.3g)", i, r.Lo, r.Hi)
	}
	return s
}

// PositiveRegions decompiles the tree into the union of hyper-rectangles
// its positive leaves cover, clipped to the given domain bounds. This is
// the query-extraction step of explore-by-example: the learned model
// becomes a disjunction of conjunctive range predicates.
func (t *Tree) PositiveRegions(domain Region) []Region {
	if len(domain) != t.dims {
		domain = make(Region, t.dims)
		for i := range domain {
			domain[i] = Range{Lo: math.Inf(-1), Hi: math.Inf(1)}
		}
	}
	var out []Region
	var walk func(n *node, box Region)
	walk = func(n *node, box Region) {
		if n.leaf {
			if n.label {
				out = append(out, append(Region(nil), box...))
			}
			return
		}
		lbox := append(Region(nil), box...)
		if n.threshold < lbox[n.feature].Hi {
			lbox[n.feature].Hi = n.threshold
		}
		rbox := append(Region(nil), box...)
		if n.threshold > rbox[n.feature].Lo {
			rbox[n.feature].Lo = n.threshold
		}
		walk(n.left, lbox)
		walk(n.right, rbox)
	}
	walk(t.root, domain)
	return out
}
