package sample

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUniformBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s, err := Uniform(rng, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 10 || s.BaseN != 100 {
		t.Fatalf("sample = %+v", s)
	}
	if s.Frac() != 0.1 {
		t.Errorf("frac = %v", s.Frac())
	}
	seen := map[int]bool{}
	for i, r := range s.Rows {
		if r < 0 || r >= 100 {
			t.Fatalf("row %d out of range", r)
		}
		if seen[r] {
			t.Fatalf("duplicate row %d", r)
		}
		seen[r] = true
		if s.Weights[i] != 10 {
			t.Errorf("weight = %v, want 10", s.Weights[i])
		}
	}
	if _, err := Uniform(rng, 5, 6); !errors.Is(err, ErrBadK) {
		t.Errorf("k>n err = %v", err)
	}
	if _, err := Uniform(rng, 5, 0); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0 err = %v", err)
	}
}

func TestUniformFrac(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s, err := UniformFrac(rng, 1000, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 250 {
		t.Errorf("rows = %d", len(s.Rows))
	}
	if _, err := UniformFrac(rng, 10, 0); !errors.Is(err, ErrBadFraction) {
		t.Error("frac=0 should error")
	}
	if _, err := UniformFrac(rng, 10, 1.5); !errors.Is(err, ErrBadFraction) {
		t.Error("frac>1 should error")
	}
	// frac=1 takes everything.
	s, _ = UniformFrac(rng, 10, 1)
	if len(s.Rows) != 10 {
		t.Errorf("full frac rows = %d", len(s.Rows))
	}
}

func TestUniformIsUnbiased(t *testing.T) {
	// Mean of HT SUM estimates over many resamples approaches the true sum.
	rng := rand.New(rand.NewSource(3))
	n := 500
	xs := make([]float64, n)
	truth := 0.0
	for i := range xs {
		xs[i] = rng.Float64() * 10
		truth += xs[i]
	}
	est := 0.0
	const reps = 300
	for r := 0; r < reps; r++ {
		s, err := Uniform(rng, n, 50)
		if err != nil {
			t.Fatal(err)
		}
		one := 0.0
		for i, row := range s.Rows {
			one += xs[row] * s.Weights[i]
		}
		est += one / reps
	}
	if rel := math.Abs(est-truth) / truth; rel > 0.02 {
		t.Errorf("mean estimate off by %.1f%%", rel*100)
	}
}

func TestBernoulli(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s, err := Bernoulli(rng, 10000, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) < 800 || len(s.Rows) > 1200 {
		t.Errorf("bernoulli size = %d, want ~1000", len(s.Rows))
	}
	for _, w := range s.Weights {
		if w != 10 {
			t.Fatalf("weight = %v", w)
		}
	}
	if _, err := Bernoulli(rng, 10, 0); !errors.Is(err, ErrBadFraction) {
		t.Error("p=0 should error")
	}
}

func TestStratifiedCoversRareGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// 9900 "big" rows, 100 "rare" rows.
	labels := make([]string, 10000)
	for i := range labels {
		if i < 100 {
			labels[i] = "rare"
		} else {
			labels[i] = "big"
		}
	}
	s, err := Stratified(rng, labels, 50)
	if err != nil {
		t.Fatal(err)
	}
	rare, big := 0, 0
	for i, r := range s.Rows {
		if labels[r] == "rare" {
			rare++
			if s.Weights[i] != 2 { // 100/50
				t.Errorf("rare weight = %v", s.Weights[i])
			}
		} else {
			big++
			if s.Weights[i] != 9900.0/50 {
				t.Errorf("big weight = %v", s.Weights[i])
			}
		}
	}
	if rare != 50 || big != 50 {
		t.Errorf("rare=%d big=%d, want 50/50", rare, big)
	}
	if _, err := Stratified(rng, labels, 0); !errors.Is(err, ErrBadK) {
		t.Error("perStratum=0 should error")
	}
}

func TestStratifiedSmallStratumTakenWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	labels := []string{"a", "a", "b"}
	s, err := Stratified(rng, labels, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 3 {
		t.Errorf("rows = %v", s.Rows)
	}
	for _, w := range s.Weights {
		if w != 1 {
			t.Errorf("weights = %v, want all 1", s.Weights)
		}
	}
}

func TestWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	weights := []float64{0, 0, 100, 0, 1}
	s, err := Weighted(rng, weights, 200)
	if err != nil {
		t.Fatal(err)
	}
	c2, c4 := 0, 0
	for _, r := range s.Rows {
		switch r {
		case 2:
			c2++
		case 4:
			c4++
		default:
			t.Fatalf("zero-weight row %d drawn", r)
		}
	}
	if c2 < 150 {
		t.Errorf("heavy row drawn %d/200", c2)
	}
	_ = c4
	if _, err := Weighted(rng, []float64{0, 0}, 5); !errors.Is(err, ErrBadWeights) {
		t.Errorf("zero weights err = %v", err)
	}
	if _, err := Weighted(rng, []float64{-1, 2}, 5); !errors.Is(err, ErrBadWeights) {
		t.Errorf("negative weights err = %v", err)
	}
	if _, err := Weighted(rng, weights, 0); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0 err = %v", err)
	}
}

func TestWeightedUnbiasedSum(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 300
	xs := make([]float64, n)
	w := make([]float64, n)
	truth := 0.0
	for i := range xs {
		xs[i] = rng.Float64() * 100
		w[i] = xs[i] + 1 // weight roughly proportional to value
		truth += xs[i]
	}
	est := 0.0
	const reps = 200
	for r := 0; r < reps; r++ {
		s, err := Weighted(rng, w, 60)
		if err != nil {
			t.Fatal(err)
		}
		one := 0.0
		for i, row := range s.Rows {
			one += xs[row] * s.Weights[i]
		}
		est += one / reps
	}
	if rel := math.Abs(est-truth) / truth; rel > 0.02 {
		t.Errorf("weighted estimate off by %.1f%%", rel*100)
	}
}

func TestReservoir(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r := NewReservoir(10, rng)
	for i := 0; i < 1000; i++ {
		r.Add(i)
	}
	if r.Seen() != 1000 {
		t.Errorf("seen = %d", r.Seen())
	}
	s := r.Sample()
	if len(s.Rows) != 10 || s.BaseN != 1000 {
		t.Fatalf("sample = %+v", s)
	}
	for _, w := range s.Weights {
		if w != 100 {
			t.Errorf("weight = %v", w)
		}
	}
	// Short stream: everything kept.
	r2 := NewReservoir(10, rng)
	for i := 0; i < 5; i++ {
		r2.Add(i)
	}
	if got := r2.Sample(); len(got.Rows) != 5 {
		t.Errorf("short stream rows = %v", got.Rows)
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Every element should land in the reservoir with probability ~k/n.
	counts := make([]int, 20)
	rng := rand.New(rand.NewSource(10))
	const reps = 4000
	for rep := 0; rep < reps; rep++ {
		r := NewReservoir(5, rng)
		for i := 0; i < 20; i++ {
			r.Add(i)
		}
		for _, row := range r.Sample().Rows {
			counts[row]++
		}
	}
	want := float64(reps) * 5 / 20
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.15 {
			t.Errorf("element %d kept %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestSampleRowsSortedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := Uniform(rng, 200, 1+rng.Intn(199))
		if err != nil {
			return false
		}
		for i := 1; i < len(s.Rows); i++ {
			if s.Rows[i-1] >= s.Rows[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
