// Package sample provides the sampling machinery behind the approximate
// query processing and sampling-architecture work the tutorial surveys
// (Aqua [5], BlinkDB [7], SciBORQ [59,60]): uniform and Bernoulli sampling,
// streaming reservoirs, stratified sampling over group labels, and weighted
// sampling with expansion weights for unbiased Horvitz-Thompson estimates.
package sample

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Package-level sentinel errors.
var (
	ErrBadFraction = errors.New("sample: fraction out of (0,1]")
	ErrBadK        = errors.New("sample: k out of range")
	ErrBadWeights  = errors.New("sample: weights must be non-negative and not all zero")
)

// Sample is a set of selected row positions with per-row expansion weights:
// weight[i] estimates how many base-table rows sampled row i stands for, so
// an unbiased SUM estimate is sum(x_i * w_i).
type Sample struct {
	Rows    []int
	Weights []float64
	BaseN   int
}

// Frac returns the sampled fraction |rows| / baseN.
func (s *Sample) Frac() float64 {
	if s.BaseN == 0 {
		return 0
	}
	return float64(len(s.Rows)) / float64(s.BaseN)
}

// Uniform draws k rows without replacement from [0,n) via a partial
// Fisher-Yates shuffle. Weights are n/k.
func Uniform(rng *rand.Rand, n, k int) (*Sample, error) {
	if k <= 0 || k > n {
		return nil, fmt.Errorf("k=%d n=%d: %w", k, n, ErrBadK)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	rows := append([]int(nil), idx[:k]...)
	sort.Ints(rows)
	w := float64(n) / float64(k)
	weights := make([]float64, k)
	for i := range weights {
		weights[i] = w
	}
	return &Sample{Rows: rows, Weights: weights, BaseN: n}, nil
}

// UniformFrac draws a uniform sample of ceil(frac*n) rows.
func UniformFrac(rng *rand.Rand, n int, frac float64) (*Sample, error) {
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("frac=%v: %w", frac, ErrBadFraction)
	}
	k := int(math.Ceil(frac * float64(n)))
	if k > n {
		k = n
	}
	return Uniform(rng, n, k)
}

// Bernoulli includes each row independently with probability p.
// Weights are 1/p.
func Bernoulli(rng *rand.Rand, n int, p float64) (*Sample, error) {
	if p <= 0 || p > 1 {
		return nil, fmt.Errorf("p=%v: %w", p, ErrBadFraction)
	}
	var rows []int
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			rows = append(rows, i)
		}
	}
	weights := make([]float64, len(rows))
	for i := range weights {
		weights[i] = 1 / p
	}
	return &Sample{Rows: rows, Weights: weights, BaseN: n}, nil
}

// Stratified draws up to perStratum rows from every stratum (BlinkDB-style
// cap-k stratification on the grouping column), so rare groups are fully
// represented instead of being missed by uniform sampling. Weights are
// stratumSize / sampledFromStratum.
func Stratified(rng *rand.Rand, labels []string, perStratum int) (*Sample, error) {
	if perStratum <= 0 {
		return nil, fmt.Errorf("perStratum=%d: %w", perStratum, ErrBadK)
	}
	byLabel := map[string][]int{}
	var order []string
	for i, l := range labels {
		if _, ok := byLabel[l]; !ok {
			order = append(order, l)
		}
		byLabel[l] = append(byLabel[l], i)
	}
	s := &Sample{BaseN: len(labels)}
	for _, l := range order {
		members := byLabel[l]
		k := perStratum
		if k > len(members) {
			k = len(members)
		}
		// Partial Fisher-Yates over this stratum's member list.
		m := append([]int(nil), members...)
		for i := 0; i < k; i++ {
			j := i + rng.Intn(len(m)-i)
			m[i], m[j] = m[j], m[i]
		}
		w := float64(len(members)) / float64(k)
		for i := 0; i < k; i++ {
			s.Rows = append(s.Rows, m[i])
			s.Weights = append(s.Weights, w)
		}
	}
	sortByRows(s)
	return s, nil
}

// Weighted draws k rows with replacement with probability proportional to
// weight (SciBORQ-style importance sampling). Expansion weights are the
// Hansen-Hurwitz 1/(k*p_i) factors, so sum(x_i*w_i) stays unbiased for SUM.
func Weighted(rng *rand.Rand, weights []float64, k int) (*Sample, error) {
	if k <= 0 {
		return nil, fmt.Errorf("k=%d: %w", k, ErrBadK)
	}
	var total float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, ErrBadWeights
		}
		total += w
	}
	if total == 0 {
		return nil, ErrBadWeights
	}
	// Cumulative distribution for binary-search draws.
	cum := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		acc += w
		cum[i] = acc
	}
	s := &Sample{BaseN: len(weights)}
	for d := 0; d < k; d++ {
		u := rng.Float64() * total
		i := sort.SearchFloat64s(cum, u)
		if i >= len(cum) {
			i = len(cum) - 1
		}
		p := weights[i] / total
		s.Rows = append(s.Rows, i)
		s.Weights = append(s.Weights, 1/(float64(k)*p))
	}
	sortByRows(s)
	return s, nil
}

func sortByRows(s *Sample) {
	idx := make([]int, len(s.Rows))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s.Rows[idx[a]] < s.Rows[idx[b]] })
	rows := make([]int, len(idx))
	ws := make([]float64, len(idx))
	for i, p := range idx {
		rows[i] = s.Rows[p]
		ws[i] = s.Weights[p]
	}
	s.Rows, s.Weights = rows, ws
}

// Reservoir maintains a uniform without-replacement sample of a stream of
// unknown length (Vitter's Algorithm R).
type Reservoir struct {
	k    int
	n    int
	rows []int
	rng  *rand.Rand
}

// NewReservoir creates a reservoir of capacity k.
func NewReservoir(k int, rng *rand.Rand) *Reservoir {
	return &Reservoir{k: k, rng: rng}
}

// Add offers stream element id to the reservoir.
func (r *Reservoir) Add(id int) {
	r.n++
	if len(r.rows) < r.k {
		r.rows = append(r.rows, id)
		return
	}
	if j := r.rng.Intn(r.n); j < r.k {
		r.rows[j] = id
	}
}

// Seen returns how many elements have been offered.
func (r *Reservoir) Seen() int { return r.n }

// Sample returns the current reservoir contents as a Sample with uniform
// expansion weights n/|rows|.
func (r *Reservoir) Sample() *Sample {
	rows := append([]int(nil), r.rows...)
	sort.Ints(rows)
	weights := make([]float64, len(rows))
	if len(rows) > 0 {
		w := float64(r.n) / float64(len(rows))
		for i := range weights {
			weights[i] = w
		}
	}
	return &Sample{Rows: rows, Weights: weights, BaseN: r.n}
}
