// Package catalog is the engine's table registry: a concurrency-safe map
// from table names to storage tables, with list/drop/replace operations.
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"dex/internal/storage"
)

// Package-level sentinel errors.
var (
	ErrNotFound = errors.New("catalog: table not found")
	ErrExists   = errors.New("catalog: table already exists")
)

// Catalog maps table names to tables. The zero value is not usable; call New.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*storage.Table
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*storage.Table)}
}

// Register adds a table under its own name. It fails if the name is taken.
func (c *Catalog) Register(t *storage.Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[t.Name()]; ok {
		return fmt.Errorf("%q: %w", t.Name(), ErrExists)
	}
	c.tables[t.Name()] = t
	return nil
}

// Replace adds or overwrites a table under its own name.
func (c *Catalog) Replace(t *storage.Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[t.Name()] = t
}

// Get returns the named table.
func (c *Catalog) Get(name string) (*storage.Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("%q: %w", name, ErrNotFound)
	}
	return t, nil
}

// Drop removes the named table.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; !ok {
		return fmt.Errorf("%q: %w", name, ErrNotFound)
	}
	delete(c.tables, name)
	return nil
}

// Names returns the sorted table names.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered tables.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.tables)
}
