package catalog

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"dex/internal/storage"
)

func mk(name string) *storage.Table {
	t, _ := storage.NewTable(name, storage.Schema{{Name: "x", Type: storage.TInt}})
	return t
}

func TestRegisterGetDrop(t *testing.T) {
	c := New()
	if err := c.Register(mk("a")); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(mk("a")); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate register err = %v", err)
	}
	got, err := c.Get("a")
	if err != nil || got.Name() != "a" {
		t.Errorf("get = %v, %v", got, err)
	}
	if _, err := c.Get("b"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing get err = %v", err)
	}
	if err := c.Drop("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop("a"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double drop err = %v", err)
	}
}

func TestReplaceAndNames(t *testing.T) {
	c := New()
	c.Replace(mk("b"))
	c.Replace(mk("a"))
	c.Replace(mk("a"))
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("t%d", i)
			c.Replace(mk(name))
			if _, err := c.Get(name); err != nil {
				t.Error(err)
			}
			c.Names()
		}(i)
	}
	wg.Wait()
	if c.Len() != 16 {
		t.Errorf("len = %d, want 16", c.Len())
	}
}
