// Package sqlparse implements the small SQL dialect the dex CLI and
// examples speak: single-table SELECT with aggregates, WHERE with
// AND/OR/NOT/BETWEEN and comparisons, GROUP BY, ORDER BY and LIMIT. It
// compiles statements into exec.Query values.
package sqlparse

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"dex/internal/exec"
	"dex/internal/expr"
	"dex/internal/storage"
)

// ErrSyntax wraps all parse failures.
var ErrSyntax = errors.New("sqlparse: syntax error")

// Statement is a parsed SELECT, optionally with one inner equi-join:
// SELECT ... FROM Table [JOIN JoinTable ON LeftKey = RightKey] ...
type Statement struct {
	Table string
	// JoinTable is non-empty when the statement joins a second table.
	JoinTable string
	LeftKey   string
	RightKey  string
	Query     exec.Query
}

type tokenKind uint8

const (
	tkIdent tokenKind = iota
	tkNumber
	tkString
	tkPunct
	tkEOF
)

type token struct {
	kind tokenKind
	text string
}

type lexer struct {
	in  string
	pos int
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.in) && (l.in[l.pos] == ' ' || l.in[l.pos] == '\t' || l.in[l.pos] == '\n' || l.in[l.pos] == '\r') {
		l.pos++
	}
	if l.pos >= len(l.in) {
		return token{kind: tkEOF}, nil
	}
	c := l.in[l.pos]
	switch {
	case c == '\'':
		end := strings.IndexByte(l.in[l.pos+1:], '\'')
		if end < 0 {
			return token{}, fmt.Errorf("unterminated string at %d: %w", l.pos, ErrSyntax)
		}
		s := l.in[l.pos+1 : l.pos+1+end]
		l.pos += end + 2
		return token{kind: tkString, text: s}, nil
	case c >= '0' && c <= '9' || c == '-' && l.pos+1 < len(l.in) && l.in[l.pos+1] >= '0' && l.in[l.pos+1] <= '9':
		start := l.pos
		l.pos++
		for l.pos < len(l.in) && (l.in[l.pos] >= '0' && l.in[l.pos] <= '9' || l.in[l.pos] == '.' || l.in[l.pos] == 'e' || l.in[l.pos] == 'E' || l.in[l.pos] == '+' && (l.in[l.pos-1] == 'e' || l.in[l.pos-1] == 'E') || l.in[l.pos] == '-' && (l.in[l.pos-1] == 'e' || l.in[l.pos-1] == 'E')) {
			l.pos++
		}
		return token{kind: tkNumber, text: l.in[start:l.pos]}, nil
	case isIdentByte(c):
		start := l.pos
		for l.pos < len(l.in) && (isIdentByte(l.in[l.pos]) || l.in[l.pos] >= '0' && l.in[l.pos] <= '9') {
			l.pos++
		}
		return token{kind: tkIdent, text: l.in[start:l.pos]}, nil
	default:
		// Multi-byte operators.
		for _, op := range []string{"<=", ">=", "<>", "!="} {
			if strings.HasPrefix(l.in[l.pos:], op) {
				l.pos += 2
				return token{kind: tkPunct, text: op}, nil
			}
		}
		l.pos++
		return token{kind: tkPunct, text: string(c)}, nil
	}
}

func isIdentByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == '.'
}

type parser struct {
	lex  lexer
	tok  token
	prev int
}

func (p *parser) advance() error {
	p.prev = p.lex.pos
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) isKeyword(kw string) bool {
	return p.tok.kind == tkIdent && strings.EqualFold(p.tok.text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.isKeyword(kw) {
		return fmt.Errorf("expected %s, got %q: %w", kw, p.tok.text, ErrSyntax)
	}
	return p.advance()
}

func (p *parser) expectPunct(s string) error {
	if p.tok.kind != tkPunct || p.tok.text != s {
		return fmt.Errorf("expected %q, got %q: %w", s, p.tok.text, ErrSyntax)
	}
	return p.advance()
}

var aggNames = map[string]exec.AggFunc{
	"count": exec.AggCount,
	"sum":   exec.AggSum,
	"avg":   exec.AggAvg,
	"min":   exec.AggMin,
	"max":   exec.AggMax,
}

// Parse compiles one SELECT statement.
func Parse(sql string) (*Statement, error) {
	p := &parser{lex: lexer{in: sql}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	st := &Statement{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		st.Query.Select = append(st.Query.Select, item)
		if p.tok.kind == tkPunct && p.tok.text == "," {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	if p.tok.kind != tkIdent {
		return nil, fmt.Errorf("expected table name, got %q: %w", p.tok.text, ErrSyntax)
	}
	st.Table = p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.isKeyword("join") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tkIdent {
			return nil, fmt.Errorf("expected table after JOIN: %w", ErrSyntax)
		}
		st.JoinTable = p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("on"); err != nil {
			return nil, err
		}
		if p.tok.kind != tkIdent {
			return nil, fmt.Errorf("expected join key: %w", ErrSyntax)
		}
		st.LeftKey = p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		if p.tok.kind != tkIdent {
			return nil, fmt.Errorf("expected join key: %w", ErrSyntax)
		}
		st.RightKey = p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.isKeyword("where") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		pred, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		st.Query.Where = pred
	}
	if p.isKeyword("group") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			if p.tok.kind != tkIdent {
				return nil, fmt.Errorf("expected column in GROUP BY: %w", ErrSyntax)
			}
			st.Query.GroupBy = append(st.Query.GroupBy, p.tok.text)
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind == tkPunct && p.tok.text == "," {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	if p.isKeyword("having") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		pred, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		st.Query.Having = pred
	}
	if p.isKeyword("order") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			if p.tok.kind != tkIdent {
				return nil, fmt.Errorf("expected column in ORDER BY: %w", ErrSyntax)
			}
			key := exec.OrderKey{Col: p.tok.text}
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.isKeyword("desc") {
				key.Desc = true
				if err := p.advance(); err != nil {
					return nil, err
				}
			} else if p.isKeyword("asc") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			st.Query.OrderBy = append(st.Query.OrderBy, key)
			if p.tok.kind == tkPunct && p.tok.text == "," {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	if p.isKeyword("limit") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tkNumber {
			return nil, fmt.Errorf("expected number after LIMIT: %w", ErrSyntax)
		}
		n, err := strconv.Atoi(p.tok.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad LIMIT %q: %w", p.tok.text, ErrSyntax)
		}
		st.Query.Limit = n
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind == tkPunct && p.tok.text == ";" {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind != tkEOF {
		return nil, fmt.Errorf("trailing input at %q: %w", p.tok.text, ErrSyntax)
	}
	return st, nil
}

func (p *parser) parseSelectItem() (exec.SelectItem, error) {
	if p.tok.kind == tkPunct && p.tok.text == "*" {
		if err := p.advance(); err != nil {
			return exec.SelectItem{}, err
		}
		return exec.SelectItem{Col: "*"}, nil
	}
	if p.tok.kind != tkIdent {
		return exec.SelectItem{}, fmt.Errorf("expected select item, got %q: %w", p.tok.text, ErrSyntax)
	}
	name := p.tok.text
	if err := p.advance(); err != nil {
		return exec.SelectItem{}, err
	}
	item := exec.SelectItem{Col: name}
	if agg, ok := aggNames[strings.ToLower(name)]; ok && p.tok.kind == tkPunct && p.tok.text == "(" {
		if err := p.advance(); err != nil {
			return exec.SelectItem{}, err
		}
		col := "*"
		if p.tok.kind == tkPunct && p.tok.text == "*" {
			if err := p.advance(); err != nil {
				return exec.SelectItem{}, err
			}
		} else if p.tok.kind == tkIdent {
			col = p.tok.text
			if err := p.advance(); err != nil {
				return exec.SelectItem{}, err
			}
		} else {
			return exec.SelectItem{}, fmt.Errorf("expected column in %s(): %w", name, ErrSyntax)
		}
		if err := p.expectPunct(")"); err != nil {
			return exec.SelectItem{}, err
		}
		item = exec.SelectItem{Col: col, Agg: agg}
	}
	if p.isKeyword("as") {
		if err := p.advance(); err != nil {
			return exec.SelectItem{}, err
		}
		if p.tok.kind != tkIdent {
			return exec.SelectItem{}, fmt.Errorf("expected alias after AS: %w", ErrSyntax)
		}
		item.As = p.tok.text
		if err := p.advance(); err != nil {
			return exec.SelectItem{}, err
		}
	}
	return item, nil
}

func (p *parser) parseOr() (*expr.Pred, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	kids := []*expr.Pred{left}
	for p.isKeyword("or") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return expr.Or(kids...), nil
}

func (p *parser) parseAnd() (*expr.Pred, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	kids := []*expr.Pred{left}
	for p.isKeyword("and") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return expr.And(kids...), nil
}

func (p *parser) parseUnary() (*expr.Pred, error) {
	if p.isKeyword("not") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return expr.Not(inner), nil
	}
	if p.tok.kind == tkPunct && p.tok.text == "(" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.parseComparison()
}

var ops = map[string]expr.Op{
	"=": expr.EQ, "<>": expr.NE, "!=": expr.NE,
	"<": expr.LT, "<=": expr.LE, ">": expr.GT, ">=": expr.GE,
}

func (p *parser) parseComparison() (*expr.Pred, error) {
	if p.tok.kind != tkIdent {
		return nil, fmt.Errorf("expected column, got %q: %w", p.tok.text, ErrSyntax)
	}
	col := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	// Aggregate reference, e.g. HAVING sum(amount) > 10: the output column
	// is named "sum(amount)".
	if _, isAgg := aggNames[strings.ToLower(col)]; isAgg && p.tok.kind == tkPunct && p.tok.text == "(" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner := "*"
		if p.tok.kind == tkIdent {
			inner = p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
		} else if p.tok.kind == tkPunct && p.tok.text == "*" {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		col = strings.ToLower(col) + "(" + inner + ")"
	}
	if p.isKeyword("like") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tkString {
			return nil, fmt.Errorf("expected pattern after LIKE: %w", ErrSyntax)
		}
		pat := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return expr.Like(col, pat), nil
	}
	negate := false
	if p.isKeyword("not") {
		negate = true
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !p.isKeyword("in") {
			return nil, fmt.Errorf("expected IN after NOT: %w", ErrSyntax)
		}
	}
	if p.isKeyword("in") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var vals []storage.Value
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			if p.tok.kind == tkPunct && p.tok.text == "," {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		pred := expr.In(col, vals...)
		if negate {
			pred = expr.Not(pred)
		}
		return pred, nil
	}
	if p.isKeyword("between") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		lo, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return expr.And(expr.Cmp(col, expr.GE, lo), expr.Cmp(col, expr.LE, hi)), nil
	}
	if p.tok.kind != tkPunct {
		return nil, fmt.Errorf("expected operator after %q: %w", col, ErrSyntax)
	}
	op, ok := ops[p.tok.text]
	if !ok {
		return nil, fmt.Errorf("unknown operator %q: %w", p.tok.text, ErrSyntax)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	lit, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	return expr.Cmp(col, op, lit), nil
}

func (p *parser) parseLiteral() (storage.Value, error) {
	switch p.tok.kind {
	case tkNumber:
		text := p.tok.text
		if err := p.advance(); err != nil {
			return storage.Value{}, err
		}
		if i, err := strconv.ParseInt(text, 10, 64); err == nil {
			return storage.Int(i), nil
		}
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return storage.Value{}, fmt.Errorf("bad number %q: %w", text, ErrSyntax)
		}
		return storage.Float(f), nil
	case tkString:
		s := p.tok.text
		if err := p.advance(); err != nil {
			return storage.Value{}, err
		}
		return storage.String_(s), nil
	default:
		return storage.Value{}, fmt.Errorf("expected literal, got %q: %w", p.tok.text, ErrSyntax)
	}
}

// ExpandStar replaces a bare `*` select item with one item per schema
// column (COUNT(*) is left alone).
func ExpandStar(q exec.Query, schema storage.Schema) exec.Query {
	var out []exec.SelectItem
	for _, item := range q.Select {
		if item.Col == "*" && item.Agg == exec.AggNone {
			for _, f := range schema {
				out = append(out, exec.SelectItem{Col: f.Name})
			}
			continue
		}
		out = append(out, item)
	}
	q.Select = out
	return q
}
