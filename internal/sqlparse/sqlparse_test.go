package sqlparse

import (
	"errors"
	"testing"

	"dex/internal/exec"
	"dex/internal/storage"
)

func TestSimpleSelect(t *testing.T) {
	st, err := Parse("SELECT a, b FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if st.Table != "t" || len(st.Query.Select) != 2 || st.Query.Select[1].Col != "b" {
		t.Errorf("stmt = %+v", st)
	}
}

func TestFullQuery(t *testing.T) {
	st, err := Parse("SELECT region, sum(amount) AS total, count(*) FROM sales WHERE qty > 2 AND (region = 'east' OR region = 'west') GROUP BY region ORDER BY region DESC LIMIT 10;")
	if err != nil {
		t.Fatal(err)
	}
	q := st.Query
	if q.Select[1].Agg != exec.AggSum || q.Select[1].As != "total" {
		t.Errorf("select[1] = %+v", q.Select[1])
	}
	if q.Select[2].Agg != exec.AggCount || q.Select[2].Col != "*" {
		t.Errorf("select[2] = %+v", q.Select[2])
	}
	if q.Where == nil || len(q.Where.Columns()) != 2 {
		t.Errorf("where = %v", q.Where)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != "region" {
		t.Errorf("groupby = %v", q.GroupBy)
	}
	if len(q.OrderBy) != 1 || !q.OrderBy[0].Desc {
		t.Errorf("orderby = %v", q.OrderBy)
	}
	if q.Limit != 10 {
		t.Errorf("limit = %d", q.Limit)
	}
}

func TestWherePrecedence(t *testing.T) {
	st, err := Parse("SELECT a FROM t WHERE a < 1 OR a > 2 AND b = 3")
	if err != nil {
		t.Fatal(err)
	}
	// AND binds tighter: OR(a<1, AND(a>2, b=3)).
	want := "a < 1 OR (a > 2 AND b = 3)"
	if got := st.Query.Where.String(); got != want {
		t.Errorf("where = %q, want %q", got, want)
	}
}

func TestNotAndBetween(t *testing.T) {
	st, err := Parse("SELECT a FROM t WHERE NOT a BETWEEN 1 AND 5")
	if err != nil {
		t.Fatal(err)
	}
	want := "NOT (a >= 1 AND a <= 5)"
	if got := st.Query.Where.String(); got != want {
		t.Errorf("where = %q, want %q", got, want)
	}
}

func TestLiterals(t *testing.T) {
	st, err := Parse("SELECT a FROM t WHERE a >= -3.5 AND s <> 'hi there'")
	if err != nil {
		t.Fatal(err)
	}
	w := st.Query.Where
	if w.Kids[0].Val.Typ != storage.TFloat || w.Kids[0].Val.F != -3.5 {
		t.Errorf("float literal = %v", w.Kids[0].Val)
	}
	if w.Kids[1].Val.S != "hi there" {
		t.Errorf("string literal = %v", w.Kids[1].Val)
	}
}

func TestExecutesAgainstEngine(t *testing.T) {
	tbl, _ := storage.NewTable("t", storage.Schema{
		{Name: "g", Type: storage.TString}, {Name: "v", Type: storage.TInt},
	})
	for i := int64(0); i < 10; i++ {
		g := "a"
		if i%2 == 1 {
			g = "b"
		}
		_ = tbl.AppendRow(storage.String_(g), storage.Int(i))
	}
	st, err := Parse("SELECT g, sum(v) FROM t WHERE v >= 2 GROUP BY g ORDER BY g")
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Execute(tbl, st.Query)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 || res.Row(0)[1].F != 2+4+6+8 || res.Row(1)[1].F != 3+5+7+9 {
		t.Errorf("result:\n%s", res.Format(5))
	}
}

func TestExpandStar(t *testing.T) {
	st, err := Parse("SELECT * FROM t LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	schema := storage.Schema{{Name: "x", Type: storage.TInt}, {Name: "y", Type: storage.TInt}}
	q := ExpandStar(st.Query, schema)
	if len(q.Select) != 2 || q.Select[0].Col != "x" {
		t.Errorf("expanded = %v", q.Select)
	}
	// COUNT(*) untouched.
	st2, _ := Parse("SELECT count(*) FROM t")
	q2 := ExpandStar(st2.Query, schema)
	if len(q2.Select) != 1 || q2.Select[0].Agg != exec.AggCount {
		t.Errorf("count(*) expanded wrongly: %v", q2.Select)
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC a FROM t",
		"SELECT FROM t",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE a",
		"SELECT a FROM t WHERE a ==",
		"SELECT a FROM t WHERE a = 'unterminated",
		"SELECT a FROM t GROUP x",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t extra",
		"SELECT sum( FROM t",
		"SELECT a FROM t WHERE (a = 1",
		"SELECT a FROM t WHERE a BETWEEN 1",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); !errors.Is(err, ErrSyntax) {
			t.Errorf("Parse(%q) err = %v, want ErrSyntax", sql, err)
		}
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	st, err := Parse("select A from T where A > 1 order by A asc limit 5")
	if err != nil {
		t.Fatal(err)
	}
	if st.Table != "T" || st.Query.Limit != 5 {
		t.Errorf("stmt = %+v", st)
	}
}

func TestAggregateNameAsPlainColumn(t *testing.T) {
	// "count" not followed by ( is an ordinary column name.
	st, err := Parse("SELECT count FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if st.Query.Select[0].Agg != exec.AggNone || st.Query.Select[0].Col != "count" {
		t.Errorf("item = %+v", st.Query.Select[0])
	}
}

func TestParseInLikeHaving(t *testing.T) {
	st, err := Parse("SELECT region, sum(amount) FROM sales WHERE region IN ('east','west') AND product LIKE 'p0%' GROUP BY region HAVING sum(amount) > 100 ORDER BY region")
	if err != nil {
		t.Fatal(err)
	}
	w := st.Query.Where.String()
	if w != "(region = 'east' OR region = 'west') AND product LIKE 'p0%'" {
		t.Errorf("where = %q", w)
	}
	if st.Query.Having == nil || st.Query.Having.String() != "sum(amount) > 100" {
		t.Errorf("having = %v", st.Query.Having)
	}
}

func TestParseNotIn(t *testing.T) {
	st, err := Parse("SELECT a FROM t WHERE a NOT IN (1, 2)")
	if err != nil {
		t.Fatal(err)
	}
	want := "NOT (a = 1 OR a = 2)"
	if got := st.Query.Where.String(); got != want {
		t.Errorf("where = %q, want %q", got, want)
	}
}

func TestParseHavingCountStar(t *testing.T) {
	st, err := Parse("SELECT g, count(*) FROM t GROUP BY g HAVING count(*) >= 3")
	if err != nil {
		t.Fatal(err)
	}
	if st.Query.Having.String() != "count(*) >= 3" {
		t.Errorf("having = %q", st.Query.Having.String())
	}
}

func TestParseInLikeErrors(t *testing.T) {
	bad := []string{
		"SELECT a FROM t WHERE a IN ()",
		"SELECT a FROM t WHERE a IN (1",
		"SELECT a FROM t WHERE a LIKE 5",
		"SELECT a FROM t WHERE a NOT 5",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); !errors.Is(err, ErrSyntax) {
			t.Errorf("Parse(%q) err = %v", sql, err)
		}
	}
}

func TestHavingEndToEnd(t *testing.T) {
	tbl, _ := storage.NewTable("t", storage.Schema{
		{Name: "g", Type: storage.TString}, {Name: "v", Type: storage.TInt},
	})
	for i := int64(0); i < 10; i++ {
		g := "a"
		if i >= 7 {
			g = "b"
		}
		_ = tbl.AppendRow(storage.String_(g), storage.Int(i))
	}
	st, err := Parse("SELECT g, count(*) FROM t GROUP BY g HAVING count(*) > 3")
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Execute(tbl, st.Query)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || res.Row(0)[0].S != "a" {
		t.Errorf("result:\n%s", res.Format(5))
	}
}
