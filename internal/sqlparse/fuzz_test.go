package sqlparse

import (
	"strings"
	"testing"
)

// FuzzParse asserts the parser never panics and that every accepted
// statement renders back to parseable SQL (Parse is total on arbitrary
// input). `go test` runs the seed corpus; `go test -fuzz=FuzzParse` explores.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT a FROM t",
		"SELECT a, sum(b) FROM t WHERE a > 1 AND b IN (1,2) GROUP BY a HAVING sum(b) > 0 ORDER BY a DESC LIMIT 5",
		"SELECT * FROM t WHERE s LIKE 'x%' OR NOT a BETWEEN 1 AND 2",
		"select count(*) from x where y <> 'a''b'",
		"SELECT",
		"",
		"SELECT a FROM t WHERE ((((a=1))))",
		"SELECT -1e9 FROM t",
		"\x00\x01 SELECT",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		st, err := Parse(sql)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if st.Table == "" {
			t.Errorf("accepted statement without table: %q", sql)
		}
		if len(st.Query.Select) == 0 {
			t.Errorf("accepted statement without select list: %q", sql)
		}
		// The query must render without panicking.
		_ = st.Query.String()
		if st.Query.Where != nil {
			if s := st.Query.Where.String(); strings.Contains(s, "%!") {
				t.Errorf("bad predicate rendering %q for %q", s, sql)
			}
		}
	})
}
