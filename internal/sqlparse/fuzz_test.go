package sqlparse

import (
	"strings"
	"testing"
)

// FuzzParse asserts the parser never panics and that every accepted
// statement renders back to parseable SQL (Parse is total on arbitrary
// input). `go test` runs the seed corpus; `go test -fuzz=FuzzParse` explores.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT a FROM t",
		"SELECT a, sum(b) FROM t WHERE a > 1 AND b IN (1,2) GROUP BY a HAVING sum(b) > 0 ORDER BY a DESC LIMIT 5",
		"SELECT * FROM t WHERE s LIKE 'x%' OR NOT a BETWEEN 1 AND 2",
		"select count(*) from x where y <> 'a''b'",
		"SELECT",
		"",
		"SELECT a FROM t WHERE ((((a=1))))",
		"SELECT -1e9 FROM t",
		"\x00\x01 SELECT",
		// Aggregates with GROUP BY (plain, aliased, HAVING over the alias,
		// star-count, and an aggregate that is not in the group list).
		"SELECT region, sum(amount) FROM sales GROUP BY region",
		"SELECT region, quarter, count(*), avg(amount) FROM sales GROUP BY region, quarter",
		"SELECT d, min(x) AS lo, max(x) AS hi FROM t GROUP BY d HAVING lo > 0 ORDER BY hi DESC",
		"SELECT sum(a) FROM t GROUP BY",
		"SELECT count( FROM t GROUP BY a",
		"SELECT a, sum(sum(b)) FROM t GROUP BY a",
		// Quoted identifiers (unsupported: must reject, not panic) and
		// quote edge cases in string literals.
		`SELECT "a b" FROM "t t"`,
		`SELECT 'a FROM t`,
		"SELECT a FROM t WHERE s = ''''",
		"SELECT a FROM t WHERE s = '\\'",
		// Malformed LIMIT: missing operand, negative, fractional, overflow,
		// trailing garbage.
		"SELECT a FROM t LIMIT",
		"SELECT a FROM t LIMIT -1",
		"SELECT a FROM t LIMIT 2.5",
		"SELECT a FROM t LIMIT 99999999999999999999999999",
		"SELECT a FROM t LIMIT 10 10",
		"SELECT a FROM t ORDER BY LIMIT 3",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		checkParseTotal(t, sql)
	})
}

// TestParseMalformedRegressions pins, deterministically, the behaviour of
// the nastier corpus entries — nested aggregates, quoted identifiers,
// malformed LIMIT shapes. A ~1.1M-exec fuzz run over the expanded corpus
// found no parse panic; these assertions keep the reject-vs-accept
// decisions from drifting silently.
func TestParseMalformedRegressions(t *testing.T) {
	rejects := []string{
		"SELECT a, sum(sum(b)) FROM t GROUP BY a",       // nested aggregate
		"SELECT a FROM t LIMIT",                         // LIMIT without operand
		"SELECT a FROM t LIMIT -1",                      // negative LIMIT
		"SELECT a FROM t LIMIT 2.5",                     // fractional LIMIT
		"SELECT a FROM t LIMIT 99999999999999999999999", // int overflow
		"SELECT a FROM t LIMIT 10 10",                   // trailing garbage
		`SELECT "a b" FROM "t t"`,                       // quoted identifiers unsupported
		"SELECT sum(a) FROM t GROUP BY",                 // GROUP BY without column
		"SELECT a FROM t WHERE s = ''''",                // quote-escape ambiguity
		`SELECT 'a FROM t`,                              // unterminated string
	}
	for _, sql := range rejects {
		if st, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) accepted (table=%q), want syntax error", sql, st.Table)
		}
		checkParseTotal(t, sql)
	}
	accepts := []string{
		"SELECT region, sum(amount) FROM sales GROUP BY region",
		"SELECT region, quarter, count(*), avg(amount) FROM sales GROUP BY region, quarter",
		"SELECT d, min(x) AS lo, max(x) AS hi FROM t GROUP BY d HAVING lo > 0 ORDER BY hi DESC",
		"SELECT a FROM t LIMIT 0",
	}
	for _, sql := range accepts {
		if _, err := Parse(sql); err != nil {
			t.Errorf("Parse(%q) rejected: %v", sql, err)
		}
		checkParseTotal(t, sql)
	}
}

// checkParseTotal is the fuzz property: Parse never panics, and every
// accepted statement is structurally complete and renders cleanly.
func checkParseTotal(t *testing.T, sql string) {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		return // rejected input is fine; panics are not
	}
	if st.Table == "" {
		t.Errorf("accepted statement without table: %q", sql)
	}
	if len(st.Query.Select) == 0 {
		t.Errorf("accepted statement without select list: %q", sql)
	}
	// The query must render without panicking.
	_ = st.Query.String()
	if st.Query.Where != nil {
		if s := st.Query.Where.String(); strings.Contains(s, "%!") {
			t.Errorf("bad predicate rendering %q for %q", s, sql)
		}
	}
}
