package chaos

import (
	"os"
	"strconv"
	"strings"
	"testing"
	"time"
)

// seeds returns the seed matrix: the default {1,2,3}, or the single seed
// in DEX_CHAOS_SEED — the knob CI's matrix (and anyone replaying a failed
// run) uses.
func seeds(t *testing.T) []int64 {
	if v := os.Getenv("DEX_CHAOS_SEED"); v != "" {
		s, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad DEX_CHAOS_SEED %q: %v", v, err)
		}
		return []int64{s}
	}
	return []int64{1, 2, 3}
}

// schedule is the standing chaos mix: scan latency to stretch queries (and
// force deadline overruns), admission sheds, flaky transport, a lossy
// cache, and rare handler faults. The scan latency arms first — it is what
// keeps the run alive long enough for the later windows to overlap real
// traffic (an unfaulted run over 10k rows finishes in ~20ms).
func schedule() []FaultEvent {
	return []FaultEvent{
		{At: 0, Site: "exec/scan", Spec: "latency(30ms,0.6)", For: 900 * time.Millisecond},
		{At: 0, Site: "cache/get", Spec: "error(0.5)"},
		{At: 5 * time.Millisecond, Site: "server/admit", Spec: "error(0.25)", For: 700 * time.Millisecond},
		{At: 10 * time.Millisecond, Site: "client/transport", Spec: "error(0.15)", For: 600 * time.Millisecond},
		{At: 15 * time.Millisecond, Site: "server/handler", Spec: "error(0.05)"},
	}
}

// TestChaosInvariants replays seeded exploration sessions under the
// standing fault schedule and requires a clean verdict for every seed:
// no goroutine leaks, every query classified, no untyped errors.
func TestChaosInvariants(t *testing.T) {
	for _, seed := range seeds(t) {
		seed := seed
		t.Run("seed="+strconv.FormatInt(seed, 10), func(t *testing.T) {
			rep, err := Run(Config{
				Seed:             seed,
				Clients:          3,
				QueriesPerClient: 8,
				Rows:             10_000,
				Timeout:          120 * time.Millisecond,
				Faults:           schedule(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Violations) != 0 {
				t.Fatalf("chaos violations:\n  %s", strings.Join(rep.Violations, "\n  "))
			}
			if rep.Issued == 0 {
				t.Fatal("no queries issued")
			}
			// The run must not be vacuous: faults actually fired.
			var fires int64
			for _, st := range rep.FaultStats {
				fires += st.Fires
			}
			if fires == 0 {
				t.Fatalf("schedule armed but nothing fired: %+v", rep.FaultStats)
			}
			t.Logf("seed %d: issued=%d outcomes=%+v fires=%d", seed, rep.Issued, rep.Outcomes, fires)
		})
	}
}

// TestChaosCrackedMode sends the traffic through the adaptive-index path
// with zone maps on, while faults fire in the two seams this mode adds:
// the crack write-lock escalation and the zone-map build. The invariants
// are the same — every query classified, no leaks — plus the adaptive
// index must not be corrupted: faults there fail individual queries, never
// future ones (a poisoned index would turn later queries into untyped
// wrong answers or hangs).
func TestChaosCrackedMode(t *testing.T) {
	for _, seed := range seeds(t) {
		seed := seed
		t.Run("seed="+strconv.FormatInt(seed, 10), func(t *testing.T) {
			faults := append(schedule(),
				FaultEvent{At: 0, Site: "crack/escalate", Spec: "error(0.2)"},
				FaultEvent{At: 0, Site: "storage/zonemap-build", Spec: "error(0.3)"},
			)
			rep, err := Run(Config{
				Seed:             seed,
				Clients:          3,
				QueriesPerClient: 8,
				Rows:             10_000,
				Mode:             "cracked",
				ZoneMap:          true,
				Timeout:          120 * time.Millisecond,
				Faults:           faults,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Violations) != 0 {
				t.Fatalf("chaos violations:\n  %s", strings.Join(rep.Violations, "\n  "))
			}
			if rep.Issued == 0 {
				t.Fatal("no queries issued")
			}
			var fires int64
			for _, st := range rep.FaultStats {
				fires += st.Fires
			}
			if fires == 0 {
				t.Fatalf("schedule armed but nothing fired: %+v", rep.FaultStats)
			}
			t.Logf("seed %d: issued=%d outcomes=%+v fires=%d", seed, rep.Issued, rep.Outcomes, fires)
		})
	}
}

// TestChaosKernelEncoded sends the traffic through the typed-kernel scan
// over an encoded (dictionary/RLE) demo table, while faults fire in the
// two seams this PR adds: kernel dispatch (per query, mid-run) and column
// encoding (setup phase, via a negative-At event — an injected encode
// error must fall back to the plain representation and the load must still
// succeed). The standing invariants apply unchanged: every query
// classified, no leaks, faults actually fired.
func TestChaosKernelEncoded(t *testing.T) {
	for _, seed := range seeds(t) {
		seed := seed
		t.Run("seed="+strconv.FormatInt(seed, 10), func(t *testing.T) {
			faults := append(schedule(),
				FaultEvent{At: -1, Site: "storage/segment-encode", Spec: "error"},
				FaultEvent{At: 0, Site: "exec/kernel-dispatch", Spec: "error(0.2)"},
			)
			rep, err := Run(Config{
				Seed:             seed,
				Clients:          3,
				QueriesPerClient: 8,
				Rows:             10_000,
				ZoneMap:          true,
				Kernels:          true,
				AggKernels:       true,
				Encode:           true,
				Timeout:          120 * time.Millisecond,
				Faults:           faults,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Violations) != 0 {
				t.Fatalf("chaos violations:\n  %s", strings.Join(rep.Violations, "\n  "))
			}
			if rep.Issued == 0 {
				t.Fatal("no queries issued")
			}
			if st := rep.FaultStats["storage/segment-encode"]; st.Fires == 0 {
				t.Fatalf("setup-phase encode fault never fired: %+v", rep.FaultStats)
			}
			var fires int64
			for _, st := range rep.FaultStats {
				fires += st.Fires
			}
			t.Logf("seed %d: issued=%d outcomes=%+v fires=%d", seed, rep.Issued, rep.Outcomes, fires)
		})
	}
}

// TestChaosShardFleet runs the chaos mix against a coordinator over an
// in-process worker fleet while the shard seams fault: flaky scatter
// RPCs, slow worker execution, and a mid-run hard kill of one worker.
// On top of the standing invariants, every distributed answer must obey
// the coverage contract — degraded strictly below 1, healthy exactly 1 —
// and after the kill the fleet must keep answering from survivors.
func TestChaosShardFleet(t *testing.T) {
	for _, seed := range seeds(t) {
		seed := seed
		t.Run("seed="+strconv.FormatInt(seed, 10), func(t *testing.T) {
			faults := []FaultEvent{
				{At: 0, Site: "exec/scan", Spec: "latency(10ms,0.3)", For: 900 * time.Millisecond},
				{At: 5 * time.Millisecond, Site: "shard/rpc", Spec: "error(0.15)", For: 600 * time.Millisecond},
				{At: 10 * time.Millisecond, Site: "shard/exec", Spec: "latency(40ms,0.2)", For: 500 * time.Millisecond},
			}
			rep, err := Run(Config{
				Seed:             seed,
				Clients:          3,
				QueriesPerClient: 10,
				Rows:             10_000,
				Timeout:          250 * time.Millisecond,
				Faults:           faults,
				Shards:           3,
				KillShardAt:      30 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Violations) != 0 {
				t.Fatalf("chaos violations:\n  %s", strings.Join(rep.Violations, "\n  "))
			}
			if rep.Issued == 0 {
				t.Fatal("no queries issued")
			}
			// The kill must be visible: with a worker dead for most of the
			// run, some distributed answers must have degraded (complete
			// classification of them is already checked by Run).
			if rep.Outcomes.Degraded == 0 {
				t.Fatalf("shard killed but nothing degraded: %+v", rep.Outcomes)
			}
			var fires int64
			for _, st := range rep.FaultStats {
				fires += st.Fires
			}
			if fires == 0 {
				t.Fatalf("schedule armed but nothing fired: %+v", rep.FaultStats)
			}
			t.Logf("seed %d: issued=%d outcomes=%+v fires=%d", seed, rep.Issued, rep.Outcomes, fires)
		})
	}
}

// TestChaosFleetHeals is the kill→re-join soak: one worker is hard-killed
// mid-run and restarted blank while transport faults keep firing, with
// the coordinator's healer on. On top of the standing invariants (every
// query classified, goroutines settle), Run checks invariant 4: the fleet
// must return to exactly full coverage, so the report carries a non-empty
// heal ledger and coverage 1.
func TestChaosFleetHeals(t *testing.T) {
	for _, seed := range seeds(t) {
		seed := seed
		t.Run("seed="+strconv.FormatInt(seed, 10), func(t *testing.T) {
			faults := []FaultEvent{
				{At: 0, Site: "exec/scan", Spec: "latency(10ms,0.3)", For: 900 * time.Millisecond},
				{At: 5 * time.Millisecond, Site: "shard/rpc", Spec: "error(0.1)", For: 400 * time.Millisecond},
			}
			rep, err := Run(Config{
				Seed:             seed,
				Clients:          3,
				QueriesPerClient: 12,
				Rows:             10_000,
				Timeout:          250 * time.Millisecond,
				Faults:           faults,
				Shards:           3,
				KillShardAt:      30 * time.Millisecond,
				RestartShardAt:   250 * time.Millisecond,
				Heal:             true,
				HealInterval:     20 * time.Millisecond,
				RepartitionAfter: -1, // the worker comes back: restage, don't repartition
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Violations) != 0 {
				t.Fatalf("chaos violations:\n  %s", strings.Join(rep.Violations, "\n  "))
			}
			if rep.Coverage != 1 {
				t.Fatalf("final coverage %v, want exactly 1", rep.Coverage)
			}
			var heals int64
			for _, n := range rep.Heals {
				heals += n
			}
			if heals == 0 {
				t.Fatalf("fleet healed with an empty heal ledger: %+v", rep.Heals)
			}
			t.Logf("seed %d: issued=%d outcomes=%+v heals=%v", seed, rep.Issued, rep.Outcomes, rep.Heals)
		})
	}
}

// TestChaosDrainMidRun adds invariant 3: a drain (the SIGTERM path)
// initiated while faults fire must complete with nothing in flight, and
// the clients must see clean 503s afterwards — all still classified.
func TestChaosDrainMidRun(t *testing.T) {
	for _, seed := range seeds(t) {
		seed := seed
		t.Run("seed="+strconv.FormatInt(seed, 10), func(t *testing.T) {
			rep, err := Run(Config{
				Seed:             seed,
				Clients:          3,
				QueriesPerClient: 10,
				Rows:             10_000,
				Timeout:          120 * time.Millisecond,
				Faults:           schedule(),
				DrainAt:          40 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Violations) != 0 {
				t.Fatalf("chaos violations:\n  %s", strings.Join(rep.Violations, "\n  "))
			}
			if !rep.Drained {
				t.Fatal("drain did not complete")
			}
			if rep.Outcomes.Rejected == 0 {
				t.Fatalf("no post-drain rejections recorded: %+v", rep.Outcomes)
			}
		})
	}
}

// TestChaosDeterministicFiring: two runs with the same seed arm the same
// schedule against the same workload; per-site decision streams are
// hit-indexed (see fault.TestRateDeterminism), so the *decisions* coincide
// even though goroutine interleavings differ. Here we check the coarse,
// stable signature: the same sites fired in both runs.
func TestChaosDeterministicFiring(t *testing.T) {
	cfg := Config{
		Seed:             5,
		Clients:          2,
		QueriesPerClient: 6,
		Rows:             8_000,
		Timeout:          120 * time.Millisecond,
		Faults: []FaultEvent{
			{At: 0, Site: "exec/scan", Spec: "latency(30ms,0.5)"},
			{At: 0, Site: "cache/get", Spec: "error(0.5)"},
		},
	}
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for site := range first.FaultStats {
		if first.FaultStats[site].Fires > 0 && second.FaultStats[site].Fires == 0 {
			t.Errorf("site %s fired in run 1 but not run 2", site)
		}
	}
	for site := range second.FaultStats {
		if second.FaultStats[site].Fires > 0 && first.FaultStats[site].Fires == 0 {
			t.Errorf("site %s fired in run 2 but not run 1", site)
		}
	}
}
