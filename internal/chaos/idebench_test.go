package chaos

import (
	"context"
	"net/http"
	"runtime"
	"strconv"
	"testing"
	"time"

	"dex/internal/fault"
	"dex/internal/idebench"
	"dex/internal/server"
)

// The idebench driver under the standing failpoint matrix: the benchmark
// must hold the same invariants the chaos harness demands of the load
// harness — every issued query lands in exactly one typed outcome bucket
// (nothing unclassified), the run completes, and the process settles back
// to its pre-run goroutine count. A benchmark that leaks goroutines or
// miscounts under faults would quietly corrupt every number it reports.
func TestIDEBenchUnderChaos(t *testing.T) {
	for _, seed := range seeds(t) {
		seed := seed
		t.Run("seed="+strconv.FormatInt(seed, 10), func(t *testing.T) {
			fault.Reset()
			defer fault.Reset()
			fault.SetSeed(seed)

			local, err := idebench.StartLocal(idebench.LocalConfig{Rows: 8_000, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			// Warm one query through the stack before the baseline so
			// lazily started helpers (http transport, server pools) are
			// not counted as leaks.
			warm := server.NewClient(local.URL)
			wsid, err := warm.CreateSession(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := warm.Query(context.Background(), wsid, server.QueryRequest{SQL: "SELECT count(*) FROM sales"}); err != nil {
				t.Fatal(err)
			}
			warm.EndSession(context.Background(), wsid)
			warm.HTTP.CloseIdleConnections()
			baseline := runtime.NumGoroutine()

			// The standing chaos mix, armed statically for the whole run
			// (the benchmark is short; windows would mostly miss it).
			for _, fp := range []struct{ site, spec string }{
				{"exec/scan", "latency(20ms,0.5)"},
				{"cache/get", "error(0.5)"},
				{"server/admit", "error(0.2)"},
				{"client/transport", "error(0.15)"},
				{"server/handler", "error(0.05)"},
			} {
				if err := fault.Enable(fp.site, fp.spec); err != nil {
					t.Fatal(err)
				}
			}

			httpCl := &http.Client{}
			cl := server.NewClient(local.URL)
			cl.HTTP = httpCl
			cl.Retry = &server.RetryPolicy{MaxAttempts: 3, BaseBackoff: 5 * time.Millisecond, Seed: seed}
			cfg := idebench.Config{
				Users:      3,
				Seed:       seed,
				Mode:       "exact",
				Deadline:   120 * time.Millisecond,
				ThinkScale: 0,
				User:       idebench.UserConfig{Ops: 8},
				// The oracle pass would run under the same faults and
				// prove nothing here; the quality tests cover it.
				QualitySample: -1,
			}
			rep, err := idebench.Run(context.Background(), cl, cfg)
			if err != nil {
				t.Fatalf("driver did not survive the fault matrix: %v", err)
			}

			// Invariant: every issued query classified, none untyped.
			if want := int64(cfg.Users * cfg.User.Ops); rep.Issued != want {
				t.Fatalf("issued %d, want %d", rep.Issued, want)
			}
			sum := rep.OK + rep.Degraded + rep.Late + rep.Timeout +
				rep.Rejected + rep.Transport + rep.Failed + rep.Unclassified
			if sum != rep.Issued {
				t.Fatalf("outcome buckets sum to %d, issued %d: %+v", sum, rep.Issued, rep)
			}
			if rep.Unclassified != 0 {
				t.Fatalf("%d unclassified outcomes under faults: %+v", rep.Unclassified, rep)
			}

			// The faults must actually have fired — a quiet matrix would
			// make this test vacuous.
			fired := false
			for _, st := range fault.Stats() {
				if st.Fires > 0 {
					fired = true
					break
				}
			}
			if !fired {
				t.Fatal("no failpoint fired during the run")
			}

			// Invariant: no goroutine leaks once the run tears down.
			fault.Reset()
			local.Close()
			httpCl.CloseIdleConnections()
			settled := runtime.NumGoroutine()
			for i := 0; i < 50 && settled > baseline+2; i++ {
				time.Sleep(10 * time.Millisecond)
				settled = runtime.NumGoroutine()
			}
			if settled > baseline+2 {
				t.Fatalf("goroutines leaked: baseline %d, settled %d", baseline, settled)
			}
		})
	}
}
