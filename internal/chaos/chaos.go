// Package chaos is the seeded fault-schedule harness for the dexd service:
// it stands up an in-process server, replays synthetic exploration sessions
// against it while a scheduler arms and disarms failpoints at planned
// offsets, and checks the three liveness invariants the service claims to
// hold under faults:
//
//  1. No goroutine leaks: after the run drains and every connection
//     closes, the process settles back to its pre-run goroutine count.
//  2. Every issued query terminates: it completes (possibly degraded),
//     is rejected with a typed load-shed error, or fails with a typed
//     HTTP/transport error. Nothing hangs, nothing returns an error the
//     client cannot classify.
//  3. The server drains cleanly mid-chaos: Drain — exactly what dexd runs
//     on SIGTERM — returns with zero queries in flight while faults are
//     still firing.
//  4. The fleet heals: when a sharded run schedules a worker kill and a
//     blank restart with the coordinator's healer enabled, coverage must
//     return to exactly 1.0 after the workload — full answers, no
//     coordinator restart.
//
// Everything is seeded: the workload streams, the retry jitter, and the
// failpoint decision streams all derive from Config.Seed, so a failing
// run is replayed by re-running its seed (see cmd/dexchaos).
package chaos

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"dex/internal/core"
	"dex/internal/exec"
	"dex/internal/fault"
	"dex/internal/metrics"
	"dex/internal/server"
	"dex/internal/shard"
	"dex/internal/workload"
)

// FaultEvent arms one failpoint at an offset from run start. A zero For
// leaves it armed until the run ends. A negative At arms the site for the
// setup phase instead: engine construction and data registration, before
// the workload starts — the only window where load-time seams like
// storage/segment-encode can fire. Setup events are disarmed again before
// the goroutine baseline is taken.
type FaultEvent struct {
	At   time.Duration `json:"at"`
	Site string        `json:"site"`
	Spec string        `json:"spec"`
	For  time.Duration `json:"for,omitempty"`
}

// Config parameterizes one chaos run.
type Config struct {
	Seed             int64
	Clients          int           // concurrent synthetic explorers (default 3)
	QueriesPerClient int           // statements per session (default 10)
	Rows             int           // demo table size (default 20000)
	Mode             string        // execution mode ("" = exact)
	Timeout          time.Duration // per-query deadline (default 150ms)
	Faults           []FaultEvent  // the fault schedule
	// DrainAt, when > 0, initiates a server drain (the SIGTERM path) at
	// that offset; queries issued afterwards must get clean 503s.
	DrainAt     time.Duration
	Parallelism int
	MorselSize  int
	ZoneMap     bool        // enable zone-map scan skipping in the engine
	Kernels     bool        // enable typed predicate kernels in the engine
	AggKernels  bool        // enable typed aggregation kernels / fused pipeline
	Encode      bool        // dictionary/RLE-encode the demo table at load
	Log         *log.Logger // optional narration of the fault schedule
	// Shards, when > 0, runs the server as a coordinator over an
	// in-process worker fleet: sales queries scatter/gather, and two
	// extra invariants apply — a degraded distributed answer must report
	// coverage strictly below 1, and a non-degraded one exactly 1.
	Shards int
	// KillShardAt, when > 0 (requires Shards), hard-kills one worker at
	// that offset — the crash the degradation contract is about.
	KillShardAt time.Duration
	// RestartShardAt, when > 0 (requires KillShardAt), brings the killed
	// worker back — blank — at that offset, the crash-and-rejoin shape the
	// coordinator's healer re-stages.
	RestartShardAt time.Duration
	// Heal enables the coordinator's self-healing state machine; with a
	// kill and restart scheduled, the run gains a fourth invariant: the
	// fleet must return to exactly full coverage after the workload ends.
	Heal             bool
	HealInterval     time.Duration
	RepartitionAfter time.Duration
}

// Outcome buckets: every issued query must land in exactly one.
type Outcomes struct {
	Completed int64 `json:"completed"` // 2xx, exact or cached
	Degraded  int64 `json:"degraded"`  // 2xx with degraded:true
	Rejected  int64 `json:"rejected"`  // load-shed (429/503) after retries
	Typed     int64 `json:"typed"`     // other HTTP status errors (4xx/5xx)
	Transport int64 `json:"transport"` // network-level failures after retries
	Timeout   int64 `json:"timeout"`   // 504: deadline exceeded, not degradable
}

func (o *Outcomes) total() int64 {
	return o.Completed + o.Degraded + o.Rejected + o.Typed + o.Transport + o.Timeout
}

// Report is the outcome of one chaos run. Violations is the verdict:
// empty means every invariant held.
type Report struct {
	Seed       int64                       `json:"seed"`
	Issued     int64                       `json:"issued"`
	Outcomes   Outcomes                    `json:"outcomes"`
	Drained    bool                        `json:"drained"`
	DrainMS    float64                     `json:"drain_ms,omitempty"`
	WallS      float64                     `json:"wall_s"`
	Goroutines [2]int                      `json:"goroutines"` // [baseline, settled]
	FaultStats map[string]fault.PointStats `json:"fault_stats"`
	// Coverage and Heals describe the fleet after the run when a sharded
	// run scheduled a kill: final healthy-placement fraction and completed
	// heal operations by kind.
	Coverage   float64          `json:"coverage,omitempty"`
	Heals      map[string]int64 `json:"heals,omitempty"`
	Violations []string         `json:"violations"`
}

func (c *Config) fill() {
	if c.Clients <= 0 {
		c.Clients = 3
	}
	if c.QueriesPerClient <= 0 {
		c.QueriesPerClient = 10
	}
	if c.Rows <= 0 {
		c.Rows = 20_000
	}
	if c.Timeout <= 0 {
		c.Timeout = 150 * time.Millisecond
	}
}

func (c *Config) logf(format string, args ...any) {
	if c.Log != nil {
		c.Log.Printf(format, args...)
	}
}

// Run executes one seeded chaos run and reports whether the invariants
// held. It owns the global failpoint registry for its duration: it resets
// every site on entry and on exit.
func Run(cfg Config) (*Report, error) {
	cfg.fill()
	rep := &Report{Seed: cfg.Seed}

	// The failpoint decision streams derive from the run seed.
	fault.Reset()
	defer fault.Reset()
	fault.SetSeed(cfg.Seed)

	// Setup-phase faults (negative At): armed across engine construction
	// and data registration, disarmed before the workload baseline.
	for _, ev := range cfg.Faults {
		if ev.At < 0 {
			cfg.logf("chaos    setup arm    %s=%s", ev.Site, ev.Spec)
			if err := fault.Enable(ev.Site, ev.Spec); err != nil {
				cfg.logf("chaos: arm %s=%s: %v", ev.Site, ev.Spec, err)
			}
		}
	}

	// In-process service: degradation on, a small admission envelope so
	// the schedule can actually saturate it.
	eng := core.New(core.Options{
		Seed:         cfg.Seed,
		Degrade:      true,
		DegradeGrace: time.Second,
		Encode:       cfg.Encode,
		Exec: exec.ExecOptions{Parallelism: cfg.Parallelism, MorselSize: cfg.MorselSize,
			ZoneMap: cfg.ZoneMap, Kernels: cfg.Kernels, AggKernels: cfg.AggKernels},
	})
	sales, err := workload.Sales(rand.New(rand.NewSource(42)), cfg.Rows)
	if err != nil {
		return nil, err
	}
	if err := eng.Register(sales); err != nil {
		return nil, err
	}
	for _, ev := range cfg.Faults {
		if ev.At < 0 {
			cfg.logf("chaos    setup disarm %s", ev.Site)
			fault.Disable(ev.Site)
		}
	}
	scfg := server.Config{
		MaxInFlight:  4,
		MaxQueue:     8,
		QueueTimeout: 100 * time.Millisecond,
		// Tracing on: the slow ring must keep working while faults fire,
		// and the post-run scrape validates /metrics under chaos.
		SlowThreshold: 25 * time.Millisecond,
		SlowRing:      32,
	}
	var fleet *shard.LocalFleet
	if cfg.Shards > 0 {
		fleet, err = shard.StartLocalFleet(context.Background(), shard.FleetConfig{
			Shards:           cfg.Shards,
			Rows:             cfg.Rows,
			Seed:             42, // same generator seed as the local sales table
			Heal:             cfg.Heal,
			HealInterval:     cfg.HealInterval,
			RepartitionAfter: cfg.RepartitionAfter,
		})
		if err != nil {
			return nil, fmt.Errorf("chaos: fleet: %w", err)
		}
		defer fleet.Close()
		scfg.Shard = fleet.Coord
	}
	srv := server.New(eng, scfg)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Warm the server (TCP pool, lazy engine state) before taking the
	// goroutine baseline, so steady-state helpers are not counted as leaks.
	warm := server.NewClient(ts.URL)
	if _, err := warm.Tables(context.Background()); err != nil {
		return nil, fmt.Errorf("chaos: warmup: %w", err)
	}
	warm.HTTP.CloseIdleConnections()
	if fleet != nil {
		// Dial every worker before the baseline: the coordinator's
		// per-shard connections and their read loops are steady state,
		// not leaks.
		if _, err := fleet.Coord.Execute(context.Background(), fleet.Coord.Table(),
			exec.Query{Select: []exec.SelectItem{{Col: "*", Agg: exec.AggCount}}}, core.Exact); err != nil {
			return nil, fmt.Errorf("chaos: fleet warmup: %w", err)
		}
	}
	baseline := runtime.NumGoroutine()

	// The fault scheduler: a sorted timeline of arm/disarm actions.
	type action struct {
		at   time.Duration
		site string
		spec string // "" = disarm
	}
	var timeline []action
	for _, ev := range cfg.Faults {
		if ev.At < 0 {
			continue // setup-phase event, already handled
		}
		timeline = append(timeline, action{ev.At, ev.Site, ev.Spec})
		if ev.For > 0 {
			timeline = append(timeline, action{ev.At + ev.For, ev.Site, ""})
		}
	}
	sort.SliceStable(timeline, func(i, j int) bool { return timeline[i].at < timeline[j].at })

	start := time.Now()
	stopSched := make(chan struct{})
	var schedWG sync.WaitGroup
	schedWG.Add(1)
	go func() {
		defer schedWG.Done()
		for _, act := range timeline {
			wait := act.at - time.Since(start)
			if wait > 0 {
				select {
				case <-time.After(wait):
				case <-stopSched:
					return
				}
			}
			if act.spec == "" {
				cfg.logf("chaos %8s disarm %s", time.Since(start).Round(time.Millisecond), act.site)
				fault.Disable(act.site)
			} else {
				cfg.logf("chaos %8s arm    %s=%s", time.Since(start).Round(time.Millisecond), act.site, act.spec)
				if err := fault.Enable(act.site, act.spec); err != nil {
					cfg.logf("chaos: arm %s=%s: %v", act.site, act.spec, err)
				}
			}
		}
	}()

	// Mid-run shard kill: a hard worker crash, not a graceful exit. With
	// RestartShardAt set, the same worker comes back blank later — the
	// kill→re-join shape whose healing invariant is checked after the run.
	if fleet != nil && cfg.KillShardAt > 0 {
		victim := int(cfg.Seed) % cfg.Shards
		if victim < 0 {
			victim += cfg.Shards
		}
		schedWG.Add(1)
		go func() {
			defer schedWG.Done()
			select {
			case <-time.After(cfg.KillShardAt):
				cfg.logf("chaos %8s kill   shard %d", time.Since(start).Round(time.Millisecond), victim)
				fleet.KillShard(victim)
			case <-stopSched:
				return
			}
			if cfg.RestartShardAt <= cfg.KillShardAt {
				return
			}
			// The restart is not cancelled by the workload ending: the heal
			// invariant needs the worker back even if every client finished
			// while it was down.
			time.Sleep(cfg.RestartShardAt - cfg.KillShardAt)
			cfg.logf("chaos %8s restart shard %d (blank)", time.Since(start).Round(time.Millisecond), victim)
			if err := fleet.RestartShard(victim); err != nil {
				cfg.logf("chaos: restart shard %d: %v", victim, err)
			}
		}()
	}

	// Mid-run drain: the same call dexd makes on SIGTERM.
	drainDone := make(chan struct{})
	if cfg.DrainAt > 0 {
		go func() {
			defer close(drainDone)
			time.Sleep(cfg.DrainAt)
			cfg.logf("chaos %8s drain  (SIGTERM path)", time.Since(start).Round(time.Millisecond))
			t0 := time.Now()
			dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			err := srv.Drain(dctx)
			rep.DrainMS = float64(time.Since(t0).Microseconds()) / 1e3
			rep.Drained = err == nil
		}()
	} else {
		close(drainDone)
	}

	// The synthetic explorers. Each classifies every query into exactly
	// one outcome bucket; anything unclassifiable is an invariant-2
	// violation.
	var (
		mu         sync.Mutex
		out        Outcomes
		issued     int64
		violations []string
	)
	violate := func(format string, args ...any) {
		mu.Lock()
		violations = append(violations, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := server.NewClient(ts.URL)
			cl.Retry = &server.RetryPolicy{
				MaxAttempts: 3,
				BaseBackoff: 5 * time.Millisecond,
				MaxBackoff:  100 * time.Millisecond,
				Seed:        cfg.Seed + int64(c),
			}
			defer cl.HTTP.CloseIdleConnections()
			ctx := context.Background()
			id, err := cl.CreateSession(ctx)
			if err != nil {
				// The server may already be draining or the transport
				// faulted past the retry budget: a typed, terminal answer
				// for the whole session is a legal outcome for each of its
				// queries.
				var se *server.StatusError
				n := int64(cfg.QueriesPerClient)
				mu.Lock()
				switch {
				case server.IsRejected(err):
					issued, out.Rejected = issued+n, out.Rejected+n
				case server.IsTransport(err):
					issued, out.Transport = issued+n, out.Transport+n
				case errors.As(err, &se):
					issued, out.Typed = issued+n, out.Typed+n
				default:
					mu.Unlock()
					violate("client %d: session create failed untyped: %v", c, err)
					return
				}
				mu.Unlock()
				return
			}
			defer cl.EndSession(ctx, id)
			stmts := workload.ExplorationSQL(rand.New(rand.NewSource(cfg.Seed+int64(c))), cfg.QueriesPerClient)
			for _, sql := range stmts {
				req := server.QueryRequest{SQL: sql, Mode: cfg.Mode, TimeoutMS: cfg.Timeout.Milliseconds()}
				res, err := cl.Query(ctx, id, req)
				mu.Lock()
				issued++
				mu.Unlock()
				switch {
				case err == nil:
					// Distributed answers carry a coverage fraction; the
					// contract is exact: degraded means strictly partial,
					// healthy means complete, never an extrapolation.
					if res.Coverage != 0 {
						if res.Coverage < 0 || res.Coverage > 1 {
							violate("client %d: coverage %v out of range", c, res.Coverage)
						} else if res.Degraded && res.Coverage >= 1 {
							violate("client %d: degraded answer claims full coverage", c)
						} else if !res.Degraded && res.Coverage != 1 {
							violate("client %d: healthy answer claims coverage %v", c, res.Coverage)
						}
					}
					mu.Lock()
					if res.Degraded {
						out.Degraded++
					} else {
						out.Completed++
					}
					mu.Unlock()
				case server.IsRejected(err):
					mu.Lock()
					out.Rejected++
					mu.Unlock()
				case server.IsTransport(err):
					mu.Lock()
					out.Transport++
					mu.Unlock()
				default:
					var se *server.StatusError
					if !errors.As(err, &se) {
						violate("client %d: query failed untyped: %v", c, err)
						continue
					}
					mu.Lock()
					if se.Status == 504 {
						out.Timeout++
					} else {
						out.Typed++
					}
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()
	close(stopSched)
	schedWG.Wait()
	<-drainDone
	rep.WallS = time.Since(start).Seconds()
	rep.FaultStats = fault.Stats()
	fault.Reset() // disarm everything before the invariant checks

	// Observability must survive the chaos it just observed: /metrics has
	// to parse as valid Prometheus exposition and /admin/slow has to answer
	// after a run full of injected failures.
	scrapeCl := server.NewClient(ts.URL)
	if expo, err := scrapeCl.Metrics(context.Background()); err != nil {
		violate("post-run /metrics scrape failed: %v", err)
	} else if err := metrics.ValidateExposition(strings.NewReader(expo)); err != nil {
		violate("post-run /metrics exposition invalid: %v", err)
	}
	if _, err := scrapeCl.Slow(context.Background()); err != nil {
		violate("post-run /admin/slow fetch failed: %v", err)
	}
	scrapeCl.HTTP.CloseIdleConnections()

	// Invariant 4 (healing): with the healer on and a kill→restart
	// scheduled, the fleet must return to exactly full coverage. The poll
	// issues real coordinator queries so a crash no client happened to
	// observe still gets classified (lost) and healed, and so the final
	// answer is checked end to end: complete, not degraded, coverage 1.
	if fleet != nil && cfg.KillShardAt > 0 {
		if cfg.Heal && cfg.RestartShardAt > cfg.KillShardAt {
			healed := false
			countQ := exec.Query{Select: []exec.SelectItem{{Col: "*", Agg: exec.AggCount}}}
			for deadline := time.Now().Add(15 * time.Second); time.Now().Before(deadline); {
				res, err := fleet.Coord.Execute(context.Background(), fleet.Coord.Table(), countQ, core.Exact)
				if err == nil && !res.Degraded && res.Coverage == 1 && fleet.Coord.Coverage() == 1 {
					healed = true
					break
				}
				time.Sleep(20 * time.Millisecond)
			}
			if !healed {
				violate("fleet did not heal to full coverage after kill+restart")
			}
		}
		snap := fleet.Coord.Snapshot()
		rep.Coverage = snap.Coverage
		rep.Heals = snap.Heals
	}

	// Invariant 3: if a drain was scheduled it must have finished cleanly
	// with no queries left in flight.
	if cfg.DrainAt > 0 {
		if !rep.Drained {
			violate("drain did not complete within its deadline")
		}
		if n := srv.Stats().Active; n != 0 {
			violate("%d queries still in flight after drain", n)
		}
	}

	// Invariant 2: the books must balance — every issued query landed in
	// exactly one bucket (untyped errors were flagged as they happened).
	rep.Issued = issued
	rep.Outcomes = out
	if got := out.total(); got != issued {
		violate("outcome accounting: %d issued, %d classified", issued, got)
	}

	// Invariant 1: tear everything down and wait for the goroutine count
	// to settle back to the baseline (small slack for runtime helpers).
	ts.Close()
	settled := runtime.NumGoroutine()
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		settled = runtime.NumGoroutine()
		if settled <= baseline+2 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	rep.Goroutines = [2]int{baseline, settled}
	if settled > baseline+2 {
		violate("goroutine leak: %d before run, %d after settle", baseline, settled)
	}

	rep.Violations = violations
	return rep, nil
}
