//go:build race

package bench

// raceEnabled reports whether the race detector is instrumenting this
// build. Timing guards skip under -race: instrumentation inflates the
// cost of the scheduler's atomic cursor far beyond production behaviour.
const raceEnabled = true
