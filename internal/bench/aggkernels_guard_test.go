package bench

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"dex/internal/exec"
	"dex/internal/expr"
	"dex/internal/storage"
)

// TestAggKernelNeverSlower pins the aggregation-kernel dispatch the way
// TestKernelScanNeverSlower pins the predicate kernels: with agg kernels
// on, an aggregate query must never fall below 0.9x the same query on the
// PR8 baseline (predicate kernels only, generic accumulation). Covers the
// three fused shapes — dense scalar, filtered scalar, dict group-by — so a
// regression in any accumulator loop or in the fusion plumbing trips it.
// The headline speedups are E34's to report; this test only guards the
// floor.
func TestAggKernelNeverSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-row timing guard skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing guard skipped under -race: instrumentation swamps the accumulation loop")
	}
	const rows = 1_000_000
	rng := rand.New(rand.NewSource(34))
	tab, err := kernelBenchTable(rng, rows)
	if err != nil {
		t.Fatal(err)
	}
	encTab, _, err := storage.EncodeTable(tab, storage.EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	queries := []struct {
		name string
		tbl  *storage.Table
		q    exec.Query
	}{
		{"sum-dense", tab, exec.Query{
			Select: []exec.SelectItem{{Col: "amount", Agg: exec.AggSum}},
		}},
		{"sum-10pct", tab, exec.Query{
			Select: []exec.SelectItem{{Col: "amount", Agg: exec.AggSum}},
			Where:  expr.Cmp("v", expr.LT, storage.Float(10)),
		}},
		{"group-dict", encTab, exec.Query{
			Select:  []exec.SelectItem{{Col: "cat"}, {Col: "amount", Agg: exec.AggSum}},
			GroupBy: []string{"cat"},
		}},
	}
	bestOf := func(reps int, tbl *storage.Table, q exec.Query, opt exec.ExecOptions) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < reps; i++ {
			start := time.Now()
			if _, err := exec.ExecuteOpts(tbl, q, opt); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	baseOpt := exec.ExecOptions{Parallelism: 1, Kernels: true}
	aggOpt := exec.ExecOptions{Parallelism: 1, Kernels: true, AggKernels: true}
	for _, qq := range queries {
		// Warm both paths so first-touch allocation biases neither.
		bestOf(1, qq.tbl, qq.q, baseOpt)
		bestOf(1, qq.tbl, qq.q, aggOpt)
		base := bestOf(5, qq.tbl, qq.q, baseOpt)
		agg := bestOf(5, qq.tbl, qq.q, aggOpt)
		const slack = 2 * time.Millisecond
		limit := base + base/9 + slack // base/0.9, plus jitter allowance
		t.Logf("%s: rows=%d GOMAXPROCS=%d baseline=%v aggkernel=%v limit=%v",
			qq.name, rows, runtime.GOMAXPROCS(0), base, agg, limit)
		if agg > limit {
			t.Errorf("%s: agg-kernel path %v exceeds 0.9x-floor limit %v (baseline %v)",
				qq.name, agg, limit, base)
		}
	}
}
