package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"os"
	"time"

	"dex/internal/core"
	"dex/internal/exec"
	"dex/internal/protocol"
	"dex/internal/server"
	"dex/internal/shard"
	"dex/internal/workload"
)

func init() {
	register(Experiment{
		ID:     "E32",
		Title:  "Distributed scatter/gather: shard-count scaling and degradation",
		Source: "MapReduce-era scatter/gather (Dean/Ghemawat); online aggregation fleets (BlinkDB, Hellerstein et al.)",
		Run:    runE32,
	})
}

// e32Cell is one shard-count measurement in the JSON baseline.
type e32Cell struct {
	Shards    int     `json:"shards"`
	Processes bool    `json:"worker_processes"`
	Rows      int64   `json:"rows_placed"`
	Qps       float64 `json:"qps"`
	P50MS     float64 `json:"p50_ms"`
	P95MS     float64 `json:"p95_ms"`
	Queries   int64   `json:"queries"`
	Failed    int64   `json:"failed"`
}

type e32Baseline struct {
	Rows       int64     `json:"rows"`
	Seed       int64     `json:"seed"`
	Clients    int       `json:"clients"`
	Cells      []e32Cell `json:"cells"`
	KillShards int       `json:"kill_demo_shards"`
	KillCov    float64   `json:"kill_demo_coverage"`
	// HealMS is how long the healer took to restore coverage to exactly
	// 1.0 after the killed worker came back blank.
	HealMS float64 `json:"kill_demo_heal_ms"`
}

// runE32 measures the distributed execution path the way the scatter/
// gather literature frames it: the same closed-loop exploration workload
// against the same HTTP surface, with the sales table hash-partitioned
// across 1, 2 and 4 dexd workers. At full size the workers are separate
// OS processes reached over loopback TCP (the deployment shape); quick
// mode keeps them in-process so the test binary never re-executes itself.
//
// Read the throughput column with the host in mind: this benchmark
// machine schedules everything on a single core, so shards cannot buy
// parallel CPU here — what the numbers isolate is the protocol overhead
// of scatter/gather (serialize, frame, merge) against the win from
// cracking smaller per-shard partitions. On a multi-core fleet the same
// harness measures real scale-out; the parity checks are what this run
// certifies unconditionally: every shard count returns byte-identical
// exact answers, and killing a worker degrades coverage honestly instead
// of failing or inventing rows.
func runE32(w io.Writer, cfg Config) error {
	rows := cfg.Scale(200_000, 40, 4_000)
	clients := 6
	perClient := 25
	if cfg.Quick {
		clients, perClient = 2, 6
	}
	seed := cfg.Seed

	// Single-node oracle answer for the parity check.
	oracle := core.New(core.Options{Seed: seed})
	sales, err := workload.Sales(rand.New(rand.NewSource(seed)), rows)
	if err != nil {
		return err
	}
	if err := oracle.Register(sales); err != nil {
		return err
	}

	base := e32Baseline{Rows: int64(rows), Seed: seed, Clients: clients}
	tab := NewTable("shards", "procs", "placed", "qps", "p50_ms", "p95_ms", "queries", "failed")
	for _, n := range []int{1, 2, 4} {
		cell, err := runE32Cell(cfg, n, rows, clients, perClient)
		if err != nil {
			return fmt.Errorf("E32 shards=%d: %w", n, err)
		}
		base.Cells = append(base.Cells, *cell)
		procs := "in-proc"
		if cell.Processes {
			procs = "multi"
		}
		tab.Row(n, procs, cell.Rows, fmt.Sprintf("%.1f", cell.Qps),
			fmt.Sprintf("%.2f", cell.P50MS), fmt.Sprintf("%.2f", cell.P95MS),
			cell.Queries, cell.Failed)
	}
	fmt.Fprintf(w, "closed-loop exploration workload, %d clients x %d queries, exact mode, rows=%d\n",
		clients, perClient, rows)
	fmt.Fprintf(w, "single-core host: shard counts isolate protocol overhead, not parallel CPU\n\n")
	tab.Fprint(w)

	// Degradation + healing demo: kill one of 3 workers, show the query
	// still answers with the surviving fraction as coverage, then restart
	// the worker blank and time the healer restoring exactly full coverage.
	kcov, healMS, err := runE32Kill(rows, seed)
	if err != nil {
		return fmt.Errorf("E32 kill demo: %w", err)
	}
	base.KillShards = 3
	base.KillCov = kcov
	base.HealMS = healMS
	fmt.Fprintf(w, "\nkill demo: 1 of 3 workers killed -> count(*) degraded, coverage=%.3f (never extrapolated)\n", kcov)
	fmt.Fprintf(w, "heal demo: worker restarted blank -> re-staged, coverage=1.000 after %.0f ms\n", healMS)

	if cfg.JSONPath != "" {
		blob, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.JSONPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s\n", cfg.JSONPath)
	}
	return nil
}

// startFleet boots n workers — separate processes at full size, in-process
// in quick mode — and returns the bootstrapped coordinator plus teardown.
func startFleet(cfg Config, n, rows int) (*shard.Coordinator, bool, func(), error) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	// Healing stays on for every measured cell: the parity gates certify
	// that the healer's background probes never disturb a healthy fleet.
	if cfg.Quick {
		f, err := shard.StartLocalFleet(ctx, shard.FleetConfig{Shards: n, Rows: rows, Seed: cfg.Seed, Heal: true})
		if err != nil {
			return nil, false, nil, err
		}
		return f.Coord, false, f.Close, nil
	}
	pf, err := shard.SpawnWorkers(n, cfg.Seed)
	if err != nil {
		return nil, false, nil, err
	}
	coord, err := shard.New(shard.Config{
		Spec:    shard.Spec{Table: "sales", Column: "amount", Scheme: shard.Hash, Shards: n},
		Workers: pf.Addrs,
		Heal:    true,
	})
	if err != nil {
		pf.Close()
		return nil, false, nil, err
	}
	if err := coord.Bootstrap(ctx, protocol.Load{Kind: "sales", Rows: rows, Seed: cfg.Seed}); err != nil {
		coord.Close()
		pf.Close()
		return nil, false, nil, err
	}
	teardown := func() {
		coord.Close()
		pf.Close()
	}
	return coord, true, teardown, nil
}

func runE32Cell(cfg Config, n, rows, clients, perClient int) (*e32Cell, error) {
	coord, procs, teardown, err := startFleet(cfg, n, rows)
	if err != nil {
		return nil, err
	}
	defer teardown()

	eng := core.New(core.Options{Seed: cfg.Seed})
	sales, err := workload.Sales(rand.New(rand.NewSource(cfg.Seed)), rows)
	if err != nil {
		return nil, err
	}
	if err := eng.Register(sales); err != nil {
		return nil, err
	}
	srv := server.New(eng, server.Config{Shard: coord, MaxInFlight: 8, MaxQueue: 256})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := server.NewClient(ts.URL)
	defer cl.HTTP.CloseIdleConnections()

	// Parity gate before measuring anything: the fleet must place every
	// row and count(*) must equal the single-node total.
	ctx := context.Background()
	id, err := cl.CreateSession(ctx)
	if err != nil {
		return nil, err
	}
	res, err := cl.Query(ctx, id, server.QueryRequest{SQL: "SELECT COUNT(*) FROM sales"})
	if err != nil {
		return nil, err
	}
	cl.EndSession(ctx, id)
	if got := fmt.Sprint(res.Rows[0][0]); got != fmt.Sprint(rows) {
		return nil, fmt.Errorf("parity: distributed count(*)=%s, want %d", got, rows)
	}
	if res.Coverage != 1 || res.Degraded {
		return nil, fmt.Errorf("parity: healthy fleet degraded=%v coverage=%v", res.Degraded, res.Coverage)
	}

	rep, err := server.RunLoad(ctx, cl, server.LoadConfig{
		Clients:          clients,
		QueriesPerClient: perClient,
		Seed:             cfg.Seed,
		Timeout:          5 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	return &e32Cell{
		Shards:    n,
		Processes: procs,
		Rows:      coord.Snapshot().Rows,
		Qps:       rep.Qps,
		P50MS:     rep.P50MS,
		P95MS:     rep.P95MS,
		Queries:   rep.Queries,
		Failed:    rep.Failed + rep.Transport + rep.Dropped,
	}, nil
}

// runE32Kill demonstrates graceful degradation and self-healing on an
// in-process fleet (kill semantics are identical over the wire;
// in-process keeps the demo deterministic and cheap): the kill drops
// coverage to the exact surviving fraction, the blank restart triggers a
// re-stage, and the healer must return coverage to exactly 1.0.
func runE32Kill(rows int, seed int64) (cov, healMS float64, err error) {
	ctx := context.Background()
	f, err := shard.StartLocalFleet(ctx, shard.FleetConfig{
		Shards: 3, Rows: rows, Seed: seed,
		Heal: true, HealInterval: 25 * time.Millisecond, RepartitionAfter: -1,
	})
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	snap := f.Coord.Snapshot()
	f.KillShard(0)
	st := exec.Query{Select: []exec.SelectItem{{Col: "*", Agg: exec.AggCount}}}
	res, err := f.Coord.Execute(ctx, "sales", st, core.Exact)
	if err != nil {
		return 0, 0, err
	}
	if !res.Degraded || res.Coverage >= 1 || res.Coverage <= 0 {
		return 0, 0, fmt.Errorf("kill demo: degraded=%v coverage=%v", res.Degraded, res.Coverage)
	}
	want := float64(snap.Rows-snap.Shards[0].Rows) / float64(snap.Rows)
	if res.Coverage != want {
		return 0, 0, fmt.Errorf("kill demo: coverage %v, want surviving fraction %v", res.Coverage, want)
	}

	if err := f.RestartShard(0); err != nil {
		return 0, 0, err
	}
	t0 := time.Now()
	for deadline := t0.Add(30 * time.Second); f.Coord.Coverage() != 1; {
		if time.Now().After(deadline) {
			return 0, 0, fmt.Errorf("heal demo: coverage stuck at %v", f.Coord.Coverage())
		}
		time.Sleep(5 * time.Millisecond)
	}
	healMS = float64(time.Since(t0).Microseconds()) / 1e3
	healed, err := f.Coord.Execute(ctx, "sales", st, core.Exact)
	if err != nil {
		return 0, 0, err
	}
	if healed.Degraded || healed.Coverage != 1 {
		return 0, 0, fmt.Errorf("heal demo: degraded=%v coverage=%v after heal", healed.Degraded, healed.Coverage)
	}
	if got := healed.Table.Column(0).Value(0).AsInt(); got != int64(rows) {
		return 0, 0, fmt.Errorf("heal demo: count %d != %d after heal", got, rows)
	}
	return res.Coverage, healMS, nil
}
