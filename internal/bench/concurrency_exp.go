package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dex/internal/crack"
	"dex/internal/exec"
	"dex/internal/expr"
	"dex/internal/storage"
	"dex/internal/trace"
	"dex/internal/workload"
)

func init() {
	register(Experiment{
		ID:     "E30",
		Title:  "Concurrent cracked probes and zone-map scan skipping",
		Source: "database cracking (Idreos et al., CIDR 2007); small materialized aggregates (Moerkotte, VLDB 1998)",
		Run:    runE30,
	})
}

// e30JSON is the machine-readable baseline BENCH_concurrency.json records.
type e30JSON struct {
	Rows       int              `json:"rows"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Concurrent []e30Concurrency `json:"concurrent_probes"`
	ZoneMap    []e30Zone        `json:"zone_map"`
}

type e30Concurrency struct {
	Clients        int     `json:"clients"`
	QPS            float64 `json:"qps"`
	SerializedQPS  float64 `json:"serialized_qps"`
	VsSerialized   float64 `json:"vs_serialized"`
	ReadLockedFrac float64 `json:"read_locked_frac"`
}

type e30Zone struct {
	Selectivity float64 `json:"selectivity"`
	Morsels     int64   `json:"morsels"`
	Skipped     int64   `json:"skipped"`
	SkipFrac    float64 `json:"skip_frac"`
	OffMS       float64 `json:"off_ms"`
	OnMS        float64 `json:"on_ms"`
	Speedup     float64 `json:"speedup"`
}

// runE30 measures the two halves of the concurrency PR.
//
// Part 1: throughput of concurrent probes against one converged cracker
// index, 1→16 clients, versus the same probe stream pushed through a
// single global mutex — the engine-wide crack lock this PR removed. On a
// converged index every probe takes the shared read lock, so the scaling
// gap between the two columns is exactly what the removal bought. (On a
// single-core host both curves are flat; the read-locked fraction still
// certifies the lock path, and the race-detector parity harness certifies
// correctness.)
//
// Part 2: zone-map skip rate and speedup of a parallel filtered scan over
// a value-clustered table at decreasing selectivity. Skipping needs
// physical locality: the sales table is sorted by the probed column, the
// favorable-but-honest case (the unsorted table skips ~nothing, as the
// exec tests pin).
func runE30(w io.Writer, cfg Config) error {
	out := &e30JSON{GOMAXPROCS: runtime.GOMAXPROCS(0)}

	// ---- Part 1: concurrent cracked-probe throughput ----
	n := cfg.Scale(2_000_000, 100, 20_000)
	out.Rows = n
	rng := rand.New(rand.NewSource(cfg.Seed))
	col := make([]int64, n)
	for i := range col {
		col[i] = rng.Int63n(1 << 20)
	}
	ix := crack.New(col, crack.Options{})

	// The probe pool: 256 fixed ranges of ~0.1% selectivity. Warming cracks
	// the index at every bound, so the measured phase probes a converged
	// index — the steady state an exploration session reaches.
	const poolSize = 256
	width := int64(1<<20) / 1000
	type rg struct{ lo, hi int64 }
	pool := make([]rg, poolSize)
	for i := range pool {
		lo := rng.Int63n(1<<20 - width)
		pool[i] = rg{lo, lo + width}
	}
	for _, r := range pool {
		ix.Query(r.lo, r.hi)
	}

	totalProbes := cfg.Scale(8192, 16, 512)
	clientCounts := []int{1, 2, 4, 8, 16}
	fmt.Fprintf(w, "rows=%d GOMAXPROCS=%d pool=%d probes/run=%d\n\n", n, out.GOMAXPROCS, poolSize, totalProbes)

	// run fires totalProbes probes across c clients and returns elapsed
	// time plus the fraction served under the read lock. When serialize is
	// set, every probe additionally holds one global mutex — the old
	// engine-wide crackMu, reconstructed for the baseline column.
	run := func(c int, serialize bool) (time.Duration, float64) {
		var gate sync.Mutex
		var readLocked atomic.Int64
		per := totalProbes / c
		var wg sync.WaitGroup
		start := time.Now()
		for g := 0; g < c; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				grng := rand.New(rand.NewSource(cfg.Seed + int64(g)))
				for i := 0; i < per; i++ {
					r := pool[grng.Intn(poolSize)]
					if serialize {
						gate.Lock()
					}
					_, st, _ := ix.Probe(r.lo, r.hi)
					if serialize {
						gate.Unlock()
					}
					if st.Lock == crack.LockRead {
						readLocked.Add(1)
					}
				}
			}(g)
		}
		wg.Wait()
		return time.Since(start), float64(readLocked.Load()) / float64(per*c)
	}

	tbl := NewTable("clients", "qps", "serialized-qps", "vs-serialized", "read-locked")
	for _, c := range clientCounts {
		// Best of 3 to damp scheduler noise; the serialized baseline gets
		// the same treatment.
		best, bestSer := time.Duration(1<<62), time.Duration(1<<62)
		var readFrac float64
		for rep := 0; rep < 3; rep++ {
			d, rf := run(c, false)
			if d < best {
				best, readFrac = d, rf
			}
			ds, _ := run(c, true)
			if ds < bestSer {
				bestSer = ds
			}
		}
		probes := float64(totalProbes / c * c)
		qps := probes / best.Seconds()
		serQPS := probes / bestSer.Seconds()
		tbl.Row(c, qps, serQPS, qps/serQPS, readFrac)
		out.Concurrent = append(out.Concurrent, e30Concurrency{
			Clients: c, QPS: qps, SerializedQPS: serQPS,
			VsSerialized: qps / serQPS, ReadLockedFrac: readFrac,
		})
	}
	tbl.Fprint(w)

	// ---- Part 2: zone-map skip rate and speedup by selectivity ----
	sn := cfg.Scale(1_000_000, 50, 20_000)
	sales, err := workload.Sales(rand.New(rand.NewSource(cfg.Seed)), sn)
	if err != nil {
		return err
	}
	sorted, err := sales.SortBy("amount", false)
	if err != nil {
		return err
	}
	ac, err := sorted.ColumnByName("amount")
	if err != nil {
		return err
	}
	amounts := ac.(*storage.FloatColumn).V

	fmt.Fprintf(w, "\nzone maps: rows=%d (sorted by amount), workers=4\n\n", sn)
	ztbl := NewTable("selectivity", "skipped", "morsels", "off", "on", "speedup")
	for _, sel := range []float64{0.001, 0.01, 0.1} {
		// The quantile window [lo, hi) covering exactly sel of the rows,
		// centered in the value range.
		loIdx := int(float64(sn) * (0.5 - sel/2))
		hiIdx := int(float64(sn) * (0.5 + sel/2))
		if hiIdx >= sn {
			hiIdx = sn - 1
		}
		q := exec.Query{
			Select: []exec.SelectItem{
				{Col: "*", Agg: exec.AggCount},
				{Col: "amount", Agg: exec.AggSum},
			},
			Where: expr.And(
				expr.Cmp("amount", expr.GE, storage.Float(amounts[loIdx])),
				expr.Cmp("amount", expr.LT, storage.Float(amounts[hiIdx])),
			),
		}
		off := exec.ExecOptions{Parallelism: 4}
		on := exec.ExecOptions{Parallelism: 4, ZoneMap: true}
		dOff, err := medianTime(3, func() error {
			_, e := exec.ExecuteOpts(sorted, q, off)
			return e
		})
		if err != nil {
			return err
		}
		dOn, err := medianTime(3, func() error {
			_, e := exec.ExecuteOpts(sorted, q, on)
			return e
		})
		if err != nil {
			return err
		}
		skipped, morsels, err := zoneSkipStats(sorted, q, on)
		if err != nil {
			return err
		}
		ztbl.Row(sel, skipped, morsels, dOff, dOn, float64(dOff)/float64(dOn))
		out.ZoneMap = append(out.ZoneMap, e30Zone{
			Selectivity: sel, Morsels: morsels, Skipped: skipped,
			SkipFrac: float64(skipped) / float64(morsels),
			OffMS:    float64(dOff.Microseconds()) / 1e3,
			OnMS:     float64(dOn.Microseconds()) / 1e3,
			Speedup:  float64(dOff) / float64(dOn),
		})
	}
	ztbl.Fprint(w)

	if cfg.JSONPath != "" {
		blob, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.JSONPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s\n", cfg.JSONPath)
	}
	return nil
}

// zoneSkipStats runs the query once traced and reads the scan span's
// zone_skipped and morsels attributes.
func zoneSkipStats(t *storage.Table, q exec.Query, opt exec.ExecOptions) (skipped, morsels int64, err error) {
	ctx, sp := trace.Start(context.Background(), "e30")
	_, err = exec.ExecuteCtx(ctx, t, q, opt)
	sp.End()
	if err != nil {
		return 0, 0, err
	}
	for _, c := range sp.JSON().Children {
		if c.Name == "scan" {
			if v, ok := c.Attrs["zone_skipped"].(int64); ok {
				skipped = v
			}
			if v, ok := c.Attrs["morsels"].(int64); ok {
				morsels = v
			}
		}
	}
	return skipped, morsels, nil
}
