package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"dex/internal/exec"
	"dex/internal/expr"
	"dex/internal/par"
	"dex/internal/seedb"
	"dex/internal/storage"
	"dex/internal/workload"
)

func init() {
	register(Experiment{
		ID:     "E26",
		Title:  "Morsel-driven parallel operators: speedup vs worker count",
		Source: "morsel-driven parallelism (Leis et al., SIGMOD 2014); IDEBench latency targets",
		Run:    runE26,
	})
}

// runE26 measures the parallel operators — filtered scan, scalar aggregate,
// hash group-by, and the SeeDB shared scan — at 1/2/4/8 workers against the
// sequential baseline, so the speedup (or, on a starved machine, the
// scheduling overhead) is measured rather than asserted. The benchmark
// guard test pins the acceptable overhead bound.
func runE26(w io.Writer, cfg Config) error {
	n := cfg.Scale(1_000_000, 50, 20_000)
	rng := rand.New(rand.NewSource(cfg.Seed))
	sales, err := workload.Sales(rng, n)
	if err != nil {
		return err
	}
	queries := []struct {
		name string
		q    exec.Query
	}{
		{"filtered-scan", exec.Query{
			Select: []exec.SelectItem{{Col: "product"}, {Col: "amount"}},
			Where:  expr.Cmp("amount", expr.GT, storage.Float(120)),
		}},
		{"scalar-agg", exec.Query{
			Select: []exec.SelectItem{
				{Col: "amount", Agg: exec.AggSum},
				{Col: "amount", Agg: exec.AggAvg},
				{Col: "*", Agg: exec.AggCount},
			},
			Where: expr.Cmp("qty", expr.GE, storage.Int(3)),
		}},
		{"group-by", exec.Query{
			Select: []exec.SelectItem{
				{Col: "region"},
				{Col: "amount", Agg: exec.AggSum},
				{Col: "qty", Agg: exec.AggMax},
			},
			GroupBy: []string{"region"},
		}},
	}
	workerCounts := []int{1, 2, 4, 8}
	fmt.Fprintf(w, "rows=%d GOMAXPROCS=%d morsel=%d\n\n", n, runtime.GOMAXPROCS(0), par.DefaultMorselSize)
	tbl := NewTable("operator", "workers", "median", "speedup")
	for _, qq := range queries {
		var base time.Duration
		for _, wk := range workerCounts {
			opt := exec.ExecOptions{Parallelism: wk}
			d, err := medianTime(3, func() error {
				_, e := exec.ExecuteOpts(sales, qq.q, opt)
				return e
			})
			if err != nil {
				return err
			}
			if wk == 1 {
				base = d
			}
			tbl.Row(qq.name, wk, d, float64(base)/float64(d))
		}
	}

	// SeeDB candidate-view fan-out over the same pool.
	views := seedb.Candidates(
		[]string{"region", "product", "quarter"},
		[]string{"amount", "qty"},
		[]exec.AggFunc{exec.AggSum, exec.AggAvg, exec.AggCount},
	)
	target := expr.Cmp("region", expr.EQ, storage.String_("east"))
	var base time.Duration
	for _, wk := range workerCounts {
		opt := seedb.Options{K: 3, Strategy: seedb.SharedScan, Parallelism: wk}
		d, err := medianTime(3, func() error {
			_, _, e := seedb.Recommend(sales, target, views, opt)
			return e
		})
		if err != nil {
			return err
		}
		if wk == 1 {
			base = d
		}
		tbl.Row("seedb-shared-scan", wk, d, float64(base)/float64(d))
	}
	tbl.Fprint(w)
	return nil
}

// medianTime runs fn reps times and returns the median duration.
func medianTime(reps int, fn func() error) (time.Duration, error) {
	ds := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		ds = append(ds, time.Since(start))
	}
	for i := 1; i < len(ds); i++ { // insertion sort, reps is tiny
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
	return ds[len(ds)/2], nil
}
