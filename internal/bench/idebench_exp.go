package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"dex/internal/idebench"
)

func init() {
	register(Experiment{
		ID:     "E31",
		Title:  "IDEBench-style multi-user exploration benchmark",
		Source: "IDEBench (Eichmann et al., SIGMOD 2020); adaptive exploration benchmarking (Battle/UMD)",
		Run:    runE31,
	})
}

// runE31 scores the service the way the interactive-exploration
// literature demands: U concurrent simulated analysts run seeded
// drill/rollup/pan/refine sessions with think time against a live dexd
// over HTTP, under a per-query deadline, across all four execution
// modes. Reported per cell: deadline-violation rate (late answers plus
// server timeouts over issued ops), time-to-insight (wall time until the
// drill-down bottoms out), and quality-at-deadline (mean relative error
// of the answers the user saw in time, against an exact oracle re-run
// after the benchmark). A final pair drives the identical seeded
// workload with predictor-driven result-cache warming off and on — the
// internal/prefetch loop closed through the real server — and reports
// the pan cache-hit-rate lift and p95 delta.
//
// Each cell gets a fresh in-process server, so no run inherits another's
// cache contents or cracked-index state. Expectations: the approximate
// modes hold their violation rate near zero as U grows while paying a
// small, measured relative error; exact mode degrades or violates
// instead; warming lifts the pan hit-rate well above the ~0% an
// unwarmed result cache manages on a moving viewport.
func runE31(w io.Writer, cfg Config) error {
	rows := cfg.Scale(200_000, 40, 5_000)
	mcfg := idebench.MatrixConfig{
		UserCounts: []int{10, 40, 100},
		Modes:      []string{"exact", "cracked", "approx", "online"},
		Ops:        12,
		Seed:       cfg.Seed,
		Deadline:   250 * time.Millisecond,
		ThinkMean:  150 * time.Millisecond,
		ThinkScale: 1,
		// The warming comparison runs below saturation: at 10 users the
		// server has headroom to execute speculative queries during think
		// time, which is the regime prefetching is for — under overload
		// the warmer's own queries compete with the users it serves.
		PrefetchUsers:  10,
		PrefetchBudget: 2,
	}
	if cfg.Quick {
		mcfg.UserCounts = []int{2, 4}
		mcfg.Ops = 5
		mcfg.ThinkScale = 0
		mcfg.PrefetchUsers = 2
		mcfg.QualitySample = 8
	}
	target := func() (string, func(), error) {
		l, err := idebench.StartLocal(idebench.LocalConfig{Rows: rows, Seed: cfg.Seed})
		if err != nil {
			return "", nil, err
		}
		return l.URL, l.Close, nil
	}
	res, err := idebench.RunMatrix(context.Background(), target, mcfg, nil)
	if err != nil {
		return err
	}
	res.Rows = rows
	fmt.Fprintf(w, "rows=%d deadline=%v think_mean=%v seed=%d\n\n", rows, mcfg.Deadline, mcfg.ThinkMean, cfg.Seed)
	res.Fprint(w)
	if cfg.JSONPath != "" {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.JSONPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s\n", cfg.JSONPath)
	}
	return nil
}
