package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"sort"

	"dex/internal/core"
	"dex/internal/server"
	"dex/internal/trace"
	"dex/internal/workload"
)

func init() {
	register(Experiment{
		ID:     "E29",
		Title:  "Per-query tracing: stage breakdown of an exploration session",
		Source: "observability layer over the mode seams; span accounting vs wall time",
		Run:    runE29,
	})
}

// runE29 drives one synthetic exploration session against the in-process
// service with trace:true on every request and aggregates the returned
// span trees: where does an interactive session actually spend its time,
// per stage and per execution mode? It also audits the accounting — for
// every trace, the direct children must explain most of the root span
// (the unattributed remainder is handler glue: JSON encode, cache put).
func runE29(w io.Writer, cfg Config) error {
	n := cfg.Scale(1_000_000, 100, 20_000)
	perMode := cfg.Scale(12, 4, 3)

	eng := core.New(core.Options{Seed: cfg.Seed})
	sales, err := workload.Sales(rand.New(rand.NewSource(cfg.Seed)), n)
	if err == nil {
		err = eng.Register(sales)
	}
	if err != nil {
		return err
	}
	svc := server.New(eng, server.Config{CacheRows: int64(n)})
	ts := httptest.NewServer(svc)
	defer ts.Close()

	ctx := context.Background()
	cl := server.NewClient(ts.URL)
	id, err := cl.CreateSession(ctx)
	if err != nil {
		return err
	}
	defer cl.EndSession(ctx, id)

	type stageAgg struct {
		calls int
		ms    float64
	}
	stages := map[string]*stageAgg{}
	var walk func(sp *trace.SpanJSON)
	walk = func(sp *trace.SpanJSON) {
		a := stages[sp.Name]
		if a == nil {
			a = &stageAgg{}
			stages[sp.Name] = a
		}
		a.calls++
		a.ms += sp.DurationMS
		for _, c := range sp.Children {
			walk(c)
		}
	}
	childMS := func(sp *trace.SpanJSON) float64 {
		var s float64
		for _, c := range sp.Children {
			s += c.DurationMS
		}
		return s
	}

	fmt.Fprintf(w, "rows=%d queries/mode=%d (every request traced)\n\n", n, perMode)
	modeTbl := NewTable("mode", "queries", "total(ms)", "traced(ms)", "attributed")
	var totalRoot, totalAttr float64
	// The approximate modes accept only single-aggregate shapes, so they
	// get a seeded drill-down of their own; exact and cracked replay the
	// full exploration stream.
	approxStmts := func(rng *rand.Rand) []string {
		out := make([]string, perMode)
		for i := range out {
			lo := rng.Float64() * 400
			out[i] = fmt.Sprintf("SELECT AVG(amount) FROM sales WHERE amount >= %.1f AND amount < %.1f", lo, lo+50+rng.Float64()*200)
		}
		return out
	}
	for _, mode := range []string{"exact", "cracked", "approx", "online"} {
		rng := rand.New(rand.NewSource(cfg.Seed + 29))
		var stmts []string
		switch mode {
		case "approx", "online":
			stmts = approxStmts(rng)
		default:
			stmts = workload.ExplorationSQL(rng, perMode)
		}
		var rootMS, attrMS float64
		for _, sql := range stmts {
			res, err := cl.Query(ctx, id, server.QueryRequest{SQL: sql, Mode: mode, Trace: true})
			if err != nil {
				return fmt.Errorf("E29: %s (%s): %w", sql, mode, err)
			}
			if res.Trace == nil {
				return fmt.Errorf("E29: %s (%s): no trace in response", sql, mode)
			}
			walk(res.Trace)
			rootMS += res.Trace.DurationMS
			attrMS += childMS(res.Trace)
		}
		totalRoot += rootMS
		totalAttr += attrMS
		modeTbl.Row(mode, len(stmts), rootMS, attrMS, fmt.Sprintf("%.1f%%", 100*attrMS/rootMS))
	}
	modeTbl.Fprint(w)

	names := make([]string, 0, len(stages))
	for name := range stages {
		if name == "query" {
			continue // the root; its children are the interesting rows
		}
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return stages[names[i]].ms > stages[names[j]].ms })
	fmt.Fprintf(w, "\nstage totals across the session (share of traced wall time):\n\n")
	stageTbl := NewTable("stage", "spans", "total(ms)", "share")
	for _, name := range names {
		a := stages[name]
		stageTbl.Row(name, a.calls, a.ms, fmt.Sprintf("%.1f%%", 100*a.ms/totalRoot))
	}
	stageTbl.Fprint(w)
	fmt.Fprintf(w, "\nspan accounting: %.1f%% of root time attributed to stages overall\n", 100*totalAttr/totalRoot)
	return nil
}
