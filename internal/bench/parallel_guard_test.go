package bench

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"dex/internal/exec"
	"dex/internal/expr"
	"dex/internal/storage"
	"dex/internal/workload"
)

// TestParallelScanNeverSlower guards the morsel scheduler's overhead: a
// parallel filtered scan over 1M rows must never be slower than 1.2x the
// sequential scan. The bound is deliberately generous — on a single-core
// box (GOMAXPROCS=1) the parallel path buys nothing and pays goroutine
// and atomic-cursor overhead, so this test pins "overhead is bounded",
// not "speedup exists". Timings are best-of-reps to shave scheduler noise,
// and a small absolute slack absorbs sub-millisecond jitter.
func TestParallelScanNeverSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-row timing guard skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing guard skipped under -race: instrumentation inflates atomic-cursor cost")
	}
	const rows = 1_000_000
	rng := rand.New(rand.NewSource(26))
	sales, err := workload.Sales(rng, rows)
	if err != nil {
		t.Fatal(err)
	}
	q := exec.Query{
		Select: []exec.SelectItem{{Col: "product"}, {Col: "amount"}},
		Where:  expr.Cmp("amount", expr.GT, storage.Float(120)),
	}

	bestOf := func(reps int, opt exec.ExecOptions) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < reps; i++ {
			start := time.Now()
			if _, err := exec.ExecuteOpts(sales, q, opt); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	// Warm both paths once so first-touch allocation does not bias either.
	bestOf(1, exec.ExecOptions{Parallelism: 1})
	bestOf(1, exec.ExecOptions{Parallelism: 4})

	seq := bestOf(5, exec.ExecOptions{Parallelism: 1})
	parl := bestOf(5, exec.ExecOptions{Parallelism: 4})

	const slack = 2 * time.Millisecond
	limit := seq + seq/5 + slack // 1.2x plus absolute jitter allowance
	t.Logf("rows=%d GOMAXPROCS=%d sequential=%v parallel(4)=%v limit=%v",
		rows, runtime.GOMAXPROCS(0), seq, parl, limit)
	if parl > limit {
		t.Errorf("parallel scan %v exceeds 1.2x sequential %v (limit %v)", parl, seq, limit)
	}
}
