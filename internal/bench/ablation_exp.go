package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"dex/internal/crack"
	"dex/internal/workload"
)

func init() {
	register(Experiment{
		ID:     "E25",
		Title:  "Cracking design-choice ablation: variant × threshold",
		Source: "design choices called out in DESIGN.md (cf. [23,33,56])",
		Run:    runE25,
	})
}

// runE25 sweeps the cracker's design knobs on both a random and a
// sequential workload: the Stochastic variant's piece-size floor
// (StochasticMin) trades extra first-touch partitioning work for robustness,
// and HybridSort's SortMin trades sort effort for free cuts later.
func runE25(w io.Writer, cfg Config) error {
	n := cfg.Scale(500_000, 20, 20_000)
	nq := cfg.Scale(400, 4, 60)
	rng := rand.New(rand.NewSource(cfg.Seed))
	col := workload.UniformInts(rng, n, n)
	random := workload.RandomRanges(rng, nq, n, int64(n/200))
	sequential := workload.SequentialRanges(nq, n)
	zoom := workload.ZoomRanges(rng, nq, n)

	type config struct {
		name string
		opt  crack.Options
	}
	configs := []config{
		{"standard", crack.Options{Variant: crack.Standard}},
		{"stochastic min=256", crack.Options{Variant: crack.Stochastic, StochasticMin: 256, Seed: cfg.Seed}},
		{"stochastic min=4096", crack.Options{Variant: crack.Stochastic, StochasticMin: 4096, Seed: cfg.Seed}},
		{"stochastic min=65536", crack.Options{Variant: crack.Stochastic, StochasticMin: 65536, Seed: cfg.Seed}},
		{"hybrid-sort min=256", crack.Options{Variant: crack.HybridSort, SortMin: 256}},
		{"hybrid-sort min=4096", crack.Options{Variant: crack.HybridSort, SortMin: 4096}},
	}
	t := NewTable("config", "workload", "q1", "total", "pieces", "cracks")
	for _, c := range configs {
		for _, wl := range []struct {
			name    string
			queries []workload.Range
		}{{"random", random}, {"sequential", sequential}, {"zoom", zoom}} {
			ix := crack.New(col, c.opt)
			var q1, total time.Duration
			for i, q := range wl.queries {
				d := Timed(func() { ix.Count(q.Lo, q.Hi) })
				if i == 0 {
					q1 = d
				}
				total += d
			}
			t.Row(c.name, wl.name, q1, total, ix.NumPieces(), ix.Cracks())
		}
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\nshape check: on random workloads all variants converge similarly (extra")
	fmt.Fprintln(w, "stochastic cracks buy little); on the sequential sweep a smaller StochasticMin")
	fmt.Fprintln(w, "floor keeps pieces bounded and slashes total cost, while standard cracking")
	fmt.Fprintln(w, "pays a near-scan on every query; zoom (drill-down) workloads converge fastest")
	fmt.Fprintln(w, "of all since locality concentrates cracks — the trade-offs of [23,33,56].")
	return nil
}
