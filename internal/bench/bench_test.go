package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 33 {
		t.Fatalf("registered experiments = %d, want 33", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Source == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	// Ordered by number.
	for i := 1; i < len(all); i++ {
		if idNum(all[i-1].ID) >= idNum(all[i].ID) {
			t.Errorf("ordering broken at %s", all[i].ID)
		}
	}
}

func TestByID(t *testing.T) {
	if e, ok := ByID("e2"); !ok || e.ID != "E2" {
		t.Errorf("ByID case-insensitive lookup failed: %v %v", e, ok)
	}
	if _, ok := ByID("E999"); ok {
		t.Error("phantom experiment")
	}
}

// TestAllExperimentsRunQuick executes every experiment in quick mode and
// checks that each produces non-trivial tabular output.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep skipped in -short")
	}
	cfg := Config{Quick: true, Seed: 42}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, cfg); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if len(out) < 80 {
				t.Errorf("%s output suspiciously short:\n%s", e.ID, out)
			}
			if !strings.Contains(out, "--") {
				t.Errorf("%s output has no table:\n%s", e.ID, out)
			}
		})
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := NewTable("a", "bbbb")
	tbl.Row(1, 2.5)
	tbl.Row("xx", "y")
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "a ") || !strings.Contains(lines[0], "bbbb") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestConfigScale(t *testing.T) {
	c := Config{}
	if c.Scale(100, 10, 5) != 100 {
		t.Error("full scale")
	}
	c.Quick = true
	if c.Scale(100, 10, 5) != 10 {
		t.Error("quick scale")
	}
	if c.Scale(100, 1000, 7) != 7 {
		t.Error("min clamp")
	}
}
