package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"runtime"
	"time"

	"dex/internal/core"
	"dex/internal/server"
	"dex/internal/workload"
)

func init() {
	register(Experiment{
		ID:     "E27",
		Title:  "Query service under concurrent clients: throughput/latency vs admission limit",
		Source: "IDEBench-style interactive workloads; admission control & graceful drain",
		Run:    runE27,
	})
}

// runE27 stands up the dexd service in-process over a loopback listener and
// drives it with closed-loop synthetic exploration sessions at increasing
// client counts, once per admission limit. The interesting comparison is
// saturation behaviour: with a small in-flight bound, excess load turns
// into fast 429s and p99 stays bounded; with a generous bound everything
// queues inside the engine and the tail stretches instead. A final pass
// checks the drain invariant — stopping the service mid-load loses none of
// the admitted queries.
func runE27(w io.Writer, cfg Config) error {
	n := cfg.Scale(1_000_000, 100, 20_000)
	perClient := cfg.Scale(12, 4, 3)
	clientCounts := []int{1, 2, 4, 8, 16}
	limits := []int{2}
	if wide := runtime.GOMAXPROCS(0) * 2; wide > 2 {
		limits = append(limits, wide)
	}
	if cfg.Quick {
		clientCounts = []int{1, 4, 8}
	}

	newService := func(maxInFlight int) (*server.Server, *httptest.Server, error) {
		eng := core.New(core.Options{Seed: cfg.Seed})
		sales, err := workload.Sales(rand.New(rand.NewSource(cfg.Seed)), n)
		if err == nil {
			err = eng.Register(sales)
		}
		if err != nil {
			return nil, nil, err
		}
		svc := server.New(eng, server.Config{
			MaxInFlight:  maxInFlight,
			MaxQueue:     maxInFlight,
			QueueTimeout: 250 * time.Millisecond,
		})
		return svc, httptest.NewServer(svc), nil
	}

	ctx := context.Background()
	fmt.Fprintf(w, "rows=%d queries/client=%d GOMAXPROCS=%d\n\n", n, perClient, runtime.GOMAXPROCS(0))
	tbl := NewTable("inflight-limit", "clients", "done", "rej", "qps", "p50", "p95", "p99")
	for _, limit := range limits {
		for _, clients := range clientCounts {
			svc, ts, err := newService(limit)
			if err != nil {
				return err
			}
			_ = svc
			rep, err := server.RunLoad(ctx, server.NewClient(ts.URL), server.LoadConfig{
				Clients:          clients,
				QueriesPerClient: perClient,
				Seed:             cfg.Seed,
			})
			ts.Close()
			if err != nil {
				return err
			}
			if rep.Failed > 0 {
				return fmt.Errorf("E27: %d queries failed outright at limit=%d clients=%d", rep.Failed, limit, clients)
			}
			tbl.Row(limit, clients, rep.Queries, rep.Rejected,
				fmt.Sprintf("%.1f", rep.Qps),
				time.Duration(rep.P50MS*1e6), time.Duration(rep.P95MS*1e6), time.Duration(rep.P99MS*1e6))
		}
	}
	tbl.Fprint(w)

	// Graceful-drain invariant: begin a drain mid-load; every query the
	// service admitted must complete (the load generator treats anything
	// other than success or a load-shed rejection as a hard failure).
	svc, ts, err := newService(runtime.GOMAXPROCS(0))
	if err != nil {
		return err
	}
	defer ts.Close()
	loadDone := make(chan struct {
		rep *server.LoadReport
		err error
	}, 1)
	go func() {
		rep, err := server.RunLoad(ctx, server.NewClient(ts.URL), server.LoadConfig{
			Clients:          8,
			QueriesPerClient: perClient,
			Seed:             cfg.Seed,
			MaxRetries:       1,
		})
		loadDone <- struct {
			rep *server.LoadReport
			err error
		}{rep, err}
	}()
	// Let the load ramp, then pull the plug.
	deadline := time.Now().Add(10 * time.Second)
	for svc.Stats().Queries.Completed == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	drainCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := svc.Drain(drainCtx); err != nil {
		return fmt.Errorf("E27: drain: %w", err)
	}
	res := <-loadDone
	if res.err != nil {
		return fmt.Errorf("E27: load during drain: %w", res.err)
	}
	snap := svc.Stats()
	fmt.Fprintf(w, "\ndrain: completed=%d shed=%d in-flight-lost=%d (failed=%d)\n",
		res.rep.Queries, res.rep.Rejected, snap.Active, res.rep.Failed)
	if res.rep.Failed > 0 || snap.Active != 0 {
		return fmt.Errorf("E27: drain lost queries: failed=%d active=%d", res.rep.Failed, snap.Active)
	}
	return nil
}
