package bench

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"dex/internal/aqp"
	"dex/internal/diversify"
	"dex/internal/exec"
	"dex/internal/metrics"
	"dex/internal/olap"
	"dex/internal/onlineagg"
	"dex/internal/prefetch"
	"dex/internal/sample"
	"dex/internal/storage"
	"dex/internal/workload"
)

func init() {
	register(Experiment{ID: "E8", Title: "AQP error and latency vs sample fraction (uniform vs stratified)", Source: "BlinkDB [7], Aqua [5]", Run: runE8})
	register(Experiment{ID: "E9", Title: "Bounded-error and bounded-rows approximate queries", Source: "BlinkDB [7], knowing when you're wrong [6]", Run: runE9})
	register(Experiment{ID: "E10", Title: "Online aggregation: CI width vs rows processed", Source: "online aggregation [25], CONTROL [24]", Run: runE10})
	register(Experiment{ID: "E11", Title: "Weighted (importance) sampling on outlier-heavy data", Source: "SciBORQ [59], weighted sampling [60]", Run: runE11})
	register(Experiment{ID: "E12", Title: "Semantic-window prefetching along exploration trajectories", Source: "semantic windows [36], SCOUT [63]", Run: runE12})
	register(Experiment{ID: "E13", Title: "Speculative execution for cube drill-down sessions", Source: "DICE [35], distributed cube exploration [37]", Run: runE13})
	register(Experiment{ID: "E15", Title: "Discovery-driven cube exploration: exception detection", Source: "discovery-driven OLAP [54], i3 [55]", Run: runE15})
	register(Experiment{ID: "E16", Title: "Result diversification: relevance/diversity trade-off", Source: "DivIDE [41], result diversification [65]", Run: runE16})
}

func runE8(w io.Writer, cfg Config) error {
	n := cfg.Scale(500_000, 20, 20_000)
	rng := rand.New(rand.NewSource(cfg.Seed))
	sales, err := workload.Sales(rng, n)
	if err != nil {
		return err
	}
	q := aqp.Query{Agg: exec.AggAvg, Col: "amount", GroupBy: "product"}
	truth, err := aqp.Exact(sales, q)
	if err != nil {
		return err
	}
	truthBy := map[string]float64{}
	for _, g := range truth {
		truthBy[g.Group.String()] = g.Est
	}
	worstErr := func(ests []aqp.GroupEstimate) float64 {
		found := map[string]bool{}
		worst := 0.0
		for _, g := range ests {
			found[g.Group.String()] = true
			if tr := truthBy[g.Group.String()]; tr != 0 {
				if e := math.Abs(g.Est-tr) / math.Abs(tr); e > worst {
					worst = e
				}
			}
		}
		for g := range truthBy {
			if !found[g] {
				worst = 1 // missed group entirely
			}
		}
		return worst
	}

	t := NewTable("sample", "rows", "latency", "worst-group rel-err", "groups found")
	exactLat := Timed(func() { _, _ = aqp.Exact(sales, q) })
	t.Row("exact", n, exactLat, 0.0, len(truth))
	for _, frac := range []float64{0.001, 0.01, 0.05, 0.2} {
		s, err := sample.UniformFrac(rng, n, frac)
		if err != nil {
			return err
		}
		view := sales.Gather(s.Rows)
		var ests []aqp.GroupEstimate
		lat := Timed(func() { ests, err = aqp.OnView(view, s.Weights, q) })
		if err != nil {
			return err
		}
		t.Row(fmt.Sprintf("uniform-%.3g", frac), len(s.Rows), lat, worstErr(ests), len(ests))
	}
	// Stratified on the grouping column at a budget matching uniform-1%.
	gc, _ := sales.ColumnByName("product")
	labels := make([]string, n)
	for i := range labels {
		labels[i] = gc.Value(i).String()
	}
	perStratum := n / 100 / 20
	if perStratum < 10 {
		perStratum = 10
	}
	st, err := sample.Stratified(rng, labels, perStratum)
	if err != nil {
		return err
	}
	view := sales.Gather(st.Rows)
	var ests []aqp.GroupEstimate
	lat := Timed(func() { ests, err = aqp.OnView(view, st.Weights, q) })
	if err != nil {
		return err
	}
	t.Row(fmt.Sprintf("stratified-%d/grp", perStratum), len(st.Rows), lat, worstErr(ests), len(ests))
	t.Fprint(w)
	fmt.Fprintln(w, "\nshape check: error falls ~1/sqrt(rows); uniform samples miss or butcher rare")
	fmt.Fprintln(w, "(Zipf-tail) products, stratified sampling answers every group at similar budget.")
	return nil
}

func runE9(w io.Writer, cfg Config) error {
	n := cfg.Scale(500_000, 20, 20_000)
	rng := rand.New(rand.NewSource(cfg.Seed))
	sales, err := workload.Sales(rng, n)
	if err != nil {
		return err
	}
	cat, err := aqp.NewCatalog(sales, rng, 0.001, 0.01, 0.05, 0.2)
	if err != nil {
		return err
	}
	q := aqp.Query{Agg: exec.AggSum, Col: "amount"}
	truth, _ := aqp.Exact(sales, q)

	t := NewTable("bound", "sample used", "rows read", "promised rel-CI", "actual rel-err")
	for _, relErr := range []float64{0.2, 0.05, 0.01} {
		res, err := cat.Approx(q, aqp.Bound{RelErr: relErr})
		if err != nil && !errors.Is(err, aqp.ErrNoSample) {
			return err
		}
		name := res.Used.Name
		if err != nil {
			name += " (best effort)"
		}
		actual := math.Abs(res.Groups[0].Est-truth[0].Est) / truth[0].Est
		t.Row(fmt.Sprintf("rel-err<=%.2g", relErr), name, res.RowsRead,
			res.MaxRelCI, actual)
	}
	for _, budget := range []int{n / 500, n / 50, n / 10} {
		res, err := cat.Approx(q, aqp.Bound{MaxRows: budget})
		if err != nil {
			return err
		}
		actual := math.Abs(res.Groups[0].Est-truth[0].Est) / truth[0].Est
		t.Row(fmt.Sprintf("rows<=%d", budget), res.Used.Name, res.RowsRead,
			res.MaxRelCI, actual)
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\nshape check: tighter error bounds escalate to larger samples (the error-")
	fmt.Fprintln(w, "latency profile walk); row budgets pick the largest affordable sample.")
	return nil
}

func runE10(w io.Writer, cfg Config) error {
	n := cfg.Scale(1_000_000, 20, 40_000)
	rng := rand.New(rand.NewSource(cfg.Seed))
	sales, err := workload.Sales(rng, n)
	if err != nil {
		return err
	}
	q := aqp.Query{Agg: exec.AggAvg, Col: "amount"}
	truth, _ := aqp.Exact(sales, q)
	r, err := onlineagg.New(sales, q, cfg.Seed)
	if err != nil {
		return err
	}
	batch := n / 100
	t := NewTable("rows processed", "progress", "estimate", "rel-CI", "rel-err", "elapsed")
	var elapsed time.Duration
	var exactTime time.Duration
	exactTime = Timed(func() { _, _ = aqp.Exact(sales, q) })
	for _, stopAt := range []float64{0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0} {
		for float64(r.Processed()) < stopAt*float64(n) && !r.Done() {
			var serr error
			elapsed += Timed(func() { _, serr = r.Step(batch) })
			if serr != nil {
				return serr
			}
		}
		ge := r.Estimates()
		relErr := math.Abs(ge[0].Est-truth[0].Est) / truth[0].Est
		t.Row(r.Processed(), fmt.Sprintf("%.0f%%", r.Progress()*100), ge[0].Est, ge[0].RelCI(), relErr, elapsed)
	}
	t.Fprint(w)
	fmt.Fprintf(w, "\nexact (blocking) execution time for comparison: %v\n", exactTime)
	fmt.Fprintln(w, "shape check: the CI shrinks ~1/sqrt(rows); a usable estimate exists after a few")
	fmt.Fprintln(w, "percent of the scan, long before the blocking exact answer would return.")

	// Index striding: with a 1%-rare group, compare the rare group's CI at
	// a 5% budget under plain random order vs round-robin striding.
	gc, _ := sales.ColumnByName("product")
	_ = gc
	gq := aqp.Query{Agg: exec.AggAvg, Col: "amount", GroupBy: "region"}
	// Make one region rare by filtering: reuse product p19 (Zipf tail) as
	// the rare group instead — group by product.
	gq = aqp.Query{Agg: exec.AggAvg, Col: "amount", GroupBy: "product"}
	plain, err := onlineagg.New(sales, gq, cfg.Seed)
	if err != nil {
		return err
	}
	strided, err := onlineagg.NewStrided(sales, gq, cfg.Seed)
	if err != nil {
		return err
	}
	budget := n / 20
	if _, err := plain.Step(budget); err != nil {
		return err
	}
	sEst, err := strided.Step(budget)
	if err != nil {
		return err
	}
	pEst := plain.Estimates()
	// The group CONTROL's striding helps is the Zipf tail: the product with
	// the fewest rows.
	sizes := map[string]int{}
	pc, _ := sales.ColumnByName("product")
	for i := 0; i < sales.NumRows(); i++ {
		sizes[pc.Value(i).String()]++
	}
	tail, tailN := "", math.MaxInt
	for v, c := range sizes {
		if c < tailN {
			tail, tailN = v, c
		}
	}
	tailStats := func(ests []aqp.GroupEstimate) (float64, int) {
		for _, g := range ests {
			if g.Group.String() == tail {
				return g.RelCI(), g.N
			}
		}
		return math.Inf(1), 0
	}
	pw, pn := tailStats(pEst)
	sw, sn := tailStats(sEst)
	t2 := NewTable("order", "rows read", "tail-group rel-CI", "tail samples", "tail size")
	t2.Row("random (plain)", budget, pw, pn, tailN)
	t2.Row("index striding", budget, sw, sn, tailN)
	fmt.Fprintln(w)
	t2.Fprint(w)
	fmt.Fprintln(w, "\nshape check (striding): round-robin consumption gives the Zipf-tail group the")
	fmt.Fprintln(w, "same sample budget as the head, so its interval tightens far faster at equal")
	fmt.Fprintln(w, "cost — CONTROL's index-striding fairness.")
	return nil
}

func runE11(w io.Writer, cfg Config) error {
	n := cfg.Scale(200_000, 20, 10_000)
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Science-style measure: most mass tiny, rare huge outliers dominate the sum.
	xs := make([]float64, n)
	for i := range xs {
		if rng.Float64() < 0.005 {
			xs[i] = 1000 + rng.NormFloat64()*100
		} else {
			xs[i] = rng.ExpFloat64()
		}
	}
	truth := metrics.Sum(xs)
	k := n / 100

	reps := 30
	if cfg.Quick {
		reps = 10
	}
	t := NewTable("sampler", "budget", "mean rel-err", "p95 rel-err")
	method := func(name string, draw func() (*sample.Sample, error)) error {
		var errs []float64
		for rep := 0; rep < reps; rep++ {
			s, err := draw()
			if err != nil {
				return err
			}
			est := 0.0
			for i, row := range s.Rows {
				est += xs[row] * s.Weights[i]
			}
			errs = append(errs, math.Abs(est-truth)/truth)
		}
		t.Row(name, k, metrics.Mean(errs), metrics.Quantile(errs, 0.95))
		return nil
	}
	if err := method("uniform", func() (*sample.Sample, error) { return sample.Uniform(rng, n, k) }); err != nil {
		return err
	}
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = math.Abs(xs[i]) + 0.01
	}
	if err := method("weighted(SciBORQ)", func() (*sample.Sample, error) { return sample.Weighted(rng, weights, k) }); err != nil {
		return err
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\nshape check: importance-weighting the rare heavy tuples slashes the variance")
	fmt.Fprintln(w, "of the SUM estimate at the same sample budget.")
	return nil
}

func runE12(w io.Writer, cfg Config) error {
	n := cfg.Scale(200_000, 20, 10_000)
	steps := cfg.Scale(150, 3, 40)
	rng := rand.New(rand.NewSource(cfg.Seed))
	sky, err := workload.SkyCatalog(rng, n)
	if err != nil {
		return err
	}
	grid, err := prefetch.NewGrid(sky, "ra", "dec", "mag", 40, 40)
	if err != nil {
		return err
	}
	drive := func(pred prefetch.Predictor) (*prefetch.Fetcher, float64, time.Duration, error) {
		g2, err := prefetch.NewGrid(sky, "ra", "dec", "mag", 40, 40)
		if err != nil {
			return nil, 0, 0, err
		}
		f, err := prefetch.NewFetcher(g2, 1600, 12, pred)
		if err != nil {
			return nil, 0, 0, err
		}
		r := rand.New(rand.NewSource(cfg.Seed + 7))
		win := prefetch.Window{X0: 0, Y0: 0, X1: 2, Y1: 2}
		dx, dy := 1, 0
		hits, misses := 0, 0
		var demandLatency time.Duration
		for s := 0; s < steps; s++ {
			if r.Float64() < 0.12 {
				dx, dy = dy, dx
			}
			win = win.Shift(dx, dy).Clamp(40, 40)
			var h, m int
			demandLatency += Timed(func() { _, h, m = f.Request(win) })
			if s > 0 {
				hits += h
				misses += m
			}
		}
		return f, float64(misses) / float64(hits+misses), demandLatency, nil
	}
	_ = grid
	t := NewTable("predictor", "user miss-rate", "user-facing time", "demand tiles", "prefetch tiles")
	for _, p := range []struct {
		name string
		pred prefetch.Predictor
	}{{"none", nil}, {"momentum", prefetch.Momentum{}}, {"markov", prefetch.Markov{}}} {
		f, miss, lat, err := drive(p.pred)
		if err != nil {
			return err
		}
		t.Row(p.name, fmt.Sprintf("%.1f%%", miss*100), lat, f.DemandFetches, f.PrefetchFetches)
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\nshape check: trajectory prediction turns most viewport moves into cache hits,")
	fmt.Fprintln(w, "shifting tile computation off the user's critical path (user-facing time includes")
	fmt.Fprintln(w, "speculative work done inside Request; the win is the miss-rate column).")

	// Semantic-window search [36]: find every 3x3-tile window whose object
	// count exceeds twice the expected density, via the summed-area table.
	g3, err := prefetch.NewGrid(sky, "ra", "dec", "z", 40, 40)
	if err != nil {
		return err
	}
	var sat *prefetch.SAT
	buildT := Timed(func() { sat = prefetch.NewSAT(g3) })
	expected := float64(n) / (40 * 40) * 9
	var wins []prefetch.WindowAgg
	searchT := Timed(func() {
		wins, err = sat.FindWindows(3, 3, func(wa prefetch.WindowAgg) bool {
			return float64(wa.Count) > 2*expected
		})
	})
	if err != nil {
		return err
	}
	t3 := NewTable("semantic-window query", "SAT build", "search", "matches", "top window count")
	topCount := 0
	if len(wins) > 0 {
		topCount = wins[0].Count
	}
	t3.Row("count > 2x density, 3x3 tiles", buildT, searchT, len(wins), topCount)
	fmt.Fprintln(w)
	t3.Fprint(w)
	fmt.Fprintln(w, "\nshape check (semantic windows): after one aggregation pass, every candidate")
	fmt.Fprintln(w, "window costs O(1), so constraint search over the whole space is interactive;")
	fmt.Fprintln(w, "the dense matches sit on the planted quasar clusters.")
	return nil
}

func runE13(w io.Writer, cfg Config) error {
	n := cfg.Scale(300_000, 20, 10_000)
	sessions := cfg.Scale(60, 3, 15)
	rng := rand.New(rand.NewSource(cfg.Seed))
	sales, err := workload.Sales(rng, n)
	if err != nil {
		return err
	}
	cube, err := olap.Build(sales, []string{"region", "product", "quarter"}, "amount")
	if err != nil {
		return err
	}
	drive := func(speculate bool) (hits, total int, userTime time.Duration, specViews int64, err error) {
		s, err := olap.NewSession(cube, 4096, speculate)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		r := rand.New(rand.NewSource(cfg.Seed + 3))
		for i := 0; i < sessions; i++ {
			v := olap.View{Fixed: map[string]string{}, GroupDim: "region"}
			for depth := 0; depth < 3; depth++ {
				var cells []olap.Cell
				var hit bool
				userTime += Timed(func() { cells, hit, err = s.Request(v) })
				if err != nil {
					return 0, 0, 0, 0, err
				}
				total++
				if hit {
					hits++
				}
				if len(cells) == 0 {
					break
				}
				pick := cells[r.Intn(len(cells))].Coords[0]
				child, ok := s.DrillDown(v, pick)
				if !ok {
					break
				}
				v = child
			}
		}
		return hits, total, userTime, s.SpeculativeViews, nil
	}
	t := NewTable("mode", "view hit-rate", "views served", "speculative views", "user-facing time")
	for _, mode := range []bool{false, true} {
		hits, total, lat, spec, err := drive(mode)
		if err != nil {
			return err
		}
		name := "no-speculation"
		if mode {
			name = "speculative(DICE)"
		}
		t.Row(name, fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(total)), total, spec, lat)
	}
	t.Fprint(w)
	fmt.Fprintf(w, "\ncube: %d base cells over %d rows\n", cube.NumBaseCells(), n)
	fmt.Fprintln(w, "shape check: precomputing drill-down children turns nearly every click after")
	fmt.Fprintln(w, "the first into a cache hit.")
	return nil
}

func runE15(w io.Writer, cfg Config) error {
	n := cfg.Scale(200_000, 20, 10_000)
	rng := rand.New(rand.NewSource(cfg.Seed))
	sales, err := workload.Sales(rng, n)
	if err != nil {
		return err
	}
	// Plant exceptions: boost east×q3 and north×q1 averages.
	amt, _ := sales.ColumnByName("amount")
	reg, _ := sales.ColumnByName("region")
	qtr, _ := sales.ColumnByName("quarter")
	fa := amt.(*storage.FloatColumn)
	planted := map[[2]string]bool{{"east", "q3"}: true, {"north", "q1"}: true}
	for i := 0; i < sales.NumRows(); i++ {
		key := [2]string{reg.Value(i).S, qtr.Value(i).S}
		if planted[key] {
			fa.V[i] += 120
		}
	}
	cube, err := olap.Build(sales, []string{"region", "quarter"}, "amount")
	if err != nil {
		return err
	}
	grid, rows, cols, err := cube.ViewGrid("region", "quarter", true)
	if err != nil {
		return err
	}
	ex := olap.Exceptions(grid, 2.5)
	t := NewTable("rank", "cell", "value", "expected", "score", "planted?")
	tp := 0
	for i, e := range ex {
		key := [2]string{rows[e.Row], cols[e.Col]}
		isPlanted := planted[key]
		if isPlanted {
			tp++
		}
		t.Row(i+1, rows[e.Row]+"×"+cols[e.Col], e.Value, e.Expected, e.Score, isPlanted)
	}
	t.Fprint(w)
	prec := 0.0
	if len(ex) > 0 {
		prec = float64(tp) / float64(len(ex))
	}
	rec := float64(tp) / float64(len(planted))
	fmt.Fprintf(w, "\nprecision=%.2f recall=%.2f on %d planted exceptions\n", prec, rec, len(planted))
	fmt.Fprintln(w, "shape check: the additive-model residuals surface exactly the planted cells.")
	return nil
}

func runE16(w io.Writer, cfg Config) error {
	n := cfg.Scale(2000, 4, 400)
	k := 20
	lambda := 0.3
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Clustered candidates: relevance concentrated in one cluster.
	items := make([]diversify.Item, n)
	for i := range items {
		cl := i % 8
		items[i] = diversify.Item{
			ID:  i,
			Rel: 1 - 0.08*float64(cl) + rng.Float64()*0.04,
			Features: []float64{
				float64(cl)*5 + rng.NormFloat64()*0.5,
				float64(cl%4)*5 + rng.NormFloat64()*0.5,
			},
		}
	}
	t := NewTable("method", "avg relevance", "min pairwise dist", "MaxSum obj", "MaxMin obj", "runtime")
	type m struct {
		name string
		run  func() (diversify.Result, error)
	}
	for _, method := range []m{
		{"top-k(relevance)", func() (diversify.Result, error) { return diversify.TopK(items, k) }},
		{"random", func() (diversify.Result, error) { return diversify.Random(items, k, rng) }},
		{"MMR", func() (diversify.Result, error) { return diversify.MMR(items, k, lambda) }},
		{"Swap", func() (diversify.Result, error) { return diversify.Swap(items, k, lambda, 0) }},
	} {
		var res diversify.Result
		var err error
		d := Timed(func() { res, err = method.run() })
		if err != nil {
			return err
		}
		t.Row(method.name, res.AvgRel, res.MinDist, res.Objective(lambda), res.ObjectiveMaxMin(lambda), d)
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\nshape check: each heuristic wins the objective it optimizes — Swap's local")
	fmt.Fprintln(w, "search tops MaxSum (total spread), MMR's greedy min-distance tops MaxMin —")
	fmt.Fprintln(w, "and both trade only a little relevance; pure top-k collapses onto one cluster.")
	return nil
}
