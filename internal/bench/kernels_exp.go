package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"dex/internal/exec"
	"dex/internal/expr"
	"dex/internal/storage"
)

func init() {
	register(Experiment{
		ID:     "E33",
		Title:  "Typed predicate kernels and compressed columns: filtered-scan speedup",
		Source: "vectorized selection kernels (MonetDB/X100, CIDR 2005); dictionary/RLE columns (C-Store, VLDB 2005)",
		Run:    runE33,
	})
}

// KernelScanCell is one selectivity point of the kernel-vs-generic scan
// comparison, exported to BENCH_kernels.json as the regression baseline.
type KernelScanCell struct {
	Query        string  `json:"query"` // "cmp" or "between"
	Selectivity  float64 `json:"selectivity"`
	GenericMS    float64 `json:"generic_ms"`
	KernelMS     float64 `json:"kernel_ms"`
	Speedup      float64 `json:"speedup"`
	KernelRowsPS float64 `json:"kernel_rows_per_sec"`
	KernelMBPS   float64 `json:"kernel_mb_per_sec"`
}

// KernelEncodedCell compares the same predicate on plain vs encoded column
// representations, both with kernels on.
type KernelEncodedCell struct {
	Name        string  `json:"name"` // "dict-eq", "rle-range"
	Selectivity float64 `json:"selectivity"`
	PlainMS     float64 `json:"plain_ms"`
	EncodedMS   float64 `json:"encoded_ms"`
	Speedup     float64 `json:"speedup"`
}

// KernelBench is the machine-readable BENCH_kernels.json artifact: E33
// owns the scan/encoded sections, E34 the agg section, and each rewrites
// only its own (loadKernelBench carries the other across).
type KernelBench struct {
	Rows    int                 `json:"rows"`
	Seed    int64               `json:"seed"`
	Scan    []KernelScanCell    `json:"scan"`
	Encoded []KernelEncodedCell `json:"encoded"`
	Agg     *AggKernelBench     `json:"agg,omitempty"`
}

// kernelBenchTable builds the E33 table: a uniform float selectivity dial,
// a payload column the filtered scan projects (the E26 filtered-scan
// shape), a low-cardinality string dimension, and a clustered int column.
func kernelBenchTable(rng *rand.Rand, n int) (*storage.Table, error) {
	v := make([]float64, n)
	amount := make([]float64, n)
	cat := make([]string, n)
	grp := make([]int64, n)
	g := int64(0)
	for i := 0; i < n; i++ {
		v[i] = rng.Float64() * 100
		amount[i] = rng.Float64() * 1000
		cat[i] = fmt.Sprintf("c%d", rng.Intn(8))
		if rng.Intn(512) == 0 {
			g = rng.Int63n(100)
		}
		grp[i] = g
	}
	return storage.FromColumns("kernelbench", storage.Schema{
		{Name: "v", Type: storage.TFloat},
		{Name: "amount", Type: storage.TFloat},
		{Name: "cat", Type: storage.TString},
		{Name: "grp", Type: storage.TInt},
	}, []storage.Column{
		storage.NewFloatColumn(v), storage.NewFloatColumn(amount),
		storage.NewStringColumn(cat), storage.NewIntColumn(grp),
	})
}

// runE33 measures the typed-kernel scan against the generic predicate
// evaluator at 1%/10%/50% selectivity — single comparison and fused
// BETWEEN range, over the E26 filtered-scan shape (filter + project) —
// and then the additional win from dictionary and RLE column encodings
// on low-cardinality predicates. The guard test in kernels_guard_test.go
// pins "kernels never slower than 0.9x generic"; the headline expectation
// is a >=3x speedup on the fused range at low selectivity, where the
// generic path pays one bool-vector pass per bound plus a merge while the
// kernel scans the column once, branch-free.
func runE33(w io.Writer, cfg Config) error {
	n := cfg.Scale(2_000_000, 100, 20_000)
	rng := rand.New(rand.NewSource(cfg.Seed))
	tab, err := kernelBenchTable(rng, n)
	if err != nil {
		return err
	}
	reps := 5
	if cfg.Quick {
		reps = 3
	}
	generic := exec.ExecOptions{Parallelism: 1}
	kernel := exec.ExecOptions{Parallelism: 1, Kernels: true}
	measure := func(t *storage.Table, q exec.Query, opt exec.ExecOptions) (time.Duration, error) {
		if _, err := exec.ExecuteOpts(t, q, opt); err != nil { // warm
			return 0, err
		}
		return medianTime(reps, func() error {
			_, e := exec.ExecuteOpts(t, q, opt)
			return e
		})
	}
	res := KernelBench{Rows: n, Seed: cfg.Seed}
	fmt.Fprintf(w, "rows=%d reps=%d (sequential; the parallel matrix is E26's)\n\n", n, reps)

	scanTbl := NewTable("query", "sel%", "generic", "kernel", "speedup", "Mrows/s", "MB/s")
	for _, sel := range []float64{1, 10, 50} {
		for _, shape := range []struct {
			name string
			p    *expr.Pred
		}{
			{"cmp", expr.Cmp("v", expr.LT, storage.Float(sel))},
			{"between", expr.Between("v", storage.Float(50), storage.Float(50+sel))},
		} {
			q := exec.Query{
				Select: []exec.SelectItem{{Col: "cat"}, {Col: "amount"}},
				Where:  shape.p,
			}
			dg, err := measure(tab, q, generic)
			if err != nil {
				return err
			}
			dk, err := measure(tab, q, kernel)
			if err != nil {
				return err
			}
			cell := KernelScanCell{
				Query:        shape.name,
				Selectivity:  sel / 100,
				GenericMS:    float64(dg) / 1e6,
				KernelMS:     float64(dk) / 1e6,
				Speedup:      float64(dg) / float64(dk),
				KernelRowsPS: float64(n) / dk.Seconds(),
				KernelMBPS:   float64(8*n) / 1e6 / dk.Seconds(),
			}
			res.Scan = append(res.Scan, cell)
			scanTbl.Row(shape.name, sel, dg, dk, cell.Speedup, cell.KernelRowsPS/1e6, cell.KernelMBPS)
		}
	}
	scanTbl.Fprint(w)

	// Encoded columns: the same predicate with kernels on, plain vs
	// dictionary/RLE representation. The dict kernel evaluates the
	// predicate once per dictionary entry and matches codes; the RLE
	// kernel accepts or rejects whole runs. The plain-string arm falls
	// back to the generic evaluator — kernels do not compile plain string
	// columns, which is exactly the gap dictionary encoding closes.
	encTab, st, err := storage.EncodeTable(tab, storage.EncodeOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nencoded columns: dict=%d rle=%d plain=%d\n\n", st.Dict, st.RLE, st.Plain)
	encTbl := NewTable("predicate", "sel%", "plain", "encoded", "speedup")
	for _, e := range []struct {
		name string
		sel  float64
		p    *expr.Pred
	}{
		{"dict-eq", 12.5, expr.Cmp("cat", expr.EQ, storage.String_("c3"))},
		{"rle-range", 10, expr.Between("grp", storage.Int(20), storage.Int(30))},
	} {
		q := exec.Query{
			Select: []exec.SelectItem{{Col: "amount", Agg: exec.AggSum}},
			Where:  e.p,
		}
		dp, err := measure(tab, q, kernel)
		if err != nil {
			return err
		}
		de, err := measure(encTab, q, kernel)
		if err != nil {
			return err
		}
		cell := KernelEncodedCell{
			Name:        e.name,
			Selectivity: e.sel / 100,
			PlainMS:     float64(dp) / 1e6,
			EncodedMS:   float64(de) / 1e6,
			Speedup:     float64(dp) / float64(de),
		}
		res.Encoded = append(res.Encoded, cell)
		encTbl.Row(e.name, e.sel, dp, de, cell.Speedup)
	}
	encTbl.Fprint(w)

	if cfg.JSONPath != "" {
		res.Agg = loadKernelBench(cfg.JSONPath).Agg
		return writeKernelBench(w, cfg.JSONPath, res)
	}
	return nil
}
