package bench

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"dex/internal/exec"
	"dex/internal/expr"
	"dex/internal/storage"
)

// TestKernelScanNeverSlower guards the kernel dispatch the way
// TestParallelScanNeverSlower guards the morsel scheduler: a typed-kernel
// filtered scan must never fall below 0.9x the generic path (kernel time at
// most generic/0.9), at the mid selectivity where a branchy selection loop
// would be at its worst. Best-of-reps timing plus a small absolute slack
// absorbs scheduler jitter; the headline speedups are E33's to report, this
// test only pins "the kernel path is never a regression".
func TestKernelScanNeverSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-row timing guard skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing guard skipped under -race: instrumentation swamps the scan loop")
	}
	const rows = 1_000_000
	rng := rand.New(rand.NewSource(33))
	tab, err := kernelBenchTable(rng, rows)
	if err != nil {
		t.Fatal(err)
	}
	queries := []struct {
		name string
		p    *expr.Pred
	}{
		{"cmp-10pct", expr.Cmp("v", expr.LT, storage.Float(10))},
		{"between-10pct", expr.Between("v", storage.Float(50), storage.Float(60))},
	}
	bestOf := func(reps int, q exec.Query, opt exec.ExecOptions) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < reps; i++ {
			start := time.Now()
			if _, err := exec.ExecuteOpts(tab, q, opt); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	for _, qq := range queries {
		q := exec.Query{
			Select: []exec.SelectItem{{Col: "amount", Agg: exec.AggSum}},
			Where:  qq.p,
		}
		// Warm both paths so first-touch allocation biases neither.
		bestOf(1, q, exec.ExecOptions{Parallelism: 1})
		bestOf(1, q, exec.ExecOptions{Parallelism: 1, Kernels: true})
		generic := bestOf(5, q, exec.ExecOptions{Parallelism: 1})
		kernel := bestOf(5, q, exec.ExecOptions{Parallelism: 1, Kernels: true})
		const slack = 2 * time.Millisecond
		limit := generic + generic/9 + slack // generic/0.9, plus jitter allowance
		t.Logf("%s: rows=%d GOMAXPROCS=%d generic=%v kernel=%v limit=%v",
			qq.name, rows, runtime.GOMAXPROCS(0), generic, kernel, limit)
		if kernel > limit {
			t.Errorf("%s: kernel scan %v exceeds 0.9x-floor limit %v (generic %v)",
				qq.name, kernel, limit, generic)
		}
	}
}
