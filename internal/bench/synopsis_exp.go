package bench

import (
	"fmt"
	"io"
	"math/rand"

	"dex/internal/metrics"
	"dex/internal/synopsis"
	"dex/internal/workload"
)

func init() {
	register(Experiment{
		ID:     "E24",
		Title:  "Synopses: histogram/wavelet/sketch accuracy vs footprint",
		Source: "synopses for massive data [16]",
		Run:    runE24,
	})
}

func runE24(w io.Writer, cfg Config) error {
	n := cfg.Scale(500_000, 20, 20_000)
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Skewed numeric column (exponential) for selectivity estimation.
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 100
	}
	truthRange := func(lo, hi float64) float64 {
		c := 0.0
		for _, x := range xs {
			if x >= lo && x < hi {
				c++
			}
		}
		return c
	}

	t := NewTable("synopsis", "footprint", "task", "mean rel-err")
	queries := make([][2]float64, 40)
	for i := range queries {
		lo := rng.Float64() * 300
		queries[i] = [2]float64{lo, lo + 20 + rng.Float64()*80}
	}
	for _, buckets := range []int{16, 64, 256} {
		hw, err := synopsis.NewEquiWidth(xs, buckets)
		if err != nil {
			return err
		}
		hd, err := synopsis.NewEquiDepth(xs, buckets)
		if err != nil {
			return err
		}
		var ewErr, edErr float64
		valid := 0
		for _, q := range queries {
			tr := truthRange(q[0], q[1])
			if tr < 10 {
				continue
			}
			valid++
			ewErr += metrics.RelErr(hw.EstimateRange(q[0], q[1]), tr)
			edErr += metrics.RelErr(hd.EstimateRange(q[0], q[1]), tr)
		}
		t.Row(fmt.Sprintf("equi-width-%d", buckets), hw.Size(), "range count", ewErr/float64(valid))
		t.Row(fmt.Sprintf("equi-depth-%d", buckets), hd.Size(), "range count", edErr/float64(valid))
	}

	// Wavelet synopsis of a frequency vector (histogram of a smooth signal).
	freq, _ := metrics.Histogram(workload.RandomWalk(rng, n, 1), 512)
	norm := metrics.L2(freq, make([]float64, len(freq)))
	for _, b := range []int{16, 64, 256} {
		wv, err := synopsis.NewWavelet(freq, b)
		if err != nil {
			return err
		}
		err2 := metrics.L2(wv.Reconstruct(), freq) / norm
		t.Row(fmt.Sprintf("haar-wavelet-%d", b), wv.Size(), "distribution L2", err2)
	}

	// Count-Min sketch on a Zipf stream of item frequencies.
	items := workload.ZipfInts(rng, n, 10_000, 1.3)
	truthFreq := map[int64]uint64{}
	for _, it := range items {
		truthFreq[it]++
	}
	for _, eps := range []float64{0.01, 0.001} {
		cm, err := synopsis.NewCountMin(eps, 0.01)
		if err != nil {
			return err
		}
		for _, it := range items {
			cm.Add(fmt.Sprint(it), 1)
		}
		var relErr float64
		probes := 0
		for it, tf := range truthFreq {
			if tf < 100 {
				continue
			}
			probes++
			relErr += metrics.RelErr(float64(cm.Estimate(fmt.Sprint(it))), float64(tf))
		}
		t.Row(fmt.Sprintf("count-min eps=%.3g", eps), cm.Size(), "heavy-hitter freq", relErr/float64(probes))
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\nshape check: error falls as the synopsis budget grows; equi-depth beats")
	fmt.Fprintln(w, "equi-width under skew at equal buckets; the sketch never underestimates and")
	fmt.Fprintln(w, "its overestimate shrinks with width — the classic accuracy/footprint ladder.")
	return nil
}
