package bench

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dex/internal/adaptstore"
	"dex/internal/crack"
	"dex/internal/exec"
	"dex/internal/rawload"
	"dex/internal/storage"
	"dex/internal/tsindex"
	"dex/internal/workload"
)

func init() {
	register(Experiment{ID: "E1", Title: "Table 1: taxonomy → implemented module", Source: "the tutorial's Table 1", Run: runE1})
	register(Experiment{ID: "E2", Title: "Cracking convergence vs scan and full index", Source: "database cracking [29,33]", Run: runE2})
	register(Experiment{ID: "E3", Title: "Stochastic cracking under sequential workloads", Source: "stochastic cracking [23]", Run: runE3})
	register(Experiment{ID: "E4", Title: "Cracking under updates", Source: "updating a cracked database [30]", Run: runE4})
	register(Experiment{ID: "E5", Title: "Concurrent readers on a cracker index", Source: "concurrency control for adaptive indexing [22]", Run: runE5})
	register(Experiment{ID: "E6", Title: "Adaptive (in-situ) loading vs full load vs external scan", Source: "NoDB [8,28], invisible loading [2]", Run: runE6})
	register(Experiment{ID: "E7", Title: "Adaptive storage follows workload shifts", Source: "H2O [9]", Run: runE7})
	register(Experiment{ID: "E14", Title: "Adaptive time-series indexing", Source: "indexing for interactive data-series exploration [68]", Run: runE14})
}

// taxonomy mirrors DESIGN.md's inventory.
var taxonomy = [][3]string{
	{"User Interaction", "Visualization tools & optimizations [11,12,38,49,66]", "internal/viz, internal/seedb"},
	{"User Interaction", "Automatic exploration / steering [14,18,20]", "internal/steer"},
	{"User Interaction", "Assisted query formulation [3,13,51,58,64]", "internal/qbe"},
	{"User Interaction", "Query recommendation [21,57]", "internal/recommend"},
	{"User Interaction", "Novel query interfaces [32,44,45,47]", "internal/gesture"},
	{"Middleware", "Data prefetching [36,37,63]", "internal/prefetch, internal/cache"},
	{"Middleware", "Cube exploration [35,37,54,55]", "internal/olap"},
	{"Middleware", "Result diversification [41,65]", "internal/diversify"},
	{"Middleware", "Query approximation [5,6,7,16,24,25]", "internal/aqp, internal/onlineagg, internal/sample"},
	{"Database Engine", "Adaptive indexing [22,23,26,29,30,31,33,50]", "internal/crack"},
	{"Database Engine", "Time-series exploration [68]", "internal/tsindex"},
	{"Database Engine", "Adaptive loading [2,8,15,28]", "internal/rawload"},
	{"Database Engine", "Adaptive storage [9,19]", "internal/adaptstore"},
	{"Database Engine", "Flexible architectures: declarative layouts & engine modes [17,34,42,43]", "internal/adaptstore (Layout), internal/core (modes)"},
	{"Database Engine", "Sampling architectures [35,59,60]", "internal/sample, internal/aqp"},
	{"Database Engine", "Column-store substrate", "internal/storage, internal/exec, internal/expr"},
}

func runE1(w io.Writer, cfg Config) error {
	t := NewTable("layer", "technique family (tutorial citations)", "module(s)")
	for _, row := range taxonomy {
		t.Row(row[0], row[1], row[2])
	}
	t.Fprint(w)
	return nil
}

func runE2(w io.Writer, cfg Config) error {
	n := cfg.Scale(1_000_000, 20, 20_000)
	nq := cfg.Scale(1000, 10, 100)
	rng := rand.New(rand.NewSource(cfg.Seed))
	col := workload.UniformInts(rng, n, n)
	queries := workload.RandomRanges(rng, nq, n, int64(n/100))

	fs := crack.NewFullScan(col)
	var si *crack.SortedIndex[int64]
	sortBuild := Timed(func() { si = crack.NewSorted(col) })
	ix := crack.New(col, crack.Options{Variant: crack.Standard})

	type curve struct {
		name string
		per  []time.Duration
	}
	curves := []curve{{name: "full-scan"}, {name: "full-sort"}, {name: "cracking"}}
	run := func(idx crack.RangeIndex[int64], slot int) {
		for _, q := range queries {
			d := Timed(func() { idx.Count(q.Lo, q.Hi) })
			curves[slot].per = append(curves[slot].per, d)
		}
	}
	run(fs, 0)
	run(si, 1)
	run(ix, 2)
	curves[1].per[0] += sortBuild // full index pays its build on query 1

	checkpoints := []int{1, 2, 5, 10, 50, 100, nq}
	// Deduplicate (quick mode can make nq collide with a fixed checkpoint).
	{
		seen := map[int]bool{}
		var cps []int
		for _, c := range checkpoints {
			if c <= nq && !seen[c] {
				seen[c] = true
				cps = append(cps, c)
			}
		}
		checkpoints = cps
	}
	t := NewTable(append([]string{"method"}, func() []string {
		var h []string
		for _, c := range checkpoints {
			h = append(h, fmt.Sprintf("q%d", c))
		}
		return append(h, "cumulative")
	}()...)...)
	for _, c := range curves {
		row := []interface{}{c.name}
		var cum time.Duration
		for _, d := range c.per {
			cum += d
		}
		for _, cp := range checkpoints {
			if cp-1 < len(c.per) {
				row = append(row, c.per[cp-1])
			} else {
				row = append(row, "-")
			}
		}
		row = append(row, cum)
		t.Row(row...)
	}
	t.Fprint(w)
	fmt.Fprintf(w, "\ncracker pieces after %d queries: %d (cracks: %d)\n", nq, ix.NumPieces(), ix.Cracks())
	fmt.Fprintln(w, "shape check: cracking q1 costs a small multiple of a scan (two partition passes);")
	fmt.Fprintln(w, "per-query cost then falls toward index probes;")
	fmt.Fprintln(w, "full-sort pays everything upfront (q1), cracking amortizes it across the workload.")
	return nil
}

func runE3(w io.Writer, cfg Config) error {
	n := cfg.Scale(1_000_000, 20, 20_000)
	nq := cfg.Scale(200, 4, 40)
	rng := rand.New(rand.NewSource(cfg.Seed))
	col := workload.UniformInts(rng, n, n)
	seq := workload.SequentialRanges(nq, n)

	std := crack.New(col, crack.Options{Variant: crack.Standard})
	sto := crack.New(col, crack.Options{Variant: crack.Stochastic, Seed: cfg.Seed})

	t := NewTable("variant", "pieces", "last-query", "cumulative")
	for _, v := range []struct {
		name string
		ix   *crack.IntIndex
	}{{"standard", std}, {"stochastic", sto}} {
		var cum, last time.Duration
		for _, q := range seq {
			last = Timed(func() { v.ix.Count(q.Lo, q.Hi) })
			cum += last
		}
		t.Row(v.name, v.ix.NumPieces(), last, cum)
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\nshape check: on a sequential sweep, standard cracking keeps rescanning the")
	fmt.Fprintln(w, "large uncracked suffix; stochastic cracking's random pivots keep pieces small.")
	return nil
}

func runE4(w io.Writer, cfg Config) error {
	n := cfg.Scale(500_000, 20, 10_000)
	rounds := cfg.Scale(200, 4, 40)
	insertsPerRound := cfg.Scale(500, 10, 20)
	rng := rand.New(rand.NewSource(cfg.Seed))
	col := workload.UniformInts(rng, n, n)

	merge := crack.New(col, crack.Options{MaxPending: 4 * insertsPerRound})
	t := NewTable("method", "queries", "inserts", "merges", "avg-query", "total")
	// Merge-gradually cracker.
	var total time.Duration
	for r := 0; r < rounds; r++ {
		for i := 0; i < insertsPerRound; i++ {
			merge.Insert(int64(rng.Intn(n)))
		}
		lo := int64(rng.Intn(n))
		total += Timed(func() { merge.Count(lo, lo+int64(n/100)) })
	}
	t.Row("crack+merge", rounds, rounds*insertsPerRound, merge.Merges(), total/time.Duration(rounds), total)

	// Rebuild-from-scratch sorted baseline.
	data := append([]int64(nil), col...)
	total = 0
	rebuilds := 0
	for r := 0; r < rounds; r++ {
		for i := 0; i < insertsPerRound; i++ {
			data = append(data, int64(rng.Intn(n)))
		}
		lo := int64(rng.Intn(n))
		total += Timed(func() {
			si := crack.NewSorted(data) // pays a full re-sort per batch
			si.Count(lo, lo+int64(n/100))
		})
		rebuilds++
	}
	t.Row("sort-rebuild", rounds, rounds*insertsPerRound, rebuilds, total/time.Duration(rounds), total)
	t.Fprint(w)
	fmt.Fprintln(w, "\nshape check: ripple-merged cracking absorbs updates at a small per-query cost;")
	fmt.Fprintln(w, "rebuilding a full index per update batch is orders of magnitude slower.")
	return nil
}

func runE5(w io.Writer, cfg Config) error {
	n := cfg.Scale(1_000_000, 20, 20_000)
	qPerReader := cfg.Scale(2000, 10, 100)
	rng := rand.New(rand.NewSource(cfg.Seed))
	col := workload.UniformInts(rng, n, n)

	t := NewTable("readers", "total-queries", "wall-time", "queries/sec")
	for _, readers := range []int{1, 2, 4, 8} {
		ix := crack.New(col, crack.Options{Variant: crack.Stochastic, Seed: cfg.Seed})
		var wg sync.WaitGroup
		wall := Timed(func() {
			for g := 0; g < readers; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					r := rand.New(rand.NewSource(seed))
					for q := 0; q < qPerReader; q++ {
						lo := int64(r.Intn(n))
						ix.Count(lo, lo+int64(n/200))
					}
				}(cfg.Seed + int64(g))
			}
			wg.Wait()
		})
		total := readers * qPerReader
		t.Row(readers, total, wall, fmt.Sprintf("%.0f", float64(total)/wall.Seconds()))
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\nshape check: once the index converges queries run under the shared read lock,")
	fmt.Fprintln(w, "so aggregate throughput grows with the reader count.")
	return nil
}

func runE6(w io.Writer, cfg Config) error {
	n := cfg.Scale(200_000, 20, 5_000)
	dir, err := os.MkdirTemp("", "dex-e6-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	rng := rand.New(rand.NewSource(cfg.Seed))
	ticks, err := workload.Ticks(rng, n)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "ticks.csv")
	if err := storage.WriteCSVFile(ticks, path); err != nil {
		return err
	}

	queries := make([]exec.Query, 0, 12)
	for i := 0; i < 12; i++ {
		lo := float64(i * 10)
		queries = append(queries, rawload.SelectivityProbe("price", lo, lo+40))
	}

	raw, err := rawload.Open("ticks", path, ticks.Schema())
	if err != nil {
		return err
	}
	var full *rawload.FullLoad
	loadTime := Timed(func() { full, err = rawload.NewFullLoad("ticks", path) })
	if err != nil {
		return err
	}
	ext := rawload.NewExternalScan("ticks", path)

	type lane struct {
		name string
		q    rawload.Querier
		per  []time.Duration
	}
	lanes := []*lane{{name: "nodb-insitu", q: raw}, {name: "full-load", q: full}, {name: "external-scan", q: ext}}
	for _, l := range lanes {
		for _, q := range queries {
			q := q
			d := Timed(func() { _, err = l.q.Query(q) })
			if err != nil {
				return err
			}
			l.per = append(l.per, d)
		}
	}
	lanes[1].per[0] += loadTime // traditional system pays the load before q1

	t := NewTable("method", "q1", "q2", "q5", "q12", "total")
	for _, l := range lanes {
		var cum time.Duration
		for _, d := range l.per {
			cum += d
		}
		t.Row(l.name, l.per[0], l.per[1], l.per[4], l.per[11], cum)
	}
	t.Fprint(w)
	st := raw.Stats()
	fmt.Fprintf(w, "\nin-situ work: %d fields parsed, %d columns cached, %d positional-map columns\n",
		st.FieldsParsed, st.ColumnsCached, st.PositionalCols)
	fmt.Fprintln(w, "shape check: NoDB's q1 pays tokenize+parse of the touched column only; later")
	fmt.Fprintln(w, "queries run at loaded speed; full-load pays everything upfront; external scan stays flat-high.")
	return nil
}

func runE7(w io.Writer, cfg Config) error {
	n := cfg.Scale(200_000, 20, 5_000)
	k := 8
	rng := rand.New(rand.NewSource(cfg.Seed))
	cols := make([][]float64, k)
	for c := range cols {
		cols[c] = make([]float64, n)
		for r := range cols[c] {
			cols[c][r] = rng.Float64()
		}
	}
	lookupQueries := cfg.Scale(300, 4, 48) // OLTP-ish phase
	rowsPerLookup := cfg.Scale(400, 4, 50) // random rows per lookup
	scanQueries := cfg.Scale(600, 4, 96)   // OLAP-ish phase

	allCols := make([]int, k)
	for i := range allCols {
		allCols[i] = i
	}
	lookupRows := make([][]int, lookupQueries)
	for i := range lookupRows {
		rows := make([]int, rowsPerLookup)
		for j := range rows {
			rows[j] = rng.Intn(n)
		}
		lookupRows[i] = rows
	}
	runWorkload := func(scan func([]int) ([]float64, error), read func([]int, []int) ([][]float64, error)) (p1, p2 time.Duration, err error) {
		p1 = Timed(func() {
			for i := 0; i < lookupQueries && err == nil; i++ {
				_, err = read(lookupRows[i], allCols)
			}
		})
		if err != nil {
			return
		}
		p2 = Timed(func() {
			for i := 0; i < scanQueries && err == nil; i++ {
				_, err = scan([]int{i % k})
			}
		})
		return
	}

	t := NewTable("store", "layout(end)", "lookup phase", "scan phase", "total", "slots-touched", "reorgs")
	static := func(name string, layout adaptstore.Layout) error {
		s, err := adaptstore.New(cols, layout)
		if err != nil {
			return err
		}
		p1, p2, err := runWorkload(s.ScanSum, s.ReadRows)
		if err != nil {
			return err
		}
		t.Row(name, s.Layout().String(), p1, p2, p1+p2, s.SlotsTouched(), 0)
		return nil
	}
	if err := static("static-row", adaptstore.RowLayout(k)); err != nil {
		return err
	}
	if err := static("static-column", adaptstore.ColumnLayout(k)); err != nil {
		return err
	}
	a, err := adaptstore.NewAdaptive(cols, 64, 32, 0.4)
	if err != nil {
		return err
	}
	p1, p2, err := runWorkload(a.ScanSum, a.ReadRows)
	if err != nil {
		return err
	}
	t.Row("adaptive(H2O)", a.Store.Layout().String(), p1, p2, p1+p2, a.Store.SlotsTouched(), a.Reorganizations())
	t.Fprint(w)
	fmt.Fprintln(w, "\nshape check: whole-row lookups favor the row layout, single-column scans the")
	fmt.Fprintln(w, "columnar one; the adaptive store reorganizes row→column at the workload shift,")
	fmt.Fprintln(w, "tracking the better static layout in each phase (plus reorganization costs).")
	return nil
}

func runE14(w io.Writer, cfg Config) error {
	nSeries := cfg.Scale(20_000, 20, 1_000)
	length := 256
	nq := cfg.Scale(40, 2, 10)
	rng := rand.New(rand.NewSource(cfg.Seed))
	series := workload.SeriesCollection(rng, nSeries, length)
	queries := workload.SeriesCollection(rng, nq, length)

	t := NewTable("method", "q1", "q5", "last", "total(incl. build)")
	// Full index: pays the whole build before q1.
	var fullDB *tsindex.DB
	var err error
	build := Timed(func() { fullDB, err = tsindex.NewFullIndex(series, 8) })
	if err != nil {
		return err
	}
	runLane := func(name string, knn func(q []float64) error, extraQ1 time.Duration) error {
		var per []time.Duration
		for _, q := range queries {
			q := q
			var kerr error
			d := Timed(func() { kerr = knn(q) })
			if kerr != nil {
				return kerr
			}
			per = append(per, d)
		}
		per[0] += extraQ1
		var cum time.Duration
		for _, d := range per {
			cum += d
		}
		t.Row(name, per[0], per[4], per[len(per)-1], cum)
		return nil
	}
	if err := runLane("full-index", func(q []float64) error {
		_, e := fullDB.KNN(q, 10)
		return e
	}, build); err != nil {
		return err
	}
	adaptive, err := tsindex.New(series, 8, nSeries/nq+1)
	if err != nil {
		return err
	}
	if err := runLane("adaptive", func(q []float64) error {
		_, e := adaptive.KNN(q, 10)
		return e
	}, 0); err != nil {
		return err
	}
	if err := runLane("seq-scan", func(q []float64) error {
		_, e := tsindex.SeqScanKNN(series, q, 10)
		return e
	}, 0); err != nil {
		return err
	}
	t.Fprint(w)
	fmt.Fprintf(w, "\nadaptive index coverage after %d queries: %.0f%%\n", nq, adaptive.IndexedFraction()*100)
	fmt.Fprintln(w, "shape check: the adaptive index answers q1 without the upfront build the full")
	fmt.Fprintln(w, "index pays, and converges to full-index latency as summarization completes.")
	return nil
}
