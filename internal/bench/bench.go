// Package bench is the experiment harness: it regenerates, for every
// technique family the tutorial surveys, the canonical headline experiment
// of the surveyed system(s) — cracking convergence curves, AQP
// error/latency trade-offs, steering convergence, SeeDB speedups and so on.
// DESIGN.md maps each experiment id (E1–E23) to its sources and modules;
// cmd/experiments runs them and EXPERIMENTS.md records the results.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Config parameterizes a run.
type Config struct {
	// Quick shrinks data sizes so the whole suite runs in seconds
	// (used by tests); the default sizes are the reported ones.
	Quick bool
	// Seed drives all generators.
	Seed int64
	// JSONPath, when set, asks experiments that export machine-readable
	// baselines (E30 writes BENCH_concurrency.json) to write them there.
	// Experiments without a JSON artifact ignore it.
	JSONPath string
}

// Scale returns n, or n/denom (at least min) in quick mode.
func (c Config) Scale(n, denom, min int) int {
	if !c.Quick {
		return n
	}
	s := n / denom
	if s < min {
		s = min
	}
	return s
}

// Experiment is one runnable reproduction.
type Experiment struct {
	ID     string
	Title  string
	Source string
	Run    func(w io.Writer, cfg Config) error
}

var registry []Experiment

func register(e Experiment) {
	registry = append(registry, e)
}

// All returns every experiment in id order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(a, b int) bool { return idNum(out[a].ID) < idNum(out[b].ID) })
	return out
}

func idNum(id string) int {
	n := 0
	fmt.Sscanf(id, "E%d", &n)
	return n
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// Table accumulates rows for aligned text output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// Row appends a row; values are formatted with %v (floats with %.4g).
func (t *Table) Row(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case time.Duration:
			row[i] = x.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Fprint writes the aligned table.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.header)
	seps := make([]string, len(t.header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range t.rows {
		line(r)
	}
}

// Section prints an experiment banner.
func Section(w io.Writer, e Experiment) {
	fmt.Fprintf(w, "\n### %s — %s\n(source: %s)\n\n", e.ID, e.Title, e.Source)
}

// Timed measures fn.
func Timed(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}
