package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"dex/internal/exec"
	"dex/internal/expr"
	"dex/internal/storage"
)

func init() {
	register(Experiment{
		ID:     "E34",
		Title:  "Typed aggregation kernels and the fused filter→aggregate pipeline",
		Source: "vectorized aggregation (MonetDB/X100, CIDR 2005); morsel-driven pipelining (HyPer, SIGMOD 2014)",
		Run:    runE34,
	})
}

// AggScalarCell is one selectivity point of the scalar-aggregate
// comparison: generic accumulation, predicate kernels with generic
// accumulation (the PR8 baseline), and the fused typed pipeline.
type AggScalarCell struct {
	Query            string  `json:"query"` // "sum-dense" or "sum-cmp"
	Selectivity      float64 `json:"selectivity"`
	GenericMS        float64 `json:"generic_ms"`
	KernelsMS        float64 `json:"kernels_ms"` // predicate kernels only: the PR8 baseline
	FusedMS          float64 `json:"fused_ms"`   // predicate + aggregation kernels, fused
	SpeedupVsGeneric float64 `json:"speedup_vs_generic"`
	SpeedupVsKernels float64 `json:"speedup_vs_kernels"`
	FusedRowsPS      float64 `json:"fused_rows_per_sec"`
}

// AggGroupCell is one group-by shape of the same three-arm comparison.
type AggGroupCell struct {
	Name             string  `json:"name"` // "dict-group", "int-group", "rle-group"
	Groups           int     `json:"groups"`
	GenericMS        float64 `json:"generic_ms"`
	KernelsMS        float64 `json:"kernels_ms"`
	FusedMS          float64 `json:"fused_ms"`
	SpeedupVsGeneric float64 `json:"speedup_vs_generic"`
	SpeedupVsKernels float64 `json:"speedup_vs_kernels"`
}

// AggKernelBench is the E34 section of BENCH_kernels.json.
type AggKernelBench struct {
	Rows   int             `json:"rows"`
	Seed   int64           `json:"seed"`
	Scalar []AggScalarCell `json:"scalar"`
	Group  []AggGroupCell  `json:"group"`
}

// loadKernelBench reads an existing BENCH_kernels.json so E33 and E34 can
// each rewrite their own section without clobbering the other's. A missing
// or unreadable file just yields the zero value.
func loadKernelBench(path string) KernelBench {
	var res KernelBench
	if path == "" {
		return res
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		return res
	}
	_ = json.Unmarshal(blob, &res)
	return res
}

func writeKernelBench(w io.Writer, path string, res KernelBench) error {
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nwrote %s\n", path)
	return nil
}

// runE34 measures the typed aggregation kernels over the E33 table, three
// arms per shape: generic sequential execution, predicate kernels with
// generic accumulation (exactly the PR8 configuration — the filter is
// vectorized but every accumulated value is boxed through storage.Value),
// and the fused pipeline (typed per-morsel accumulation over pooled
// selection buffers, no global selection vector, no boxing). Scalar SUMs
// sweep the selectivity dial from dense to 1%; the group-bys compare the
// dict-indexed, int-hashed and run-aware accumulators. The headline
// expectation is >=2x over the PR8 baseline on low-selectivity SUM and on
// the dictionary group-by, where per-row interface boxing dominates the
// baseline profile.
func runE34(w io.Writer, cfg Config) error {
	n := cfg.Scale(2_000_000, 100, 20_000)
	rng := rand.New(rand.NewSource(cfg.Seed))
	tab, err := kernelBenchTable(rng, n)
	if err != nil {
		return err
	}
	encTab, st, err := storage.EncodeTable(tab, storage.EncodeOptions{})
	if err != nil {
		return err
	}
	reps := 5
	if cfg.Quick {
		reps = 3
	}
	generic := exec.ExecOptions{Parallelism: 1}
	kernels := exec.ExecOptions{Parallelism: 1, Kernels: true}
	fused := exec.ExecOptions{Parallelism: 1, Kernels: true, AggKernels: true}
	measure := func(t *storage.Table, q exec.Query, opt exec.ExecOptions) (time.Duration, error) {
		if _, err := exec.ExecuteOpts(t, q, opt); err != nil { // warm
			return 0, err
		}
		return medianTime(reps, func() error {
			_, e := exec.ExecuteOpts(t, q, opt)
			return e
		})
	}
	res := AggKernelBench{Rows: n, Seed: cfg.Seed}
	fmt.Fprintf(w, "rows=%d reps=%d encoded: dict=%d rle=%d plain=%d (sequential)\n\n",
		n, reps, st.Dict, st.RLE, st.Plain)

	scalarTbl := NewTable("query", "sel%", "generic", "kernels", "fused", "vs-generic", "vs-kernels", "Mrows/s")
	scalars := []struct {
		name string
		sel  float64 // percent; <0 means no WHERE
	}{
		{"sum-dense", -1},
		{"sum-cmp", 90},
		{"sum-cmp", 50},
		{"sum-cmp", 10},
		{"sum-cmp", 1},
	}
	for _, sc := range scalars {
		q := exec.Query{Select: []exec.SelectItem{
			{Col: "amount", Agg: exec.AggSum},
			{Col: "amount", Agg: exec.AggAvg},
			{Col: "*", Agg: exec.AggCount},
		}}
		sel := 1.0
		if sc.sel >= 0 {
			q.Where = expr.Cmp("v", expr.LT, storage.Float(sc.sel))
			sel = sc.sel / 100
		}
		dg, err := measure(tab, q, generic)
		if err != nil {
			return err
		}
		dk, err := measure(tab, q, kernels)
		if err != nil {
			return err
		}
		df, err := measure(tab, q, fused)
		if err != nil {
			return err
		}
		cell := AggScalarCell{
			Query:            sc.name,
			Selectivity:      sel,
			GenericMS:        float64(dg) / 1e6,
			KernelsMS:        float64(dk) / 1e6,
			FusedMS:          float64(df) / 1e6,
			SpeedupVsGeneric: float64(dg) / float64(df),
			SpeedupVsKernels: float64(dk) / float64(df),
			FusedRowsPS:      float64(n) / df.Seconds(),
		}
		res.Scalar = append(res.Scalar, cell)
		scalarTbl.Row(sc.name, sel*100, dg, dk, df,
			cell.SpeedupVsGeneric, cell.SpeedupVsKernels, cell.FusedRowsPS/1e6)
	}
	scalarTbl.Fprint(w)

	fmt.Fprintln(w)
	groupTbl := NewTable("shape", "groups", "generic", "kernels", "fused", "vs-generic", "vs-kernels")
	groups := []struct {
		name   string
		tbl    *storage.Table
		col    string
		groups int
	}{
		{"dict-group", encTab, "cat", 8},  // array-indexed per-code accumulators
		{"int-group", tab, "grp", 100},    // raw-int64-hashed accumulators
		{"rle-group", encTab, "grp", 100}, // run-aware key cursor
	}
	for _, g := range groups {
		q := exec.Query{
			Select: []exec.SelectItem{
				{Col: g.col},
				{Col: "amount", Agg: exec.AggSum},
				{Col: "*", Agg: exec.AggCount},
			},
			GroupBy: []string{g.col},
		}
		dg, err := measure(g.tbl, q, generic)
		if err != nil {
			return err
		}
		dk, err := measure(g.tbl, q, kernels)
		if err != nil {
			return err
		}
		df, err := measure(g.tbl, q, fused)
		if err != nil {
			return err
		}
		cell := AggGroupCell{
			Name:             g.name,
			Groups:           g.groups,
			GenericMS:        float64(dg) / 1e6,
			KernelsMS:        float64(dk) / 1e6,
			FusedMS:          float64(df) / 1e6,
			SpeedupVsGeneric: float64(dg) / float64(df),
			SpeedupVsKernels: float64(dk) / float64(df),
		}
		res.Group = append(res.Group, cell)
		groupTbl.Row(g.name, g.groups, dg, dk, df, cell.SpeedupVsGeneric, cell.SpeedupVsKernels)
	}
	groupTbl.Fprint(w)

	if cfg.JSONPath != "" {
		full := loadKernelBench(cfg.JSONPath)
		full.Agg = &res
		if full.Rows == 0 { // no prior E33 artifact at this path
			full.Rows, full.Seed = n, cfg.Seed
		}
		return writeKernelBench(w, cfg.JSONPath, full)
	}
	return nil
}
