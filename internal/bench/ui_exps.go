package bench

import (
	"fmt"
	"io"
	"math/rand"

	"dex/internal/exec"
	"dex/internal/expr"
	"dex/internal/gesture"
	"dex/internal/qbe"
	"dex/internal/recommend"
	"dex/internal/seedb"
	"dex/internal/sqlparse"
	"dex/internal/steer"
	"dex/internal/storage"
	"dex/internal/viz"
	"dex/internal/workload"
)

func init() {
	register(Experiment{ID: "E17", Title: "Explore-by-example steering: F1 vs labeled samples", Source: "AIDE [18]", Run: runE17})
	register(Experiment{ID: "E18", Title: "Query discovery from example tuples", Source: "query by output [64], discovering queries [58]", Run: runE18})
	register(Experiment{ID: "E19", Title: "Query recommendation: hit-rate vs popularity baseline", Source: "interactive SQL suggestion [21]", Run: runE19})
	register(Experiment{ID: "E20", Title: "SeeDB: view recommendation strategies and pruning", Source: "SeeDB [49]", Run: runE20})
	register(Experiment{ID: "E21", Title: "M4 result reduction for line charts", Source: "dynamic result reduction [11]", Run: runE21})
	register(Experiment{ID: "E22", Title: "Order-preserving sampling for ordered visualizations", Source: "rapid sampling with ordering guarantees [12]", Run: runE22})
	register(Experiment{ID: "E23", Title: "Gestural query synthesis", Source: "dbTouch [32,44], GestureDB [45,47]", Run: runE23})
}

func runE17(w io.Writer, cfg Config) error {
	n := cfg.Scale(20_000, 10, 3_000)
	rng := rand.New(rand.NewSource(cfg.Seed))
	sky, err := workload.SkyCatalog(rng, n)
	if err != nil {
		return err
	}
	// Hidden interest: the quasar cluster around (30,10).
	oracle := func(x []float64) bool {
		return x[0] >= 24 && x[0] < 36 && x[1] >= 4 && x[1] < 16
	}
	e, err := steer.New(sky, []string{"ra", "dec"}, oracle, steer.Options{
		Seed: cfg.Seed, MaxIters: 12, TargetF1: 0.97,
	})
	if err != nil {
		return err
	}
	stats, err := e.Run()
	if err != nil {
		return err
	}
	t := NewTable("iteration", "labeled tuples", "steering F1", "random-baseline F1", "regions")
	for _, s := range stats {
		randF1, err := steer.RandomBaseline(sky, []string{"ra", "dec"}, oracle, s.Labeled, cfg.Seed+int64(s.Iter))
		if err != nil {
			return err
		}
		t.Row(s.Iter, s.Labeled, s.F1, randF1, s.Regions)
	}
	t.Fprint(w)
	if q := e.Query(); q != nil {
		fmt.Fprintf(w, "\nextracted query: SELECT * FROM sky WHERE %s\n", q)
	}
	fmt.Fprintln(w, "shape check: boundary-exploiting steering reaches high F1 with a small labeled")
	fmt.Fprintln(w, "budget; random labeling at the same budget lags badly on small targets.")
	return nil
}

func runE18(w io.Writer, cfg Config) error {
	n := cfg.Scale(50_000, 10, 5_000)
	rng := rand.New(rand.NewSource(cfg.Seed))
	sky, err := workload.SkyCatalog(rng, n)
	if err != nil {
		return err
	}
	truth := expr.And(
		expr.Cmp("mag", expr.GE, storage.Float(16)),
		expr.Cmp("mag", expr.LT, storage.Float(19)),
		expr.Cmp("z", expr.GE, storage.Float(0.1)),
	)
	all, err := expr.Filter(sky, truth)
	if err != nil {
		return err
	}
	t := NewTable("examples", "method", "precision", "recall", "F1", "output rows")
	for _, k := range []int{5, 20, 100, len(all)} {
		ex := make([]int, 0, k)
		for i := 0; i < k && i < len(all); i++ {
			ex = append(ex, all[rng.Intn(len(all))])
		}
		d, err := qbe.DiscoverConjunctive(sky, ex, []string{"ra", "dec", "mag", "z"})
		if err != nil {
			return err
		}
		prec, rec, f1, err := qbe.Score(sky, d.Pred, truth)
		if err != nil {
			return err
		}
		label := fmt.Sprint(len(ex))
		if k == len(all) {
			label = fmt.Sprintf("%d(all)", len(ex))
		}
		t.Row(label, "conjunctive", prec, rec, f1, d.OutputSize)
	}
	// Disjunctive hidden query: two magnitude bands with a wide populated
	// gap between them, so a single conjunctive range must over-cover.
	disTruth := expr.Or(
		expr.And(expr.Cmp("mag", expr.GE, storage.Float(14)), expr.Cmp("mag", expr.LT, storage.Float(16))),
		expr.And(expr.Cmp("mag", expr.GE, storage.Float(21)), expr.Cmp("mag", expr.LT, storage.Float(23))),
	)
	disAll, err := expr.Filter(sky, disTruth)
	if err != nil {
		return err
	}
	if len(disAll) > 0 {
		dc, err := qbe.DiscoverConjunctive(sky, disAll, []string{"mag", "z"})
		if err != nil {
			return err
		}
		p1, r1, f1c, _ := qbe.Score(sky, dc.Pred, disTruth)
		t.Row(fmt.Sprintf("%d(all)", len(disAll)), "conjunctive(disjoint target)", p1, r1, f1c, dc.OutputSize)
		dt, err := qbe.DiscoverByTree(sky, disAll, []string{"mag", "z"},
			qbe.TreeOptions{Seed: cfg.Seed, MaxExamples: 2000})
		if err != nil {
			return err
		}
		p2, r2, f2, _ := qbe.Score(sky, dt.Pred, disTruth)
		t.Row(fmt.Sprintf("%d(all)", len(disAll)), "decision-tree(disjoint target)", p2, r2, f2, dt.OutputSize)
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\nshape check: accuracy approaches 1 as examples accumulate; on a disjunctive")
	fmt.Fprintln(w, "target the conjunctive discoverer over-generalizes while the tree recovers the union.")
	return nil
}

func runE19(w io.Writer, cfg Config) error {
	nSessions := cfg.Scale(400, 4, 80)
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Three analyst archetypes with characteristic 3-query scripts plus noise.
	archetypes := [][][]string{
		{
			{"select:amount", "where:region"},
			{"agg:SUM(amount)", "groupby:product", "where:region"},
			{"agg:AVG(amount)", "groupby:product", "orderby:product"},
		},
		{
			{"select:price", "where:symbol"},
			{"agg:MAX(price)", "groupby:symbol"},
			{"agg:AVG(price)", "groupby:symbol", "where:ts"},
		},
		{
			{"select:mag", "where:z"},
			{"agg:COUNT(*)", "groupby:class", "where:z"},
			{"agg:AVG(mag)", "groupby:class"},
		},
	}
	gen := func(n int) []recommend.Session {
		var out []recommend.Session
		for i := 0; i < n; i++ {
			arch := archetypes[rng.Intn(len(archetypes))]
			var s recommend.Session
			for _, q := range arch {
				qq := append([]string(nil), q...)
				if rng.Float64() < 0.2 { // session noise
					qq = append(qq, fmt.Sprintf("where:extra%d", rng.Intn(4)))
				}
				s = append(s, qq)
			}
			out = append(out, s)
		}
		return out
	}
	train := gen(nSessions)
	test := gen(nSessions / 4)
	r, err := recommend.New(train)
	if err != nil {
		return err
	}

	t := NewTable("method", "k", "hit-rate@k", "trials")
	for _, k := range []int{1, 3} {
		hits, popHits, trials := 0, 0, 0
		for _, s := range test {
			if len(s) < 2 {
				continue
			}
			prefix := s[:len(s)-1]
			truth := s[len(s)-1]
			sugs, err := r.SuggestNextQuery(prefix, k)
			if err != nil {
				return err
			}
			if recommend.HitAtK(sugs, truth) {
				hits++
			}
			// Popularity baseline: most common historical queries, context-free.
			pop, err := r.SuggestNextQuery(nil, k)
			if err != nil {
				return err
			}
			if recommend.HitAtK(pop, truth) {
				popHits++
			}
			trials++
		}
		t.Row("session-similarity", k, fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(trials)), trials)
		t.Row("popularity", k, fmt.Sprintf("%.1f%%", 100*float64(popHits)/float64(trials)), trials)
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\nshape check: conditioning on the session prefix routes each analyst to their")
	fmt.Fprintln(w, "archetype's next query; the context-free baseline can only guess the mode.")
	return nil
}

func runE20(w io.Writer, cfg Config) error {
	n := cfg.Scale(100_000, 20, 8_000)
	rng := rand.New(rand.NewSource(cfg.Seed))
	sales, err := workload.Sales(rng, n)
	if err != nil {
		return err
	}
	target := expr.Cmp("region", expr.EQ, storage.String_("east"))
	views := seedb.Candidates(
		[]string{"product", "quarter", "region"},
		[]string{"amount", "qty"},
		[]exec.AggFunc{exec.AggSum, exec.AggAvg, exec.AggCount},
	)
	t := NewTable("strategy", "rows scanned", "view updates", "views pruned", "latency", "top view")
	var sharedTop seedb.View
	for _, strat := range []seedb.Strategy{seedb.Exhaustive, seedb.SharedScan, seedb.Pruned} {
		var top []seedb.Scored
		var stats seedb.Stats
		lat := Timed(func() {
			top, stats, err = seedb.Recommend(sales, target, views, seedb.Options{K: 3, Strategy: strat})
		})
		if err != nil {
			return err
		}
		if strat == seedb.SharedScan {
			sharedTop = top[0].View
		}
		t.Row(strat.String(), stats.RowsScanned, stats.ViewUpdates, stats.ViewsPruned, lat, top[0].View.String())
	}
	t.Fprint(w)
	fmt.Fprintf(w, "\ncandidate views: %d; reference ranking top view: %s\n", len(views), sharedTop)
	fmt.Fprintln(w, "shape check: shared scan cuts row reads by the view count; pruning additionally")
	fmt.Fprintln(w, "drops hopeless views after a few phases while preserving the top view.")
	return nil
}

func runE21(w io.Writer, cfg Config) error {
	n := cfg.Scale(1_000_000, 20, 50_000)
	rng := rand.New(rand.NewSource(cfg.Seed))
	ys := workload.RandomWalk(rng, n, 1)
	t := NewTable("width(px)", "method", "points kept", "reduction", "pixel error")
	for _, width := range []int{100, 400, 1000} {
		idx, err := viz.M4(ys, width)
		if err != nil {
			return err
		}
		peM4, err := viz.PixelError(ys, idx, width, 60)
		if err != nil {
			return err
		}
		sys := viz.Systematic(n, len(idx))
		peSys, err := viz.PixelError(ys, sys, width, 60)
		if err != nil {
			return err
		}
		t.Row(width, "M4", len(idx), fmt.Sprintf("%.0fx", float64(n)/float64(len(idx))), peM4)
		t.Row(width, "systematic", len(sys), fmt.Sprintf("%.0fx", float64(n)/float64(len(sys))), peSys)
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\nshape check: M4 keeps <=4 points per pixel column with zero pixel error —")
	fmt.Fprintln(w, "orders of magnitude fewer points; naive sampling at the same budget smears spikes.")
	return nil
}

func runE22(w io.Writer, cfg Config) error {
	perGroup := cfg.Scale(50_000, 20, 5_000)
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := NewTable("group separation", "samples taken", "full-data size", "ordering correct", "resolved")
	for _, sep := range []float64{5, 1, 0.1} {
		groups := make([][]float64, 6)
		for g := range groups {
			groups[g] = make([]float64, perGroup)
			for i := range groups[g] {
				groups[g][i] = float64(g)*sep + rng.NormFloat64()*3
			}
		}
		res, err := viz.OrderSample(groups, 50, cfg.Seed)
		if err != nil {
			return err
		}
		taken := 0
		for _, k := range res.Taken {
			taken += k
		}
		t.Row(fmt.Sprintf("%.2g sigma-units", sep), taken, 6*perGroup,
			viz.TrueOrderAgrees(groups, res), res.Resolved)
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\nshape check: well-separated bars resolve their visual order from a tiny sample;")
	fmt.Fprintln(w, "the sampler spends its budget only on the ambiguous adjacent pairs.")
	return nil
}

func runE23(w io.Writer, cfg Config) error {
	n := cfg.Scale(20_000, 10, 2_000)
	rng := rand.New(rand.NewSource(cfg.Seed))
	sales, err := workload.Sales(rng, n)
	if err != nil {
		return err
	}
	cases := []struct {
		name  string
		trace gesture.Trace
		sql   string
	}{
		{
			"tap+swipe",
			gesture.Trace{
				{Kind: gesture.Tap, Column: "product"},
				{Kind: gesture.Tap, Column: "amount"},
				{Kind: gesture.SwipeRange, Column: "amount", Lo: 100, Hi: 200},
			},
			"SELECT product, amount FROM sales WHERE amount >= 100 AND amount < 200",
		},
		{
			"hold+pinch",
			gesture.Trace{
				{Kind: gesture.Hold, Column: "region"},
				{Kind: gesture.Pinch, Column: "amount", Agg: exec.AggAvg},
				{Kind: gesture.FlickDown, Column: "region"},
			},
			"SELECT region, avg(amount) FROM sales GROUP BY region ORDER BY region DESC",
		},
		{
			"drill-style",
			gesture.Trace{
				{Kind: gesture.Hold, Column: "quarter"},
				{Kind: gesture.SwipeRange, Column: "qty", Lo: 3, Hi: 8},
				{Kind: gesture.Pinch, Column: "amount", Agg: exec.AggSum},
			},
			"SELECT quarter, sum(amount) FROM sales WHERE qty >= 3 AND qty < 8 GROUP BY quarter",
		},
	}
	t := NewTable("trace", "gestures", "synthesized query", "rows", "matches intended SQL")
	for _, c := range cases {
		q, err := gesture.Synthesize(sales.Schema(), c.trace)
		if err != nil {
			return err
		}
		res, err := exec.Execute(sales, q)
		if err != nil {
			return err
		}
		// Execute the intended SQL and compare result shapes + checksums.
		intended, err := executeSQL(sales, c.sql)
		if err != nil {
			return err
		}
		match := tablesEqual(res, intended)
		t.Row(c.name, len(c.trace), q.String(), res.NumRows(), match)
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\nshape check: every scripted gesture trace compiles to the intended relational")
	fmt.Fprintln(w, "query and returns identical results.")
	return nil
}

func executeSQL(t *storage.Table, sql string) (*storage.Table, error) {
	st, err := parseSQL(sql)
	if err != nil {
		return nil, err
	}
	return exec.Execute(t, st)
}

func tablesEqual(a, b *storage.Table) bool {
	if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
		return false
	}
	for r := 0; r < a.NumRows(); r++ {
		for c := 0; c < a.NumCols(); c++ {
			av, bv := a.Column(c).Value(r), b.Column(c).Value(r)
			if av.Compare(bv) != 0 {
				return false
			}
		}
	}
	return true
}

// parseSQL adapts sqlparse for intra-harness use.
func parseSQL(sql string) (exec.Query, error) {
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return exec.Query{}, err
	}
	return st.Query, nil
}
