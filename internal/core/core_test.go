package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dex/internal/storage"
	"dex/internal/workload"
)

func mkEngine(t *testing.T, rows int) *Engine {
	t.Helper()
	e := New(Options{Seed: 1})
	rng := rand.New(rand.NewSource(2))
	sales, err := workload.Sales(rng, rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register(sales); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestExactSQL(t *testing.T) {
	e := mkEngine(t, 1000)
	res, err := e.SQL("SELECT region, sum(amount) FROM sales GROUP BY region ORDER BY region", Exact)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 4 {
		t.Errorf("groups = %d", res.NumRows())
	}
	if _, err := e.SQL("SELECT x FROM nope", Exact); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("missing table err = %v", err)
	}
	if _, err := e.SQL("garbage", Exact); err == nil {
		t.Error("parse error expected")
	}
}

func TestStarExpansion(t *testing.T) {
	e := mkEngine(t, 50)
	res, err := e.SQL("SELECT * FROM sales LIMIT 5", Exact)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCols() != 5 || res.NumRows() != 5 {
		t.Errorf("dims = %dx%d", res.NumRows(), res.NumCols())
	}
}

func TestCrackedMatchesExact(t *testing.T) {
	e := mkEngine(t, 5000)
	q := "SELECT count(*) FROM sales WHERE qty >= 3 AND qty < 7"
	exact, err := e.SQL(q, Exact)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		cracked, err := e.SQL(q, Cracked)
		if err != nil {
			t.Fatal(err)
		}
		if cracked.Row(0)[0].I != exact.Row(0)[0].I {
			t.Fatalf("cracked count %v != exact %v", cracked.Row(0)[0], exact.Row(0)[0])
		}
	}
	pieces, cracks, ok := e.CrackStats("sales", "qty")
	if !ok || pieces < 2 || cracks < 1 {
		t.Errorf("crack stats = %d,%d,%v", pieces, cracks, ok)
	}
}

func TestCrackedFallbackOnNonRange(t *testing.T) {
	e := mkEngine(t, 500)
	q := "SELECT count(*) FROM sales WHERE region = 'east'"
	exact, _ := e.SQL(q, Exact)
	cracked, err := e.SQL(q, Cracked)
	if err != nil {
		t.Fatal(err)
	}
	if cracked.Row(0)[0].I != exact.Row(0)[0].I {
		t.Error("fallback mismatch")
	}
	if _, _, ok := e.CrackStats("sales", "region"); ok {
		t.Error("no index should exist for a text column")
	}
}

func TestApproxCloseToExact(t *testing.T) {
	e := mkEngine(t, 50000)
	exact, err := e.SQL("SELECT avg(amount) FROM sales", Exact)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := e.SQL("SELECT avg(amount) FROM sales", Approx)
	if err != nil {
		t.Fatal(err)
	}
	est := approx.Row(0)[0].F
	truth := exact.Row(0)[0].F
	if rel := math.Abs(est-truth) / truth; rel > 0.05 {
		t.Errorf("approx rel err = %.4f", rel)
	}
	// Result table carries CI and sample size.
	if approx.Schema().Index("ci95") < 0 || approx.Schema().Index("sample_n") < 0 {
		t.Errorf("approx schema = %v", approx.Schema())
	}
}

func TestApproxRejectsUnsupportedShape(t *testing.T) {
	e := mkEngine(t, 100)
	bad := []string{
		"SELECT amount FROM sales",
		"SELECT sum(amount), avg(amount) FROM sales",
		"SELECT region, product, sum(amount) FROM sales GROUP BY region, product",
	}
	for _, q := range bad {
		if _, err := e.SQL(q, Approx); !errors.Is(err, ErrNotApprox) {
			t.Errorf("%q err = %v", q, err)
		}
	}
}

func TestOnlineMatchesShape(t *testing.T) {
	e := mkEngine(t, 20000)
	res, err := e.SQL("SELECT region, avg(amount) FROM sales GROUP BY region", Online)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 4 {
		t.Errorf("online groups = %d", res.NumRows())
	}
	exact, _ := e.SQL("SELECT region, avg(amount) FROM sales GROUP BY region ORDER BY region", Exact)
	for i := 0; i < 4; i++ {
		est := res.Row(i)
		truth := exact.Row(i)
		if est[0].S != truth[0].S {
			t.Fatalf("group order: %v vs %v", est[0], truth[0])
		}
		if rel := math.Abs(est[1].F-truth[1].F) / truth[1].F; rel > 0.05 {
			t.Errorf("online %s rel err %.4f", est[0].S, rel)
		}
	}
}

func TestBadMode(t *testing.T) {
	e := mkEngine(t, 10)
	if _, err := e.SQL("SELECT qty FROM sales", Mode(99)); !errors.Is(err, ErrBadMode) {
		t.Errorf("err = %v", err)
	}
	if Exact.String() != "exact" || Cracked.String() != "cracked" ||
		Approx.String() != "approx" || Online.String() != "online" {
		t.Error("mode names")
	}
}

func TestInSituAttach(t *testing.T) {
	e := mkEngine(t, 10)
	rng := rand.New(rand.NewSource(3))
	ticks, err := workload.Ticks(rng, 300)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ticks.csv")
	if err := storage.WriteCSVFile(ticks, path); err != nil {
		t.Fatal(err)
	}
	if err := e.AttachCSV("ticks", path, ticks.Schema()); err != nil {
		t.Fatal(err)
	}
	res, err := e.SQL("SELECT symbol, count(*) FROM ticks GROUP BY symbol", Exact)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for i := 0; i < res.NumRows(); i++ {
		total += res.Row(i)[1].I
	}
	if total != 300 {
		t.Errorf("in-situ total = %d", total)
	}
	names := e.Tables()
	found := false
	for _, n := range names {
		if n == "ticks (in-situ)" {
			found = true
		}
	}
	if !found {
		t.Errorf("tables = %v", names)
	}
}

func TestSessionHistoryAndRecommendation(t *testing.T) {
	e := mkEngine(t, 2000)
	// Archive a few sessions with a repeating pattern.
	for i := 0; i < 5; i++ {
		s := e.NewSession()
		if _, err := s.Query("SELECT count(*) FROM sales WHERE qty > 3", Exact); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Query("SELECT region, sum(amount) FROM sales GROUP BY region", Exact); err != nil {
			t.Fatal(err)
		}
		s.End()
	}
	// A new session issuing the first query should get the second
	// recommended.
	s := e.NewSession()
	if _, err := s.Query("SELECT count(*) FROM sales WHERE qty > 3", Exact); err != nil {
		t.Fatal(err)
	}
	sugs, err := s.SuggestNext(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sugs) != 1 {
		t.Fatalf("suggestions = %v", sugs)
	}
	wantFrag := "groupby:region"
	found := false
	for _, f := range sugs[0].Fragments {
		if f == wantFrag {
			found = true
		}
	}
	if !found {
		t.Errorf("top suggestion = %v", sugs[0])
	}
	if s.Len() != 1 {
		t.Errorf("session len = %d", s.Len())
	}
}

func TestSuggestNextNoHistory(t *testing.T) {
	e := mkEngine(t, 10)
	s := e.NewSession()
	sugs, err := s.SuggestNext(3)
	if err != nil || sugs != nil {
		t.Errorf("fresh engine suggestions = %v, %v", sugs, err)
	}
	s.End() // empty end is a no-op
}

func TestCrackedFloatColumn(t *testing.T) {
	e := mkEngine(t, 5000)
	q := "SELECT count(*) FROM sales WHERE amount >= 100 AND amount < 200"
	exact, err := e.SQL(q, Exact)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		cracked, err := e.SQL(q, Cracked)
		if err != nil {
			t.Fatal(err)
		}
		if cracked.Row(0)[0].I != exact.Row(0)[0].I {
			t.Fatalf("float cracked %v != exact %v", cracked.Row(0)[0], exact.Row(0)[0])
		}
	}
	if pieces, _, ok := e.CrackStats("sales", "amount"); !ok || pieces < 2 {
		t.Errorf("float crack stats = %d,%v", pieces, ok)
	}
}

func TestCrackedBoundaryOperators(t *testing.T) {
	e := mkEngine(t, 3000)
	// Mixed operators and fractional constants over the INT column.
	for _, q := range []string{
		"SELECT count(*) FROM sales WHERE qty > 2 AND qty <= 7",
		"SELECT count(*) FROM sales WHERE qty >= 2.5",
		"SELECT count(*) FROM sales WHERE qty = 4",
		"SELECT count(*) FROM sales WHERE amount > 110.5 AND amount <= 130.25",
		"SELECT count(*) FROM sales WHERE amount = 120.5",
	} {
		exact, err := e.SQL(q, Exact)
		if err != nil {
			t.Fatal(err)
		}
		cracked, err := e.SQL(q, Cracked)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if cracked.Row(0)[0].I != exact.Row(0)[0].I {
			t.Errorf("%s: cracked %v != exact %v", q, cracked.Row(0)[0], exact.Row(0)[0])
		}
	}
}

func TestProfile(t *testing.T) {
	e := mkEngine(t, 3000)
	p, err := e.Profile("sales")
	if err != nil {
		t.Fatal(err)
	}
	if p.Rows != 3000 || len(p.Columns) != 5 {
		t.Fatalf("profile dims = %d rows, %d cols", p.Rows, len(p.Columns))
	}
	byName := map[string]ColumnProfile{}
	for _, c := range p.Columns {
		byName[c.Name] = c
	}
	reg := byName["region"]
	if reg.Distinct != 4 || len(reg.Top) == 0 || reg.Hist != nil {
		t.Errorf("region profile = %+v", reg)
	}
	amt := byName["amount"]
	if amt.Hist == nil || amt.Min >= amt.Max || amt.StdDev <= 0 {
		t.Errorf("amount profile = %+v", amt)
	}
	// amount is driven by product (base price per product), so product
	// should be the top segmentation for it.
	segs := p.Segmentations["amount"]
	if len(segs) == 0 || segs[0].Dim != "product" {
		t.Errorf("amount segmentations = %+v", segs)
	}
	out := p.Format()
	if !strings.Contains(out, "suggested segmentations") || !strings.Contains(out, "region") {
		t.Errorf("format:\n%s", out)
	}
	if _, err := e.Profile("nope"); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("missing table err = %v", err)
	}
}

func TestSQLJoin(t *testing.T) {
	e := New(Options{})
	orders, _ := storage.NewTable("orders", storage.Schema{
		{Name: "oid", Type: storage.TInt},
		{Name: "cust", Type: storage.TInt},
		{Name: "amt", Type: storage.TFloat},
	})
	for _, r := range [][3]int64{{1, 10, 100}, {2, 20, 200}, {3, 10, 300}, {4, 99, 400}} {
		_ = orders.AppendRow(storage.Int(r[0]), storage.Int(r[1]), storage.Float(float64(r[2])))
	}
	custs, _ := storage.NewTable("custs", storage.Schema{
		{Name: "cid", Type: storage.TInt},
		{Name: "name", Type: storage.TString},
	})
	_ = custs.AppendRow(storage.Int(10), storage.String_("ann"))
	_ = custs.AppendRow(storage.Int(20), storage.String_("bob"))
	if err := e.Register(orders); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(custs); err != nil {
		t.Fatal(err)
	}
	res, err := e.SQL("SELECT name, sum(amt) FROM orders JOIN custs ON cust = cid GROUP BY name ORDER BY name", Exact)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d\n%s", res.NumRows(), res.Format(10))
	}
	if res.Row(0)[0].S != "ann" || res.Row(0)[1].F != 400 {
		t.Errorf("ann row = %v", res.Row(0))
	}
	if res.Row(1)[0].S != "bob" || res.Row(1)[1].F != 200 {
		t.Errorf("bob row = %v", res.Row(1))
	}
	// Star expansion over a join.
	star, err := e.SQL("SELECT * FROM orders JOIN custs ON cust = cid ORDER BY oid", Exact)
	if err != nil {
		t.Fatal(err)
	}
	if star.NumCols() != 5 || star.NumRows() != 3 {
		t.Errorf("star join dims = %dx%d", star.NumRows(), star.NumCols())
	}
	// Errors: missing join table and key.
	if _, err := e.SQL("SELECT * FROM orders JOIN nope ON cust = cid", Exact); err == nil {
		t.Error("missing join table should error")
	}
	if _, err := e.SQL("SELECT * FROM orders JOIN custs ON bogus = cid", Exact); err == nil {
		t.Error("missing join key should error")
	}
}

func TestEngineConcurrentQueries(t *testing.T) {
	e := mkEngine(t, 20000)
	queries := []struct {
		sql  string
		mode Mode
	}{
		{"SELECT count(*) FROM sales WHERE qty >= 2 AND qty < 6", Cracked},
		{"SELECT count(*) FROM sales WHERE amount >= 80 AND amount < 120", Cracked},
		{"SELECT region, sum(amount) FROM sales GROUP BY region", Exact},
		{"SELECT avg(amount) FROM sales", Approx},
	}
	// Prime the expected answers single-threaded (Exact for all shapes).
	want := make([]int64, len(queries))
	for i, q := range queries {
		res, err := e.SQL(q.sql, Exact)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Row(0)[0].AsInt()
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 10; rep++ {
				qi := (g + rep) % len(queries)
				q := queries[qi]
				res, err := e.SQL(q.sql, q.mode)
				if err != nil {
					errs <- err
					return
				}
				// Count queries must match exactly under any mode but Approx.
				if q.mode == Cracked && res.Row(0)[0].AsInt() != want[qi] {
					errs <- fmt.Errorf("concurrent cracked result mismatch: %d != %d",
						res.Row(0)[0].AsInt(), want[qi])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestCrackedExtremeLiteralFallsBack(t *testing.T) {
	e := mkEngine(t, 500)
	// A constant beyond int64 range must not flip the range; the engine
	// falls back to exact execution.
	q := "SELECT count(*) FROM sales WHERE qty <= 99999999999999999999"
	exact, err := e.SQL(q, Exact)
	if err != nil {
		t.Fatal(err)
	}
	cracked, err := e.SQL(q, Cracked)
	if err != nil {
		t.Fatal(err)
	}
	if cracked.Row(0)[0].I != exact.Row(0)[0].I {
		t.Errorf("extreme literal: cracked %v != exact %v", cracked.Row(0)[0], exact.Row(0)[0])
	}
}

func TestInSituCrackedMode(t *testing.T) {
	e := New(Options{Seed: 9})
	rng := rand.New(rand.NewSource(10))
	ticks, err := workload.Ticks(rng, 2000)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.csv")
	if err := storage.WriteCSVFile(ticks, path); err != nil {
		t.Fatal(err)
	}
	if err := e.AttachCSV("ticks", path, ticks.Schema()); err != nil {
		t.Fatal(err)
	}
	// Cracked range queries against an in-situ table: the first query
	// materializes the column from the raw file and cracks it; repeats
	// must agree with exact execution.
	q := "SELECT count(*) FROM ticks WHERE volume >= 50 AND volume < 150"
	exact, err := e.SQL(q, Exact)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		cracked, err := e.SQL(q, Cracked)
		if err != nil {
			t.Fatal(err)
		}
		if cracked.Row(0)[0].I != exact.Row(0)[0].I {
			t.Fatalf("in-situ cracked %v != exact %v", cracked.Row(0)[0], exact.Row(0)[0])
		}
	}
	if _, _, ok := e.CrackStats("ticks", "volume"); !ok {
		t.Error("no crack index built for in-situ table")
	}
	// And a float column through the same path.
	qf := "SELECT count(*) FROM ticks WHERE price >= 100 AND price < 200"
	exactF, _ := e.SQL(qf, Exact)
	crackedF, err := e.SQL(qf, Cracked)
	if err != nil {
		t.Fatal(err)
	}
	if crackedF.Row(0)[0].I != exactF.Row(0)[0].I {
		t.Error("in-situ float cracked mismatch")
	}
}
