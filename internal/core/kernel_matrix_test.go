package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"dex/internal/exec"
	"dex/internal/storage"
	"dex/internal/workload"
)

// mkMatrixEngine is mkParEngine with the full option surface: parallel
// execution plus the kernels and encode toggles.
func mkMatrixEngine(t *testing.T, rows int, kernels, encode bool) *Engine {
	t.Helper()
	e := New(Options{
		Seed:   1,
		Encode: encode,
		Exec:   exec.ExecOptions{Parallelism: 4, MorselSize: 512, ZoneMap: true, Kernels: kernels},
	})
	rng := rand.New(rand.NewSource(2))
	sales, err := workload.Sales(rng, rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register(sales); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestEngineKernelEncodeMatrixOracle extends the concurrent parity
// harness to the full matrix: engines with kernels on/off × encodings
// on/off answer the same query mix — exact and cracked modes, under
// concurrency (run with -race) — and every answer must match the plain
// sequential engine. With Encode on, the sales dimension columns are
// dictionary-coded, so string-equality predicates go through code-space
// evaluation end to end.
func TestEngineKernelEncodeMatrixOracle(t *testing.T) {
	const rows = 20_000
	ref := mkParEngine(t, rows, exec.ExecOptions{Parallelism: 1})
	queries := []struct {
		sql  string
		mode Mode
	}{
		{"SELECT count(*) FROM sales WHERE qty >= 3 AND qty < 7", Cracked},
		{"SELECT count(*) FROM sales WHERE qty >= 3 AND qty < 7", Exact},
		{"SELECT region, sum(amount) FROM sales WHERE qty >= 2 AND qty < 8 GROUP BY region ORDER BY region", Cracked},
		{"SELECT count(*) FROM sales WHERE region = 'east'", Exact},
		{"SELECT quarter, count(*) FROM sales WHERE product <> 'p00' GROUP BY quarter ORDER BY quarter", Exact},
		{"SELECT sum(amount), avg(amount), min(amount), max(amount) FROM sales WHERE amount >= 60 AND amount < 120", Exact},
		{"SELECT amount, qty FROM sales WHERE amount >= 100 ORDER BY amount DESC LIMIT 20", Cracked},
		{"SELECT region, quarter, count(*) FROM sales WHERE qty > 4 GROUP BY region, quarter ORDER BY region, quarter", Exact},
	}
	oracle := make([]*storage.Table, len(queries))
	for i, q := range queries {
		res, err := ref.SQL(q.sql, Exact)
		if err != nil {
			t.Fatal(err)
		}
		oracle[i] = res
	}
	for _, kernels := range []bool{false, true} {
		for _, encode := range []bool{false, true} {
			name := fmt.Sprintf("kernels=%v/encode=%v", kernels, encode)
			t.Run(name, func(t *testing.T) {
				e := mkMatrixEngine(t, rows, kernels, encode)
				const goroutines = 6
				var wg sync.WaitGroup
				errs := make(chan error, goroutines)
				for g := 0; g < goroutines; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						for i := 0; i < 2*len(queries); i++ {
							qi := (g + i) % len(queries)
							res, err := e.SQL(queries[qi].sql, queries[qi].mode)
							if err != nil {
								errs <- fmt.Errorf("%s: %v", queries[qi].sql, err)
								return
							}
							if err := tablesMatch(oracle[qi], res); err != nil {
								errs <- fmt.Errorf("%s: %v", queries[qi].sql, err)
								return
							}
						}
					}(g)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Error(err)
				}
			})
		}
	}
}

// TestCrackedOverRLEColumn pins the encoded-column cracking seam: a
// run-length-coded int column must still build an adaptive index (the
// engine decodes it once) and answer range probes exactly.
func TestCrackedOverRLEColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 6000
	bucket := make([]int64, n)
	v := int64(0)
	for i := range bucket {
		if rng.Intn(5) == 0 {
			v = rng.Int63n(50)
		}
		bucket[i] = v
	}
	amounts := make([]float64, n)
	for i := range amounts {
		amounts[i] = rng.Float64() * 200
	}
	tab, err := storage.FromColumns("clustered", storage.Schema{
		{Name: "bucket", Type: storage.TInt},
		{Name: "amount", Type: storage.TFloat},
	}, []storage.Column{storage.EncodeRLE(bucket), &storage.FloatColumn{V: amounts}})
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Seed: 1, Exec: exec.ExecOptions{Parallelism: 4, MorselSize: 512, Kernels: true}})
	if err := e.Register(tab); err != nil {
		t.Fatal(err)
	}
	if _, ok := mustColumn(t, e, "clustered", "bucket").(*storage.RLEIntColumn); !ok {
		t.Fatal("bucket column should still be RLE-coded after registration")
	}
	for i := 0; i < 8; i++ {
		lo := rng.Int63n(40)
		hi := lo + 1 + rng.Int63n(10)
		sql := fmt.Sprintf("SELECT count(*) FROM clustered WHERE bucket >= %d AND bucket < %d", lo, hi)
		want, err := e.SQL(sql, Exact)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.SQL(sql, Cracked)
		if err != nil {
			t.Fatalf("%s (cracked): %v", sql, err)
		}
		if want.Row(0)[0].I != got.Row(0)[0].I {
			t.Fatalf("%s: cracked %d != exact %d", sql, got.Row(0)[0].I, want.Row(0)[0].I)
		}
	}
	if pieces, cracks, ok := e.CrackStats("clustered", "bucket"); !ok || pieces < 2 || cracks < 1 {
		t.Fatalf("crack stats = %d,%d,%v — index never built over the RLE column", pieces, cracks, ok)
	}
}

func mustColumn(t *testing.T, e *Engine, table, col string) storage.Column {
	t.Helper()
	tab, err := e.cat.Get(table)
	if err != nil {
		t.Fatal(err)
	}
	c, err := tab.ColumnByName(col)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
