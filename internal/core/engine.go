// Package core is the engine facade: it wires the storage catalog, the
// adaptive cracking indexes, the AQP sample catalog, online aggregation and
// in-situ raw tables behind one query entry point with selectable execution
// modes — the "exploration-ready database system" the tutorial's future
// section calls for, in miniature.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dex/internal/aqp"
	"dex/internal/catalog"
	"dex/internal/crack"
	"dex/internal/exec"
	"dex/internal/expr"
	"dex/internal/onlineagg"
	"dex/internal/rawload"
	"dex/internal/recommend"
	"dex/internal/sqlparse"
	"dex/internal/storage"
	"dex/internal/trace"
)

// Package-level sentinel errors.
var (
	ErrBadMode     = errors.New("core: unknown execution mode")
	ErrNotApprox   = errors.New("core: query shape not supported by approximate modes (need exactly one aggregate, at most one GROUP BY column)")
	ErrNoSuchTable = errors.New("core: no such table")
)

// Mode selects how a query executes.
type Mode uint8

// Execution modes.
const (
	// Exact executes the query fully.
	Exact Mode = iota
	// Cracked routes eligible range predicates through the adaptive
	// cracker index, building it as a side effect (adaptive indexing).
	Cracked
	// Approx answers aggregate queries from pre-built samples with
	// confidence intervals (AQP).
	Approx
	// Online runs online aggregation until the relative CI target is met.
	Online
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Exact:
		return "exact"
	case Cracked:
		return "cracked"
	case Approx:
		return "approx"
	case Online:
		return "online"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Options configures an Engine.
type Options struct {
	Seed int64
	// SampleFracs are the uniform sample fractions built lazily per table
	// for Approx mode. Default {0.01, 0.1}.
	SampleFracs []float64
	// ApproxRelErr is the default relative-error bound for Approx mode.
	// Default 0.05.
	ApproxRelErr float64
	// OnlineRelCI is the stopping criterion for Online mode. Default 0.01.
	OnlineRelCI float64
	// OnlineBatch is the online-aggregation batch size. Default 4096.
	OnlineBatch int
	// CrackOptions configures the adaptive indexes.
	CrackOptions crack.Options
	// Exec tunes the morsel-driven parallel operators used by the Exact
	// mode, the post-join query, and the post-gather stage of Cracked mode
	// (the crack probe itself synchronizes inside the index; everything
	// after the gather is ordinary parallel execution). The approximate
	// modes — AQP, online aggregation — keep their sequential semantics:
	// the sampling modes depend on a deterministic row visit order.
	Exec exec.ExecOptions
	// Degrade enables graceful degradation: an Exact or Cracked query that
	// exceeds its deadline returns a sampled approximate answer tagged
	// Degraded instead of a DeadlineExceeded error, when its shape allows
	// it (exactly one aggregate, at most one GROUP BY column — the same
	// shapes Approx mode serves). Client cancellation never degrades: a
	// disconnected client is not waiting for any answer.
	Degrade bool
	// DegradeGrace is the time budget for computing the approximate
	// fallback answer after the exact deadline fired (default 2s).
	DegradeGrace time.Duration
	// Encode enables compressed column encodings at registration: columns
	// the heuristics select (low-cardinality strings, clustered ints) are
	// dictionary- or run-length-coded via storage.EncodeTable, unlocking
	// the code-space and per-run predicate fast paths. Encoding is an
	// optimization only — a failed encode keeps the plain table and the
	// load still succeeds.
	Encode bool
}

func (o *Options) fill() {
	if len(o.SampleFracs) == 0 {
		o.SampleFracs = []float64{0.01, 0.1}
	}
	if o.ApproxRelErr <= 0 {
		o.ApproxRelErr = 0.05
	}
	if o.OnlineRelCI <= 0 {
		o.OnlineRelCI = 0.01
	}
	if o.OnlineBatch <= 0 {
		o.OnlineBatch = 4096
	}
	if o.DegradeGrace <= 0 {
		o.DegradeGrace = 2 * time.Second
	}
}

// Engine is the exploration engine. Cracked-mode probes need no
// engine-level lock: each crack.Index carries its own RWMutex, probes that
// align with existing piece boundaries share a read lock, and only probes
// that must reorganize the column escalate to the write lock — so queries
// against a converged index (or distinct indexes) run fully in parallel.
type Engine struct {
	mu       sync.Mutex
	opt      Options
	cat      *catalog.Catalog
	rng      *rand.Rand
	cracked  map[string]map[string]*crack.IntIndex
	crackedF map[string]map[string]*crack.Index[float64]
	samples  map[string]*aqp.Catalog
	raw      map[string]*rawload.RawTable
	// pastSessions archives ended sessions for query recommendation.
	pastSessions []recommend.Session
}

// New creates an engine.
func New(opt Options) *Engine {
	opt.fill()
	// The engine always counts scanned rows: the service layer reads the
	// counter live to tell a progressing query from a stalled one, and the
	// per-morsel atomic add is noise against the scan itself. A caller that
	// supplies its own counter keeps it.
	if opt.Exec.Scanned == nil {
		opt.Exec.Scanned = new(atomic.Int64)
	}
	if opt.Exec.ZoneSkipped == nil {
		opt.Exec.ZoneSkipped = new(atomic.Int64)
	}
	if opt.Exec.AggKernelHits == nil {
		opt.Exec.AggKernelHits = new(atomic.Int64)
	}
	if opt.Exec.AggKernelFallbacks == nil {
		opt.Exec.AggKernelFallbacks = new(atomic.Int64)
	}
	return &Engine{
		opt:      opt,
		cat:      catalog.New(),
		rng:      rand.New(rand.NewSource(opt.Seed)),
		cracked:  map[string]map[string]*crack.IntIndex{},
		crackedF: map[string]map[string]*crack.Index[float64]{},
		samples:  map[string]*aqp.Catalog{},
		raw:      map[string]*rawload.RawTable{},
	}
}

// Register adds an in-memory table, applying the column-encoding
// heuristics first when Options.Encode is set. An encode error (for
// example one injected at the storage/segment-encode seam) falls back to
// the plain representation: encoding never fails a load.
func (e *Engine) Register(t *storage.Table) error {
	return e.cat.Register(e.maybeEncode(t))
}

func (e *Engine) maybeEncode(t *storage.Table) *storage.Table {
	if !e.opt.Encode {
		return t
	}
	enc, _, err := storage.EncodeTable(t, storage.EncodeOptions{})
	if err != nil {
		return t
	}
	return enc
}

// Replace registers a table, overwriting any previous registration under
// the same name and dropping derived state (crack indexes, samples) built
// from the old data. Shard workers use it when a re-partition reassigns
// their slice of a table.
func (e *Engine) Replace(t *storage.Table) {
	e.cat.Replace(e.maybeEncode(t))
	e.mu.Lock()
	delete(e.cracked, t.Name())
	delete(e.crackedF, t.Name())
	delete(e.samples, t.Name())
	e.mu.Unlock()
}

// RowsScanned returns the engine's cumulative scanned-row count: rows
// visited by predicate evaluation and aggregate accumulation across all
// queries so far. It advances live, morsel by morsel, while queries run —
// the observability signal /admin/stats exposes and the cancellation tests
// watch stop.
func (e *Engine) RowsScanned() int64 {
	return e.opt.Exec.Scanned.Load()
}

// ZoneSkipped returns the engine's cumulative zone-map skip count: morsels
// the pruner proved disjoint from a range predicate and never scanned.
// Always 0 with zone maps off.
func (e *Engine) ZoneSkipped() int64 {
	return e.opt.Exec.ZoneSkipped.Load()
}

// AggKernelHits returns the engine's cumulative count of aggregate queries
// answered by the typed accumulation kernels. Always 0 with agg kernels
// off.
func (e *Engine) AggKernelHits() int64 {
	return e.opt.Exec.AggKernelHits.Load()
}

// AggKernelFallbacks returns the cumulative count of aggregate queries
// that requested agg kernels but fell back to generic accumulation
// (multi-column groups, wide dictionaries, string inputs).
func (e *Engine) AggKernelFallbacks() int64 {
	return e.opt.Exec.AggKernelFallbacks.Load()
}

// TableRows reports the row count of a registered in-memory table, or ok
// false when no such table exists. Shard workers answer the coordinator's
// Stats probe with it, so the healer can tell a worker that still holds
// its partition from a blank restart.
func (e *Engine) TableRows(name string) (int64, bool) {
	t, err := e.cat.Get(name)
	if err != nil {
		return 0, false
	}
	return int64(t.NumRows()), true
}

// ParseMode parses a mode name (exact|cracked|approx|online).
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(s) {
	case "", "exact":
		return Exact, nil
	case "cracked":
		return Cracked, nil
	case "approx":
		return Approx, nil
	case "online":
		return Online, nil
	default:
		return Exact, fmt.Errorf("unknown mode %q: %w", s, ErrBadMode)
	}
}

// LoadCSV loads a CSV file eagerly into the catalog.
func (e *Engine) LoadCSV(name, path string) error {
	t, err := storage.ReadCSVFile(name, path)
	if err != nil {
		return err
	}
	return e.Register(t)
}

// AttachCSV registers a CSV file for in-situ (NoDB-style) querying: no
// bytes are read until a query touches the table, and only touched columns
// are ever parsed.
func (e *Engine) AttachCSV(name, path string, schema storage.Schema) error {
	r, err := rawload.Open(name, path, schema)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.raw[name] = r
	return nil
}

// Tables lists registered table names (in-memory and in-situ).
func (e *Engine) Tables() []string {
	names := e.cat.Names()
	e.mu.Lock()
	defer e.mu.Unlock()
	for n := range e.raw {
		names = append(names, n+" (in-situ)")
	}
	return names
}

// table resolves a name to an in-memory table, materializing the needed
// columns of an in-situ table when necessary. The materialization — the
// only storage-layer work here that can dominate a query — gets its own
// trace span; catalog hits are sub-microsecond and stay unspanned.
func (e *Engine) table(ctx context.Context, name string, q exec.Query) (*storage.Table, error) {
	if t, err := e.cat.Get(name); err == nil {
		return t, nil
	}
	e.mu.Lock()
	r, ok := e.raw[name]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%q: %w", name, ErrNoSuchTable)
	}
	cols := columnsOf(q, r.Schema())
	sp := trace.FromContext(ctx).Child("materialize")
	sp.SetStr("table", name)
	sp.SetInt("columns", int64(len(cols)))
	t, err := r.Materialize(cols...)
	if err == nil {
		sp.SetInt("rows", int64(t.NumRows()))
	}
	sp.End()
	return t, err
}

// schemaOf returns the schema for star expansion.
func (e *Engine) schemaOf(name string) (storage.Schema, error) {
	if t, err := e.cat.Get(name); err == nil {
		return t.Schema(), nil
	}
	e.mu.Lock()
	r, ok := e.raw[name]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%q: %w", name, ErrNoSuchTable)
	}
	return r.Schema(), nil
}

func columnsOf(q exec.Query, schema storage.Schema) []string {
	seen := map[string]bool{}
	var out []string
	add := func(c string) {
		if c == "" || c == "*" || seen[c] || schema.Index(c) < 0 {
			return
		}
		seen[c] = true
		out = append(out, c)
	}
	for _, s := range q.Select {
		add(s.Col)
	}
	if q.Where != nil {
		for _, c := range q.Where.Columns() {
			add(c)
		}
	}
	for _, g := range q.GroupBy {
		add(g)
	}
	for _, o := range q.OrderBy {
		add(o.Col)
	}
	if len(out) == 0 && len(schema) > 0 {
		out = append(out, schema[0].Name)
	}
	return out
}

// SQL parses and executes a statement under the given mode. Joins are
// executed eagerly (hash join), then the rest of the query runs against the
// joined table in Exact mode; the adaptive/approximate modes apply to
// single-table statements.
func (e *Engine) SQL(sql string, mode Mode) (*storage.Table, error) {
	return e.SQLContext(context.Background(), sql, mode)
}

// SQLContext is SQL under a context: a cancelled or expired ctx stops
// execution cooperatively (the morsel scheduler checks it between morsel
// claims; online aggregation between batches) and returns ctx.Err(). This
// is the entry point the service layer uses to plumb per-request deadlines
// and client-disconnect cancellation down to the operators.
func (e *Engine) SQLContext(ctx context.Context, sql string, mode Mode) (*storage.Table, error) {
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	if st.JoinTable != "" {
		return e.executeJoin(ctx, st)
	}
	return e.ExecuteContext(ctx, st.Table, st.Query, mode)
}

// executeJoin runs a two-table statement: hash-join then query.
func (e *Engine) executeJoin(ctx context.Context, st *sqlparse.Statement) (*storage.Table, error) {
	// Joins need the whole tables materialized.
	lschema, err := e.schemaOf(st.Table)
	if err != nil {
		return nil, err
	}
	rschema, err := e.schemaOf(st.JoinTable)
	if err != nil {
		return nil, err
	}
	left, err := e.table(ctx, st.Table, allColumnsQuery(lschema))
	if err != nil {
		return nil, err
	}
	right, err := e.table(ctx, st.JoinTable, allColumnsQuery(rschema))
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	jsp := trace.FromContext(ctx).Child("join")
	jsp.SetInt("left_rows", int64(left.NumRows()))
	jsp.SetInt("right_rows", int64(right.NumRows()))
	joined, err := exec.Join(left, right, st.LeftKey, st.RightKey)
	if err == nil {
		jsp.SetInt("rows_out", int64(joined.NumRows()))
	}
	jsp.End()
	if err != nil {
		return nil, err
	}
	q := sqlparse.ExpandStar(st.Query, joined.Schema())
	return exec.ExecuteCtx(ctx, joined, q, e.opt.Exec)
}

func allColumnsQuery(schema storage.Schema) exec.Query {
	var q exec.Query
	for _, f := range schema {
		q.Select = append(q.Select, exec.SelectItem{Col: f.Name})
	}
	return q
}

// Execute runs a parsed query against a named table under the given mode.
func (e *Engine) Execute(table string, q exec.Query, mode Mode) (*storage.Table, error) {
	return e.ExecuteContext(context.Background(), table, q, mode)
}

// Answer is a query result plus the execution metadata the service layer
// surfaces to clients.
type Answer struct {
	Table *storage.Table
	// Degraded marks a result produced by the degradation contract: the
	// requested exact execution exceeded its deadline and a sampled
	// approximation (with estimate, ci95 and sample_n columns) was
	// returned in its place.
	Degraded bool
	// Mode is the mode that actually produced the table — Approx when
	// Degraded, the requested mode otherwise.
	Mode Mode
}

// ExecuteAnswer is ExecuteContext with the degradation contract applied:
// when Options.Degrade is set and an Exact or Cracked query returns
// context.DeadlineExceeded, the engine computes a sampled approximate
// answer under a fresh DegradeGrace budget and returns it tagged
// Degraded, instead of the error. Queries whose shape the approximate
// path cannot serve, and client cancellations, keep the original error.
func (e *Engine) ExecuteAnswer(ctx context.Context, table string, q exec.Query, mode Mode) (Answer, error) {
	res, err := e.ExecuteContext(ctx, table, q, mode)
	if err == nil {
		return Answer{Table: res, Mode: mode}, nil
	}
	if !e.opt.Degrade || (mode != Exact && mode != Cracked) || !errors.Is(err, context.DeadlineExceeded) {
		return Answer{}, err
	}
	dres, derr := e.degradedAnswer(ctx, table, q)
	if derr != nil {
		return Answer{}, err // surface the original deadline overrun
	}
	return Answer{Table: dres, Degraded: true, Mode: Approx}, nil
}

// degradedAnswer computes the approximate stand-in for a timed-out exact
// query under its own grace budget, detached from the expired request
// context. Only the trace span survives the detachment, so the fallback
// work still shows up in the query's profile.
func (e *Engine) degradedAnswer(parent context.Context, table string, q exec.Query) (*storage.Table, error) {
	sp := trace.FromContext(parent).Child("degrade")
	defer sp.End()
	ctx, cancel := context.WithTimeout(trace.With(context.Background(), sp), e.opt.DegradeGrace)
	defer cancel()
	schema, err := e.schemaOf(table)
	if err != nil {
		return nil, err
	}
	return e.executeApprox(ctx, table, sqlparse.ExpandStar(q, schema))
}

// ExecuteContext is Execute under a context. Cancellation points per mode:
// Exact checks between morsels (and between morsel claims when parallel),
// Cracked before and after the crack, Online between batches, Approx at the
// mode boundaries (sample lookups are sub-millisecond once built).
func (e *Engine) ExecuteContext(ctx context.Context, table string, q exec.Query, mode Mode) (*storage.Table, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	psp := trace.FromContext(ctx).Child("plan")
	psp.SetStr("table", table)
	psp.SetStr("mode", mode.String())
	schema, err := e.schemaOf(table)
	if err != nil {
		psp.End()
		return nil, err
	}
	q = sqlparse.ExpandStar(q, schema)
	psp.End()
	switch mode {
	case Exact:
		t, err := e.table(ctx, table, q)
		if err != nil {
			return nil, err
		}
		return exec.ExecuteCtx(ctx, t, q, e.opt.Exec)
	case Cracked:
		return e.executeCracked(ctx, table, q)
	case Approx:
		return e.executeApprox(ctx, table, q)
	case Online:
		return e.executeOnline(ctx, table, q)
	default:
		return nil, fmt.Errorf("%v: %w", mode, ErrBadMode)
	}
}

// rangePred recognizes WHERE shapes the cracker can serve: a single
// comparison or a conjunction of comparisons on one numeric column with
// numeric constants. It normalizes the predicate into half-open bounds:
// integer [iLo, iHi) for INT columns, float [fLo, fHi) for FLOAT columns.
func rangePred(q exec.Query, schema storage.Schema) (col string, isFloat bool, iLo, iHi int64, fLo, fHi float64, ok bool) {
	w := q.Where
	if w == nil {
		return "", false, 0, 0, 0, 0, false
	}
	var cmps []*expr.Pred
	switch w.Kind {
	case expr.KCmp:
		cmps = []*expr.Pred{w}
	case expr.KAnd:
		for _, k := range w.Kids {
			if k.Kind != expr.KCmp {
				return "", false, 0, 0, 0, 0, false
			}
			cmps = append(cmps, k)
		}
	default:
		return "", false, 0, 0, 0, 0, false
	}
	iLo, iHi = math.MinInt64, math.MaxInt64
	fLo, fHi = math.Inf(-1), math.Inf(1)
	for _, c := range cmps {
		if col == "" {
			col = c.Col
			i := schema.Index(c.Col)
			if i < 0 {
				return "", false, 0, 0, 0, 0, false
			}
			switch schema[i].Type {
			case storage.TInt:
				isFloat = false
			case storage.TFloat:
				isFloat = true
			default:
				return "", false, 0, 0, 0, 0, false
			}
		} else if col != c.Col {
			return "", false, 0, 0, 0, 0, false
		}
		if !c.Val.IsNumeric() {
			return "", false, 0, 0, 0, 0, false
		}
		if isFloat {
			v := c.Val.AsFloat()
			switch c.Op {
			case expr.GE:
				fLo = math.Max(fLo, v)
			case expr.GT:
				fLo = math.Max(fLo, math.Nextafter(v, math.Inf(1)))
			case expr.LT:
				fHi = math.Min(fHi, v)
			case expr.LE:
				fHi = math.Min(fHi, math.Nextafter(v, math.Inf(1)))
			case expr.EQ:
				fLo = math.Max(fLo, v)
				fHi = math.Min(fHi, math.Nextafter(v, math.Inf(1)))
			default:
				return "", false, 0, 0, 0, 0, false
			}
			continue
		}
		// Integer column: translate possibly fractional constants into
		// integer half-open bounds. Constants beyond the int64 range would
		// overflow the conversion and flip the range, so fall back to the
		// exact path for them.
		v := c.Val.AsFloat()
		if v >= math.MaxInt64 || v <= math.MinInt64 {
			return "", false, 0, 0, 0, 0, false
		}
		switch c.Op {
		case expr.GE:
			iLo = maxI(iLo, int64(math.Ceil(v)))
		case expr.GT:
			iLo = maxI(iLo, int64(math.Floor(v))+1)
		case expr.LT:
			iHi = minI(iHi, int64(math.Ceil(v)))
		case expr.LE:
			iHi = minI(iHi, int64(math.Floor(v))+1)
		case expr.EQ:
			if v != math.Trunc(v) {
				return "", false, 0, 0, 0, 0, false // x = 2.5 over INT: empty, fall back
			}
			iLo = maxI(iLo, int64(v))
			iHi = minI(iHi, int64(v)+1)
		default:
			return "", false, 0, 0, 0, 0, false
		}
	}
	return col, isFloat, iLo, iHi, fLo, fHi, col != ""
}

func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func (e *Engine) executeCracked(ctx context.Context, table string, q exec.Query) (*storage.Table, error) {
	t, err := e.table(ctx, table, q)
	if err != nil {
		return nil, err
	}
	col, isFloat, iLo, iHi, fLo, fHi, ok := rangePred(q, t.Schema())
	if !ok {
		return exec.ExecuteCtx(ctx, t, q, e.opt.Exec) // fallback: not a crackable shape
	}
	csp := trace.FromContext(ctx).Child("crack")
	csp.SetStr("col", col)
	// The probe synchronizes inside the index: boundary-aligned lookups
	// share the index read lock, reorganizing ones take the write lock. The
	// stats come from the probe's own critical section, so the span reflects
	// the index state this query actually saw — not whatever a concurrent
	// probe left behind by the time the span is annotated.
	var rows []int
	var st crack.ProbeStats
	if isFloat {
		ix, ferr := e.crackIndexFloat(table, t, col)
		if ferr == nil {
			rows, st, ferr = ix.Probe(fLo, fHi)
		}
		err = ferr
	} else {
		ix, ierr := e.crackIndex(table, t, col)
		if ierr == nil {
			rows, st, ierr = ix.Probe(iLo, iHi)
		}
		err = ierr
	}
	if err != nil {
		csp.End()
		return nil, err
	}
	csp.SetStr("lock_mode", st.Lock.String())
	csp.SetInt("pieces", int64(st.Pieces))
	csp.SetInt("cracks", int64(st.Cracks))
	csp.SetInt("rows_out", int64(len(rows)))
	csp.End()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	gsp := trace.FromContext(ctx).Child("gather")
	gsp.SetInt("rows", int64(len(rows)))
	sub := t.Gather(rows)
	gsp.End()
	// Post-gather execution reuses the configured operators: the gathered
	// subset is an ordinary table, and the pool already gates small inputs
	// to the sequential path.
	q.Where = nil
	return exec.ExecuteCtx(ctx, sub, q, e.opt.Exec)
}

// crackIndexFloat returns (building on demand) the float cracker index.
func (e *Engine) crackIndexFloat(table string, t *storage.Table, col string) (*crack.Index[float64], error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	byCol, ok := e.crackedF[table]
	if !ok {
		byCol = map[string]*crack.Index[float64]{}
		e.crackedF[table] = byCol
	}
	if ix, ok := byCol[col]; ok {
		return ix, nil
	}
	c, err := t.ColumnByName(col)
	if err != nil {
		return nil, err
	}
	fc, ok := c.(*storage.FloatColumn)
	if !ok {
		return nil, fmt.Errorf("core: float cracking needs a FLOAT column, %q is %v", col, c.Type())
	}
	ix := crack.New(fc.V, e.opt.CrackOptions)
	byCol[col] = ix
	return ix, nil
}

// crackIndex returns (building on demand) the cracker index for a column.
func (e *Engine) crackIndex(table string, t *storage.Table, col string) (*crack.IntIndex, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	byCol, ok := e.cracked[table]
	if !ok {
		byCol = map[string]*crack.IntIndex{}
		e.cracked[table] = byCol
	}
	if ix, ok := byCol[col]; ok {
		return ix, nil
	}
	c, err := t.ColumnByName(col)
	if err != nil {
		return nil, err
	}
	var vals []int64
	switch ic := c.(type) {
	case *storage.IntColumn:
		vals = ic.V
	case *storage.RLEIntColumn:
		// Cracking reorganizes its own copy of the values, which defeats the
		// run-length representation anyway — decode once and crack that.
		vals = ic.Decode().V
	default:
		return nil, fmt.Errorf("core: cracking needs an INT column, %q is %v", col, c.Type())
	}
	ix := crack.New(vals, e.opt.CrackOptions)
	byCol[col] = ix
	return ix, nil
}

// CrackStats reports (pieces, cracks) for a table's column index, or ok
// false when no index exists yet.
func (e *Engine) CrackStats(table, col string) (pieces, cracks int, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if byCol, have := e.cracked[table]; have {
		if ix, have := byCol[col]; have {
			return ix.NumPieces(), ix.Cracks(), true
		}
	}
	if byCol, have := e.crackedF[table]; have {
		if ix, have := byCol[col]; have {
			return ix.NumPieces(), ix.Cracks(), true
		}
	}
	return 0, 0, false
}

// CrackIndexStat describes one adaptive index in CrackIndexes.
type CrackIndexStat struct {
	Table  string
	Column string
	Pieces int
	Cracks int
}

// CrackIndexes lists every crack index the engine has built so far, in
// deterministic (table, column) order — the shard Stats probe and
// /admin/stats enumerate them without knowing which columns queries
// happened to crack.
func (e *Engine) CrackIndexes() []CrackIndexStat {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []CrackIndexStat
	for table, byCol := range e.cracked {
		for col, ix := range byCol {
			out = append(out, CrackIndexStat{Table: table, Column: col, Pieces: ix.NumPieces(), Cracks: ix.Cracks()})
		}
	}
	for table, byCol := range e.crackedF {
		for col, ix := range byCol {
			out = append(out, CrackIndexStat{Table: table, Column: col, Pieces: ix.NumPieces(), Cracks: ix.Cracks()})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Table != out[b].Table {
			return out[a].Table < out[b].Table
		}
		return out[a].Column < out[b].Column
	})
	return out
}

// approxShape converts an exec.Query into the single-aggregate aqp.Query
// the approximate modes support.
func approxShape(q exec.Query) (aqp.Query, string, error) {
	var agg *exec.SelectItem
	groupCols := map[string]bool{}
	for _, g := range q.GroupBy {
		groupCols[g] = true
	}
	groupName := ""
	for i := range q.Select {
		s := &q.Select[i]
		if s.Agg != exec.AggNone {
			if agg != nil {
				return aqp.Query{}, "", ErrNotApprox
			}
			agg = s
			continue
		}
		if !groupCols[s.Col] {
			return aqp.Query{}, "", ErrNotApprox
		}
	}
	if agg == nil || len(q.GroupBy) > 1 {
		return aqp.Query{}, "", ErrNotApprox
	}
	if len(q.GroupBy) == 1 {
		groupName = q.GroupBy[0]
	}
	return aqp.Query{Agg: agg.Agg, Col: agg.Col, Where: q.Where, GroupBy: groupName}, agg.Name(), nil
}

// estimatesTable renders group estimates as a result table with estimate,
// ci95 and sample_n columns.
func estimatesTable(name, groupCol, aggName string, ests []aqp.GroupEstimate) (*storage.Table, error) {
	schema := storage.Schema{}
	if groupCol != "" {
		typ := storage.TString
		if len(ests) > 0 {
			typ = ests[0].Group.Typ
		}
		schema = append(schema, storage.Field{Name: groupCol, Type: typ})
	}
	schema = append(schema,
		storage.Field{Name: aggName, Type: storage.TFloat},
		storage.Field{Name: "ci95", Type: storage.TFloat},
		storage.Field{Name: "sample_n", Type: storage.TInt},
	)
	out, err := storage.NewTable(name, schema)
	if err != nil {
		return nil, err
	}
	for _, g := range ests {
		row := []storage.Value{}
		if groupCol != "" {
			row = append(row, g.Group)
		}
		row = append(row, storage.Float(g.Est), storage.Float(g.CI), storage.Int(int64(g.N)))
		if err := out.AppendRow(row...); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (e *Engine) executeApprox(ctx context.Context, table string, q exec.Query) (*storage.Table, error) {
	aq, aggName, err := approxShape(q)
	if err != nil {
		return nil, err
	}
	t, err := e.table(ctx, table, q)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ssp := trace.FromContext(ctx).Child("sample")
	e.mu.Lock()
	cat, ok := e.samples[table]
	if !ok {
		cat, err = aqp.NewCatalog(t, e.rng, e.opt.SampleFracs...)
		if err == nil {
			e.samples[table] = cat
		}
	}
	e.mu.Unlock()
	ssp.SetBool("built", !ok)
	if err != nil {
		ssp.End()
		return nil, err
	}
	res, err := cat.Approx(aq, aqp.Bound{RelErr: e.opt.ApproxRelErr})
	ssp.End()
	if err != nil && res == nil {
		return nil, err
	}
	return estimatesTable(table, aq.GroupBy, aggName, res.Groups)
}

func (e *Engine) executeOnline(ctx context.Context, table string, q exec.Query) (*storage.Table, error) {
	aq, aggName, err := approxShape(q)
	if err != nil {
		return nil, err
	}
	t, err := e.table(ctx, table, q)
	if err != nil {
		return nil, err
	}
	// The engine rand.Rand is shared state: concurrent sessions must not
	// draw from it without holding the engine lock.
	e.mu.Lock()
	seed := e.rng.Int63()
	e.mu.Unlock()
	// The span covers runner construction too: the random-permutation
	// setup dominates short online runs and must not vanish from traces.
	osp := trace.FromContext(ctx).Child("online")
	r, err := onlineagg.New(t, aq, seed)
	if err != nil {
		osp.End()
		return nil, err
	}
	snaps, err := r.RunUntilCtx(ctx, e.opt.OnlineRelCI, e.opt.OnlineBatch)
	osp.SetInt("batches", int64(len(snaps)))
	osp.End()
	if err != nil {
		return nil, err
	}
	return estimatesTable(table, aq.GroupBy, aggName, r.Estimates())
}
