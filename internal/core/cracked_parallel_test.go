package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"dex/internal/exec"
	"dex/internal/storage"
	"dex/internal/workload"
)

// mkParEngine builds an engine over the same sales table as mkEngine but
// with explicit execution options, so parallel and sequential engines see
// identical data.
func mkParEngine(t *testing.T, rows int, opt exec.ExecOptions) *Engine {
	t.Helper()
	e := New(Options{Seed: 1, Exec: opt})
	rng := rand.New(rand.NewSource(2))
	sales, err := workload.Sales(rng, rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register(sales); err != nil {
		t.Fatal(err)
	}
	return e
}

// tablesMatch compares two result tables cell by cell, with a relative
// tolerance on floats: parallel aggregation may reassociate float sums by
// an ulp, nothing more.
func tablesMatch(a, b *storage.Table) error {
	if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
		return fmt.Errorf("dims %dx%d vs %dx%d", a.NumRows(), a.NumCols(), b.NumRows(), b.NumCols())
	}
	for r := 0; r < a.NumRows(); r++ {
		av, bv := a.Row(r), b.Row(r)
		for c := range av {
			switch av[c].Typ {
			case storage.TFloat:
				x, y := av[c].F, bv[c].F
				if x != y && math.Abs(x-y) > 1e-9*math.Max(math.Abs(x), math.Abs(y)) {
					return fmt.Errorf("row %d col %d: %v vs %v", r, c, x, y)
				}
			default:
				if av[c] != bv[c] {
					return fmt.Errorf("row %d col %d: %v vs %v", r, c, av[c], bv[c])
				}
			}
		}
	}
	return nil
}

// TestCrackedParallelGatherParity pins the satellite fix: cracked-mode
// queries route their post-gather stage through the configured parallel
// operators, and the answers must match a sequential engine bit-for-bit
// (modulo float association). A small morsel size makes even the gathered
// subsets large enough to actually fan out.
func TestCrackedParallelGatherParity(t *testing.T) {
	const rows = 30_000
	seq := mkParEngine(t, rows, exec.ExecOptions{Parallelism: 1})
	par := mkParEngine(t, rows, exec.ExecOptions{Parallelism: 8, MorselSize: 512})
	queries := []string{
		"SELECT count(*) FROM sales WHERE qty >= 3 AND qty < 7",
		"SELECT region, sum(amount) FROM sales WHERE qty >= 2 AND qty < 8 GROUP BY region ORDER BY region",
		"SELECT sum(amount), avg(amount), min(amount), max(amount) FROM sales WHERE amount >= 60 AND amount < 120",
		"SELECT amount, qty FROM sales WHERE amount >= 100 ORDER BY amount DESC LIMIT 20",
		"SELECT product, count(*) FROM sales WHERE qty > 4 GROUP BY product ORDER BY product",
	}
	for _, q := range queries {
		// Twice per engine: the second probe hits the converged read path.
		for i := 0; i < 2; i++ {
			want, err := seq.SQL(q, Cracked)
			if err != nil {
				t.Fatalf("%s (seq): %v", q, err)
			}
			got, err := par.SQL(q, Cracked)
			if err != nil {
				t.Fatalf("%s (par): %v", q, err)
			}
			if err := tablesMatch(want, got); err != nil {
				t.Errorf("%s: %v", q, err)
			}
		}
	}
}

// TestConcurrentCrackedProbesMatchOracle hammers one engine with
// concurrent cracked-mode queries — the workload the removed engine-wide
// crack lock used to serialize — and checks every answer against exact
// answers computed up front. Run with -race: correctness here plus the
// detector is the evidence that per-index locking is sound end to end
// (engine map access, index probe, parallel post-gather).
func TestConcurrentCrackedProbesMatchOracle(t *testing.T) {
	const (
		rows       = 20_000
		goroutines = 8
		perG       = 15
	)
	e := mkParEngine(t, rows, exec.ExecOptions{Parallelism: 4, MorselSize: 1024})

	// Mixed int and float predicates: two distinct cracker indexes, so
	// concurrent probes exercise both same-index and cross-index paths.
	type oq struct {
		sql  string
		want int64
	}
	var qs []oq
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 12; i++ {
		lo := 1 + rng.Intn(7)
		hi := lo + 1 + rng.Intn(9-lo)
		qs = append(qs, oq{sql: fmt.Sprintf("SELECT count(*) FROM sales WHERE qty >= %d AND qty < %d", lo, hi)})
	}
	for i := 0; i < 12; i++ {
		lo := 40 + rng.Float64()*80
		hi := lo + 1 + rng.Float64()*40
		qs = append(qs, oq{sql: fmt.Sprintf("SELECT count(*) FROM sales WHERE amount >= %.3f AND amount < %.3f", lo, hi)})
	}
	for i := range qs {
		res, err := e.SQL(qs[i].sql, Exact)
		if err != nil {
			t.Fatal(err)
		}
		qs[i].want = res.Row(0)[0].I
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			grng := rand.New(rand.NewSource(500 + int64(g)))
			for i := 0; i < perG; i++ {
				q := qs[grng.Intn(len(qs))]
				res, err := e.SQL(q.sql, Cracked)
				if err != nil {
					errs <- fmt.Errorf("%s: %v", q.sql, err)
					return
				}
				if got := res.Row(0)[0].I; got != q.want {
					errs <- fmt.Errorf("%s: got %d, want %d", q.sql, got, q.want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Both indexes must exist and have cracked.
	for _, col := range []string{"qty", "amount"} {
		if pieces, cracks, ok := e.CrackStats("sales", col); !ok || pieces < 2 || cracks < 1 {
			t.Errorf("crack stats for %s = %d,%d,%v", col, pieces, cracks, ok)
		}
	}
}

// TestConcurrentCrackedRowSetsMatchOracle compares full row sets, not just
// counts: concurrent cracked projections must return exactly the rows the
// exact scan returns (sorted for order-independence).
func TestConcurrentCrackedRowSetsMatchOracle(t *testing.T) {
	const goroutines = 6
	e := mkParEngine(t, 8_000, exec.ExecOptions{Parallelism: 4, MorselSize: 1024})
	queries := []string{
		"SELECT qty FROM sales WHERE qty >= 2 AND qty < 5",
		"SELECT qty FROM sales WHERE qty >= 4 AND qty < 9",
		"SELECT amount FROM sales WHERE amount >= 80 AND amount < 110",
	}
	type key struct{ q string }
	oracle := map[key][]string{}
	for _, q := range queries {
		res, err := e.SQL(q, Exact)
		if err != nil {
			t.Fatal(err)
		}
		var vals []string
		for r := 0; r < res.NumRows(); r++ {
			vals = append(vals, res.Row(r)[0].String())
		}
		sort.Strings(vals)
		oracle[key{q}] = vals
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				q := queries[(g+i)%len(queries)]
				res, err := e.SQL(q, Cracked)
				if err != nil {
					errs <- err
					return
				}
				var vals []string
				for r := 0; r < res.NumRows(); r++ {
					vals = append(vals, res.Row(r)[0].String())
				}
				sort.Strings(vals)
				want := oracle[key{q}]
				if len(vals) != len(want) {
					errs <- fmt.Errorf("%s: %d rows, want %d", q, len(vals), len(want))
					return
				}
				for j := range vals {
					if vals[j] != want[j] {
						errs <- fmt.Errorf("%s: value %d = %s, want %s", q, j, vals[j], want[j])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
