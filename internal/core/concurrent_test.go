package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"dex/internal/exec"
	"dex/internal/sqlparse"
	"dex/internal/workload"
)

// TestConcurrentSessions drives many sessions through the parallel engine
// at once, mixing every execution mode with profile reads, crack-stat
// polls and session archiving. Its job is to give `go test -race ./...`
// something to bite on: all of the engine's shared state — the catalog,
// cracker indexes, sample catalogs, the engine rand.Rand, the past-session
// archive — is exercised from multiple goroutines.
func TestConcurrentSessions(t *testing.T) {
	e := New(Options{Seed: 5, Exec: exec.ExecOptions{Parallelism: 4, MorselSize: 512}})
	rng := rand.New(rand.NewSource(5))
	sales, err := workload.Sales(rng, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register(sales); err != nil {
		t.Fatal(err)
	}

	stmts := []struct {
		sql  string
		mode Mode
	}{
		{"SELECT region, sum(amount) FROM sales GROUP BY region", Exact},
		{"SELECT product, count(*) FROM sales WHERE amount > 120 GROUP BY product ORDER BY product LIMIT 5", Exact},
		{"SELECT sum(amount) FROM sales WHERE qty >= 40", Cracked},
		{"SELECT count(*) FROM sales WHERE qty > 2 AND qty < 7", Cracked},
		{"SELECT avg(amount) FROM sales", Approx},
		{"SELECT sum(qty) FROM sales", Online},
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := e.NewSession()
			for i := 0; i < 12; i++ {
				st := stmts[(g+i)%len(stmts)]
				if _, err := s.Query(st.sql, st.mode); err != nil {
					errs <- fmt.Errorf("goroutine %d %q (%v): %w", g, st.sql, st.mode, err)
					return
				}
				if i%4 == 0 {
					if _, err := e.Profile("sales"); err != nil {
						errs <- fmt.Errorf("goroutine %d profile: %w", g, err)
						return
					}
				}
				e.CrackStats("sales", "qty")
				e.Tables()
			}
			if _, err := s.SuggestNext(2); err != nil {
				errs <- fmt.Errorf("goroutine %d suggest: %w", g, err)
				return
			}
			s.End()
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Focused phase: hammer each non-exact mode on its own, with no other
	// engine calls in between. Interleaved Lock/Unlock pairs from unrelated
	// methods (Tables, CrackStats) create happens-before edges that can
	// mask a race on state touched outside the engine lock — e.g. the
	// shared rand.Rand the Online mode seeds from — so the mixed loop
	// above is not enough for the race detector to see it.
	for _, tc := range []struct {
		mode Mode
		sql  string
	}{
		{Online, "SELECT sum(qty) FROM sales"},
		{Approx, "SELECT avg(amount) FROM sales"},
		{Cracked, "SELECT count(*) FROM sales WHERE qty >= 3 AND qty < 8"},
	} {
		var pwg sync.WaitGroup
		perr := make(chan error, 4)
		for g := 0; g < 4; g++ {
			pwg.Add(1)
			go func() {
				defer pwg.Done()
				for i := 0; i < 5; i++ {
					if _, err := e.Execute("sales", mustParse(t, tc.sql), tc.mode); err != nil {
						perr <- fmt.Errorf("%v: %w", tc.mode, err)
						return
					}
				}
			}()
		}
		pwg.Wait()
		close(perr)
		for err := range perr {
			t.Error(err)
		}
	}
}

func mustParse(t *testing.T, sql string) exec.Query {
	t.Helper()
	st, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return st.Query
}
