package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"dex/internal/exec"
	"dex/internal/metrics"
	"dex/internal/recommend"
	"dex/internal/storage"
	"dex/internal/synopsis"
)

// ValueCount is one frequent value of a categorical column.
type ValueCount struct {
	Value string
	Count int
}

// ColumnProfile summarizes one column for a first exploratory look.
type ColumnProfile struct {
	Name     string
	Type     storage.Type
	Distinct int
	// Numeric summaries (zero for TEXT columns).
	Min, Max, Mean, StdDev float64
	// Hist is an equi-depth histogram for numeric columns (nil for TEXT).
	Hist *synopsis.Histogram
	// Top holds the most frequent values for TEXT columns (nil otherwise).
	Top []ValueCount
}

// TableProfile is the engine's data-profiling answer: per-column summaries
// plus suggested segmentations (which categorical column best explains each
// numeric measure — the query-advisor idea of [57]).
type TableProfile struct {
	Table   string
	Rows    int
	Columns []ColumnProfile
	// Segmentations maps each numeric column to the ranked categorical
	// dimensions that explain it.
	Segmentations map[string][]recommend.Segmentation
}

// Profile computes a TableProfile for a registered (or in-situ) table.
// The histogram bucket count adapts to the data size (16–64).
func (e *Engine) Profile(table string) (*TableProfile, error) {
	schema, err := e.schemaOf(table)
	if err != nil {
		return nil, err
	}
	// Materialize every column (for in-situ tables this is the full parse —
	// profiling is an explicit whole-table operation).
	var allQ exec.Query
	for _, f := range schema {
		allQ.Select = append(allQ.Select, exec.SelectItem{Col: f.Name})
	}
	t, err := e.table(context.Background(), table, allQ)
	if err != nil {
		return nil, err
	}
	p := &TableProfile{Table: table, Rows: t.NumRows(), Segmentations: map[string][]recommend.Segmentation{}}
	buckets := 16
	if t.NumRows() > 10_000 {
		buckets = 64
	}
	var dims, measures []string
	for i, f := range schema {
		c := t.Column(i)
		cp := ColumnProfile{Name: f.Name, Type: f.Type}
		if f.Type == storage.TString {
			counts := map[string]int{}
			for r := 0; r < c.Len(); r++ {
				counts[c.Value(r).S]++
			}
			cp.Distinct = len(counts)
			for v, n := range counts {
				cp.Top = append(cp.Top, ValueCount{Value: v, Count: n})
			}
			sort.Slice(cp.Top, func(a, b int) bool {
				if cp.Top[a].Count != cp.Top[b].Count {
					return cp.Top[a].Count > cp.Top[b].Count
				}
				return cp.Top[a].Value < cp.Top[b].Value
			})
			if len(cp.Top) > 5 {
				cp.Top = cp.Top[:5]
			}
			// Low-cardinality text columns are segmentation candidates.
			if cp.Distinct > 1 && cp.Distinct <= 64 {
				dims = append(dims, f.Name)
			}
		} else {
			xs := storage.Floats(c)
			var st metrics.Stream
			seen := map[float64]bool{}
			for _, x := range xs {
				st.Add(x)
				seen[x] = true
			}
			cp.Distinct = len(seen)
			cp.Min, cp.Max = st.Min(), st.Max()
			cp.Mean, cp.StdDev = st.Mean(), st.StdDev()
			if len(xs) > 0 {
				h, herr := synopsis.NewEquiDepth(xs, buckets)
				if herr == nil {
					cp.Hist = h
				}
			}
			measures = append(measures, f.Name)
		}
		p.Columns = append(p.Columns, cp)
	}
	if len(dims) > 0 {
		for _, m := range measures {
			segs, serr := recommend.SuggestSegmentation(t, m, dims)
			if serr == nil {
				p.Segmentations[m] = segs
			}
		}
	}
	return p, nil
}

// Format renders the profile for a terminal.
func (p *TableProfile) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "table %s: %d rows, %d columns\n", p.Table, p.Rows, len(p.Columns))
	for _, c := range p.Columns {
		fmt.Fprintf(&b, "  %-12s %-6s distinct=%d", c.Name, c.Type, c.Distinct)
		if c.Type == storage.TString {
			var tops []string
			for _, tv := range c.Top {
				tops = append(tops, fmt.Sprintf("%s(%d)", tv.Value, tv.Count))
			}
			fmt.Fprintf(&b, "  top: %s", strings.Join(tops, " "))
		} else {
			fmt.Fprintf(&b, "  min=%.4g max=%.4g mean=%.4g sd=%.4g", c.Min, c.Max, c.Mean, c.StdDev)
		}
		b.WriteByte('\n')
	}
	if len(p.Segmentations) > 0 {
		b.WriteString("suggested segmentations (R² of measure by dimension):\n")
		keys := make([]string, 0, len(p.Segmentations))
		for k := range p.Segmentations {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, m := range keys {
			segs := p.Segmentations[m]
			if len(segs) == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %s: ", m)
			var parts []string
			for _, s := range segs {
				parts = append(parts, fmt.Sprintf("%s=%.3f", s.Dim, s.R2))
			}
			b.WriteString(strings.Join(parts, ", "))
			b.WriteByte('\n')
		}
	}
	return b.String()
}
