package core

import (
	"dex/internal/recommend"
	"dex/internal/sqlparse"
	"dex/internal/storage"
)

// Session tracks one user's exploration: every executed query is
// fingerprinted into the session history, which powers next-query
// recommendation against the engine's archive of past sessions.
type Session struct {
	engine  *Engine
	history recommend.Session
}

// NewSession starts a session on the engine.
func (e *Engine) NewSession() *Session {
	return &Session{engine: e}
}

// Query parses, executes and records a statement.
func (s *Session) Query(sql string, mode Mode) (*storage.Table, error) {
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	res, err := s.engine.Execute(st.Table, st.Query, mode)
	if err != nil {
		return nil, err
	}
	s.history = append(s.history, recommend.Fingerprint(st.Query))
	return res, nil
}

// History returns the session's query fingerprints.
func (s *Session) History() recommend.Session {
	return append(recommend.Session(nil), s.history...)
}

// Len returns the number of recorded queries.
func (s *Session) Len() int { return len(s.history) }

// End archives the session into the engine's log, making it available to
// future recommendations.
func (s *Session) End() {
	if len(s.history) == 0 {
		return
	}
	e := s.engine
	e.mu.Lock()
	e.pastSessions = append(e.pastSessions, s.History())
	e.mu.Unlock()
	s.history = nil
}

// SuggestNext recommends likely next queries for the session from the
// engine's archived sessions. It returns nil (no error) when there is no
// history to learn from.
func (s *Session) SuggestNext(k int) ([]recommend.QuerySuggestion, error) {
	e := s.engine
	e.mu.Lock()
	hist := append([]recommend.Session(nil), e.pastSessions...)
	e.mu.Unlock()
	if len(hist) == 0 {
		return nil, nil
	}
	r, err := recommend.New(hist)
	if err != nil {
		return nil, err
	}
	return r.SuggestNextQuery(s.history, k)
}
