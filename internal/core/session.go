package core

import (
	"context"
	"sync"

	"dex/internal/exec"
	"dex/internal/recommend"
	"dex/internal/sqlparse"
	"dex/internal/storage"
	"dex/internal/trace"
)

// Session tracks one user's exploration: every executed query is
// fingerprinted into the session history, which powers next-query
// recommendation against the engine's archive of past sessions.
//
// A Session is safe for concurrent use: the history is guarded by its own
// mutex, so one session shared across goroutines (the service layer allows
// pipelined requests on a single session) records every query exactly once.
// Query execution itself happens outside the lock — concurrent queries on
// one session run in parallel; only the history append serializes.
type Session struct {
	engine *Engine

	mu      sync.Mutex
	history recommend.Session
	ended   bool
}

// NewSession starts a session on the engine.
func (e *Engine) NewSession() *Session {
	return &Session{engine: e}
}

// Query parses, executes and records a statement.
func (s *Session) Query(sql string, mode Mode) (*storage.Table, error) {
	return s.QueryContext(context.Background(), sql, mode)
}

// QueryContext is Query under a context: cancellation and deadlines
// propagate to the operators (see Engine.SQLContext). A cancelled query is
// not recorded in the session history — it produced no result the user saw.
func (s *Session) QueryContext(ctx context.Context, sql string, mode Mode) (*storage.Table, error) {
	ans, err := s.AnswerContext(ctx, sql, mode)
	return ans.Table, err
}

// AnswerContext is QueryContext returning the full Answer, including the
// Degraded tag the degradation contract sets (see Engine.ExecuteAnswer) —
// the entry point the service layer uses. A degraded answer still counts
// as a result the user saw, so it is recorded in the session history.
func (s *Session) AnswerContext(ctx context.Context, sql string, mode Mode) (Answer, error) {
	psp := trace.FromContext(ctx).Child("parse")
	st, err := sqlparse.Parse(sql)
	psp.End()
	if err != nil {
		return Answer{}, err
	}
	var ans Answer
	if st.JoinTable != "" {
		// Joins have no approximate stand-in; they never degrade.
		ans.Mode = mode
		ans.Table, err = s.engine.executeJoin(ctx, st)
	} else {
		ans, err = s.engine.ExecuteAnswer(ctx, st.Table, st.Query, mode)
	}
	if err != nil {
		return Answer{}, err
	}
	s.mu.Lock()
	s.history = append(s.history, recommend.Fingerprint(st.Query))
	s.mu.Unlock()
	return ans, nil
}

// Record appends a query to the session history without executing it.
// The distributed coordinator answers queries outside the local engine;
// recording them here keeps /suggest learning from the full exploration
// stream regardless of where execution happened.
func (s *Session) Record(q exec.Query) {
	s.mu.Lock()
	s.history = append(s.history, recommend.Fingerprint(q))
	s.mu.Unlock()
}

// History returns a copy of the session's query fingerprints.
func (s *Session) History() recommend.Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append(recommend.Session(nil), s.history...)
}

// Len returns the number of recorded queries.
func (s *Session) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.history)
}

// End archives the session into the engine's log, making it available to
// future recommendations. Ending twice archives once.
func (s *Session) End() {
	s.mu.Lock()
	hist := s.history
	s.history = nil
	ended := s.ended
	s.ended = true
	s.mu.Unlock()
	if ended || len(hist) == 0 {
		return
	}
	e := s.engine
	e.mu.Lock()
	e.pastSessions = append(e.pastSessions, hist)
	e.mu.Unlock()
}

// SuggestNext recommends likely next queries for the session from the
// engine's archived sessions. It returns nil (no error) when there is no
// history to learn from.
func (s *Session) SuggestNext(k int) ([]recommend.QuerySuggestion, error) {
	e := s.engine
	e.mu.Lock()
	hist := append([]recommend.Session(nil), e.pastSessions...)
	e.mu.Unlock()
	if len(hist) == 0 {
		return nil, nil
	}
	r, err := recommend.New(hist)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	prefix := append([][]string(nil), s.history...)
	s.mu.Unlock()
	return r.SuggestNextQuery(prefix, k)
}
