package core

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"dex/internal/exec"
	"dex/internal/workload"
)

// TestSharedSessionConcurrency pins the Session concurrency contract the
// service layer depends on: one session shared across goroutines must
// record every successful query exactly once, tolerate concurrent
// History/Len/SuggestNext reads, and archive once no matter how many
// goroutines race End. Run under -race this is the test that used to
// expose the unsynchronized s.history mutation.
func TestSharedSessionConcurrency(t *testing.T) {
	e := New(Options{Seed: 3, Exec: exec.ExecOptions{Parallelism: 2, MorselSize: 512}})
	rng := rand.New(rand.NewSource(3))
	sales, err := workload.Sales(rng, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register(sales); err != nil {
		t.Fatal(err)
	}

	s := e.NewSession()
	const goroutines = 8
	const perG = 10
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := s.Query("SELECT region, sum(amount) FROM sales GROUP BY region", Exact); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				_ = s.Len()
				_ = s.History()
				if _, err := s.SuggestNext(2); err != nil {
					t.Errorf("goroutine %d suggest: %v", g, err)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := s.Len(); got != goroutines*perG {
		t.Fatalf("history length = %d, want %d (lost or duplicated appends)", got, goroutines*perG)
	}

	// Racing End calls archive the history exactly once.
	var endWg sync.WaitGroup
	for g := 0; g < 4; g++ {
		endWg.Add(1)
		go func() { defer endWg.Done(); s.End() }()
	}
	endWg.Wait()
	e.mu.Lock()
	archived := len(e.pastSessions)
	e.mu.Unlock()
	if archived != 1 {
		t.Fatalf("archived %d sessions, want exactly 1", archived)
	}
}

// TestSessionQueryContextCancel checks a cancelled request neither returns
// a result nor pollutes the session history, and that the engine-level scan
// counter stops advancing once the query aborts.
func TestSessionQueryContextCancel(t *testing.T) {
	var scanned atomic.Int64
	e := New(Options{Seed: 4, Exec: exec.ExecOptions{Parallelism: 1, MorselSize: 1024, Scanned: &scanned}})
	rng := rand.New(rand.NewSource(4))
	sales, err := workload.Sales(rng, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register(sales); err != nil {
		t.Fatal(err)
	}
	s := e.NewSession()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.QueryContext(ctx, "SELECT product, sum(amount) FROM sales GROUP BY product", Exact); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s.Len() != 0 {
		t.Fatalf("cancelled query was recorded in history (len=%d)", s.Len())
	}
	if scanned.Load() != 0 {
		t.Fatalf("scanned %d rows under a pre-cancelled context", scanned.Load())
	}

	// A live context completes and records.
	if _, err := s.QueryContext(context.Background(), "SELECT count(*) FROM sales", Exact); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("history length = %d, want 1", s.Len())
	}
	if scanned.Load() == 0 {
		t.Fatal("scan counter never advanced for a completed query")
	}
}
