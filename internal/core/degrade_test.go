package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"dex/internal/workload"
)

func degradeEngine(t *testing.T, degrade bool) *Engine {
	t.Helper()
	eng := New(Options{Seed: 1, Degrade: degrade})
	sales, err := workload.Sales(rand.New(rand.NewSource(7)), 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(sales); err != nil {
		t.Fatal(err)
	}
	return eng
}

// expiredCtx returns a context whose deadline has already passed — the
// cheapest way to make any exact execution report DeadlineExceeded.
func expiredCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	t.Cleanup(cancel)
	return ctx
}

// TestDegradedAnswerReplacesDeadlineError is the degradation contract: an
// exact aggregate query over its deadline comes back as a sampled
// approximation tagged Degraded, and the estimate is close to the truth.
func TestDegradedAnswerReplacesDeadlineError(t *testing.T) {
	eng := degradeEngine(t, true)
	sess := eng.NewSession()
	const sql = "SELECT sum(amount) FROM sales WHERE amount >= 50 AND amount < 200"

	exactT, err := sess.Query(sql, Exact)
	if err != nil {
		t.Fatal(err)
	}
	exact := exactT.Column(0).Value(0).AsFloat()

	ans, err := sess.AnswerContext(expiredCtx(t), sql, Exact)
	if err != nil {
		t.Fatalf("degradable query returned error: %v", err)
	}
	if !ans.Degraded || ans.Mode != Approx {
		t.Fatalf("answer not degraded: degraded=%v mode=%v", ans.Degraded, ans.Mode)
	}
	// Degraded results use the approximate wire shape: estimate, ci95,
	// sample_n.
	names := ans.Table.Schema().Names()
	if len(names) != 3 || names[1] != "ci95" || names[2] != "sample_n" {
		t.Fatalf("degraded schema = %v", names)
	}
	est := ans.Table.Column(0).Value(0).AsFloat()
	ci := ans.Table.Column(1).Value(0).AsFloat()
	if math.Abs(est-exact) > math.Max(4*ci, 0.25*math.Abs(exact)) {
		t.Fatalf("degraded estimate %.1f too far from exact %.1f (ci95 %.1f)", est, exact, ci)
	}
	// The degraded answer still lands in the session history.
	if sess.Len() != 2 {
		t.Fatalf("history length = %d, want 2", sess.Len())
	}
}

// TestDegradeRefusals: shapes the approximate path cannot serve, disabled
// degradation, and client cancellation all keep their original error.
func TestDegradeRefusals(t *testing.T) {
	eng := degradeEngine(t, true)
	sess := eng.NewSession()

	// Two aggregates: not an approximable shape.
	_, err := sess.AnswerContext(expiredCtx(t), "SELECT sum(amount), count(*) FROM sales", Exact)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("non-approximable shape: err = %v, want DeadlineExceeded", err)
	}

	// Online mode is already approximate; it never degrades.
	_, err = sess.AnswerContext(expiredCtx(t), "SELECT sum(amount) FROM sales", Online)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("online mode: err = %v, want DeadlineExceeded", err)
	}

	// Client cancellation (no deadline) must not burn a degraded answer.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = sess.AnswerContext(cancelled, "SELECT sum(amount) FROM sales", Exact)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: err = %v, want Canceled", err)
	}

	// Degradation off: the deadline error stands.
	off := degradeEngine(t, false)
	_, err = off.NewSession().AnswerContext(expiredCtx(t), "SELECT sum(amount) FROM sales", Exact)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("degrade off: err = %v, want DeadlineExceeded", err)
	}
}
