package server

import (
	"context"
	"errors"
	"fmt"
	"time"

	"dex/internal/fault"
)

// fpAdmit injects admission faults: an error policy sheds the query as if
// the queue were full (a well-formed 429 with Retry-After), a latency
// policy delays admission — overload shapes beyond what real load can
// produce deterministically.
var fpAdmit = fault.Register("server/admit")

// Admission-control rejections. Both map to HTTP 429 with a Retry-After
// hint: the service is up, just saturated — IDEBench-style load generators
// count these separately from errors because a well-behaved client backs
// off and retries.
var (
	// ErrQueueFull means the wait queue is at capacity: the query was
	// rejected immediately rather than queued unboundedly.
	ErrQueueFull = errors.New("server: admission queue full")
	// ErrQueueTimeout means the query waited its full queue budget without
	// an execution slot freeing up.
	ErrQueueTimeout = errors.New("server: timed out waiting for an execution slot")
)

// admission bounds the number of concurrently executing queries and the
// number waiting behind them. Under overload the invariant is: at most
// maxInFlight queries execute, at most maxQueue wait (each at most
// queueTimeout), everything else is rejected immediately — latency under
// saturation is bounded by construction, never by queue depth.
type admission struct {
	slots        chan struct{} // capacity = max in-flight
	waiters      chan struct{} // capacity = max queue depth
	queueTimeout time.Duration
}

func newAdmission(maxInFlight, maxQueue int, queueTimeout time.Duration) *admission {
	return &admission{
		slots:        make(chan struct{}, maxInFlight),
		waiters:      make(chan struct{}, maxQueue),
		queueTimeout: queueTimeout,
	}
}

// acquire claims an execution slot, waiting in the bounded queue if none is
// free. It returns ErrQueueFull / ErrQueueTimeout on rejection, or the
// context error if the client gave up while queued. On nil the caller must
// release().
func (a *admission) acquire(ctx context.Context) error {
	if err := fpAdmit.Hit(); err != nil {
		// Injected admission failure surfaces as the queue-full rejection:
		// the client contract (429 + Retry-After, safe to retry) holds.
		return fmt.Errorf("%w (%v)", ErrQueueFull, err)
	}
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	// No free slot: join the bounded wait queue or reject immediately.
	select {
	case a.waiters <- struct{}{}:
	default:
		return ErrQueueFull
	}
	defer func() { <-a.waiters }()
	timer := time.NewTimer(a.queueTimeout)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-timer.C:
		return ErrQueueTimeout
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *admission) release() { <-a.slots }

// active returns the number of queries currently holding execution slots.
func (a *admission) active() int { return len(a.slots) }

// queued returns the number of queries waiting for a slot.
func (a *admission) queued() int { return len(a.waiters) }
