package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dex/internal/core"
	"dex/internal/exec"
	"dex/internal/fault"
	"dex/internal/workload"
)

// rawPost sends body verbatim (no client-side JSON marshalling) so tests
// can exercise malformed and oversized payloads the typed Client cannot
// produce, and returns the status plus the decoded error body.
func rawPost(t *testing.T, url, body string) (int, errorBody) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("POST %s: response is not JSON: %v", url, err)
	}
	return resp.StatusCode, eb
}

// TestServerErrorPaths is the table-driven tour of the 4xx surface: every
// malformed or misaddressed request must come back as a typed JSON error
// with the right status — never a panic, a hang, or a bare text body.
func TestServerErrorPaths(t *testing.T) {
	ts, cl, _, _ := newTestService(t, 100, Config{MaxBody: 4096}, exec.ExecOptions{})
	ctx := context.Background()

	liveID, err := cl.CreateSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	endedID, err := cl.CreateSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.EndSession(ctx, endedID); err != nil {
		t.Fatal(err)
	}
	oversized := fmt.Sprintf(`{"sql": %q}`, "SELECT * FROM sales WHERE "+strings.Repeat("amount >= 0 AND ", 4096)+"amount >= 0")

	cases := []struct {
		name   string
		path   string
		body   string
		status int
	}{
		// (Session create takes no body parameters and ignores the body
		// entirely, so it has no malformed-JSON case.)
		{"malformed JSON on query", "/v1/sessions/" + liveID + "/query", `{"sql": "SELECT`, http.StatusBadRequest},
		{"JSON wrong shape on query", "/v1/sessions/" + liveID + "/query", `{"sql": 42}`, http.StatusBadRequest},
		{"empty SQL", "/v1/sessions/" + liveID + "/query", `{"sql": ""}`, http.StatusBadRequest},
		{"unknown session", "/v1/sessions/s-missing/query", `{"sql": "SELECT * FROM sales"}`, http.StatusNotFound},
		{"query after session end", "/v1/sessions/" + endedID + "/query", `{"sql": "SELECT * FROM sales"}`, http.StatusNotFound},
		{"oversized body", "/v1/sessions/" + liveID + "/query", oversized, http.StatusRequestEntityTooLarge},
		{"malformed JSON on suggest", "/v1/sessions/" + liveID + "/suggest", `{`, http.StatusBadRequest},
		{"malformed JSON on load", "/v1/tables/load", `not json`, http.StatusBadRequest},
		{"malformed JSON on demo", "/v1/tables/demo", `[1,2`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, eb := rawPost(t, ts.URL+tc.path, tc.body)
			if status != tc.status {
				t.Fatalf("status = %d, want %d (error %q)", status, tc.status, eb.Error)
			}
			if eb.Error == "" {
				t.Fatalf("HTTP %d carried no error message", status)
			}
		})
	}

	// The live session must have survived all of the above abuse.
	if _, err := cl.Query(ctx, liveID, QueryRequest{SQL: "SELECT count(*) FROM sales"}); err != nil {
		t.Fatalf("session unusable after error-path probes: %v", err)
	}
}

// TestClientRetriesTransportFaults: with a retry policy, a transient
// injected transport failure is absorbed — the call succeeds on the second
// attempt. Without a policy the same fault surfaces as a TransportError.
func TestClientRetriesTransportFaults(t *testing.T) {
	_, cl, _, _ := newTestService(t, 100, Config{}, exec.ExecOptions{})
	ctx := context.Background()

	if err := fault.Enable("client/transport", "error-once"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fault.Disable("client/transport") })
	_, err := cl.Tables(ctx)
	if !IsTransport(err) {
		t.Fatalf("no-retry client: err = %v, want TransportError", err)
	}

	cl.Retry = &RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, Seed: 1}
	if err := fault.Enable("client/transport", "error-once"); err != nil {
		t.Fatal(err)
	}
	tables, err := cl.Tables(ctx)
	if err != nil {
		t.Fatalf("retrying client: %v", err)
	}
	if len(tables) != 1 || tables[0] != "sales" {
		t.Fatalf("retried call returned %v", tables)
	}
}

// TestCreateSessionIdempotency: a retried session create with an
// Idempotency-Key must not leak a second session — the server replays the
// original id for a repeated key.
func TestCreateSessionIdempotency(t *testing.T) {
	ts, cl, srv, _ := newTestService(t, 100, Config{}, exec.ExecOptions{})
	ctx := context.Background()

	// Raw replay: same key twice, same id back.
	post := func(key string) (int, string) {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sessions", bytes.NewReader([]byte("{}")))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Idempotency-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			SessionID string `json:"session_id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out.SessionID
	}
	st1, id1 := post("k-1")
	st2, id2 := post("k-1")
	if st1 != http.StatusCreated || st2 != http.StatusOK {
		t.Fatalf("statuses = %d, %d; want 201 then 200", st1, st2)
	}
	if id1 == "" || id1 != id2 {
		t.Fatalf("replayed create returned %q, want original %q", id2, id1)
	}
	_, id3 := post("k-2")
	if id3 == id1 {
		t.Fatal("distinct keys shared a session")
	}

	// Client-level: a transport fault on the first attempt plus the retry
	// policy's idempotency token yields exactly one new session.
	before := srv.Stats().Sessions.Created
	cl.Retry = &RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, Seed: 7}
	if err := fault.Enable("client/transport", "error-once"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fault.Disable("client/transport") })
	id, err := cl.CreateSession(ctx)
	if err != nil {
		t.Fatalf("create with retry: %v", err)
	}
	if id == "" {
		t.Fatal("empty session id")
	}
	if got := srv.Stats().Sessions.Created - before; got != 1 {
		t.Fatalf("retried create made %d sessions, want 1", got)
	}
}

// TestRetryBackoffShape pins the backoff arithmetic: exponential growth,
// the cap, the Retry-After floor, and jitter bounded by 50%.
func TestRetryBackoffShape(t *testing.T) {
	p := &RetryPolicy{BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second, Seed: 3}
	for retry, base := range map[int]time.Duration{
		0: 100 * time.Millisecond,
		1: 200 * time.Millisecond,
		2: 400 * time.Millisecond,
		5: time.Second, // 3.2s capped
		9: time.Second,
	} {
		d := p.backoff(retry, 0)
		if d < base || d > base+base/2 {
			t.Fatalf("backoff(%d) = %v, want in [%v, %v]", retry, d, base, base+base/2)
		}
	}
	// Retry-After overrides a smaller computed backoff, even above the cap.
	if d := p.backoff(0, 3*time.Second); d < 3*time.Second {
		t.Fatalf("backoff with Retry-After floor = %v, want >= 3s", d)
	}
	// Same seed, same jitter sequence: the retry schedule is reproducible.
	p1 := &RetryPolicy{BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second, Seed: 11}
	p2 := &RetryPolicy{BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second, Seed: 11}
	for i := 0; i < 8; i++ {
		if d1, d2 := p1.backoff(i, 0), p2.backoff(i, 0); d1 != d2 {
			t.Fatalf("retry %d: same seed gave %v and %v", i, d1, d2)
		}
	}
}

// TestQueryDegradesOverHTTP drives the degradation contract end to end: a
// latency fault at the scan makes an exact query blow its deadline, and
// with -degrade on the wire answer comes back approximate, tagged
// degraded:true, and is never cached.
func TestQueryDegradesOverHTTP(t *testing.T) {
	eng := core.New(core.Options{Seed: 1, Degrade: true})
	sales, err := workload.Sales(rand.New(rand.NewSource(42)), 5_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(sales); err != nil {
		t.Fatal(err)
	}
	srv := New(eng, Config{})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	cl := NewClient(ts.URL)
	ctx := context.Background()

	id, err := cl.CreateSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Enable("exec/scan", "latency(150ms)"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fault.Disable("exec/scan") })

	req := QueryRequest{SQL: "SELECT sum(amount) FROM sales WHERE amount >= 10", TimeoutMS: 40}
	out, err := cl.Query(ctx, id, req)
	if err != nil {
		t.Fatalf("degradable query failed: %v", err)
	}
	if !out.Degraded {
		t.Fatal("answer not tagged degraded")
	}
	if out.Mode != "approx" {
		t.Fatalf("degraded answer mode = %q, want approx", out.Mode)
	}
	if len(out.Columns) != 3 || out.Columns[1] != "ci95" {
		t.Fatalf("degraded schema = %v", out.Columns)
	}
	if got := srv.Stats().Queries.Degraded; got != 1 {
		t.Fatalf("degraded counter = %d, want 1", got)
	}

	// A repeat of the same query must not be served from cache: degraded
	// answers are stand-ins, not results worth pinning.
	out2, err := cl.Query(ctx, id, req)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Cached {
		t.Fatal("degraded answer was cached")
	}

	// With the fault cleared the same query completes exactly.
	fault.Disable("exec/scan")
	out3, err := cl.Query(ctx, id, req)
	if err != nil {
		t.Fatal(err)
	}
	if out3.Degraded {
		t.Fatal("healthy query still degraded")
	}
	if len(out3.Columns) != 1 {
		t.Fatalf("exact schema = %v", out3.Columns)
	}
}

// TestDegradedExtremesEncodeOverWire pins the wire contract the chaos
// harness caught a hole in: a degraded MIN/MAX answer carries ci95 = +Inf
// (a sample extreme has no finite confidence bound — see internal/aqp),
// JSON cannot represent ±Inf, and an encode failure after the 200 status
// line reached clients as a bare io.EOF. The response must instead arrive
// as a parseable 200 with null in the ci95 cells.
func TestDegradedExtremesEncodeOverWire(t *testing.T) {
	eng := core.New(core.Options{Seed: 1, Degrade: true})
	sales, err := workload.Sales(rand.New(rand.NewSource(42)), 5_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(sales); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng, Config{}))
	t.Cleanup(ts.Close)
	cl := NewClient(ts.URL)
	ctx := context.Background()

	id, err := cl.CreateSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Enable("exec/scan", "latency(150ms)"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fault.Disable("exec/scan") })

	out, err := cl.Query(ctx, id, QueryRequest{
		SQL: "SELECT quarter, max(amount) FROM sales WHERE amount >= 10 GROUP BY quarter", TimeoutMS: 40,
	})
	if err != nil {
		t.Fatalf("degraded MAX query failed on the wire: %v", err)
	}
	if !out.Degraded {
		t.Fatal("answer not tagged degraded")
	}
	ci := -1
	for i, c := range out.Columns {
		if c == "ci95" {
			ci = i
		}
	}
	if ci < 0 {
		t.Fatalf("no ci95 column in %v", out.Columns)
	}
	if len(out.Rows) == 0 {
		t.Fatal("degraded answer has no rows")
	}
	for _, row := range out.Rows {
		if row[ci] != nil {
			t.Fatalf("MAX ci95 = %v, want null (unbounded)", row[ci])
		}
	}
}

// TestWriteJSONUnencodable: if a payload ever fails to marshal again, the
// client must see a typed 500, not a 200 status line with an empty body.
func TestWriteJSONUnencodable(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, map[string]any{"bad": math.Inf(1)})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var eb errorBody
	if err := json.NewDecoder(rec.Body).Decode(&eb); err != nil {
		t.Fatalf("500 body is not JSON: %v", err)
	}
	if eb.Error == "" {
		t.Fatal("500 body has no error message")
	}
}

// TestInjectedHandlerFault: an armed server/handler failpoint surfaces as a
// 500 with a JSON error and bumps the injected counter — infrastructure
// failures are not blamed on the query.
func TestInjectedHandlerFault(t *testing.T) {
	_, cl, srv, _ := newTestService(t, 100, Config{}, exec.ExecOptions{})
	ctx := context.Background()
	id, err := cl.CreateSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Enable("server/handler", "error-once"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fault.Disable("server/handler") })

	_, err = cl.Query(ctx, id, QueryRequest{SQL: "SELECT count(*) FROM sales"})
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusInternalServerError {
		t.Fatalf("injected handler fault: err = %v, want HTTP 500", err)
	}
	if got := srv.Stats().Queries.Injected; got != 1 {
		t.Fatalf("injected counter = %d, want 1", got)
	}
	// error-once: the next query is healthy.
	if _, err := cl.Query(ctx, id, QueryRequest{SQL: "SELECT count(*) FROM sales"}); err != nil {
		t.Fatalf("query after one-shot fault: %v", err)
	}
}

// TestQueryErrorClassification is the table-driven unit test of the
// error classifier, including the internal-cancellation bugfix: a
// context.Canceled surfacing with the client still connected and no
// deadline fired is a 500 with its own counter — it used to be a 400
// miscounted as a user cancellation.
func TestQueryErrorClassification(t *testing.T) {
	cancelledReq := func() *http.Request {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		return httptest.NewRequest(http.MethodPost, "/v1/sessions/x/query", nil).WithContext(ctx)
	}
	liveReq := func() *http.Request {
		return httptest.NewRequest(http.MethodPost, "/v1/sessions/x/query", nil)
	}

	cases := []struct {
		name        string
		err         error
		req         func() *http.Request
		wantStatus  int // 0 = nothing may be written
		wantOutcome string
		counter     func(q QueryStats) int64
	}{
		{
			name: "injected fault", err: fault.ErrInjected, req: liveReq,
			wantStatus: http.StatusInternalServerError, wantOutcome: "injected",
			counter: func(q QueryStats) int64 { return q.Injected },
		},
		{
			name: "client disconnected", err: context.Canceled, req: cancelledReq,
			wantStatus: 0, wantOutcome: "cancelled",
			counter: func(q QueryStats) int64 { return q.Cancelled },
		},
		{
			name: "internal cancel, live client", err: context.Canceled, req: liveReq,
			wantStatus: http.StatusInternalServerError, wantOutcome: "internal_cancel",
			counter: func(q QueryStats) int64 { return q.CancelledInternal },
		},
		{
			name: "wrapped internal cancel", err: fmt.Errorf("exec: %w", context.Canceled), req: liveReq,
			wantStatus: http.StatusInternalServerError, wantOutcome: "internal_cancel",
			counter: func(q QueryStats) int64 { return q.CancelledInternal },
		},
		{
			name: "deadline exceeded", err: context.DeadlineExceeded, req: liveReq,
			wantStatus: http.StatusGatewayTimeout, wantOutcome: "timeout",
			counter: func(q QueryStats) int64 { return q.TimedOut },
		},
		{
			name: "unknown table", err: fmt.Errorf("%q: %w", "nope", core.ErrNoSuchTable), req: liveReq,
			wantStatus: http.StatusNotFound, wantOutcome: "failed",
			counter: func(q QueryStats) int64 { return q.Failed },
		},
		{
			name: "engine rejection", err: errors.New("exec: unknown column"), req: liveReq,
			wantStatus: http.StatusBadRequest, wantOutcome: "failed",
			counter: func(q QueryStats) int64 { return q.Failed },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(core.New(core.Options{}), Config{})
			w := httptest.NewRecorder()
			outcome := s.queryError(w, tc.req(), tc.err)
			if outcome != tc.wantOutcome {
				t.Fatalf("outcome %q, want %q", outcome, tc.wantOutcome)
			}
			if got := tc.counter(s.Stats().Queries); got != 1 {
				t.Fatalf("counter for %s = %d, want 1", tc.wantOutcome, got)
			}
			resp := w.Result()
			defer resp.Body.Close()
			if tc.wantStatus == 0 {
				if w.Body.Len() != 0 {
					t.Fatalf("wrote %q to a disconnected client", w.Body.String())
				}
				return
			}
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			var eb errorBody
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
				t.Fatalf("error body missing or malformed: %v (%q)", err, w.Body.String())
			}
		})
	}
}
