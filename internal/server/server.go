// Package server is the networked query service over the exploration
// engine — the piece that turns dex from a single-process library into a
// shared multi-user system. It is an HTTP/JSON service with per-connection
// sessions (create/query/suggest/end), per-request deadlines and
// client-disconnect cancellation plumbed as context.Context down to the
// morsel scheduler, admission control (bounded in-flight queries, a bounded
// wait queue with timeout, immediate 429 beyond that), an optional shared
// result cache, graceful drain, and an /admin/stats endpoint with per-mode
// latency histograms and live rows-scanned counters.
//
// Endpoints:
//
//	POST   /v1/sessions              -> {"session_id": ...}
//	POST   /v1/sessions/{id}/query   {"sql","mode","timeout_ms"} -> result
//	POST   /v1/sessions/{id}/suggest {"k"} -> {"suggestions": [...]}
//	DELETE /v1/sessions/{id}         archive the session
//	GET    /v1/tables                list tables
//	POST   /v1/tables/load           {"name","path"} load a CSV server-side
//	POST   /v1/tables/demo           {"kind","rows","seed"} synthesize data
//	GET    /admin/stats              StatsSnapshot
//	GET    /admin/slow               last N slow-query traces
//	GET    /metrics                  Prometheus text exposition
//	GET    /debug/pprof/*            net/http/pprof (behind Config.Pprof)
//	GET    /healthz                  200 ok / 503 draining
//
// Observability: a query body with "trace": true returns the span tree
// of that execution in the response; queries slower than
// Config.SlowThreshold are kept (with their traces) in a bounded ring
// served at /admin/slow; Config.RequestLog emits one structured line per
// query. See internal/trace and DESIGN.md's Observability section.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"log/slog"
	"math"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dex/internal/cache"
	"dex/internal/core"
	"dex/internal/fault"
	"dex/internal/shard"
	"dex/internal/sqlparse"
	"dex/internal/storage"
	"dex/internal/trace"
	"dex/internal/workload"
)

// fpHandler injects request-handler faults at the top of the query path:
// latency policies make slow handlers, error policies fail the request as
// an internal error before the engine runs.
var fpHandler = fault.Register("server/handler")

// ErrDraining is returned (as HTTP 503) for new queries once drain begins.
var ErrDraining = errors.New("server: draining")

// Config tunes the service.
type Config struct {
	// MaxInFlight bounds concurrently executing queries (0 = GOMAXPROCS).
	MaxInFlight int
	// MaxQueue bounds queries waiting for a slot (0 = 2*MaxInFlight;
	// negative = no queue, reject immediately when saturated).
	MaxQueue int
	// QueueTimeout is the longest a query waits in the queue before a 429
	// (default 2s).
	QueueTimeout time.Duration
	// DefaultTimeout is the per-query deadline when the client sends none
	// (default 30s). MaxTimeout caps client-requested deadlines (default 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// CacheRows is the shared result cache budget in rows; 0 disables the
	// cache. Only Exact-mode results are cached (the adaptive and
	// approximate modes have useful side effects or non-deterministic
	// output); any data change invalidates the whole cache.
	CacheRows int64
	// MaxSessions bounds live sessions (default 4096).
	MaxSessions int
	// MaxBody caps request body size in bytes; larger bodies get 413
	// (default 1 MiB).
	MaxBody int64
	// Log receives request-level errors (default: log.Default()).
	Log *log.Logger
	// SlowThreshold keeps any query at or above this duration (whatever
	// its outcome) in the /admin/slow trace ring. 0 disables the ring;
	// per-request "trace": true still works either way.
	SlowThreshold time.Duration
	// SlowRing is how many slow-query traces the ring retains (default 64).
	SlowRing int
	// Pprof mounts net/http/pprof under /debug/pprof/ when set.
	Pprof bool
	// RequestLog, when non-nil, gets one structured line per query request
	// (session, mode, outcome, duration, rows).
	RequestLog *slog.Logger
	// Shard, when set, makes this server a cluster coordinator: single-table
	// queries against the sharded table scatter across the worker fleet and
	// gather merged (possibly degraded) results; everything else — joins,
	// other tables, suggestions — runs on the local engine as before.
	Shard *shard.Coordinator
}

func (c *Config) fill() {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.MaxQueue == 0:
		c.MaxQueue = 2 * c.MaxInFlight
	case c.MaxQueue < 0:
		c.MaxQueue = 0
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 2 * time.Second
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 4096
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.Log == nil {
		c.Log = log.Default()
	}
	if c.SlowRing <= 0 {
		c.SlowRing = 64
	}
}

// Server is the query service. Create with New, serve via ServeHTTP (it is
// an http.Handler), stop with Drain.
type Server struct {
	eng *core.Engine
	cfg Config
	adm *admission
	st  *stats

	results *cache.Sync[string, *QueryResult]

	// slow retains traces of queries exceeding cfg.SlowThreshold; nil when
	// the threshold is unset.
	slow *trace.Ring

	draining atomic.Bool

	// drainMu guards the in-flight count against the drain transition: a
	// plain WaitGroup is not enough, because Add racing Wait around zero is
	// undefined (and the race detector says so) — a request could slip in
	// after Wait returned and outlive a "clean" drain. enter/exit/Drain
	// make admission-vs-drain a single atomic decision.
	drainMu  sync.Mutex
	inflight int
	drained  chan struct{} // created by Drain, closed when inflight hits 0

	mu       sync.Mutex
	sessions map[string]*core.Session
	seq      int64
	salt     uint32
	// idem maps Idempotency-Key headers of session creates to the session
	// id they produced, so a client retrying a lost create response gets
	// the same session instead of leaking a fresh one. Bounded FIFO.
	idem      map[string]string
	idemOrder []string

	mux *http.ServeMux
}

// maxIdemKeys bounds the idempotency-key memory (FIFO eviction).
const maxIdemKeys = 8192

// New wires a service around an engine whose tables the caller has already
// loaded (or will load through /v1/tables endpoints).
func New(eng *core.Engine, cfg Config) *Server {
	cfg.fill()
	s := &Server{
		eng:      eng,
		cfg:      cfg,
		adm:      newAdmission(cfg.MaxInFlight, cfg.MaxQueue, cfg.QueueTimeout),
		st:       newStats(),
		sessions: map[string]*core.Session{},
		idem:     map[string]string{},
		salt:     rand.Uint32(),
		mux:      http.NewServeMux(),
	}
	if cfg.CacheRows > 0 {
		s.results, _ = cache.NewSync[string, *QueryResult](cfg.CacheRows)
	}
	if cfg.SlowThreshold > 0 {
		s.slow = trace.NewRing(cfg.SlowRing)
	}
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreateSession)
	s.mux.HandleFunc("POST /v1/sessions/{id}/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/sessions/{id}/suggest", s.handleSuggest)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleEndSession)
	s.mux.HandleFunc("GET /v1/tables", s.handleTables)
	s.mux.HandleFunc("POST /v1/tables/load", s.handleLoad)
	s.mux.HandleFunc("POST /v1/tables/demo", s.handleDemo)
	s.mux.HandleFunc("GET /admin/stats", s.handleStats)
	s.mux.HandleFunc("GET /admin/slow", s.handleSlow)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	if cfg.Pprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// ServeHTTP dispatches to the service mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Drain begins graceful shutdown: new queries are rejected with 503 while
// every admitted or queued query runs to completion. It returns when the
// last in-flight request finishes or ctx expires (the error then is
// ctx.Err(); in-flight queries keep their own deadlines either way).
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining.Store(true)
	if s.drained == nil {
		s.drained = make(chan struct{})
		if s.inflight == 0 {
			close(s.drained)
		}
	}
	done := s.drained
	s.drainMu.Unlock()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// enter admits one tracked request unless a drain has begun. Checking the
// flag and bumping the count under one lock means Drain's "no new work"
// line is exact: after Drain observes the count it can only go down.
func (s *Server) enter() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.inflight++
	return true
}

func (s *Server) exit() {
	s.drainMu.Lock()
	s.inflight--
	// Once draining, enter admits nothing, so the count strictly falls and
	// crosses zero at most once — the close below cannot double-fire.
	if s.inflight == 0 && s.drained != nil {
		close(s.drained)
	}
	s.drainMu.Unlock()
}

// Draining reports whether drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Stats returns the same snapshot /admin/stats serves.
func (s *Server) Stats() StatsSnapshot {
	s.mu.Lock()
	activeSessions := len(s.sessions)
	s.mu.Unlock()
	var cs *cache.Stats
	var entries int
	var used int64
	if s.results != nil {
		st := s.results.Stats()
		cs, entries, used = &st, s.results.Len(), s.results.Used()
	}
	snap := s.st.snapshot(activeSessions, cs, entries, used)
	snap.Active = s.adm.active()
	snap.Queued = s.adm.queued()
	snap.Draining = s.draining.Load()
	snap.RowsScanned = s.eng.RowsScanned()
	snap.AggKernelHits = s.eng.AggKernelHits()
	snap.AggKernelFallbacks = s.eng.AggKernelFallbacks()
	if s.cfg.Shard != nil {
		ss := s.cfg.Shard.Snapshot()
		snap.Shard = &ss
	}
	return snap
}

// ---- protocol types ----

// QueryRequest is the /query body.
type QueryRequest struct {
	SQL       string `json:"sql"`
	Mode      string `json:"mode,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
	// Trace asks the server to record per-stage spans for this query and
	// return the span tree in the response.
	Trace bool `json:"trace,omitempty"`
}

// QueryResult is the /query response: a column-major-encoded result table.
type QueryResult struct {
	Columns   []string `json:"columns"`
	Types     []string `json:"types"`
	Rows      [][]any  `json:"rows"`
	Mode      string   `json:"mode"`
	ElapsedMS float64  `json:"elapsed_ms"`
	Cached    bool     `json:"cached,omitempty"`
	// Degraded marks an exact query that overran its deadline and was
	// answered with a sampled approximation (see core.Answer) — or, on a
	// sharded table, a partial answer merged from the surviving shards.
	Degraded bool `json:"degraded,omitempty"`
	// Coverage is the fraction of the sharded table's rows behind this
	// answer (1.0 on a healthy fleet, < 1 when Degraded). Absent on
	// non-sharded queries.
	Coverage float64 `json:"coverage,omitempty"`
	// Trace is the span tree of this execution, present when the request
	// set "trace": true.
	Trace *trace.SpanJSON `json:"trace,omitempty"`
}

// Suggestion is one recommended next query.
type Suggestion struct {
	Fragments []string `json:"fragments"`
	Score     float64  `json:"score"`
}

// errorBody is every non-200 payload.
type errorBody struct {
	Error        string `json:"error"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// ---- handlers ----

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.reject(w, http.StatusServiceUnavailable, ErrDraining, &s.st.rejDrain)
		return
	}
	key := r.Header.Get("Idempotency-Key")
	s.mu.Lock()
	// Session create is the one non-idempotent call in the API: a client
	// that retries a lost response would otherwise leak sessions. With an
	// Idempotency-Key the replay returns the original session id.
	if key != "" {
		if id, ok := s.idem[key]; ok {
			s.mu.Unlock()
			writeJSON(w, http.StatusOK, map[string]string{"session_id": id})
			return
		}
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		s.reject(w, http.StatusTooManyRequests, fmt.Errorf("server: session limit %d reached", s.cfg.MaxSessions), &s.st.rejBusy)
		return
	}
	s.seq++
	id := fmt.Sprintf("s%08x-%d", s.salt, s.seq)
	s.sessions[id] = s.eng.NewSession()
	if key != "" {
		if len(s.idemOrder) >= maxIdemKeys {
			delete(s.idem, s.idemOrder[0])
			s.idemOrder = s.idemOrder[1:]
		}
		s.idem[key] = id
		s.idemOrder = append(s.idemOrder, key)
	}
	s.mu.Unlock()
	s.st.count(&s.st.sessionsCreated)
	writeJSON(w, http.StatusCreated, map[string]string{"session_id": id})
}

func (s *Server) session(r *http.Request) (*core.Session, string, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess, ok := s.sessions[id]
	s.mu.Unlock()
	return sess, id, ok
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !s.enter() {
		s.reject(w, http.StatusServiceUnavailable, ErrDraining, &s.st.rejDrain)
		return
	}
	defer s.exit()
	if err := fpHandler.Hit(); err != nil {
		s.st.count(&s.st.injected)
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	sess, sid, ok := s.session(r)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown session"})
		return
	}
	var req QueryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.SQL == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "body must be JSON with a non-empty \"sql\""})
		return
	}
	mode, err := core.ParseMode(req.Mode)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}

	// Tracing is armed per request ("trace": true) or service-wide by the
	// slow-query ring; untraced queries never allocate a span, and every
	// layer below sees a nil span through the plain context.
	start := time.Now()
	ctx := r.Context()
	var root *trace.Span
	if req.Trace || s.slow != nil {
		ctx, root = trace.Start(ctx, "query")
		root.SetStr("session", sid)
		root.SetStr("mode", mode.String())
	}
	outcome := "completed"
	rows := 0
	defer func() {
		total := time.Since(start)
		s.logRequest(sid, mode.String(), outcome, total, rows)
		if root != nil {
			root.End()
			if s.slow != nil && total >= s.cfg.SlowThreshold {
				s.slow.Add(trace.Entry{
					Time:      start,
					Session:   sid,
					SQL:       req.SQL,
					Mode:      mode.String(),
					Outcome:   outcome,
					ElapsedMS: float64(total.Microseconds()) / 1e3,
					Trace:     root.JSON(),
				})
			}
		}
	}()

	// Serve from the shared result cache before burning an execution slot.
	cacheKey := ""
	if s.results != nil && mode == core.Exact {
		cacheKey = "exact\x00" + req.SQL
		csp := root.Child("cache_lookup")
		lookStart := time.Now()
		res, hitOK := s.results.Get(cacheKey)
		lookup := time.Since(lookStart)
		csp.SetBool("hit", hitOK)
		csp.End()
		if hitOK {
			hit := *res
			hit.Cached = true
			// The original execution's latency is meaningless for a hit:
			// report the lookup cost the client actually paid, and observe
			// it under the dedicated "cached" series — never the engine
			// mode's histogram, which must hold engine executions only.
			hit.ElapsedMS = float64(lookup.Microseconds()) / 1e3
			s.st.observe(statCached, lookup, true)
			outcome, rows = "cache_hit", len(hit.Rows)
			if req.Trace {
				root.End()
				hit.Trace = root.JSON()
			}
			writeJSON(w, http.StatusOK, &hit)
			return
		}
	}

	// Admission control: bounded in-flight, bounded queue, reject beyond.
	asp := root.Child("admission")
	err = s.adm.acquire(ctx)
	asp.End()
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull), errors.Is(err, ErrQueueTimeout):
			outcome = "rejected"
			s.reject(w, http.StatusTooManyRequests, err, &s.st.rejBusy)
		default: // client gave up while queued
			outcome = "cancelled"
			s.st.count(&s.st.cancelled)
		}
		return
	}
	defer s.adm.release()

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	// r.Context() is cancelled when the client disconnects; the deadline
	// layers the per-request budget on top. Both propagate through
	// core -> exec -> par and stop the morsel scheduler.
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	execStart := time.Now()
	var out *QueryResult
	if sq, routed := s.routeShard(req.SQL); routed {
		res, rerr := s.cfg.Shard.Execute(ctx, sq.Table, sq.Query, mode)
		elapsed := time.Since(execStart)
		if rerr != nil {
			outcome = s.queryError(w, r, rerr)
			return
		}
		// The distributed path bypasses the session's engine but the query
		// still shapes this session's recommendations.
		sess.Record(sq.Query)
		out = encodeTable(res.Table, res.Mode.String(), elapsed)
		out.Degraded = res.Degraded
		out.Coverage = res.Coverage
	} else {
		ans, aerr := sess.AnswerContext(ctx, req.SQL, mode)
		elapsed := time.Since(execStart)
		if aerr != nil {
			outcome = s.queryError(w, r, aerr)
			return
		}
		out = encodeTable(ans.Table, ans.Mode.String(), elapsed)
		out.Degraded = ans.Degraded
	}
	elapsed := time.Since(execStart)
	// Degraded answers are approximations (or shard partials); they must
	// never seed the exact result cache.
	if cacheKey != "" && !out.Degraded {
		s.results.Put(cacheKey, out, int64(len(out.Rows))+1)
	}
	if out.Degraded {
		s.st.count(&s.st.degraded)
		outcome = "degraded"
	}
	s.st.observe(mode.String(), elapsed, false)
	rows = len(out.Rows)
	resp := out
	if req.Trace {
		// The cache holds out by pointer; attach the trace to a copy so a
		// future hit is not served another request's spans.
		cp := *out
		root.End()
		cp.Trace = root.JSON()
		resp = &cp
	}
	writeJSON(w, http.StatusOK, resp)
}

// routeShard decides whether a query takes the distributed path: the
// server has a coordinator, the SQL parses, it is single-table, and the
// table is the sharded one. Everything else (including SQL that fails to
// parse here) falls through to the local engine, which owns error
// reporting.
func (s *Server) routeShard(sql string) (*sqlparse.Statement, bool) {
	if s.cfg.Shard == nil {
		return nil, false
	}
	st, err := sqlparse.Parse(sql)
	if err != nil || st.JoinTable != "" || st.Table != s.cfg.Shard.Table() {
		return nil, false
	}
	return st, true
}

// logRequest emits the one structured line per query request when
// Config.RequestLog is set.
func (s *Server) logRequest(session, mode, outcome string, d time.Duration, rows int) {
	if s.cfg.RequestLog == nil {
		return
	}
	s.cfg.RequestLog.LogAttrs(context.Background(), slog.LevelInfo, "query",
		slog.String("session", session),
		slog.String("mode", mode),
		slog.String("outcome", outcome),
		slog.Duration("elapsed", d),
		slog.Int("rows", rows))
}

// decodeBody decodes a JSON request body under the configured size cap,
// writing the typed 4xx response itself on failure: 413 for an oversized
// body, 400 for malformed JSON.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{Error: fmt.Sprintf("request body exceeds %d bytes", mbe.Limit)})
		} else {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "malformed JSON body: " + err.Error()})
		}
		return false
	}
	return true
}

// queryError classifies a failed query and returns the outcome label the
// request log and slow ring record: client disconnects count as
// cancelled (there is no one left to answer), a context.Canceled with
// the client still connected and no deadline fired is an engine bug and
// a 500 with its own counter, deadline overruns are 504, unknown tables
// 404, injected faults 500 (the infrastructure failed, not the query),
// and anything else the engine rejects is a 400 — the engine's remaining
// errors are user-query errors by construction.
func (s *Server) queryError(w http.ResponseWriter, r *http.Request, err error) string {
	switch {
	case errors.Is(err, fault.ErrInjected):
		s.st.count(&s.st.injected)
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return "injected"
	case errors.Is(err, shard.ErrAllShardsFailed):
		// The whole fleet is unreachable — infrastructure down, not a bad
		// query; there is no partial left to degrade to.
		s.st.count(&s.st.failed)
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return "shard_failed"
	case errors.Is(err, context.Canceled):
		if r.Context().Err() != nil {
			s.st.count(&s.st.cancelled)
			return "cancelled"
		}
		// Nothing external cancelled this query, yet the engine returned
		// context.Canceled: that is an internal failure, not a user error.
		s.st.count(&s.st.cancelledInternal)
		writeJSON(w, http.StatusInternalServerError,
			errorBody{Error: "internal: query cancelled with no client disconnect or deadline: " + err.Error()})
		return "internal_cancel"
	case errors.Is(err, context.DeadlineExceeded):
		s.st.count(&s.st.timedOut)
		writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: "query deadline exceeded"})
		return "timeout"
	case errors.Is(err, core.ErrNoSuchTable):
		s.st.count(&s.st.failed)
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return "failed"
	default:
		s.st.count(&s.st.failed)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return "failed"
	}
}

func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	if !s.enter() {
		s.reject(w, http.StatusServiceUnavailable, ErrDraining, &s.st.rejDrain)
		return
	}
	defer s.exit()
	sess, _, ok := s.session(r)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown session"})
		return
	}
	var req struct {
		K int `json:"k"`
	}
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.K <= 0 {
		req.K = 3
	}
	sugs, err := sess.SuggestNext(req.K)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	out := make([]Suggestion, 0, len(sugs))
	for _, sg := range sugs {
		out = append(out, Suggestion{Fragments: sg.Fragments, Score: sg.Score})
	}
	writeJSON(w, http.StatusOK, map[string]any{"suggestions": out})
}

func (s *Server) handleEndSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess, ok := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown session"})
		return
	}
	sess.End()
	s.st.count(&s.st.sessionsEnded)
	writeJSON(w, http.StatusOK, map[string]string{"status": "ended"})
}

func (s *Server) handleTables(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"tables": s.eng.Tables()})
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.reject(w, http.StatusServiceUnavailable, ErrDraining, &s.st.rejDrain)
		return
	}
	var req struct {
		Name string `json:"name"`
		Path string `json:"path"`
	}
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Name == "" || req.Path == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "body must be JSON with \"name\" and \"path\""})
		return
	}
	if err := s.eng.LoadCSV(req.Name, req.Path); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	s.invalidateCache()
	writeJSON(w, http.StatusOK, map[string]string{"status": "loaded", "table": req.Name})
}

func (s *Server) handleDemo(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.reject(w, http.StatusServiceUnavailable, ErrDraining, &s.st.rejDrain)
		return
	}
	var req struct {
		Kind string `json:"kind"`
		Rows int    `json:"rows"`
		Seed int64  `json:"seed"`
	}
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Rows <= 0 {
		req.Rows = 100_000
	}
	if req.Rows > 10_000_000 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "rows capped at 10M"})
		return
	}
	rng := rand.New(rand.NewSource(req.Seed))
	var (
		t   *storage.Table
		err error
	)
	switch req.Kind {
	case "", "sales":
		t, err = workload.Sales(rng, req.Rows)
	case "sky":
		t, err = workload.SkyCatalog(rng, req.Rows)
	case "ticks":
		t, err = workload.Ticks(rng, req.Rows)
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("unknown demo kind %q (sales|sky|ticks)", req.Kind)})
		return
	}
	if err == nil {
		err = s.eng.Register(t)
	}
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	s.invalidateCache()
	writeJSON(w, http.StatusOK, map[string]any{"status": "loaded", "table": t.Name(), "rows": t.NumRows()})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleSlow serves the retained slow-query traces, newest first. With
// no SlowThreshold configured the ring is off and the list is empty.
func (s *Server) handleSlow(w http.ResponseWriter, _ *http.Request) {
	entries := []trace.Entry{}
	var threshold string
	if s.slow != nil {
		entries = s.slow.Snapshot()
		threshold = s.cfg.SlowThreshold.String()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"threshold": threshold,
		"slow":      entries,
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ---- helpers ----

func (s *Server) invalidateCache() {
	if s.results != nil {
		s.results.Clear()
	}
}

// reject writes a load-shedding response with a Retry-After hint and bumps
// the matching counter.
func (s *Server) reject(w http.ResponseWriter, status int, err error, counter *int64) {
	s.st.count(counter)
	retry := s.cfg.QueueTimeout
	w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retry.Seconds()))))
	writeJSON(w, status, errorBody{Error: err.Error(), RetryAfterMS: retry.Milliseconds()})
}

// writeJSON marshals before touching the ResponseWriter: once the status
// line is out there is no way to signal an encode failure, and a 200 with
// an empty body reaches clients as a bare io.EOF they cannot classify
// (the chaos harness caught exactly that, via ±Inf CI values). A payload
// that will not marshal becomes a typed 500 instead.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		status = http.StatusInternalServerError
		buf, _ = json.Marshal(errorBody{Error: "response encoding failed: " + err.Error()})
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(buf, '\n'))
}

// encodeTable renders a result table as the wire format. NaN (the engine's
// NULL) and ±Inf (unbounded CI) become JSON null; ints stay integral.
func encodeTable(t *storage.Table, mode string, elapsed time.Duration) *QueryResult {
	schema := t.Schema()
	out := &QueryResult{
		Columns:   make([]string, len(schema)),
		Types:     make([]string, len(schema)),
		Rows:      make([][]any, t.NumRows()),
		Mode:      mode,
		ElapsedMS: float64(elapsed.Microseconds()) / 1e3,
	}
	for i, f := range schema {
		out.Columns[i] = f.Name
		out.Types[i] = f.Type.String()
	}
	for r := 0; r < t.NumRows(); r++ {
		row := make([]any, t.NumCols())
		for c := 0; c < t.NumCols(); c++ {
			row[c] = encodeValue(t.Column(c).Value(r))
		}
		out.Rows[r] = row
	}
	return out
}

func encodeValue(v storage.Value) any {
	switch v.Typ {
	case storage.TInt:
		return v.I
	case storage.TFloat:
		// JSON carries neither NaN (the engine's NULL) nor ±Inf (the
		// estimator's "no finite CI" for sample extremes); both become null.
		if math.IsNaN(v.F) || math.IsInf(v.F, 0) {
			return nil
		}
		return v.F
	default:
		return v.S
	}
}
