package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// RejectedError is the typed form of a 429/503 load-shed response, so
// clients (and the load harness) can tell "busy, back off" apart from
// "your query is wrong".
type RejectedError struct {
	Status     int
	Message    string
	RetryAfter time.Duration
}

func (e *RejectedError) Error() string {
	return fmt.Sprintf("server rejected request (%d): %s", e.Status, e.Message)
}

// IsRejected reports whether err is a load-shedding rejection (saturated or
// draining) rather than a query failure.
func IsRejected(err error) bool {
	var re *RejectedError
	return errors.As(err, &re)
}

// StatusError is any other non-2xx response.
type StatusError struct {
	Status  int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("server error (%d): %s", e.Status, e.Message)
}

// Client is a typed HTTP client for the dexd service, used by the tests,
// the load harness and cmd/dexload.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient targets a dexd instance, e.g. NewClient("http://127.0.0.1:8080").
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: &http.Client{}}
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var eb errorBody
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			return &RejectedError{
				Status:     resp.StatusCode,
				Message:    msg,
				RetryAfter: time.Duration(eb.RetryAfterMS) * time.Millisecond,
			}
		}
		return &StatusError{Status: resp.StatusCode, Message: msg}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// CreateSession opens a session and returns its id.
func (c *Client) CreateSession(ctx context.Context) (string, error) {
	var out struct {
		SessionID string `json:"session_id"`
	}
	if err := c.do(ctx, http.MethodPost, "/v1/sessions", struct{}{}, &out); err != nil {
		return "", err
	}
	return out.SessionID, nil
}

// Query runs one statement inside a session.
func (c *Client) Query(ctx context.Context, sessionID string, req QueryRequest) (*QueryResult, error) {
	var out QueryResult
	if err := c.do(ctx, http.MethodPost, "/v1/sessions/"+sessionID+"/query", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Suggest asks for up to k recommended next queries.
func (c *Client) Suggest(ctx context.Context, sessionID string, k int) ([]Suggestion, error) {
	var out struct {
		Suggestions []Suggestion `json:"suggestions"`
	}
	body := struct {
		K int `json:"k"`
	}{K: k}
	if err := c.do(ctx, http.MethodPost, "/v1/sessions/"+sessionID+"/suggest", body, &out); err != nil {
		return nil, err
	}
	return out.Suggestions, nil
}

// EndSession archives a session.
func (c *Client) EndSession(ctx context.Context, sessionID string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+sessionID, nil, nil)
}

// Tables lists loaded tables.
func (c *Client) Tables(ctx context.Context) ([]string, error) {
	var out struct {
		Tables []string `json:"tables"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/tables", nil, &out); err != nil {
		return nil, err
	}
	return out.Tables, nil
}

// LoadCSV asks the server to load a CSV it can reach on its filesystem.
func (c *Client) LoadCSV(ctx context.Context, name, path string) error {
	body := struct {
		Name string `json:"name"`
		Path string `json:"path"`
	}{name, path}
	return c.do(ctx, http.MethodPost, "/v1/tables/load", body, nil)
}

// LoadDemo synthesizes a demo table (sales|sky|ticks) server-side.
func (c *Client) LoadDemo(ctx context.Context, kind string, rows int, seed int64) error {
	body := struct {
		Kind string `json:"kind"`
		Rows int    `json:"rows"`
		Seed int64  `json:"seed"`
	}{kind, rows, seed}
	return c.do(ctx, http.MethodPost, "/v1/tables/demo", body, nil)
}

// Stats fetches /admin/stats.
func (c *Client) Stats(ctx context.Context) (*StatsSnapshot, error) {
	var out StatsSnapshot
	if err := c.do(ctx, http.MethodGet, "/admin/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
