package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"dex/internal/fault"
	"dex/internal/trace"
)

// fpTransport injects network-level failures into the client: an error
// policy makes a request fail before reaching the wire (connection
// refused / reset, as the retry layer sees them), a latency policy models
// a slow link. It fires per attempt, so a retried request can fail, back
// off, and succeed — the exact sequence the chaos harness exercises.
var fpTransport = fault.Register("client/transport")

// RejectedError is the typed form of a 429/503 load-shed response, so
// clients (and the load harness) can tell "busy, back off" apart from
// "your query is wrong".
type RejectedError struct {
	Status     int
	Message    string
	RetryAfter time.Duration
}

func (e *RejectedError) Error() string {
	return fmt.Sprintf("server rejected request (%d): %s", e.Status, e.Message)
}

// IsRejected reports whether err is a load-shedding rejection (saturated or
// draining) rather than a query failure.
func IsRejected(err error) bool {
	var re *RejectedError
	return errors.As(err, &re)
}

// StatusError is any other non-2xx response.
type StatusError struct {
	Status  int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("server error (%d): %s", e.Status, e.Message)
}

// TransportError means the request never produced an HTTP response: the
// connection was refused, reset mid-body, or the dial failed. It is a
// different animal from both rejections (the server answered: busy) and
// status errors (the server answered: no) — the server may never have seen
// the request, so whether a retry is safe depends on idempotency, and a
// load report that lumps these under "failed" hides an unreachable or
// flapping server behind a number that normally means bad queries.
type TransportError struct {
	Op  string // "POST /v1/sessions/abc/query"
	Err error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("transport error (%s): %v", e.Op, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// IsTransport reports whether err is a network-level failure rather than
// an HTTP-level response.
func IsTransport(err error) bool {
	var te *TransportError
	return errors.As(err, &te)
}

// RetryPolicy makes a Client retry transient failures — transport errors
// and load-shed rejections — with capped exponential backoff and seeded
// jitter. A server Retry-After hint acts as a floor under the computed
// backoff: the client never comes back sooner than the server asked.
// Non-transient errors (4xx/5xx status errors, context cancellation) are
// never retried, and non-idempotent requests are retried only when an
// idempotency token makes replay safe (see Client.CreateSession).
type RetryPolicy struct {
	MaxAttempts int           // total attempts including the first (default 4)
	BaseBackoff time.Duration // delay before the first retry (default 50ms)
	MaxBackoff  time.Duration // cap on the exponential backoff (default 2s)
	Seed        int64         // jitter and idempotency-token stream seed

	mu  sync.Mutex
	rng *rand.Rand
}

func (p *RetryPolicy) attempts() int {
	if p == nil {
		return 1
	}
	if p.MaxAttempts <= 0 {
		return 4
	}
	return p.MaxAttempts
}

// rand64 draws from the policy's seeded stream (lazily initialized, so a
// zero-value &RetryPolicy{} works).
func (p *RetryPolicy) rand64(n int64) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(p.Seed))
	}
	if n <= 0 {
		return p.rng.Int63()
	}
	return p.rng.Int63n(n)
}

// backoff computes the wait before retry number `retry` (0-based):
// base<<retry capped at MaxBackoff, floored by the server's Retry-After
// hint, plus up to 50% jitter so synchronized clients spread out.
func (p *RetryPolicy) backoff(retry int, retryAfter time.Duration) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxB := p.MaxBackoff
	if maxB <= 0 {
		maxB = 2 * time.Second
	}
	d := base << retry
	if d > maxB || d <= 0 { // <=0 guards shift overflow
		d = maxB
	}
	if retryAfter > d {
		d = retryAfter
	}
	return d + time.Duration(p.rand64(int64(d)/2+1))
}

// retryable reports whether err is worth another attempt: the server said
// "busy, come back" or the network ate the request. Everything else — bad
// queries, unknown sessions, server bugs, client cancellation — repeats
// identically, so retrying only adds load.
func retryable(err error) bool {
	var re *RejectedError
	var te *TransportError
	return errors.As(err, &re) || errors.As(err, &te)
}

// Client is a typed HTTP client for the dexd service, used by the tests,
// the load harness and cmd/dexload.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	// Retry, when non-nil, transparently retries transient failures.
	Retry *RetryPolicy
}

// NewClient targets a dexd instance, e.g. NewClient("http://127.0.0.1:8080").
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: &http.Client{}}
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	return c.doRetry(ctx, method, path, body, out, nil, true)
}

// doRetry runs one logical request through the retry policy. Non-idempotent
// requests get exactly one attempt regardless of policy — replaying them
// could duplicate the side effect — unless the caller made replay safe with
// an idempotency token (in which case it passes idempotent=true).
func (c *Client) doRetry(ctx context.Context, method, path string, body, out any, header map[string]string, idempotent bool) error {
	attempts := c.Retry.attempts()
	if !idempotent {
		attempts = 1
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			var re *RejectedError
			var retryAfter time.Duration
			if errors.As(err, &re) {
				retryAfter = re.RetryAfter
			}
			select {
			case <-time.After(c.Retry.backoff(attempt-1, retryAfter)):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		err = c.doOnce(ctx, method, path, body, out, header)
		if err == nil || !retryable(err) || ctx.Err() != nil {
			return err
		}
	}
	return err
}

func (c *Client) doOnce(ctx context.Context, method, path string, body, out any, header map[string]string) error {
	op := method + " " + path
	if err := fpTransport.Hit(); err != nil {
		return &TransportError{Op: op, Err: err}
	}
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		// Context cancellation is the caller giving up, not the network
		// failing; keep it recognizable (and non-retryable).
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return &TransportError{Op: op, Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var eb errorBody
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			return &RejectedError{
				Status:     resp.StatusCode,
				Message:    msg,
				RetryAfter: time.Duration(eb.RetryAfterMS) * time.Millisecond,
			}
		}
		return &StatusError{Status: resp.StatusCode, Message: msg}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// CreateSession opens a session and returns its id. Session creation is
// the one non-idempotent call in the API — a blind retry could open two
// sessions and leak one — so when a retry policy is set the client attaches
// an Idempotency-Key token: the server replays the original response for a
// repeated key, making the retry safe. Without a policy there is exactly
// one attempt and no token is needed.
func (c *Client) CreateSession(ctx context.Context) (string, error) {
	var out struct {
		SessionID string `json:"session_id"`
	}
	var header map[string]string
	if c.Retry != nil {
		header = map[string]string{
			"Idempotency-Key": fmt.Sprintf("ck-%016x-%016x", c.Retry.rand64(0), c.Retry.rand64(0)),
		}
	}
	if err := c.doRetry(ctx, http.MethodPost, "/v1/sessions", struct{}{}, &out, header, c.Retry != nil); err != nil {
		return "", err
	}
	return out.SessionID, nil
}

// Query runs one statement inside a session.
func (c *Client) Query(ctx context.Context, sessionID string, req QueryRequest) (*QueryResult, error) {
	var out QueryResult
	if err := c.do(ctx, http.MethodPost, "/v1/sessions/"+sessionID+"/query", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Suggest asks for up to k recommended next queries.
func (c *Client) Suggest(ctx context.Context, sessionID string, k int) ([]Suggestion, error) {
	var out struct {
		Suggestions []Suggestion `json:"suggestions"`
	}
	body := struct {
		K int `json:"k"`
	}{K: k}
	if err := c.do(ctx, http.MethodPost, "/v1/sessions/"+sessionID+"/suggest", body, &out); err != nil {
		return nil, err
	}
	return out.Suggestions, nil
}

// EndSession archives a session.
func (c *Client) EndSession(ctx context.Context, sessionID string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+sessionID, nil, nil)
}

// Tables lists loaded tables.
func (c *Client) Tables(ctx context.Context) ([]string, error) {
	var out struct {
		Tables []string `json:"tables"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/tables", nil, &out); err != nil {
		return nil, err
	}
	return out.Tables, nil
}

// LoadCSV asks the server to load a CSV it can reach on its filesystem.
func (c *Client) LoadCSV(ctx context.Context, name, path string) error {
	body := struct {
		Name string `json:"name"`
		Path string `json:"path"`
	}{name, path}
	return c.do(ctx, http.MethodPost, "/v1/tables/load", body, nil)
}

// LoadDemo synthesizes a demo table (sales|sky|ticks) server-side.
func (c *Client) LoadDemo(ctx context.Context, kind string, rows int, seed int64) error {
	body := struct {
		Kind string `json:"kind"`
		Rows int    `json:"rows"`
		Seed int64  `json:"seed"`
	}{kind, rows, seed}
	return c.do(ctx, http.MethodPost, "/v1/tables/demo", body, nil)
}

// Stats fetches /admin/stats.
func (c *Client) Stats(ctx context.Context) (*StatsSnapshot, error) {
	var out StatsSnapshot
	if err := c.do(ctx, http.MethodGet, "/admin/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Slow fetches the retained slow-query traces from /admin/slow,
// newest first.
func (c *Client) Slow(ctx context.Context) ([]trace.Entry, error) {
	var out struct {
		Slow []trace.Entry `json:"slow"`
	}
	if err := c.do(ctx, http.MethodGet, "/admin/slow", nil, &out); err != nil {
		return nil, err
	}
	return out.Slow, nil
}

// Metrics fetches the raw Prometheus text exposition from /metrics. It
// is the one non-JSON response in the API, so it bypasses the JSON
// plumbing (and the retry policy — a scrape is not worth retrying).
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return "", &TransportError{Op: "GET /metrics", Err: err}
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", &TransportError{Op: "GET /metrics", Err: err}
	}
	if resp.StatusCode != http.StatusOK {
		return "", &StatusError{Status: resp.StatusCode, Message: string(buf)}
	}
	return string(buf), nil
}
