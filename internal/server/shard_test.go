package server

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dex/internal/core"
	"dex/internal/metrics"
	"dex/internal/shard"
	"dex/internal/storage"
	"dex/internal/workload"
)

// newShardedService stands up a coordinator server over an in-process
// worker fleet, plus a single-node twin of the same seeded table for
// result comparison.
func newShardedService(t *testing.T, rows, shards int) (*httptest.Server, *Client, *shard.LocalFleet, *core.Engine) {
	t.Helper()
	fleet, err := shard.StartLocalFleet(context.Background(), shard.FleetConfig{
		Shards: shards, Rows: rows, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fleet.Close)

	mkEngine := func() *core.Engine {
		eng := core.New(core.Options{Seed: 1})
		sales, err := workload.Sales(rand.New(rand.NewSource(42)), rows)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Register(sales); err != nil {
			t.Fatal(err)
		}
		return eng
	}
	srv := New(mkEngine(), Config{Shard: fleet.Coord, CacheRows: 1 << 20})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, NewClient(ts.URL), fleet, mkEngine()
}

// TestServerShardRouting: sales queries scatter across the fleet and come
// back identical to the single-node answer, at full coverage, on the
// unchanged HTTP surface.
func TestServerShardRouting(t *testing.T) {
	ts, cl, _, oracle := newShardedService(t, 15_000, 3)
	_ = ts
	ctx := context.Background()
	id, err := cl.CreateSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.EndSession(ctx, id)

	osrv := New(oracle, Config{})
	ots := httptest.NewServer(osrv)
	defer ots.Close()
	ocl := NewClient(ots.URL)
	oid, err := ocl.CreateSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer ocl.EndSession(ctx, oid)

	for _, q := range []QueryRequest{
		{SQL: "SELECT COUNT(*) FROM sales"},
		{SQL: "SELECT region, SUM(amount) FROM sales GROUP BY region ORDER BY region"},
		{SQL: "SELECT region, amount FROM sales WHERE amount > 250 ORDER BY amount DESC LIMIT 5"},
		{SQL: "SELECT AVG(amount) FROM sales", Mode: "approx"},
	} {
		got, err := cl.Query(ctx, id, q)
		if err != nil {
			t.Fatalf("%s: %v", q.SQL, err)
		}
		if got.Degraded || got.Coverage != 1 {
			t.Fatalf("%s: healthy fleet answered degraded=%v coverage=%v", q.SQL, got.Degraded, got.Coverage)
		}
		if q.Mode == "approx" {
			continue // estimates are sample-dependent; parity lives in internal/shard
		}
		want, err := ocl.Query(ctx, oid, q)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, q.SQL, got, want)
	}
}

// TestServerShardDegradation: after a worker dies, queries still answer
// — marked degraded with fractional coverage — and degraded results are
// never cached, so a later query cannot be served a stale partial once
// the fleet heals.
func TestServerShardDegradation(t *testing.T) {
	_, cl, fleet, _ := newShardedService(t, 12_000, 3)
	ctx := context.Background()
	id, err := cl.CreateSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.EndSession(ctx, id)

	snap := fleet.Coord.Snapshot()
	fleet.KillShard(2)
	req := QueryRequest{SQL: "SELECT COUNT(*) FROM sales"}
	res, err := cl.Query(ctx, id, req)
	if err != nil {
		t.Fatalf("degraded query must still answer: %v", err)
	}
	if !res.Degraded || res.Coverage <= 0 || res.Coverage >= 1 {
		t.Fatalf("want degraded fractional coverage, got degraded=%v coverage=%v", res.Degraded, res.Coverage)
	}
	survivors := snap.Rows - snap.Shards[2].Rows
	wantCov := float64(survivors) / float64(snap.Rows)
	if res.Coverage != wantCov {
		t.Fatalf("coverage %v, want surviving fraction %v", res.Coverage, wantCov)
	}
	// Re-issuing must recompute (degraded answers are uncacheable), and
	// the stats must count both degraded queries.
	if res2, err := cl.Query(ctx, id, req); err != nil || !res2.Degraded {
		t.Fatalf("second degraded query: res=%+v err=%v", res2, err)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries.Degraded < 2 {
		t.Fatalf("degraded counter %d, want >= 2", st.Queries.Degraded)
	}
	if st.Shard == nil || st.Shard.Outcomes["degraded"] < 2 {
		t.Fatalf("shard snapshot missing degraded outcomes: %+v", st.Shard)
	}
}

// TestServerShardMetrics: the coordinator's per-shard series appear in
// /metrics with shard labels, the exposition stays parseable, and the
// numbers agree with /admin/stats.
func TestServerShardMetrics(t *testing.T) {
	ts, cl, _, _ := newShardedService(t, 10_000, 3)
	ctx := context.Background()
	id, err := cl.CreateSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.EndSession(ctx, id)
	for _, sql := range []string{
		"SELECT COUNT(*) FROM sales",
		"SELECT region, SUM(amount) FROM sales GROUP BY region",
	} {
		if _, err := cl.Query(ctx, id, QueryRequest{SQL: sql}); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	expo := sb.String()
	if err := metrics.ValidateExposition(strings.NewReader(expo)); err != nil {
		t.Fatalf("exposition invalid with shard series: %v", err)
	}
	for _, want := range []string{
		`dex_shard_rows{shard="0"}`,
		`dex_shard_rows{shard="2"}`,
		`dex_shard_rpc_total{shard="1"}`,
		`dex_shard_queries_total{outcome="ok"}`,
		"dex_shard_gather_duration_seconds_count",
		`dex_shard_rpc_duration_seconds_bucket{shard="0",le="+Inf"}`,
		`dex_shard_state{shard="0"} 0`,
		"dex_shard_coverage 1",
		`dex_shard_heals_total{kind="restage"}`,
		`dex_shard_worker_rows_scanned_total{shard="0"}`,
		`dex_shard_worker_zone_skipped_total{shard="2"}`,
		`dex_shard_crack_pieces{shard="1"}`,
		`dex_shard_cracks_total{shard="0"}`,
	} {
		if !strings.Contains(expo, want) {
			t.Fatalf("exposition missing %q", want)
		}
	}

	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shard == nil || len(st.Shard.Shards) != 3 {
		t.Fatalf("stats shard section: %+v", st.Shard)
	}
	var placed int64
	for _, s := range st.Shard.Shards {
		placed += s.Rows
		if s.Queries == 0 {
			t.Fatalf("shard %d answered no RPCs: %+v", s.Shard, s)
		}
		if s.State != "healthy" {
			t.Fatalf("shard %d state %q in a healthy fleet", s.Shard, s.State)
		}
		if s.RowsScanned == 0 {
			t.Fatalf("shard %d reports no worker-local scans: %+v", s.Shard, s)
		}
	}
	if st.Shard.Coverage != 1 {
		t.Fatalf("healthy fleet coverage %v, want 1", st.Shard.Coverage)
	}
	if placed != st.Shard.Rows || placed != 10_000 {
		t.Fatalf("placement accounts for %d of %d rows", placed, st.Shard.Rows)
	}
}

// TestServerShardFallback: queries the coordinator cannot scatter (other
// tables, joins) fall back to the local engine with no coverage claim.
func TestServerShardFallback(t *testing.T) {
	fleet, err := shard.StartLocalFleet(context.Background(), shard.FleetConfig{
		Shards: 2, Rows: 5_000, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fleet.Close)

	eng := core.New(core.Options{Seed: 1})
	sales, err := workload.Sales(rand.New(rand.NewSource(42)), 5_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(sales); err != nil {
		t.Fatal(err)
	}
	other, err := storage.FromColumns("regions", storage.Schema{
		{Name: "region", Type: storage.TString},
		{Name: "pop", Type: storage.TInt},
	}, []storage.Column{
		storage.NewStringColumn([]string{"east", "west"}),
		storage.NewIntColumn([]int64{10, 20}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(other); err != nil {
		t.Fatal(err)
	}
	srv := New(eng, Config{Shard: fleet.Coord})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	cl := NewClient(ts.URL)
	ctx := context.Background()
	id, err := cl.CreateSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.EndSession(ctx, id)

	res, err := cl.Query(ctx, id, QueryRequest{SQL: "SELECT COUNT(*) FROM regions"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage != 0 {
		t.Fatalf("local query must not claim distributed coverage: %v", res.Coverage)
	}
	if fmt.Sprint(res.Rows[0][0]) != "2" {
		t.Fatalf("local table answer: %v", res.Rows)
	}
}
