package server

import (
	"sync"
	"testing"
	"time"
)

// TestStatsConcurrentWriters hammers observe/count from many goroutines
// while snapshots are taken — the race detector proves the locking, the
// final snapshot proves no observation was lost.
func TestStatsConcurrentWriters(t *testing.T) {
	st := newStats()
	const (
		writers = 8
		perW    = 500
	)
	modes := []string{"exact", "cracked", "approx", statCached}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				mode := modes[(w+i)%len(modes)]
				st.observe(mode, time.Duration(i)*time.Microsecond, mode == statCached)
				switch i % 3 {
				case 0:
					st.count(&st.failed)
				case 1:
					st.count(&st.cancelledInternal)
				default:
					st.count(&st.sessionsCreated)
				}
			}
		}(w)
	}
	// Concurrent readers: snapshots and histogram clones must be
	// internally consistent at every point, never torn.
	done := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			snap := st.snapshot(0, nil, 0, 0)
			var total int64
			for _, m := range snap.Modes {
				total += m.Count
			}
			if total != snap.Queries.Completed {
				t.Errorf("torn snapshot: mode counts %d != completed %d", total, snap.Queries.Completed)
				return
			}
			for _, h := range st.histograms() {
				if h.N() < 0 {
					t.Error("negative histogram count")
					return
				}
			}
		}
	}()
	wg.Wait()
	close(done)
	rg.Wait()

	snap := st.snapshot(0, nil, 0, 0)
	want := int64(writers * perW)
	if snap.Queries.Completed != want {
		t.Fatalf("completed = %d, want %d", snap.Queries.Completed, want)
	}
	var modeTotal int64
	for _, m := range snap.Modes {
		modeTotal += m.Count
	}
	if modeTotal != want {
		t.Fatalf("mode observations = %d, want %d", modeTotal, want)
	}
	if snap.Queries.CacheHits != want/int64(len(modes)) {
		t.Fatalf("cache hits = %d, want %d", snap.Queries.CacheHits, want/int64(len(modes)))
	}
	counters := snap.Queries.Failed + snap.Queries.CancelledInternal + snap.Sessions.Created
	if counters != want {
		t.Fatalf("counter total = %d, want %d", counters, want)
	}
}
