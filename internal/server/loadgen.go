package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"dex/internal/metrics"
	"dex/internal/workload"
)

// LoadConfig parameterizes one closed-loop load run against a dexd
// instance: Clients concurrent synthetic explorers, each replaying a
// seeded exploration session with think time between queries — the
// IDEBench shape of interactive workloads, where a user reads the last
// result before issuing the next query.
type LoadConfig struct {
	Clients          int
	QueriesPerClient int
	// Think is the pause between a response and the next query (0 = none:
	// a saturating closed loop).
	Think time.Duration
	// Seed makes the query streams reproducible; client i uses Seed+i.
	Seed int64
	// Mode is the execution mode every query requests ("" = exact).
	Mode string
	// Timeout is the per-query deadline sent as timeout_ms (0 = server
	// default).
	Timeout time.Duration
	// MaxRetries bounds how often a load-shed (429/503) query is retried
	// after the server's Retry-After hint before being dropped (default 3).
	MaxRetries int
}

// LoadReport is the outcome of one load run.
type LoadReport struct {
	Clients  int   `json:"clients"`
	Queries  int64 `json:"queries"`
	Rejected int64 `json:"rejected"` // load-shed responses (pre-retry)
	Dropped  int64 `json:"dropped"`  // queries abandoned after MaxRetries
	// Failed counts queries the server answered with a non-admission error
	// (bad SQL, unknown session, internal failure) — something is wrong
	// with the workload or the server, and retrying would not help.
	Failed int64 `json:"failed"`
	// Transport counts queries that never got an HTTP response: connection
	// refused, reset, EOF mid-body. Separated from Failed because the
	// remedies differ — transport errors mean the server is unreachable or
	// flapping, not that the queries are wrong.
	Transport int64 `json:"transport_errors"`
	// Degraded counts completed queries whose answer was an approximate
	// stand-in for an over-deadline exact result (degraded:true on the wire).
	Degraded  int64   `json:"degraded"`
	WallS     float64 `json:"wall_s"`
	Qps       float64 `json:"qps"`
	MeanMS    float64 `json:"mean_ms"`
	P50MS     float64 `json:"p50_ms"`
	P95MS     float64 `json:"p95_ms"`
	P99MS     float64 `json:"p99_ms"`
	MaxMS     float64 `json:"max_ms"`
	CacheHits int64   `json:"cache_hits"`
}

// RunLoad drives cfg.Clients concurrent sessions against the service and
// reports completed-query throughput and client-observed latency quantiles.
// Latency is measured around the whole HTTP round trip — what the user
// feels — and only successful queries are sampled.
func RunLoad(ctx context.Context, cl *Client, cfg LoadConfig) (*LoadReport, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.QueriesPerClient <= 0 {
		cfg.QueriesPerClient = 20
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 3
	}

	type clientResult struct {
		hist      *metrics.LogHist
		completed int64
		rejected  int64
		dropped   int64
		failed    int64
		transport int64
		degraded  int64
		cacheHits int64
		err       error
	}
	results := make([]clientResult, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			res := &results[c]
			res.hist = metrics.NewLogHist()
			id, err := cl.CreateSession(ctx)
			if err != nil {
				res.err = fmt.Errorf("client %d: create session: %w", c, err)
				return
			}
			defer cl.EndSession(ctx, id)
			stmts := workload.ExplorationSQL(rand.New(rand.NewSource(cfg.Seed+int64(c))), cfg.QueriesPerClient)
			for _, sql := range stmts {
				req := QueryRequest{SQL: sql, Mode: cfg.Mode, TimeoutMS: cfg.Timeout.Milliseconds()}
				var rej *RejectedError
				retries := 0
			attempt:
				t0 := time.Now()
				out, err := cl.Query(ctx, id, req)
				switch {
				case err == nil:
					res.hist.Add(time.Since(t0).Seconds())
					res.completed++
					if out.Cached {
						res.cacheHits++
					}
					if out.Degraded {
						res.degraded++
					}
				case errors.As(err, &rej):
					// Well-behaved client: honor Retry-After, retry a
					// bounded number of times, then give up on this query.
					res.rejected++
					if retries++; retries <= cfg.MaxRetries {
						backoff := rej.RetryAfter
						if backoff <= 0 {
							backoff = 50 * time.Millisecond
						}
						select {
						case <-time.After(backoff):
						case <-ctx.Done():
							res.err = ctx.Err()
							return
						}
						goto attempt
					}
					res.dropped++
				case ctx.Err() != nil:
					res.err = ctx.Err()
					return
				case IsTransport(err):
					// The server never answered. Retrying is the client
					// retry policy's job (if one is set, it already gave
					// up); here we just refuse to miscount an unreachable
					// server as a workload failure.
					res.transport++
				default:
					res.failed++
				}
				if cfg.Think > 0 {
					select {
					case <-time.After(cfg.Think):
					case <-ctx.Done():
						res.err = ctx.Err()
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	merged := metrics.NewLogHist()
	rep := &LoadReport{Clients: cfg.Clients, WallS: wall.Seconds()}
	for i := range results {
		r := &results[i]
		if r.err != nil {
			return nil, r.err
		}
		merged.Merge(r.hist)
		rep.Queries += r.completed
		rep.Rejected += r.rejected
		rep.Dropped += r.dropped
		rep.Failed += r.failed
		rep.Transport += r.transport
		rep.Degraded += r.degraded
		rep.CacheHits += r.cacheHits
	}
	if wall > 0 {
		rep.Qps = float64(rep.Queries) / wall.Seconds()
	}
	rep.MeanMS = merged.Mean() * 1e3
	rep.P50MS = merged.Quantile(0.5) * 1e3
	rep.P95MS = merged.Quantile(0.95) * 1e3
	rep.P99MS = merged.Quantile(0.99) * 1e3
	rep.MaxMS = merged.Max() * 1e3
	return rep, nil
}
