package server

import (
	"sync"
	"time"

	"dex/internal/cache"
	"dex/internal/metrics"
	"dex/internal/shard"
)

// stats aggregates the service's observability counters: per-mode latency
// histograms (built on metrics.LogHist), query outcome counters, and
// session gauges. The admission gauges and the engine's rows-scanned
// counter live elsewhere and are folded in at snapshot time.
type stats struct {
	mu        sync.Mutex
	perMode   map[string]*metrics.LogHist
	completed int64
	cacheHits int64
	cancelled int64
	// cancelledInternal counts context.Canceled surfacing with the client
	// still connected and no deadline fired — an engine bug, not a user
	// action, reported as 500 and tracked apart from benign cancels.
	cancelledInternal int64
	timedOut          int64
	failed            int64
	degraded          int64 // deadline overruns answered approximately
	injected          int64 // failures injected by an armed failpoint
	rejBusy           int64 // 429: queue full or queue timeout
	rejDrain          int64 // 503: draining

	sessionsCreated int64
	sessionsEnded   int64
}

// statCached is the perMode series cache hits are observed under: hits
// record the real lookup latency there, keeping the engine-mode
// histograms (exact, cracked, ...) pure engine executions.
const statCached = "cached"

func newStats() *stats {
	return &stats{perMode: map[string]*metrics.LogHist{}}
}

// observe records one completed query's latency under its mode.
func (s *stats) observe(mode string, d time.Duration, cached bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.perMode[mode]
	if !ok {
		h = metrics.NewLogHist()
		s.perMode[mode] = h
	}
	h.Add(d.Seconds())
	s.completed++
	if cached {
		s.cacheHits++
	}
}

func (s *stats) count(field *int64) {
	s.mu.Lock()
	*field++
	s.mu.Unlock()
}

// histograms returns deep copies of the per-mode latency histograms, so
// the /metrics renderer can walk full bucket arrays outside the lock.
func (s *stats) histograms() map[string]*metrics.LogHist {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]*metrics.LogHist, len(s.perMode))
	for mode, h := range s.perMode {
		out[mode] = h.Clone()
	}
	return out
}

// ModeStats is the latency summary of one execution mode in a snapshot.
type ModeStats struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// QueryStats groups the query outcome counters in a snapshot.
type QueryStats struct {
	Completed int64 `json:"completed"`
	CacheHits int64 `json:"cache_hits"`
	Cancelled int64 `json:"cancelled"`
	// CancelledInternal counts cancellations that had no external cause
	// (client connected, no deadline) — server-side failures, see stats.
	CancelledInternal int64 `json:"cancelled_internal"`
	TimedOut          int64 `json:"timed_out"`
	Failed            int64 `json:"failed"`
	Degraded          int64 `json:"degraded"`
	Injected          int64 `json:"injected"`
	RejectedBusy      int64 `json:"rejected_busy"`
	RejectedDrain     int64 `json:"rejected_drain"`
}

// SessionStats groups the session gauges in a snapshot.
type SessionStats struct {
	Active  int   `json:"active"`
	Created int64 `json:"created"`
	Ended   int64 `json:"ended"`
}

// CacheStats mirrors the result cache counters in a snapshot.
type CacheStats struct {
	Enabled   bool    `json:"enabled"`
	Entries   int     `json:"entries"`
	UsedRows  int64   `json:"used_rows"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

// StatsSnapshot is the /admin/stats payload: a point-in-time view of the
// service. RowsScanned advances live while queries run, so two snapshots
// taken apart bound the work done in between — the signal the cancellation
// tests use to prove a disconnected query actually stopped.
type StatsSnapshot struct {
	Active      int   `json:"active"`
	Queued      int   `json:"queued"`
	Draining    bool  `json:"draining"`
	RowsScanned int64 `json:"rows_scanned"`
	// AggKernelHits / AggKernelFallbacks split aggregate queries by whether
	// the typed accumulation kernels answered them or they fell back to the
	// generic path (multi-column groups, wide dicts, string agg inputs).
	AggKernelHits      int64                `json:"agg_kernel_hits"`
	AggKernelFallbacks int64                `json:"agg_kernel_fallbacks"`
	Queries            QueryStats           `json:"queries"`
	Sessions           SessionStats         `json:"sessions"`
	Cache              CacheStats           `json:"cache"`
	Modes              map[string]ModeStats `json:"modes"`
	// Shard is the coordinator's fleet view; absent on non-coordinators.
	Shard *shard.Snapshot `json:"shard,omitempty"`
}

// snapshot renders the counters; the caller fills the admission gauges and
// engine counter.
func (s *stats) snapshot(activeSessions int, cacheStats *cache.Stats, cacheEntries int, cacheUsed int64) StatsSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := StatsSnapshot{
		Queries: QueryStats{
			Completed:         s.completed,
			CacheHits:         s.cacheHits,
			Cancelled:         s.cancelled,
			CancelledInternal: s.cancelledInternal,
			TimedOut:          s.timedOut,
			Failed:            s.failed,
			Degraded:          s.degraded,
			Injected:          s.injected,
			RejectedBusy:      s.rejBusy,
			RejectedDrain:     s.rejDrain,
		},
		Sessions: SessionStats{
			Active:  activeSessions,
			Created: s.sessionsCreated,
			Ended:   s.sessionsEnded,
		},
		Modes: make(map[string]ModeStats, len(s.perMode)),
	}
	for mode, h := range s.perMode {
		snap.Modes[mode] = ModeStats{
			Count:  h.N(),
			MeanMS: h.Mean() * 1e3,
			P50MS:  h.Quantile(0.5) * 1e3,
			P95MS:  h.Quantile(0.95) * 1e3,
			P99MS:  h.Quantile(0.99) * 1e3,
			MaxMS:  h.Max() * 1e3,
		}
	}
	if cacheStats != nil {
		snap.Cache = CacheStats{
			Enabled:   true,
			Entries:   cacheEntries,
			UsedRows:  cacheUsed,
			Hits:      cacheStats.Hits,
			Misses:    cacheStats.Misses,
			Evictions: cacheStats.Evictions,
			HitRate:   cacheStats.HitRate(),
		}
	}
	return snap
}
