package server

import (
	"bytes"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"dex/internal/metrics"
	"dex/internal/shard"
)

// handleMetrics renders the service counters and latency histograms in
// Prometheus text exposition format (version 0.0.4). The numbers are the
// same ones /admin/stats serves — one source of truth, two renderings:
// the JSON snapshot summarizes (quantiles), the exposition is cumulative
// (`_bucket`/`_sum`/`_count`) so a scraper can aggregate across scrapes
// and instances.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.Stats()
	hists := s.st.histograms()
	var b bytes.Buffer
	writeProm(&b, snap, hists)
	if s.cfg.Shard != nil {
		writeShardProm(&b, snap.Shard, s.cfg.Shard)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(b.Bytes())
}

// writeProm renders one exposition. Metric names follow the Prometheus
// conventions: `dex_` prefix, `_total` suffix on counters, base units
// (seconds, rows) in the name.
func writeProm(b *bytes.Buffer, snap StatsSnapshot, hists map[string]*metrics.LogHist) {
	head := func(name, help, typ string) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	head("dex_queries_total", "Query outcomes since process start (completed includes cache hits and degraded answers).", "counter")
	for _, oc := range []struct {
		name string
		v    int64
	}{
		{"completed", snap.Queries.Completed},
		{"cache_hit", snap.Queries.CacheHits},
		{"cancelled", snap.Queries.Cancelled},
		{"cancelled_internal", snap.Queries.CancelledInternal},
		{"timed_out", snap.Queries.TimedOut},
		{"failed", snap.Queries.Failed},
		{"degraded", snap.Queries.Degraded},
		{"injected", snap.Queries.Injected},
		{"rejected_busy", snap.Queries.RejectedBusy},
		{"rejected_drain", snap.Queries.RejectedDrain},
	} {
		fmt.Fprintf(b, "dex_queries_total{outcome=%q} %d\n", oc.name, oc.v)
	}

	head("dex_rows_scanned_total", "Rows visited by predicate evaluation and aggregate accumulation.", "counter")
	fmt.Fprintf(b, "dex_rows_scanned_total %d\n", snap.RowsScanned)

	head("dex_agg_kernel_used_total", "Aggregate queries answered by the typed accumulation kernels.", "counter")
	fmt.Fprintf(b, "dex_agg_kernel_used_total %d\n", snap.AggKernelHits)
	head("dex_agg_kernel_fallback_total", "Aggregate queries that requested agg kernels but fell back to generic accumulation.", "counter")
	fmt.Fprintf(b, "dex_agg_kernel_fallback_total %d\n", snap.AggKernelFallbacks)

	head("dex_sessions_created_total", "Sessions created.", "counter")
	fmt.Fprintf(b, "dex_sessions_created_total %d\n", snap.Sessions.Created)
	head("dex_sessions_ended_total", "Sessions ended.", "counter")
	fmt.Fprintf(b, "dex_sessions_ended_total %d\n", snap.Sessions.Ended)
	head("dex_sessions_active", "Live sessions.", "gauge")
	fmt.Fprintf(b, "dex_sessions_active %d\n", snap.Sessions.Active)

	head("dex_queries_in_flight", "Queries currently holding an execution slot.", "gauge")
	fmt.Fprintf(b, "dex_queries_in_flight %d\n", snap.Active)
	head("dex_queries_queued", "Queries waiting for an execution slot.", "gauge")
	fmt.Fprintf(b, "dex_queries_queued %d\n", snap.Queued)
	head("dex_draining", "1 while graceful drain is in progress.", "gauge")
	fmt.Fprintf(b, "dex_draining %d\n", b2i(snap.Draining))

	head("dex_cache_enabled", "1 when the shared result cache is configured.", "gauge")
	fmt.Fprintf(b, "dex_cache_enabled %d\n", b2i(snap.Cache.Enabled))
	if snap.Cache.Enabled {
		head("dex_cache_entries", "Entries in the result cache.", "gauge")
		fmt.Fprintf(b, "dex_cache_entries %d\n", snap.Cache.Entries)
		head("dex_cache_used_rows", "Rows held by the result cache.", "gauge")
		fmt.Fprintf(b, "dex_cache_used_rows %d\n", snap.Cache.UsedRows)
		head("dex_cache_hits_total", "Result cache hits.", "counter")
		fmt.Fprintf(b, "dex_cache_hits_total %d\n", snap.Cache.Hits)
		head("dex_cache_misses_total", "Result cache misses.", "counter")
		fmt.Fprintf(b, "dex_cache_misses_total %d\n", snap.Cache.Misses)
		head("dex_cache_evictions_total", "Result cache evictions.", "counter")
		fmt.Fprintf(b, "dex_cache_evictions_total %d\n", snap.Cache.Evictions)
	}

	if len(hists) == 0 {
		return
	}
	modes := make([]string, 0, len(hists))
	for m := range hists {
		modes = append(modes, m)
	}
	sort.Strings(modes)
	head("dex_query_duration_seconds",
		"Query latency by execution mode; the cached series is result-cache lookups, engine modes hold engine executions only.",
		"histogram")
	for _, m := range modes {
		h := hists[m]
		for _, bk := range h.CumBuckets() {
			fmt.Fprintf(b, "dex_query_duration_seconds_bucket{mode=%q,le=%q} %d\n",
				m, fmtFloat(bk.UpperBound), bk.Count)
		}
		fmt.Fprintf(b, "dex_query_duration_seconds_bucket{mode=%q,le=\"+Inf\"} %d\n", m, h.N())
		fmt.Fprintf(b, "dex_query_duration_seconds_sum{mode=%q} %s\n", m, fmtFloat(h.Sum()))
		fmt.Fprintf(b, "dex_query_duration_seconds_count{mode=%q} %d\n", m, h.N())
	}
}

// writeShardProm renders the coordinator's per-shard families: rows
// placed, healing state and heal counters, worker-local scan/zone/crack
// counters, query/error/retry counters and RPC latency histograms
// labelled by shard id, plus the fleet-level coverage gauge, gather
// (merge) histogram and distributed-query outcome counters.
func writeShardProm(b *bytes.Buffer, snap *shard.Snapshot, coord *shard.Coordinator) {
	head := func(name, help, typ string) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	histogram := func(name string, labels string, h *metrics.LogHist) {
		sep := ""
		if labels != "" {
			sep = ","
		}
		for _, bk := range h.CumBuckets() {
			fmt.Fprintf(b, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, fmtFloat(bk.UpperBound), bk.Count)
		}
		fmt.Fprintf(b, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.N())
		if labels == "" {
			fmt.Fprintf(b, "%s_sum %s\n%s_count %d\n", name, fmtFloat(h.Sum()), name, h.N())
		} else {
			fmt.Fprintf(b, "%s_sum{%s} %s\n%s_count{%s} %d\n", name, labels, fmtFloat(h.Sum()), name, labels, h.N())
		}
	}

	head("dex_shard_rows", "Rows placed on each shard by the partitioner.", "gauge")
	for _, sh := range snap.Shards {
		fmt.Fprintf(b, "dex_shard_rows{shard=\"%d\"} %d\n", sh.Shard, sh.Rows)
	}
	head("dex_shard_state", "Healing state per shard: 0 healthy, 1 lost, 2 restaging, 3 repartitioned.", "gauge")
	for _, sh := range snap.Shards {
		fmt.Fprintf(b, "dex_shard_state{shard=\"%d\"} %d\n", sh.Shard, stateOrdinal(sh.State))
	}
	head("dex_shard_coverage", "Fraction of placed rows currently on healthy shards (1 = full answers).", "gauge")
	fmt.Fprintf(b, "dex_shard_coverage %s\n", fmtFloat(snap.Coverage))
	head("dex_shard_heals_total", "Completed heal operations by kind.", "counter")
	for _, kind := range []string{"reattach", "restage", "repartition", "rejoin"} {
		fmt.Fprintf(b, "dex_shard_heals_total{kind=%q} %d\n", kind, snap.Heals[kind])
	}
	head("dex_shard_worker_rows_scanned_total", "Rows visited by predicate evaluation on each worker (last probe).", "counter")
	for _, sh := range snap.Shards {
		fmt.Fprintf(b, "dex_shard_worker_rows_scanned_total{shard=\"%d\"} %d\n", sh.Shard, sh.RowsScanned)
	}
	head("dex_shard_worker_zone_skipped_total", "Rows skipped by zone-map pruning on each worker (last probe).", "counter")
	for _, sh := range snap.Shards {
		fmt.Fprintf(b, "dex_shard_worker_zone_skipped_total{shard=\"%d\"} %d\n", sh.Shard, sh.ZoneSkipped)
	}
	head("dex_shard_crack_pieces", "Crack-index pieces held by each worker (last probe).", "gauge")
	for _, sh := range snap.Shards {
		fmt.Fprintf(b, "dex_shard_crack_pieces{shard=\"%d\"} %d\n", sh.Shard, sh.CrackPieces)
	}
	head("dex_shard_cracks_total", "Crack operations performed by each worker (last probe).", "counter")
	for _, sh := range snap.Shards {
		fmt.Fprintf(b, "dex_shard_cracks_total{shard=\"%d\"} %d\n", sh.Shard, sh.Cracks)
	}
	head("dex_shard_rpc_total", "Per-shard query RPC attempts.", "counter")
	for _, sh := range snap.Shards {
		fmt.Fprintf(b, "dex_shard_rpc_total{shard=\"%d\"} %d\n", sh.Shard, sh.Queries)
	}
	head("dex_shard_errors_total", "Per-shard failed query RPC attempts (before retry).", "counter")
	for _, sh := range snap.Shards {
		fmt.Fprintf(b, "dex_shard_errors_total{shard=\"%d\"} %d\n", sh.Shard, sh.Errors)
	}
	head("dex_shard_retries_total", "Per-shard query RPC retries.", "counter")
	for _, sh := range snap.Shards {
		fmt.Fprintf(b, "dex_shard_retries_total{shard=\"%d\"} %d\n", sh.Shard, sh.Retries)
	}
	head("dex_shard_queries_total", "Distributed query outcomes at the coordinator.", "counter")
	for _, oc := range []string{"ok", "degraded", "failed"} {
		fmt.Fprintf(b, "dex_shard_queries_total{outcome=%q} %d\n", oc, snap.Outcomes[oc])
	}

	rpc, gather := coord.Histograms()
	head("dex_shard_rpc_duration_seconds", "Scatter RPC latency per shard (one observation per attempt).", "histogram")
	for i, h := range rpc {
		histogram("dex_shard_rpc_duration_seconds", fmt.Sprintf("shard=\"%d\"", i), h)
	}
	head("dex_shard_gather_duration_seconds", "Partial-merge (gather) latency at the coordinator.", "histogram")
	histogram("dex_shard_gather_duration_seconds", "", gather)
}

// stateOrdinal maps the coordinator's shard-state names onto stable
// numeric levels for the dex_shard_state gauge.
func stateOrdinal(state string) int {
	switch state {
	case "lost":
		return 1
	case "restaging":
		return 2
	case "repartitioned":
		return 3
	default: // healthy (and any future state defaults to healthy/0)
		return 0
	}
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}
