package server

import (
	"bufio"
	"context"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"dex/internal/exec"
	"dex/internal/metrics"
)

// scrape runs a mixed workload and returns the exposition plus the
// matching /admin/stats snapshot.
func scrape(t *testing.T) (string, StatsSnapshot) {
	t.Helper()
	ts, cl, srv, _ := newTestService(t, 20_000, Config{CacheRows: 1 << 20}, exec.ExecOptions{Parallelism: 1, AggKernels: true})
	ctx := context.Background()
	id, err := cl.CreateSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.EndSession(ctx, id)

	queries := []QueryRequest{
		{SQL: "SELECT COUNT(*) FROM sales"},
		{SQL: "SELECT COUNT(*) FROM sales"}, // cache hit
		{SQL: "SELECT region, AVG(amount) FROM sales GROUP BY region", Mode: "cracked"},
		{SQL: "SELECT AVG(amount) FROM sales", Mode: "approx"},
		{SQL: "SELECT SUM(amount) FROM sales", Mode: "online"},
	}
	for _, q := range queries {
		if _, err := cl.Query(ctx, id, q); err != nil {
			t.Fatalf("%s (%s): %v", q.SQL, q.Mode, err)
		}
	}
	// One failed query so error counters are exercised too.
	if _, err := cl.Query(ctx, id, QueryRequest{SQL: "SELECT nope FROM missing"}); err == nil {
		t.Fatal("query against missing table succeeded")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return sb.String(), srv.Stats()
}

// sampleValue extracts one sample's value from an exposition.
func sampleValue(t *testing.T, expo, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(expo, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if rest == "" || (rest[0] != ' ' && rest[0] != '{') {
			continue
		}
		f := strings.Fields(line)
		v, err := strconv.ParseFloat(f[len(f)-1], 64)
		if err != nil {
			t.Fatalf("bad sample %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("no sample %q in exposition", name)
	return 0
}

// TestMetricsExpositionValid checks /metrics serves structurally valid
// Prometheus text exposition: parseable samples, TYPE declarations,
// ascending le bounds with monotone cumulative counts, +Inf == _count.
func TestMetricsExpositionValid(t *testing.T) {
	expo, _ := scrape(t)
	if err := metrics.ValidateExposition(strings.NewReader(expo)); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, expo)
	}
}

// TestMetricsConsistentWithStats cross-checks the exposition against the
// /admin/stats snapshot: same counters, same histogram counts, and a
// _sum consistent with the snapshot's mean.
func TestMetricsConsistentWithStats(t *testing.T) {
	expo, snap := scrape(t)

	counters := map[string]int64{
		`dex_queries_total{outcome="completed"}`:          snap.Queries.Completed,
		`dex_queries_total{outcome="cache_hit"}`:          snap.Queries.CacheHits,
		`dex_queries_total{outcome="failed"}`:             snap.Queries.Failed,
		`dex_queries_total{outcome="cancelled_internal"}`: snap.Queries.CancelledInternal,
		"dex_sessions_created_total":                      snap.Sessions.Created,
		"dex_rows_scanned_total":                          snap.RowsScanned,
		"dex_agg_kernel_used_total":                       snap.AggKernelHits,
		"dex_agg_kernel_fallback_total":                   snap.AggKernelFallbacks,
		"dex_cache_hits_total":                            snap.Cache.Hits,
		"dex_cache_misses_total":                          snap.Cache.Misses,
	}
	for name, want := range counters {
		if got := sampleValue(t, expo, name); int64(got) != want {
			t.Errorf("%s = %v, exposition disagrees with /admin/stats %d", name, got, want)
		}
	}

	for mode, ms := range snap.Modes {
		cnt := sampleValue(t, expo, fmt.Sprintf("dex_query_duration_seconds_count{mode=%q}", mode))
		if int64(cnt) != ms.Count {
			t.Errorf("mode %s: _count %v != snapshot count %d", mode, cnt, ms.Count)
		}
		sum := sampleValue(t, expo, fmt.Sprintf("dex_query_duration_seconds_sum{mode=%q}", mode))
		// _sum (seconds) must reproduce the snapshot's exact mean.
		wantSum := ms.MeanMS / 1e3 * float64(ms.Count)
		if math.Abs(sum-wantSum) > 1e-9+1e-6*wantSum {
			t.Errorf("mode %s: _sum %v, want %v (mean %.6f ms x %d)", mode, sum, wantSum, ms.MeanMS, ms.Count)
		}
	}

	// The cached series must be present and separate from exact.
	if !strings.Contains(expo, `dex_query_duration_seconds_count{mode="cached"}`) {
		t.Error("no cached histogram series in exposition")
	}

	// The workload's exact-mode aggregates run with agg kernels on, so the
	// used counter must have moved — the series is live, not just present.
	if snap.AggKernelHits == 0 {
		t.Error("agg_kernel_hits still 0 after an aggregate workload with AggKernels on")
	}
}
