package server

import (
	"context"
	"testing"
	"time"

	"dex/internal/exec"
	"dex/internal/fault"
	"dex/internal/trace"
)

// stageNames flattens a span tree into its stage names.
func stageNames(sp *trace.SpanJSON) []string {
	if sp == nil {
		return nil
	}
	out := []string{sp.Name}
	for _, c := range sp.Children {
		out = append(out, stageNames(c)...)
	}
	return out
}

func hasStage(sp *trace.SpanJSON, name string) bool {
	for _, n := range stageNames(sp) {
		if n == name {
			return true
		}
	}
	return false
}

// TestServerTraceSpanTree is the acceptance check for the tracing layer:
// a query with "trace": true returns a span tree whose direct stage
// durations sum to within 10% of the traced total — the stages account
// for the query, they are not decoration.
func TestServerTraceSpanTree(t *testing.T) {
	_, cl, _, _ := newTestService(t, 200_000, Config{}, exec.ExecOptions{Parallelism: 2})
	ctx := context.Background()
	id, err := cl.CreateSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.EndSession(ctx, id)

	res, err := cl.Query(ctx, id, QueryRequest{
		SQL:   "SELECT region, SUM(amount) FROM sales WHERE amount > 10 GROUP BY region",
		Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	root := res.Trace
	if root == nil {
		t.Fatal("trace:true returned no span tree")
	}
	if root.Name != "query" {
		t.Fatalf("root span %q, want query", root.Name)
	}
	for _, want := range []string{"admission", "parse", "plan", "scan", "group_by", "finish"} {
		if !hasStage(root, want) {
			t.Fatalf("span tree missing stage %q; have %v", want, stageNames(root))
		}
	}
	var sum float64
	for _, c := range root.Children {
		sum += c.DurationMS
	}
	if root.DurationMS <= 0 {
		t.Fatalf("root duration %v ms", root.DurationMS)
	}
	// Direct children must cover the root within 10% (small gaps between
	// stages are the only slack), and never exceed it.
	if sum < 0.9*root.DurationMS {
		t.Fatalf("stage durations sum to %.3fms of a %.3fms total (< 90%%); tree: %+v",
			sum, root.DurationMS, root)
	}
	if sum > root.DurationMS*1.001 {
		t.Fatalf("stage durations %.3fms exceed the root total %.3fms", sum, root.DurationMS)
	}

	// Span attrs carry the scan accounting.
	var scan *trace.SpanJSON
	for _, c := range root.Children {
		if c.Name == "scan" {
			scan = c
		}
	}
	if scan == nil || scan.Attrs["rows_in"] == nil || scan.Attrs["morsels"] == nil {
		t.Fatalf("scan span missing accounting attrs: %+v", scan)
	}

	// An untraced query must not carry a trace.
	res, err = cl.Query(ctx, id, QueryRequest{SQL: "SELECT COUNT(*) FROM sales"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("untraced query returned a span tree")
	}
}

// TestServerTraceModes checks each execution mode contributes its
// mode-specific stage span.
func TestServerTraceModes(t *testing.T) {
	_, cl, _, _ := newTestService(t, 50_000, Config{}, exec.ExecOptions{Parallelism: 1})
	ctx := context.Background()
	id, err := cl.CreateSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.EndSession(ctx, id)

	cases := []struct {
		mode  string
		sql   string
		stage string
	}{
		{"cracked", "SELECT COUNT(*) FROM sales WHERE amount > 50", "crack"},
		{"approx", "SELECT AVG(amount) FROM sales", "sample"},
		{"online", "SELECT AVG(amount) FROM sales", "online"},
	}
	for _, tc := range cases {
		res, err := cl.Query(ctx, id, QueryRequest{SQL: tc.sql, Mode: tc.mode, Trace: true})
		if err != nil {
			t.Fatalf("%s: %v", tc.mode, err)
		}
		if res.Trace == nil || !hasStage(res.Trace, tc.stage) {
			t.Fatalf("%s: span tree missing %q stage; have %v", tc.mode, tc.stage, stageNames(res.Trace))
		}
	}
}

// TestServerCachedHitHistogram is the regression test for the
// latency-accounting bug: a hot cached workload must leave the exact
// histogram untouched (hits used to be observed as 0-latency exact
// queries, sinking p50/p95 as the hit rate rose), and hits must be
// recorded with their real lookup latency under the cached series.
func TestServerCachedHitHistogram(t *testing.T) {
	_, cl, srv, _ := newTestService(t, 50_000, Config{CacheRows: 1 << 20}, exec.ExecOptions{Parallelism: 1})
	ctx := context.Background()
	id, err := cl.CreateSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.EndSession(ctx, id)

	const sql = "SELECT region, COUNT(*) FROM sales GROUP BY region"
	first, err := cl.Query(ctx, id, QueryRequest{SQL: sql})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first execution reported cached")
	}
	const hits = 25
	for i := 0; i < hits; i++ {
		res, err := cl.Query(ctx, id, QueryRequest{SQL: sql})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Cached {
			t.Fatalf("hit %d not served from cache", i)
		}
		// A hit's elapsed_ms is the lookup the client paid, not the
		// original execution's cost.
		if res.ElapsedMS > first.ElapsedMS && res.ElapsedMS > 50 {
			t.Fatalf("cached elapsed %.3fms looks like an execution (first run took %.3fms)",
				res.ElapsedMS, first.ElapsedMS)
		}
	}

	snap := srv.Stats()
	exact, ok := snap.Modes["exact"]
	if !ok {
		t.Fatal("no exact series")
	}
	if exact.Count != 1 {
		t.Fatalf("exact histogram holds %d observations after %d cache hits, want 1 (engine executions only)",
			exact.Count, hits)
	}
	cached, ok := snap.Modes[statCached]
	if !ok {
		t.Fatalf("no %q series after cache hits; modes: %v", statCached, snap.Modes)
	}
	if cached.Count != hits {
		t.Fatalf("cached series holds %d observations, want %d", cached.Count, hits)
	}
	if snap.Queries.CacheHits != hits {
		t.Fatalf("cache_hits = %d, want %d", snap.Queries.CacheHits, hits)
	}
}

// TestServerSlowRing checks the /admin/slow ring retains traced slow
// queries (and only queries at or above the threshold).
func TestServerSlowRing(t *testing.T) {
	defer fault.Reset()
	_, cl, _, _ := newTestService(t, 10_000,
		Config{SlowThreshold: 30 * time.Millisecond, SlowRing: 4},
		exec.ExecOptions{Parallelism: 1})
	ctx := context.Background()
	id, err := cl.CreateSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.EndSession(ctx, id)

	// A normally-fast query should stay out of the ring — but a loaded
	// CI machine (race detector, parallel packages) can legitimately push
	// it over the threshold, so the hard assertion is the ring's own
	// invariant: no retained entry is ever below the threshold.
	if _, err := cl.Query(ctx, id, QueryRequest{SQL: "SELECT COUNT(*) FROM sales"}); err != nil {
		t.Fatal(err)
	}
	slow, err := cl.Slow(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range slow {
		if e.ElapsedMS < 30 {
			t.Fatalf("sub-threshold entry in the slow ring: %+v", e)
		}
	}

	// An injected scan latency pushes the query over the threshold.
	const slowSQL = "SELECT COUNT(*) FROM sales WHERE amount > 1"
	if err := fault.Enable("exec/scan", "latency(50ms)"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Query(ctx, id, QueryRequest{SQL: slowSQL}); err != nil {
		t.Fatal(err)
	}
	fault.Reset()

	slow, err = cl.Slow(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var found *trace.Entry
	for i := range slow {
		if slow[i].SQL == slowSQL {
			found = &slow[i]
		}
	}
	if found == nil {
		t.Fatalf("injected-latency query not in the slow ring: %+v", slow)
	}
	if found.ElapsedMS < 30 || found.Trace == nil || found.Outcome != "completed" || found.Mode != "exact" {
		t.Fatalf("slow entry malformed: %+v", found)
	}
	if !hasStage(found.Trace, "scan") {
		t.Fatalf("slow trace missing scan stage: %v", stageNames(found.Trace))
	}
}
