package server

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dex/internal/core"
	"dex/internal/exec"
	"dex/internal/workload"
)

// newTestService stands up a dexd instance on a loopback listener with a
// Sales table of n rows, plus a mirror engine holding identical data for
// parity checks.
func newTestService(t *testing.T, n int, cfg Config, opt exec.ExecOptions) (*httptest.Server, *Client, *Server, *core.Engine) {
	t.Helper()
	mkEngine := func() *core.Engine {
		eng := core.New(core.Options{Seed: 1, Exec: opt})
		sales, err := workload.Sales(rand.New(rand.NewSource(42)), n)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Register(sales); err != nil {
			t.Fatal(err)
		}
		return eng
	}
	srv := New(mkEngine(), cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, NewClient(ts.URL), srv, mkEngine()
}

// sameResult compares a wire-format result against a direct-engine result,
// exact for ints and strings, to 1e-9 relative for floats (the parallel
// aggregates are ulp-nondeterministic).
func sameResult(t *testing.T, label string, got *QueryResult, want *QueryResult) {
	t.Helper()
	if len(got.Columns) != len(want.Columns) || len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: shape (%d cols, %d rows) != (%d cols, %d rows)",
			label, len(got.Columns), len(got.Rows), len(want.Columns), len(want.Rows))
	}
	for i := range want.Columns {
		if got.Columns[i] != want.Columns[i] || got.Types[i] != want.Types[i] {
			t.Fatalf("%s: column %d is %s %s, want %s %s",
				label, i, got.Columns[i], got.Types[i], want.Columns[i], want.Types[i])
		}
	}
	for r := range want.Rows {
		for c := range want.Rows[r] {
			g, w := got.Rows[r][c], want.Rows[r][c]
			// JSON decoding turns every number into float64; re-encode the
			// mirror's values the same way for comparison.
			gf, gIsNum := asFloat(g)
			wf, wIsNum := asFloat(w)
			switch {
			case wIsNum && gIsNum:
				if diff := math.Abs(gf - wf); diff > 1e-9*math.Max(1, math.Abs(wf)) {
					t.Fatalf("%s: row %d col %d: %v != %v", label, r, c, g, w)
				}
			case g != w:
				t.Fatalf("%s: row %d col %d: %#v != %#v", label, r, c, g, w)
			}
		}
	}
}

func asFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int64:
		return float64(x), true
	case int:
		return float64(x), true
	}
	return 0, false
}

// TestServerConcurrentClients drives 8 concurrent clients through
// create/query/suggest/end, each replaying a distinct synthetic exploration
// session, and checks every result matches direct execution on a mirror
// engine holding identical data.
func TestServerConcurrentClients(t *testing.T) {
	const clients, perClient = 8, 8
	// Admission sized so parity traffic is never load-shed; the admission
	// tests below exercise the rejection path deliberately.
	ts, cl, srv, mirror := newTestService(t, 20_000,
		Config{MaxInFlight: clients, MaxQueue: 2 * clients, QueueTimeout: 30 * time.Second},
		exec.ExecOptions{})
	_ = ts

	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ctx := context.Background()
			id, err := cl.CreateSession(ctx)
			if err != nil {
				errc <- err
				return
			}
			stmts := workload.ExplorationSQL(rand.New(rand.NewSource(int64(100+c))), perClient)
			for i, sql := range stmts {
				got, err := cl.Query(ctx, id, QueryRequest{SQL: sql, Mode: "exact"})
				if err != nil {
					errc <- err
					return
				}
				direct, err := mirror.SQLContext(ctx, sql, core.Exact)
				if err != nil {
					errc <- err
					return
				}
				sameResult(t, sql, got, encodeTable(direct, "exact", 0))
				if i == len(stmts)-1 {
					if _, err := cl.Suggest(ctx, id, 3); err != nil {
						errc <- err
						return
					}
				}
			}
			if err := cl.EndSession(ctx, id); err != nil {
				errc <- err
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	snap := srv.Stats()
	if want := int64(clients * perClient); snap.Queries.Completed != want {
		t.Fatalf("completed = %d, want %d", snap.Queries.Completed, want)
	}
	if snap.Sessions.Ended != clients || snap.Sessions.Active != 0 {
		t.Fatalf("sessions ended=%d active=%d, want %d/0", snap.Sessions.Ended, snap.Sessions.Active, clients)
	}
	if m, ok := snap.Modes["exact"]; !ok || m.Count == 0 || m.P95MS < m.P50MS {
		t.Fatalf("bad exact-mode latency stats: %+v", snap.Modes)
	}
	if snap.RowsScanned == 0 {
		t.Fatal("rows_scanned never advanced")
	}
}

// TestServerDisconnectCancellation proves a client disconnect stops the
// query mid-scan: the engine-wide rows-scanned counter (exported via
// /admin/stats) freezes far below the work a full execution would do.
func TestServerDisconnectCancellation(t *testing.T) {
	const n = 1 << 21
	// One worker and small morsels: the scan is slow and cancellation
	// latency is a single morsel.
	_, cl, srv, _ := newTestService(t, n, Config{},
		exec.ExecOptions{Parallelism: 1, MorselSize: 1024})

	ctx := context.Background()
	id, err := cl.CreateSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	base := srv.eng.RowsScanned()

	qctx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() {
		_, err := cl.Query(qctx, id, QueryRequest{
			SQL: "SELECT SUM(amount) FROM sales WHERE amount >= 0",
		})
		done <- err
	}()
	// Wait until the scan has visibly started, then disconnect.
	deadline := time.Now().Add(5 * time.Second)
	for srv.eng.RowsScanned() == base {
		if time.Now().After(deadline) {
			t.Fatal("query never started scanning")
		}
	}
	cancel()
	if err := <-done; err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("client saw %v, want context.Canceled", err)
	}

	// The counter must freeze: two /admin/stats snapshots spaced apart
	// agree, and the total stays below one full filter+aggregate pass.
	s1, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	s2, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s1.RowsScanned != s2.RowsScanned {
		t.Fatalf("rows_scanned still advancing after disconnect: %d -> %d", s1.RowsScanned, s2.RowsScanned)
	}
	if did := s2.RowsScanned - base; did >= 2*n {
		t.Fatalf("scanned %d rows, want < %d (cancellation did not cut the scan short)", did, 2*n)
	}
	if s2.Queries.Cancelled == 0 {
		t.Fatal("cancelled counter never bumped")
	}
}

// TestServerAdmissionRejects saturates a 1-slot, 1-queue server with 16
// concurrent queries: beyond the slot and the queue entry, requests must be
// rejected with 429 (never queued unboundedly), while at least one query
// still completes.
func TestServerAdmissionRejects(t *testing.T) {
	_, cl, srv, _ := newTestService(t, 1<<20,
		Config{MaxInFlight: 1, MaxQueue: 1, QueueTimeout: 50 * time.Millisecond},
		exec.ExecOptions{Parallelism: 1, MorselSize: 1024})

	ctx := context.Background()
	id, err := cl.CreateSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	const attempts = 16
	var wg sync.WaitGroup
	var ok, rejected, other int64
	var mu sync.Mutex
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := cl.Query(ctx, id, QueryRequest{
				SQL: "SELECT SUM(amount) FROM sales WHERE amount >= 0",
			})
			mu.Lock()
			defer mu.Unlock()
			var re *RejectedError
			switch {
			case err == nil:
				ok++
			case errors.As(err, &re) && re.Status == http.StatusTooManyRequests:
				rejected++
			default:
				other++
			}
		}()
	}
	wg.Wait()
	if other != 0 {
		t.Fatalf("%d queries failed with non-admission errors", other)
	}
	if ok == 0 {
		t.Fatal("no query completed under saturation")
	}
	if rejected == 0 {
		t.Fatal("no query was rejected at admission")
	}
	snap := srv.Stats()
	if snap.Queries.RejectedBusy != rejected {
		t.Fatalf("rejected_busy = %d, want %d", snap.Queries.RejectedBusy, rejected)
	}
	if snap.Active != 0 || snap.Queued != 0 {
		t.Fatalf("gauges did not return to zero: active=%d queued=%d", snap.Active, snap.Queued)
	}
}

// TestServerDrainZeroLoss starts queries, begins drain mid-flight, and
// checks every admitted query completes while later arrivals get 503.
func TestServerDrainZeroLoss(t *testing.T) {
	_, cl, srv, _ := newTestService(t, 1<<20, Config{},
		exec.ExecOptions{Parallelism: 1, MorselSize: 1024})
	ctx := context.Background()
	id, err := cl.CreateSession(ctx)
	if err != nil {
		t.Fatal(err)
	}

	const inFlight = 4
	errs := make(chan error, inFlight)
	for i := 0; i < inFlight; i++ {
		go func() {
			_, err := cl.Query(ctx, id, QueryRequest{
				SQL: "SELECT SUM(amount) FROM sales WHERE amount >= 0",
			})
			errs <- err
		}()
	}
	// Wait for at least one query to hold a slot, then drain.
	deadline := time.Now().Add(5 * time.Second)
	for srv.adm.active() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no query ever started")
		}
	}
	drainCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Drain returning means all in-flight handlers finished; every accepted
	// query must have completed (zero loss) — but some of the four may have
	// arrived after the drain flag flipped and been 503ed, which is fine.
	var completed, drained int
	for i := 0; i < inFlight; i++ {
		err := <-errs
		var re *RejectedError
		switch {
		case err == nil:
			completed++
		case errors.As(err, &re) && re.Status == http.StatusServiceUnavailable:
			drained++
		default:
			t.Fatalf("in-flight query lost during drain: %v", err)
		}
	}
	if completed == 0 {
		t.Fatal("every query was rejected; drain should finish admitted work")
	}

	// New work is turned away once draining.
	if _, err := cl.Query(ctx, id, QueryRequest{SQL: "SELECT COUNT(*) FROM sales"}); !IsRejected(err) {
		t.Fatalf("query after drain: %v, want 503 rejection", err)
	}
	if _, err := cl.CreateSession(ctx); !IsRejected(err) {
		t.Fatalf("create session after drain: %v, want 503 rejection", err)
	}
	if snap := srv.Stats(); !snap.Draining || snap.Queries.RejectedDrain == 0 {
		t.Fatalf("stats after drain: draining=%v rejected_drain=%d", snap.Draining, snap.Queries.RejectedDrain)
	}
}

// TestServerResultCache checks the shared cache: a repeated exact query is
// served from cache (flagged, counted) and a data change invalidates it.
func TestServerResultCache(t *testing.T) {
	_, cl, srv, _ := newTestService(t, 10_000, Config{CacheRows: 1 << 20}, exec.ExecOptions{})
	ctx := context.Background()
	id, err := cl.CreateSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	const sql = "SELECT region, SUM(amount) FROM sales GROUP BY region"
	first, err := cl.Query(ctx, id, QueryRequest{SQL: sql})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first execution claims to be cached")
	}
	second, err := cl.Query(ctx, id, QueryRequest{SQL: sql})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second execution not served from cache")
	}
	second.Cached, second.ElapsedMS = first.Cached, first.ElapsedMS
	sameResult(t, sql, second, first)

	// Loading data invalidates.
	if err := cl.LoadDemo(ctx, "ticks", 1000, 7); err != nil {
		t.Fatal(err)
	}
	third, err := cl.Query(ctx, id, QueryRequest{SQL: sql})
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Fatal("cache not invalidated by data load")
	}
	snap := srv.Stats()
	if !snap.Cache.Enabled || snap.Cache.Hits != 1 {
		t.Fatalf("cache stats: %+v", snap.Cache)
	}
	tables, err := cl.Tables(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %v, want sales+ticks", tables)
	}
}

// TestServerQueryTimeout checks the per-request deadline: an aggressive
// timeout_ms on a big scan yields 504 and bumps the timed_out counter.
func TestServerQueryTimeout(t *testing.T) {
	_, cl, srv, _ := newTestService(t, 1<<21, Config{},
		exec.ExecOptions{Parallelism: 1, MorselSize: 1024})
	ctx := context.Background()
	id, err := cl.CreateSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.Query(ctx, id, QueryRequest{
		SQL:       "SELECT SUM(amount) FROM sales WHERE amount >= 0",
		TimeoutMS: 1,
	})
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusGatewayTimeout {
		t.Fatalf("got %v, want 504", err)
	}
	if snap := srv.Stats(); snap.Queries.TimedOut == 0 {
		t.Fatal("timed_out counter never bumped")
	}
}

// TestServerBadRequests covers the error surface: bad mode, bad SQL,
// unknown table, unknown session.
func TestServerBadRequests(t *testing.T) {
	_, cl, _, _ := newTestService(t, 100, Config{}, exec.ExecOptions{})
	ctx := context.Background()
	id, err := cl.CreateSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		req    QueryRequest
		sessID string
		status int
	}{
		{QueryRequest{SQL: "SELECT * FROM sales", Mode: "warp"}, id, http.StatusBadRequest},
		{QueryRequest{SQL: "SELEKT nope"}, id, http.StatusBadRequest},
		{QueryRequest{SQL: "SELECT * FROM nope"}, id, http.StatusNotFound},
		{QueryRequest{SQL: "SELECT * FROM sales"}, "s-missing", http.StatusNotFound},
	}
	for _, tc := range cases {
		_, err := cl.Query(ctx, tc.sessID, tc.req)
		var se *StatusError
		if !errors.As(err, &se) || se.Status != tc.status {
			t.Fatalf("%+v on %q: got %v, want HTTP %d", tc.req, tc.sessID, err, tc.status)
		}
	}
	if err := cl.EndSession(ctx, "s-missing"); err == nil {
		t.Fatal("ending unknown session succeeded")
	}
}

// TestServerAllModes runs one aggregate through every execution mode over
// HTTP, checking each returns a plausible estimate of the true sum.
func TestServerAllModes(t *testing.T) {
	_, cl, _, mirror := newTestService(t, 50_000, Config{}, exec.ExecOptions{})
	ctx := context.Background()
	id, err := cl.CreateSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	const sql = "SELECT SUM(amount) FROM sales WHERE amount >= 100"
	truth, err := mirror.SQLContext(ctx, sql, core.Exact)
	if err != nil {
		t.Fatal(err)
	}
	want := truth.Column(0).Value(0).AsFloat()
	for _, mode := range []string{"exact", "cracked", "approx", "online"} {
		res, err := cl.Query(ctx, id, QueryRequest{SQL: sql, Mode: mode})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		got, ok := asFloat(res.Rows[0][0])
		if !ok {
			t.Fatalf("%s: non-numeric result %#v", mode, res.Rows[0][0])
		}
		tol := 1e-6
		if mode == "approx" || mode == "online" {
			tol = 0.2 // estimators: just sanity, accuracy is tested elsewhere
		}
		if math.Abs(got-want) > tol*math.Abs(want) {
			t.Fatalf("%s: %g, want ~%g", mode, got, want)
		}
		if res.Mode != mode {
			t.Fatalf("%s: result labelled %q", mode, res.Mode)
		}
	}
}
