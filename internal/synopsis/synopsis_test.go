package synopsis

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dex/internal/metrics"
)

func TestEquiWidthBasics(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	h, err := NewEquiWidth(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.N != 10 || len(h.Counts) != 5 || len(h.Edges) != 6 {
		t.Fatalf("h = %+v", h)
	}
	if got := metrics.Sum(h.Counts); got != 10 {
		t.Errorf("mass = %v", got)
	}
	if _, err := NewEquiWidth(xs, 0); !errors.Is(err, ErrBadBuckets) {
		t.Errorf("buckets err = %v", err)
	}
	if _, err := NewEquiWidth(nil, 3); !errors.Is(err, ErrNoData) {
		t.Errorf("empty err = %v", err)
	}
}

func TestEquiDepthBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 100 // heavy skew
	}
	h, err := NewEquiDepth(xs, 10)
	if err != nil {
		t.Fatal(err)
	}
	for b, c := range h.Counts {
		if math.Abs(c-1000) > 50 {
			t.Errorf("bucket %d holds %v, want ~1000", b, c)
		}
	}
}

func TestEstimateRangeExactOnBoundaries(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	h, _ := NewEquiWidth(xs, 10)
	// Whole domain.
	if got := h.EstimateRange(0, 1000); math.Abs(got-1000) > 1 {
		t.Errorf("full range = %v", got)
	}
	// Empty.
	if got := h.EstimateRange(5, 5); got != 0 {
		t.Errorf("empty range = %v", got)
	}
}

func TestSelectivityEstimationAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 100
	}
	truth := func(lo, hi float64) float64 {
		n := 0.0
		for _, x := range xs {
			if x >= lo && x < hi {
				n++
			}
		}
		return n
	}
	hw, _ := NewEquiWidth(xs, 50)
	hd, _ := NewEquiDepth(xs, 50)
	var ewErr, edErr float64
	const trials = 40
	for i := 0; i < trials; i++ {
		lo := rng.Float64() * 200
		hi := lo + rng.Float64()*100
		tr := truth(lo, hi)
		if tr < 50 {
			continue
		}
		ewErr += metrics.RelErr(hw.EstimateRange(lo, hi), tr)
		edErr += metrics.RelErr(hd.EstimateRange(lo, hi), tr)
	}
	if edErr > ewErr {
		t.Errorf("equi-depth err %.3f > equi-width %.3f on skewed data", edErr, ewErr)
	}
	if edErr/trials > 0.2 {
		t.Errorf("equi-depth mean rel err %.3f too high", edErr/trials)
	}
}

func TestHistogramMassConservedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Intn(1000)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 50
		}
		for _, mk := range []func([]float64, int) (*Histogram, error){NewEquiWidth, NewEquiDepth} {
			h, err := mk(xs, 1+rng.Intn(20))
			if err != nil {
				return false
			}
			if int(metrics.Sum(h.Counts)) != n {
				return false
			}
			// Full-range estimate ≈ N.
			if math.Abs(h.EstimateRange(math.Inf(-1), math.Inf(1))-float64(n)) > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestWaveletFullCoefficientsLossless(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		wv, err := NewWavelet(xs, 1<<20) // keep everything
		if err != nil {
			return false
		}
		back := wv.Reconstruct()
		for i := range xs {
			if math.Abs(back[i]-xs[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWaveletTruncationGracefulDegradation(t *testing.T) {
	// Smooth signal: few coefficients capture most energy.
	n := 256
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(float64(i)/20) * 100
	}
	errAt := func(b int) float64 {
		wv, err := NewWavelet(xs, b)
		if err != nil {
			t.Fatal(err)
		}
		return metrics.L2(wv.Reconstruct(), xs)
	}
	e8, e32, e128 := errAt(8), errAt(32), errAt(128)
	if !(e8 >= e32 && e32 >= e128) {
		t.Errorf("errors not monotone: %v %v %v", e8, e32, e128)
	}
	if e32 > 0.2*metrics.L2(xs, make([]float64, n)) {
		t.Errorf("32 coefficients leave %.1f%% energy error", 100*e32/metrics.L2(xs, make([]float64, n)))
	}
}

func TestWaveletErrors(t *testing.T) {
	if _, err := NewWavelet(nil, 4); !errors.Is(err, ErrNoData) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := NewWavelet([]float64{1}, 0); !errors.Is(err, ErrBadParams) {
		t.Errorf("b=0 err = %v", err)
	}
}

func TestCountMin(t *testing.T) {
	cm, err := NewCountMin(0.01, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	truth := map[string]uint64{}
	items := []string{"a", "b", "c", "d", "e"}
	weights := []int{1000, 500, 100, 10, 1}
	for i, it := range items {
		for j := 0; j < weights[i]; j++ {
			cm.Add(it, 1)
			truth[it]++
		}
	}
	// Noise stream.
	for i := 0; i < 5000; i++ {
		cm.Add(string(rune('f'+rng.Intn(1000))), 1)
	}
	for _, it := range items {
		est := cm.Estimate(it)
		if est < truth[it] {
			t.Errorf("%s underestimated: %d < %d", it, est, truth[it])
		}
		slack := uint64(float64(cm.N()) * 0.01)
		if est > truth[it]+slack {
			t.Errorf("%s overestimated beyond bound: %d > %d+%d", it, est, truth[it], slack)
		}
	}
	if cm.Estimate("never-seen") > uint64(float64(cm.N())*0.01) {
		t.Error("unseen item above error bound")
	}
}

func TestCountMinErrors(t *testing.T) {
	for _, bad := range [][2]float64{{0, 0.1}, {1, 0.1}, {0.1, 0}, {0.1, 1}} {
		if _, err := NewCountMin(bad[0], bad[1]); !errors.Is(err, ErrBadParams) {
			t.Errorf("params %v err = %v", bad, err)
		}
	}
}

func TestSizes(t *testing.T) {
	xs := make([]float64, 128)
	for i := range xs {
		xs[i] = float64(i)
	}
	h, _ := NewEquiWidth(xs, 10)
	if h.Size() != 21 {
		t.Errorf("hist size = %d", h.Size())
	}
	wv, _ := NewWavelet(xs, 16)
	if wv.Size() > 16 {
		t.Errorf("wavelet size = %d", wv.Size())
	}
	cm, _ := NewCountMin(0.1, 0.1)
	if cm.Size() <= 0 {
		t.Error("sketch size")
	}
}
