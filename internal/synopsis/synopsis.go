// Package synopsis implements the classic data synopses the tutorial's
// approximate-processing thread builds on ("Synopses for massive data:
// samples, histograms, wavelets, sketches" [16]): equi-width and equi-depth
// histograms for selectivity estimation, Haar wavelet coefficient synopses
// for compressed value distributions, and Count-Min sketches for frequency
// estimation over streams. Together with internal/sample these are the raw
// material of sampling-based exploration engines.
package synopsis

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// Package-level sentinel errors.
var (
	ErrBadBuckets = errors.New("synopsis: bucket count must be positive")
	ErrNoData     = errors.New("synopsis: empty input")
	ErrBadParams  = errors.New("synopsis: invalid parameters")
)

// Histogram is a bucketized summary of a numeric column supporting
// selectivity (range-count) estimation.
type Histogram struct {
	// Edges has len(buckets)+1 entries; bucket i covers [Edges[i], Edges[i+1]).
	Edges []float64
	// Counts per bucket.
	Counts []float64
	// N is the total value count.
	N int
}

// NewEquiWidth builds an equi-width histogram with the given bucket count.
func NewEquiWidth(xs []float64, buckets int) (*Histogram, error) {
	if buckets <= 0 {
		return nil, ErrBadBuckets
	}
	if len(xs) == 0 {
		return nil, ErrNoData
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	h := &Histogram{
		Edges:  make([]float64, buckets+1),
		Counts: make([]float64, buckets),
		N:      len(xs),
	}
	w := (hi - lo) / float64(buckets)
	for i := range h.Edges {
		h.Edges[i] = lo + w*float64(i)
	}
	for _, x := range xs {
		b := int((x - lo) / w)
		if b >= buckets {
			b = buckets - 1
		}
		if b < 0 {
			b = 0
		}
		h.Counts[b]++
	}
	return h, nil
}

// NewEquiDepth builds an equi-depth histogram: bucket boundaries are value
// quantiles, so every bucket holds (approximately) the same number of
// values — far more robust than equi-width under skew.
func NewEquiDepth(xs []float64, buckets int) (*Histogram, error) {
	if buckets <= 0 {
		return nil, ErrBadBuckets
	}
	if len(xs) == 0 {
		return nil, ErrNoData
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	h := &Histogram{
		Edges:  make([]float64, buckets+1),
		Counts: make([]float64, buckets),
		N:      len(xs),
	}
	h.Edges[0] = s[0]
	for b := 1; b < buckets; b++ {
		idx := b * len(s) / buckets
		h.Edges[b] = s[idx]
	}
	last := s[len(s)-1]
	h.Edges[buckets] = math.Nextafter(last, math.Inf(1))
	// Count values per bucket (duplicates can make buckets uneven).
	for _, x := range s {
		b := sort.SearchFloat64s(h.Edges[1:], math.Nextafter(x, math.Inf(1)))
		if b >= buckets {
			b = buckets - 1
		}
		h.Counts[b]++
	}
	return h, nil
}

// EstimateRange estimates how many values fall in [lo, hi), assuming
// uniform spread within buckets (the textbook interpolation).
func (h *Histogram) EstimateRange(lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	var est float64
	for b := 0; b < len(h.Counts); b++ {
		bl, bh := h.Edges[b], h.Edges[b+1]
		if bh <= lo || bl >= hi {
			continue
		}
		overlapLo := math.Max(bl, lo)
		overlapHi := math.Min(bh, hi)
		width := bh - bl
		if width <= 0 {
			est += h.Counts[b]
			continue
		}
		est += h.Counts[b] * (overlapHi - overlapLo) / width
	}
	return est
}

// Size returns the synopsis footprint in float64 slots.
func (h *Histogram) Size() int { return len(h.Edges) + len(h.Counts) }

// Wavelet is a Haar wavelet synopsis: the B largest-normalized coefficients
// of the data's Haar transform, from which an approximation of the original
// vector (e.g. a value-frequency distribution) can be reconstructed.
type Wavelet struct {
	n      int // padded length (power of two)
	orig   int // original length
	coeffs map[int]float64
}

// NewWavelet keeps the b largest (normalized) Haar coefficients of xs.
func NewWavelet(xs []float64, b int) (*Wavelet, error) {
	if len(xs) == 0 {
		return nil, ErrNoData
	}
	if b <= 0 {
		return nil, ErrBadParams
	}
	n := 1
	for n < len(xs) {
		n <<= 1
	}
	data := make([]float64, n)
	copy(data, xs)
	// In-place Haar decomposition.
	coef := make([]float64, n)
	cur := append([]float64(nil), data...)
	level := 0
	for length := n; length > 1; length /= 2 {
		half := length / 2
		next := make([]float64, half)
		for i := 0; i < half; i++ {
			a, d := cur[2*i], cur[2*i+1]
			next[i] = (a + d) / 2
			coef[half+i] = (a - d) / 2
		}
		cur = next
		level++
	}
	coef[0] = cur[0]
	// Rank coefficients by normalized magnitude (coefficients at higher
	// resolutions contribute less per unit; weight by sqrt of support).
	type ranked struct {
		idx int
		key float64
	}
	rs := make([]ranked, 0, n)
	for i, c := range coef {
		if c == 0 {
			continue
		}
		support := 1.0
		if i > 0 {
			// Level of index i: support = n / 2^floor(log2(i)) ... derive:
			lvl := math.Floor(math.Log2(float64(i)))
			support = float64(n) / math.Pow(2, lvl)
		} else {
			support = float64(n)
		}
		rs = append(rs, ranked{idx: i, key: math.Abs(c) * math.Sqrt(support)})
	}
	sort.Slice(rs, func(a, bq int) bool { return rs[a].key > rs[bq].key })
	if b > len(rs) {
		b = len(rs)
	}
	wv := &Wavelet{n: n, orig: len(xs), coeffs: make(map[int]float64, b)}
	for _, r := range rs[:b] {
		wv.coeffs[r.idx] = coef[r.idx]
	}
	return wv, nil
}

// Reconstruct inverts the truncated transform back to the original length.
func (w *Wavelet) Reconstruct() []float64 {
	coef := make([]float64, w.n)
	for i, c := range w.coeffs {
		coef[i] = c
	}
	cur := []float64{coef[0]}
	for length := 2; length <= w.n; length *= 2 {
		half := length / 2
		next := make([]float64, length)
		for i := 0; i < half; i++ {
			d := coef[half+i]
			next[2*i] = cur[i] + d
			next[2*i+1] = cur[i] - d
		}
		cur = next
	}
	return cur[:w.orig]
}

// Size returns the number of retained coefficients.
func (w *Wavelet) Size() int { return len(w.coeffs) }

// CountMin is a Count-Min sketch for frequency estimation with
// one-sided (overestimate-only) error.
type CountMin struct {
	depth int
	width int
	rows  [][]uint64
	n     uint64
}

// NewCountMin sizes the sketch for error ~ eps*N with failure probability
// delta: width = ceil(e/eps), depth = ceil(ln(1/delta)).
func NewCountMin(eps, delta float64) (*CountMin, error) {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		return nil, ErrBadParams
	}
	width := int(math.Ceil(math.E / eps))
	depth := int(math.Ceil(math.Log(1 / delta)))
	rows := make([][]uint64, depth)
	for i := range rows {
		rows[i] = make([]uint64, width)
	}
	return &CountMin{depth: depth, width: width, rows: rows}, nil
}

func (c *CountMin) hash(item string, row int) int {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x00%s", row, item)
	return int(h.Sum64() % uint64(c.width))
}

// Add increments an item's count.
func (c *CountMin) Add(item string, count uint64) {
	c.n += count
	for r := 0; r < c.depth; r++ {
		c.rows[r][c.hash(item, r)] += count
	}
}

// Estimate returns the (over-)estimated count for an item.
func (c *CountMin) Estimate(item string) uint64 {
	var best uint64 = math.MaxUint64
	for r := 0; r < c.depth; r++ {
		if v := c.rows[r][c.hash(item, r)]; v < best {
			best = v
		}
	}
	if best == math.MaxUint64 {
		return 0
	}
	return best
}

// N returns the total count added.
func (c *CountMin) N() uint64 { return c.n }

// Size returns the sketch footprint in counters.
func (c *CountMin) Size() int { return c.depth * c.width }
