// Package recommend implements interactive SQL query recommendation, the
// assisted-formulation family the tutorial covers via SnipSuggest-style
// fragment suggestion [21] and collaborative session-based next-query
// recommendation. Queries are represented as sets of fragments
// ("where:age", "groupby:dept", ...); a history of past sessions powers two
// recommenders: conditional fragment completion for the query being typed,
// and next-query prediction from similar past sessions.
package recommend

import (
	"errors"
	"fmt"
	"sort"

	"dex/internal/exec"
)

// Package-level sentinel errors.
var (
	ErrNoHistory = errors.New("recommend: empty history")
	ErrBadK      = errors.New("recommend: k must be positive")
)

// Fingerprint converts a query into its fragment set: one fragment per
// select/aggregate item, predicate column, group-by and order-by key.
func Fingerprint(q exec.Query) []string {
	seen := map[string]bool{}
	var out []string
	add := func(f string) {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	for _, s := range q.Select {
		if s.Agg == exec.AggNone {
			add("select:" + s.Col)
		} else {
			add(fmt.Sprintf("agg:%s(%s)", s.Agg, s.Col))
		}
	}
	if q.Where != nil {
		for _, c := range q.Where.Columns() {
			add("where:" + c)
		}
	}
	for _, g := range q.GroupBy {
		add("groupby:" + g)
	}
	for _, o := range q.OrderBy {
		add("orderby:" + o.Col)
	}
	sort.Strings(out)
	return out
}

// Session is one user's sequence of queries, each a fragment set.
type Session [][]string

// Suggestion is one ranked recommendation.
type Suggestion struct {
	Fragment string
	Score    float64
}

// Recommender holds the query-log history.
type Recommender struct {
	sessions []Session
	// queries flattens all historical queries.
	queries [][]string
	// fragCount counts queries containing each fragment.
	fragCount map[string]int
}

// New builds a recommender from historical sessions.
func New(history []Session) (*Recommender, error) {
	if len(history) == 0 {
		return nil, ErrNoHistory
	}
	r := &Recommender{sessions: history, fragCount: map[string]int{}}
	for _, s := range history {
		for _, q := range s {
			qq := append([]string(nil), q...)
			sort.Strings(qq)
			r.queries = append(r.queries, qq)
			for _, f := range qq {
				r.fragCount[f]++
			}
		}
	}
	if len(r.queries) == 0 {
		return nil, ErrNoHistory
	}
	return r, nil
}

func contains(sorted []string, f string) bool {
	i := sort.SearchStrings(sorted, f)
	return i < len(sorted) && sorted[i] == f
}

func containsAll(sorted []string, fs []string) bool {
	for _, f := range fs {
		if !contains(sorted, f) {
			return false
		}
	}
	return true
}

// SuggestFragments ranks fragments to add to a partially built query by
// the smoothed conditional probability P(fragment | partial fragments)
// over the historical queries — the SnipSuggest ranking. Fragments already
// present are excluded. Falls back to global popularity when no historical
// query contains the partial set.
func (r *Recommender) SuggestFragments(partial []string, k int) ([]Suggestion, error) {
	if k <= 0 {
		return nil, ErrBadK
	}
	have := map[string]bool{}
	for _, f := range partial {
		have[f] = true
	}
	matching := 0
	cond := map[string]int{}
	for _, q := range r.queries {
		if !containsAll(q, partial) {
			continue
		}
		matching++
		for _, f := range q {
			if !have[f] {
				cond[f]++
			}
		}
	}
	var out []Suggestion
	if matching > 0 {
		for f, c := range cond {
			out = append(out, Suggestion{Fragment: f, Score: float64(c) / float64(matching)})
		}
	} else {
		// Popularity fallback.
		for f, c := range r.fragCount {
			if !have[f] {
				out = append(out, Suggestion{Fragment: f, Score: float64(c) / float64(len(r.queries))})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Fragment < out[b].Fragment
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// PopularFragments is the no-context baseline: globally most frequent
// fragments.
func (r *Recommender) PopularFragments(k int) ([]Suggestion, error) {
	return r.SuggestFragments(nil, k)
}

// jaccard computes set similarity between two fragment multisets
// (flattened sessions).
func jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	for f := range a {
		if b[f] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

func flatten(s Session) map[string]bool {
	out := map[string]bool{}
	for _, q := range s {
		for _, f := range q {
			out[f] = true
		}
	}
	return out
}

// QuerySuggestion is a ranked next-query recommendation.
type QuerySuggestion struct {
	Fragments []string
	Score     float64
}

// SuggestNextQuery predicts the user's next query from the current session
// prefix: historical sessions are ranked by Jaccard similarity to the
// prefix, and the queries that followed similar prefixes are scored by
// similarity-weighted votes (the collaborative QueRIE scheme).
func (r *Recommender) SuggestNextQuery(prefix Session, k int) ([]QuerySuggestion, error) {
	if k <= 0 {
		return nil, ErrBadK
	}
	pf := flatten(prefix)
	type vote struct {
		frags []string
		score float64
	}
	votes := map[string]*vote{}
	for _, s := range r.sessions {
		if len(s) == 0 {
			continue
		}
		sim := jaccard(pf, flatten(s))
		if len(pf) == 0 {
			sim = 1 // no context: degrade to popularity voting
		}
		if sim == 0 {
			continue
		}
		// Vote for each query in the session that the prefix has not
		// already issued.
		issued := map[string]bool{}
		for _, q := range prefix {
			qq := append([]string(nil), q...)
			sort.Strings(qq)
			issued[fmt.Sprint(qq)] = true
		}
		for _, q := range s {
			qq := append([]string(nil), q...)
			sort.Strings(qq)
			key := fmt.Sprint(qq)
			if issued[key] {
				continue
			}
			v, ok := votes[key]
			if !ok {
				v = &vote{frags: qq}
				votes[key] = v
			}
			v.score += sim
		}
	}
	out := make([]QuerySuggestion, 0, len(votes))
	for _, v := range votes {
		out = append(out, QuerySuggestion{Fragments: v.frags, Score: v.score})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return fmt.Sprint(out[a].Fragments) < fmt.Sprint(out[b].Fragments)
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// HitAtK reports whether the truth query (as a fragment set) appears in the
// top-k suggestions.
func HitAtK(sugs []QuerySuggestion, truth []string) bool {
	tt := append([]string(nil), truth...)
	sort.Strings(tt)
	key := fmt.Sprint(tt)
	for _, s := range sugs {
		if fmt.Sprint(s.Fragments) == key {
			return true
		}
	}
	return false
}
