package recommend

import (
	"errors"
	"math"
	"sort"

	"dex/internal/storage"
)

// ErrNoResult is returned when the faceting result set is empty.
var ErrNoResult = errors.New("recommend: empty result set")

// Facet is an attribute=value pair that is overrepresented in a query's
// result relative to the whole table — the result-driven "you may also
// like" exploration aid of Ymaldb [20]: after seeing a result, the system
// points at the attribute values that characterize it.
type Facet struct {
	Col   string
	Value string
	// Count is how many result rows carry the value.
	Count int
	// ResultFrac and TableFrac are the value's share in the result and in
	// the whole table.
	ResultFrac float64
	TableFrac  float64
	// Lift is ResultFrac / TableFrac (>1 means overrepresented). Score
	// discounts low-support facets: Lift weighted by log(1+Count).
	Lift  float64
	Score float64
}

// Facets ranks the attribute values of the given categorical columns by how
// strongly they characterize the result rows (minimum support: 2 rows or 5%
// of the result, whichever is larger). It returns the top k.
func Facets(t *storage.Table, resultRows []int, dims []string, k int) ([]Facet, error) {
	if len(resultRows) == 0 {
		return nil, ErrNoResult
	}
	if len(dims) == 0 {
		return nil, ErrNoDims
	}
	if k <= 0 {
		return nil, ErrBadK
	}
	minSupport := len(resultRows) / 20
	if minSupport < 2 {
		minSupport = 2
	}
	var out []Facet
	n := t.NumRows()
	for _, d := range dims {
		c, err := t.ColumnByName(d)
		if err != nil {
			return nil, err
		}
		tableCounts := map[string]int{}
		for i := 0; i < n; i++ {
			tableCounts[c.Value(i).String()]++
		}
		resCounts := map[string]int{}
		for _, r := range resultRows {
			resCounts[c.Value(r).String()]++
		}
		for v, rc := range resCounts {
			if rc < minSupport {
				continue
			}
			rf := float64(rc) / float64(len(resultRows))
			tf := float64(tableCounts[v]) / float64(n)
			if tf == 0 {
				continue
			}
			lift := rf / tf
			if lift <= 1 {
				continue
			}
			out = append(out, Facet{
				Col: d, Value: v, Count: rc,
				ResultFrac: rf, TableFrac: tf,
				Lift:  lift,
				Score: lift * math.Log1p(float64(rc)),
			})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		if out[a].Col != out[b].Col {
			return out[a].Col < out[b].Col
		}
		return out[a].Value < out[b].Value
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}
