package recommend

import (
	"errors"
	"math/rand"
	"testing"

	"dex/internal/exec"
	"dex/internal/expr"
	"dex/internal/storage"
)

func TestFingerprint(t *testing.T) {
	q := exec.Query{
		Select: []exec.SelectItem{
			{Col: "region"},
			{Col: "amount", Agg: exec.AggSum},
		},
		Where:   expr.And(expr.Cmp("qty", expr.GT, storage.Int(1)), expr.Cmp("region", expr.EQ, storage.String_("east"))),
		GroupBy: []string{"region"},
		OrderBy: []exec.OrderKey{{Col: "region"}},
	}
	got := Fingerprint(q)
	want := map[string]bool{
		"select:region": true, "agg:SUM(amount)": true,
		"where:qty": true, "where:region": true,
		"groupby:region": true, "orderby:region": true,
	}
	if len(got) != len(want) {
		t.Fatalf("fingerprint = %v", got)
	}
	for _, f := range got {
		if !want[f] {
			t.Errorf("unexpected fragment %q", f)
		}
	}
	// Sorted and deduplicated.
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Error("fingerprint not sorted/deduped")
		}
	}
}

// mkHistory builds sessions from two archetypes: "sales analysts" who
// filter on region then group by product, and "hr analysts" who filter on
// dept then group by age.
func mkHistory(n int, seed int64) []Session {
	rng := rand.New(rand.NewSource(seed))
	var out []Session
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			out = append(out, Session{
				{"select:amount", "where:region"},
				{"agg:SUM(amount)", "groupby:product", "where:region"},
				{"agg:AVG(amount)", "groupby:product", "orderby:product"},
			})
		} else {
			out = append(out, Session{
				{"select:salary", "where:dept"},
				{"agg:AVG(salary)", "groupby:age", "where:dept"},
			})
		}
	}
	return out
}

func TestSuggestFragmentsConditional(t *testing.T) {
	r, err := New(mkHistory(40, 1))
	if err != nil {
		t.Fatal(err)
	}
	sugs, err := r.SuggestFragments([]string{"where:region"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sugs) == 0 {
		t.Fatal("no suggestions")
	}
	// Everything suggested should come from the sales archetype.
	for _, s := range sugs {
		if s.Fragment == "where:dept" || s.Fragment == "groupby:age" {
			t.Errorf("cross-archetype suggestion %q", s.Fragment)
		}
		if s.Score <= 0 || s.Score > 1 {
			t.Errorf("score = %v", s.Score)
		}
	}
}

func TestSuggestFragmentsFallback(t *testing.T) {
	r, _ := New(mkHistory(10, 2))
	sugs, err := r.SuggestFragments([]string{"where:never-seen"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sugs) == 0 {
		t.Error("fallback should return popular fragments")
	}
	pop, err := r.PopularFragments(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pop) != 5 {
		t.Errorf("popular = %d", len(pop))
	}
}

func TestConditionalBeatsPopularity(t *testing.T) {
	// With context "where:dept", conditional ranking must place the hr
	// fragments on top even though sales fragments are globally popular.
	history := mkHistory(9, 3)
	// Skew global popularity toward sales.
	for i := 0; i < 20; i++ {
		history = append(history, Session{{"select:amount", "where:region"}})
	}
	r, _ := New(history)
	cond, _ := r.SuggestFragments([]string{"where:dept"}, 1)
	pop, _ := r.PopularFragments(1)
	if cond[0].Fragment == pop[0].Fragment {
		t.Errorf("conditional %q should differ from popular %q", cond[0].Fragment, pop[0].Fragment)
	}
	if cond[0].Fragment != "select:salary" && cond[0].Fragment != "agg:AVG(salary)" &&
		cond[0].Fragment != "groupby:age" {
		t.Errorf("conditional top = %q", cond[0].Fragment)
	}
}

func TestSuggestNextQuery(t *testing.T) {
	r, _ := New(mkHistory(30, 4))
	prefix := Session{{"select:amount", "where:region"}}
	sugs, err := r.SuggestNextQuery(prefix, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sugs) == 0 {
		t.Fatal("no next-query suggestions")
	}
	truth := []string{"agg:SUM(amount)", "groupby:product", "where:region"}
	if !HitAtK(sugs, truth) {
		t.Errorf("expected next query in top-2, got %v", sugs)
	}
	// The already-issued query must not be recommended.
	for _, s := range sugs {
		if HitAtK([]QuerySuggestion{s}, []string{"select:amount", "where:region"}) {
			t.Error("recommended an already-issued query")
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := New(nil); !errors.Is(err, ErrNoHistory) {
		t.Errorf("no history err = %v", err)
	}
	if _, err := New([]Session{{}}); !errors.Is(err, ErrNoHistory) {
		t.Errorf("empty sessions err = %v", err)
	}
	r, _ := New(mkHistory(5, 5))
	if _, err := r.SuggestFragments(nil, 0); !errors.Is(err, ErrBadK) {
		t.Errorf("k err = %v", err)
	}
	if _, err := r.SuggestNextQuery(nil, 0); !errors.Is(err, ErrBadK) {
		t.Errorf("next k err = %v", err)
	}
}

func TestHitAtK(t *testing.T) {
	sugs := []QuerySuggestion{{Fragments: []string{"a", "b"}}}
	if !HitAtK(sugs, []string{"b", "a"}) {
		t.Error("order-insensitive hit")
	}
	if HitAtK(sugs, []string{"a"}) {
		t.Error("subset should not hit")
	}
}

func TestSuggestSegmentation(t *testing.T) {
	// Measure strongly determined by g1, independent of g2.
	n := 2000
	g1 := make([]string, n)
	g2 := make([]string, n)
	xs := make([]float64, n)
	rng := rand.New(rand.NewSource(30))
	for i := 0; i < n; i++ {
		a := i % 4
		g1[i] = string(rune('a' + a))
		g2[i] = string(rune('w' + rng.Intn(3)))
		xs[i] = float64(a)*100 + rng.NormFloat64()
	}
	tbl, err := storage.FromColumns("t", storage.Schema{
		{Name: "g1", Type: storage.TString},
		{Name: "g2", Type: storage.TString},
		{Name: "x", Type: storage.TFloat},
	}, []storage.Column{
		storage.NewStringColumn(g1), storage.NewStringColumn(g2), storage.NewFloatColumn(xs),
	})
	if err != nil {
		t.Fatal(err)
	}
	segs, err := SuggestSegmentation(tbl, "x", []string{"g1", "g2"})
	if err != nil {
		t.Fatal(err)
	}
	if segs[0].Dim != "g1" || segs[0].R2 < 0.95 {
		t.Errorf("top segmentation = %+v", segs[0])
	}
	if segs[1].R2 > 0.1 {
		t.Errorf("noise segmentation R2 = %v", segs[1].R2)
	}
	if segs[0].Groups != 4 {
		t.Errorf("groups = %d", segs[0].Groups)
	}
	if _, err := SuggestSegmentation(tbl, "x", nil); !errors.Is(err, ErrNoDims) {
		t.Errorf("no dims err = %v", err)
	}
	if _, err := SuggestSegmentation(tbl, "zzz", []string{"g1"}); err == nil {
		t.Error("missing measure should error")
	}
	if _, err := SuggestSegmentation(tbl, "x", []string{"zzz"}); err == nil {
		t.Error("missing dim should error")
	}
}

func TestFacets(t *testing.T) {
	// Result rows heavily skew to g1="b"; g2 is uniform noise.
	n := 1000
	g1 := make([]string, n)
	g2 := make([]string, n)
	x := make([]int64, n)
	rng := rand.New(rand.NewSource(40))
	for i := 0; i < n; i++ {
		g1[i] = string(rune('a' + rng.Intn(4)))
		g2[i] = string(rune('w' + rng.Intn(3)))
		x[i] = int64(i)
	}
	var result []int
	for i := 0; i < n; i++ {
		if g1[i] == "b" && rng.Float64() < 0.9 || rng.Float64() < 0.02 {
			result = append(result, i)
		}
	}
	tbl, err := storage.FromColumns("t", storage.Schema{
		{Name: "g1", Type: storage.TString},
		{Name: "g2", Type: storage.TString},
		{Name: "x", Type: storage.TInt},
	}, []storage.Column{
		storage.NewStringColumn(g1), storage.NewStringColumn(g2), storage.NewIntColumn(x),
	})
	if err != nil {
		t.Fatal(err)
	}
	facets, err := Facets(tbl, result, []string{"g1", "g2"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(facets) == 0 {
		t.Fatal("no facets")
	}
	top := facets[0]
	if top.Col != "g1" || top.Value != "b" {
		t.Errorf("top facet = %+v", top)
	}
	if top.Lift < 2 {
		t.Errorf("lift = %v", top.Lift)
	}
	// Noise dimension should not produce high-lift facets above the signal.
	for _, f := range facets {
		if f.Col == "g2" && f.Lift > top.Lift {
			t.Errorf("noise facet outranks signal: %+v", f)
		}
	}
	// Errors.
	if _, err := Facets(tbl, nil, []string{"g1"}, 3); !errors.Is(err, ErrNoResult) {
		t.Errorf("empty result err = %v", err)
	}
	if _, err := Facets(tbl, result, nil, 3); !errors.Is(err, ErrNoDims) {
		t.Errorf("no dims err = %v", err)
	}
	if _, err := Facets(tbl, result, []string{"g1"}, 0); !errors.Is(err, ErrBadK) {
		t.Errorf("k err = %v", err)
	}
	if _, err := Facets(tbl, result, []string{"zzz"}, 3); err == nil {
		t.Error("missing column should error")
	}
}
