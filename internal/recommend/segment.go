package recommend

import (
	"errors"
	"sort"

	"dex/internal/metrics"
	"dex/internal/storage"
)

// ErrNoDims is returned when no candidate segmentation dimension is given.
var ErrNoDims = errors.New("recommend: no candidate dimensions")

// Segmentation scores one candidate GROUP BY dimension for a measure: how
// much of the measure's variance the segmentation explains (the R² of the
// one-way decomposition), as the "big data query advisor" Charles [57]
// proposes segmentations that make a measure's behaviour legible.
type Segmentation struct {
	Dim    string
	Groups int
	// R2 is betweenGroupVariance / totalVariance in [0,1].
	R2 float64
}

// SuggestSegmentation ranks the candidate dimensions of t by how well
// grouping on them explains the measure column's variance. Dimensions with
// one distinct value score 0; errors on missing columns surface eagerly.
func SuggestSegmentation(t *storage.Table, measure string, dims []string) ([]Segmentation, error) {
	if len(dims) == 0 {
		return nil, ErrNoDims
	}
	mc, err := t.ColumnByName(measure)
	if err != nil {
		return nil, err
	}
	xs := make([]float64, t.NumRows())
	for i := range xs {
		xs[i] = mc.Value(i).AsFloat()
	}
	total := metrics.Variance(xs) * float64(len(xs)-1) // total sum of squares
	grand := metrics.Mean(xs)
	out := make([]Segmentation, 0, len(dims))
	for _, d := range dims {
		dc, err := t.ColumnByName(d)
		if err != nil {
			return nil, err
		}
		sums := map[string]*metrics.Stream{}
		for i := range xs {
			k := dc.Value(i).String()
			s, ok := sums[k]
			if !ok {
				s = &metrics.Stream{}
				sums[k] = s
			}
			s.Add(xs[i])
		}
		var between float64
		for _, s := range sums {
			d := s.Mean() - grand
			between += float64(s.N()) * d * d
		}
		r2 := 0.0
		if total > 0 {
			r2 = between / total
		}
		out = append(out, Segmentation{Dim: d, Groups: len(sums), R2: r2})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].R2 != out[b].R2 {
			return out[a].R2 > out[b].R2
		}
		return out[a].Dim < out[b].Dim
	})
	return out, nil
}
