package qbe

import (
	"errors"
	"math/rand"
	"testing"

	"dex/internal/expr"
	"dex/internal/storage"
)

func mkEmployees(tb testing.TB, n int, seed int64) *storage.Table {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	depts := []string{"eng", "sales", "hr", "ops"}
	age := make([]int64, n)
	sal := make([]float64, n)
	dep := make([]string, n)
	for i := 0; i < n; i++ {
		age[i] = int64(20 + rng.Intn(45))
		sal[i] = 30000 + rng.Float64()*90000
		dep[i] = depts[rng.Intn(len(depts))]
	}
	t, err := storage.FromColumns("emp", storage.Schema{
		{Name: "age", Type: storage.TInt},
		{Name: "salary", Type: storage.TFloat},
		{Name: "dept", Type: storage.TString},
	}, []storage.Column{
		storage.NewIntColumn(age), storage.NewFloatColumn(sal), storage.NewStringColumn(dep),
	})
	if err != nil {
		tb.Fatal(err)
	}
	return t
}

// hiddenRows returns the rows matching the hidden target predicate.
func hiddenRows(t *testing.T, tbl *storage.Table, truth *expr.Pred) []int {
	t.Helper()
	sel, err := expr.Filter(tbl, truth)
	if err != nil {
		t.Fatal(err)
	}
	return sel
}

func TestConjunctiveRecoversRangeQuery(t *testing.T) {
	tbl := mkEmployees(t, 3000, 1)
	truth := expr.And(
		expr.Cmp("age", expr.GE, storage.Int(30)),
		expr.Cmp("age", expr.LE, storage.Int(40)),
		expr.Cmp("dept", expr.EQ, storage.String_("eng")),
	)
	all := hiddenRows(t, tbl, truth)
	if len(all) < 20 {
		t.Skip("degenerate data")
	}
	// User provides all matching tuples as examples (ideal QBO setting).
	d, err := DiscoverConjunctive(tbl, all, []string{"age", "salary", "dept"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Covered != len(all) {
		t.Errorf("covered %d/%d examples", d.Covered, len(all))
	}
	prec, rec, f1, err := Score(tbl, d.Pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if rec != 1 {
		t.Errorf("recall = %v, conjunctive discovery must cover all examples", rec)
	}
	if prec < 0.9 || f1 < 0.9 {
		t.Errorf("precision = %.3f f1 = %.3f", prec, f1)
	}
}

func TestConjunctiveAccuracyGrowsWithExamples(t *testing.T) {
	tbl := mkEmployees(t, 4000, 2)
	truth := expr.And(
		expr.Cmp("salary", expr.GE, storage.Float(50000)),
		expr.Cmp("salary", expr.LT, storage.Float(90000)),
	)
	all := hiddenRows(t, tbl, truth)
	rng := rand.New(rand.NewSource(3))
	f1At := func(k int) float64 {
		ex := make([]int, k)
		for i := range ex {
			ex[i] = all[rng.Intn(len(all))]
		}
		d, err := DiscoverConjunctive(tbl, ex, []string{"age", "salary", "dept"})
		if err != nil {
			t.Fatal(err)
		}
		_, _, f1, err := Score(tbl, d.Pred, truth)
		if err != nil {
			t.Fatal(err)
		}
		return f1
	}
	small, big := f1At(3), f1At(200)
	if big < small {
		t.Errorf("f1 with 200 examples (%.3f) < with 3 (%.3f)", big, small)
	}
	if big < 0.95 {
		t.Errorf("f1 with 200 examples = %.3f", big)
	}
}

func TestPruningDropsIrrelevantColumns(t *testing.T) {
	tbl := mkEmployees(t, 2000, 4)
	truth := expr.Cmp("dept", expr.EQ, storage.String_("hr"))
	all := hiddenRows(t, tbl, truth)
	d, err := DiscoverConjunctive(tbl, all, []string{"age", "salary", "dept"})
	if err != nil {
		t.Fatal(err)
	}
	// age/salary ranges over *all* hr rows span nearly the full domain and
	// should be pruned away, leaving only the dept constraint.
	cols := d.Pred.Columns()
	for _, c := range cols {
		if c != "dept" {
			t.Errorf("unpruned column %q in %s", c, d.Pred)
		}
	}
}

func TestTreeDiscoveryRecoversDisjunction(t *testing.T) {
	tbl := mkEmployees(t, 5000, 5)
	truth := expr.Or(
		expr.And(expr.Cmp("age", expr.GE, storage.Int(22)), expr.Cmp("age", expr.LT, storage.Int(28))),
		expr.And(expr.Cmp("age", expr.GE, storage.Int(50)), expr.Cmp("age", expr.LT, storage.Int(58))),
	)
	all := hiddenRows(t, tbl, truth)
	d, err := DiscoverByTree(tbl, all, []string{"age", "salary"}, TreeOptions{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	_, rec, f1, err := Score(tbl, d.Pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if f1 < 0.85 {
		t.Errorf("tree f1 = %.3f (recall %.3f) for disjunctive target", f1, rec)
	}
	// Conjunctive discovery necessarily merges the two ranges into one;
	// the tree should beat it.
	dc, err := DiscoverConjunctive(tbl, all, []string{"age", "salary"})
	if err != nil {
		t.Fatal(err)
	}
	_, _, cf1, _ := Score(tbl, dc.Pred, truth)
	if f1 <= cf1 {
		t.Errorf("tree f1 %.3f <= conjunctive %.3f on disjunctive target", f1, cf1)
	}
}

func TestErrors(t *testing.T) {
	tbl := mkEmployees(t, 100, 7)
	if _, err := DiscoverConjunctive(tbl, nil, []string{"age"}); !errors.Is(err, ErrNoExamples) {
		t.Errorf("no examples err = %v", err)
	}
	if _, err := DiscoverConjunctive(tbl, []int{1}, nil); !errors.Is(err, ErrNoColumns) {
		t.Errorf("no cols err = %v", err)
	}
	if _, err := DiscoverConjunctive(tbl, []int{-1}, []string{"age"}); !errors.Is(err, ErrBadRow) {
		t.Errorf("bad row err = %v", err)
	}
	if _, err := DiscoverConjunctive(tbl, []int{1}, []string{"zzz"}); err == nil {
		t.Error("missing column should error")
	}
	if _, err := DiscoverByTree(tbl, []int{1}, []string{"dept"}, TreeOptions{}); err == nil {
		t.Error("tree discovery over TEXT should error")
	}
	if _, err := DiscoverByTree(tbl, []int{999}, []string{"age"}, TreeOptions{}); !errors.Is(err, ErrBadRow) {
		t.Errorf("tree bad row err = %v", err)
	}
}

func TestSingleExample(t *testing.T) {
	tbl := mkEmployees(t, 500, 8)
	d, err := DiscoverConjunctive(tbl, []int{42}, []string{"age", "dept"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Covered != 1 {
		t.Errorf("single example covered = %d", d.Covered)
	}
	if d.OutputSize < 1 {
		t.Errorf("output size = %d", d.OutputSize)
	}
}

func TestScoreOnIdenticalPreds(t *testing.T) {
	tbl := mkEmployees(t, 500, 9)
	p := expr.Cmp("age", expr.LT, storage.Int(30))
	prec, rec, f1, err := Score(tbl, p, p)
	if err != nil {
		t.Fatal(err)
	}
	if prec != 1 || rec != 1 || f1 != 1 {
		t.Errorf("self score = %v/%v/%v", prec, rec, f1)
	}
}
