// Package qbe implements query-by-example discovery, the
// assisted-query-formulation family the tutorial surveys: given example
// tuples the user knows should appear in the answer, the system reverse
// engineers a selection query that produces them (Query By Output [64],
// Discovering Queries from Example Tuples [58], learning queries by
// example [3]). Two discoverers are provided: the most-specific conjunctive
// query with redundant-conjunct pruning, and a decision-tree learner that
// can recover disjunctive targets from examples plus sampled
// counter-examples.
package qbe

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"dex/internal/expr"
	"dex/internal/learn"
	"dex/internal/metrics"
	"dex/internal/storage"
)

// Package-level sentinel errors.
var (
	ErrNoExamples = errors.New("qbe: no example rows")
	ErrNoColumns  = errors.New("qbe: no candidate columns")
	ErrBadRow     = errors.New("qbe: example row out of range")
)

// Discovery is a reverse-engineered query plus its evaluation against the
// examples: Covered is how many examples the predicate selects (recall on
// the examples is Covered/len(examples)), OutputSize the total selected
// rows.
type Discovery struct {
	Pred       *expr.Pred
	Covered    int
	OutputSize int
}

// DiscoverConjunctive finds the most specific conjunctive range/IN query
// over the candidate columns that covers all example rows, then drops
// conjuncts that do not shrink the output (the minimality step of QBO).
// Numeric columns yield closed ranges [min,max]; string columns yield
// IN-sets rendered as OR of equalities.
func DiscoverConjunctive(t *storage.Table, exampleRows []int, cols []string) (*Discovery, error) {
	if len(exampleRows) == 0 {
		return nil, ErrNoExamples
	}
	if len(cols) == 0 {
		return nil, ErrNoColumns
	}
	for _, r := range exampleRows {
		if r < 0 || r >= t.NumRows() {
			return nil, fmt.Errorf("row %d: %w", r, ErrBadRow)
		}
	}
	var conjuncts []*expr.Pred
	for _, name := range cols {
		c, err := t.ColumnByName(name)
		if err != nil {
			return nil, err
		}
		if c.Type() == storage.TString {
			seen := map[string]bool{}
			var vals []string
			for _, r := range exampleRows {
				v := c.Value(r).S
				if !seen[v] {
					seen[v] = true
					vals = append(vals, v)
				}
			}
			sort.Strings(vals)
			var terms []*expr.Pred
			for _, v := range vals {
				terms = append(terms, expr.Cmp(name, expr.EQ, storage.String_(v)))
			}
			if len(terms) == 1 {
				conjuncts = append(conjuncts, terms[0])
			} else {
				conjuncts = append(conjuncts, expr.Or(terms...))
			}
			continue
		}
		lo := c.Value(exampleRows[0])
		hi := lo
		for _, r := range exampleRows[1:] {
			v := c.Value(r)
			if v.Compare(lo) < 0 {
				lo = v
			}
			if v.Compare(hi) > 0 {
				hi = v
			}
		}
		conjuncts = append(conjuncts,
			expr.And(expr.Cmp(name, expr.GE, lo), expr.Cmp(name, expr.LE, hi)))
	}
	full := expr.And(conjuncts...)
	fullSize, err := expr.Count(t, full)
	if err != nil {
		return nil, err
	}
	// Prune: drop any conjunct whose removal keeps the output size equal.
	kept := append([]*expr.Pred(nil), conjuncts...)
	for i := 0; i < len(kept); {
		trial := make([]*expr.Pred, 0, len(kept)-1)
		trial = append(trial, kept[:i]...)
		trial = append(trial, kept[i+1:]...)
		var p *expr.Pred
		if len(trial) == 0 {
			p = expr.True()
		} else {
			p = expr.And(trial...)
		}
		size, err := expr.Count(t, p)
		if err != nil {
			return nil, err
		}
		if size == fullSize {
			kept = trial
			continue
		}
		i++
	}
	var final *expr.Pred
	switch len(kept) {
	case 0:
		final = expr.True()
	case 1:
		final = kept[0]
	default:
		final = expr.And(kept...)
	}
	return evaluate(t, final, exampleRows)
}

// TreeOptions configures DiscoverByTree.
type TreeOptions struct {
	// NegSamples is how many non-example rows are drawn as negatives
	// (default 5x the training positives).
	NegSamples int
	// MaxExamples caps the positives used for training (0 = all). The full
	// example set is still excluded from the negative pool, so subsampling
	// never poisons the negatives with known positives.
	MaxExamples int
	Seed        int64
	Tree        learn.Options
}

// DiscoverByTree learns a classifier separating the example rows from a
// random sample of other rows over the numeric candidate columns, then
// decompiles its positive regions into a (possibly disjunctive) predicate.
// This recovers targets the conjunctive discoverer cannot (e.g. unions of
// ranges) at the cost of needing counter-examples, which it samples itself
// — the "query from examples with implicit negatives" setting of [58].
func DiscoverByTree(t *storage.Table, exampleRows []int, cols []string, opt TreeOptions) (*Discovery, error) {
	if len(exampleRows) == 0 {
		return nil, ErrNoExamples
	}
	if len(cols) == 0 {
		return nil, ErrNoColumns
	}
	ccols := make([]storage.Column, len(cols))
	for i, name := range cols {
		c, err := t.ColumnByName(name)
		if err != nil {
			return nil, err
		}
		if c.Type() == storage.TString {
			return nil, fmt.Errorf("qbe: tree discovery needs numeric columns, %q is TEXT", name)
		}
		ccols[i] = c
	}
	isEx := map[int]bool{}
	for _, r := range exampleRows {
		if r < 0 || r >= t.NumRows() {
			return nil, fmt.Errorf("row %d: %w", r, ErrBadRow)
		}
		isEx[r] = true
	}
	trainPos := exampleRows
	rng := rand.New(rand.NewSource(opt.Seed))
	if opt.MaxExamples > 0 && len(trainPos) > opt.MaxExamples {
		perm := rng.Perm(len(exampleRows))
		trainPos = make([]int, opt.MaxExamples)
		for i := range trainPos {
			trainPos[i] = exampleRows[perm[i]]
		}
	}
	neg := opt.NegSamples
	if neg <= 0 {
		neg = 5 * len(trainPos)
	}
	feat := func(r int) []float64 {
		x := make([]float64, len(ccols))
		for i, c := range ccols {
			x[i] = c.Value(r).AsFloat()
		}
		return x
	}
	var X [][]float64
	var y []bool
	for _, r := range trainPos {
		X = append(X, feat(r))
		y = append(y, true)
	}
	for tries := 0; neg > 0 && tries < 100*neg; tries++ {
		r := rng.Intn(t.NumRows())
		if !isEx[r] {
			X = append(X, feat(r))
			y = append(y, false)
			neg--
		}
	}
	if opt.Tree.MinLeaf == 0 {
		opt.Tree.MinLeaf = 1
	}
	tree, err := learn.FitTree(X, y, opt.Tree)
	if err != nil {
		return nil, err
	}
	regions := tree.PositiveRegions(nil)
	if len(regions) == 0 {
		return evaluate(t, nil, exampleRows)
	}
	var terms []*expr.Pred
	for _, g := range regions {
		var conj []*expr.Pred
		for d, r := range g {
			if !isInfNeg(r.Lo) {
				conj = append(conj, expr.Cmp(cols[d], expr.GE, storage.Float(r.Lo)))
			}
			if !isInfPos(r.Hi) {
				conj = append(conj, expr.Cmp(cols[d], expr.LT, storage.Float(r.Hi)))
			}
		}
		if len(conj) == 0 {
			terms = append(terms, expr.True())
		} else {
			terms = append(terms, expr.And(conj...))
		}
	}
	var final *expr.Pred
	if len(terms) == 1 {
		final = terms[0]
	} else {
		final = expr.Or(terms...)
	}
	return evaluate(t, final, exampleRows)
}

func isInfNeg(v float64) bool { return v < -1e300 }
func isInfPos(v float64) bool { return v > 1e300 }

func evaluate(t *storage.Table, p *expr.Pred, exampleRows []int) (*Discovery, error) {
	if p == nil {
		return &Discovery{Pred: nil}, nil
	}
	sel, err := expr.Filter(t, p)
	if err != nil {
		return nil, err
	}
	inSel := map[int]bool{}
	for _, r := range sel {
		inSel[r] = true
	}
	covered := 0
	for _, r := range exampleRows {
		if inSel[r] {
			covered++
		}
	}
	return &Discovery{Pred: p, Covered: covered, OutputSize: len(sel)}, nil
}

// Score compares a discovered predicate against a hidden target predicate,
// returning precision, recall and F1 over the table rows.
func Score(t *storage.Table, discovered, truth *expr.Pred) (prec, rec, f1 float64, err error) {
	dsel, err := expr.Filter(t, discovered)
	if err != nil {
		return 0, 0, 0, err
	}
	tsel, err := expr.Filter(t, truth)
	if err != nil {
		return 0, 0, 0, err
	}
	inT := map[int]bool{}
	for _, r := range tsel {
		inT[r] = true
	}
	tp := 0
	for _, r := range dsel {
		if inT[r] {
			tp++
		}
	}
	fp := len(dsel) - tp
	fn := len(tsel) - tp
	if tp+fp > 0 {
		prec = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		rec = float64(tp) / float64(tp+fn)
	}
	return prec, rec, metrics.F1(tp, fp, fn), nil
}
