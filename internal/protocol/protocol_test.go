package protocol_test

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"math"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"

	"dex/internal/exec"
	"dex/internal/expr"
	"dex/internal/protocol"
	"dex/internal/storage"
)

// jsonCycle pushes v through one marshal/unmarshal, the way every frame
// payload travels, so round-trip tests exercise the real wire form.
func jsonCycle(t *testing.T, v, out any) {
	t.Helper()
	blob, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(blob, out); err != nil {
		t.Fatal(err)
	}
}

func TestValueRoundTrip(t *testing.T) {
	vals := []storage.Value{
		storage.Int(0),
		storage.Int(-1),
		storage.Int(math.MaxInt64),
		storage.Int(math.MinInt64),
		storage.Float(0),
		storage.Float(-3.25),
		storage.Float(1e308),
		storage.Float(5e-324), // smallest denormal
		storage.Float(math.NaN()),
		storage.Float(math.Inf(1)),
		storage.Float(math.Inf(-1)),
		storage.String_(""),
		storage.String_("plain"),
		storage.String_("tabs\tnewlines\nnulls\x00quotes\"backslash\\"),
		storage.String_("héllo wörld — ünïcode ✓ 日本語"),
	}
	for _, v := range vals {
		var w protocol.WireValue
		jsonCycle(t, protocol.FromValue(v), &w)
		got, err := w.ToValue()
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if got.Typ != v.Typ {
			t.Fatalf("%v: type changed to %v", v, got.Typ)
		}
		if v.Typ == storage.TFloat && math.IsNaN(v.AsFloat()) {
			if !math.IsNaN(got.AsFloat()) {
				t.Fatalf("NaN decoded as %v", got)
			}
			continue
		}
		if got.String() != v.String() {
			t.Fatalf("round trip changed %q to %q", v.String(), got.String())
		}
	}
}

func TestValueBadType(t *testing.T) {
	w := protocol.WireValue{Typ: "DECIMAL", Val: "1"}
	if _, err := w.ToValue(); err == nil {
		t.Fatal("unknown type must not decode")
	}
}

func TestPredRoundTrip(t *testing.T) {
	preds := []*expr.Pred{
		nil,
		expr.Cmp("a", expr.GE, storage.Int(3)),
		expr.Like("s", "p%"),
		expr.And(
			expr.Cmp("a", expr.GE, storage.Float(math.Inf(-1))),
			expr.Or(
				expr.Cmp("b", expr.LT, storage.String_("zzz")),
				expr.Not(expr.Cmp("c", expr.EQ, storage.Int(0))),
			),
		),
	}
	for i, p := range preds {
		var w *protocol.WirePred
		jsonCycle(t, protocol.FromPred(p), &w)
		got, err := w.ToPred()
		if err != nil {
			t.Fatalf("pred %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("pred %d: round trip changed\n%#v\nto\n%#v", i, p, got)
		}
	}
}

func TestQueryRoundTrip(t *testing.T) {
	q := exec.Query{
		Select: []exec.SelectItem{
			{Col: "region"},
			{Col: "amount", Agg: exec.AggSum, As: "total"},
			{Col: "*", Agg: exec.AggCount},
		},
		Where:   expr.And(expr.Cmp("amount", expr.GT, storage.Float(99.5)), expr.Cmp("qty", expr.LE, storage.Int(7))),
		GroupBy: []string{"region"},
		Having:  expr.Cmp("total", expr.GT, storage.Float(1000)),
		OrderBy: []exec.OrderKey{{Col: "total", Desc: true}, {Col: "region"}},
		Limit:   25,
	}
	var w protocol.WireQuery
	jsonCycle(t, protocol.FromQuery(q), &w)
	got, err := w.ToQuery()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, q) {
		t.Fatalf("round trip changed\n%#v\nto\n%#v", q, got)
	}
}

func TestTableRoundTrip(t *testing.T) {
	tbl, err := storage.FromColumns("rt", storage.Schema{
		{Name: "i", Type: storage.TInt},
		{Name: "f", Type: storage.TFloat},
		{Name: "s", Type: storage.TString},
	}, []storage.Column{
		storage.NewIntColumn([]int64{1, -2, math.MaxInt64}),
		storage.NewFloatColumn([]float64{1.5, math.NaN(), math.Inf(1)}),
		storage.NewStringColumn([]string{"", "ünïcode", "with\nnewline"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	var w protocol.WireTable
	jsonCycle(t, protocol.FromTable(tbl), &w)
	got, err := w.ToTable()
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != "rt" || got.NumRows() != 3 || got.NumCols() != 3 {
		t.Fatalf("shape changed: %s %dx%d", got.Name(), got.NumRows(), got.NumCols())
	}
	for c := 0; c < 3; c++ {
		for r := 0; r < 3; r++ {
			want, have := tbl.Column(c).Value(r), got.Column(c).Value(r)
			if want.Typ == storage.TFloat && math.IsNaN(want.AsFloat()) {
				if !math.IsNaN(have.AsFloat()) {
					t.Fatalf("cell %d/%d: NaN became %v", c, r, have)
				}
				continue
			}
			if want.String() != have.String() {
				t.Fatalf("cell %d/%d changed %q to %q", c, r, want.String(), have.String())
			}
		}
	}
}

func TestTableRoundTripEmpty(t *testing.T) {
	// nil table: the worker's empty-partition reply.
	var w protocol.WireTable
	jsonCycle(t, protocol.FromTable(nil), &w)
	got, err := w.ToTable()
	if err != nil {
		t.Fatal(err)
	}
	if got.NumCols() != 0 || got.NumRows() != 0 {
		t.Fatalf("nil table decoded to %dx%d", got.NumRows(), got.NumCols())
	}
}

func TestTableMalformed(t *testing.T) {
	bad := []protocol.WireTable{
		{Cols: []string{"a"}, Types: []string{"INT", "INT"}, Cells: [][]string{{"1"}}},
		{Cols: []string{"a", "b"}, Types: []string{"INT", "INT"}, Cells: [][]string{{"1", "2"}, {"3"}}},
		{Cols: []string{"a"}, Types: []string{"BLOB"}, Cells: [][]string{{"1"}}},
		{Cols: []string{"a"}, Types: []string{"INT"}, Cells: [][]string{{"notanint"}}},
	}
	for i, w := range bad {
		if _, err := w.ToTable(); err == nil {
			t.Fatalf("malformed table %d decoded without error", i)
		}
	}
}

func TestConnFraming(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := protocol.NewConn(a), protocol.NewConn(b)
	defer ca.Close()
	defer cb.Close()

	done := make(chan error, 1)
	go func() {
		done <- ca.Send(protocol.MsgPing, protocol.Ping{ID: 42})
	}()
	typ, payload, err := cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if typ != protocol.MsgPing {
		t.Fatalf("type byte %d, want %d", typ, protocol.MsgPing)
	}
	var p protocol.Ping
	if err := json.Unmarshal(payload, &p); err != nil || p.ID != 42 {
		t.Fatalf("payload %q err %v", payload, err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestConnConcurrentSends(t *testing.T) {
	// The worker answers queries from per-query goroutines over one
	// shared connection: N concurrent senders must interleave whole
	// frames, never bytes.
	const n = 50
	a, b := net.Pipe()
	ca, cb := protocol.NewConn(a), protocol.NewConn(b)
	defer ca.Close()
	defer cb.Close()

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			if err := ca.Send(protocol.MsgPong, protocol.Pong{ID: id}); err != nil {
				t.Error(err)
			}
		}(uint64(i))
	}
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		typ, payload, err := cb.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if typ != protocol.MsgPong {
			t.Fatalf("frame %d: type %d", i, typ)
		}
		var p protocol.Pong
		if err := json.Unmarshal(payload, &p); err != nil {
			t.Fatalf("frame %d corrupted: %v", i, err)
		}
		if seen[p.ID] {
			t.Fatalf("duplicate frame id %d", p.ID)
		}
		seen[p.ID] = true
	}
	wg.Wait()
}

func TestConnSendTooLarge(t *testing.T) {
	a, b := net.Pipe()
	ca := protocol.NewConn(a)
	defer ca.Close()
	defer b.Close()
	huge := protocol.Result{Table: protocol.WireTable{
		Name:  "huge",
		Cols:  []string{"s"},
		Types: []string{"TEXT"},
		Cells: [][]string{{strings.Repeat("a", protocol.MaxFrame)}},
	}}
	if err := ca.Send(protocol.MsgResult, huge); !errors.Is(err, protocol.ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

func TestConnRecvTooLarge(t *testing.T) {
	// A hostile or corrupt length prefix must be rejected before any
	// allocation, not trusted.
	a, b := net.Pipe()
	cb := protocol.NewConn(b)
	defer cb.Close()
	go func() {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], protocol.MaxFrame+1)
		a.Write(hdr[:])
		a.Close()
	}()
	if _, _, err := cb.Recv(); !errors.Is(err, protocol.ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

func TestConnRecvEmptyFrame(t *testing.T) {
	a, b := net.Pipe()
	cb := protocol.NewConn(b)
	defer cb.Close()
	go func() {
		a.Write([]byte{0, 0, 0, 0})
		a.Close()
	}()
	if _, _, err := cb.Recv(); err == nil {
		t.Fatal("zero-length frame must not decode")
	}
}
