package protocol

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// MaxFrame bounds one frame's payload (type byte included). It exists so
// a corrupt or hostile length prefix cannot make a reader allocate
// gigabytes; 64 MiB comfortably fits any result the engine produces
// (the HTTP tier caps bodies far below this).
const MaxFrame = 64 << 20

// ErrFrameTooLarge is returned for frames exceeding MaxFrame, on either
// side of the connection.
var ErrFrameTooLarge = fmt.Errorf("protocol: frame exceeds %d bytes", MaxFrame)

// Conn wraps a net.Conn with the length-prefixed framing. Writes are
// serialized by an internal mutex so concurrent request handlers (the
// worker answers queries from per-query goroutines) can share one
// connection; reads are not synchronized — each side owns exactly one
// reader goroutine by construction.
type Conn struct {
	nc net.Conn
	r  *bufio.Reader

	wmu sync.Mutex
	w   *bufio.Writer
}

// NewConn wraps an established connection.
func NewConn(nc net.Conn) *Conn {
	return &Conn{
		nc: nc,
		r:  bufio.NewReaderSize(nc, 64<<10),
		w:  bufio.NewWriterSize(nc, 64<<10),
	}
}

// Send marshals v and writes one frame of the given type. Safe for
// concurrent use.
func (c *Conn) Send(typ byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("protocol: marshal type %d: %w", typ, err)
	}
	if len(payload)+1 > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.w.Write(payload); err != nil {
		return err
	}
	return c.w.Flush()
}

// Recv reads one frame and returns its type byte and raw payload. Only
// the connection's single reader goroutine may call it.
func (c *Conn) Recv() (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1 {
		return 0, nil, fmt.Errorf("protocol: empty frame")
	}
	if n > MaxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// SetReadDeadline bounds the next Recv.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.nc.SetReadDeadline(t) }

// Close closes the underlying connection. Any blocked Recv returns an
// error.
func (c *Conn) Close() error { return c.nc.Close() }

// RemoteAddr reports the peer address (logs only).
func (c *Conn) RemoteAddr() string { return c.nc.RemoteAddr().String() }
