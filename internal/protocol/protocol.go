// Package protocol is the compact framed wire protocol between a dex
// coordinator and its shard workers. It deliberately knows nothing about
// execution: messages, framing and the wire encodings of queries and
// tables live here; scatter/gather policy lives in internal/shard.
//
// Framing: every message is a 4-byte big-endian length, one type byte,
// and a JSON payload. JSON keeps the payloads debuggable (`nc` a worker
// and read the traffic) while the length prefix keeps parsing
// allocation-bounded and lets one connection multiplex concurrent
// requests — every request/response carries a uint64 ID, so responses
// may arrive in any order.
//
// JSON cannot carry NaN (the engine's NULL) or ±Inf (the estimators'
// unbounded CI), and result tables routinely contain both. The wire
// therefore encodes every cell and predicate constant as a string via
// storage.Value.String / storage.ParseValue, which round-trip all three
// value types exactly — including NaN, ±Inf and full float64 precision
// ('g', -1 formatting).
package protocol

import (
	"errors"
	"fmt"

	"dex/internal/exec"
	"dex/internal/expr"
	"dex/internal/storage"
)

// Version is the protocol version exchanged in Hello/HelloAck. A worker
// refuses a coordinator with a different version: the fleet is deployed
// as one unit, so a mismatch means a half-upgraded cluster.
const Version = 1

// Message type bytes.
const (
	// MsgHello opens a connection (coordinator -> worker).
	MsgHello byte = iota + 1
	// MsgHelloAck answers a Hello (worker -> coordinator).
	MsgHelloAck
	// MsgLoad tells the worker to stage a source table (demo generator or
	// server-side CSV path).
	MsgLoad
	// MsgPartition tells the worker which partition of a staged table to
	// keep and register for queries.
	MsgPartition
	// MsgQuery submits one query for execution.
	MsgQuery
	// MsgCancel cancels an in-flight query by ID.
	MsgCancel
	// MsgResult carries a successful response to Load/Partition/Query.
	MsgResult
	// MsgError carries a failed response to any request.
	MsgError
	// MsgPing / MsgPong are the liveness probe.
	MsgPing
	MsgPong
	// MsgStats asks the worker for its engine-level counters; MsgStatsAck
	// answers. The healer uses it both as a liveness probe and to decide
	// whether a reachable worker still holds its staged partition.
	MsgStats
	MsgStatsAck
)

// Error codes carried by ErrorMsg. The coordinator's retry policy keys
// off them: a query the user got wrong fails the same way everywhere, so
// only infrastructure failures are worth another attempt.
const (
	// CodeBadQuery marks a user error (bad SQL shape, unknown column):
	// deterministic, never retried.
	CodeBadQuery = "bad_query"
	// CodeCanceled marks a query that stopped because its context was
	// cancelled or its deadline expired on the worker.
	CodeCanceled = "canceled"
	// CodeInternal marks an infrastructure failure (including injected
	// faults): retryable.
	CodeInternal = "internal"
	// CodeUnknownTable marks a query against a table the worker has not
	// registered — the signature of a restarted, blank worker. It is
	// deliberately its own code: retrying cannot help (the table stays
	// missing until someone re-stages it), so the coordinator classifies
	// it non-retryable and heals the shard instead.
	CodeUnknownTable = "unknown_table"
)

// Hello is the connection opener.
type Hello struct {
	ID      uint64 `json:"id"`
	Version int    `json:"version"`
	// Name identifies the coordinator (logs only).
	Name string `json:"name,omitempty"`
}

// HelloAck answers a Hello.
type HelloAck struct {
	ID      uint64 `json:"id"`
	Version int    `json:"version"`
	// Shard is the worker's self-reported shard index (-1 before a
	// Partition assigns one).
	Shard int `json:"shard"`
	// Tables lists the worker's registered (partitioned) tables.
	Tables []string `json:"tables,omitempty"`
}

// Load stages a source table on the worker. Exactly one of Kind (demo
// generator: sales|sky|ticks) or Path (CSV readable by the worker
// process) is set. The staged table is not queryable until a Partition
// message selects the worker's slice of it.
type Load struct {
	ID   uint64 `json:"id"`
	Name string `json:"name"`
	Kind string `json:"kind,omitempty"`
	Rows int    `json:"rows,omitempty"`
	Seed int64  `json:"seed,omitempty"`
	Path string `json:"path,omitempty"`
}

// Partition tells the worker to keep partition Index of Count of a
// staged table, partitioned on Column under Scheme ("hash" or "range";
// range uses Bounds, the Count-1 ascending split points). The worker
// computes its own slice — the coordinator never ships rows.
type Partition struct {
	ID     uint64    `json:"id"`
	Table  string    `json:"table"`
	Column string    `json:"column"`
	Scheme string    `json:"scheme"`
	Index  int       `json:"index"`
	Count  int       `json:"count"`
	Bounds []float64 `json:"bounds,omitempty"`
	// Owned lists every partition index this worker keeps. Empty means
	// just Index — the healthy one-partition-per-worker layout. After a
	// repartition heal a survivor adopts a dead peer's partition, so its
	// Owned carries several indices; the worker keeps the union of their
	// rows.
	Owned []int `json:"owned,omitempty"`
}

// Query submits one query against a registered table.
type Query struct {
	ID    uint64 `json:"id"`
	Table string `json:"table"`
	// Mode is the execution mode name (exact|cracked|approx|online).
	Mode  string    `json:"mode"`
	Query WireQuery `json:"query"`
	// TimeoutMS bounds execution on the worker (0 = no worker-side bound
	// beyond the connection's health).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Cancel aborts the in-flight request with the same ID. The worker still
// answers the cancelled request (with CodeCanceled), so the coordinator
// never leaks a pending slot.
type Cancel struct {
	ID uint64 `json:"id"`
}

// Result is the successful response to Load, Partition or Query. For
// Load/Partition the table is empty and Rows reports the staged/kept row
// count; for Query it is the result table.
type Result struct {
	ID        uint64    `json:"id"`
	Rows      int64     `json:"rows"`
	Table     WireTable `json:"table"`
	ElapsedUS int64     `json:"elapsed_us,omitempty"`
	// Degraded mirrors core.Answer.Degraded for worker-local degradation.
	Degraded bool `json:"degraded,omitempty"`
	// Mode is the mode that actually produced the result.
	Mode string `json:"mode,omitempty"`
}

// ErrorMsg is the failed response to any request.
type ErrorMsg struct {
	ID   uint64 `json:"id"`
	Code string `json:"code"`
	Msg  string `json:"msg"`
}

// Ping is the liveness probe; Pong echoes its ID.
type Ping struct {
	ID uint64 `json:"id"`
}

// Pong answers a Ping.
type Pong struct {
	ID uint64 `json:"id"`
}

// Stats asks the worker for its engine-level counters.
type Stats struct {
	ID uint64 `json:"id"`
}

// TableStat is one registered (queryable) table in a WorkerStats reply.
type TableStat struct {
	Name string `json:"name"`
	Rows int64  `json:"rows"`
}

// CrackStat reports one shard-local crack index.
type CrackStat struct {
	Table  string `json:"table"`
	Column string `json:"column"`
	Pieces int    `json:"pieces"`
	Cracks int64  `json:"cracks"`
}

// WorkerStats answers a Stats probe with the worker's shard-local
// counters: the crack/zone-map numbers the coordinator's stats section
// was blind to, plus the registered tables the healer compares against
// the placement map to tell a healthy worker from a blank restart.
type WorkerStats struct {
	ID          uint64      `json:"id"`
	Shard       int         `json:"shard"`
	RowsScanned int64       `json:"rows_scanned"`
	ZoneSkipped int64       `json:"zone_skipped"`
	Tables      []TableStat `json:"tables,omitempty"`
	Cracks      []CrackStat `json:"cracks,omitempty"`
}

// ---- wire encodings ----

// WireValue is one typed scalar, string-encoded (see package comment).
type WireValue struct {
	Typ string `json:"t"`
	Val string `json:"v"`
}

// FromValue encodes a storage.Value.
func FromValue(v storage.Value) WireValue {
	return WireValue{Typ: v.Typ.String(), Val: v.String()}
}

// ToValue decodes back to a storage.Value.
func (w WireValue) ToValue() (storage.Value, error) {
	t, err := ParseType(w.Typ)
	if err != nil {
		return storage.Value{}, err
	}
	return storage.ParseValue(w.Val, t)
}

// ParseType parses a storage.Type name as rendered by Type.String.
func ParseType(s string) (storage.Type, error) {
	switch s {
	case "INT":
		return storage.TInt, nil
	case "FLOAT":
		return storage.TFloat, nil
	case "TEXT":
		return storage.TString, nil
	default:
		return 0, fmt.Errorf("protocol: unknown type %q", s)
	}
}

// WirePred is the wire form of an expr.Pred tree.
type WirePred struct {
	Kind uint8      `json:"k"`
	Col  string     `json:"c,omitempty"`
	Op   uint8      `json:"o,omitempty"`
	Val  *WireValue `json:"v,omitempty"`
	Kids []WirePred `json:"kids,omitempty"`
}

// FromPred encodes a predicate tree (nil stays nil).
func FromPred(p *expr.Pred) *WirePred {
	if p == nil {
		return nil
	}
	w := &WirePred{Kind: uint8(p.Kind), Col: p.Col, Op: uint8(p.Op)}
	if p.Kind == expr.KCmp || p.Kind == expr.KLike {
		v := FromValue(p.Val)
		w.Val = &v
	}
	for _, k := range p.Kids {
		w.Kids = append(w.Kids, *FromPred(k))
	}
	return w
}

// ToPred decodes back to an expr.Pred tree.
func (w *WirePred) ToPred() (*expr.Pred, error) {
	if w == nil {
		return nil, nil
	}
	p := &expr.Pred{Kind: expr.Kind(w.Kind), Col: w.Col, Op: expr.Op(w.Op)}
	if w.Val != nil {
		v, err := w.Val.ToValue()
		if err != nil {
			return nil, err
		}
		p.Val = v
	}
	for i := range w.Kids {
		k, err := w.Kids[i].ToPred()
		if err != nil {
			return nil, err
		}
		p.Kids = append(p.Kids, k)
	}
	return p, nil
}

// WireSelect is one select item.
type WireSelect struct {
	Col string `json:"col"`
	Agg uint8  `json:"agg,omitempty"`
	As  string `json:"as,omitempty"`
}

// WireOrder is one ORDER BY key.
type WireOrder struct {
	Col  string `json:"col"`
	Desc bool   `json:"desc,omitempty"`
}

// WireQuery is the wire form of an exec.Query.
type WireQuery struct {
	Select  []WireSelect `json:"select"`
	Where   *WirePred    `json:"where,omitempty"`
	GroupBy []string     `json:"group_by,omitempty"`
	Having  *WirePred    `json:"having,omitempty"`
	OrderBy []WireOrder  `json:"order_by,omitempty"`
	Limit   int          `json:"limit,omitempty"`
}

// FromQuery encodes an exec.Query.
func FromQuery(q exec.Query) WireQuery {
	w := WireQuery{
		Where:   FromPred(q.Where),
		GroupBy: q.GroupBy,
		Having:  FromPred(q.Having),
		Limit:   q.Limit,
	}
	for _, s := range q.Select {
		w.Select = append(w.Select, WireSelect{Col: s.Col, Agg: uint8(s.Agg), As: s.As})
	}
	for _, o := range q.OrderBy {
		w.OrderBy = append(w.OrderBy, WireOrder{Col: o.Col, Desc: o.Desc})
	}
	return w
}

// ToQuery decodes back to an exec.Query.
func (w WireQuery) ToQuery() (exec.Query, error) {
	q := exec.Query{GroupBy: w.GroupBy, Limit: w.Limit}
	var err error
	if q.Where, err = w.Where.ToPred(); err != nil {
		return exec.Query{}, err
	}
	if q.Having, err = w.Having.ToPred(); err != nil {
		return exec.Query{}, err
	}
	for _, s := range w.Select {
		q.Select = append(q.Select, exec.SelectItem{Col: s.Col, Agg: exec.AggFunc(s.Agg), As: s.As})
	}
	for _, o := range w.OrderBy {
		q.OrderBy = append(q.OrderBy, exec.OrderKey{Col: o.Col, Desc: o.Desc})
	}
	return q, nil
}

// WireTable is a column-major string-encoded result table: Cells[c][r]
// is row r of column c. Column-major keeps the JSON compact (one array
// per column) and decodes straight into the columnar storage layer.
type WireTable struct {
	Name  string     `json:"name"`
	Cols  []string   `json:"cols"`
	Types []string   `json:"types"`
	Cells [][]string `json:"cells"`
}

// FromTable encodes a storage.Table (nil encodes as an empty table).
func FromTable(t *storage.Table) WireTable {
	if t == nil {
		return WireTable{}
	}
	schema := t.Schema()
	w := WireTable{
		Name:  t.Name(),
		Cols:  make([]string, len(schema)),
		Types: make([]string, len(schema)),
		Cells: make([][]string, len(schema)),
	}
	for c, f := range schema {
		w.Cols[c] = f.Name
		w.Types[c] = f.Type.String()
		col := t.Column(c)
		cells := make([]string, col.Len())
		for r := 0; r < col.Len(); r++ {
			cells[r] = col.Value(r).String()
		}
		w.Cells[c] = cells
	}
	return w
}

// ToTable decodes back to a storage.Table.
func (w WireTable) ToTable() (*storage.Table, error) {
	if len(w.Cols) != len(w.Types) || len(w.Cols) != len(w.Cells) {
		return nil, errors.New("protocol: malformed wire table: cols/types/cells lengths differ")
	}
	schema := make(storage.Schema, len(w.Cols))
	cols := make([]storage.Column, len(w.Cols))
	rows := -1
	for c := range w.Cols {
		t, err := ParseType(w.Types[c])
		if err != nil {
			return nil, err
		}
		schema[c] = storage.Field{Name: w.Cols[c], Type: t}
		if rows < 0 {
			rows = len(w.Cells[c])
		} else if rows != len(w.Cells[c]) {
			return nil, errors.New("protocol: malformed wire table: ragged columns")
		}
		col := storage.NewColumn(t)
		for _, s := range w.Cells[c] {
			v, err := storage.ParseValue(s, t)
			if err != nil {
				return nil, err
			}
			if err := col.Append(v); err != nil {
				return nil, err
			}
		}
		cols[c] = col
	}
	return storage.FromColumns(w.Name, schema, cols)
}
