package par

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkersForResolution(t *testing.T) {
	cases := []struct {
		name string
		opt  Options
		n    int
		want int
	}{
		{"serial cutoff", Options{Parallelism: 8}, 100, 1},
		{"single morsel", Options{Parallelism: 8, MorselSize: 10, SerialCutoff: -1}, 9, 1},
		{"capped by morsels", Options{Parallelism: 8, MorselSize: 10, SerialCutoff: -1}, 25, 3},
		{"full parallelism", Options{Parallelism: 4, MorselSize: 10, SerialCutoff: -1}, 1000, 4},
		{"explicit serial", Options{Parallelism: 1, MorselSize: 10, SerialCutoff: -1}, 1000, 1},
	}
	for _, tc := range cases {
		if got := NewPool(tc.opt).WorkersFor(tc.n); got != tc.want {
			t.Errorf("%s: WorkersFor(%d) = %d, want %d", tc.name, tc.n, got, tc.want)
		}
	}
	if w := NewPool(Options{}).WorkersFor(1 << 20); w < 1 {
		t.Errorf("GOMAXPROCS resolution gave %d workers", w)
	}
}

// TestForEachCoversExactly checks every row is visited exactly once, with
// morsel-aligned lower bounds, across ragged input sizes.
func TestForEachCoversExactly(t *testing.T) {
	for _, n := range []int{1, 7, 64, 65, 1000, 1023} {
		pool := NewPool(Options{Parallelism: 4, MorselSize: 64, SerialCutoff: -1})
		visits := make([]int32, n)
		pool.ForEach(n, func(_, lo, hi int) {
			if lo != 0 && lo%64 != 0 {
				t.Errorf("n=%d: morsel lower bound %d not aligned", n, lo)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("n=%d: row %d visited %d times", n, i, v)
			}
		}
	}
}

func TestForEachWorkerIDsDisjoint(t *testing.T) {
	pool := NewPool(Options{Parallelism: 3, MorselSize: 8, SerialCutoff: -1})
	n := 1000
	w := pool.WorkersFor(n)
	if w != 3 {
		t.Fatalf("WorkersFor = %d, want 3", w)
	}
	// Per-worker state indexed by worker id must never race: guard each
	// slot with its own mutex and assert no concurrent entry.
	busy := make([]atomic.Bool, w)
	counts := make([]int, w)
	pool.ForEach(n, func(worker, lo, hi int) {
		if worker < 0 || worker >= w {
			t.Errorf("worker id %d out of range [0,%d)", worker, w)
			return
		}
		if !busy[worker].CompareAndSwap(false, true) {
			t.Errorf("worker slot %d entered concurrently", worker)
		}
		counts[worker] += hi - lo
		busy[worker].Store(false)
	})
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Errorf("rows processed = %d, want %d", total, n)
	}
}

func TestForEachErrStopsEarly(t *testing.T) {
	pool := NewPool(Options{Parallelism: 2, MorselSize: 1, SerialCutoff: -1})
	boom := errors.New("boom")
	var after atomic.Int32
	err := pool.ForEachErr(1000, func(_, lo, _ int) error {
		if lo == 3 {
			return boom
		}
		after.Add(1)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := after.Load(); got >= 1000 {
		t.Errorf("scheduler did not stop early: %d morsels ran", got)
	}
}

func TestForEachPanicsPropagate(t *testing.T) {
	pool := NewPool(Options{Parallelism: 4, MorselSize: 1, SerialCutoff: -1})
	defer func() {
		if r := recover(); r != "worker panic" {
			t.Fatalf("recovered %v, want worker panic", r)
		}
	}()
	pool.ForEach(100, func(_, lo, _ int) {
		if lo == 42 {
			panic("worker panic")
		}
	})
	t.Fatal("no panic propagated")
}

func TestDoRunsEveryTask(t *testing.T) {
	pool := NewPool(Options{Parallelism: 4})
	var mu sync.Mutex
	seen := map[int]bool{}
	if err := pool.Do(37, func(task int) error {
		mu.Lock()
		defer mu.Unlock()
		if seen[task] {
			t.Errorf("task %d ran twice", task)
		}
		seen[task] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 37 {
		t.Errorf("ran %d tasks, want 37", len(seen))
	}
}

func TestDoSerialOrderAndError(t *testing.T) {
	pool := NewPool(Options{Parallelism: 1})
	var order []int
	boom := errors.New("boom")
	err := pool.Do(10, func(task int) error {
		if task == 4 {
			return boom
		}
		order = append(order, task)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if len(order) != 4 {
		t.Errorf("serial Do ran %d tasks before error, want 4", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Errorf("serial Do out of order: %v", order)
			break
		}
	}
}

func TestZeroAndNegativeInput(t *testing.T) {
	pool := NewPool(Options{Parallelism: 4})
	ran := false
	pool.ForEach(0, func(_, _, _ int) { ran = true })
	pool.ForEach(-5, func(_, _, _ int) { ran = true })
	if err := pool.Do(0, func(int) error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("callback ran on empty input")
	}
}
