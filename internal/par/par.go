// Package par is the engine's morsel-driven parallel execution layer, after
// the scheduling design of HyPer (Leis et al., "Morsel-Driven Parallelism",
// SIGMOD 2014): work over [0, n) is cut into fixed-size chunks of rows
// ("morsels") and a pool of worker goroutines pulls morsels from a shared
// atomic cursor until none remain. Dynamic self-scheduling keeps every core
// busy even when per-morsel cost is skewed (selective predicates, cracked
// partitions), while contiguous morsels preserve the sequential memory
// access pattern column scans depend on.
//
// The pool is GOMAXPROCS-aware (Parallelism 0 resolves to the runtime's
// value) and falls back to inline serial execution for small inputs, where
// goroutine startup would cost more than the scan itself. Operators that
// need per-worker state (partial aggregates, thread-local hash tables) size
// it with WorkersFor and receive the worker id in the callback.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"dex/internal/fault"
)

// fpClaim injects scheduler-level faults: it is hit before every morsel
// claim (parallel and serial paths alike), so an error policy kills an
// operation partway through its morsels and a latency policy stalls
// workers — the "slow worker" case morsel stealing is supposed to absorb.
var fpClaim = fault.Register("par/claim")

// Tuning defaults.
const (
	// DefaultMorselSize is the rows-per-morsel default: large enough to
	// amortize scheduling, small enough to load-balance skewed work.
	DefaultMorselSize = 16 * 1024
	// DefaultSerialCutoff is the input size below which work runs inline on
	// the calling goroutine regardless of the requested parallelism.
	DefaultSerialCutoff = 4 * 1024
)

// Options tunes a Pool.
type Options struct {
	// Parallelism is the number of workers: 0 means GOMAXPROCS, 1 forces
	// serial execution.
	Parallelism int
	// MorselSize is the rows per morsel (default DefaultMorselSize).
	MorselSize int
	// SerialCutoff is the input size below which execution is inline.
	// 0 means min(MorselSize, DefaultSerialCutoff); negative disables the
	// cutoff entirely (useful in tests that force tiny parallel runs).
	SerialCutoff int
}

// Pool schedules morsels over a bounded set of worker goroutines. Workers
// are spawned per operation (goroutines are cheap; the pool bounds how many
// run at once, it does not keep them alive between calls). The zero value
// is not useful; call NewPool.
type Pool struct {
	workers int
	morsel  int
	cutoff  int
}

// NewPool resolves the options into a ready pool.
func NewPool(opt Options) *Pool {
	w := opt.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	m := opt.MorselSize
	if m <= 0 {
		m = DefaultMorselSize
	}
	c := opt.SerialCutoff
	if c == 0 {
		c = m
		if c > DefaultSerialCutoff {
			c = DefaultSerialCutoff
		}
	} else if c < 0 {
		c = 0
	}
	return &Pool{workers: w, morsel: m, cutoff: c}
}

// MorselSize returns the rows-per-morsel the pool schedules with. ForEach
// hands out ranges aligned to this size, so lo/MorselSize() is a stable
// morsel index callers may use to write per-morsel results without locks.
func (p *Pool) MorselSize() int { return p.morsel }

// Morsels returns how many scheduling units an input of n rows is cut
// into — the count trace spans record so a profile shows scheduling
// granularity next to worker count.
func (p *Pool) Morsels(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + p.morsel - 1) / p.morsel
}

// WorkersFor returns how many workers an input of n rows will actually use:
// 1 when n is under the serial cutoff or fits in a single morsel, otherwise
// the pool parallelism capped at the morsel count. Operators allocate
// per-worker state with this and may take a pure sequential path when it
// returns 1.
func (p *Pool) WorkersFor(n int) int {
	if p.workers <= 1 || n <= p.cutoff {
		return 1
	}
	morsels := (n + p.morsel - 1) / p.morsel
	if morsels <= 1 {
		return 1
	}
	if p.workers < morsels {
		return p.workers
	}
	return morsels
}

// ForEach partitions [0, n) into morsels and processes them on the pool.
// fn receives the worker id (0..WorkersFor(n)-1) and a half-open row range
// whose lower bound is morsel-aligned. When WorkersFor(n) is 1, fn runs
// inline once with the full range. A panic in any worker is re-raised on
// the calling goroutine after all workers stop.
func (p *Pool) ForEach(n int, fn func(worker, lo, hi int)) {
	err := p.run(n, func(worker, lo, hi int) error {
		fn(worker, lo, hi)
		return nil
	})
	if err != nil {
		// fn cannot fail here, so the only error source is an injected
		// par/claim fault. Swallowing it would silently return a partial
		// result; re-raise it instead so callers without an error path
		// still observe the fault.
		panic(err)
	}
}

// ForEachErr is ForEach for fallible work: the first error stops the
// scheduler (workers finish their current morsel, no new morsels start) and
// is returned.
func (p *Pool) ForEachErr(n int, fn func(worker, lo, hi int) error) error {
	return p.run(n, fn)
}

// ForEachCtx is ForEach under a context: the scheduler checks ctx between
// morsel claims, so a cancelled context stops execution within one morsel's
// worth of work per worker and the context error is returned. Unlike
// ForEach, the serial fallback also proceeds morsel by morsel — bounded
// cancellation latency (and per-morsel accounting in fn) holds at every
// parallelism, at the cost of one loop iteration per morsel.
func (p *Pool) ForEachCtx(ctx context.Context, n int, fn func(worker, lo, hi int)) error {
	return p.runCtx(ctx, n, func(worker, lo, hi int) error {
		fn(worker, lo, hi)
		return nil
	})
}

// ForEachErrCtx is ForEachCtx for fallible work; the first error (a worker's
// or the context's) wins.
func (p *Pool) ForEachErrCtx(ctx context.Context, n int, fn func(worker, lo, hi int) error) error {
	return p.runCtx(ctx, n, fn)
}

func (p *Pool) runCtx(ctx context.Context, n int, fn func(worker, lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	w := p.WorkersFor(n)
	if w <= 1 {
		m := p.morsel
		for lo := 0; lo < n; lo += m {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fpClaim.Hit(); err != nil {
				return err
			}
			hi := lo + m
			if hi > n {
				hi = n
			}
			if err := fn(0, lo, hi); err != nil {
				return err
			}
		}
		return nil
	}
	return p.fanOut(ctx, n, w, fn)
}

func (p *Pool) run(n int, fn func(worker, lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	w := p.WorkersFor(n)
	if w <= 1 {
		if err := fpClaim.Hit(); err != nil {
			return err
		}
		return fn(0, 0, n)
	}
	return p.fanOut(context.Background(), n, w, fn)
}

// fanOut is the shared worker loop: w goroutines pull morsel-aligned ranges
// from an atomic cursor until none remain, an error occurs, or ctx is
// cancelled. The ctx check sits between morsel claims so cancellation never
// interrupts a morsel mid-flight.
func (p *Pool) fanOut(ctx context.Context, n, w int, fn func(worker, lo, hi int) error) error {
	var (
		cursor atomic.Int64
		failed atomic.Bool
		errMu  sync.Mutex
		first  error
		panicV atomic.Value
		wg     sync.WaitGroup
	)
	setErr := func(err error) {
		errMu.Lock()
		if first == nil {
			first = err
		}
		errMu.Unlock()
		failed.Store(true)
	}
	done := ctx.Done()
	m := p.morsel
	for id := 0; id < w; id++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicV.CompareAndSwap(nil, r) // keep the first panic only
					failed.Store(true)
				}
			}()
			for !failed.Load() {
				if done != nil {
					select {
					case <-done:
						setErr(ctx.Err())
						return
					default:
					}
				}
				if err := fpClaim.Hit(); err != nil {
					setErr(err)
					return
				}
				lo := int(cursor.Add(int64(m))) - m
				if lo >= n {
					return
				}
				hi := lo + m
				if hi > n {
					hi = n
				}
				if err := fn(worker, lo, hi); err != nil {
					setErr(err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	if r := panicV.Load(); r != nil {
		panic(r)
	}
	return first
}

// Do fans tasks [0, tasks) out across the pool, one task per callback —
// task-level parallelism for coarse independent units (e.g. one candidate
// view's full scan in SeeDB). Tasks are pulled from a shared cursor, so
// long tasks do not strand idle workers. Serial fallback, error and panic
// semantics match ForEachErr.
func (p *Pool) Do(tasks int, fn func(task int) error) error {
	if tasks <= 0 {
		return nil
	}
	w := p.workers
	if w > tasks {
		w = tasks
	}
	if w <= 1 {
		for i := 0; i < tasks; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	one := &Pool{workers: w, morsel: 1, cutoff: 0}
	return one.run(tasks, func(_, lo, _ int) error { return fn(lo) })
}
