package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestForEachCtxCompletes checks the ctx variants cover every row exactly
// once when the context never fires, at both serial and parallel widths.
func TestForEachCtxCompletes(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, n := range []int{1, 63, 64, 1000} {
			pool := NewPool(Options{Parallelism: workers, MorselSize: 64, SerialCutoff: -1})
			visits := make([]int32, n)
			err := pool.ForEachCtx(context.Background(), n, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
			})
			if err != nil {
				t.Fatalf("workers=%d n=%d: unexpected error %v", workers, n, err)
			}
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("workers=%d n=%d: row %d visited %d times", workers, n, i, v)
				}
			}
		}
	}
}

// TestForEachCtxCancelStops checks that a context cancelled mid-run stops
// the scheduler early and surfaces ctx.Err(), both when the serial morsel
// loop runs and when workers pull from the shared cursor.
func TestForEachCtxCancelStops(t *testing.T) {
	const n = 1 << 20
	for _, workers := range []int{1, 4} {
		pool := NewPool(Options{Parallelism: workers, MorselSize: 256, SerialCutoff: -1})
		ctx, cancel := context.WithCancel(context.Background())
		var seen atomic.Int64
		err := pool.ForEachErrCtx(ctx, n, func(_, lo, hi int) error {
			if seen.Add(int64(hi-lo)) > 10*256 {
				cancel() // fire mid-run, from inside a morsel callback
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// Cancellation latency is bounded: each of the workers may finish
		// at most the morsel it already claimed.
		limit := int64((10 + 2*workers + 2) * 256)
		if got := seen.Load(); got > limit {
			t.Fatalf("workers=%d: scanned %d rows after cancel, want <= %d", workers, got, limit)
		}
	}
}

// TestForEachCtxPreCancelled checks an already-dead context does no work.
func TestForEachCtxPreCancelled(t *testing.T) {
	pool := NewPool(Options{Parallelism: 4, MorselSize: 64, SerialCutoff: -1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err := pool.ForEachCtx(ctx, 1000, func(_, _, _ int) { called = true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if called {
		t.Fatal("callback ran under a pre-cancelled context")
	}
}

// TestForEachCtxErrorWins checks a worker error is reported even when the
// context also dies later.
func TestForEachCtxErrorWins(t *testing.T) {
	pool := NewPool(Options{Parallelism: 2, MorselSize: 8, SerialCutoff: -1})
	boom := errors.New("boom")
	err := pool.ForEachErrCtx(context.Background(), 1000, func(_, lo, _ int) error {
		if lo >= 16 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}
