package aqp

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"dex/internal/exec"
	"dex/internal/expr"
	"dex/internal/sample"
	"dex/internal/storage"
)

// mkSkewed builds a table with a Zipf-ish group column g (a few huge groups,
// several rare ones) and a measure x.
func mkSkewed(tb testing.TB, n int, seed int64) *storage.Table {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	groups := []string{"g0", "g1", "g2", "g3", "g4", "g5", "g6", "g7"}
	gv := make([]string, n)
	xv := make([]float64, n)
	for i := 0; i < n; i++ {
		// Zipf-ish: group j with probability ~ 1/2^j.
		j := 0
		for j < len(groups)-1 && rng.Float64() < 0.5 {
			j++
		}
		gv[i] = groups[j]
		xv[i] = 50 + 10*float64(j) + rng.NormFloat64()*5
	}
	t, err := storage.FromColumns("skew", storage.Schema{
		{Name: "g", Type: storage.TString},
		{Name: "x", Type: storage.TFloat},
	}, []storage.Column{storage.NewStringColumn(gv), storage.NewFloatColumn(xv)})
	if err != nil {
		tb.Fatal(err)
	}
	return t
}

func TestExactMatchesExec(t *testing.T) {
	tbl := mkSkewed(t, 2000, 1)
	got, err := Exact(tbl, Query{Agg: exec.AggSum, Col: "x", GroupBy: "g"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := exec.Execute(tbl, exec.Query{
		Select:  []exec.SelectItem{{Col: "g"}, {Col: "x", Agg: exec.AggSum}},
		GroupBy: []string{"g"},
		OrderBy: []exec.OrderKey{{Col: "g"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != want.NumRows() {
		t.Fatalf("groups = %d vs %d", len(got), want.NumRows())
	}
	for i, g := range got {
		if g.Group.S != want.Row(i)[0].S {
			t.Errorf("group %d = %v vs %v", i, g.Group, want.Row(i)[0])
		}
		if math.Abs(g.Est-want.Row(i)[1].F) > 1e-6 {
			t.Errorf("sum %s = %v vs %v", g.Group.S, g.Est, want.Row(i)[1].F)
		}
		if g.CI != 0 {
			t.Errorf("exact CI = %v", g.CI)
		}
	}
}

func TestUniformEstimateWithinCI(t *testing.T) {
	tbl := mkSkewed(t, 20000, 2)
	rng := rand.New(rand.NewSource(3))
	truth, err := Exact(tbl, Query{Agg: exec.AggSum, Col: "x"})
	if err != nil {
		t.Fatal(err)
	}
	hit := 0
	const reps = 40
	for r := 0; r < reps; r++ {
		s, err := sample.UniformFrac(rng, tbl.NumRows(), 0.05)
		if err != nil {
			t.Fatal(err)
		}
		view := tbl.Gather(s.Rows)
		est, err := OnView(view, s.Weights, Query{Agg: exec.AggSum, Col: "x"})
		if err != nil {
			t.Fatal(err)
		}
		if len(est) != 1 {
			t.Fatal("want one scalar group")
		}
		if math.Abs(est[0].Est-truth[0].Est) <= est[0].CI {
			hit++
		}
	}
	// 95% CI should cover the truth most of the time.
	if hit < reps*80/100 {
		t.Errorf("CI covered truth only %d/%d times", hit, reps)
	}
}

func TestAvgAndCountEstimates(t *testing.T) {
	tbl := mkSkewed(t, 30000, 4)
	rng := rand.New(rand.NewSource(5))
	s, _ := sample.UniformFrac(rng, tbl.NumRows(), 0.1)
	view := tbl.Gather(s.Rows)

	truthAvg, _ := Exact(tbl, Query{Agg: exec.AggAvg, Col: "x", GroupBy: "g"})
	estAvg, err := OnView(view, s.Weights, Query{Agg: exec.AggAvg, Col: "x", GroupBy: "g"})
	if err != nil {
		t.Fatal(err)
	}
	truthByGroup := map[string]float64{}
	for _, g := range truthAvg {
		truthByGroup[g.Group.S] = g.Est
	}
	for _, g := range estAvg {
		tr, ok := truthByGroup[g.Group.S]
		if !ok {
			continue
		}
		if rel := math.Abs(g.Est-tr) / tr; rel > 0.10 && g.N > 30 {
			t.Errorf("avg(%s) rel err %.3f with n=%d", g.Group.S, rel, g.N)
		}
	}

	truthCnt, _ := Exact(tbl, Query{Agg: exec.AggCount})
	estCnt, err := OnView(view, s.Weights, Query{Agg: exec.AggCount})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(estCnt[0].Est-truthCnt[0].Est) / truthCnt[0].Est; rel > 0.01 {
		t.Errorf("count rel err = %.4f", rel)
	}
}

func TestMinMaxOnSampleUnbounded(t *testing.T) {
	tbl := mkSkewed(t, 1000, 6)
	rng := rand.New(rand.NewSource(7))
	s, _ := sample.UniformFrac(rng, tbl.NumRows(), 0.2)
	view := tbl.Gather(s.Rows)
	est, err := OnView(view, s.Weights, Query{Agg: exec.AggMin, Col: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(est[0].CI, 1) {
		t.Errorf("min CI = %v, want +Inf", est[0].CI)
	}
}

func TestEstimateWithPredicate(t *testing.T) {
	tbl := mkSkewed(t, 10000, 8)
	rng := rand.New(rand.NewSource(9))
	q := Query{Agg: exec.AggCount, Where: expr.Cmp("x", expr.GT, storage.Float(60))}
	truth, _ := Exact(tbl, q)
	s, _ := sample.UniformFrac(rng, tbl.NumRows(), 0.2)
	est, err := OnView(tbl.Gather(s.Rows), s.Weights, q)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(est[0].Est-truth[0].Est) / truth[0].Est; rel > 0.1 {
		t.Errorf("predicate count rel err = %.3f", rel)
	}
}

func TestQueryErrors(t *testing.T) {
	tbl := mkSkewed(t, 100, 10)
	if _, err := Exact(tbl, Query{Agg: exec.AggSum, Col: "g"}); !errors.Is(err, ErrUnsupportedAgg) {
		t.Errorf("sum over text err = %v", err)
	}
	if _, err := Exact(tbl, Query{Col: "x"}); !errors.Is(err, ErrBadQuery) {
		t.Errorf("missing agg err = %v", err)
	}
	if _, err := Exact(tbl, Query{Agg: exec.AggSum, Col: "zzz"}); err == nil {
		t.Error("missing column should error")
	}
}

func TestStratifiedBeatsUniformOnRareGroups(t *testing.T) {
	tbl := mkSkewed(t, 50000, 11)
	rng := rand.New(rand.NewSource(12))
	q := Query{Agg: exec.AggAvg, Col: "x", GroupBy: "g"}
	truth, _ := Exact(tbl, q)
	truthBy := map[string]float64{}
	for _, g := range truth {
		truthBy[g.Group.S] = g.Est
	}

	cat, err := NewCatalog(tbl, rng, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddStratified(rng, "g", 100); err != nil {
		t.Fatal(err)
	}
	samples := cat.Samples()
	if len(samples) != 2 {
		t.Fatalf("samples = %d", len(samples))
	}
	rareErr := func(s *Stored) float64 {
		est, err := OnView(s.View, s.Weights, q)
		if err != nil {
			t.Fatal(err)
		}
		worst := 0.0
		found := map[string]bool{}
		for _, g := range est {
			found[g.Group.S] = true
			if tr := truthBy[g.Group.S]; tr != 0 {
				if rel := math.Abs(g.Est-tr) / tr; rel > worst {
					worst = rel
				}
			}
		}
		// Missing a group entirely counts as total error.
		for gname := range truthBy {
			if !found[gname] {
				worst = 1
			}
		}
		return worst
	}
	uniWorst := rareErr(samples[0])
	stWorst := rareErr(samples[1])
	if samples[1].StratCol != "g" {
		// order: uniform first then stratified by Samples(); adjust
		uniWorst, stWorst = stWorst, uniWorst
	}
	if stWorst >= uniWorst {
		t.Errorf("stratified worst-group err %.3f >= uniform %.3f", stWorst, uniWorst)
	}
}

func TestApproxErrorBoundEscalates(t *testing.T) {
	tbl := mkSkewed(t, 40000, 13)
	rng := rand.New(rand.NewSource(14))
	cat, err := NewCatalog(tbl, rng, 0.001, 0.01, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Agg: exec.AggSum, Col: "x"}
	res, err := cat.Approx(q, Bound{RelErr: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxRelCI > 0.02 {
		t.Errorf("returned rel CI %.4f > bound", res.MaxRelCI)
	}
	// A tiny bound should escalate to a bigger sample than a loose one.
	loose, err := cat.Approx(q, Bound{RelErr: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Used.Rows() > res.Used.Rows() {
		t.Errorf("loose bound used %d rows, tight used %d", loose.Used.Rows(), res.Used.Rows())
	}
	truth, _ := Exact(tbl, q)
	if rel := math.Abs(res.Groups[0].Est-truth[0].Est) / truth[0].Est; rel > 0.05 {
		t.Errorf("approx rel err = %.4f", rel)
	}
}

func TestApproxRowBudget(t *testing.T) {
	tbl := mkSkewed(t, 20000, 15)
	rng := rand.New(rand.NewSource(16))
	cat, _ := NewCatalog(tbl, rng, 0.01, 0.05, 0.2)
	res, err := cat.Approx(Query{Agg: exec.AggAvg, Col: "x"}, Bound{MaxRows: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Used.Rows() > 1500 {
		t.Errorf("used %d rows over budget", res.Used.Rows())
	}
	// Budget below the smallest sample: no candidates.
	if _, err := cat.Approx(Query{Agg: exec.AggAvg, Col: "x"}, Bound{MaxRows: 10}); !errors.Is(err, ErrNoSample) {
		t.Errorf("tiny budget err = %v", err)
	}
}

func TestApproxUnreachableBoundReturnsBest(t *testing.T) {
	tbl := mkSkewed(t, 5000, 17)
	rng := rand.New(rand.NewSource(18))
	cat, _ := NewCatalog(tbl, rng, 0.01)
	res, err := cat.Approx(Query{Agg: exec.AggSum, Col: "x"}, Bound{RelErr: 1e-9})
	if !errors.Is(err, ErrNoSample) {
		t.Errorf("err = %v, want ErrNoSample", err)
	}
	if res == nil || len(res.Groups) == 0 {
		t.Error("best-effort result missing")
	}
}

func TestApproxPrefersStratifiedForGroupBy(t *testing.T) {
	tbl := mkSkewed(t, 30000, 19)
	rng := rand.New(rand.NewSource(20))
	cat, _ := NewCatalog(tbl, rng, 0.5)
	if err := cat.AddStratified(rng, "g", 200); err != nil {
		t.Fatal(err)
	}
	res, err := cat.Approx(Query{Agg: exec.AggAvg, Col: "x", GroupBy: "g"}, Bound{RelErr: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Used.StratCol != "g" {
		t.Errorf("used %s, want stratified sample", res.Used.Name)
	}
}

func TestRelCI(t *testing.T) {
	if (GroupEstimate{Est: 100, CI: 5}).RelCI() != 0.05 {
		t.Error("relci")
	}
	if (GroupEstimate{Est: 0, CI: 0}).RelCI() != 0 {
		t.Error("relci 0/0")
	}
	if !math.IsInf((GroupEstimate{Est: 0, CI: 1}).RelCI(), 1) {
		t.Error("relci x/0")
	}
}
