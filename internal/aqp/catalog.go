package aqp

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dex/internal/sample"
	"dex/internal/storage"
)

// Stored is one pre-built sample in the catalog: a materialized view of the
// sampled rows plus aligned expansion weights.
type Stored struct {
	Name     string
	StratCol string // "" for uniform samples
	View     *storage.Table
	Weights  []float64
}

// Rows returns the sample size.
func (s *Stored) Rows() int { return s.View.NumRows() }

// Catalog is a BlinkDB-style collection of samples over one base table:
// a ladder of uniform samples at increasing fractions, plus optional
// stratified samples keyed by their stratification column.
type Catalog struct {
	base    *storage.Table
	uniform []*Stored // sorted by ascending size
	strat   map[string]*Stored
}

// NewCatalog builds uniform samples of the base table at each fraction.
func NewCatalog(base *storage.Table, rng *rand.Rand, fracs ...float64) (*Catalog, error) {
	c := &Catalog{base: base, strat: map[string]*Stored{}}
	sort.Float64s(fracs)
	for _, f := range fracs {
		s, err := sample.UniformFrac(rng, base.NumRows(), f)
		if err != nil {
			return nil, err
		}
		c.uniform = append(c.uniform, &Stored{
			Name:    fmt.Sprintf("uniform-%.4g", f),
			View:    base.Gather(s.Rows),
			Weights: s.Weights,
		})
	}
	return c, nil
}

// AddStratified builds a stratified sample capped at perStratum rows per
// distinct value of col, so rare groups stay answerable.
func (c *Catalog) AddStratified(rng *rand.Rand, col string, perStratum int) error {
	gc, err := c.base.ColumnByName(col)
	if err != nil {
		return err
	}
	labels := make([]string, gc.Len())
	for i := range labels {
		labels[i] = gc.Value(i).String()
	}
	s, err := sample.Stratified(rng, labels, perStratum)
	if err != nil {
		return err
	}
	c.strat[col] = &Stored{
		Name:     fmt.Sprintf("strat-%s-%d", col, perStratum),
		StratCol: col,
		View:     c.base.Gather(s.Rows),
		Weights:  s.Weights,
	}
	return nil
}

// Samples lists every stored sample, uniforms first (ascending size).
func (c *Catalog) Samples() []*Stored {
	out := append([]*Stored(nil), c.uniform...)
	keys := make([]string, 0, len(c.strat))
	for k := range c.strat {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, c.strat[k])
	}
	return out
}

// Bound expresses the user's accuracy/latency contract: answer within
// RelErr relative error (0 = don't care) reading at most MaxRows sample
// rows (0 = don't care). At least one must be set for Approx to do
// anything other than pick the smallest sample.
type Bound struct {
	RelErr  float64
	MaxRows int
}

// Result bundles an approximate answer with the sample that produced it.
type Result struct {
	Groups   []GroupEstimate
	Used     *Stored
	RowsRead int
	// MaxRelCI is the worst relative confidence interval across groups.
	MaxRelCI float64
}

// Approx answers the query within the bound. Candidate samples are tried
// smallest-first (a stratified sample on the GROUP BY column, when present,
// is preferred at equal cost); the first one whose worst-group relative CI
// meets the error bound wins — the error-latency profile walk of BlinkDB.
// If only MaxRows is set, the largest sample within budget is used. If no
// candidate satisfies the bound, ErrNoSample is returned alongside the best
// attempt so callers can degrade gracefully.
func (c *Catalog) Approx(q Query, b Bound) (*Result, error) {
	cands := c.candidates(q, b)
	if len(cands) == 0 {
		return nil, fmt.Errorf("rows budget %d: %w", b.MaxRows, ErrNoSample)
	}
	if b.RelErr <= 0 {
		// Pure latency bound: biggest affordable sample.
		s := cands[len(cands)-1]
		ge, err := OnView(s.View, s.Weights, q)
		if err != nil {
			return nil, err
		}
		return &Result{Groups: ge, Used: s, RowsRead: s.Rows(), MaxRelCI: maxRelCI(ge)}, nil
	}
	var best *Result
	for _, s := range cands {
		ge, err := OnView(s.View, s.Weights, q)
		if err != nil {
			return nil, err
		}
		rowsRead := s.Rows()
		if best != nil {
			rowsRead += best.RowsRead
		}
		r := &Result{Groups: ge, Used: s, RowsRead: rowsRead, MaxRelCI: maxRelCI(ge)}
		if best == nil || r.MaxRelCI < best.MaxRelCI {
			best = r
		}
		if r.MaxRelCI <= b.RelErr {
			return r, nil
		}
	}
	return best, fmt.Errorf("best rel CI %.4f > target %.4f: %w", best.MaxRelCI, b.RelErr, ErrNoSample)
}

// candidates orders usable samples by ascending size, respecting MaxRows
// and preferring a stratified sample matching the GROUP BY column.
func (c *Catalog) candidates(q Query, b Bound) []*Stored {
	var out []*Stored
	if q.GroupBy != "" {
		if s, ok := c.strat[q.GroupBy]; ok && (b.MaxRows == 0 || s.Rows() <= b.MaxRows) {
			out = append(out, s)
		}
	}
	for _, s := range c.uniform {
		if b.MaxRows == 0 || s.Rows() <= b.MaxRows {
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Rows() < out[j].Rows() })
	return out
}

func maxRelCI(ge []GroupEstimate) float64 {
	worst := 0.0
	for _, g := range ge {
		if r := g.RelCI(); r > worst {
			worst = r
		}
	}
	if math.IsNaN(worst) {
		return math.Inf(1)
	}
	return worst
}
