// Package aqp implements approximate query processing in the style the
// tutorial's middleware section surveys (Aqua [5], BlinkDB [6,7]):
// aggregate queries run against pre-built uniform or stratified samples and
// return estimates with confidence intervals, and a planner picks the
// cheapest sample that satisfies a user error bound or row budget — the
// "queries with bounded errors and bounded response times" contract.
package aqp

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"dex/internal/exec"
	"dex/internal/expr"
	"dex/internal/metrics"
	"dex/internal/storage"
)

// Package-level sentinel errors.
var (
	ErrUnsupportedAgg = errors.New("aqp: unsupported aggregate")
	ErrNoSample       = errors.New("aqp: no sample satisfies the bound")
	ErrBadQuery       = errors.New("aqp: malformed query")
)

// Query is the aggregate query shape the AQP layer accepts: one aggregate
// over one measure column, an optional predicate, an optional single
// grouping column.
type Query struct {
	Agg     exec.AggFunc
	Col     string // measure column; "" or "*" for COUNT
	Where   *expr.Pred
	GroupBy string // optional
}

// String renders the query.
func (q Query) String() string {
	s := fmt.Sprintf("%s(%s)", q.Agg, q.Col)
	if q.Where != nil {
		s += " WHERE " + q.Where.String()
	}
	if q.GroupBy != "" {
		s += " GROUP BY " + q.GroupBy
	}
	return s
}

// GroupEstimate is one output row: the group key (zero Value when the query
// has no GROUP BY), the estimate, and the 95% confidence half-width
// (0 for exact execution, +Inf when the aggregate is not estimable from a
// sample, e.g. MIN/MAX).
type GroupEstimate struct {
	Group storage.Value
	Est   float64
	CI    float64
	N     int // contributing sample (or base) rows
}

// RelCI returns CI/|Est| (the relative error bound), or +Inf for Est==0.
func (g GroupEstimate) RelCI() float64 {
	if g.Est == 0 {
		if g.CI == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return g.CI / math.Abs(g.Est)
}

// Exact computes the query on the full table; CIs are zero.
func Exact(t *storage.Table, q Query) ([]GroupEstimate, error) {
	weights := make([]float64, t.NumRows())
	for i := range weights {
		weights[i] = 1
	}
	res, err := estimate(t, weights, q, true)
	if err != nil {
		return nil, err
	}
	for i := range res {
		res[i].CI = 0
	}
	return res, nil
}

// OnView computes estimates from a sampled view: view must hold the sampled
// rows and weights[i] the expansion weight of view row i.
func OnView(view *storage.Table, weights []float64, q Query) ([]GroupEstimate, error) {
	return estimate(view, weights, q, false)
}

// estimate runs the shared estimation pipeline. With exact=true weights are
// all 1 and CLT noise terms are still produced (the caller zeroes them).
//
// The estimator treats each sampled row i as one of k draws with per-draw
// expansion estimate t_i = k * w_i * z_i (z_i is the measure for SUM, 1 for
// COUNT, and 0 when row i fails the predicate or group). Estimates are
// mean(t_i) with a CLT confidence interval — the Hansen-Hurwitz form, which
// reduces to the classic N*mean(z) estimator for uniform samples. For AVG
// the estimate is the weighted mean within the group with a per-group CLT
// interval. MIN/MAX report the sample extreme with CI = +Inf.
func estimate(view *storage.Table, weights []float64, q Query, exact bool) ([]GroupEstimate, error) {
	if q.Agg == exec.AggNone {
		return nil, fmt.Errorf("missing aggregate: %w", ErrBadQuery)
	}
	needCol := q.Agg != exec.AggCount
	var mcol storage.Column
	if needCol {
		c, err := view.ColumnByName(q.Col)
		if err != nil {
			return nil, err
		}
		if c.Type() == storage.TString && (q.Agg == exec.AggSum || q.Agg == exec.AggAvg) {
			return nil, fmt.Errorf("%s over TEXT: %w", q.Agg, ErrUnsupportedAgg)
		}
		mcol = c
	}
	var gcol storage.Column
	if q.GroupBy != "" {
		c, err := view.ColumnByName(q.GroupBy)
		if err != nil {
			return nil, err
		}
		gcol = c
	}
	sel, err := expr.Filter(view, q.Where)
	if err != nil {
		return nil, err
	}

	k := float64(len(weights))
	type acc struct {
		group  storage.Value
		sumY   float64 // sum of w_i * z_i
		sumY2  float64 // sum of (w_i * z_i)^2
		n      int
		wsum   float64 // sum of weights (for AVG denominator)
		xw     float64 // sum of w_i * x_i (AVG numerator)
		stream metrics.Stream
		min    float64
		max    float64
	}
	groups := map[string]*acc{}
	var order []string
	for _, row := range sel {
		key := ""
		var gv storage.Value
		if gcol != nil {
			gv = gcol.Value(row)
			key = gv.String()
		}
		a, ok := groups[key]
		if !ok {
			a = &acc{group: gv, min: math.Inf(1), max: math.Inf(-1)}
			groups[key] = a
			order = append(order, key)
		}
		w := weights[row]
		z := 1.0
		x := 0.0
		if mcol != nil {
			x = mcol.Value(row).AsFloat()
		}
		if q.Agg == exec.AggSum {
			z = x
		}
		y := w * z
		a.sumY += y
		a.sumY2 += y * y
		a.n++
		a.wsum += w
		a.xw += w * x
		a.stream.Add(x)
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	sort.Strings(order)
	out := make([]GroupEstimate, 0, len(order))
	for _, key := range order {
		a := groups[key]
		ge := GroupEstimate{Group: a.group, N: a.n}
		switch q.Agg {
		case exec.AggCount, exec.AggSum:
			ge.Est = a.sumY
			if !exact && a.n > 1 {
				// s^2 of the per-draw estimates, zeros included:
				// sum(t^2) = k^2 * sumY2, mean(t) = sumY.
				s2 := (k*k*a.sumY2 - k*a.sumY*a.sumY) / (k - 1)
				ge.CI = metrics.Z95 * math.Sqrt(math.Max(s2, 0)/k)
			}
		case exec.AggAvg:
			if a.wsum > 0 {
				ge.Est = a.xw / a.wsum
			} else {
				ge.Est = math.NaN()
			}
			if !exact {
				ge.CI = a.stream.MeanCI(metrics.Z95)
			}
		case exec.AggMin:
			ge.Est = a.min
			if !exact {
				ge.CI = math.Inf(1)
			}
		case exec.AggMax:
			ge.Est = a.max
			if !exact {
				ge.CI = math.Inf(1)
			}
		default:
			return nil, fmt.Errorf("%v: %w", q.Agg, ErrUnsupportedAgg)
		}
		out = append(out, ge)
	}
	return out, nil
}
