package prefetch

// Momentum predicts that the viewport keeps moving with its last velocity
// (the "direction following" signal trajectory prefetchers exploit): the
// next window is the current one shifted by the last move, and its tiles
// are prioritized by distance from the current window.
type Momentum struct{}

// Name implements Predictor.
func (Momentum) Name() string { return "momentum" }

// Predict implements Predictor.
func (Momentum) Predict(history []Window, budget int) []TileKey {
	if len(history) == 0 || budget <= 0 {
		return nil
	}
	cur := history[len(history)-1]
	dx, dy := 0, 0
	if len(history) >= 2 {
		prev := history[len(history)-2]
		dx, dy = cur.X0-prev.X0, cur.Y0-prev.Y0
	}
	if dx == 0 && dy == 0 {
		// No movement signal: prefetch the ring of neighbors.
		return ring(cur, budget)
	}
	next := cur.Shift(sign(dx), sign(dy))
	var out []TileKey
	seen := map[TileKey]bool{}
	for _, k := range cur.Tiles() {
		seen[k] = true
	}
	// First the freshly exposed tiles of the predicted window, then the
	// window after that.
	for _, w := range []Window{next, next.Shift(sign(dx), sign(dy))} {
		for _, k := range w.Tiles() {
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
				if len(out) >= budget {
					return out
				}
			}
		}
	}
	return out
}

// ring returns up to budget tiles surrounding the window.
func ring(w Window, budget int) []TileKey {
	var out []TileKey
	for x := w.X0 - 1; x <= w.X1+1; x++ {
		for y := w.Y0 - 1; y <= w.Y1+1; y++ {
			if x >= w.X0 && x <= w.X1 && y >= w.Y0 && y <= w.Y1 {
				continue
			}
			out = append(out, TileKey{x, y})
			if len(out) >= budget {
				return out
			}
		}
	}
	return out
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// Markov is a first-order move-direction model (SCOUT-style trajectory
// indexing distilled to its predictive core): it counts transitions between
// consecutive move directions across the whole history and prefetches the
// windows reached by the most probable next moves.
type Markov struct {
	// Laplace is the additive smoothing constant (default 1).
	Laplace float64
}

// Name implements Predictor.
func (Markov) Name() string { return "markov" }

type move struct{ dx, dy int }

var directions = []move{
	{1, 0}, {-1, 0}, {0, 1}, {0, -1},
	{1, 1}, {1, -1}, {-1, 1}, {-1, -1},
}

// rankDirections orders the eight move directions by smoothed first-order
// transition probability given the history's move sequence: the direction
// most likely to follow the last observed move comes first. When the last
// move repeats a pattern seen earlier in the history (a straight pan, a
// zig-zag), its continuation dominates; with no signal the Laplace prior
// leaves the canonical direction order. Returns nil when fewer than two
// windows (no move yet).
func rankDirections(history []Window, laplace float64) []move {
	if len(history) < 2 {
		return nil
	}
	if laplace <= 0 {
		laplace = 1
	}
	// Transition counts dir -> dir.
	counts := map[move]map[move]float64{}
	var moves []move
	for i := 1; i < len(history); i++ {
		mv := move{sign(history[i].X0 - history[i-1].X0), sign(history[i].Y0 - history[i-1].Y0)}
		moves = append(moves, mv)
	}
	for i := 1; i < len(moves); i++ {
		prev, cur := moves[i-1], moves[i]
		if counts[prev] == nil {
			counts[prev] = map[move]float64{}
		}
		counts[prev][cur]++
	}
	last := moves[len(moves)-1]
	// Score each direction by smoothed transition probability. The last
	// move itself gets a half-count tiebreak: with an otherwise flat
	// distribution, momentum is the better guess.
	type scored struct {
		mv    move
		score float64
	}
	var cands []scored
	for _, d := range directions {
		score := laplace
		if counts[last] != nil {
			score += counts[last][d]
		}
		if d == last {
			score += 0.5
		}
		cands = append(cands, scored{mv: d, score: score})
	}
	// Selection sort by score descending (8 candidates).
	for i := 0; i < len(cands); i++ {
		best := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].score > cands[best].score {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
	}
	out := make([]move, len(cands))
	for i, c := range cands {
		out[i] = c.mv
	}
	return out
}

// NextWindows predicts the k viewports the user is most likely to request
// next, best first, using the same first-order direction model as Markov.
// Where Predict returns tiles for a middleware tile cache, NextWindows
// returns whole windows — the right granularity for warming a server-side
// *result* cache, where the unit of caching is the rendered query of an
// entire viewport, not a tile (see internal/idebench's prefetch-driven
// cache warming). Windows are not clamped: callers that know the grid
// bounds clamp themselves so a prediction at the border folds onto the
// window the user will actually see.
func NextWindows(history []Window, k int) []Window {
	dirs := rankDirections(history, 1)
	if len(dirs) == 0 || k <= 0 {
		return nil
	}
	if k > len(dirs) {
		k = len(dirs)
	}
	cur := history[len(history)-1]
	out := make([]Window, 0, k)
	for _, d := range dirs[:k] {
		out = append(out, cur.Shift(d.dx, d.dy))
	}
	return out
}

// Predict implements Predictor.
func (m Markov) Predict(history []Window, budget int) []TileKey {
	if budget <= 0 {
		return nil
	}
	cands := rankDirections(history, m.Laplace)
	if cands == nil {
		return nil
	}
	cur := history[len(history)-1]
	seen := map[TileKey]bool{}
	for _, k := range cur.Tiles() {
		seen[k] = true
	}
	var out []TileKey
	for _, d := range cands {
		next := cur.Shift(d.dx, d.dy)
		for _, k := range next.Tiles() {
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
				if len(out) >= budget {
					return out
				}
			}
		}
	}
	return out
}
