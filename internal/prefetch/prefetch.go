// Package prefetch implements the middleware result-prefetching techniques
// the tutorial surveys: semantic-window exploration over a gridded data
// space [36], and trajectory-following prefetching that predicts where the
// user's viewport moves next (SCOUT [63], ForeCache-style momentum). While
// the user inspects the current window, the system speculatively executes
// the likely next window's tiles into a cache, so the follow-up request is
// answered interactively.
package prefetch

import (
	"errors"
	"fmt"

	"dex/internal/cache"
	"dex/internal/metrics"
	"dex/internal/storage"
)

// Package-level sentinel errors.
var (
	ErrBadGrid   = errors.New("prefetch: bad grid geometry")
	ErrBadWindow = errors.New("prefetch: window out of range")
)

// TileKey addresses one grid tile.
type TileKey struct{ X, Y int }

// TileStats is the aggregate computed per tile — what a viewport render
// needs (count plus measure moments).
type TileStats struct {
	Count int
	Sum   float64
	Min   float64
	Max   float64
}

// Grid partitions a table's 2-D attribute space (xcol × ycol) into nx × ny
// tiles and knows which rows fall into each tile. Building the membership
// index is a one-time O(n) pass; *computing* a tile's stats costs a scan of
// its rows, which is the unit of work prefetching tries to hide.
type Grid struct {
	t          *storage.Table
	mcol       storage.Column // measure
	nx, ny     int
	tiles      map[TileKey][]int
	xmin, xmax float64
	ymin, ymax float64
	// FetchedRows counts rows scanned by Fetch since creation.
	FetchedRows int64
}

// NewGrid indexes the table on (xcol, ycol) into nx × ny tiles; measure is
// the aggregated column.
func NewGrid(t *storage.Table, xcol, ycol, measure string, nx, ny int) (*Grid, error) {
	if nx <= 0 || ny <= 0 {
		return nil, fmt.Errorf("%dx%d: %w", nx, ny, ErrBadGrid)
	}
	xc, err := t.ColumnByName(xcol)
	if err != nil {
		return nil, err
	}
	yc, err := t.ColumnByName(ycol)
	if err != nil {
		return nil, err
	}
	mc, err := t.ColumnByName(measure)
	if err != nil {
		return nil, err
	}
	g := &Grid{t: t, mcol: mc, nx: nx, ny: ny, tiles: map[TileKey][]int{}}
	n := t.NumRows()
	if n == 0 {
		return nil, fmt.Errorf("empty table: %w", ErrBadGrid)
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	g.xmin, g.xmax = xc.Value(0).AsFloat(), xc.Value(0).AsFloat()
	g.ymin, g.ymax = yc.Value(0).AsFloat(), yc.Value(0).AsFloat()
	for i := 0; i < n; i++ {
		xs[i] = xc.Value(i).AsFloat()
		ys[i] = yc.Value(i).AsFloat()
		if xs[i] < g.xmin {
			g.xmin = xs[i]
		}
		if xs[i] > g.xmax {
			g.xmax = xs[i]
		}
		if ys[i] < g.ymin {
			g.ymin = ys[i]
		}
		if ys[i] > g.ymax {
			g.ymax = ys[i]
		}
	}
	for i := 0; i < n; i++ {
		k := TileKey{X: g.bin(xs[i], g.xmin, g.xmax, nx), Y: g.bin(ys[i], g.ymin, g.ymax, ny)}
		g.tiles[k] = append(g.tiles[k], i)
	}
	return g, nil
}

func (g *Grid) bin(v, lo, hi float64, n int) int {
	if hi == lo {
		return 0
	}
	b := int(float64(n) * (v - lo) / (hi - lo))
	if b >= n {
		b = n - 1
	}
	if b < 0 {
		b = 0
	}
	return b
}

// Dims returns the tile grid dimensions.
func (g *Grid) Dims() (nx, ny int) { return g.nx, g.ny }

// Fetch computes a tile's stats by scanning its member rows (the expensive
// operation the cache hides).
func (g *Grid) Fetch(k TileKey) TileStats {
	rows := g.tiles[k]
	st := TileStats{}
	var s metrics.Stream
	for _, r := range rows {
		s.Add(g.mcol.Value(r).AsFloat())
	}
	g.FetchedRows += int64(len(rows))
	st.Count = int(s.N())
	st.Sum = s.Sum()
	st.Min = s.Min()
	st.Max = s.Max()
	return st
}

// Window is a rectangular viewport in tile coordinates, inclusive bounds.
type Window struct{ X0, Y0, X1, Y1 int }

// Tiles enumerates the tile keys the window covers.
func (w Window) Tiles() []TileKey {
	var out []TileKey
	for x := w.X0; x <= w.X1; x++ {
		for y := w.Y0; y <= w.Y1; y++ {
			out = append(out, TileKey{x, y})
		}
	}
	return out
}

// Shift translates the window by (dx,dy).
func (w Window) Shift(dx, dy int) Window {
	return Window{w.X0 + dx, w.Y0 + dy, w.X1 + dx, w.Y1 + dy}
}

// Clamp constrains the window to the grid, preserving its size when
// possible.
func (w Window) Clamp(nx, ny int) Window {
	dx, dy := w.X1-w.X0, w.Y1-w.Y0
	if w.X0 < 0 {
		w.X0, w.X1 = 0, dx
	}
	if w.Y0 < 0 {
		w.Y0, w.Y1 = 0, dy
	}
	if w.X1 >= nx {
		w.X1 = nx - 1
		w.X0 = w.X1 - dx
		if w.X0 < 0 {
			w.X0 = 0
		}
	}
	if w.Y1 >= ny {
		w.Y1 = ny - 1
		w.Y0 = w.Y1 - dy
		if w.Y0 < 0 {
			w.Y0 = 0
		}
	}
	return w
}

// Predictor guesses which tiles the user will need next, given the window
// history.
type Predictor interface {
	// Predict returns candidate tiles in priority order (best first).
	Predict(history []Window, budget int) []TileKey
	// Name identifies the predictor in experiment tables.
	Name() string
}

// Fetcher serves viewport requests through a tile cache and, after each
// request, speculatively prefetches predicted tiles.
type Fetcher struct {
	grid    *Grid
	cache   *cache.LRU[TileKey, TileStats]
	pred    Predictor
	budget  int // max tiles prefetched per step
	history []Window

	// DemandFetches counts tiles fetched synchronously (cache misses seen
	// by the user); PrefetchFetches counts speculative background fetches.
	DemandFetches   int64
	PrefetchFetches int64
	DemandRows      int64
	PrefetchRows    int64
}

// NewFetcher builds a fetcher. cacheTiles bounds the cache (in tiles);
// budget bounds speculative fetches per request; pred may be nil for the
// no-prefetching baseline.
func NewFetcher(g *Grid, cacheTiles int, budget int, pred Predictor) (*Fetcher, error) {
	c, err := cache.New[TileKey, TileStats](int64(cacheTiles))
	if err != nil {
		return nil, err
	}
	return &Fetcher{grid: g, cache: c, pred: pred, budget: budget}, nil
}

// Request serves a viewport: cached tiles are hits, the rest are fetched
// on demand. Afterwards the predictor's guesses are prefetched. It returns
// the tile stats plus this request's hit/miss counts.
func (f *Fetcher) Request(w Window) (map[TileKey]TileStats, int, int) {
	w = w.Clamp(f.grid.nx, f.grid.ny)
	out := make(map[TileKey]TileStats)
	hits, misses := 0, 0
	for _, k := range w.Tiles() {
		if st, ok := f.cache.Get(k); ok {
			out[k] = st
			hits++
			continue
		}
		misses++
		before := f.grid.FetchedRows
		st := f.grid.Fetch(k)
		f.DemandFetches++
		f.DemandRows += f.grid.FetchedRows - before
		f.cache.Put(k, st, 1)
		out[k] = st
	}
	f.history = append(f.history, w)
	f.speculate()
	return out, hits, misses
}

// speculate runs the predictor and fetches its suggestions into the cache.
// The budget bounds actual fetches, not candidates: a predictor that
// returns more tiles than asked (or ignores the budget argument entirely)
// must not turn one viewport request into unbounded speculative scanning.
func (f *Fetcher) speculate() {
	if f.pred == nil || f.budget <= 0 {
		return
	}
	fetched := 0
	for _, k := range f.pred.Predict(f.history, f.budget) {
		if fetched >= f.budget {
			break
		}
		if k.X < 0 || k.X >= f.grid.nx || k.Y < 0 || k.Y >= f.grid.ny {
			continue
		}
		if f.cache.Contains(k) {
			continue
		}
		before := f.grid.FetchedRows
		st := f.grid.Fetch(k)
		fetched++
		f.PrefetchFetches++
		f.PrefetchRows += f.grid.FetchedRows - before
		f.cache.Put(k, st, 1)
	}
}

// CacheStats exposes the underlying cache counters.
func (f *Fetcher) CacheStats() cache.Stats { return f.cache.Stats() }
