package prefetch

import (
	"errors"
	"sort"
)

// ErrBadWindowSize is returned for non-positive semantic window dimensions.
var ErrBadWindowSize = errors.New("prefetch: bad window size")

// WindowAgg is the aggregate of one candidate semantic window.
type WindowAgg struct {
	Win   Window
	Count int
	Sum   float64
}

// Avg returns Sum/Count (0 for empty windows).
func (w WindowAgg) Avg() float64 {
	if w.Count == 0 {
		return 0
	}
	return w.Sum / float64(w.Count)
}

// SAT is a summed-area table over the grid's tiles, giving O(1) aggregates
// for any rectangular window — the evaluation backbone for semantic-window
// queries [36]: "find me wxh regions whose aggregate satisfies P".
type SAT struct {
	nx, ny int
	count  []float64 // (nx+1)*(ny+1) prefix sums
	sum    []float64
}

// NewSAT materializes the summed-area table (one Fetch per tile).
func NewSAT(g *Grid) *SAT {
	s := &SAT{nx: g.nx, ny: g.ny}
	w := g.nx + 1
	s.count = make([]float64, w*(g.ny+1))
	s.sum = make([]float64, w*(g.ny+1))
	for y := 1; y <= g.ny; y++ {
		for x := 1; x <= g.nx; x++ {
			st := g.Fetch(TileKey{X: x - 1, Y: y - 1})
			i := y*w + x
			s.count[i] = float64(st.Count) + s.count[i-1] + s.count[i-w] - s.count[i-w-1]
			s.sum[i] = st.Sum + s.sum[i-1] + s.sum[i-w] - s.sum[i-w-1]
		}
	}
	return s
}

// WindowAgg returns the aggregate of the (clamped) window in O(1).
func (s *SAT) WindowAgg(win Window) WindowAgg {
	win = win.Clamp(s.nx, s.ny)
	w := s.nx + 1
	x0, y0, x1, y1 := win.X0, win.Y0, win.X1+1, win.Y1+1
	at := func(a []float64, x, y int) float64 { return a[y*w+x] }
	return WindowAgg{
		Win:   win,
		Count: int(at(s.count, x1, y1) - at(s.count, x0, y1) - at(s.count, x1, y0) + at(s.count, x0, y0)),
		Sum:   at(s.sum, x1, y1) - at(s.sum, x0, y1) - at(s.sum, x1, y0) + at(s.sum, x0, y0),
	}
}

// FindWindows enumerates every w×h window (in tiles) whose aggregate
// satisfies pred, sorted by descending Sum — the batch form of a semantic
// window query. With the SAT each candidate costs O(1), so the search is
// O(nx*ny) regardless of data size.
func (s *SAT) FindWindows(wTiles, hTiles int, pred func(WindowAgg) bool) ([]WindowAgg, error) {
	if wTiles <= 0 || hTiles <= 0 || wTiles > s.nx || hTiles > s.ny {
		return nil, ErrBadWindowSize
	}
	var out []WindowAgg
	for y := 0; y+hTiles <= s.ny; y++ {
		for x := 0; x+wTiles <= s.nx; x++ {
			agg := s.WindowAgg(Window{X0: x, Y0: y, X1: x + wTiles - 1, Y1: y + hTiles - 1})
			if pred(agg) {
				out = append(out, agg)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Sum > out[b].Sum })
	return out, nil
}

// FindFirst returns matching windows in an exploration-friendly online
// order: it expands outward from a seed position (the user's current
// viewport), yielding up to limit matches nearest-first — the interactive
// flavor of semantic-window search, where nearby answers surface before the
// whole space is examined.
func (s *SAT) FindFirst(seed Window, wTiles, hTiles, limit int, pred func(WindowAgg) bool) ([]WindowAgg, error) {
	if wTiles <= 0 || hTiles <= 0 || wTiles > s.nx || hTiles > s.ny {
		return nil, ErrBadWindowSize
	}
	if limit <= 0 {
		limit = 1
	}
	sx, sy := seed.X0, seed.Y0
	type cand struct {
		x, y, d int
	}
	var cands []cand
	for y := 0; y+hTiles <= s.ny; y++ {
		for x := 0; x+wTiles <= s.nx; x++ {
			dx, dy := x-sx, y-sy
			if dx < 0 {
				dx = -dx
			}
			if dy < 0 {
				dy = -dy
			}
			d := dx
			if dy > d {
				d = dy
			}
			cands = append(cands, cand{x, y, d})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].d != cands[b].d {
			return cands[a].d < cands[b].d
		}
		if cands[a].y != cands[b].y {
			return cands[a].y < cands[b].y
		}
		return cands[a].x < cands[b].x
	})
	var out []WindowAgg
	for _, c := range cands {
		agg := s.WindowAgg(Window{X0: c.x, Y0: c.y, X1: c.x + wTiles - 1, Y1: c.y + hTiles - 1})
		if pred(agg) {
			out = append(out, agg)
			if len(out) >= limit {
				break
			}
		}
	}
	return out, nil
}
