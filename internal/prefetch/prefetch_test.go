package prefetch

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"dex/internal/storage"
)

func mkPoints(tb testing.TB, n int, seed int64) *storage.Table {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	ms := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 100
		ys[i] = rng.Float64() * 100
		ms[i] = rng.Float64()
	}
	t, err := storage.FromColumns("pts", storage.Schema{
		{Name: "x", Type: storage.TFloat},
		{Name: "y", Type: storage.TFloat},
		{Name: "m", Type: storage.TFloat},
	}, []storage.Column{storage.NewFloatColumn(xs), storage.NewFloatColumn(ys), storage.NewFloatColumn(ms)})
	if err != nil {
		tb.Fatal(err)
	}
	return t
}

func TestGridPartition(t *testing.T) {
	tbl := mkPoints(t, 5000, 1)
	g, err := NewGrid(tbl, "x", "y", "m", 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	var sum float64
	for x := 0; x < 10; x++ {
		for y := 0; y < 10; y++ {
			st := g.Fetch(TileKey{x, y})
			total += st.Count
			sum += st.Sum
		}
	}
	if total != 5000 {
		t.Errorf("tiles cover %d rows, want 5000", total)
	}
	mc, _ := tbl.ColumnByName("m")
	var want float64
	for i := 0; i < tbl.NumRows(); i++ {
		want += mc.Value(i).AsFloat()
	}
	if math.Abs(sum-want) > 1e-6 {
		t.Errorf("tile sums = %v, want %v", sum, want)
	}
}

func TestGridErrors(t *testing.T) {
	tbl := mkPoints(t, 10, 2)
	if _, err := NewGrid(tbl, "x", "y", "m", 0, 5); !errors.Is(err, ErrBadGrid) {
		t.Errorf("bad dims err = %v", err)
	}
	if _, err := NewGrid(tbl, "nope", "y", "m", 5, 5); err == nil {
		t.Error("missing column should error")
	}
	empty, _ := storage.NewTable("e", tbl.Schema())
	if _, err := NewGrid(empty, "x", "y", "m", 5, 5); !errors.Is(err, ErrBadGrid) {
		t.Errorf("empty table err = %v", err)
	}
}

func TestWindowTilesAndClamp(t *testing.T) {
	w := Window{1, 1, 2, 3}
	if got := len(w.Tiles()); got != 6 {
		t.Errorf("tiles = %d, want 6", got)
	}
	c := Window{-2, 8, 0, 10}.Clamp(10, 10)
	if c.X0 != 0 || c.Y1 != 9 {
		t.Errorf("clamped = %+v", c)
	}
	if s := (Window{0, 0, 1, 1}).Shift(2, 3); s.X0 != 2 || s.Y1 != 4 {
		t.Errorf("shift = %+v", s)
	}
}

func TestNoPrefetchBaselineMissesOnMove(t *testing.T) {
	tbl := mkPoints(t, 2000, 3)
	g, _ := NewGrid(tbl, "x", "y", "m", 20, 20)
	f, err := NewFetcher(g, 400, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, hits, misses := f.Request(Window{0, 0, 2, 2})
	if hits != 0 || misses != 9 {
		t.Errorf("first request hits=%d misses=%d", hits, misses)
	}
	// Repeat: all hits.
	_, hits, misses = f.Request(Window{0, 0, 2, 2})
	if hits != 9 || misses != 0 {
		t.Errorf("repeat hits=%d misses=%d", hits, misses)
	}
	// Move right: 3 new tiles missed.
	_, hits, misses = f.Request(Window{1, 0, 3, 2})
	if misses != 3 || hits != 6 {
		t.Errorf("move hits=%d misses=%d", hits, misses)
	}
}

// driveTrajectory runs a directional random walk and returns the demand
// miss rate experienced by the user.
func driveTrajectory(t *testing.T, pred Predictor, seed int64) float64 {
	t.Helper()
	tbl := mkPoints(t, 5000, 4)
	g, _ := NewGrid(tbl, "x", "y", "m", 30, 30)
	f, err := NewFetcher(g, 900, 12, pred)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	w := Window{0, 0, 2, 2}
	dx, dy := 1, 0
	totalHits, totalMisses := 0, 0
	for step := 0; step < 80; step++ {
		if rng.Float64() < 0.1 { // occasionally turn
			dx, dy = dy, dx
		}
		w = w.Shift(dx, dy).Clamp(30, 30)
		_, h, m := f.Request(w)
		if step > 0 { // skip cold start
			totalHits += h
			totalMisses += m
		}
	}
	return float64(totalMisses) / float64(totalHits+totalMisses)
}

func TestMomentumBeatsNoPrefetch(t *testing.T) {
	base := driveTrajectory(t, nil, 5)
	mom := driveTrajectory(t, Momentum{}, 5)
	if mom >= base {
		t.Errorf("momentum miss rate %.3f >= baseline %.3f", mom, base)
	}
	if mom > 0.2 {
		t.Errorf("momentum miss rate %.3f too high for a directional walk", mom)
	}
}

func TestMarkovBeatsNoPrefetch(t *testing.T) {
	base := driveTrajectory(t, nil, 6)
	mk := driveTrajectory(t, Markov{}, 6)
	if mk >= base {
		t.Errorf("markov miss rate %.3f >= baseline %.3f", mk, base)
	}
}

func TestPredictorsEmptyHistory(t *testing.T) {
	if got := (Momentum{}).Predict(nil, 5); got != nil {
		t.Errorf("momentum on empty = %v", got)
	}
	if got := (Markov{}).Predict([]Window{{0, 0, 1, 1}}, 5); got != nil {
		t.Errorf("markov on single = %v", got)
	}
}

func TestMomentumStationaryPrefetchesRing(t *testing.T) {
	h := []Window{{5, 5, 6, 6}, {5, 5, 6, 6}}
	got := (Momentum{}).Predict(h, 100)
	if len(got) != 12 { // ring around a 2x2 window
		t.Errorf("ring size = %d, want 12", len(got))
	}
	for _, k := range got {
		inside := k.X >= 5 && k.X <= 6 && k.Y >= 5 && k.Y <= 6
		if inside {
			t.Errorf("ring contains interior tile %v", k)
		}
	}
}

func TestPredictorNames(t *testing.T) {
	if (Momentum{}).Name() != "momentum" || (Markov{}).Name() != "markov" {
		t.Error("predictor names")
	}
}

func TestPrefetchAccounting(t *testing.T) {
	tbl := mkPoints(t, 3000, 7)
	g, _ := NewGrid(tbl, "x", "y", "m", 10, 10)
	f, _ := NewFetcher(g, 100, 5, Momentum{})
	f.Request(Window{0, 0, 1, 1})
	f.Request(Window{1, 0, 2, 1})
	if f.PrefetchFetches == 0 {
		t.Error("no speculative fetches recorded")
	}
	if f.DemandFetches == 0 || f.DemandRows < 0 {
		t.Error("demand accounting broken")
	}
}

func TestSATMatchesDirectAggregation(t *testing.T) {
	tbl := mkPoints(t, 4000, 21)
	g, err := NewGrid(tbl, "x", "y", "m", 12, 12)
	if err != nil {
		t.Fatal(err)
	}
	sat := NewSAT(g)
	// Fresh grid for the oracle (Fetch mutates counters only).
	g2, _ := NewGrid(tbl, "x", "y", "m", 12, 12)
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 30; trial++ {
		x0, y0 := rng.Intn(10), rng.Intn(10)
		win := Window{X0: x0, Y0: y0, X1: x0 + rng.Intn(12-x0), Y1: y0 + rng.Intn(12-y0)}
		agg := sat.WindowAgg(win)
		wantCount, wantSum := 0, 0.0
		for _, k := range win.Tiles() {
			st := g2.Fetch(k)
			wantCount += st.Count
			wantSum += st.Sum
		}
		if agg.Count != wantCount || math.Abs(agg.Sum-wantSum) > 1e-6 {
			t.Fatalf("window %+v agg = %+v, want count=%d sum=%v", win, agg, wantCount, wantSum)
		}
	}
}

func TestFindWindowsDenseRegion(t *testing.T) {
	// Points concentrated in one corner: dense windows must be found there.
	n := 3000
	xs := make([]float64, n)
	ys := make([]float64, n)
	ms := make([]float64, n)
	rng := rand.New(rand.NewSource(23))
	for i := range xs {
		if i < n/2 { // dense cluster near (10,10)
			xs[i] = 5 + rng.Float64()*10
			ys[i] = 5 + rng.Float64()*10
		} else {
			xs[i] = rng.Float64() * 100
			ys[i] = rng.Float64() * 100
		}
		ms[i] = 1
	}
	tbl, _ := storage.FromColumns("pts", storage.Schema{
		{Name: "x", Type: storage.TFloat}, {Name: "y", Type: storage.TFloat}, {Name: "m", Type: storage.TFloat},
	}, []storage.Column{storage.NewFloatColumn(xs), storage.NewFloatColumn(ys), storage.NewFloatColumn(ms)})
	g, _ := NewGrid(tbl, "x", "y", "m", 20, 20)
	sat := NewSAT(g)
	threshold := float64(n) / 20
	wins, err := sat.FindWindows(4, 4, func(w WindowAgg) bool { return w.Sum > threshold })
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) == 0 {
		t.Fatal("no dense windows found")
	}
	// The top window must cover the cluster corner (tiles ~1..4).
	top := wins[0].Win
	if top.X0 > 4 || top.Y0 > 4 {
		t.Errorf("top window = %+v, expected near origin", top)
	}
	// Sorted descending by Sum.
	for i := 1; i < len(wins); i++ {
		if wins[i-1].Sum < wins[i].Sum {
			t.Fatal("windows not sorted by sum")
		}
	}
	if _, err := sat.FindWindows(0, 4, nil); !errors.Is(err, ErrBadWindowSize) {
		t.Errorf("bad size err = %v", err)
	}
}

func TestFindFirstNearestOrder(t *testing.T) {
	tbl := mkPoints(t, 5000, 24)
	g, _ := NewGrid(tbl, "x", "y", "m", 15, 15)
	sat := NewSAT(g)
	seed := Window{X0: 7, Y0: 7, X1: 9, Y1: 9}
	all := func(WindowAgg) bool { return true }
	wins, err := sat.FindFirst(seed, 3, 3, 5, all)
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != 5 {
		t.Fatalf("windows = %d", len(wins))
	}
	// First match should be at the seed itself.
	if wins[0].Win.X0 != 7 || wins[0].Win.Y0 != 7 {
		t.Errorf("first window = %+v, want the seed", wins[0].Win)
	}
	// Avg is consistent.
	if wins[0].Count > 0 && math.Abs(wins[0].Avg()-wins[0].Sum/float64(wins[0].Count)) > 1e-12 {
		t.Error("avg inconsistent")
	}
}

// greedyPredictor ignores the budget argument and returns every tile in
// the grid — the misbehaving predictor the Fetcher's own budget
// accounting must defend against.
type greedyPredictor struct{ nx, ny int }

func (g greedyPredictor) Name() string { return "greedy" }
func (g greedyPredictor) Predict(history []Window, budget int) []TileKey {
	var out []TileKey
	for x := 0; x < g.nx; x++ {
		for y := 0; y < g.ny; y++ {
			out = append(out, TileKey{x, y})
		}
	}
	return out
}

// Regression: Fetcher.Request must bound speculative fetches by its own
// budget even when the predictor returns far more candidates than asked.
// Before the fix, speculate() trusted Predict to self-limit, so a greedy
// predictor turned every viewport request into a full-grid scan.
func TestFetcherBudgetEnforced(t *testing.T) {
	tbl := mkPoints(t, 2000, 8)
	g, _ := NewGrid(tbl, "x", "y", "m", 20, 20)
	const budget = 3
	f, _ := NewFetcher(g, 400, budget, greedyPredictor{20, 20})
	var prev int64
	for step := 0; step < 4; step++ {
		f.Request(Window{step, 0, step + 1, 1})
		if got := f.PrefetchFetches - prev; got > budget {
			t.Fatalf("step %d: %d speculative fetches, budget %d", step, got, budget)
		}
		prev = f.PrefetchFetches
	}
	if f.PrefetchFetches == 0 {
		t.Fatal("budget enforcement must not disable prefetching entirely")
	}
}

// NextWindows on a coherent pan sequence: the actual next viewport must
// appear among the top-k predictions far more often than the no-predictor
// baseline (which warms nothing, so its hit count is zero by definition).
func TestNextWindowsCoherentPan(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	w := Window{0, 0, 2, 2}
	dx, dy := 1, 0
	history := []Window{w}
	hits, total := 0, 0
	for step := 0; step < 60; step++ {
		preds := NextWindows(history, 2)
		if rng.Float64() < 0.1 { // occasionally turn
			dx, dy = dy, dx
		}
		next := w.Shift(dx, dy).Clamp(40, 40)
		if len(history) >= 2 {
			total++
			for _, p := range preds {
				if p.Clamp(40, 40) == next {
					hits++
					break
				}
			}
		}
		w = next
		history = append(history, w)
	}
	baseline := 0 // no predictor warms nothing
	if hits <= baseline {
		t.Fatalf("predictor hit %d of %d, no better than baseline %d", hits, total, baseline)
	}
	if rate := float64(hits) / float64(total); rate < 0.6 {
		t.Fatalf("top-2 window hit rate %.2f on a mostly-straight pan, want >= 0.6", rate)
	}
}

// NextWindows edge cases: no move signal yet, zero k, and best-first
// ordering (the straight continuation of a steady pan must come first).
func TestNextWindowsEdges(t *testing.T) {
	if got := NextWindows(nil, 3); got != nil {
		t.Errorf("no history: %v", got)
	}
	if got := NextWindows([]Window{{0, 0, 1, 1}}, 3); got != nil {
		t.Errorf("single window: %v", got)
	}
	h := []Window{{0, 0, 1, 1}, {1, 0, 2, 1}, {2, 0, 3, 1}}
	if got := NextWindows(h, 0); got != nil {
		t.Errorf("k=0: %v", got)
	}
	got := NextWindows(h, 3)
	if len(got) != 3 {
		t.Fatalf("k=3 returned %d windows", len(got))
	}
	if want := (Window{3, 0, 4, 1}); got[0] != want {
		t.Errorf("steady right pan: first prediction %+v, want %+v", got[0], want)
	}
}
