package idebench

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"dex/internal/metrics"
	"dex/internal/prefetch"
	"dex/internal/server"
)

// Outcome classifies what happened to one issued query, from the user's
// point of view.
type Outcome uint8

// The outcome buckets. The deadline-accounting rule the benchmark enforces
// (and the table-driven test pins down): a degraded answer — the server
// noticed the deadline and returned a sampled approximation, degraded:true
// on the wire — is an ANSWER. The user saw numbers before giving up, so it
// scores against quality-at-deadline, not as a deadline violation. Only
// OutcomeLate (an answer that arrived after the deadline anyway) and
// OutcomeTimeout (the server gave up, 504) are violations.
const (
	OutcomeOK           Outcome = iota // answered within the deadline
	OutcomeDegraded                    // answered with a degraded approximation
	OutcomeLate                        // answered, but after the deadline — violation
	OutcomeTimeout                     // server-side deadline exceeded (504) — violation
	OutcomeRejected                    // load-shed (429/503) after client retries
	OutcomeTransport                   // network-level failure
	OutcomeFailed                      // any other server error (bad SQL, 5xx)
	OutcomeUnclassified                // an error the taxonomy does not cover
	numOutcomes
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeDegraded:
		return "degraded"
	case OutcomeLate:
		return "late"
	case OutcomeTimeout:
		return "timeout"
	case OutcomeRejected:
		return "rejected"
	case OutcomeTransport:
		return "transport"
	case OutcomeFailed:
		return "failed"
	default:
		return "unclassified"
	}
}

// Violation reports whether the outcome counts as a deadline violation.
func (o Outcome) Violation() bool { return o == OutcomeLate || o == OutcomeTimeout }

// Answered reports whether the user got a result table at all.
func (o Outcome) Answered() bool {
	return o == OutcomeOK || o == OutcomeDegraded || o == OutcomeLate
}

// Classify buckets one query attempt. res/err are the client's return
// values, elapsed the client-observed round-trip (including retries —
// what the user felt), deadline the per-query budget (0 = none).
func Classify(res *server.QueryResult, err error, elapsed, deadline time.Duration) Outcome {
	if err == nil {
		switch {
		case res != nil && res.Degraded:
			// Degraded answers arrive near the deadline by construction;
			// they are the deadline policy working, not it failing.
			return OutcomeDegraded
		case deadline > 0 && elapsed > deadline:
			return OutcomeLate
		default:
			return OutcomeOK
		}
	}
	var rej *server.RejectedError
	var se *server.StatusError
	switch {
	case errors.As(err, &rej):
		return OutcomeRejected
	case server.IsTransport(err):
		return OutcomeTransport
	case errors.As(err, &se):
		if se.Status == 504 {
			return OutcomeTimeout
		}
		return OutcomeFailed
	default:
		return OutcomeUnclassified
	}
}

// Config parameterizes one driver run.
type Config struct {
	// Users is the number of concurrent simulated users (default 4); user
	// u's trace is seeded with Seed+u.
	Users int
	Seed  int64
	// Mode is the execution mode every query requests (default "exact").
	Mode string
	// Deadline is the per-query latency budget, sent to the server as
	// timeout_ms and used client-side to classify late answers
	// (default 250ms).
	Deadline time.Duration
	// ThinkScale multiplies every think time in the trace: 1 = as drawn,
	// 0 = closed loop. Negative means "use 1".
	ThinkScale float64
	// User configures the simulated-user state machine.
	User UserConfig
	// Prefetch turns on predictor-driven cache warming: each user's pan
	// trace feeds prefetch.NextWindows, and the predicted viewports'
	// queries are executed asynchronously on warming sessions so the
	// server's result cache already holds the user's likely next answer.
	// Only the exact mode caches results, so warming helps there.
	Prefetch bool
	// PrefetchBudget is how many predicted windows are warmed per pan
	// (default 2).
	PrefetchBudget int
	// QualitySample bounds how many distinct approximate answers are
	// re-resolved exactly for the quality-at-deadline score (default 64;
	// negative disables the oracle pass).
	QualitySample int
}

func (c *Config) fill() {
	if c.Users <= 0 {
		c.Users = 4
	}
	if c.Mode == "" {
		c.Mode = "exact"
	}
	if c.Deadline <= 0 {
		c.Deadline = 250 * time.Millisecond
	}
	if c.ThinkScale < 0 {
		c.ThinkScale = 1
	}
	if c.PrefetchBudget <= 0 {
		c.PrefetchBudget = 2
	}
	if c.QualitySample == 0 {
		c.QualitySample = 64
	}
	c.User.fill()
}

// Report is the scored result of one driver run.
type Report struct {
	Users      int     `json:"users"`
	OpsPerUser int     `json:"ops_per_user"`
	Mode       string  `json:"mode"`
	DeadlineMS float64 `json:"deadline_ms"`
	ThinkScale float64 `json:"think_scale"`
	Seed       int64   `json:"seed"`
	Prefetch   bool    `json:"prefetch"`

	Issued       int64 `json:"issued"`
	OK           int64 `json:"ok"`
	Degraded     int64 `json:"degraded"`
	Late         int64 `json:"late"`
	Timeout      int64 `json:"timeout"`
	Rejected     int64 `json:"rejected"`
	Transport    int64 `json:"transport"`
	Failed       int64 `json:"failed"`
	Unclassified int64 `json:"unclassified"`

	// Violations = Late + Timeout; ViolationRate is over all issued ops.
	Violations    int64   `json:"deadline_violations"`
	ViolationRate float64 `json:"violation_rate"`

	// Time-to-insight: wall time from session start until the insight
	// operation completes, across users that got there.
	TTIMeanS float64 `json:"tti_mean_s"`
	TTIP95S  float64 `json:"tti_p95_s"`

	// Quality-at-deadline: mean relative error of the answers the user
	// saw in time (exact in-deadline answers score 0; degraded and
	// approximate answers score their measured error against an exact
	// oracle re-run after the benchmark). QualityN is how many answers
	// were scored.
	QualityN          int64   `json:"quality_n"`
	QualityMeanRelErr float64 `json:"quality_mean_rel_err"`

	// Client-observed latency over answered queries.
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`

	// Cache effectiveness. Pan queries are tracked separately — latency
	// histogram included — because they are the ones prefetch warming
	// targets: a warmed viewport answers from cache in well under a
	// millisecond, so the pan quantiles are where warming shows up
	// cleanly even when the mixed-op quantiles are dominated by
	// group-by drill-downs.
	CacheHits    int64   `json:"cache_hits"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	PanQueries   int64   `json:"pan_queries"`
	PanCacheHits int64   `json:"pan_cache_hits"`
	PanHitRate   float64 `json:"pan_hit_rate"`
	PanP50MS     float64 `json:"pan_p50_ms"`
	PanP95MS     float64 `json:"pan_p95_ms"`
	WarmIssued   int64   `json:"warm_issued"`
	WarmDropped  int64   `json:"warm_dropped"`

	WallS float64 `json:"wall_s"`
	QPS   float64 `json:"qps"`
}

// queryRec remembers what one answered query returned, for the post-run
// quality pass.
type queryRec struct {
	sql     string
	outcome Outcome
	approx  bool // the answer was an estimate (approx/online/degraded)
	est     *estimate
}

// Run drives cfg.Users concurrent sessions against the service behind cl
// and scores the run. The client's retry policy (if set) is honored per
// query; latency is measured around the whole logical request, retries
// included — what the user feels.
func Run(ctx context.Context, cl *server.Client, cfg Config) (*Report, error) {
	cfg.fill()

	// Warming pool: pan predictions arrive on warmCh and are executed on
	// separate sessions so speculative work never blocks a user. The
	// channel sheds when full — prefetch under overload must drop, not
	// queue unboundedly behind the very queries it is trying to help.
	warmCh := make(chan string, 256)
	var warmWG sync.WaitGroup
	var warmIssued, warmDropped atomic.Int64
	if cfg.Prefetch {
		for w := 0; w < 4; w++ {
			warmWG.Add(1)
			go func() {
				defer warmWG.Done()
				wcl := server.NewClient(cl.BaseURL)
				wcl.HTTP = cl.HTTP
				sid, err := wcl.CreateSession(ctx)
				if err != nil {
					return
				}
				defer wcl.EndSession(context.WithoutCancel(ctx), sid)
				for sql := range warmCh {
					req := server.QueryRequest{SQL: sql, Mode: "exact", TimeoutMS: cfg.Deadline.Milliseconds()}
					if _, err := wcl.Query(ctx, sid, req); err == nil {
						warmIssued.Add(1)
					}
				}
			}()
		}
	}

	type userResult struct {
		hist      *metrics.LogHist
		panHist   *metrics.LogHist
		counts    [numOutcomes]int64
		recs      []queryRec
		panQ      int64
		panHits   int64
		cacheHits int64
		tti       time.Duration
		err       error
	}
	results := make([]userResult, cfg.Users)
	var wg sync.WaitGroup
	start := time.Now()
	for u := 0; u < cfg.Users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			res := &results[u]
			res.hist = metrics.NewLogHist()
			res.panHist = metrics.NewLogHist()
			tr := NewTrace(cfg.User, cfg.Seed+int64(u))
			userStart := time.Now()
			sid, err := cl.CreateSession(ctx)
			if err != nil {
				// The whole session is lost: every op it would have issued
				// lands in the bucket the create failure classifies to.
				oc := Classify(nil, err, 0, cfg.Deadline)
				res.counts[oc] += int64(len(tr.Ops))
				if oc == OutcomeUnclassified && ctx.Err() != nil {
					res.err = ctx.Err()
				}
				return
			}
			defer cl.EndSession(context.WithoutCancel(ctx), sid)
			var history []prefetch.Window
			for i, op := range tr.Ops {
				if think := time.Duration(float64(op.Think) * cfg.ThinkScale); think > 0 {
					select {
					case <-time.After(think):
					case <-ctx.Done():
						res.err = ctx.Err()
						return
					}
				}
				req := server.QueryRequest{SQL: op.SQL, Mode: cfg.Mode, TimeoutMS: cfg.Deadline.Milliseconds()}
				t0 := time.Now()
				out, qerr := cl.Query(ctx, sid, req)
				elapsed := time.Since(t0)
				oc := Classify(out, qerr, elapsed, cfg.Deadline)
				if oc == OutcomeUnclassified && ctx.Err() != nil {
					res.err = ctx.Err()
					return
				}
				res.counts[oc]++
				if oc.Answered() {
					res.hist.Add(elapsed.Seconds())
					if out.Cached {
						res.cacheHits++
					}
					if oc != OutcomeLate {
						// Only in-deadline answers are quality-scored; a
						// late answer is already counted as a violation.
						res.recs = append(res.recs, queryRec{
							sql:     op.SQL,
							outcome: oc,
							approx:  out.Degraded || isApproxMode(out.Mode),
							est:     parseEstimate(out),
						})
					}
				}
				if op.Kind == OpPan {
					res.panQ++
					if qerr == nil {
						res.panHist.Add(elapsed.Seconds())
						if out.Cached {
							res.panHits++
						}
					}
					history = append(history, op.Window)
					if cfg.Prefetch {
						for _, nw := range prefetch.NextWindows(history, cfg.PrefetchBudget) {
							nw = nw.Clamp(cfg.User.GridNX, cfg.User.GridNY)
							select {
							case warmCh <- tileSQL(cfg.User, nw):
							default:
								warmDropped.Add(1)
							}
						}
					}
				}
				if i == tr.Insight && res.tti == 0 {
					res.tti = time.Since(userStart)
				}
			}
		}(u)
	}
	wg.Wait()
	wall := time.Since(start)
	close(warmCh)
	warmWG.Wait()

	merged := metrics.NewLogHist()
	mergedPan := metrics.NewLogHist()
	rep := &Report{
		Users:      cfg.Users,
		OpsPerUser: cfg.User.Ops,
		Mode:       cfg.Mode,
		DeadlineMS: float64(cfg.Deadline) / float64(time.Millisecond),
		ThinkScale: cfg.ThinkScale,
		Seed:       cfg.Seed,
		Prefetch:   cfg.Prefetch,
		WallS:      wall.Seconds(),
	}
	var ttis []float64
	var recs []queryRec
	for i := range results {
		r := &results[i]
		if r.err != nil {
			return nil, r.err
		}
		merged.Merge(r.hist)
		mergedPan.Merge(r.panHist)
		rep.OK += r.counts[OutcomeOK]
		rep.Degraded += r.counts[OutcomeDegraded]
		rep.Late += r.counts[OutcomeLate]
		rep.Timeout += r.counts[OutcomeTimeout]
		rep.Rejected += r.counts[OutcomeRejected]
		rep.Transport += r.counts[OutcomeTransport]
		rep.Failed += r.counts[OutcomeFailed]
		rep.Unclassified += r.counts[OutcomeUnclassified]
		rep.CacheHits += r.cacheHits
		rep.PanQueries += r.panQ
		rep.PanCacheHits += r.panHits
		if r.tti > 0 {
			ttis = append(ttis, r.tti.Seconds())
		}
		recs = append(recs, r.recs...)
	}
	rep.Issued = rep.OK + rep.Degraded + rep.Late + rep.Timeout +
		rep.Rejected + rep.Transport + rep.Failed + rep.Unclassified
	rep.Violations = rep.Late + rep.Timeout
	if rep.Issued > 0 {
		rep.ViolationRate = float64(rep.Violations) / float64(rep.Issued)
	}
	if len(ttis) > 0 {
		rep.TTIMeanS = metrics.Mean(ttis)
		rep.TTIP95S = metrics.Quantile(ttis, 0.95)
	}
	answered := rep.OK + rep.Degraded + rep.Late
	if answered > 0 {
		rep.CacheHitRate = float64(rep.CacheHits) / float64(answered)
	}
	if rep.PanQueries > 0 {
		rep.PanHitRate = float64(rep.PanCacheHits) / float64(rep.PanQueries)
	}
	rep.WarmIssued = warmIssued.Load()
	rep.WarmDropped = warmDropped.Load()
	if wall > 0 {
		rep.QPS = float64(answered) / wall.Seconds()
	}
	rep.P50MS = merged.Quantile(0.5) * 1e3
	rep.P95MS = merged.Quantile(0.95) * 1e3
	rep.P99MS = merged.Quantile(0.99) * 1e3
	rep.MaxMS = merged.Max() * 1e3
	if mergedPan.N() > 0 {
		rep.PanP50MS = mergedPan.Quantile(0.5) * 1e3
		rep.PanP95MS = mergedPan.Quantile(0.95) * 1e3
	}

	if cfg.QualitySample >= 0 {
		scoreQuality(ctx, cl, recs, cfg.QualitySample, rep)
	}
	return rep, nil
}

// isApproxMode reports whether the answer's producing mode yields
// estimates rather than exact values.
func isApproxMode(mode string) bool { return mode == "approx" || mode == "online" }
