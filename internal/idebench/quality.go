package idebench

import (
	"context"
	"fmt"
	"math"
	"time"

	"dex/internal/server"
)

// estimate is the numeric content of one answer: the aggregate value per
// group ("" for a scalar answer).
type estimate struct {
	groups map[string]float64
}

// parseEstimate extracts the aggregate values from a query result. The
// value column is located structurally: approximate answers carry a
// "ci95" column immediately after the aggregate (core.estimatesTable), so
// the value is the column before it; exact answers put the aggregate
// last. The group key, when present, is column 0. Null cells (NaN/Inf on
// the wire) are skipped.
func parseEstimate(res *server.QueryResult) *estimate {
	if res == nil || len(res.Columns) == 0 {
		return nil
	}
	valCol := len(res.Columns) - 1
	for i, c := range res.Columns {
		if c == "ci95" && i > 0 {
			valCol = i - 1
			break
		}
	}
	est := &estimate{groups: map[string]float64{}}
	for _, row := range res.Rows {
		if valCol >= len(row) {
			continue
		}
		v, ok := toFloat(row[valCol])
		if !ok {
			continue
		}
		key := ""
		if valCol > 0 {
			key = fmt.Sprint(row[0])
		}
		est.groups[key] = v
	}
	return est
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0, false
		}
		return x, true
	case int64:
		return float64(x), true
	case int:
		return float64(x), true
	default:
		return 0, false
	}
}

// relErr scores an estimate against the exact answer: per oracle group,
// |approx−exact| / max(|exact|, 1e-9), capped at 1 (an answer can not be
// more than 100% wrong for scoring purposes; a missing group counts as
// fully wrong), then averaged across groups. Returns -1 when the oracle
// is empty (nothing to score against).
func relErr(approx, exact *estimate) float64 {
	if exact == nil || len(exact.groups) == 0 {
		return -1
	}
	var sum float64
	for key, ev := range exact.groups {
		if approx == nil {
			sum += 1
			continue
		}
		av, ok := approx.groups[key]
		if !ok {
			sum += 1
			continue
		}
		denom := math.Abs(ev)
		if denom < 1e-9 {
			denom = 1e-9
		}
		e := math.Abs(av-ev) / denom
		if e > 1 {
			e = 1
		}
		sum += e
	}
	return sum / float64(len(exact.groups))
}

// scoreQuality computes quality-at-deadline for the answered-in-time
// queries: exact answers score 0; approximate and degraded answers are
// compared against an exact oracle re-run after the benchmark (so the
// oracle queries never compete with the benchmark for server capacity,
// and never pollute the shared result cache mid-run). The oracle resolves
// each distinct statement once, up to sample statements, with a generous
// timeout; statements whose oracle fails are left unscored rather than
// guessed at.
func scoreQuality(ctx context.Context, cl *server.Client, recs []queryRec, sample int, rep *Report) {
	needs := map[string]bool{}
	for _, r := range recs {
		if r.approx && r.est != nil {
			needs[r.sql] = true
		}
	}
	oracle := map[string]*estimate{}
	if len(needs) > 0 {
		sid, err := cl.CreateSession(ctx)
		if err == nil {
			defer cl.EndSession(context.WithoutCancel(ctx), sid)
			resolved := 0
			for _, r := range recs {
				if !needs[r.sql] || oracle[r.sql] != nil {
					continue
				}
				if sample > 0 && resolved >= sample {
					break
				}
				out, err := cl.Query(ctx, sid, server.QueryRequest{
					SQL: r.sql, Mode: "exact", TimeoutMS: (30 * time.Second).Milliseconds(),
				})
				if err != nil {
					continue
				}
				oracle[r.sql] = parseEstimate(out)
				resolved++
			}
		}
	}
	var sum float64
	var n int64
	for _, r := range recs {
		if !r.approx {
			// An exact in-deadline answer is, by definition, fully correct.
			sum += 0
			n++
			continue
		}
		o := oracle[r.sql]
		if o == nil {
			continue
		}
		if e := relErr(r.est, o); e >= 0 {
			sum += e
			n++
		}
	}
	rep.QualityN = n
	if n > 0 {
		rep.QualityMeanRelErr = sum / float64(n)
	}
}
