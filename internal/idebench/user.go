// Package idebench is an IDEBench-style simulated-user benchmark for the
// dexd service: U concurrent synthetic analysts each run a seeded state
// machine over an exploration-operation mix (drill-down, roll-up, pan,
// filter-refine) with think time between operations and a per-query
// latency deadline. The driver scores a run the way the interactive-
// exploration literature says such systems must be scored — not by raw
// throughput but by deadline-violation rate, time-to-insight, and
// quality-at-deadline (the relative error of the approximate answers the
// user actually saw) — and closes the loop with internal/prefetch by
// feeding each live session's pan trace into the trajectory predictor to
// warm the server-side result cache with the user's likely next viewport.
package idebench

import (
	"fmt"
	"math/rand"
	"time"

	"dex/internal/prefetch"
)

// OpKind classifies one user operation.
type OpKind uint8

// The operation kinds of the exploration state machine.
const (
	OpOverview OpKind = iota // broad group-by over the full table
	OpDrill                  // narrow the value window toward a focus
	OpRollup                 // widen the window back out
	OpPan                    // shift the 2-D viewport one step
	OpRefine                 // pin a scalar aggregate under an extra filter
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpOverview:
		return "overview"
	case OpDrill:
		return "drill"
	case OpRollup:
		return "rollup"
	case OpPan:
		return "pan"
	case OpRefine:
		return "refine"
	default:
		return fmt.Sprintf("opkind(%d)", uint8(k))
	}
}

// Mix is the operation mix: relative weights (they need not sum to 1) for
// each kind after the opening overview.
type Mix struct {
	Drill  float64
	Rollup float64
	Pan    float64
	Refine float64
}

// DefaultMix is the IDEBench-flavored default: drill-down and pan dominate,
// with occasional roll-ups and filter refinements.
func DefaultMix() Mix { return Mix{Drill: 0.35, Rollup: 0.10, Pan: 0.35, Refine: 0.20} }

func (m Mix) total() float64 { return m.Drill + m.Rollup + m.Pan + m.Refine }

// UserConfig parameterizes the simulated user.
type UserConfig struct {
	// Ops is the number of operations in the session (default 12).
	Ops int
	// Mix is the operation mix (default DefaultMix).
	Mix Mix
	// ThinkMean is the mean of the exponential think-time distribution
	// (default 300ms). Individual draws are capped at 4× the mean so one
	// long tail does not dominate a short run.
	ThinkMean time.Duration
	// GridNX × GridNY is the tile grid the pan viewport moves over
	// (amount × qty; defaults 32 × 9).
	GridNX, GridNY int
	// ViewW × ViewH is the viewport size in tiles (defaults 4 × 3).
	ViewW, ViewH int
}

func (c *UserConfig) fill() {
	if c.Ops <= 0 {
		c.Ops = 12
	}
	if c.Mix.total() <= 0 {
		c.Mix = DefaultMix()
	}
	if c.ThinkMean <= 0 {
		c.ThinkMean = 300 * time.Millisecond
	}
	if c.GridNX <= 0 {
		c.GridNX = 32
	}
	if c.GridNY <= 0 {
		c.GridNY = 9
	}
	if c.ViewW <= 0 {
		c.ViewW = 4
	}
	if c.ViewH <= 0 {
		c.ViewH = 3
	}
}

// Op is one operation of a session trace.
type Op struct {
	Kind OpKind
	SQL  string
	// Think is the pause before issuing this operation (0 for the first).
	Think time.Duration
	// Window is the viewport of a pan operation (zero otherwise); the
	// driver feeds it into the prefetch predictor.
	Window prefetch.Window
}

// SessionTrace is the fully materialized operation sequence of one user.
type SessionTrace struct {
	Ops []Op
	// Insight is the index of the operation whose completion counts as
	// "insight reached" — the first drill-down that bottoms out at the
	// minimum window width (the user has isolated the region they were
	// hunting for), or the last operation if the session never gets there.
	Insight int
}

// The amount measure of workload.Sales spans roughly [50, 260) (base
// 50+10·product plus noise); the qty measure is an integer on [1, 10).
// The pan grid tiles exactly this rectangle so viewport queries hit real
// data.
const (
	amountLo = 50.0
	amountHi = 260.0
	qtyLo    = 1
	qtyHi    = 10
)

// tileSQL renders a viewport as a single-aggregate range query over the
// sales table. The formatting is deliberately fixed (four decimals, fixed
// clause order): the server's result cache is keyed by the exact SQL
// string, so the warmer and the user must render the same window to the
// same bytes for a prefetched result to count as a hit.
func tileSQL(cfg UserConfig, w prefetch.Window) string {
	cfg.fill()
	ax0 := amountLo + (amountHi-amountLo)*float64(w.X0)/float64(cfg.GridNX)
	ax1 := amountLo + (amountHi-amountLo)*float64(w.X1+1)/float64(cfg.GridNX)
	qy0 := qtyLo + (qtyHi-qtyLo)*w.Y0/cfg.GridNY
	qy1 := qtyLo + (qtyHi-qtyLo)*(w.Y1+1)/cfg.GridNY
	if qy1 <= qy0 {
		qy1 = qy0 + 1
	}
	return fmt.Sprintf(
		"SELECT sum(amount) FROM sales WHERE amount >= %.4f AND amount < %.4f AND qty >= %d AND qty < %d",
		ax0, ax1, qy0, qy1)
}

// NewTrace generates one user's session trace. The generator is
// deterministic: the same (cfg, seed) always yields a byte-identical
// trace, which is what lets a benchmark run be replayed and lets the
// prefetch on/off comparison drive the identical workload twice.
//
// Every statement has exactly one aggregate and at most one GROUP BY
// column, so all execution modes — exact, cracked, approx, online, and
// the degraded fallback — can answer it.
func NewTrace(cfg UserConfig, seed int64) SessionTrace {
	cfg.fill()
	rng := rand.New(rand.NewSource(seed))
	dims := []string{"region", "product", "quarter"}
	aggs := []string{"sum", "avg", "count", "max"}
	measures := []string{"amount", "qty"}

	// Drill-down state: a closing window over amount around a focus.
	lo, hi := amountLo, amountHi
	focus := 80 + rng.Float64()*120
	dim := dims[rng.Intn(len(dims))]

	// Pan state: a viewport on the amount × qty grid, starting at a random
	// in-bounds position with a random initial direction.
	view := prefetch.Window{X0: 0, Y0: 0, X1: cfg.ViewW - 1, Y1: cfg.ViewH - 1}
	view = view.Shift(rng.Intn(maxInt(cfg.GridNX-cfg.ViewW, 1)), rng.Intn(maxInt(cfg.GridNY-cfg.ViewH, 1)))
	view = view.Clamp(cfg.GridNX, cfg.GridNY)
	pdx, pdy := 1, 0
	if rng.Intn(2) == 0 {
		pdx = -1
	}

	const minWidth = 4.0
	tr := SessionTrace{Ops: make([]Op, 0, cfg.Ops), Insight: -1}
	for i := 0; i < cfg.Ops; i++ {
		var op Op
		if i > 0 {
			think := time.Duration(rng.ExpFloat64() * float64(cfg.ThinkMean))
			if limit := 4 * cfg.ThinkMean; think > limit {
				think = limit
			}
			op.Think = think.Round(time.Millisecond)
		}
		kind := OpOverview
		if i > 0 {
			r := rng.Float64() * cfg.Mix.total()
			switch {
			case r < cfg.Mix.Drill:
				kind = OpDrill
			case r < cfg.Mix.Drill+cfg.Mix.Rollup:
				kind = OpRollup
			case r < cfg.Mix.Drill+cfg.Mix.Rollup+cfg.Mix.Pan:
				kind = OpPan
			default:
				kind = OpRefine
			}
		}
		op.Kind = kind
		switch kind {
		case OpOverview:
			dim = dims[rng.Intn(len(dims))]
			agg := aggs[rng.Intn(len(aggs))]
			m := measures[rng.Intn(len(measures))]
			op.SQL = fmt.Sprintf("SELECT %s, %s(%s) FROM sales GROUP BY %s", dim, agg, m, dim)
			lo, hi = amountLo, amountHi
			focus = 80 + rng.Float64()*120
		case OpDrill:
			width := (hi - lo) * 0.7
			if width <= minWidth {
				width = minWidth
				if tr.Insight < 0 {
					tr.Insight = i
				}
			}
			lo = focus - width/2
			hi = focus + width/2
			agg := aggs[rng.Intn(len(aggs))]
			m := measures[rng.Intn(len(measures))]
			op.SQL = fmt.Sprintf(
				"SELECT %s, %s(%s) FROM sales WHERE amount >= %.4f AND amount < %.4f GROUP BY %s",
				dim, agg, m, lo, hi, dim)
		case OpRollup:
			width := (hi - lo) * 2
			if width > amountHi-amountLo {
				width = amountHi - amountLo
			}
			lo = focus - width/2
			if lo < amountLo {
				lo = amountLo
			}
			hi = lo + width
			if hi > amountHi {
				hi = amountHi
			}
			agg := aggs[rng.Intn(len(aggs))]
			m := measures[rng.Intn(len(measures))]
			op.SQL = fmt.Sprintf(
				"SELECT %s, %s(%s) FROM sales WHERE amount >= %.4f AND amount < %.4f GROUP BY %s",
				dim, agg, m, lo, hi, dim)
		case OpPan:
			// Mostly keep moving in the same direction (the momentum signal
			// trajectory prefetchers exploit); turn 25% of the time.
			if rng.Float64() < 0.25 {
				d := directionsFor(rng)
				pdx, pdy = d[0], d[1]
			}
			moved := view.Shift(pdx, pdy).Clamp(cfg.GridNX, cfg.GridNY)
			if moved == view {
				// Stuck at the border: reverse and move away from it.
				pdx, pdy = -pdx, -pdy
				moved = view.Shift(pdx, pdy).Clamp(cfg.GridNX, cfg.GridNY)
			}
			view = moved
			op.Window = view
			op.SQL = tileSQL(cfg, view)
		case OpRefine:
			agg := aggs[rng.Intn(len(aggs))]
			k := 1 + rng.Intn(5)
			op.SQL = fmt.Sprintf(
				"SELECT %s(amount) FROM sales WHERE amount >= %.4f AND amount < %.4f AND qty >= %d",
				agg, lo, hi, k)
		}
		tr.Ops = append(tr.Ops, op)
	}
	if tr.Insight < 0 {
		tr.Insight = len(tr.Ops) - 1
	}
	return tr
}

// directionsFor draws a uniformly random non-zero unit direction.
func directionsFor(rng *rand.Rand) [2]int {
	dirs := [8][2]int{
		{1, 0}, {-1, 0}, {0, 1}, {0, -1},
		{1, 1}, {1, -1}, {-1, 1}, {-1, -1},
	}
	return dirs[rng.Intn(len(dirs))]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Format renders the trace in a canonical textual form — one line per
// operation with kind, think time, window, and SQL. Two traces are the
// same session exactly when their Format output is byte-identical, which
// is what the seeded-determinism test (and the "same seed reproduces the
// same session" acceptance bar) checks.
func (tr SessionTrace) Format() string {
	var b []byte
	for i, op := range tr.Ops {
		b = fmt.Appendf(b, "%02d %-8s think=%s win=%v insight=%v sql=%s\n",
			i, op.Kind, op.Think, op.Window, i == tr.Insight, op.SQL)
	}
	return string(b)
}
