package idebench

import (
	"context"
	"errors"
	"testing"
	"time"

	"dex/internal/server"
)

// The deadline-accounting contract, pinned down case by case. The one the
// issue singles out: a degraded:true answer — the server hit the deadline
// and substituted a sampled approximation — counts against
// quality-at-deadline, NOT as a deadline violation, even when it arrived
// after the client-side deadline.
func TestClassifyTable(t *testing.T) {
	d := 100 * time.Millisecond
	cases := []struct {
		name     string
		res      *server.QueryResult
		err      error
		elapsed  time.Duration
		want     Outcome
		violates bool
	}{
		{"fast exact answer", &server.QueryResult{Mode: "exact"}, nil, 20 * time.Millisecond, OutcomeOK, false},
		{"cached answer", &server.QueryResult{Mode: "exact", Cached: true}, nil, time.Millisecond, OutcomeOK, false},
		{"late answer", &server.QueryResult{Mode: "exact"}, nil, 150 * time.Millisecond, OutcomeLate, true},
		{"degraded in time", &server.QueryResult{Mode: "approx", Degraded: true}, nil, 90 * time.Millisecond, OutcomeDegraded, false},
		{"degraded past deadline", &server.QueryResult{Mode: "approx", Degraded: true}, nil, 130 * time.Millisecond, OutcomeDegraded, false},
		{"server timeout", nil, &server.StatusError{Status: 504, Message: "deadline"}, 110 * time.Millisecond, OutcomeTimeout, true},
		{"load shed", nil, &server.RejectedError{Status: 429}, 5 * time.Millisecond, OutcomeRejected, false},
		{"transport failure", nil, &server.TransportError{Op: "POST", Err: errors.New("refused")}, time.Millisecond, OutcomeTransport, false},
		{"bad query", nil, &server.StatusError{Status: 400, Message: "parse"}, time.Millisecond, OutcomeFailed, false},
		{"internal error", nil, &server.StatusError{Status: 500, Message: "boom"}, time.Millisecond, OutcomeFailed, false},
		{"untyped error", nil, errors.New("mystery"), time.Millisecond, OutcomeUnclassified, false},
		{"no deadline never late", &server.QueryResult{Mode: "exact"}, nil, time.Hour, OutcomeOK, false},
	}
	for _, tc := range cases {
		dl := d
		if tc.name == "no deadline never late" {
			dl = 0
		}
		got := Classify(tc.res, tc.err, tc.elapsed, dl)
		if got != tc.want {
			t.Errorf("%s: got %s, want %s", tc.name, got, tc.want)
		}
		if got.Violation() != tc.violates {
			t.Errorf("%s: violation=%v, want %v", tc.name, got.Violation(), tc.violates)
		}
	}
	// Degraded answers are quality-scored: they must read as answered.
	if !OutcomeDegraded.Answered() {
		t.Fatalf("degraded answers must count as answered")
	}
}

func startTestServer(t *testing.T, rows int) *Local {
	t.Helper()
	l, err := StartLocal(LocalConfig{Rows: rows, Seed: 1})
	if err != nil {
		t.Fatalf("start local server: %v", err)
	}
	t.Cleanup(l.Close)
	return l
}

// End-to-end smoke: a small concurrent run against an in-process dexd.
// Every issued op lands in exactly one bucket, latency quantiles are
// populated, and nothing is unclassified.
func TestDriverSmoke(t *testing.T) {
	l := startTestServer(t, 8000)
	cl := server.NewClient(l.URL)
	cfg := Config{
		Users:    3,
		Seed:     42,
		Mode:     "exact",
		Deadline: 2 * time.Second,
		User:     UserConfig{Ops: 6},
		// Closed loop: think time off to keep the test fast.
		ThinkScale: 0,
	}
	rep, err := Run(context.Background(), cl, cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if want := int64(3 * 6); rep.Issued != want {
		t.Fatalf("issued %d, want %d", rep.Issued, want)
	}
	sum := rep.OK + rep.Degraded + rep.Late + rep.Timeout + rep.Rejected +
		rep.Transport + rep.Failed + rep.Unclassified
	if sum != rep.Issued {
		t.Fatalf("outcome buckets sum to %d, issued %d", sum, rep.Issued)
	}
	if rep.Unclassified != 0 {
		t.Fatalf("%d unclassified outcomes", rep.Unclassified)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d failed queries — generated SQL the server rejects?", rep.Failed)
	}
	if rep.OK == 0 {
		t.Fatalf("no query succeeded: %+v", rep)
	}
	if rep.P95MS <= 0 || rep.TTIMeanS <= 0 {
		t.Fatalf("latency/TTI not populated: p95=%v tti=%v", rep.P95MS, rep.TTIMeanS)
	}
}

// Approximate modes must produce a quality-at-deadline score: the oracle
// re-resolves the estimates exactly, and the mean relative error lands in
// [0, 1] with at least one scored answer.
func TestDriverQualityApprox(t *testing.T) {
	l := startTestServer(t, 20000)
	cl := server.NewClient(l.URL)
	rep, err := Run(context.Background(), cl, Config{
		Users:      2,
		Seed:       7,
		Mode:       "approx",
		Deadline:   2 * time.Second,
		ThinkScale: 0,
		User:       UserConfig{Ops: 8},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.QualityN == 0 {
		t.Fatalf("no answers quality-scored: %+v", rep)
	}
	if rep.QualityMeanRelErr < 0 || rep.QualityMeanRelErr > 1 {
		t.Fatalf("quality mean rel err %v outside [0,1]", rep.QualityMeanRelErr)
	}
	// A 1% uniform sample over 20k rows estimates sum/avg well; grossly
	// wrong estimates mean the oracle matched the wrong columns.
	if rep.QualityMeanRelErr > 0.6 {
		t.Fatalf("quality mean rel err %v implausibly bad", rep.QualityMeanRelErr)
	}
}

// Predictor-driven warming must lift the pan cache hit-rate over the
// identical seeded run without it. Pan viewports move to fresh windows
// almost every step, so without warming the result cache nearly never
// hits on a pan; with the trajectory predictor warming the likely next
// windows during think time, a straight-moving user finds their next
// viewport already cached.
func TestDriverPrefetchWarmsCache(t *testing.T) {
	l := startTestServer(t, 8000)
	run := func(warm bool) *Report {
		cl := server.NewClient(l.URL)
		rep, err := Run(context.Background(), cl, Config{
			Users:          2,
			Seed:           13,
			Mode:           "exact",
			Deadline:       2 * time.Second,
			ThinkScale:     1,
			Prefetch:       warm,
			PrefetchBudget: 3,
			User: UserConfig{
				Ops: 14,
				Mix: Mix{Pan: 1},
				// Enough think time for the async warmer to land the
				// predicted window before the user asks for it.
				ThinkMean: 40 * time.Millisecond,
			},
		})
		if err != nil {
			t.Fatalf("run(warm=%v): %v", warm, err)
		}
		if rep.PanQueries == 0 {
			t.Fatalf("pan-only session issued no pan queries")
		}
		return rep
	}
	off := run(false)
	on := run(true)
	if on.WarmIssued == 0 {
		t.Fatalf("warming enabled but no warm queries issued")
	}
	if on.PanHitRate <= off.PanHitRate {
		t.Fatalf("prefetch did not lift pan hit-rate: off=%.2f on=%.2f (warmed %d)",
			off.PanHitRate, on.PanHitRate, on.WarmIssued)
	}
}

// The prefetch on/off comparison drives the same seed twice — the traces
// must be identical, so differences in outcome are attributable to
// warming alone.
func TestDriverSameSeedSameTrace(t *testing.T) {
	cfg := UserConfig{Ops: 10}
	for u := 0; u < 3; u++ {
		a := NewTrace(cfg, 99+int64(u)).Format()
		b := NewTrace(cfg, 99+int64(u)).Format()
		if a != b {
			t.Fatalf("user %d trace not reproducible", u)
		}
	}
}
