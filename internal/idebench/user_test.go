package idebench

import (
	"strings"
	"testing"
	"time"

	"dex/internal/exec"
	"dex/internal/sqlparse"
)

// Same seed ⇒ byte-identical operation trace; different seed ⇒ different
// trace. This is the property the whole benchmark leans on: a run can be
// replayed, and the prefetch on/off comparison drives the identical
// workload twice.
func TestTraceDeterministic(t *testing.T) {
	cfg := UserConfig{Ops: 40}
	a := NewTrace(cfg, 7).Format()
	b := NewTrace(cfg, 7).Format()
	if a != b {
		t.Fatalf("same seed produced different traces:\n%s\n---\n%s", a, b)
	}
	c := NewTrace(cfg, 8).Format()
	if a == c {
		t.Fatalf("different seeds produced identical traces")
	}
}

// The realized operation-mix frequencies must match the configured
// distribution — a chi-squared goodness-of-fit check over a long seeded
// trace. With n≈6000 draws and df=3, a statistic under 16.27 accepts at
// the 0.1% level; the trace is seeded, so this is a regression test, not
// a flaky statistical one.
func TestTraceMixFrequencies(t *testing.T) {
	const n = 6000
	mix := DefaultMix()
	tr := NewTrace(UserConfig{Ops: n, Mix: mix}, 3)
	counts := map[OpKind]float64{}
	for _, op := range tr.Ops[1:] { // op 0 is always the overview
		counts[op.Kind]++
	}
	if counts[OpOverview] != 0 {
		t.Fatalf("overview drawn mid-session: %v", counts)
	}
	total := float64(n - 1)
	expected := map[OpKind]float64{
		OpDrill:  total * mix.Drill / mix.total(),
		OpRollup: total * mix.Rollup / mix.total(),
		OpPan:    total * mix.Pan / mix.total(),
		OpRefine: total * mix.Refine / mix.total(),
	}
	chi2 := 0.0
	for kind, exp := range expected {
		d := counts[kind] - exp
		chi2 += d * d / exp
	}
	if chi2 > 16.27 {
		t.Fatalf("mix off-distribution: chi2=%.2f counts=%v expected=%v", chi2, counts, expected)
	}
}

// Every generated statement must parse and stay within the shape every
// execution mode can answer: exactly one aggregate (the approximate modes
// reject more), and pan operations must carry their viewport for the
// prefetch predictor.
func TestTraceSQLShapes(t *testing.T) {
	cfg := UserConfig{Ops: 200}
	tr := NewTrace(cfg, 11)
	if len(tr.Ops) != cfg.Ops {
		t.Fatalf("got %d ops, want %d", len(tr.Ops), cfg.Ops)
	}
	if tr.Insight < 0 || tr.Insight >= len(tr.Ops) {
		t.Fatalf("insight index %d out of range", tr.Insight)
	}
	for i, op := range tr.Ops {
		st, err := sqlparse.Parse(op.SQL)
		if err != nil {
			t.Fatalf("op %d (%s): %v\n%s", i, op.Kind, err, op.SQL)
		}
		aggs := 0
		for _, s := range st.Query.Select {
			if s.Agg != exec.AggNone {
				aggs++
			}
		}
		if aggs != 1 {
			t.Fatalf("op %d (%s): %d aggregates, want 1: %s", i, op.Kind, aggs, op.SQL)
		}
		if op.Kind == OpPan {
			if op.Window.X1 < op.Window.X0 || op.Window.Y1 < op.Window.Y0 {
				t.Fatalf("op %d: degenerate window %+v", i, op.Window)
			}
			if got := tileSQL(cfg, op.Window); got != op.SQL {
				t.Fatalf("op %d: pan SQL not reproducible from window:\n%s\n%s", i, got, op.SQL)
			}
		}
	}
}

// Think times are drawn from the seeded exponential: positive after the
// first op (modulo millisecond rounding), capped at 4× the mean, zero for
// the opening overview.
func TestTraceThinkTimes(t *testing.T) {
	mean := 200 * time.Millisecond
	tr := NewTrace(UserConfig{Ops: 500, ThinkMean: mean}, 5)
	if tr.Ops[0].Think != 0 {
		t.Fatalf("first op has think time %v", tr.Ops[0].Think)
	}
	var sum time.Duration
	for _, op := range tr.Ops[1:] {
		if op.Think < 0 || op.Think > 4*mean {
			t.Fatalf("think %v outside [0, %v]", op.Think, 4*mean)
		}
		sum += op.Think
	}
	avg := sum / time.Duration(len(tr.Ops)-1)
	// The cap trims the tail, so the realized mean sits a bit under the
	// nominal one; a window of [mean/2, 3·mean/2] catches gross breakage.
	if avg < mean/2 || avg > mean*3/2 {
		t.Fatalf("realized mean think %v too far from %v", avg, mean)
	}
}

// A drill-heavy session reaches its insight (the window bottoming out)
// well before the session ends.
func TestTraceInsightReached(t *testing.T) {
	tr := NewTrace(UserConfig{Ops: 60, Mix: Mix{Drill: 1}}, 2)
	if tr.Insight >= len(tr.Ops)-1 {
		t.Fatalf("drill-only session never bottomed out: insight=%d", tr.Insight)
	}
	if op := tr.Ops[tr.Insight]; op.Kind != OpDrill {
		t.Fatalf("insight op is %s, want drill", op.Kind)
	}
	if !strings.Contains(tr.Ops[tr.Insight].SQL, "WHERE amount") {
		t.Fatalf("insight op is not a windowed query: %s", tr.Ops[tr.Insight].SQL)
	}
}
