package idebench

import (
	"context"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"

	"dex/internal/server"
)

// MatrixConfig parameterizes a full benchmark matrix: every mode at every
// user count, plus one prefetch on/off pair.
type MatrixConfig struct {
	UserCounts []int    // e.g. {10, 40, 100}
	Modes      []string // e.g. {"exact", "cracked", "approx", "online"}
	Ops        int      // operations per user session
	Seed       int64
	Deadline   time.Duration
	ThinkMean  time.Duration
	ThinkScale float64
	// PrefetchUsers is the user count for the prefetch on/off comparison
	// (0 skips it). The comparison runs in exact mode — the only mode
	// whose results the server caches.
	PrefetchUsers  int
	PrefetchBudget int
	// QualitySample bounds oracle queries per run (see Config).
	QualitySample int
}

// PrefetchComparison is the warming on/off pair: the identical seeded
// workload driven twice, with and without predictor-driven cache warming.
type PrefetchComparison struct {
	Users         int     `json:"users"`
	Off           *Report `json:"off"`
	On            *Report `json:"on"`
	PanHitRateOff float64 `json:"pan_hit_rate_off"`
	PanHitRateOn  float64 `json:"pan_hit_rate_on"`
	// Deltas are off−on: positive means warming shaved the quantile.
	// PanP95DeltaMS is the cleaner signal — warming only touches pan
	// queries, and a warmed viewport answers from cache in well under a
	// millisecond, while the mixed-op p95 is dominated by drill-down
	// group-bys warming never sees.
	P95DeltaMS    float64 `json:"p95_delta_ms"`
	PanP95DeltaMS float64 `json:"pan_p95_delta_ms"`
}

// MatrixResult is the full benchmark artifact (BENCH_idebench.json).
type MatrixResult struct {
	Bench      string              `json:"bench"`
	Rows       int                 `json:"rows"`
	Seed       int64               `json:"seed"`
	DeadlineMS float64             `json:"deadline_ms"`
	Runs       []*Report           `json:"runs"`
	Prefetch   *PrefetchComparison `json:"prefetch,omitempty"`
}

// RunMatrix drives the matrix. target stands up (or points at) the dexd
// instance for one run and returns its base URL plus a teardown func; an
// in-process target returns a fresh server each time so runs do not leak
// cache contents or cracked-index state into each other, while an
// external target returns the same address with a no-op teardown. logf
// (optional) narrates progress.
func RunMatrix(ctx context.Context, target func() (string, func(), error), cfg MatrixConfig, logf func(string, ...any)) (*MatrixResult, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if len(cfg.UserCounts) == 0 {
		cfg.UserCounts = []int{10, 40, 100}
	}
	if len(cfg.Modes) == 0 {
		cfg.Modes = []string{"exact", "cracked", "approx", "online"}
	}
	res := &MatrixResult{
		Bench:      "idebench",
		Seed:       cfg.Seed,
		DeadlineMS: float64(cfg.Deadline) / float64(time.Millisecond),
	}
	oneRun := func(mode string, users int, prefetch bool) (*Report, error) {
		base, done, err := target()
		if err != nil {
			return nil, err
		}
		defer done()
		cl := server.NewClient(base)
		cl.Retry = &server.RetryPolicy{MaxAttempts: 3, BaseBackoff: 20 * time.Millisecond, Seed: cfg.Seed}
		return Run(ctx, cl, Config{
			Users:          users,
			Seed:           cfg.Seed,
			Mode:           mode,
			Deadline:       cfg.Deadline,
			ThinkScale:     cfg.ThinkScale,
			Prefetch:       prefetch,
			PrefetchBudget: cfg.PrefetchBudget,
			QualitySample:  cfg.QualitySample,
			User:           UserConfig{Ops: cfg.Ops, ThinkMean: cfg.ThinkMean},
		})
	}
	for _, mode := range cfg.Modes {
		for _, users := range cfg.UserCounts {
			logf("idebench: mode=%s users=%d", mode, users)
			rep, err := oneRun(mode, users, false)
			if err != nil {
				return nil, fmt.Errorf("mode %s users %d: %w", mode, users, err)
			}
			res.Runs = append(res.Runs, rep)
		}
	}
	if cfg.PrefetchUsers > 0 {
		logf("idebench: prefetch comparison users=%d", cfg.PrefetchUsers)
		off, err := oneRun("exact", cfg.PrefetchUsers, false)
		if err != nil {
			return nil, fmt.Errorf("prefetch off: %w", err)
		}
		on, err := oneRun("exact", cfg.PrefetchUsers, true)
		if err != nil {
			return nil, fmt.Errorf("prefetch on: %w", err)
		}
		res.Prefetch = &PrefetchComparison{
			Users:         cfg.PrefetchUsers,
			Off:           off,
			On:            on,
			PanHitRateOff: off.PanHitRate,
			PanHitRateOn:  on.PanHitRate,
			P95DeltaMS:    off.P95MS - on.P95MS,
			PanP95DeltaMS: off.PanP95MS - on.PanP95MS,
		}
	}
	return res, nil
}

// Fprint renders the matrix as aligned text tables.
func (r *MatrixResult) Fprint(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := []string{"mode", "users", "issued", "viol%", "ok", "degr", "late", "to", "rej", "tti_ms", "qual_err", "p50_ms", "p95_ms", "hit%"}
	seps := make([]string, len(header))
	for i, h := range header {
		seps[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	fmt.Fprintln(tw, strings.Join(seps, "\t"))
	for _, rep := range r.Runs {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f\t%d\t%d\t%d\t%d\t%d\t%.0f\t%.4f\t%.1f\t%.1f\t%.1f\n",
			rep.Mode, rep.Users, rep.Issued, rep.ViolationRate*100,
			rep.OK, rep.Degraded, rep.Late, rep.Timeout, rep.Rejected,
			rep.TTIMeanS*1e3, rep.QualityMeanRelErr, rep.P50MS, rep.P95MS,
			rep.CacheHitRate*100)
	}
	tw.Flush()
	if p := r.Prefetch; p != nil {
		fmt.Fprintf(w, "\nprefetch (exact, %d users): pan hit-rate %.1f%% -> %.1f%%, pan p95 %.1fms -> %.1fms (delta %+.1fms), overall p95 delta %+.1fms, warmed %d\n",
			p.Users, p.PanHitRateOff*100, p.PanHitRateOn*100,
			p.Off.PanP95MS, p.On.PanP95MS, p.PanP95DeltaMS, p.P95DeltaMS, p.On.WarmIssued)
	}
}
