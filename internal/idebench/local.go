package idebench

import (
	"context"
	"math/rand"
	"net"
	"net/http"
	"time"

	"dex/internal/core"
	"dex/internal/exec"
	"dex/internal/server"
	"dex/internal/shard"
	"dex/internal/workload"
)

// LocalConfig parameterizes an in-process dexd target.
type LocalConfig struct {
	// Rows is the sales-table size (default 50_000), Seed its generator
	// seed.
	Rows int
	Seed int64
	// MaxInFlight / MaxQueue size the admission envelope. The defaults
	// (8 / 256) are deliberately larger than the server's own
	// GOMAXPROCS-derived default: the benchmark's job is to measure how
	// deadline behavior degrades as users pile up, which requires letting
	// them pile up rather than shedding at the door on a small host.
	MaxInFlight int
	MaxQueue    int
	// QueueTimeout bounds time-in-queue (default 500ms — longer than any
	// sensible interactive deadline, so the deadline, not the queue
	// policy, is what cuts a slow query).
	QueueTimeout time.Duration
	// CacheRows is the shared result-cache budget (default 1<<20 rows).
	// The cache is what prefetch warming fills, so disabling it (<0)
	// also disables the warming comparison.
	CacheRows int64
	// Shards, when > 0, spins an in-process worker fleet and makes the
	// server a coordinator: every sales query scatters across the shards
	// and gathers merged results, so the benchmark measures the
	// distributed path on the same HTTP surface.
	Shards int
}

// Local is an in-process dexd instance listening on a loopback port —
// the same HTTP surface as the real binary, so the driver measures real
// client/server/network behavior without needing a deployed server.
type Local struct {
	URL    string
	Server *server.Server

	httpSrv *http.Server
	lis     net.Listener
	fleet   *shard.LocalFleet
}

// StartLocal builds a seeded engine with the demo sales table, wraps it
// in a dexd service, and serves it on 127.0.0.1:0.
func StartLocal(cfg LocalConfig) (*Local, error) {
	if cfg.Rows <= 0 {
		cfg.Rows = 50_000
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 8
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 256
	}
	if cfg.QueueTimeout <= 0 {
		cfg.QueueTimeout = 500 * time.Millisecond
	}
	if cfg.CacheRows == 0 {
		cfg.CacheRows = 1 << 20
	} else if cfg.CacheRows < 0 {
		cfg.CacheRows = 0
	}
	// Kernels and column encoding match the dexd defaults, so benchmark
	// cells measure the engine configuration a real deployment runs.
	eng := core.New(core.Options{
		Seed:    cfg.Seed,
		Degrade: true,
		Encode:  true,
		Exec:    exec.ExecOptions{ZoneMap: true, Kernels: true, AggKernels: true},
	})
	sales, err := workload.Sales(rand.New(rand.NewSource(cfg.Seed)), cfg.Rows)
	if err != nil {
		return nil, err
	}
	if err := eng.Register(sales); err != nil {
		return nil, err
	}
	scfg := server.Config{
		MaxInFlight:  cfg.MaxInFlight,
		MaxQueue:     cfg.MaxQueue,
		QueueTimeout: cfg.QueueTimeout,
		CacheRows:    cfg.CacheRows,
	}
	var fleet *shard.LocalFleet
	if cfg.Shards > 0 {
		fleet, err = shard.StartLocalFleet(context.Background(), shard.FleetConfig{
			Shards: cfg.Shards,
			Rows:   cfg.Rows,
			Seed:   cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		scfg.Shard = fleet.Coord
	}
	svc := server.New(eng, scfg)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		if fleet != nil {
			fleet.Close()
		}
		return nil, err
	}
	l := &Local{
		URL:     "http://" + lis.Addr().String(),
		Server:  svc,
		httpSrv: &http.Server{Handler: svc},
		lis:     lis,
		fleet:   fleet,
	}
	go l.httpSrv.Serve(lis)
	return l, nil
}

// Close drains in-flight queries briefly and tears the server (and any
// worker fleet) down.
func (l *Local) Close() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	l.Server.Drain(ctx)
	l.httpSrv.Close()
	if l.fleet != nil {
		l.fleet.Close()
	}
}
