package gesture

import (
	"errors"
	"testing"

	"dex/internal/exec"
	"dex/internal/storage"
)

func schema() storage.Schema {
	return storage.Schema{
		{Name: "region", Type: storage.TString},
		{Name: "amount", Type: storage.TFloat},
		{Name: "qty", Type: storage.TInt},
	}
}

func mkTable(t *testing.T) *storage.Table {
	t.Helper()
	tbl, err := storage.NewTable("sales", schema())
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		r string
		a float64
		q int64
	}{
		{"east", 10, 1}, {"west", 20, 2}, {"east", 30, 3}, {"west", 5, 1},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(storage.String_(r.r), storage.Float(r.a), storage.Int(r.q)); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestTapProjectsColumns(t *testing.T) {
	q, err := Synthesize(schema(), Trace{
		{Kind: Tap, Column: "region"},
		{Kind: Tap, Column: "amount"},
		{Kind: Tap, Column: "region"}, // idempotent
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 2 || q.Select[0].Col != "region" || q.Select[1].Col != "amount" {
		t.Errorf("select = %v", q.Select)
	}
}

func TestSwipeFilters(t *testing.T) {
	tbl := mkTable(t)
	q, err := Synthesize(schema(), Trace{
		{Kind: Tap, Column: "amount"},
		{Kind: SwipeRange, Column: "amount", Lo: 25, Hi: 8}, // reversed swipe
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Execute(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 { // amounts 10, 20 in [8,25)
		t.Errorf("rows = %d\n%s", res.NumRows(), res.Format(10))
	}
}

func TestHoldPinchGroupAggregate(t *testing.T) {
	tbl := mkTable(t)
	q, err := Synthesize(schema(), Trace{
		{Kind: Hold, Column: "region"},
		{Kind: Pinch, Column: "amount", Agg: exec.AggSum},
		{Kind: FlickUp, Column: "region"},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Execute(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("groups = %d", res.NumRows())
	}
	if res.Row(0)[0].S != "east" || res.Row(0)[1].F != 40 {
		t.Errorf("east row = %v", res.Row(0))
	}
	if res.Row(1)[0].S != "west" || res.Row(1)[1].F != 25 {
		t.Errorf("west row = %v", res.Row(1))
	}
}

func TestHoldWithoutPinchCounts(t *testing.T) {
	tbl := mkTable(t)
	q, err := Synthesize(schema(), Trace{{Kind: Hold, Column: "region"}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Execute(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCols() != 2 || res.NumRows() != 2 {
		t.Errorf("result:\n%s", res.Format(10))
	}
}

func TestGroupingDropsUngroupedPlainColumns(t *testing.T) {
	q, err := Synthesize(schema(), Trace{
		{Kind: Tap, Column: "qty"}, // will be dropped once grouped
		{Kind: Hold, Column: "region"},
		{Kind: Pinch, Column: "amount"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range q.Select {
		if s.Col == "qty" {
			t.Errorf("ungrouped plain column kept: %v", q.Select)
		}
	}
}

func TestDoubleTapResets(t *testing.T) {
	m := NewMachine(schema())
	if err := m.Apply(Event{Kind: Tap, Column: "region"}); err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(Event{Kind: DoubleTap}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Query(); !errors.Is(err, ErrEmptyQuery) {
		t.Errorf("after reset err = %v", err)
	}
}

func TestGestureErrors(t *testing.T) {
	m := NewMachine(schema())
	if err := m.Apply(Event{Kind: Tap, Column: "zzz"}); !errors.Is(err, ErrUnknownColumn) {
		t.Errorf("unknown col err = %v", err)
	}
	if err := m.Apply(Event{Kind: SwipeRange, Column: "region", Lo: 0, Hi: 1}); !errors.Is(err, ErrBadGesture) {
		t.Errorf("swipe on text err = %v", err)
	}
	if err := m.Apply(Event{Kind: Pinch, Column: "region", Agg: exec.AggAvg}); !errors.Is(err, ErrBadGesture) {
		t.Errorf("pinch avg on text err = %v", err)
	}
	if err := m.Apply(Event{Kind: Kind(99)}); !errors.Is(err, ErrBadGesture) {
		t.Errorf("unknown gesture err = %v", err)
	}
	// Pinch MIN on text is fine.
	if err := m.Apply(Event{Kind: Pinch, Column: "region", Agg: exec.AggMin}); err != nil {
		t.Errorf("pinch min on text err = %v", err)
	}
}

func TestSynthesizeErrorMentionsEvent(t *testing.T) {
	_, err := Synthesize(schema(), Trace{{Kind: Tap, Column: "nope"}})
	if err == nil || !errors.Is(err, ErrUnknownColumn) {
		t.Errorf("err = %v", err)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		Tap: "tap", SwipeRange: "swipe-range", Hold: "hold",
		Pinch: "pinch", FlickUp: "flick-up", FlickDown: "flick-down", DoubleTap: "double-tap",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%v string = %q", k, k.String())
		}
	}
}

func TestFlickDownOrdersDescending(t *testing.T) {
	tbl := mkTable(t)
	q, err := Synthesize(schema(), Trace{
		{Kind: Tap, Column: "amount"},
		{Kind: FlickDown, Column: "amount"},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Execute(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Row(0)[0].F != 30 {
		t.Errorf("first = %v", res.Row(0))
	}
}
